package harness

import (
	"fmt"
	"io"
	"sort"
)

// The paper's evaluation makes qualitative claims — who wins, how curves
// move with concurrency — that survive machine changes even when absolute
// numbers do not. This file encodes those claims as executable checks so
// a reproduction run can grade itself: cmd/nbbsfig -check prints one
// PASS/FAIL line per claim per figure panel.

// ClaimResult is the verdict of one claim on one figure panel.
type ClaimResult struct {
	Figure int
	Panel  string // e.g. "linux-scalability Bytes=8"
	Claim  string
	OK     bool
	Detail string
}

// nonBlocking and lockBased partition an allocator list.
func partition(allocators []string) (nb, sl []string) {
	for _, a := range allocators {
		if a == "4lvl-nb" || a == "1lvl-nb" {
			nb = append(nb, a)
		} else {
			sl = append(sl, a)
		}
	}
	return nb, sl
}

// panelValues extracts metric values for one (workload, size, allocator)
// series ordered by thread count.
func panelValues(cells []Cell, workload string, size uint64, allocator string, m Metric) (threads []int, vals []float64) {
	byThread := map[int]float64{}
	for _, c := range cells {
		if c.Workload == workload && c.Size == size && c.Allocator == allocator {
			byThread[c.Threads] = m.value(c)
		}
	}
	for t := range byThread {
		threads = append(threads, t)
	}
	sort.Ints(threads)
	for _, t := range threads {
		vals = append(vals, byThread[t])
	}
	return threads, vals
}

// EvaluateShape grades the paper's shape claims for one figure's cells.
func EvaluateShape(f Figure, cells []Cell) []ClaimResult {
	var results []ClaimResult
	for _, sw := range f.Sweeps {
		for _, size := range sw.Sizes {
			panel := fmt.Sprintf("%s Bytes=%d", sw.Workload, size)
			results = append(results, evaluatePanel(f, sw, cells, size, panel)...)
		}
	}
	return results
}

func evaluatePanel(f Figure, sw Sweep, cells []Cell, size uint64, panel string) []ClaimResult {
	nb, sl := partition(sw.Allocators)
	var out []ClaimResult
	add := func(claim string, ok bool, detail string) {
		out = append(out, ClaimResult{Figure: f.ID, Panel: panel, Claim: claim, OK: ok, Detail: detail})
	}
	// Values at the top thread count, per allocator.
	top := map[string]float64{}
	for _, a := range sw.Allocators {
		threads, vals := panelValues(cells, sw.Workload, size, a, f.Metric)
		if len(vals) == 0 {
			continue
		}
		_ = threads
		top[a] = vals[len(vals)-1]
	}
	if len(top) == 0 {
		return out
	}
	higherIsBetter := f.Metric == MetricKOps

	best := func(names []string) (string, float64) {
		bestName, bestVal := "", 0.0
		for _, n := range names {
			v, ok := top[n]
			if !ok {
				continue
			}
			if bestName == "" || (higherIsBetter && v > bestVal) || (!higherIsBetter && v < bestVal) {
				bestName, bestVal = n, v
			}
		}
		return bestName, bestVal
	}

	// Claim 1: at the top thread count, the best non-blocking variant
	// beats the best lock-based one (paper: 9-95% gains at 32 threads).
	// On Figure 12 the paper's own claim is weaker — "comparable" on the
	// Constant Occupancy panel — so there the executable claim is parity
	// within 2x rather than a strict win.
	if len(nb) > 0 && len(sl) > 0 {
		nbName, nbVal := best(nb)
		slName, slVal := best(sl)
		claim := "non-blocking wins at top thread count"
		slack := 1.0
		if f.ID == 12 {
			claim = "non-blocking wins or is comparable (2x) at top thread count"
			slack = 2.0
		}
		var ok bool
		if higherIsBetter {
			ok = nbVal*slack >= slVal
		} else {
			ok = nbVal <= slVal*slack
		}
		add(claim, ok, fmt.Sprintf("%s=%.4g vs %s=%.4g", nbName, nbVal, slName, slVal))
	}

	// Claim 2: the non-blocking variants scale — the top-thread value is
	// better than the bottom-thread value (time falls / throughput rises
	// with more threads at fixed total work).
	for _, a := range nb {
		_, vals := panelValues(cells, sw.Workload, size, a, f.Metric)
		if len(vals) < 2 {
			continue
		}
		ok := (higherIsBetter && vals[len(vals)-1] > vals[0]) ||
			(!higherIsBetter && vals[len(vals)-1] < vals[0])
		add(fmt.Sprintf("%s improves with thread count", a), ok,
			fmt.Sprintf("first=%.4g last=%.4g", vals[0], vals[len(vals)-1]))
	}

	// Claim 3: lock-based variants do NOT scale: flat or degrading, i.e.
	// the top-thread value is no better than 1.5x the bottom-thread one.
	for _, a := range sl {
		_, vals := panelValues(cells, sw.Workload, size, a, f.Metric)
		if len(vals) < 2 {
			continue
		}
		var ok bool
		if higherIsBetter {
			ok = vals[len(vals)-1] < vals[0]*1.5
		} else {
			ok = vals[len(vals)-1] > vals[0]/1.5
		}
		add(fmt.Sprintf("%s does not scale", a), ok,
			fmt.Sprintf("first=%.4g last=%.4g", vals[0], vals[len(vals)-1]))
	}
	return out
}

// ReportClaims renders claim results and returns how many failed.
func ReportClaims(w io.Writer, results []ClaimResult) (failed int) {
	for _, r := range results {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
			failed++
		}
		fmt.Fprintf(w, "[%s] fig %d %-40s %-45s %s\n", status, r.Figure, r.Panel, r.Claim, r.Detail)
	}
	return failed
}
