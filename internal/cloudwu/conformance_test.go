package cloudwu_test

import (
	"testing"

	"repro/internal/alloctest"

	_ "repro/internal/cloudwu" // register buddy-sl
)

func TestConformance(t *testing.T) { alloctest.Run(t, "buddy-sl") }
