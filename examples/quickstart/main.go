// Quickstart: build a non-blocking buddy instance over a real memory
// region, allocate from several goroutines, write into the delivered
// chunks, and release everything.
package main

import (
	"fmt"
	"log"
	"sync"

	nbbs "repro"
)

func main() {
	// 16 MB region, 64-byte allocation units, up to 1 MB per request,
	// backed by real memory so we can use the chunks.
	b, err := nbbs.New(nbbs.Config{
		Total:   16 << 20,
		MinSize: 64,
		MaxSize: 1 << 20,
	}, nbbs.WithMaterializedRegion())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("variant=%s total=%d min=%d max=%d\n", b.Variant(), b.Total(), b.MinSize(), b.MaxSize())

	// Single allocation: AllocBytes returns the chunk's memory window and
	// the offset, which is the token Free takes.
	buf, off, ok := b.AllocBytes(100) // rounds up to the 128-byte chunk
	if !ok {
		log.Fatal("allocation failed")
	}
	copy(buf, "hello, buddy")
	fmt.Printf("allocated %d bytes at offset %d: %q\n", len(buf), off, buf[:12])
	b.Free(off)

	// Concurrent allocations: one handle per goroutine is the hot-path
	// interface (it carries per-worker scan state and counters).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := b.NewHandle()
			var live []uint64
			for i := 0; i < 1000; i++ {
				size := uint64(64 << (i % 5)) // 64..1024 bytes
				if off, ok := h.Alloc(size); ok {
					// The chunk is exclusively ours until freed.
					chunk := b.Bytes(off)
					chunk[0] = byte(w)
					live = append(live, off)
				}
				if len(live) > 16 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()

	s := b.Stats()
	fmt.Printf("completed: %d allocations, %d frees, %d atomic RMW (%.2f per op), %d CAS retries\n",
		s.Allocs, s.Frees, s.RMW, float64(s.RMW)/float64(s.Allocs+s.Frees), s.CASFail)
	if whole, ok := b.Alloc(1 << 20); ok {
		fmt.Printf("after full drain a max-size chunk is allocatable again (offset %d)\n", whole)
		b.Free(whole)
	}
}
