// Package chaos is the fault-schedule stress harness of the mapped
// elastic stack: it drives the differential map-oracle workload while a
// seeded fault injector makes the region's lifecycle syscalls fail, and
// asserts the two halves of the robustness contract —
//
//  1. no invariant violation while faults are active: every delivered
//     chunk is exclusive and correctly sized, no operation panics on an
//     environmental error, the capacity manager keeps serving decisions
//     (degrading allocation to deny when growth is refused);
//  2. full recovery once the schedule clears: pending drains retire to a
//     healthy floor (the ROADMAP's "kill an instance mid-drain" scenario
//     included — a retirement interrupted by decommit failure must stay
//     draining and complete later), committed bytes reconcile with the
//     published instance set, layer stats balance, and the stack grows
//     and allocates again.
//
// Every injected fault is recorded, so a failing run's Report carries a
// schedule that replays the failure exactly (fault.Replay); nbbsstress
// -chaos writes it as the incident artifact CI uploads.
package chaos

import (
	"fmt"
	"math/rand"
	"syscall"
	"time"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/multi"
	"repro/internal/slab"
	"repro/internal/stack"
	"repro/internal/telemetry"
)

// Config parameterizes one chaos run.
type Config struct {
	// Composite selects the stack under test (see Composites).
	Composite string
	// Seed drives both the workload RNG and the probabilistic fault
	// schedule.
	Seed uint64
	// Steps is the number of workload operations under the active fault
	// schedule (0 = 8000).
	Steps int
	// Prob is the per-syscall fault probability of the generated
	// schedule (0 = 0.05).
	Prob float64
	// Replay, when non-nil, replays a recorded schedule instead of
	// generating one from Seed/Prob — the incident-reproduction path.
	Replay []fault.Fault
}

// Composites lists the stack compositions the harness covers: the
// mapped elastic router, bare and under the slab layer (which adds run
// carving and the slab drain fence to the fault surface).
func Composites() []string { return []string{"mapped+elastic", "slab+mapped+elastic"} }

// Report is the outcome of one chaos run.
type Report struct {
	Composite string  `json:"composite"`
	Seed      uint64  `json:"seed"`
	Steps     int     `json:"steps"`
	Prob      float64 `json:"prob"`
	// Violations are invariant breaches (empty on a passing run); the
	// first breach aborts the run.
	Violations []string `json:"violations,omitempty"`
	// Recovered reports that the post-schedule health checks all passed.
	Recovered bool `json:"recovered"`
	// Schedule is the complete record of injected faults — feed it back
	// through Config.Replay to reproduce this run exactly.
	Schedule []fault.Fault `json:"schedule"`
	// Injected is the total number of injected faults.
	Injected uint64 `json:"injected"`
	// MidDrainKills counts retirements the harness interrupted with a
	// forced decommit failure.
	MidDrainKills int `json:"mid_drain_kills"`
	// Migrations counts live chunks the capacity manager moved off
	// draining slots during the run (composites with migration enabled).
	Migrations int `json:"migrations,omitempty"`
	// Ops counts workload operations that reached the allocator.
	Ops uint64 `json:"ops"`
	// Denied counts allocation attempts the degraded stack refused —
	// the deny rung of the ladder, a legitimate outcome, never an error.
	Denied uint64 `json:"denied"`
	// Events is the flight-recorder dump: the last lifecycle events
	// (elastic transitions, injected faults, degradation rungs, slab
	// crossings) before the run ended, in logical-step order. Two
	// same-seed runs record identical dumps — the ring is single-sharded
	// here and stamped by a logical counter, so the dump is part of the
	// replayable incident, not wall-clock noise.
	Events []telemetry.Event `json:"events,omitempty"`
}

// OK reports whether the run held every invariant and recovered.
func (r *Report) OK() bool { return len(r.Violations) == 0 && r.Recovered }

func (r *Report) failf(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// buildComposite assembles the stack under test with the injector wired
// into its region. The injector is armed AFTER the build: construction
// commits the initial windows, and the contract under test is runtime
// degradation, not construction failure.
func buildComposite(label string, in *fault.Injector, reg *telemetry.Registry) (*stack.Stack, error) {
	per := alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14}
	spec := stack.Spec{
		Variant:   "4lvl-nb",
		Per:       per,
		Instances: 2,
		Elastic:   &elastic.Config{MinInstances: 1, MaxInstances: 4, Hysteresis: 1},
		Mapped:    true,
		Faults:    in,
		Telemetry: reg,
	}
	switch label {
	case "mapped+elastic":
		// The bare router composite also runs the Migrate step: Polls may
		// move live chunks off draining slots, widening the fault surface
		// to mid-migration failures. The slab composite must NOT enable it
		// — slab runs hold router-live chunks whose offsets are cached in
		// the class headers, so a move would strand them.
		spec.Elastic.Migration = elastic.MigrationConfig{Enabled: true}
	case "slab+mapped+elastic":
		spec.Slab = true
	default:
		return nil, fmt.Errorf("chaos: unknown composite %q (have %v)", label, Composites())
	}
	return stack.Build(spec)
}

// schedule builds the probabilistic rule set covering every fault site.
func schedule(p float64) []fault.Rule {
	return []fault.Rule{
		fault.FailProb(fault.Reserve, p, syscall.ENOMEM),
		fault.FailProb(fault.Commit, p, syscall.ENOMEM),
		fault.FailProb(fault.Huge, p, syscall.EINVAL),
		fault.FailProb(fault.Bind, p, syscall.EPERM),
		fault.FailProb(fault.Decommit, p, syscall.EAGAIN),
	}
}

// chunk is the oracle's record of one delivered chunk.
type chunk struct {
	off      uint64
	reserved uint64
}

// Run executes one chaos run and returns its report. It never panics:
// a panic anywhere in the driven stack is converted into a violation
// (environmental failure must degrade, not crash).
func Run(cfg Config) (rep Report) {
	if cfg.Steps <= 0 {
		cfg.Steps = 8000
	}
	if cfg.Prob <= 0 {
		cfg.Prob = 0.05
	}
	rep = Report{Composite: cfg.Composite, Seed: cfg.Seed, Steps: cfg.Steps, Prob: cfg.Prob}

	// One ring shard: the workload is single-goroutine and the events are
	// stamped by the logical step counter, so the recorded dump is
	// deterministic per seed — overwrite-oldest eviction must not depend
	// on which P the goroutine happened to run on.
	reg := telemetry.New(telemetry.Config{RingShards: 1})
	in := fault.New(cfg.Seed)
	st, err := buildComposite(cfg.Composite, in, reg)
	if err != nil {
		rep.failf("building %s: %v", cfg.Composite, err)
		return rep
	}

	// A logical clock stepped by the workload: backoff decisions depend
	// only on the step counter, so a replayed schedule sees the identical
	// clock and makes the identical retry decisions.
	var step int
	base := time.Unix(0, 0)
	st.Elastic.SetClock(func() time.Time {
		return base.Add(time.Duration(step) * time.Millisecond)
	})

	defer func() {
		rep.Schedule = in.Record()
		rep.Injected = in.InjectedTotal()
		rep.Events = reg.Ring().Events()
		if p := recover(); p != nil {
			rep.failf("panic under fault schedule: %v", p)
			rep.Recovered = false
		}
	}()

	// Arm the schedule only now — the build needed its commits.
	if cfg.Replay != nil {
		in.UseReplay(cfg.Replay)
	} else {
		in.Set(schedule(cfg.Prob)...)
	}

	a := st.Top
	geo := a.Geometry()
	mgr := st.Elastic
	sl := slab.Find(a)
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	// Two persistent handles, never the convenience Alloc/Free path: the
	// router shards its idle convenience handles per P, so which handle
	// (and which preferred instance) a convenience call draws depends on
	// goroutine placement — nondeterministic at GOMAXPROCS > 1, which
	// would break the replay contract. Handles route deterministically.
	h := a.NewHandle()
	h2 := a.NewHandle()

	var live []chunk
	occupied := map[uint64]bool{}

	sizeFor := func() uint64 {
		size := uint64(1) << (6 + rng.Intn(9)) // 64..16384
		if sl != nil && sl.Cutoff() != 0 && rng.Intn(2) == 0 {
			switch rng.Intn(4) {
			case 0:
				size = sl.Cutoff() - 1
			case 1:
				size = sl.Cutoff()
			case 2:
				size = sl.Cutoff() + 1
			default:
				size = 1 + uint64(rng.Int63n(int64(geo.MaxSize)))
			}
		}
		return size
	}

	// admit checks a delivered chunk against the oracle; false aborts.
	admit := func(off, size uint64, how string) bool {
		reserved := geo.SizeOfLevel(geo.LevelForSize(size))
		align := reserved
		if cs, ok := a.(alloc.ChunkSizer); ok {
			got := cs.ChunkSize(off)
			matched := got == reserved
			if sl != nil && !matched {
				if cls, slabbed := sl.ReservedFor(size); slabbed && got == cls {
					reserved, align, matched = cls, geo.MinSize, true
				}
			}
			if !matched {
				rep.failf("step %d: ChunkSize(%#x) = %d, want reserved %d (%s %d)", step, off, got, reserved, how, size)
				return false
			}
		}
		span := alloc.SpanOf(a)
		if off%align != 0 || off+reserved > span {
			rep.failf("step %d: %s(%d) -> [%d,%d) misaligned or outside the %d-byte span", step, how, size, off, off+reserved, span)
			return false
		}
		for u := off / geo.MinSize; u < (off+reserved)/geo.MinSize; u++ {
			if occupied[u] {
				rep.failf("step %d: %s(%d) at %#x double-hands-out unit %d", step, how, size, off, u)
				return false
			}
			occupied[u] = true
		}
		live = append(live, chunk{off, reserved})
		return true
	}
	release := func(k int) chunk {
		c := live[k]
		for u := c.off / geo.MinSize; u < (c.off+c.reserved)/geo.MinSize; u++ {
			delete(occupied, u)
		}
		live[k] = live[len(live)-1]
		live = live[:len(live)-1]
		return c
	}
	freeAll := func() {
		var rest []uint64
		for _, c := range live {
			rest = append(rest, c.off)
		}
		live, occupied = nil, map[uint64]bool{}
		alloc.HandleFreeBatch(h, rest)
		if s, ok := a.(alloc.Scrubber); ok {
			s.Scrub()
		}
	}

	// Migration interleave: with the Migrate step enabled, a Poll may
	// move live chunks off a draining slot. The hook rewrites the oracle
	// in place — it runs before Poll returns and the workload is a single
	// goroutine, so `live` is current again before the next operation.
	// The moved chunk must land on units the oracle has free, or the move
	// itself double-handed-out memory.
	if mgr.Config().Migration.Enabled {
		mgr.OnMigrate(func(oldOff, newOff, size uint64) {
			for i := range live {
				if live[i].off != oldOff {
					continue
				}
				c := &live[i]
				if c.reserved != size {
					rep.failf("step %d: migrated %#x with size %d, oracle reserved %d", step, oldOff, size, c.reserved)
					return
				}
				for u := c.off / geo.MinSize; u < (c.off+c.reserved)/geo.MinSize; u++ {
					delete(occupied, u)
				}
				c.off = newOff
				for u := c.off / geo.MinSize; u < (c.off+c.reserved)/geo.MinSize; u++ {
					if occupied[u] {
						rep.failf("step %d: migration to %#x double-hands-out unit %d", step, newOff, u)
						return
					}
					occupied[u] = true
				}
				rep.Migrations++
				return
			}
			rep.failf("step %d: migrated offset %#x unknown to the oracle", step, oldOff)
		})
	}

	// Phase 1: the random walk under the active fault schedule.
	for ; step < cfg.Steps && len(rep.Violations) == 0; step++ {
		rep.Ops++
		switch op := rng.Intn(10); {
		case op < 4:
			size := sizeFor()
			if off, ok := h.Alloc(size); ok {
				admit(off, size, "Alloc")
			} else {
				rep.Denied++
			}
		case op < 6 && len(live) > 0:
			h.Free(release(rng.Intn(len(live))).off)
		case op < 7:
			size := uint64(1) << (6 + rng.Intn(6)) // 64..2048
			n := 1 + rng.Intn(24)
			offs := alloc.HandleAllocBatch(h, size, n)
			for _, off := range offs {
				if !admit(off, size, "AllocBatch") {
					break
				}
			}
		case op < 8 && len(live) > 1:
			n := 1 + rng.Intn(len(live))
			batch := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				batch = append(batch, release(rng.Intn(len(live))).off)
			}
			alloc.HandleFreeBatch(h, batch)
		case op < 9:
			if s, ok := a.(alloc.Scrubber); ok {
				s.Scrub()
			}
		default:
			size := sizeFor()
			if off, ok := h2.Alloc(size); ok {
				admit(off, size, "second-handle Alloc")
			} else {
				rep.Denied++
			}
		}
		// Lifecycle interleave: Poll completes pending retires and runs
		// the watermark policy; forced Grow/Shrink keep the instance set
		// moving. Refusals (cap, floor, backpressure) are legitimate.
		if rng.Intn(12) == 0 {
			switch rng.Intn(4) {
			case 0, 1:
				mgr.Poll()
			case 2:
				mgr.Grow()
			case 3:
				mgr.Shrink()
			}
		}
	}
	if len(rep.Violations) > 0 {
		return rep
	}

	// Phase 2: the mid-drain kill. Empty the stack, make sure there is a
	// drainable instance (the walk may have settled at the floor — lift
	// the phase-1 schedule and any backoff window so the grow is clean),
	// then start a drain and make its decommit fail persistently: the
	// retirement must park as draining (published, window committed)
	// instead of half-dying.
	freeAll()
	in.Clear()
	step += 1000
	for i := 0; mgr.Router().ActiveInstances() < 2 && i < 4; i++ {
		if _, err := mgr.Grow(); err != nil {
			rep.failf("mid-drain kill setup: grow with faults cleared: %v", err)
			return rep
		}
	}
	in.Set(fault.FailAlways(fault.Decommit, syscall.EAGAIN))
	victim, err := mgr.Shrink()
	if err != nil {
		rep.failf("mid-drain kill: shrink refused with %d active instances: %v",
			mgr.Router().ActiveInstances(), err)
		return rep
	}
	rep.MidDrainKills++
	mgr.Poll() // drives TryRetire into the injected decommit failure
	infos := mgr.Router().InstanceInfos()
	if victim >= len(infos) || infos[victim].State != multi.Draining {
		rep.failf("mid-drain kill: victim %d not parked draining after decommit failure", victim)
		return rep
	}
	if !st.Mem.Committed(victim) {
		rep.failf("mid-drain kill: victim %d window decommitted despite the injected failure", victim)
		return rep
	}
	if c := mgr.Counters(); c.RetireFailures == 0 {
		rep.failf("mid-drain kill: retire failure not counted: %+v", c)
		return rep
	}

	// Phase 3: recovery. The schedule clears; the parked retirement must
	// complete, the fleet must settle to a healthy floor, accounting must
	// reconcile, and the stack must grow and allocate again.
	in.Clear()
	step += 1000 // let every backoff window lapse on the logical clock
	for i := 0; i < 8; i++ {
		mgr.Poll()
	}
	for _, info := range mgr.Router().InstanceInfos() {
		if info.State == multi.Draining {
			rep.failf("recovery: slot %d still draining after faults cleared (live=%d)", info.Slot, info.Live)
		}
		if info.State == multi.Active && (info.Live != 0 || info.LiveBytes != 0) {
			rep.failf("recovery: drained slot %d reports live=%d liveBytes=%d", info.Slot, info.Live, info.LiveBytes)
		}
	}
	for _, layer := range alloc.StackStats(a) {
		if layer.Stats.Allocs != layer.Stats.Frees {
			rep.failf("recovery: layer %q unbalanced: %d allocs vs %d frees", layer.Layer, layer.Stats.Allocs, layer.Stats.Frees)
		}
	}
	// Committed bytes must reconcile with the published instance set —
	// no stranded half-committed windows behind the fault schedule.
	span := mgr.Router().InstanceSpan()
	if got, want := st.Mem.Stats().CommittedBytes, uint64(mgr.Router().Instances())*span; got != want {
		rep.failf("recovery: %d bytes committed for %d published instances (want %d)", got, mgr.Router().Instances(), want)
	}
	// The fleet is growable and servable again.
	if _, err := mgr.Grow(); err != nil {
		rep.failf("recovery: grow after faults cleared: %v", err)
	}
	if off, ok := h.Alloc(geo.MaxSize); !ok {
		rep.failf("recovery: MaxSize alloc denied on a healthy stack")
	} else {
		h.Free(off)
	}
	rep.Recovered = len(rep.Violations) == 0
	return rep
}
