// Package arena models the contiguous memory region a buddy-system
// instance manages. The allocators themselves operate purely on metadata
// and hand out offsets into the region (paper equation (3) computes
// starting addresses relative to base_address); an Arena optionally
// materializes the region as a byte slab so callers can actually read and
// write the memory they were granted.
//
// Keeping materialization optional lets the benchmark harness measure pure
// allocator behaviour — the paper's benchmarks never touch the allocated
// payload either — without reserving gigabytes of RSS.
//
// Materialize wraps any allocator stack as a composable layer: it sizes
// real memory to the stack's global offset span and hands out byte
// windows for live chunks. Over a multi-instance router it keeps one
// sub-arena per instance — the per-NUMA-node memory the router models —
// behind the single global offset space.
package arena

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// Arena is a contiguous region of Total bytes, optionally backed by a slab.
type Arena struct {
	total uint64
	slab  []byte
}

// New creates an arena of the given size. If materialize is true the
// region is backed by real memory; otherwise only offsets exist.
func New(total uint64, materialize bool) *Arena {
	a := &Arena{total: total}
	if materialize {
		a.slab = make([]byte, total)
	}
	return a
}

// Total returns the region size in bytes.
func (a *Arena) Total() uint64 { return a.total }

// Materialized reports whether the region is backed by real memory.
func (a *Arena) Materialized() bool { return a.slab != nil }

// Bytes returns the [offset, offset+size) window of the region as a slice.
// It panics if the arena is not materialized or the window is out of
// bounds — both are caller bugs, not runtime conditions.
func (a *Arena) Bytes(offset, size uint64) []byte {
	if a.slab == nil {
		panic("arena: Bytes on a non-materialized arena")
	}
	if offset+size > a.total || offset+size < offset {
		panic(fmt.Sprintf("arena: window [%d,%d) outside region of %d bytes", offset, offset+size, a.total))
	}
	return a.slab[offset : offset+size : offset+size]
}

// Allocator is the materialized-region layer: a pass-through allocator
// stack layer that additionally backs the wrapped stack's offset space
// with real memory, so callers can read and write the chunks they are
// granted. It forwards the whole composable contract (ChunkSizer,
// Spanner, Scrubber, LayerStatser), so it stacks over any allocator —
// including a multi-instance router, where it keeps one sub-arena per
// instance behind the global offset space.
type Allocator struct {
	inner   alloc.Allocator
	sizer   alloc.ChunkSizer
	span    uint64   // global offset span
	segSize uint64   // bytes per sub-arena
	segs    []*Arena // one per instance (one total for single-instance stacks)
}

// instanceCounter is implemented by the multi-instance router; unwrapper
// by every layer that wraps a single inner allocator.
type instanceCounter interface{ Instances() int }
type unwrapper interface{ Unwrap() alloc.Allocator }

// segmentsOf walks the stack down to the multi-instance router (if any)
// to learn how many sub-arenas the offset space splits into.
func segmentsOf(a alloc.Allocator) int {
	for {
		if ic, ok := a.(instanceCounter); ok {
			return ic.Instances()
		}
		w, ok := a.(unwrapper)
		if !ok {
			return 1
		}
		a = w.Unwrap()
	}
}

// Materialize wraps a stack with a materialized region sized to its
// global offset span. The stack must implement alloc.ChunkSizer so Bytes
// can learn the reserved window of an offset.
func Materialize(inner alloc.Allocator) (*Allocator, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("arena: %s cannot report chunk sizes", inner.Name())
	}
	span := alloc.SpanOf(inner)
	segments := segmentsOf(inner)
	a := &Allocator{
		inner:   inner,
		sizer:   sizer,
		span:    span,
		segSize: span / uint64(segments),
	}
	for i := 0; i < segments; i++ {
		a.segs = append(a.segs, New(a.segSize, true))
	}
	return a, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "mat+" + a.inner.Name() }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.inner.Geometry() }

// OffsetSpan implements alloc.Spanner.
func (a *Allocator) OffsetSpan() uint64 { return a.span }

// Unwrap exposes the wrapped stack to generic stack walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.inner }

// Alloc implements alloc.Allocator (pass-through).
func (a *Allocator) Alloc(size uint64) (uint64, bool) { return a.inner.Alloc(size) }

// Free implements alloc.Allocator (pass-through).
func (a *Allocator) Free(offset uint64) { a.inner.Free(offset) }

// AllocBatch implements alloc.BatchAllocator (pass-through).
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	return alloc.AllocBatchOf(a.inner, size, n)
}

// FreeBatch implements alloc.BatchAllocator (pass-through).
func (a *Allocator) FreeBatch(offsets []uint64) { alloc.FreeBatchOf(a.inner, offsets) }

// NewHandle implements alloc.Allocator (pass-through: the layer holds no
// per-worker state, so inner handles are used directly).
func (a *Allocator) NewHandle() alloc.Handle { return a.inner.NewHandle() }

// Stats implements alloc.Allocator (pass-through).
func (a *Allocator) Stats() alloc.Stats { return a.inner.Stats() }

// ChunkSize implements alloc.ChunkSizer (pass-through).
func (a *Allocator) ChunkSize(offset uint64) uint64 { return a.sizer.ChunkSize(offset) }

// Scrub implements alloc.Scrubber (pass-through).
func (a *Allocator) Scrub() {
	if s, ok := a.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// LayerStats implements alloc.LayerStatser: the arena contributes no
// operation counters, only its memory footprint.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	entry := alloc.LayerStats{
		Layer: "mat",
		Extra: map[string]uint64{
			"bytes":    a.span,
			"segments": uint64(len(a.segs)),
		},
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(a.inner)...)
}

// Bytes returns the memory window of a live chunk at a global offset as a
// slice; the slice is valid until the chunk is freed. A chunk never
// crosses a sub-arena boundary: chunks are size-aligned within their
// instance's window and no larger than it.
func (a *Allocator) Bytes(offset uint64) []byte {
	size := a.sizer.ChunkSize(offset)
	seg := offset / a.segSize
	if int(seg) >= len(a.segs) {
		panic(fmt.Sprintf("arena: offset %#x outside the materialized span of %d bytes", offset, a.span))
	}
	return a.segs[seg].Bytes(offset-seg*a.segSize, size)
}

// AllocBytes combines Alloc and Bytes: it reserves at least size bytes
// and returns the chunk's window plus the offset (the Free token).
func (a *Allocator) AllocBytes(size uint64) (buf []byte, offset uint64, ok bool) {
	off, ok := a.inner.Alloc(size)
	if !ok {
		return nil, 0, false
	}
	return a.Bytes(off), off, true
}
