package verify_test

import (
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/verify"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

func TestCheckerDetectsOverlap(t *testing.T) {
	c := verify.NewChecker(1024, 8)
	c.Claim(0, 64)
	if c.Overlaps() != 0 {
		t.Fatal("clean claim flagged")
	}
	c.Claim(32, 64) // overlaps [32,64)
	if c.Overlaps() != 4 {
		t.Fatalf("overlaps = %d, want 4 units", c.Overlaps())
	}
}

func TestCheckerDetectsUnbacked(t *testing.T) {
	c := verify.NewChecker(1024, 8)
	c.Release(0, 16)
	if c.Unbacked() != 2 {
		t.Fatalf("unbacked = %d, want 2 units", c.Unbacked())
	}
}

func TestCheckerOccupancy(t *testing.T) {
	c := verify.NewChecker(1024, 8)
	c.Claim(0, 256)
	c.Claim(512, 256)
	if c.LiveBytes() != 512 || c.PeakBytes() != 512 {
		t.Fatalf("live/peak = %d/%d", c.LiveBytes(), c.PeakBytes())
	}
	c.Release(0, 256)
	if c.LiveBytes() != 256 || c.PeakBytes() != 512 {
		t.Fatalf("after release live/peak = %d/%d", c.LiveBytes(), c.PeakBytes())
	}
	c.Release(512, 256)
	if err := c.Quiesced(); err != nil {
		t.Fatal(err)
	}
}

func TestQuiescedReportsLeak(t *testing.T) {
	c := verify.NewChecker(1024, 8)
	c.Claim(0, 64)
	err := c.Quiesced()
	if err == nil || !strings.Contains(err.Error(), "unit") {
		t.Fatalf("err = %v", err)
	}
}

// brokenAllocator returns the same offset twice — the wrapper must catch it.
type brokenAllocator struct {
	alloc.Allocator
}

func (b *brokenAllocator) NewHandle() alloc.Handle { return &brokenHandle{} }
func (b *brokenAllocator) ChunkSize(uint64) uint64 { return 64 }

type brokenHandle struct{ stats alloc.Stats }

func (h *brokenHandle) Alloc(uint64) (uint64, bool) { return 0, true } // always offset 0!
func (h *brokenHandle) Free(uint64)                 {}
func (h *brokenHandle) Stats() *alloc.Stats         { return &h.stats }

func TestWrapperCatchesBrokenAllocator(t *testing.T) {
	base, err := alloc.Build("1lvl-nb", alloc.Config{Total: 1024, MinSize: 8, MaxSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	v, err := verify.Wrap(&brokenAllocator{Allocator: base})
	if err != nil {
		t.Fatal(err)
	}
	h := v.NewHandle()
	h.Alloc(64)
	h.Alloc(64) // same offset again
	if v.Checker().Overlaps() == 0 {
		t.Fatal("double-delivery not detected")
	}
}

func TestWrapRequiresChunkSizer(t *testing.T) {
	if _, err := verify.Wrap(plainAllocator{}); err == nil {
		t.Fatal("allocator without ChunkSize accepted")
	}
}

type plainAllocator struct{}

func (plainAllocator) Name() string                { return "plain" }
func (plainAllocator) Geometry() geometry.Geometry { return geometry.Geometry{} }
func (plainAllocator) Alloc(uint64) (uint64, bool) { return 0, false }
func (plainAllocator) Free(uint64)                 {}
func (plainAllocator) NewHandle() alloc.Handle     { return nil }
func (plainAllocator) Stats() alloc.Stats          { return alloc.Stats{} }

func TestStressEveryVariantClean(t *testing.T) {
	cfg := verify.StressConfig{
		Workers:  8,
		Ops:      20000,
		Sizes:    []uint64{8, 64, 512, 4096},
		FreeBias: 40,
		MaxLive:  32,
		Seed:     7,
	}
	if testing.Short() {
		cfg.Ops = 4000
	}
	for _, variant := range alloc.Names() {
		variant := variant
		t.Run(variant, func(t *testing.T) {
			a, err := alloc.Build(variant, alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 1 << 14})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := verify.Stress(a, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Failed() {
				t.Fatalf("stress failed: %s", rep)
			}
			if rep.Allocs == 0 || rep.PeakBytes == 0 {
				t.Fatalf("degenerate run: %s", rep)
			}
		})
	}
}

func TestStressDeterministicPeak(t *testing.T) {
	// Same seed, same single-worker schedule: identical op counts and
	// occupancy peak (placement may differ across variants, peaks align
	// for the same variant).
	mk := func() verify.Report {
		a, err := alloc.Build("1lvl-nb", alloc.Config{Total: 1 << 20, MinSize: 8, MaxSize: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := verify.Stress(a, verify.StressConfig{
			Workers: 1, Ops: 5000, Sizes: []uint64{8, 128}, FreeBias: 30, MaxLive: 16, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := mk(), mk()
	if r1.Allocs != r2.Allocs || r1.Frees != r2.Frees || r1.PeakBytes != r2.PeakBytes {
		t.Fatalf("non-deterministic single-worker stress: %s vs %s", r1, r2)
	}
}

func TestStressConfigValidation(t *testing.T) {
	a, err := alloc.Build("1lvl-nb", alloc.Config{Total: 1024, MinSize: 8, MaxSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Stress(a, verify.StressConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
