package frontend_test

import (
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/frontend"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
)

func backend(t *testing.T, variant string) alloc.Allocator {
	t.Helper()
	a, err := alloc.Build(variant, alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestMagazineHit(t *testing.T) {
	fe, err := frontend.New(backend(t, "1lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h := fe.NewHandle().(*frontend.Handle)
	off, ok := h.Alloc(128)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.Free(off) // parks in the magazine
	off2, ok := h.Alloc(128)
	if !ok || off2 != off {
		t.Fatalf("magazine did not serve the parked chunk: got %d want %d", off2, off)
	}
	cs := h.CacheStats()
	if cs.Hits != 1 || cs.Misses != 1 || cs.Refills != 1 {
		t.Fatalf("cache stats = %+v", cs)
	}
	h.Free(off2)
	h.Flush()
	if h.Cached() != 0 {
		t.Fatalf("%d chunks cached after Flush", h.Cached())
	}
	// After flushing, the back-end must see the chunk as free again.
	s := fe.Backend().Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("back-end allocs/frees = %d/%d after flush", s.Allocs, s.Frees)
	}
}

func TestSizeClassSeparation(t *testing.T) {
	fe, err := frontend.New(backend(t, "4lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h := fe.NewHandle().(*frontend.Handle)
	small, _ := h.Alloc(64)
	big, _ := h.Alloc(4096)
	h.Free(small)
	h.Free(big)
	// A small request must not be served with the parked big chunk.
	got, ok := h.Alloc(64)
	if !ok || got != small {
		t.Fatalf("small class served %d, want parked %d", got, small)
	}
	got2, ok := h.Alloc(4096)
	if !ok || got2 != big {
		t.Fatalf("big class served %d, want parked %d", got2, big)
	}
	h.Free(got)
	h.Free(got2)
	h.Flush()
}

func TestSpillOnOverflow(t *testing.T) {
	const mag = 4
	fe, err := frontend.New(backend(t, "1lvl-nb"), mag)
	if err != nil {
		t.Fatal(err)
	}
	h := fe.NewHandle().(*frontend.Handle)
	var offs []uint64
	for i := 0; i < mag*3; i++ {
		off, ok := h.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		h.Free(off)
	}
	cs := h.CacheStats()
	if cs.Spills == 0 {
		t.Fatal("no spills after overflowing the magazine")
	}
	if h.Cached() > mag {
		t.Fatalf("magazine holds %d chunks, cap %d", h.Cached(), mag)
	}
	h.Flush()
	s := fe.Backend().Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("back-end leaked: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

func TestCrossHandleFree(t *testing.T) {
	// A chunk allocated through one handle and freed through another must
	// land in the second handle's magazine of the right class.
	fe, err := frontend.New(backend(t, "linux-buddy"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h1 := fe.NewHandle().(*frontend.Handle)
	h2 := fe.NewHandle().(*frontend.Handle)
	off, ok := h1.Alloc(256)
	if !ok {
		t.Fatal("alloc failed")
	}
	h2.Free(off)
	got, ok := h2.Alloc(256)
	if !ok || got != off {
		t.Fatalf("h2 magazine served %d, want %d", got, off)
	}
	h2.Free(got)
	h1.Flush()
	h2.Flush()
}

func TestOversizeRejected(t *testing.T) {
	fe, err := frontend.New(backend(t, "1lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h := fe.NewHandle().(*frontend.Handle)
	if _, ok := h.Alloc(1 << 17); ok {
		t.Fatal("oversize alloc succeeded")
	}
}

func TestConcurrentCachedWorkers(t *testing.T) {
	fe, err := frontend.New(backend(t, "4lvl-nb"), 16)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := fe.NewHandle().(*frontend.Handle)
			defer h.Flush()
			var live []uint64
			for i := 0; i < 5000; i++ {
				if off, ok := h.Alloc(64 << (i % 4)); ok {
					live = append(live, off)
				}
				if len(live) > 8 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	s := fe.Backend().Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("back-end leaked under concurrency: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

func TestPassThroughConvenience(t *testing.T) {
	fe, err := frontend.New(backend(t, "1lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Name() != "cached+1lvl-nb" {
		t.Fatalf("Name = %q", fe.Name())
	}
	off, ok := fe.Alloc(64)
	if !ok {
		t.Fatal("pass-through alloc failed")
	}
	fe.Free(off)
	if fe.Geometry().Total != 1<<20 {
		t.Fatal("geometry not forwarded")
	}
	s := fe.Stats()
	if s.Allocs != 1 || s.Frees != 1 {
		t.Fatalf("convenience ops not counted at the layer: %+v", s)
	}
}

func TestChunkSizeForwarded(t *testing.T) {
	fe, err := frontend.New(backend(t, "4lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := fe.Alloc(100)
	if !ok {
		t.Fatal("alloc failed")
	}
	if got := fe.ChunkSize(off); got != 128 {
		t.Fatalf("ChunkSize = %d, want 128", got)
	}
	fe.Free(off)
}

// TestScrubFlushesMagazines: the layer's Scrub must return every
// magazine-parked chunk to the back-end (quiescent-only maintenance),
// so a drained stack is genuinely drained.
func TestScrubFlushesMagazines(t *testing.T) {
	fe, err := frontend.New(backend(t, "4lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h := fe.NewHandle().(*frontend.Handle)
	off, ok := h.Alloc(64)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.Free(off) // parked, still allocated in the back-end
	s := fe.Backend().Stats()
	if s.Allocs == s.Frees {
		t.Fatal("test premise broken: parked chunk should still be live in the back-end")
	}
	fe.Scrub()
	if h.Cached() != 0 {
		t.Fatalf("%d chunks still cached after Scrub", h.Cached())
	}
	s = fe.Backend().Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("back-end unbalanced after Scrub: %d/%d", s.Allocs, s.Frees)
	}
}

func TestCacheTotalsAggregate(t *testing.T) {
	fe, err := frontend.New(backend(t, "4lvl-nb"), 8)
	if err != nil {
		t.Fatal(err)
	}
	h1 := fe.NewHandle().(*frontend.Handle)
	h2 := fe.NewHandle().(*frontend.Handle)
	for _, h := range []*frontend.Handle{h1, h2} {
		off, _ := h.Alloc(64)
		h.Free(off)
		off, _ = h.Alloc(64) // hit
		h.Free(off)
	}
	totals := fe.CacheTotals()
	if totals.Hits != 2 || totals.Misses != 2 {
		t.Fatalf("CacheTotals = %+v, want 2 hits / 2 misses", totals)
	}
	h1.Flush()
	h2.Flush()
}
