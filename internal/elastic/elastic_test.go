package elastic_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/multi"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
)

var per = alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14}

func manager(t *testing.T, instances int, cfg elastic.Config) *elastic.Manager {
	t.Helper()
	m, err := multi.New("4lvl-nb", instances, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

// fill allocates chunks until the active capacity reaches the target
// utilization, returning the offsets.
func fill(t *testing.T, mgr *elastic.Manager, target float64) []uint64 {
	t.Helper()
	var offs []uint64
	for mgr.Utilization() < target {
		off, ok := mgr.Alloc(per.MaxSize)
		if !ok {
			t.Fatalf("alloc failed at utilization %.2f (target %.2f)", mgr.Utilization(), target)
		}
		offs = append(offs, off)
	}
	return offs
}

func TestGrowOnHighWatermark(t *testing.T) {
	mgr := manager(t, 2, elastic.Config{MinInstances: 1, MaxInstances: 4, Hysteresis: 2})
	offs := fill(t, mgr, elastic.DefaultHighWater)

	// Hysteresis: the first over-watermark Poll must not grow yet.
	if act := mgr.Poll(); act.Grew >= 0 {
		t.Fatalf("grew on the first over-watermark poll (hysteresis 2): %+v", act)
	}
	act := mgr.Poll()
	if act.Grew < 0 {
		t.Fatalf("no grow on the second over-watermark poll: %+v", act)
	}
	if got := mgr.Router().Instances(); got != 3 {
		t.Fatalf("Instances = %d after grow, want 3", got)
	}
	if alloc.SpanOf(mgr) != 3*per.Total {
		t.Fatalf("OffsetSpan = %d after grow, want %d", alloc.SpanOf(mgr), 3*per.Total)
	}
	// The new capacity is usable immediately.
	off, ok := mgr.Alloc(per.MaxSize)
	if !ok {
		t.Fatal("alloc failed right after grow")
	}
	mgr.Free(off)
	for _, off := range offs {
		mgr.Free(off)
	}
	if c := mgr.Counters(); c.Grows != 1 {
		t.Fatalf("Counters.Grows = %d, want 1", c.Grows)
	}
}

func TestDeniedAtCap(t *testing.T) {
	mgr := manager(t, 2, elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1})
	offs := fill(t, mgr, elastic.DefaultHighWater)
	act := mgr.Poll()
	if !act.DeniedAtCap || act.Grew >= 0 {
		t.Fatalf("expected a cap denial, got %+v", act)
	}
	if c := mgr.Counters(); c.DeniedAtCap != 1 || c.Grows != 0 {
		t.Fatalf("counters after denial: %+v", c)
	}
	for _, off := range offs {
		mgr.Free(off)
	}
}

func TestDrainRetireOnLowWatermark(t *testing.T) {
	mgr := manager(t, 4, elastic.Config{MinInstances: 2, MaxInstances: 4, Hysteresis: 1})
	// Idle fleet: utilization 0 <= low watermark, so every Poll drains one
	// empty instance — and retires it in the same step, since nothing is
	// live on it.
	act := mgr.Poll()
	if act.DrainStarted < 0 || len(act.Retired) != 1 {
		t.Fatalf("first idle poll: %+v, want a drain+retire", act)
	}
	mgr.Poll()
	if got := mgr.Router().Instances(); got != 2 {
		t.Fatalf("Instances = %d after idle polls, want the floor 2", got)
	}
	// At the floor, no further shrink.
	act = mgr.Poll()
	if act.DrainStarted >= 0 || len(act.Retired) != 0 {
		t.Fatalf("poll at the floor still shrank: %+v", act)
	}
	c := mgr.Counters()
	if c.Drains != 2 || c.Retires != 2 {
		t.Fatalf("counters after retiring to the floor: %+v", c)
	}
	// The span is unchanged (retired slots leave holes), and the surviving
	// capacity still serves.
	if alloc.SpanOf(mgr) != 4*per.Total {
		t.Fatalf("OffsetSpan = %d after retires, want %d", alloc.SpanOf(mgr), 4*per.Total)
	}
	off, ok := mgr.Alloc(per.MaxSize)
	if !ok {
		t.Fatal("alloc failed after retiring to the floor")
	}
	mgr.Free(off)
}

// TestRetireWaitsForLiveChunks pins the three-phase property: a draining
// instance with live chunks survives Polls (frees keep landing on it by
// offset) and is unpublished only after its last chunk returns.
func TestRetireWaitsForLiveChunks(t *testing.T) {
	mgr := manager(t, 2, elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1})
	m := mgr.Router()
	// Plant a chunk on instance 1 via a pinned handle.
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(per.MinSize)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("pinned alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	k, err := mgr.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	if k != 0 {
		// The least-utilized slot is 0 (empty); drain it and park a second
		// drain on 1 by hand for the scenario we want.
		t.Fatalf("Shrink picked slot %d, want the empty slot 0", k)
	}
	// Slot 0 is empty: the shrink retires it immediately. Now drain slot 1
	// under a live chunk; the floor refuses (last active). Reactivate
	// path instead: grow brings slot 0 back.
	mgr.Poll()
	if got := m.Instances(); got != 1 {
		t.Fatalf("Instances = %d, want 1", got)
	}
	if _, err := mgr.Grow(); err != nil {
		t.Fatal(err)
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	// Live chunk pins the slot: polls must not retire it.
	for i := 0; i < 3; i++ {
		if act := mgr.Poll(); len(act.Retired) != 0 {
			t.Fatalf("poll retired slot %v while a chunk is live", act.Retired)
		}
	}
	// The free still routes to the draining instance by offset.
	h.Free(off)
	act := mgr.Poll()
	if len(act.Retired) != 1 || act.Retired[0] != 1 {
		t.Fatalf("poll after the last free: %+v, want slot 1 retired", act)
	}
}

func TestReactivateUnderPressure(t *testing.T) {
	mgr := manager(t, 2, elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1})
	m := mgr.Router()
	// Pin a chunk on instance 1 so its drain cannot complete.
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(per.MinSize)
	if !ok {
		t.Fatal("alloc failed")
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	// Pressure returns: grow must re-activate the draining slot instead of
	// building a third instance (the cap would refuse anyway).
	k, err := mgr.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("Grow reactivated slot %d, want 1", k)
	}
	if c := mgr.Counters(); c.Reactivations != 1 || c.Grows != 0 {
		t.Fatalf("counters after reactivation: %+v", c)
	}
	h.Free(off)
}

func TestConfigValidation(t *testing.T) {
	m, err := multi.New("4lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := elastic.New(m, elastic.Config{HighWater: 0.2, LowWater: 0.8}); err == nil {
		t.Error("inverted watermarks accepted")
	}
	if _, err := elastic.New(m, elastic.Config{MinInstances: 4, MaxInstances: 2}); err == nil {
		t.Error("max below min accepted")
	}
	if _, err := elastic.New(m, elastic.Config{MaxInstances: 1}); err == nil {
		t.Error("cap below the initial instance count accepted")
	}
}

func TestStartStopBackground(t *testing.T) {
	mgr := manager(t, 4, elastic.Config{MinInstances: 1, MaxInstances: 4, Hysteresis: 1})
	mgr.Start(100 * time.Microsecond)
	defer mgr.Stop()
	// The idle fleet drains to the floor without explicit polls.
	deadline := time.After(5 * time.Second)
	for mgr.Router().Instances() > 1 {
		select {
		case <-deadline:
			t.Fatalf("background polls did not retire to the floor; instances = %d", mgr.Router().Instances())
		case <-time.After(time.Millisecond):
		}
	}
	mgr.Stop()
	if c := mgr.Counters(); c.Polls == 0 || c.Retires != 3 {
		t.Fatalf("background counters: %+v", c)
	}
	// Stop is idempotent and a stopped manager still serves traffic.
	mgr.Stop()
	off, ok := mgr.Alloc(per.MinSize)
	if !ok {
		t.Fatal("alloc failed after Stop")
	}
	mgr.Free(off)
}

// TestGrowShrinkUnderLoad is the -race net of the elastic lifecycle: a
// coordinator hammers Poll/Grow/Shrink while workers churn single and
// batched operations through handles, with a shared per-unit claim map
// (test-side atomics) asserting that no two live allocations ever
// overlap — S1/S2 across instance publication, draining and retirement.
func TestGrowShrinkUnderLoad(t *testing.T) {
	cfg := alloc.Config{Total: 1 << 18, MinSize: 64, MaxSize: 1 << 13}
	m, err := multi.New("4lvl-nb", 2, cfg, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	const maxInstances = 6
	mgr, err := elastic.New(m, elastic.Config{MinInstances: 1, MaxInstances: maxInstances, Hysteresis: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The claim map covers the widest possible span (the table never
	// exceeds the cap, holes included: grows reuse holes first).
	claims := make([]atomic.Int32, maxInstances*cfg.Total/cfg.MinSize)
	var overlaps atomic.Int64
	claim := func(off, reserved uint64, delta int32) {
		for u := off / cfg.MinSize; u < (off+reserved)/cfg.MinSize; u++ {
			if v := claims[u].Add(delta); v != 0 && v != 1 {
				overlaps.Add(1)
			}
		}
	}

	workers := 6
	iters := 20000
	if testing.Short() {
		workers, iters = 4, 5000
	}
	geo := m.Geometry()
	var stopLifecycle atomic.Bool
	var lifecycleWg, workerWg sync.WaitGroup
	lifecycleWg.Add(1)
	go func() { // lifecycle coordinator
		defer lifecycleWg.Done()
		rng := rand.New(rand.NewSource(99))
		for !stopLifecycle.Load() {
			switch rng.Intn(4) {
			case 0:
				mgr.Grow()
			case 1:
				mgr.Shrink()
			default:
				mgr.Poll()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		w := w
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			h := mgr.NewHandle()
			rng := rand.New(rand.NewSource(int64(w) + 13))
			type chunk struct{ off, reserved uint64 }
			var live []chunk
			for i := 0; i < iters; i++ {
				switch {
				case len(live) > 0 && rng.Intn(5) < 2:
					k := rng.Intn(len(live))
					c := live[k]
					claim(c.off, c.reserved, -1)
					h.Free(c.off)
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
				case rng.Intn(8) == 0: // batched ops
					size := uint64(64) << rng.Intn(4)
					reserved := geo.SizeOfLevel(geo.LevelForSize(size))
					for _, off := range alloc.HandleAllocBatch(h, size, 1+rng.Intn(12)) {
						claim(off, reserved, 1)
						live = append(live, chunk{off, reserved})
					}
				default:
					size := uint64(1) << (6 + rng.Intn(8)) // 64..8K
					off, ok := h.Alloc(size)
					if !ok {
						continue
					}
					reserved := geo.SizeOfLevel(geo.LevelForSize(size))
					claim(off, reserved, 1)
					live = append(live, chunk{off, reserved})
				}
			}
			var rest []uint64
			for _, c := range live {
				claim(c.off, c.reserved, -1)
				rest = append(rest, c.off)
			}
			alloc.HandleFreeBatch(h, rest)
		}()
	}
	workerWg.Wait()
	stopLifecycle.Store(true)
	lifecycleWg.Wait()

	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d overlapping-claim events across grow/shrink (S1/S2 violated)", n)
	}
	for u := range claims {
		if v := claims[u].Load(); v != 0 {
			t.Fatalf("unit %d left with claim count %d after drain", u, v)
		}
	}
	// Quiesce the lifecycle: everything is freed, so polls retire every
	// pending drain; the fleet lands between the floor and the cap with
	// zero live bytes.
	mgr.Poll()
	for _, info := range m.InstanceInfos() {
		if info.State == multi.Draining {
			t.Fatalf("slot %d still draining after drain+poll (live=%d)", info.Slot, info.Live)
		}
		if info.Live != 0 || info.LiveBytes != 0 {
			t.Fatalf("slot %d reports live=%d liveBytes=%d after full drain", info.Slot, info.Live, info.LiveBytes)
		}
	}
	if got := m.Instances(); got < 1 || got > maxInstances {
		t.Fatalf("Instances = %d outside [1, %d]", got, maxInstances)
	}
	// The surviving fleet still serves a max-size chunk.
	off, ok := mgr.Alloc(cfg.MaxSize)
	if !ok {
		t.Fatal("max-size alloc failed after the storm")
	}
	mgr.Free(off)
}
