// Webserver: a Larson-style server simulation on the public API — the
// workload class the paper motivates with long-running servers whose
// memory is allocated by one thread and released by another.
//
// A pool of worker goroutines serves simulated requests: each request
// allocates a response buffer of a size drawn from a realistic mix,
// parks it in a shared connection table, and releases whatever buffer the
// displaced connection held — usually one allocated by a different worker.
// The allocator is a composed layer stack (the paper's front-end /
// back-end composition, built with WithFrontend and optionally
// WithInstances): every NewHandle is a caching handle, so most requests
// never touch the back-end at all; the run reports each layer's share of
// the traffic.
//
// Telemetry is always on — the server demonstrates the observability
// story end to end: sampled latency percentiles per layer boundary are
// printed at the end, and with -metrics the same registry is served live
// over HTTP as Prometheus text (/metrics) and expvar (/debug/vars):
//
//	webserver -metrics :9100 -duration 30s &
//	curl -s localhost:9100/metrics | grep nbbs_latency_p99
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	nbbs "repro"
)

func main() {
	var (
		workers   = flag.Int("workers", 8, "concurrent request-serving goroutines")
		duration  = flag.Duration("duration", 2*time.Second, "simulation length")
		conns     = flag.Int("conns", 2048, "simultaneous connections (shared table slots)")
		variant   = flag.String("variant", nbbs.Variant4Lvl, "allocator variant")
		instances = flag.Int("instances", 1, "back-end instances (NUMA-style router)")
		metrics   = flag.String("metrics", "", `serve Prometheus text (/metrics) and expvar (/debug/vars) on this address during the run, e.g. ":9100"; empty = no listener`)
	)
	flag.Parse()

	opts := []nbbs.Option{
		nbbs.WithVariant(*variant),
		nbbs.WithFrontend(32),
		nbbs.WithTelemetry(nbbs.TelemetryConfig{}),
	}
	if *instances > 1 {
		opts = append(opts, nbbs.WithInstances(*instances))
	}
	b, err := nbbs.New(nbbs.Config{
		Total:   64 << 20,
		MinSize: 64,
		MaxSize: 64 << 10,
	}, opts...)
	if err != nil {
		log.Fatal(err)
	}

	if *metrics != "" {
		reg := b.Telemetry()
		reg.PublishExpvar("nbbs")
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics: http://%s/metrics (Prometheus text), /debug/vars (expvar)\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	// Response-size mix: mostly small API responses, some page-sized, the
	// occasional large asset. Values are rounded up by the buddy system.
	sizes := []uint64{200, 200, 200, 1500, 1500, 4 << 10, 16 << 10, 64 << 10}

	table := make([]atomic.Uint64, *conns) // 0 = empty, else offset+1
	var served atomic.Uint64
	deadline := time.Now().Add(*duration)

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The stack was built WithFrontend, so NewHandle is a caching
			// handle; the assertions below reach its magazine face.
			h := b.NewHandle().(interface {
				nbbs.Handle
				Flush()
				CacheStats() nbbs.CacheStats
			})
			defer h.Flush()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for time.Now().Before(deadline) {
				for k := 0; k < 128; k++ {
					size := sizes[rng.Intn(len(sizes))]
					var repl uint64
					if off, ok := h.Alloc(size); ok {
						repl = off + 1
					}
					slot := &table[rng.Intn(len(table))]
					if old := slot.Swap(repl); old != 0 {
						h.Free(old - 1) // often allocated by another worker
					}
					served.Add(1)
				}
			}
			cs := h.CacheStats()
			fmt.Printf("worker %d: %5.1f%% of allocations served from magazines (%d hits, %d misses, %d spills)\n",
				w, 100*float64(cs.Hits)/float64(cs.Hits+cs.Misses), cs.Hits, cs.Misses, cs.Spills)
		}()
	}
	wg.Wait()

	// Tear down live connections.
	for i := range table {
		if v := table[i].Swap(0); v != 0 {
			b.Free(v - 1)
		}
	}
	fmt.Printf("\nserved %d requests in %v (%.0f req/s) on %s\n",
		served.Load(), *duration, float64(served.Load())/duration.Seconds(), b.Name())
	fmt.Printf("per-layer traffic (top-down):\n")
	for _, layer := range b.LayerStats() {
		fmt.Printf("  %-24s allocs=%-10d frees=%-10d extra=%v\n",
			layer.Layer, layer.Stats.Allocs, layer.Stats.Frees, layer.Extra)
	}
	fmt.Printf("latency percentiles (sampled, ns):\n")
	for _, ll := range b.Telemetry().Latencies() {
		for _, op := range ll.Ops {
			if op.Samples == 0 {
				continue
			}
			fmt.Printf("  %-12s %-12s samples=%-8d p50=%-6d p99=%-6d p999=%d\n",
				ll.Layer, op.Op, op.Samples, op.P50, op.P99, op.P999)
		}
	}
}
