//go:build linux

package mem

import (
	"os"
	"sort"
	"sync"
	"syscall"
	"unsafe"
)

// Linux NUMA backend: topology from sysfs, placement via the raw mbind
// and get_mempolicy syscalls (numbers wired per-architecture in the
// numa_sys_linux_*.go files; architectures without them degrade to the
// bookkeeping-only behavior, same as non-Linux platforms).

const (
	// mpolPreferred allocates on the given node, silently falling back to
	// others under memory pressure — the right strictness for an
	// allocator that must keep serving when a node fills up.
	mpolPreferred = 1
	// get_mempolicy flags: return the node of the page at addr.
	mpolFNode = 1
	mpolFAddr = 2
)

var (
	numaOnce  sync.Once
	numaNodes []int
	numaCPUs  map[int]int // cpu -> node
)

// numaDiscover reads the node topology from sysfs once. Any read or
// parse failure leaves the single-node fallback, never an error: NUMA
// placement is an optimization, and machines without the sysfs tree
// (containers, odd kernels) just run unplaced.
func numaDiscover() {
	numaNodes = []int{0}
	numaCPUs = map[int]int{}
	online, err := os.ReadFile("/sys/devices/system/node/online")
	if err != nil {
		return
	}
	nodes, err := parseIDList(string(online))
	if err != nil || len(nodes) == 0 {
		return
	}
	sort.Ints(nodes)
	numaNodes = nodes
	for _, n := range nodes {
		list, err := os.ReadFile("/sys/devices/system/node/node" + itoa(n) + "/cpulist")
		if err != nil {
			continue
		}
		cpus, err := parseIDList(string(list))
		if err != nil {
			continue
		}
		for _, c := range cpus {
			numaCPUs[c] = n
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func numaNodeIDs() []int {
	numaOnce.Do(numaDiscover)
	return numaNodes
}

func nodeOfCPU(cpu int) int {
	numaOnce.Do(numaDiscover)
	if n, ok := numaCPUs[cpu]; ok {
		return n
	}
	return numaNodes[0]
}

func numaSupported() bool {
	numaOnce.Do(numaDiscover)
	return numaHaveSyscalls
}

// osBindNode installs a preferred-node policy on the window's VMA. Called
// before the commit touch, so first-touch faults the pages onto the
// node. Best-effort by contract: a failure costs locality, not
// correctness.
func osBindNode(buf []byte, node int) error {
	if !numaHaveSyscalls || len(buf) == 0 || node < 0 || node > 62 {
		return nil
	}
	mask := uint64(1) << uint(node)
	// maxnode counts one past the highest representable bit; 65 makes the
	// kernel copy exactly the 8 mask bytes supplied.
	_, _, errno := syscall.Syscall6(sysMbind,
		uintptr(unsafe.Pointer(&buf[0])), uintptr(len(buf)),
		mpolPreferred, uintptr(unsafe.Pointer(&mask)), 65, 0)
	if errno != 0 {
		return errno
	}
	return nil
}

// osNodeOfAddr returns the node currently backing the page at p.
func osNodeOfAddr(p unsafe.Pointer) (int, bool) {
	if !numaHaveSyscalls {
		return 0, false
	}
	var node int32
	_, _, errno := syscall.Syscall6(sysGetMempolicy,
		uintptr(unsafe.Pointer(&node)), 0, 0,
		uintptr(p), mpolFNode|mpolFAddr, 0)
	if errno != 0 || node < 0 {
		return 0, false
	}
	return int(node), true
}
