package alloc

import (
	"strings"
	"testing"

	"repro/internal/geometry"
)

type fakeAllocator struct{ name string }

func (f *fakeAllocator) Name() string                { return f.name }
func (f *fakeAllocator) Geometry() geometry.Geometry { return geometry.Geometry{} }
func (f *fakeAllocator) Alloc(uint64) (uint64, bool) { return 0, false }
func (f *fakeAllocator) Free(uint64)                 {}
func (f *fakeAllocator) NewHandle() Handle           { return nil }
func (f *fakeAllocator) Stats() Stats                { return Stats{} }

func TestRegistry(t *testing.T) {
	Register("test-fake", func(cfg Config) (Allocator, error) {
		return &fakeAllocator{name: "test-fake"}, nil
	})
	a, err := Build("test-fake", Config{})
	if err != nil || a.Name() != "test-fake" {
		t.Fatalf("Build = %v, %v", a, err)
	}
	found := false
	for _, n := range Names() {
		if n == "test-fake" {
			found = true
		}
	}
	if !found {
		t.Error("registered name missing from Names()")
	}
}

func TestBuildUnknown(t *testing.T) {
	_, err := Build("no-such-allocator", Config{})
	if err == nil || !strings.Contains(err.Error(), "unknown allocator") {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register("test-dup", func(Config) (Allocator, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("test-dup", func(Config) (Allocator, error) { return nil, nil })
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Allocs: 1, Frees: 2, AllocFails: 3, RMW: 4, CASFail: 5, Retries: 6, LockAcq: 7}
	b := Stats{Allocs: 10, Frees: 20, AllocFails: 30, RMW: 40, CASFail: 50, Retries: 60, LockAcq: 70}
	a.Add(b)
	want := Stats{Allocs: 11, Frees: 22, AllocFails: 33, RMW: 44, CASFail: 55, Retries: 66, LockAcq: 77}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if a.OpsTotal() != 33 {
		t.Fatalf("OpsTotal = %d, want 33", a.OpsTotal())
	}
}

type fakeSpanner struct{ fakeAllocator }

func (f *fakeSpanner) OffsetSpan() uint64 { return 1 << 30 }

func TestSpanOf(t *testing.T) {
	plain := &fakeAllocator{name: "plain"}
	if got := SpanOf(plain); got != 0 { // fake geometry is zero
		t.Fatalf("SpanOf(plain) = %d, want Geometry().Total", got)
	}
	if got := SpanOf(&fakeSpanner{}); got != 1<<30 {
		t.Fatalf("SpanOf(spanner) = %d, want 1<<30", got)
	}
}

type fakeLayered struct{ fakeAllocator }

func (f *fakeLayered) LayerStats() []LayerStats {
	return []LayerStats{{Layer: "outer"}, {Layer: "inner"}}
}

func TestStackStats(t *testing.T) {
	if got := StackStats(&fakeAllocator{name: "leaf"}); len(got) != 1 || got[0].Layer != "leaf" {
		t.Fatalf("StackStats(leaf) = %+v", got)
	}
	if got := StackStats(&fakeLayered{}); len(got) != 2 || got[0].Layer != "outer" {
		t.Fatalf("StackStats(layered) = %+v", got)
	}
}
