package elastic_test

import (
	"syscall"
	"testing"
	"time"

	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/multi"
)

// obs builds a minimal observation: one active slot carrying the whole
// utilization, so LeastUtilizedActive has a victim to name.
func obs(step uint64, u float64) elastic.Observation {
	return elastic.Observation{
		Step:        step,
		Utilization: u,
		Active:      1,
		Published:   1,
		Floor:       1,
		Cap:         4,
		Slots: []elastic.SlotObs{
			{Slot: 0, State: multi.Active, Live: 1, LiveBytes: int64(u * 1024), Utilization: u},
		},
	}
}

func TestWatermarkPolicyDefaults(t *testing.T) {
	p := elastic.NewWatermarkPolicy(0, 0, 0)
	if p.High != elastic.DefaultHighWater || p.Low != elastic.DefaultLowWater || p.Hysteresis != elastic.DefaultHysteresis {
		t.Fatalf("zero-value construction: %+v", p)
	}
	if p.Name() != "watermark" {
		t.Fatalf("Name = %q", p.Name())
	}
}

// TestWatermarkPolicyStreaks pins the extracted hysteresis rule on
// synthetic observations: a sustained high streak grows, a sustained low
// streak drains the least-utilized active slot, and any in-between step
// resets both streaks.
func TestWatermarkPolicyStreaks(t *testing.T) {
	p := elastic.NewWatermarkPolicy(0.75, 0.25, 2)
	steps := []struct {
		u    float64
		want elastic.DecisionKind
	}{
		{0.80, elastic.Hold},    // first high step: streak 1 of 2
		{0.80, elastic.GrowOne}, // second: streak met
		{0.80, elastic.Hold},    // streak was consumed
		{0.50, elastic.Hold},    // mid-band resets
		{0.80, elastic.Hold},
		{0.20, elastic.Hold}, // a low step also resets the high streak
		{0.20, elastic.DrainSlot},
		{0.20, elastic.Hold},
	}
	for i, s := range steps {
		d := p.Decide(obs(uint64(i+1), s.u))
		if d.Kind != s.want {
			t.Fatalf("step %d (u=%.2f): %v, want %v", i, s.u, d.Kind, s.want)
		}
		if d.Kind == elastic.DrainSlot && d.Slot != 0 {
			t.Fatalf("step %d: drain victim %d, want the active slot 0", i, d.Slot)
		}
	}
}

// TestPredictivePreGrow pins the pre-grow property: on a steady
// utilization ramp the predictive policy asks for capacity while the
// observed utilization is still below the high watermark — before the
// reactive rule would — because its extrapolation crosses first.
func TestPredictivePreGrow(t *testing.T) {
	p := elastic.NewPredictivePolicy(elastic.PredictiveConfig{HighWater: 0.75, LowWater: 0.25, Hysteresis: 1})
	w := elastic.NewWatermarkPolicy(0.75, 0.25, 1)
	var pGrew, wGrew float64 = -1, -1
	u := 0.05
	for step := uint64(1); u < 0.95; step, u = step+1, u+0.05 {
		if pGrew < 0 && p.Decide(obs(step, u)).Kind == elastic.GrowOne {
			pGrew = u
		}
		if wGrew < 0 && w.Decide(obs(step, u)).Kind == elastic.GrowOne {
			wGrew = u
		}
	}
	if pGrew < 0 || wGrew < 0 {
		t.Fatalf("ramp never triggered a grow: predictive %.2f, watermark %.2f", pGrew, wGrew)
	}
	if pGrew >= 0.75 {
		t.Fatalf("predictive grew at u=%.2f, not before the 0.75 watermark", pGrew)
	}
	if pGrew >= wGrew {
		t.Fatalf("predictive grew at u=%.2f, watermark at %.2f — no pre-grow lead", pGrew, wGrew)
	}
	if ewma, slope := p.State(); ewma <= 0 || slope <= 0 {
		t.Fatalf("estimator state after a rising ramp: ewma=%.3f slope=%.3f", ewma, slope)
	}
}

// TestPredictiveHoldsThroughTrough pins the shrink-delay property: a
// transient dip below the low watermark inside otherwise-busy traffic
// does not drain (the EWMA rides it out), while the reactive rule at the
// same hysteresis would have.
func TestPredictiveHoldsThroughTrough(t *testing.T) {
	p := elastic.NewPredictivePolicy(elastic.PredictiveConfig{HighWater: 0.95, LowWater: 0.25, Hysteresis: 2})
	w := elastic.NewWatermarkPolicy(0.95, 0.25, 2)
	trough := []float64{0.50, 0.20, 0.20, 0.60}
	var pDrained, wDrained bool
	for i, u := range trough {
		if p.Decide(obs(uint64(i+1), u)).Kind == elastic.DrainSlot {
			pDrained = true
		}
		if w.Decide(obs(uint64(i+1), u)).Kind == elastic.DrainSlot {
			wDrained = true
		}
	}
	if !wDrained {
		t.Fatal("watermark rule did not drain in the trough — scenario lost its point")
	}
	if pDrained {
		t.Fatal("predictive policy drained through a transient trough")
	}
	// A genuinely sustained idle period must still shrink.
	for i := 0; i < 10; i++ {
		if p.Decide(obs(uint64(10+i), 0.05)).Kind == elastic.DrainSlot {
			return
		}
	}
	t.Fatal("predictive policy never drains a sustained idle fleet")
}

// rampCounters runs the shared backpressure scenario for one policy: a
// single mapped instance ramps toward saturation with one Poll per step,
// and the moment observed utilization reaches the high watermark the
// environment starts refusing commits (the memory pressure a real peak
// brings). A policy that grows before that moment gets its instance;
// one that grows at the watermark meets ENOMEM and the backoff ladder.
func rampCounters(t *testing.T, pol elastic.Policy) elastic.Counters {
	t.Helper()
	m, err := multi.New("4lvl-nb", 1, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	in := fault.New(7)
	r, err := mem.New(m.InstanceSpan(), 4, mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, elastic.Config{MinInstances: 1, MaxInstances: 4, Hysteresis: 1, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	// Logical clock advancing 200us per read: backoff windows (1ms base)
	// elapse after a handful of polls, so retries actually happen and the
	// retry/deny split is deterministic.
	now := time.Unix(0, 0)
	mgr.SetClock(func() time.Time {
		now = now.Add(200 * time.Microsecond)
		return now
	})
	h := mgr.NewHandle()
	const size = 1 << 10 // 64 chunks per 64KiB instance
	armed := false
	for step := 0; step < 60; step++ {
		for j := 0; j < 3; j++ { // ~4.7% of one instance per step
			h.Alloc(size)
		}
		if !armed && mgr.Utilization() >= elastic.DefaultHighWater {
			in.Set(fault.FailAlways(fault.Commit, syscall.ENOMEM))
			armed = true
		}
		mgr.Poll()
	}
	return mgr.Counters()
}

// TestPredictiveBeatsWatermarkUnderPeakPressure is the acceptance
// comparison: at equal floor/cap on the same ramp, the predictive policy
// publishes capacity before the environment degrades and so takes fewer
// backpressure denials and grow retries than the reactive rule.
func TestPredictiveBeatsWatermarkUnderPeakPressure(t *testing.T) {
	wc := rampCounters(t, elastic.NewWatermarkPolicy(0, 0, 1))
	pc := rampCounters(t, elastic.NewPredictivePolicy(elastic.PredictiveConfig{Hysteresis: 1}))
	if wc.GrowFailures == 0 {
		t.Fatalf("watermark run never hit the commit fault — scenario lost its point: %+v", wc)
	}
	if pc.Grows == 0 {
		t.Fatalf("predictive run never grew: %+v", pc)
	}
	if pc.DeniedBackpressure >= wc.DeniedBackpressure {
		t.Fatalf("denied-backpressure: predictive %d, watermark %d — no improvement",
			pc.DeniedBackpressure, wc.DeniedBackpressure)
	}
	if pc.GrowRetries >= wc.GrowRetries {
		t.Fatalf("grow-retries: predictive %d, watermark %d — no improvement",
			pc.GrowRetries, wc.GrowRetries)
	}
}
