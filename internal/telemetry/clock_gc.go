//go:build gc

package telemetry

import (
	_ "unsafe" // for go:linkname
)

// nanotime is the runtime's monotonic clock: one VDSO read on Linux,
// with none of time.Now's wall-clock assembly — the cheapest "rdtsc-style"
// timestamp the gc toolchain exposes. Same linkname pattern as
// internal/proc's procPin hint.
//
//go:linkname nanotime runtime.nanotime
func nanotime() int64
