// Package nbbs is a non-blocking buddy system for scalable memory
// management on multi-core machines, a Go implementation of Marotta,
// Ianni, Scarselli, Pellegrini and Quaglia, "A Non-blocking Buddy System
// for Scalable Memory Allocation on Multi-core Machines" (IEEE CLUSTER
// 2018).
//
// A Buddy manages a contiguous region of Total bytes, splitting it
// recursively into power-of-two chunks between MinSize and MaxSize, and
// serves concurrent Alloc/Free requests without any lock: coordination
// happens through single-word compare-and-swap on the allocator metadata,
// so threads proceed in parallel and only retry when they genuinely
// conflicted on the same chunk.
//
// Two non-blocking layouts are provided — Variant1Lvl with one status word
// per tree node, and Variant4Lvl (the default) packing four tree levels
// into each 64-bit word to quarter the atomic instructions per operation —
// along with the spin-lock baselines used by the paper's evaluation
// (Variant1LvlLocked, Variant4LvlLocked, VariantCloudwu,
// VariantLinuxStyle), which are handy as drop-in comparison points.
//
// The allocator trades in offsets relative to the managed region, which
// makes it a back-end in the paper's terminology: it can manage memory it
// does not own (a file, a shared segment, device memory).
//
// A Buddy is really a layer stack (see DESIGN.md): the leaf allocator can
// be wrapped by any combination of composable layers, selected by
// options — WithInstances adds the multi-instance (NUMA-style) router,
// WithFrontend adds per-worker caching magazines, WithTrace records the
// operation stream, and WithMaterializedRegion backs the offset space
// with real bytes so AllocBytes can hand out slices. The layers compose
// freely, including the full production deployment the paper's
// conclusions describe:
//
//	b, err := nbbs.New(nbbs.Config{Total: 1 << 24, MinSize: 64, MaxSize: 1 << 18},
//	    nbbs.WithInstances(4),            // one back-end per NUMA node
//	    nbbs.WithFrontend(32),            // per-worker magazines
//	    nbbs.WithMaterializedRegion())    // real memory behind the offsets
//	...
//	h := b.NewHandle() // one per worker goroutine; caching when WithFrontend
//	off, ok := h.Alloc(4096)
//	...
//	h.Free(off)
//
// Handles are the intended hot-path interface: they carry the per-worker
// scan scatter state (and magazines, when cached) plus private
// statistics. The Buddy's own Alloc/Free are convenience wrappers safe
// for occasional use from any goroutine.
package nbbs

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/frontend"
	"repro/internal/geometry"
	"repro/internal/mem"
	"repro/internal/multi"
	"repro/internal/shard"
	"repro/internal/slab"
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/trace"

	// Register all allocator variants and composed stacks.
	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

// Variant names an allocator implementation.
type Variant = string

// The available variants, by evaluation label.
const (
	// Variant4Lvl is the non-blocking buddy system with the 4-levels
	// optimization (paper §III.D) — the default and fastest variant.
	Variant4Lvl Variant = "4lvl-nb"
	// Variant1Lvl is the non-blocking buddy system with one status word
	// per node (paper §III.A-C).
	Variant1Lvl Variant = "1lvl-nb"
	// Variant4LvlLocked and Variant1LvlLocked are the same layouts
	// serialized by a global spin-lock (evaluation baselines).
	Variant4LvlLocked Variant = "4lvl-sl"
	Variant1LvlLocked Variant = "1lvl-sl"
	// VariantCloudwu is the cloudwu/buddy tree allocator under a spin-lock.
	VariantCloudwu Variant = "buddy-sl"
	// VariantLinuxStyle is a Linux-kernel-shaped free-list buddy under a
	// spin-lock.
	VariantLinuxStyle Variant = "linux-buddy"
)

// Variants lists every registered allocator label, composed stacks
// included (e.g. "cached+multi4+4lvl-nb").
func Variants() []string { return alloc.Names() }

// ConfigVersion is the revision of the Config schema. Version 1 was the
// geometry-only struct (Total/MinSize/MaxSize) with every layer selected
// through functional options; version 2 groups the full stack
// description into the sub-structs below, demoting the With* options to
// thin adapters over the same fields. The constant exists so embedders
// that persist configurations can tag which schema they wrote.
const ConfigVersion = 2

// RoutingPolicy selects how multi-instance handles bind to back-ends:
// RoutingRoundRobin spreads handles across instances in creation order,
// RoutingFixed pins every handle to instance 0 (the paper's Figure 12
// same-instance contention setup).
type RoutingPolicy = multi.Policy

// The routing policies, re-exported from the router layer.
const (
	RoutingRoundRobin RoutingPolicy = multi.RoundRobin
	RoutingFixed      RoutingPolicy = multi.Fixed
)

// BackingConfig describes what sits under the leaf allocators: how many
// instances, how their handles route, and what memory (if any) backs the
// offset space. The zero value is a single instance with no real memory
// behind it — the paper's pure back-end.
type BackingConfig struct {
	// Instances deploys n independent same-geometry back-ends behind one
	// offset space (the multi-instance NUMA-style router; 0 or 1 = a
	// single leaf unless another field below requires the router).
	Instances int
	// Routing selects the handle-to-instance binding policy
	// (RoutingRoundRobin, the default, or RoutingFixed).
	Routing RoutingPolicy
	// Mapped backs each instance window with platform mapped memory,
	// committed while the instance is published and decommitted when an
	// elastic retirement unpublishes it (see WithMappedMemory).
	Mapped bool
	// HugePages requests MADV_HUGEPAGE for mapped windows (Linux only;
	// see WithHugePages).
	HugePages bool
	// Materialize backs the managed region with real memory so
	// AllocBytes/Bytes hand out slices (see WithMaterializedRegion).
	Materialize bool
	// Faults routes the mapped region's lifecycle syscalls through a
	// deterministic fault injector (see WithFaultInjection).
	Faults *FaultInjector
}

// FrontendConfig describes the layers above the router: per-CPU sharded
// routing, per-worker caching magazines with the shared depot, and the
// size-class slab. The zero value adds none of them.
type FrontendConfig struct {
	// Sharded layers per-CPU sharded routing over the router; Shards is
	// the shard count (<= 0 = GOMAXPROCS at build time). See WithSharding.
	Sharded bool
	Shards  int
	// Cached adds per-worker caching magazines; Magazine is the
	// per-size-class capacity (0 = default). See WithFrontend.
	Cached   bool
	Magazine int
	// Depot attaches the shared magazine depot (implies Cached);
	// DepotCapacity bounds retained full magazines per size class
	// (0 = default). See WithDepot.
	Depot         bool
	DepotCapacity int
	// BatchRefill tunes the back-end batch brought up after a depot miss
	// (0 = half a magazine). See WithBatchRefill.
	BatchRefill int
	// Slab layers the size-class slab; SlabCutoff bounds the largest
	// class (0 = default). See WithSlab.
	Slab       bool
	SlabCutoff uint64
}

// TelemetrySettings turns the always-on telemetry layer on and tunes it;
// the zero value disables telemetry entirely (and the stack pays
// nothing). See WithTelemetry.
type TelemetrySettings struct {
	// Enabled builds the stack with the telemetry layer.
	Enabled bool
	// TelemetryConfig tunes sampling and ring sizing; the zero value
	// takes every default.
	TelemetryConfig
}

// Config describes a buddy allocator stack (schema ConfigVersion).
//
// The geometry triple sizes each instance: all three values must be
// powers of two with MinSize <= MaxSize <= Total, and with multiple
// instances the global offset space is Instances times Total. The
// remaining fields select and tune the composable layers, grouped by
// where they sit in the stack; every zero value means "off" or "default",
// so the minimal Config{Total, MinSize, MaxSize} builds the same bare
// single-instance allocator it always has. The functional options
// (WithInstances, WithFrontend, ...) remain supported as thin adapters
// that rewrite these same fields after Config is read.
type Config struct {
	// Total is the managed region size in bytes (per instance).
	Total uint64
	// MinSize is the allocation unit; requests round up to it.
	MinSize uint64
	// MaxSize caps a single allocation.
	MaxSize uint64

	// Variant selects the leaf allocator implementation ("" =
	// Variant4Lvl). Registered composite labels are accepted too.
	Variant Variant
	// Backing configures the router and the memory behind it.
	Backing BackingConfig
	// Elastic, when non-nil, wraps the router with the elastic capacity
	// manager (implies at least one routed instance). See WithElastic.
	Elastic *ElasticConfig
	// Frontend configures the layers above the router.
	Frontend FrontendConfig
	// Telemetry turns on and tunes the telemetry layer.
	Telemetry TelemetrySettings
	// Trace, when non-nil, records every handle operation for
	// deterministic replay. See WithTrace.
	Trace *Trace
}

// Stats are the operation counters aggregated across an instance's
// handles; see the field docs in the paper-reproduction harness for how
// RMW/CASFail/Retries relate to the algorithm.
type Stats = alloc.Stats

// LayerStats is one layer's contribution to a stack's counters; see
// Buddy.LayerStats.
type LayerStats = alloc.LayerStats

// CacheStats counts front-end magazine behaviour; see CachedHandle.
type CacheStats = frontend.CacheStats

// Trace is a recorded operation stream; pass one to WithTrace to record
// every handle's operations for deterministic replay (internal/trace).
type Trace = trace.Trace

// Handle is a per-worker allocation interface; obtain one per goroutine
// from Buddy.NewHandle. It is not safe for concurrent use.
type Handle = alloc.Handle

// Buddy is a buddy-system allocator stack: a leaf variant, optionally
// wrapped by the multi-instance router, the caching front-end, the trace
// recorder and the materialized arena.
type Buddy struct {
	st *stack.Stack
}

// Option configures New.
type Option func(*options)

type options struct {
	variant     Variant
	instances   int
	policy      multi.Policy
	elastic     *elastic.Config
	cached      bool
	magazine    int
	depot       bool
	depotCap    int
	batchRefill int
	slab        bool
	slabCutoff  uint64
	record      *trace.Trace
	materialize bool
	mapped      bool
	hugePages   bool
	sharded     bool
	shards      int
	faults      *fault.Injector
	telemetry   *telemetry.Registry
}

// WithVariant selects the allocator implementation (default Variant4Lvl).
// Registered composite stacks are accepted too.
func WithVariant(v Variant) Option { return func(o *options) { o.variant = v } }

// WithInstances deploys n independent same-geometry back-ends behind one
// offset space with round-robin handle routing and fallback — the
// multi-instance (NUMA-style) deployment of the paper's related work.
func WithInstances(n int) Option { return func(o *options) { o.instances = n } }

// ElasticConfig is the watermark policy of the elastic capacity manager;
// see WithElastic. Zero fields take the documented defaults.
type ElasticConfig = elastic.Config

// ElasticManager is the capacity manager layer; see Buddy.Elastic.
type ElasticManager = elastic.Manager

// ElasticPolicy is the pluggable grow/shrink decision rule of the
// elastic manager; set one on ElasticConfig.Policy. Nil builds the
// reactive WatermarkPolicy from the config's watermark fields.
type ElasticPolicy = elastic.Policy

// The built-in elastic policies and their configuration, re-exported
// from the elastic layer: WatermarkPolicy is the reactive hysteresis
// rule (the default), PredictivePolicy the EWMA + slope estimator that
// pre-grows ahead of utilization ramps and holds shrink through
// transient troughs.
type (
	WatermarkPolicy  = elastic.WatermarkPolicy
	PredictivePolicy = elastic.PredictivePolicy
	PredictiveConfig = elastic.PredictiveConfig
)

// NewWatermarkPolicy and NewPredictivePolicy build the built-in elastic
// policies (zero arguments/fields take the documented defaults).
var (
	NewWatermarkPolicy  = elastic.NewWatermarkPolicy
	NewPredictivePolicy = elastic.NewPredictivePolicy
)

// MigrationConfig tunes the elastic manager's live-chunk migration step
// (ElasticConfig.Migration): stragglers on a draining slot are copied
// onto active slots so retirement completes in bounded polls. Moving a
// chunk changes its offset, so only enable it when every chunk owner
// tracks moves through ElasticManager.OnMigrate — and leave it off under
// offset-caching layers (the front-end's magazines, the slab's runs)
// unless those layers' holdings are migration-aware.
type MigrationConfig = elastic.MigrationConfig

// WithElastic wraps the multi-instance router with the elastic capacity
// manager: the instance set grows under allocation pressure (up to
// MaxInstances) and drains and retires idle instances (down to
// MinInstances) — the deployment for diurnal or bursty workloads that a
// fixed region either over-provisions or OOMs. Implies WithInstances(1)
// when no instance count was set; excludes WithMaterializedRegion (a
// materialized region cannot follow a growing offset span). Drive the
// lifecycle with Buddy.Elastic().Poll() (deterministic) or
// Buddy.Elastic().Start(interval) (background).
func WithElastic(cfg ElasticConfig) Option {
	return func(o *options) {
		o.elastic = &cfg
		if o.instances < 1 {
			o.instances = 1
		}
	}
}

// WithMappedMemory backs each instance's offset window with platform
// mapped memory bound to the multi router (implying WithInstances(1)
// when no instance count was set): on Linux the windows live in
// mmap-reserved address space that is committed (mprotect + touch) while
// the instance is published and decommitted (MADV_DONTNEED) when an
// elastic retirement unpublishes it — the point where a shrink actually
// returns RSS to the OS. Other platforms run a portable bookkeeping
// fallback with identical lifecycle semantics and no RSS effect.
// Composes with WithElastic (the lifecycle driver) and with
// WithMaterializedRegion (the arena borrows the router's windows, so
// Bytes follows the commit map). Commit accounting surfaces in
// LayerStats as mem_reserved / mem_committed / mem_decommits /
// mem_recommits, and in MemStats.
func WithMappedMemory() Option {
	return func(o *options) {
		o.mapped = true
		if o.instances < 1 {
			o.instances = 1
		}
	}
}

// WithHugePages requests MADV_HUGEPAGE for mapped windows (Linux only;
// effective when the per-instance Total is a multiple of 2MiB — see
// internal/mem's alignment rule). Only meaningful with WithMappedMemory.
func WithHugePages() Option { return func(o *options) { o.hugePages = true } }

// WithSharding layers per-CPU sharded routing over the router (implying
// WithInstances(1) when no instance count was set): every handle
// operation keys to one of n shards by a cheap processor hint, and each
// shard gets an affine router preference, a local cache of recently
// freed chunks, and an inbound stash that remote frees are pushed
// through — so the steady-state alloc/free path stays on CPU-local
// state and the trees see only cache misses and batched drains
// (internal/shard). n <= 0 takes GOMAXPROCS at build time. Combined
// with WithMappedMemory on Linux, each instance window is additionally
// committed onto the NUMA node of the CPU its shard runs on
// (first-touch under an mbind preferred policy; a bookkeeping-only
// no-op on other platforms and single-node machines). Shard counters
// surface in LayerStats as shard_hits / shard_misses /
// shard_remote_frees / shard_stash_drains and friends, and through
// Buddy.Sharded().
func WithSharding(n int) Option {
	return func(o *options) {
		o.sharded = true
		o.shards = n
		if o.instances < 1 {
			o.instances = 1
		}
	}
}

// WithFrontend layers per-worker caching magazines over the back-end:
// every NewHandle becomes a caching handle with the given per-size-class
// magazine capacity (0 = default). Frees park chunks in magazines served
// back to later allocations, so most operations never reach the
// back-end.
func WithFrontend(magazine int) Option {
	return func(o *options) { o.cached = true; o.magazine = magazine }
}

// WithDepot attaches the shared magazine depot to the caching front-end
// (implying WithFrontend when not set): when a worker's magazine
// overflows it is parked whole in a per-size-class global depot in O(1),
// and a worker running dry grabs a full magazine back the same way —
// the cross-thread hand-off cost of remote frees becomes one pointer
// swap per magazine instead of a back-end round trip per chunk. Depot
// misses and overflows cross into the back-end as batches via the
// bulk-transfer contract (AllocBatch/FreeBatch). capacity bounds the
// full magazines retained per size class (0 = default).
func WithDepot(capacity int) Option {
	return func(o *options) { o.depot = true; o.depotCap = capacity }
}

// WithBatchRefill tunes how many chunks a back-end batch refill brings up
// after a depot miss (default: half a magazine). Only meaningful with
// WithDepot.
func WithBatchRefill(n int) Option { return func(o *options) { o.batchRefill = n } }

// WithSlab layers the size-class slab over the stack (above the caching
// front-end, when present): requests up to the cutoff are served from
// fixed-size object runs carved out of buddy chunks — the class table
// interleaves half-steps between the powers of two, cutting worst-case
// internal fragmentation from 2x to 1.5x, and one buddy operation
// provisions hundreds of objects. Larger requests pass through
// untouched. cutoff bounds the largest class (0 = the default, clamped
// to the geometry).
func WithSlab(cutoff uint64) Option {
	return func(o *options) { o.slab = true; o.slabCutoff = cutoff }
}

// WithTrace records every handle operation into t for deterministic
// replay and regression debugging.
func WithTrace(t *Trace) Option { return func(o *options) { o.record = t } }

// FaultInjector is a deterministic syscall-fault source for the mapped
// backing region; build schedules with the internal/fault constructors
// re-exported here (FailNth, FailAlways, FailRange, FailProb) and
// install one with WithFaultInjection. Injected faults are recorded so
// a failing schedule replays exactly (internal/fault).
type FaultInjector = fault.Injector

// Fault rule constructors and the replayable schedule record,
// re-exported for chaos tooling built on the public facade.
var (
	NewFaultInjector = fault.New
	ReplayFaults     = fault.Replay
)

// Typed capacity-refusal sentinels of the elastic manager, re-exported
// so callers can errors.Is on ElasticManager.Grow failures: ErrAtCap is
// the policy refusing at MaxInstances, ErrBackpressure is the manager
// holding off after an environmental grow failure (the wrapped chain
// carries the underlying cause).
var (
	ErrAtCap        = elastic.ErrAtCap
	ErrBackpressure = elastic.ErrBackpressure
)

// WithFaultInjection routes the mapped region's lifecycle syscalls
// (reserve/commit/hugepage-advise/bind/decommit) through a
// deterministic fault injector — the testing hook behind the stack's
// graceful-degradation ladder (see DESIGN.md, "Failure semantics").
// Requires WithMappedMemory. A nil injector injects nothing.
func WithFaultInjection(in *FaultInjector) Option { return func(o *options) { o.faults = in } }

// WithMaterializedRegion backs the managed region with real memory so
// AllocBytes/Bytes can hand out slices. Composes with WithInstances: the
// arena keeps one sub-region per instance behind the global offset space.
func WithMaterializedRegion() Option { return func(o *options) { o.materialize = true } }

// TelemetryRegistry is the always-on telemetry root of a stack built
// WithTelemetry: per-layer-boundary latency percentiles via Latencies,
// the flight-recorder event ring via Ring, an expvar/Prometheus-text
// HTTP handler via Handler (internal/telemetry).
type TelemetryRegistry = telemetry.Registry

// TelemetryConfig tunes WithTelemetry; the zero value takes every
// default (sample one in 64 single-chunk operations, a 256-event ring
// sharded per processor).
type TelemetryConfig = telemetry.Config

// TelemetryEvent is one flight-recorder entry; see TelemetryRegistry.Ring.
type TelemetryEvent = telemetry.Event

// WithTelemetry enables the always-on telemetry layer: latency probes at
// every layer boundary feeding per-handle lock-free histograms (sampled,
// folded into retained accumulators on handle Close), and a
// flight-recorder event ring the lifecycle layers (elastic, mapped
// memory, fault injector, depot, slab) publish into. Retrieve the
// registry with Buddy.Telemetry. Overhead is bounded by sampling — see
// DESIGN.md, "Observability" — and a stack built without this option
// pays nothing at all.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(o *options) { o.telemetry = telemetry.New(cfg) }
}

func build(cfg Config, o options) (*Buddy, error) {
	st, err := stack.Build(stack.Spec{
		Variant:       o.variant,
		Per:           alloc.Config{Total: cfg.Total, MinSize: cfg.MinSize, MaxSize: cfg.MaxSize},
		Instances:     o.instances,
		Policy:        o.policy,
		Elastic:       o.elastic,
		Cached:        o.cached,
		Magazine:      o.magazine,
		Depot:         o.depot,
		DepotCapacity: o.depotCap,
		BatchRefill:   o.batchRefill,
		Slab:          o.slab,
		SlabCutoff:    o.slabCutoff,
		Record:        o.record,
		Materialize:   o.materialize,
		Mapped:        o.mapped,
		HugePages:     o.hugePages,
		Sharded:       o.sharded,
		Shards:        o.shards,
		Faults:        o.faults,
		Telemetry:     o.telemetry,
	})
	if err != nil {
		return nil, err
	}
	return &Buddy{st: st}, nil
}

// optionsFromConfig seeds the option state from the structured Config
// fields, applying the same implication rules the corresponding With*
// options apply (elastic, mapped memory and sharding all require at
// least one routed instance).
func optionsFromConfig(cfg Config) options {
	o := options{
		variant:     cfg.Variant,
		instances:   cfg.Backing.Instances,
		policy:      cfg.Backing.Routing,
		mapped:      cfg.Backing.Mapped,
		hugePages:   cfg.Backing.HugePages,
		materialize: cfg.Backing.Materialize,
		faults:      cfg.Backing.Faults,
		sharded:     cfg.Frontend.Sharded,
		shards:      cfg.Frontend.Shards,
		cached:      cfg.Frontend.Cached,
		magazine:    cfg.Frontend.Magazine,
		depot:       cfg.Frontend.Depot,
		depotCap:    cfg.Frontend.DepotCapacity,
		batchRefill: cfg.Frontend.BatchRefill,
		slab:        cfg.Frontend.Slab,
		slabCutoff:  cfg.Frontend.SlabCutoff,
		record:      cfg.Trace,
	}
	if o.variant == "" {
		o.variant = Variant4Lvl
	}
	if cfg.Elastic != nil {
		ec := *cfg.Elastic
		o.elastic = &ec
	}
	if (o.elastic != nil || o.mapped || o.sharded) && o.instances < 1 {
		o.instances = 1
	}
	if cfg.Telemetry.Enabled {
		o.telemetry = telemetry.New(cfg.Telemetry.TelemetryConfig)
	}
	return o
}

// New builds a buddy allocator stack from its Config description.
// Functional options, when given, apply on top of the Config fields —
// the two forms describe the same stack and mix freely.
func New(cfg Config, opts ...Option) (*Buddy, error) {
	o := optionsFromConfig(cfg)
	for _, opt := range opts {
		opt(&o)
	}
	return build(cfg, o)
}

// Name returns the composed stack label, e.g. "cached+multi[4x 4lvl-nb]".
func (b *Buddy) Name() string { return b.st.Top.Name() }

// Variant returns the leaf implementation label of this instance.
func (b *Buddy) Variant() Variant { return b.st.Variant }

// Total returns the global offset-space size in bytes: the managed
// region, times the instance count under WithInstances.
func (b *Buddy) Total() uint64 { return alloc.SpanOf(b.st.Top) }

// MinSize returns the allocation unit.
func (b *Buddy) MinSize() uint64 { return b.st.Top.Geometry().MinSize }

// MaxSize returns the largest single allocation.
func (b *Buddy) MaxSize() uint64 { return b.st.Top.Geometry().MaxSize }

// Instances returns the number of composed back-end instances (1 unless
// built WithInstances).
func (b *Buddy) Instances() int {
	if b.st.Multi == nil {
		return 1
	}
	return b.st.Multi.Instances()
}

// InstanceOf returns which back-end instance serves an offset.
func (b *Buddy) InstanceOf(offset uint64) int {
	if b.st.Multi == nil {
		return 0
	}
	return b.st.Multi.InstanceOf(offset)
}

// Alloc reserves a chunk of at least size bytes and returns its offset
// within the managed region; ok is false when the instance cannot serve
// the request. Offset 0 is a valid allocation.
func (b *Buddy) Alloc(size uint64) (offset uint64, ok bool) { return b.st.Top.Alloc(size) }

// Free releases a previously allocated chunk by its offset. Freeing an
// offset that is not currently allocated panics.
func (b *Buddy) Free(offset uint64) { b.st.Top.Free(offset) }

// NewHandle returns a per-worker handle; use one handle per goroutine on
// hot paths. With WithFrontend the handle caches in per-size-class
// magazines.
func (b *Buddy) NewHandle() Handle { return b.st.Top.NewHandle() }

// AllocBatch reserves up to n chunks of at least size bytes in one call
// through the stack's bulk-transfer contract: layers with native batching
// (the non-blocking leaves, the router, the depot) serve it in one
// crossing each, the rest are served chunk-at-a-time. A short (possibly
// empty) result means the instance could not serve the remainder.
func (b *Buddy) AllocBatch(size uint64, n int) []uint64 {
	return alloc.AllocBatchOf(b.st.Top, size, n)
}

// FreeBatch releases a batch of previously allocated chunks in one call;
// like Free, releasing an offset that is not currently allocated panics.
func (b *Buddy) FreeBatch(offsets []uint64) { alloc.FreeBatchOf(b.st.Top, offsets) }

// DepotStats are the shared magazine depot's counters; see Buddy.DepotStats.
type DepotStats = frontend.DepotStats

// DepotStats returns the depot counters of a stack built WithDepot; ok is
// false otherwise. Quiescent points only.
func (b *Buddy) DepotStats() (DepotStats, bool) {
	if b.st.Frontend == nil || b.st.Frontend.Depot() == nil {
		return DepotStats{}, false
	}
	return b.st.Frontend.Depot().Stats(), true
}

// Stats aggregates operation counters across all handles at the top
// layer of the stack; call it at quiescent points (not concurrently with
// operations).
func (b *Buddy) Stats() Stats { return b.st.Top.Stats() }

// LayerStats returns per-layer counters top-down — front-end magazine
// hits and spills, router fallbacks, back-end RMW/CAS traffic — so each
// layer's contribution is visible separately. Quiescent points only.
func (b *Buddy) LayerStats() []LayerStats { return b.st.LayerStats() }

// ChunkSize reports the reserved (rounded-up) size of a live allocation.
func (b *Buddy) ChunkSize(offset uint64) uint64 {
	return b.st.Top.(alloc.ChunkSizer).ChunkSize(offset)
}

// Materialized reports whether the region is backed by real memory.
func (b *Buddy) Materialized() bool { return b.st.Arena != nil }

// Bytes returns the memory window of a live allocation as a slice; the
// instance must have been built WithMaterializedRegion. The slice is valid
// until the chunk is freed, and only while the Buddy stays reachable —
// it views mapped memory that is unmapped when the stack is collected,
// so hold the Buddy for as long as any of its byte windows.
func (b *Buddy) Bytes(offset uint64) []byte {
	if b.st.Arena == nil {
		panic("nbbs: Bytes on a stack without WithMaterializedRegion")
	}
	return b.st.Arena.Bytes(offset)
}

// AllocBytes combines Alloc and Bytes: it reserves at least size bytes and
// returns the chunk's window. The returned offset is the Free token.
func (b *Buddy) AllocBytes(size uint64) (buf []byte, offset uint64, ok bool) {
	if b.st.Arena == nil {
		panic("nbbs: AllocBytes on a stack without WithMaterializedRegion")
	}
	return b.st.Arena.AllocBytes(size)
}

// Scrubber is implemented by the non-blocking variants and every stack
// layer: Scrub rebuilds the metadata from the live-allocation index at a
// quiescent point, shedding the conservative residue racing releases may
// strand, and layers forward it inward — the caching front-end flushes
// its magazines first (see DESIGN.md).
type Scrubber = alloc.Scrubber

// Scrub quiesces the stack — flushing front-end magazines and scrubbing
// leaf metadata — and reports whether the leaf variant supports
// scrubbing.
func (b *Buddy) Scrub() bool { return b.st.Scrub() }

// Backend exposes the allocator below the caching/tracing/materializing
// layers — the leaf instance, or the multi-instance router — for
// composition and back-end-level statistics.
func (b *Buddy) Backend() interface {
	Name() string
	Alloc(uint64) (uint64, bool)
	Free(uint64)
} {
	return b.st.Backend
}

// Multi exposes the multi-instance router layer (nil unless built
// WithInstances). Router-level handles — including NewHandleOn for
// explicit NUMA-style pinning — bypass any caching or tracing layers
// stacked above it.
func (b *Buddy) Multi() *Multi { return b.st.Multi }

// Elastic exposes the capacity manager (nil unless built WithElastic).
// Poll drives one grow/drain/retire decision step; Start/Stop run the
// policy on a background interval; Counters and Utilization report the
// lifecycle state.
func (b *Buddy) Elastic() *ElasticManager { return b.st.Elastic }

// Telemetry exposes the telemetry registry (nil unless built
// WithTelemetry): latency percentiles per layer boundary, the
// flight-recorder ring, and the HTTP/expvar exporters.
func (b *Buddy) Telemetry() *TelemetryRegistry { return b.st.Telemetry }

// SlabLayer is the size-class slab layer; see Buddy.Slab.
type SlabLayer = slab.Allocator

// Slab returns the slab layer for introspection (per-class occupancy
// via ClassInfos, the fragmentation gauge via FragBytes), or nil when
// the stack was built without WithSlab.
func (b *Buddy) Slab() *SlabLayer { return b.st.Slab }

// ShardRouter is the per-CPU sharded routing layer; see Buddy.Sharded.
type ShardRouter = shard.Allocator

// Sharded exposes the per-CPU sharded routing layer (nil unless built
// WithSharding) — aggregate counters via Totals, per-shard snapshots via
// ShardInfos. Quiescent points only.
func (b *Buddy) Sharded() *ShardRouter { return b.st.Shard }

// MemStats is the mapped backing region's commit accounting; see
// Buddy.MemStats.
type MemStats = mem.Stats

// MemRegion is the mapped backing region layer; see Buddy.Memory.
type MemRegion = mem.Region

// Mapped reports whether the stack was built WithMappedMemory.
func (b *Buddy) Mapped() bool { return b.st.Mem != nil }

// MappedBacking reports whether this platform's mapped-memory backend
// really maps and unmaps pages (Linux — decommits return RSS to the OS)
// or runs the portable bookkeeping fallback.
func MappedBacking() bool { return mem.Mapped() }

// NUMABacking reports whether NUMA placement is physically effective
// here: Linux with the mbind/get_mempolicy syscalls and more than one
// online node. When false, WithSharding stacks still record per-window
// node assignments (see MemRegion.NodeMap) but no binding is issued.
func NUMABacking() bool { return mem.NUMAAware() && len(mem.NUMANodes()) > 1 }

// NUMANodes returns the online NUMA node ids ([0] on single-node
// machines and non-Linux platforms).
func NUMANodes() []int { return mem.NUMANodes() }

// NodeOfWindow asks the kernel which NUMA node physically backs the
// first page of the region's window k (the window must be committed);
// ok is false where the kernel cannot answer (non-Linux platforms).
// Compare against MemRegion.NodeMap to verify placement.
func NodeOfWindow(r *MemRegion, k int) (int, bool) { return mem.NodeOfAddr(r.Window(k)) }

// Memory exposes the mapped backing region (nil unless built
// WithMappedMemory) — per-window commit states via CommitMap, lifecycle
// accounting via Stats.
func (b *Buddy) Memory() *MemRegion { return b.st.Mem }

// MemStats returns the mapped backing region's commit accounting; ok is
// false for stacks built without WithMappedMemory.
func (b *Buddy) MemStats() (MemStats, bool) {
	if b.st.Mem == nil {
		return MemStats{}, false
	}
	return b.st.Mem.Stats(), true
}

// CachedHandle is a per-worker handle with magazine caching in front of
// the instance (the paper's front-end/back-end composition). Frees park
// chunks in per-size-class magazines served back to later allocations;
// Flush returns everything to the back-end.
type CachedHandle struct {
	*frontend.Handle
}

// NewCachedHandle returns a caching front-end handle over the stack.
// magazine is the per-size-class capacity (0 = default). On a stack
// built WithFrontend the handle comes from the stack's own front-end
// layer and magazine is ignored; otherwise a private front-end is
// layered over the stack top for this handle.
func (b *Buddy) NewCachedHandle(magazine int) (*CachedHandle, error) {
	fe := b.st.Frontend
	if fe == nil {
		var err error
		fe, err = frontend.New(b.st.Top, magazine)
		if err != nil {
			return nil, err
		}
	}
	return &CachedHandle{fe.NewHandle().(*frontend.Handle)}, nil
}

// MultiConfig sizes a multi-instance (NUMA-style) allocator: Instances
// independent back-ends of Per geometry behind one offset space.
type MultiConfig struct {
	Instances int
	Per       Config
}

// Multi is the multi-instance router layer: a set of same-geometry
// instances behind one offset space, with per-handle preferred-instance
// routing and fallback — the deployment the paper describes for NUMA
// machines.
type Multi = multi.Multi

// NewMulti builds a multi-instance allocator stack of the given variant.
// All stack options compose — including WithMaterializedRegion, which
// keeps one sub-region per instance behind the global offset space, and
// WithFrontend for per-worker magazines over the router.
func NewMulti(cfg MultiConfig, opts ...Option) (*Buddy, error) {
	o := optionsFromConfig(cfg.Per)
	for _, opt := range opts {
		opt(&o)
	}
	if cfg.Instances < 1 {
		return nil, fmt.Errorf("nbbs: instance count %d must be positive", cfg.Instances)
	}
	o.instances = cfg.Instances
	return build(cfg.Per, o)
}

// Geometry describes the derived tree shape of a configuration without
// building an instance (useful for capacity planning).
func (c Config) Geometry() (depth, maxLevel int, err error) {
	g, err := geometry.New(c.Total, c.MinSize, c.MaxSize)
	if err != nil {
		return 0, 0, err
	}
	return g.Depth, g.MaxLevel, nil
}
