package elastic_test

import (
	"syscall"
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/multi"
)

// strandedSlot builds a 2-instance manager with one live chunk pinned on
// slot 1 and slot 1 draining — the straggler scenario. The chunk's
// offset is returned; the drain was started directly on the router, so
// the manager adopts it on its first Poll.
func strandedSlot(t *testing.T, cfg elastic.Config) (*elastic.Manager, uint64) {
	t.Helper()
	mgr := manager(t, 2, cfg)
	m := mgr.Router()
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(per.MinSize)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("pinned alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	return mgr, off
}

// TestStragglerStallsWithoutMigration is the regression pin of the
// pre-migration behavior: a draining slot whose last chunk belongs to a
// long-lived owner survives any number of polls and retires only when
// the owner finally frees.
func TestStragglerStallsWithoutMigration(t *testing.T) {
	mgr, off := strandedSlot(t, elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 100})
	for i := 0; i < 20; i++ {
		if act := mgr.Poll(); len(act.Retired) != 0 || act.Migrated != 0 {
			t.Fatalf("poll %d on a migration-disabled manager: %+v", i, act)
		}
	}
	ages := mgr.DrainAges()
	if len(ages) != 1 || ages[0].Slot != 1 || ages[0].Polls != 19 || ages[0].Live != 1 {
		t.Fatalf("DrainAges after 20 stalled polls: %+v", ages)
	}
	mgr.Free(off)
	if act := mgr.Poll(); len(act.Retired) != 1 {
		t.Fatalf("poll after the owner's free: %+v", act)
	}
}

// TestMigrationBoundsTimeToRetire is the tentpole property: with
// migration enabled the same stranded slot retires within
// AfterPolls + 1 polls — the manager copies the straggler onto an active
// slot and completes the retirement in the same step.
func TestMigrationBoundsTimeToRetire(t *testing.T) {
	mgr, off := strandedSlot(t, elastic.Config{
		MinInstances: 1, MaxInstances: 2, Hysteresis: 100,
		Migration: elastic.MigrationConfig{Enabled: true},
	})
	var moved []uint64
	mgr.OnMigrate(func(oldOff, newOff, size uint64) {
		if oldOff != off {
			t.Errorf("migrated %#x, straggler is %#x", oldOff, off)
		}
		if size != per.MinSize {
			t.Errorf("migrated size %d, want %d", size, per.MinSize)
		}
		moved = append(moved, newOff)
	})

	// Poll 1 adopts the drain (age 0 < AfterPolls): no migration yet —
	// the cheap paths get their window.
	if act := mgr.Poll(); act.Migrated != 0 || len(act.Retired) != 0 {
		t.Fatalf("first poll migrated early: %+v", act)
	}
	// Poll 2 (age 1 >= AfterPolls): migrate, then retire in the same step.
	act := mgr.Poll()
	if act.Migrated != 1 || len(act.Retired) != 1 || act.Retired[0] != 1 {
		t.Fatalf("second poll: %+v, want 1 migrated + slot 1 retired", act)
	}
	if len(moved) != 1 {
		t.Fatalf("OnMigrate hook ran %d times", len(moved))
	}
	newOff := moved[0]
	m := mgr.Router()
	if m.InstanceOf(newOff) != 0 {
		t.Fatalf("straggler landed on instance %d, want the active slot 0", m.InstanceOf(newOff))
	}
	c := mgr.Counters()
	if c.MigratedChunks != 1 || c.MigratedBytes != per.MinSize || c.Retires != 1 {
		t.Fatalf("counters after migration: %+v", c)
	}
	if c.LastRetirePolls > 2 {
		t.Fatalf("time-to-retire %d polls, want <= AfterPolls+1 = 2", c.LastRetirePolls)
	}
	// The owner's reference was rewritten: the new offset is live and
	// freeable, and the layer accounting balances afterwards.
	if got := mgr.ChunkSize(newOff); got != per.MinSize {
		t.Fatalf("ChunkSize(new) = %d", got)
	}
	mgr.Free(newOff)
	s := mgr.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d after migration round-trip", s.Allocs, s.Frees)
	}
}

// TestMigrationCopiesBytes pins the contents contract on a mapped stack:
// the bytes written through the straggler's old window are readable
// through the new one after the move.
func TestMigrationCopiesBytes(t *testing.T) {
	m, err := multi.New("4lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	r, err := mem.New(m.InstanceSpan(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, elastic.Config{
		MinInstances: 1, MaxInstances: 2, Hysteresis: 100,
		Migration: elastic.MigrationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(per.MinSize)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("pinned alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	span := m.InstanceSpan()
	src := r.Bytes(1, off%span, per.MinSize)
	for i := range src {
		src[i] = byte(0xA0 ^ i)
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	var newOff uint64
	mgr.OnMigrate(func(_, n, _ uint64) { newOff = n })
	mgr.Poll()
	act := mgr.Poll()
	if act.Migrated != 1 || len(act.Retired) != 1 {
		t.Fatalf("migrating poll: %+v", act)
	}
	dst := r.Bytes(m.InstanceOf(newOff), newOff%span, per.MinSize)
	for i := range dst {
		if dst[i] != byte(0xA0^i) {
			t.Fatalf("byte %d: %#x, want %#x — contents not copied", i, dst[i], byte(0xA0^i))
		}
	}
	mgr.Free(newOff)
}

// TestMigrationRetriesWhenFleetFull pins the partial-pass contract: when
// no active slot can host the replacement, the pass stops cleanly — the
// straggler stays fully intact at its old offset, MigrateFails counts
// the refusal — and a later poll (after room appears) completes the move.
func TestMigrationRetriesWhenFleetFull(t *testing.T) {
	mgr, off := strandedSlot(t, elastic.Config{
		MinInstances: 1, MaxInstances: 2, Hysteresis: 100,
		Migration: elastic.MigrationConfig{Enabled: true},
	})
	m := mgr.Router()
	// Fill the only active slot so migration has nowhere to go.
	h0 := m.NewHandleOn(0)
	var fill []uint64
	for {
		got := alloc.HandleAllocBatch(h0, per.MaxSize, 4)
		fill = append(fill, got...)
		if len(got) < 4 {
			break
		}
	}
	for {
		o, ok := h0.Alloc(per.MinSize)
		if !ok {
			break
		}
		fill = append(fill, o)
	}
	mgr.Poll() // adopt
	act := mgr.Poll()
	if act.Migrated != 0 || len(act.Retired) != 0 {
		t.Fatalf("migration succeeded into a full fleet: %+v", act)
	}
	if c := mgr.Counters(); c.MigrateFails == 0 || c.MigratedChunks != 0 {
		t.Fatalf("counters after refused pass: %+v", c)
	}
	// Untouched: the straggler is still live at its old offset.
	if got := mgr.ChunkSize(off); got != per.MinSize {
		t.Fatalf("straggler missing after refused pass: ChunkSize = %d", got)
	}
	// Make room; the next poll completes the move and the retirement.
	alloc.HandleFreeBatch(h0, fill)
	var newOff uint64
	mgr.OnMigrate(func(_, n, _ uint64) { newOff = n })
	act = mgr.Poll()
	if act.Migrated != 1 || len(act.Retired) != 1 {
		t.Fatalf("poll after making room: %+v", act)
	}
	mgr.Free(newOff)
}

// TestMigrationRetireFaultRollsBack pins graceful degradation around the
// retire step: migration empties the slot, the decommit fails, and the
// slot simply stays draining — nothing is lost, no chunk is half-moved —
// until a later poll retries after the fault clears.
func TestMigrationRetireFaultRollsBack(t *testing.T) {
	m, err := multi.New("4lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	in := fault.New(3)
	r, err := mem.New(m.InstanceSpan(), 2, mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, elastic.Config{
		MinInstances: 1, MaxInstances: 2, Hysteresis: 100,
		Migration: elastic.MigrationConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(per.MinSize)
	if !ok {
		t.Fatal("pinned alloc failed")
	}
	_ = off
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	var newOff uint64
	mgr.OnMigrate(func(_, n, _ uint64) { newOff = n })
	in.Set(fault.FailAlways(fault.Decommit, syscall.EAGAIN))
	mgr.Poll() // adopt; retire not attempted past live check
	act := mgr.Poll()
	if act.Migrated != 1 {
		t.Fatalf("migration under a decommit fault: %+v", act)
	}
	if len(act.Retired) != 0 {
		t.Fatal("retire succeeded despite the decommit fault")
	}
	c := mgr.Counters()
	if c.RetireFailures == 0 {
		t.Fatalf("no retire failure recorded: %+v", c)
	}
	// The move itself completed: the chunk is live at its new home.
	if got := mgr.ChunkSize(newOff); got != per.MinSize {
		t.Fatalf("ChunkSize(new) = %d under retire fault", got)
	}
	in.Clear()
	act = mgr.Poll()
	if len(act.Retired) != 1 || act.Retired[0] != 1 {
		t.Fatalf("poll after clearing the fault: %+v", act)
	}
	mgr.Free(newOff)
}
