//go:build gc

package proc

import (
	_ "unsafe" // for go:linkname
)

// Dynamic reports whether Hint returns a live processor id (true on the
// gc toolchain) or the static fallback described in the package comment.
const Dynamic = true

//go:linkname runtimeProcPin runtime.procPin
func runtimeProcPin() int

//go:linkname runtimeProcUnpin runtime.procUnpin
func runtimeProcUnpin()

// Hint returns the id of the P the calling goroutine is running on, in
// [0, GOMAXPROCS). Purely advisory: the goroutine may be migrated the
// moment this returns.
func Hint() int {
	p := runtimeProcPin()
	runtimeProcUnpin()
	return p
}
