// Elastic: pressure-driven capacity behind the multi-instance router.
//
// A fixed buddy region forces a choice for bursty traffic: provision for
// the peak (and waste the trough) or provision for the trough (and fail
// at the peak). This demo builds a 2-instance deployment with an elastic
// capacity manager capped at 4, then drives one burst cycle through it:
//
//  1. Ramp: allocations pile up past the high watermark; explicit Poll
//     steps let the manager observe the pressure and publish fresh
//     instances (the burst is absorbed instead of failing).
//  2. Quiet: everything is freed; Polls observe the idle fleet, mark the
//     surplus instances draining and — once their live counts hit zero —
//     unpublish them.
//
// The program asserts the fleet really returns to the floor and exits
// non-zero otherwise, so it doubles as an end-to-end check. Poll is used
// instead of the background Start/Stop goroutine to keep every
// transition visible and deterministic.
package main

import (
	"fmt"
	"log"
	"os"

	nbbs "repro"
)

const (
	floor = 2 // initial and minimum instances
	cap_  = 4 // elastic ceiling
)

func main() {
	b, err := nbbs.New(
		nbbs.Config{Total: 1 << 20, MinSize: 64, MaxSize: 16 << 10},
		nbbs.WithInstances(floor),
		nbbs.WithElastic(nbbs.ElasticConfig{MinInstances: floor, MaxInstances: cap_}),
	)
	if err != nil {
		log.Fatal(err)
	}
	mgr := b.Elastic()
	fmt.Printf("deployment: %s\n", b.Name())
	fmt.Printf("start: %d instances (floor %d, cap %d), utilization %.0f%%\n\n",
		b.Instances(), floor, cap_, mgr.Utilization()*100)

	// Phase 1 — the burst. Allocate 16KiB chunks and Poll as we go; once
	// utilization crosses the high watermark for a hysteresis streak, the
	// manager grows the fleet and the ramp keeps landing on fresh capacity.
	h := b.NewHandle()
	var live []uint64
	for i := 0; b.Instances() < cap_ && i < 4096; i++ {
		off, ok := h.Alloc(16 << 10)
		if !ok {
			// The current fleet is saturated mid-ramp: give the manager a
			// chance to publish capacity and retry.
			mgr.Poll()
			if off, ok = h.Alloc(16 << 10); !ok {
				log.Fatalf("burst allocation failed at %d instances, utilization %.0f%%",
					b.Instances(), mgr.Utilization()*100)
			}
		}
		live = append(live, off)
		if act := mgr.Poll(); act.Grew >= 0 {
			fmt.Printf("burst: %4d chunks live, utilization %3.0f%% -> grew instance slot %d (now %d instances)\n",
				len(live), act.Utilization*100, act.Grew, b.Instances())
		}
	}
	peak := b.Instances()
	fmt.Printf("peak: %d instances serving %d live chunks (utilization %.0f%%)\n\n",
		peak, len(live), mgr.Utilization()*100)
	if peak <= floor {
		fmt.Fprintf(os.Stderr, "FAIL: the burst never grew the fleet above the floor (%d instances)\n", peak)
		os.Exit(1)
	}

	// Phase 2 — the quiet period. Free everything, then Poll: the idle
	// fleet drains (allocations skip draining instances, frees still land
	// by offset) and fully drained instances unpublish.
	for _, off := range live {
		h.Free(off)
	}
	for i := 0; i < 16 && b.Instances() > floor; i++ {
		act := mgr.Poll()
		if act.DrainStarted >= 0 {
			fmt.Printf("quiet: utilization %3.0f%% -> draining slot %d\n", act.Utilization*100, act.DrainStarted)
		}
		for _, k := range act.Retired {
			fmt.Printf("quiet: slot %d reached zero live chunks -> retired (now %d instances)\n",
				k, b.Instances())
		}
	}

	c := mgr.Counters()
	fmt.Printf("\nlifecycle: grows=%d drains=%d retires=%d denied_at_cap=%d over %d polls\n",
		c.Grows, c.Drains, c.Retires, c.DeniedAtCap, c.Polls)
	fmt.Printf("end: %d instances\n", b.Instances())
	if b.Instances() != floor {
		fmt.Fprintf(os.Stderr, "FAIL: fleet did not return to the floor: %d instances, want %d\n",
			b.Instances(), floor)
		os.Exit(1)
	}
	fmt.Println("OK: burst absorbed by growth, quiet period retired back to the floor")
}
