package geometry

// Word layout of the byte-packed status tree (the 1-level leaf's storage):
// node n's status byte is lane n&7 of word n>>3, so one 64-bit word holds
// eight consecutive node statuses.
//
// The array-embedded heap shape makes this packing level-aligned for
// free: level l starts at node 2^l, so every level of width >= 8 (l >= 3)
// begins on a word boundary and spans whole words, and all narrower
// levels (the root and levels 1-2, nodes 1..7) fit together inside word 0
// alongside the unused index 0. No level ever straddles a word mid-level,
// which is what lets a level scan treat each loaded word as eight
// statuses of the SAME level without boundary cases.

// StatusLanes is how many node statuses one packed word carries.
const StatusLanes = 8

// WordIndex returns the packed word holding node n's status byte.
func WordIndex(n uint64) uint64 { return n >> 3 }

// LaneOf returns node n's lane within its packed word.
func LaneOf(n uint64) int { return int(n & 7) }

// StatusWords returns the length of the packed status-word array covering
// the whole tree (indexes 0..Nodes()-1, one byte per node).
func (g Geometry) StatusWords() uint64 {
	return (g.Nodes() + StatusLanes - 1) / StatusLanes
}
