package elastic_test

import (
	"testing"

	"repro/internal/elastic"
	"repro/internal/mem"
	"repro/internal/multi"
)

// mappedManager builds a router with a bound mapped region under the
// capacity manager — the lifecycle triple the mapped-memory backing is
// about: grow commits, retire decommits, grow-into-a-hole recommits.
func mappedManager(t *testing.T, instances int, cfg elastic.Config) (*elastic.Manager, *mem.Region) {
	t.Helper()
	m, err := multi.New("4lvl-nb", instances, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mem.New(per.Total, instances)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, r
}

// memExtras digs the router's mem_* accounting out of the stack's
// LayerStats (the keys the ISSUE puts in the observability contract).
func memExtras(t *testing.T, mgr *elastic.Manager) map[string]uint64 {
	t.Helper()
	for _, layer := range mgr.LayerStats() {
		if _, ok := layer.Extra["mem_committed"]; ok {
			return layer.Extra
		}
	}
	t.Fatal("no layer reports mem_* accounting")
	return nil
}

func TestMappedRetireDecommitsWindow(t *testing.T) {
	mgr, r := mappedManager(t, 4, elastic.Config{MinInstances: 2, MaxInstances: 4, Hysteresis: 1})
	if got := r.Stats().CommittedBytes; got != 4*per.Total {
		t.Fatalf("committed bytes after bind = %d, want %d", got, 4*per.Total)
	}

	// Idle fleet: two polls retire down to the floor; each retirement must
	// decommit its window.
	first := mgr.Poll()
	mgr.Poll()
	if got := mgr.Router().Instances(); got != 2 {
		t.Fatalf("Instances = %d, want the floor 2", got)
	}
	if len(first.Retired) != 1 {
		t.Fatalf("first poll: %+v, want one retirement", first)
	}
	if r.Committed(first.Retired[0]) {
		t.Fatalf("retired slot %d's window is still committed", first.Retired[0])
	}
	s := r.Stats()
	if s.CommittedBytes != 2*per.Total || s.Decommits != 2 {
		t.Fatalf("after retiring to the floor: %+v", s)
	}

	// The accounting surfaces through LayerStats with the documented keys.
	extra := memExtras(t, mgr)
	if extra["mem_committed"] != 2*per.Total || extra["mem_decommits"] != 2 ||
		extra["mem_reserved"] != 4*per.Total || extra["mem_recommits"] != 0 {
		t.Fatalf("LayerStats mem accounting: %v", extra)
	}
}

// TestMappedGrowRecommitsHoleAndReuses is the decommit → recommit →
// alloc-reuse edge: capacity retired to the OS must come back zeroed and
// allocatable when pressure returns and the grow refills the hole.
func TestMappedGrowRecommitsHoleAndReuses(t *testing.T) {
	mgr, r := mappedManager(t, 3, elastic.Config{MinInstances: 1, MaxInstances: 3, Hysteresis: 1})
	// Retire twice down to the floor (decommits two windows)...
	mgr.Poll()
	mgr.Poll()
	if got := mgr.Router().Instances(); got != 1 {
		t.Fatalf("Instances = %d, want 1", got)
	}
	// ...then drive utilization over the high water so the grows refill
	// the holes and recommit their windows.
	offs := fill(t, mgr, elastic.DefaultHighWater)
	act := mgr.Poll()
	if act.Grew < 0 {
		t.Fatalf("no grow under pressure: %+v", act)
	}
	if !r.Committed(act.Grew) {
		t.Fatalf("grown slot %d's window not committed", act.Grew)
	}
	s := r.Stats()
	if s.Recommits != 1 {
		t.Fatalf("grow into a decommitted hole must recommit: %+v", s)
	}
	// The recommitted window's instance serves allocations (reuse), and
	// the recommitted window is zero-filled.
	w := r.Window(act.Grew)
	if w[0] != 0 || w[len(w)-1] != 0 {
		t.Fatalf("recommitted window not zeroed: %x %x", w[0], w[len(w)-1])
	}
	before := mgr.Router().InstanceInfos()[act.Grew].Live
	var servedOnGrown bool
	for i := 0; i < 64 && !servedOnGrown; i++ {
		off, ok := mgr.Alloc(per.MaxSize)
		if !ok {
			break
		}
		offs = append(offs, off)
		servedOnGrown = mgr.Router().InstanceInfos()[act.Grew].Live > before
	}
	if !servedOnGrown {
		t.Fatal("recommitted instance never served an allocation")
	}
	for _, off := range offs {
		mgr.Free(off)
	}
}

// TestMappedReactivateKeepsWindowCommitted covers the drain-cancelled
// edge: a draining slot still backs live chunks, so its window must stay
// committed through StartDrain, and Reactivate must hand it back without
// a decommit/recommit round trip — chunks allocated before the drain
// stay valid throughout.
func TestMappedReactivateKeepsWindowCommitted(t *testing.T) {
	mgr, r := mappedManager(t, 2, elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1})
	// Pin a chunk on every instance so no drain can complete.
	var offs []uint64
	for k := range mgr.Router().InstanceInfos() {
		h := mgr.Router().NewHandleOn(k)
		off, ok := h.Alloc(per.MinSize)
		if !ok {
			t.Fatalf("pin alloc on instance %d failed", k)
		}
		offs = append(offs, off)
	}
	victim, err := mgr.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Committed(victim) {
		t.Fatal("draining window must stay committed (it backs live chunks)")
	}
	// Pressure returns: the grow path reactivates the draining slot.
	grown, err := mgr.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if grown != victim {
		t.Fatalf("grow reactivated slot %d, want the draining slot %d", grown, victim)
	}
	s := r.Stats()
	if s.Decommits != 0 || s.Recommits != 0 {
		t.Fatalf("reactivation must not cycle the window: %+v", s)
	}
	// The reactivated instance allocates again.
	h := mgr.Router().NewHandleOn(victim)
	off, ok := h.Alloc(per.MinSize)
	if !ok {
		t.Fatal("alloc on the reactivated instance failed")
	}
	h.Free(off)
	for _, off := range offs {
		mgr.Free(off)
	}
}
