package bunch

import (
	"testing"
)

func TestScrubPreservesLiveAllocations(t *testing.T) {
	a := mustNew(t, 1<<12, 8, 1<<12)
	h := a.newHandle()
	off1, _ := h.Alloc(64)
	off2, _ := h.Alloc(1024)
	a.Scrub()
	// Live chunks survive a scrub: sizes still resolvable, frees clean.
	if got := a.ChunkSize(off1); got != 64 {
		t.Fatalf("ChunkSize after scrub = %d, want 64", got)
	}
	if got := a.ChunkSize(off2); got != 1024 {
		t.Fatalf("ChunkSize after scrub = %d, want 1024", got)
	}
	// The scrubbed metadata still excludes the live chunks: a full-region
	// allocation must fail, the remaining space must still be usable.
	if _, ok := h.Alloc(1 << 12); ok {
		t.Fatal("whole-region alloc succeeded over live chunks after scrub")
	}
	// With 1088 live bytes at most two of the four 1K quarters can be
	// touched, so a 1K chunk is guaranteed allocatable wherever the live
	// chunks landed.
	if off, ok := h.Alloc(1024); !ok {
		t.Fatal("free quarter not allocatable after scrub")
	} else {
		h.Free(off)
	}
	h.Free(off1)
	h.Free(off2)
}

func TestLiveNodesAndFreeBytes(t *testing.T) {
	a := mustNew(t, 1<<12, 8, 1<<12)
	h := a.newHandle()
	if a.LiveNodes() != 0 || a.FreeBytes() != 1<<12 {
		t.Fatalf("fresh instance: live=%d free=%d", a.LiveNodes(), a.FreeBytes())
	}
	off1, _ := h.Alloc(100) // reserves 128
	off2, _ := h.Alloc(8)
	if a.LiveNodes() != 2 {
		t.Fatalf("LiveNodes = %d, want 2", a.LiveNodes())
	}
	if got := a.FreeBytes(); got != 1<<12-128-8 {
		t.Fatalf("FreeBytes = %d, want %d", got, 1<<12-128-8)
	}
	h.Free(off1)
	h.Free(off2)
	if a.LiveNodes() != 0 || a.FreeBytes() != 1<<12 {
		t.Fatalf("after drain: live=%d free=%d", a.LiveNodes(), a.FreeBytes())
	}
}

func TestOccupancyByLevel(t *testing.T) {
	a := mustNew(t, 1<<12, 8, 1<<12) // depth 9
	h := a.newHandle()
	off1, _ := h.Alloc(8)    // level 9
	off2, _ := h.Alloc(8)    // level 9
	off3, _ := h.Alloc(1024) // level 2
	counts := a.OccupancyByLevel()
	if counts[9] != 2 || counts[2] != 1 {
		t.Fatalf("OccupancyByLevel = %v", counts)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("total occupied nodes = %d, want 3", total)
	}
	h.Free(off1)
	h.Free(off2)
	h.Free(off3)
}

func TestChunkSizeMisuse(t *testing.T) {
	a := mustNew(t, 1<<12, 8, 1<<12)
	for _, f := range []func(){
		func() { a.ChunkSize(3) },       // unaligned
		func() { a.ChunkSize(1 << 13) }, // out of range
		func() { a.ChunkSize(8) },       // not allocated
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("ChunkSize misuse did not panic")
				}
			}()
			f()
		}()
	}
}
