package core_test

import (
	"testing"

	"repro/internal/alloctest"

	_ "repro/internal/core" // register 1lvl-nb
)

func TestConformance(t *testing.T) { alloctest.Run(t, "1lvl-nb") }
