// Package elastic is the capacity manager of the allocator stack: a
// composable layer over the multi-instance router that grows and shrinks
// the back-end instance set at runtime under a watermark policy.
//
// The paper's non-blocking buddy system manages a fixed memory region; a
// production deployment serving bursty traffic either over-provisions
// that region permanently or hits a hard allocation wall at peak. The
// manager closes the gap using machinery the lower layers already have:
// instances share one geometry, the router's copy-on-write slot table
// publishes instance-set changes atomically (internal/multi), and the
// bulk-transfer contract lets a shrink move whole magazines back down in
// a few crossings.
//
// Lifecycle. A grow publishes a fresh instance (reusing a retired hole
// when one exists, re-activating a draining slot when pressure returns
// mid-drain). A shrink is three-phase: the victim slot is marked draining
// (allocations skip it, frees keep landing on it by offset), the manager
// waits for the slot's live-chunk count to reach zero — triggering depot
// drains through registered hooks so parked magazines cannot stall it —
// and only then unpublishes the slot. See DESIGN.md, "The elastic
// instance lifecycle", for the memory-ordering argument.
//
// The policy engine is deliberately pull-based: Poll() performs one
// observation/decision step, which makes grow/drain/retire sequences
// deterministic in tests; Start launches an optional background goroutine
// that Polls on an interval for deployments that want autonomy.
package elastic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/multi"
)

// Defaults of Config fields left zero.
const (
	DefaultHighWater  = 0.75
	DefaultLowWater   = 0.25
	DefaultHysteresis = 2
	// DefaultGrowRetryBase/Max bound the exponential backoff after a
	// failed grow: first retry after ~1ms, doubling per consecutive
	// failure up to ~250ms — long enough that a persistently failing
	// environment sees a handful of syscalls per second instead of one
	// per Poll, short enough that recovery is near-immediate.
	DefaultGrowRetryBase = time.Millisecond
	DefaultGrowRetryMax  = 250 * time.Millisecond
)

// Typed sentinel errors distinguishing WHY a grow was denied. Both are
// environmental outcomes, not caller misuse — callers match with
// errors.Is and degrade (deny the allocation, shed load) rather than
// crash.
var (
	// ErrAtCap: the policy refused — the instance set is at
	// Config.MaxInstances. Growth resumes when capacity drains.
	ErrAtCap = errors.New("elastic: at instance cap")
	// ErrBackpressure: the environment refused recently — a grow attempt
	// failed (reserve/commit error from the region) and the manager is
	// holding off until the backoff window elapses. The wrapped chain
	// also carries the underlying cause.
	ErrBackpressure = errors.New("elastic: grow backpressure")
)

// Config is the capacity policy of a manager: fleet bounds, the
// watermark thresholds (which parameterize the default WatermarkPolicy
// and remain the vocabulary of both built-in policies), grow backoff,
// and the optional migration step of the retire path.
type Config struct {
	// MinInstances is the floor the manager never drains below (>= 1;
	// 0 means 1).
	MinInstances int
	// MaxInstances caps the published instance set (active + draining;
	// 0 means twice the router's initial instance count).
	MaxInstances int
	// HighWater is the utilization (live bytes / active capacity) at or
	// above which the manager wants to grow (0 means DefaultHighWater).
	HighWater float64
	// LowWater is the utilization at or below which the manager wants to
	// shrink (0 means DefaultLowWater).
	LowWater float64
	// Hysteresis is how many consecutive Polls must agree before a grow
	// or shrink is acted on (0 means DefaultHysteresis); it keeps a
	// single spike or dip from flapping the instance set.
	Hysteresis int
	// GrowRetryBase is the backoff after the first failed grow attempt
	// (an environmental reserve/commit failure, not the cap), doubled per
	// consecutive failure with deterministic jitter (0 means
	// DefaultGrowRetryBase).
	GrowRetryBase time.Duration
	// GrowRetryMax caps the grow backoff (0 means DefaultGrowRetryMax).
	GrowRetryMax time.Duration
	// Policy, when non-nil, replaces the built-in watermark rule as the
	// grow/shrink decision maker (see Policy). Nil builds a
	// WatermarkPolicy from the watermark fields above — the pre-policy
	// behavior, bit for bit. The instance must not be shared between
	// managers (policies keep per-fleet state).
	Policy Policy
	// Migration tunes the live-chunk migration step of the retire path;
	// the zero value disables it (see MigrationConfig).
	Migration MigrationConfig
}

func (c Config) withDefaults(initial int) Config {
	if c.MinInstances <= 0 {
		c.MinInstances = 1
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 2 * initial
	}
	if c.HighWater <= 0 {
		c.HighWater = DefaultHighWater
	}
	if c.LowWater <= 0 {
		c.LowWater = DefaultLowWater
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = DefaultHysteresis
	}
	if c.GrowRetryBase <= 0 {
		c.GrowRetryBase = DefaultGrowRetryBase
	}
	if c.GrowRetryMax < c.GrowRetryBase {
		c.GrowRetryMax = DefaultGrowRetryMax
	}
	if c.GrowRetryMax < c.GrowRetryBase {
		c.GrowRetryMax = c.GrowRetryBase
	}
	if c.Migration.Enabled {
		c.Migration = c.Migration.withDefaults()
	}
	return c
}

// Counters are the manager's lifecycle totals; quiescent points only
// unless read under the manager's own Poll serialization.
type Counters struct {
	Polls         uint64 // Poll steps executed
	Grows         uint64 // instances published by AddInstance
	Reactivations uint64 // draining slots flipped back to active
	Drains        uint64 // drain phases started
	Retires       uint64 // slots unpublished after reaching zero live
	DeniedAtCap   uint64 // grow decisions refused by MaxInstances
	// GrowFailures counts grow attempts the environment refused (an
	// AddInstance reserve/commit error) — distinct from DeniedAtCap,
	// which is the policy refusing.
	GrowFailures uint64
	// GrowRetries counts attempts made after at least one failure, i.e.
	// the backoff window elapsed and the manager tried again.
	GrowRetries uint64
	// DeniedBackpressure counts grow decisions suppressed because a
	// backoff window from an earlier failure was still open — the
	// mechanism that keeps persistent failure from hot-spinning syscalls.
	DeniedBackpressure uint64
	// RetireFailures counts TryRetire calls that errored (decommit
	// failure); the slot stays draining and a later Poll retries.
	RetireFailures uint64
	// MigratedChunks/MigratedBytes count live chunks (and their reserved
	// bytes) the migration step copied off draining slots.
	MigratedChunks uint64
	MigratedBytes  uint64
	// MigrateFails counts migration passes cut short because the active
	// fleet could not host a replacement chunk; the pass retries on a
	// later Poll, after frees or a grow made room.
	MigrateFails uint64
	// LastRetirePolls is the drain age (in Poll steps) of the most recent
	// retirement — the time-to-retire the straggler tests bound.
	LastRetirePolls uint64
}

// Action reports what one Poll step did.
type Action struct {
	// Utilization is the observed live-bytes / active-capacity ratio.
	Utilization float64
	// Grew is the slot index of a newly published instance (-1 if none).
	Grew int
	// Reactivated is the slot index of a drain cancelled by pressure
	// (-1 if none).
	Reactivated int
	// DrainStarted is the slot index a drain phase began on (-1 if none).
	DrainStarted int
	// Retired lists slots unpublished by this step.
	Retired []int
	// Migrated counts live chunks moved off draining slots this step.
	Migrated int
	// DeniedAtCap reports a grow decision refused by MaxInstances.
	DeniedAtCap bool
	// DeniedBackpressure reports a grow decision suppressed by the
	// backoff window of an earlier environmental failure.
	DeniedBackpressure bool
	// GrowErr is the environmental cause when a grow attempt failed this
	// step (or the last recorded cause when DeniedBackpressure).
	GrowErr error
}

// DrainHook is called when the manager needs chunks of the global offset
// window [lo, hi) returned to the back-end — when a drain starts and on
// every Poll while it is pending. The caching front-end registers one
// that drains depot-parked magazines overlapping the window, so chunks
// idling in the depot cannot stall a retirement forever.
type DrainHook func(lo, hi uint64)

// Manager wraps the multi-instance router with the elastic capacity
// policy. It implements the full composable layer contract — every
// allocator operation forwards to the router — so caching front-ends and
// trace recorders stack over it transparently.
type Manager struct {
	inner *multi.Multi
	cfg   Config

	// mu serializes Poll/Grow/Shrink decision steps (the router's own
	// table mutations have their own mutex; this one makes the policy
	// read-decide-act sequence atomic).
	mu       sync.Mutex
	policy   Policy
	counters Counters
	hooks    []DrainHook

	// Migration state (under mu): the observer hooks, the manager's own
	// router handle for alloc-new/free-old moves, and per-slot drain
	// start steps for the time-to-retire gauge and the AfterPolls gate.
	migrateHooks []MigrateHook
	mig          alloc.Handle
	drainSince   map[int]uint64

	// Grow-failure backoff state (under mu). growStreak counts
	// consecutive environmental failures; nextGrowAt gates the next
	// attempt; lastGrowErr is the cause surfaced while the gate is
	// closed. clock is injectable (SetClock) so backoff decisions are
	// deterministic in tests and chaos replays; jitter is a seeded
	// xorshift state so even the jitter replays.
	growStreak  int
	nextGrowAt  time.Time
	lastGrowErr error
	clock       func() time.Time
	jitter      uint64

	// sink, when non-nil, receives one call per lifecycle transition for
	// the telemetry flight recorder (under mu, so events are ordered like
	// the transitions they describe). Operand a is the slot index, b the
	// failure streak where one exists.
	sink func(event string, a, b uint64)

	bg     sync.WaitGroup
	stopCh chan struct{}
}

// New builds a capacity manager over the router. It must be called before
// the router serves any traffic: the manager enables the router's
// per-slot live accounting, and chunks delivered before that would be
// invisible to the retirement logic.
func New(inner *multi.Multi, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults(inner.Instances())
	if cfg.LowWater >= cfg.HighWater {
		return nil, fmt.Errorf("elastic: low watermark %.2f must be below high watermark %.2f", cfg.LowWater, cfg.HighWater)
	}
	if cfg.MaxInstances < cfg.MinInstances {
		return nil, fmt.Errorf("elastic: max instances %d below min %d", cfg.MaxInstances, cfg.MinInstances)
	}
	if n := inner.Instances(); n > cfg.MaxInstances {
		return nil, fmt.Errorf("elastic: router starts with %d instances, above the %d cap", n, cfg.MaxInstances)
	}
	inner.EnableLiveTracking()
	pol := cfg.Policy
	if pol == nil {
		pol = NewWatermarkPolicy(cfg.HighWater, cfg.LowWater, cfg.Hysteresis)
	}
	return &Manager{
		inner:      inner,
		cfg:        cfg,
		policy:     pol,
		drainSince: make(map[int]uint64),
		clock:      time.Now,
		jitter:     0x9E3779B97F4A7C15,
	}, nil
}

// Policy returns the active decision rule.
func (mgr *Manager) Policy() Policy { return mgr.policy }

// SetClock replaces the manager's time source, which only backoff
// decisions consult — tests and the chaos harness install a logical
// clock so grow-retry sequences are deterministic and replayable. A nil
// now restores the wall clock. Call before traffic.
func (mgr *Manager) SetClock(now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	mgr.mu.Lock()
	mgr.clock = now
	mgr.mu.Unlock()
}

// SetEventSink installs the flight-recorder publish hook the telemetry
// layer uses to capture the lifecycle (grow/drain/retire/reactivate and
// the deny/backoff rungs). Install during stack construction, before
// traffic; nil uninstalls.
func (mgr *Manager) SetEventSink(fn func(event string, a, b uint64)) {
	mgr.mu.Lock()
	mgr.sink = fn
	mgr.mu.Unlock()
}

// emit publishes a lifecycle event. Called with mu held; nil-safe.
func (mgr *Manager) emit(event string, a, b uint64) {
	if mgr.sink != nil {
		mgr.sink(event, a, b)
	}
}

// Config returns the effective (defaulted) policy.
func (mgr *Manager) Config() Config { return mgr.cfg }

// Router exposes the wrapped multi-instance router.
func (mgr *Manager) Router() *multi.Multi { return mgr.inner }

// OnDrainRange registers a hook the manager calls for every draining
// slot's offset window, both when the drain starts and on every Poll
// while the slot waits for zero live chunks. Register hooks during stack
// construction, before traffic.
func (mgr *Manager) OnDrainRange(fn DrainHook) {
	mgr.mu.Lock()
	mgr.hooks = append(mgr.hooks, fn)
	mgr.mu.Unlock()
}

// Counters returns the lifecycle totals.
func (mgr *Manager) Counters() Counters {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	return mgr.counters
}

// Utilization returns live bytes over active capacity (0 when no slot is
// active, which cannot happen through the manager's own transitions).
func (mgr *Manager) Utilization() float64 {
	used, capacity := mgr.usage()
	if capacity == 0 {
		return 0
	}
	return float64(used) / float64(capacity)
}

// usage sums live bytes and capacity over the active slots.
func (mgr *Manager) usage() (used int64, capacity int64) {
	span := int64(mgr.inner.InstanceSpan())
	for _, info := range mgr.inner.InstanceInfos() {
		if info.State == multi.Active {
			used += info.LiveBytes
			capacity += span
		}
	}
	return used, capacity
}

// drainRange invokes the registered hooks for slot k's offset window.
func (mgr *Manager) drainRange(k int) {
	lo := uint64(k) * mgr.inner.InstanceSpan()
	hi := lo + mgr.inner.InstanceSpan()
	for _, fn := range mgr.hooks {
		fn(lo, hi)
	}
}

// Poll performs one observation/decision step: finish pending retires
// whose slots reached zero live chunks (migrating stragglers off slots
// that waited long enough, when migration is enabled), then hand the
// policy one observation and act on its decision. Poll is safe to call
// concurrently with allocator traffic; decision steps serialize on the
// manager's mutex.
func (mgr *Manager) Poll() Action {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	mgr.counters.Polls++
	act := Action{Grew: -1, Reactivated: -1, DrainStarted: -1}

	// Phase 1: push pending drains toward zero live and retire the ones
	// that got there. The depot hook runs first so magazines parked since
	// the last Poll go back down before the live check; migration runs
	// last, once a slot has waited AfterPolls steps — the cheap paths get
	// that long to empty it for free before chunks are copied.
	for _, info := range mgr.inner.InstanceInfos() {
		if info.State != multi.Draining {
			continue
		}
		if _, ok := mgr.drainSince[info.Slot]; !ok {
			// Drains started behind the manager's back (direct router
			// calls) are adopted with their age starting now.
			mgr.drainSince[info.Slot] = mgr.counters.Polls
		}
		mgr.drainRange(info.Slot)
		done, err := mgr.inner.TryRetire(info.Slot)
		if err == nil && !done && mgr.cfg.Migration.Enabled &&
			mgr.counters.Polls-mgr.drainSince[info.Slot] >= uint64(mgr.cfg.Migration.AfterPolls) {
			if mgr.migrateSlot(info.Slot, &act) > 0 {
				done, err = mgr.inner.TryRetire(info.Slot)
			}
		}
		switch {
		case err != nil:
			// A decommit failure left the slot published and draining;
			// count it and let a later Poll retry — retirement is the one
			// lifecycle step that is naturally idempotent.
			mgr.counters.RetireFailures++
			mgr.emit("retire-fail", uint64(info.Slot), 0)
		case done:
			mgr.counters.Retires++
			mgr.retireAge(info.Slot)
			act.Retired = append(act.Retired, info.Slot)
			mgr.emit("retire", uint64(info.Slot), 0)
		}
	}

	// Phase 2: the policy decides over one observation of the active set.
	used, capacity := mgr.usage()
	if capacity == 0 {
		return act
	}
	act.Utilization = float64(used) / float64(capacity)
	switch d := mgr.policy.Decide(mgr.observe(act.Utilization, used, capacity)); d.Kind {
	case GrowOne:
		mgr.grow(&act)
	case DrainSlot:
		mgr.shrinkSlot(d.Slot, &act)
	}
	return act
}

// observe assembles the policy input for one step. Called with mu held,
// Polls already incremented — the step clock is the Poll counter, so
// policies reasoning about time replay deterministically.
func (mgr *Manager) observe(utilization float64, used, capacity int64) Observation {
	infos := mgr.inner.InstanceInfos()
	o := Observation{
		Step:        mgr.counters.Polls,
		Utilization: utilization,
		Floor:       mgr.cfg.MinInstances,
		Cap:         mgr.cfg.MaxInstances,
		Slots:       make([]SlotObs, len(infos)),
	}
	span := float64(mgr.inner.InstanceSpan())
	for i, info := range infos {
		o.Slots[i] = SlotObs{
			Slot:      info.Slot,
			State:     info.State,
			Live:      info.Live,
			LiveBytes: info.LiveBytes,
		}
		if span > 0 {
			o.Slots[i].Utilization = float64(info.LiveBytes) / span
		}
		switch info.State {
		case multi.Active:
			o.Active++
			o.Published++
		case multi.Draining:
			o.Published++
		}
	}
	return o
}

// retireAge folds a retiring slot's drain age into the bookkeeping.
// Called with mu held.
func (mgr *Manager) retireAge(k int) {
	if since, ok := mgr.drainSince[k]; ok {
		mgr.counters.LastRetirePolls = mgr.counters.Polls - since
		delete(mgr.drainSince, k)
	}
}

// grow publishes capacity: a draining slot is re-activated when one
// exists (its chunks are still ours; cancelling the drain is free),
// otherwise a fresh instance is built, unless the cap refuses or a
// backoff window from an earlier environmental failure is still open.
// Called with mu held.
func (mgr *Manager) grow(act *Action) {
	for _, info := range mgr.inner.InstanceInfos() {
		if info.State == multi.Draining {
			if err := mgr.inner.Reactivate(info.Slot); err == nil {
				mgr.counters.Reactivations++
				delete(mgr.drainSince, info.Slot)
				act.Reactivated = info.Slot
				mgr.emit("reactivate", uint64(info.Slot), 0)
				return
			}
		}
	}
	if mgr.inner.Instances() >= mgr.cfg.MaxInstances {
		mgr.counters.DeniedAtCap++
		act.DeniedAtCap = true
		mgr.emit("deny-cap", uint64(mgr.cfg.MaxInstances), 0)
		return
	}
	if mgr.growStreak > 0 && mgr.clock().Before(mgr.nextGrowAt) {
		// The environment refused recently; don't hammer it. Allocation
		// pressure meanwhile degrades to deny at the current capacity —
		// the stack keeps serving what it has.
		mgr.counters.DeniedBackpressure++
		act.DeniedBackpressure = true
		act.GrowErr = mgr.lastGrowErr
		mgr.emit("deny-backpressure", uint64(mgr.growStreak), 0)
		return
	}
	if mgr.growStreak > 0 {
		mgr.counters.GrowRetries++
	}
	k, err := mgr.inner.AddInstance()
	if err != nil {
		mgr.counters.GrowFailures++
		mgr.growStreak++
		mgr.lastGrowErr = err
		mgr.nextGrowAt = mgr.clock().Add(mgr.backoff())
		act.GrowErr = err
		mgr.emit("grow-fail", uint64(mgr.growStreak), 0)
		return
	}
	mgr.growStreak, mgr.lastGrowErr, mgr.nextGrowAt = 0, nil, time.Time{}
	mgr.counters.Grows++
	act.Grew = k
	mgr.emit("grow", uint64(k), 0)
}

// backoff returns the wait before the next grow attempt: GrowRetryBase
// doubled per consecutive failure, capped at GrowRetryMax, plus up to
// +50% deterministic xorshift jitter so a fleet of managers polling in
// lockstep doesn't retry in lockstep. Called with mu held, growStreak
// already incremented.
func (mgr *Manager) backoff() time.Duration {
	d := mgr.cfg.GrowRetryBase
	for i := 1; i < mgr.growStreak && d < mgr.cfg.GrowRetryMax; i++ {
		d *= 2
	}
	if d > mgr.cfg.GrowRetryMax {
		d = mgr.cfg.GrowRetryMax
	}
	mgr.jitter ^= mgr.jitter << 13
	mgr.jitter ^= mgr.jitter >> 7
	mgr.jitter ^= mgr.jitter << 17
	return d + time.Duration(mgr.jitter%uint64(d/2+1))
}

// shrinkSlot starts draining the given active slot (victim < 0 picks the
// least-utilized one), keeping at least MinInstances active. Called with
// mu held.
func (mgr *Manager) shrinkSlot(victim int, act *Action) {
	if mgr.inner.ActiveInstances() <= mgr.cfg.MinInstances {
		return
	}
	if victim < 0 {
		best := int64(0)
		for _, info := range mgr.inner.InstanceInfos() {
			if info.State != multi.Active {
				continue
			}
			if victim < 0 || info.LiveBytes < best {
				victim, best = info.Slot, info.LiveBytes
			}
		}
	}
	if victim < 0 {
		return
	}
	if err := mgr.inner.StartDrain(victim); err != nil {
		return
	}
	mgr.counters.Drains++
	mgr.drainSince[victim] = mgr.counters.Polls
	act.DrainStarted = victim
	mgr.emit("drain", uint64(victim), 0)
	mgr.drainRange(victim)
	// An already-empty victim retires in the same step.
	done, err := mgr.inner.TryRetire(victim)
	switch {
	case err != nil:
		mgr.counters.RetireFailures++
		mgr.emit("retire-fail", uint64(victim), 0)
	case done:
		mgr.counters.Retires++
		mgr.retireAge(victim)
		act.Retired = append(act.Retired, victim)
		mgr.emit("retire", uint64(victim), 0)
	}
}

// Grow forces one grow step regardless of watermarks (tests, operator
// tooling). It returns the slot index published or re-activated; a
// refusal carries the real cause — errors.Is(err, ErrAtCap) when the
// policy refused, errors.Is(err, ErrBackpressure) when an earlier
// environmental failure has the manager backing off (the chain also
// carries that failure), or the grow attempt's own error.
func (mgr *Manager) Grow() (int, error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	var act Action
	act.Grew, act.Reactivated = -1, -1
	mgr.grow(&act)
	switch {
	case act.Grew >= 0:
		return act.Grew, nil
	case act.Reactivated >= 0:
		return act.Reactivated, nil
	case act.DeniedBackpressure:
		if act.GrowErr != nil {
			return -1, fmt.Errorf("elastic: backing off after %d failed grows: %w (last: %w)",
				mgr.growStreak, ErrBackpressure, act.GrowErr)
		}
		return -1, fmt.Errorf("elastic: backing off: %w", ErrBackpressure)
	case act.GrowErr != nil:
		return -1, fmt.Errorf("elastic: growing: %w", act.GrowErr)
	default:
		return -1, fmt.Errorf("elastic: at the %d-instance cap: %w", mgr.cfg.MaxInstances, ErrAtCap)
	}
}

// Shrink forces one drain start regardless of watermarks (tests, operator
// tooling). It returns the slot index now draining; retirement still
// waits for zero live chunks via Poll.
func (mgr *Manager) Shrink() (int, error) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	var act Action
	act.Grew, act.Reactivated, act.DrainStarted = -1, -1, -1
	mgr.shrinkSlot(-1, &act)
	if act.DrainStarted < 0 {
		return -1, fmt.Errorf("elastic: at the %d-instance floor", mgr.cfg.MinInstances)
	}
	return act.DrainStarted, nil
}

// Start launches a background goroutine Polling every interval until
// Stop. A second Start without Stop is a no-op. The goroutine is
// registered and spawned under the same mutex hold that publishes
// stopCh, so a concurrent Stop cannot observe the channel yet miss the
// goroutine in the wait group (which would let a stray Poll outlive
// Stop and race a subsequent quiescent-only Scrub).
func (mgr *Manager) Start(interval time.Duration) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.stopCh != nil {
		return
	}
	stop := make(chan struct{})
	mgr.stopCh = stop
	mgr.bg.Add(1)
	go func() {
		defer mgr.bg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				mgr.Poll()
			}
		}
	}()
}

// Stop halts the background goroutine started by Start and waits for it.
func (mgr *Manager) Stop() {
	mgr.mu.Lock()
	stop := mgr.stopCh
	mgr.stopCh = nil
	mgr.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	mgr.bg.Wait()
}

// --- the composable layer contract, forwarding to the router ---

// Name implements alloc.Allocator.
func (mgr *Manager) Name() string { return "elastic+" + mgr.inner.Name() }

// Geometry implements alloc.Allocator (per-instance geometry).
func (mgr *Manager) Geometry() geometry.Geometry { return mgr.inner.Geometry() }

// OffsetSpan implements alloc.Spanner; it widens as the table grows.
func (mgr *Manager) OffsetSpan() uint64 { return mgr.inner.OffsetSpan() }

// Unwrap exposes the router to generic stack walkers.
func (mgr *Manager) Unwrap() alloc.Allocator { return mgr.inner }

// Alloc implements alloc.Allocator (forwarded).
func (mgr *Manager) Alloc(size uint64) (uint64, bool) { return mgr.inner.Alloc(size) }

// Free implements alloc.Allocator (forwarded).
func (mgr *Manager) Free(offset uint64) { mgr.inner.Free(offset) }

// AllocBatch implements alloc.BatchAllocator (forwarded; the router
// batches natively).
func (mgr *Manager) AllocBatch(size uint64, n int) []uint64 { return mgr.inner.AllocBatch(size, n) }

// FreeBatch implements alloc.BatchAllocator (forwarded).
func (mgr *Manager) FreeBatch(offsets []uint64) { mgr.inner.FreeBatch(offsets) }

// NewHandle implements alloc.Allocator: the manager holds no per-worker
// state, so router handles are used directly.
func (mgr *Manager) NewHandle() alloc.Handle { return mgr.inner.NewHandle() }

// Stats implements alloc.Allocator (forwarded).
func (mgr *Manager) Stats() alloc.Stats { return mgr.inner.Stats() }

// ChunkSize implements alloc.ChunkSizer (forwarded).
func (mgr *Manager) ChunkSize(offset uint64) uint64 { return mgr.inner.ChunkSize(offset) }

// Scrub implements alloc.Scrubber (forwarded). Scrub does not retire
// slots; lifecycle transitions only happen through Poll so test
// interleavings stay deterministic.
func (mgr *Manager) Scrub() { mgr.inner.Scrub() }

// LayerStats implements alloc.LayerStatser: the elastic entry carries the
// lifecycle counters and the current fleet shape, followed by the
// router's entries. Like the arena layer it contributes no operation
// counters of its own — operations are accounted where they are served.
func (mgr *Manager) LayerStats() []alloc.LayerStats {
	c := mgr.Counters()
	active, draining := 0, 0
	for _, info := range mgr.inner.InstanceInfos() {
		switch info.State {
		case multi.Active:
			active++
		case multi.Draining:
			draining++
		}
	}
	entry := alloc.LayerStats{
		Layer: "elastic",
		Extra: map[string]uint64{
			"elastic_instances":     uint64(active),
			"elastic_draining":      uint64(draining),
			"elastic_slots":         uint64(mgr.inner.Slots()),
			"elastic_polls":         c.Polls,
			"elastic_grows":         c.Grows,
			"elastic_reactivations": c.Reactivations,
			"elastic_drains":        c.Drains,
			"elastic_retires":       c.Retires,
			"elastic_denied_at_cap": c.DeniedAtCap,
		},
	}
	if c.GrowFailures > 0 {
		entry.Extra["elastic_grow_failures"] = c.GrowFailures
		entry.Extra["elastic_grow_retries"] = c.GrowRetries
	}
	if c.DeniedBackpressure > 0 {
		entry.Extra["elastic_denied_backpressure"] = c.DeniedBackpressure
	}
	if c.RetireFailures > 0 {
		entry.Extra["elastic_retire_failures"] = c.RetireFailures
	}
	if c.MigratedChunks > 0 {
		entry.Extra["elastic_migrated"] = c.MigratedChunks
		entry.Extra["elastic_migrated_bytes"] = c.MigratedBytes
	}
	if c.MigrateFails > 0 {
		entry.Extra["elastic_migrate_fails"] = c.MigrateFails
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(mgr.inner)...)
}

// Find walks an allocator stack outside-in and returns the first elastic
// manager it contains (nil when the stack is not elastic). It understands
// the generic Unwrap chain every wrapping layer implements.
func Find(a alloc.Allocator) *Manager {
	for a != nil {
		if mgr, ok := a.(*Manager); ok {
			return mgr
		}
		u, ok := a.(interface{ Unwrap() alloc.Allocator })
		if !ok {
			return nil
		}
		a = u.Unwrap()
	}
	return nil
}
