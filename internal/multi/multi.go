// Package multi composes several single-instance back-end allocators into
// one address space, the deployment mode the paper's related-work section
// describes for large NUMA machines: the Linux kernel keeps one buddy
// instance per NUMA node and routes requests by memory policy, falling
// back to other nodes when the preferred one cannot serve.
//
// The wrapper is deliberately orthogonal to the allocator variant: it
// takes any registered back-end (non-blocking or spin-locked), which is
// exactly the paper's point — multi-instance data separation and
// non-blocking single-instance management compose. It is a full citizen
// of the composable layer contract (alloc.ChunkSizer, alloc.Spanner,
// alloc.LayerStatser, alloc.Scrubber), so caching front-ends and
// materialized arenas stack over it transparently.
//
// The instance set is no longer fixed at construction: the router keeps a
// copy-on-write slot table behind an atomic pointer, so an elastic
// capacity manager (internal/elastic) can add instances and retire them at
// runtime while handles keep operating lock-free. Slot k permanently owns
// the global offset window [k*Total, (k+1)*Total) — retiring an instance
// leaves a hole in the table rather than renumbering, so offsets of live
// chunks on the surviving instances stay stable, and a later grow reuses
// the hole before widening the table. Retirement is three-phase: a slot is
// first marked draining (allocations skip it; frees keep routing to it by
// offset), then waits until its live-chunk count reaches zero, and only
// then is unpublished from the table (see DESIGN.md, "The elastic instance
// lifecycle").
package multi

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/mem"
	"repro/internal/proc"
)

// Policy selects the preferred instance for a handle.
type Policy int

const (
	// RoundRobin assigns handles to instances in creation order, the
	// moral equivalent of spreading threads across NUMA nodes.
	RoundRobin Policy = iota
	// Fixed pins every handle to instance 0, reproducing the paper's
	// Figure 12 setup where the memory policy binds all threads to one
	// buddy instance ("instance 0") to measure same-instance contention.
	Fixed
)

// Slot lifecycle states.
const (
	// slotActive serves allocations and frees.
	slotActive uint32 = iota
	// slotDraining refuses new allocations but still receives frees for
	// chunks it delivered earlier; once its live count reaches zero it can
	// be unpublished.
	slotDraining
)

// State is the externally visible lifecycle state of an instance slot.
type State int

const (
	// Active slots serve allocations.
	Active State = iota
	// Draining slots only receive frees until their live count hits zero.
	Draining
	// Retired marks an unpublished hole in the table.
	Retired
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	default:
		return "retired"
	}
}

// slot is one instance position of the table. Slots are shared by every
// table version that contains them: the lifecycle state and the live
// counters live in the slot, not the table, so flipping a slot to
// draining needs no table copy and is visible to handles still operating
// through an older table snapshot.
type slot struct {
	// id is unique across the router's lifetime; handles use it to detect
	// that a hole was refilled by a different instance and their cached
	// sub-handle is stale.
	id    uint64
	a     alloc.Allocator
	sizer alloc.ChunkSizer
	state atomic.Uint32
	// live and liveBytes track the chunks this slot has delivered and not
	// yet seen freed. They are maintained only when the router's live
	// tracking is enabled (elastic deployments); the fixed-set fast path
	// pays nothing. live is incremented BEFORE the state check on the
	// allocation path — see Handle.tryAllocOn for why that ordering makes
	// the draining→zero-live→unpublish sequence race-free.
	live      atomic.Int64
	liveBytes atomic.Int64
}

// table is one immutable version of the instance set. Positions are
// stable: slots[k] serves global offsets [k*span, (k+1)*span); nil marks
// a retired hole.
type table struct {
	slots []*slot
}

// Multi is a set of same-geometry back-end instances behind one offset
// space: instance k serves global offsets [k*Total, (k+1)*Total).
type Multi struct {
	variant  string
	cfg      alloc.Config
	policy   Policy
	span     uint64 // per-instance managed bytes
	geo      geometry.Geometry
	leafName string
	// trackLive enables the per-slot live accounting the elastic lifecycle
	// needs. It must be set (EnableLiveTracking) before the router serves
	// any traffic and never changes afterwards.
	trackLive bool
	// region, when bound (BindMemory, before traffic), backs each slot's
	// offset window with platform mapped memory that follows the slot
	// lifecycle: committed while the slot is published, decommitted when it
	// retires — the point where an elastic shrink actually returns RSS to
	// the OS.
	region *mem.Region

	tab  atomic.Pointer[table]
	next atomic.Uint64

	mu     sync.Mutex
	nextID uint64
	// handles is the registry of live handles (for stats aggregation at
	// quiescent points); closed handles fold their routing counters into
	// closedRouting/closedFallbacks and leave the registry.
	handles         []*Handle
	closedRouting   alloc.Stats
	closedFallbacks uint64
	// conv holds the idle convenience handles for Multi.Alloc/Free,
	// sharded per P (indexed by proc.Hint masked to the pool count) so
	// concurrent convenience callers stop bouncing one pool lock's cache
	// line. Plain free lists (not sync.Pool) keep the
	// permanently-registered handle count bounded by the convenience
	// path's peak concurrency — sync.Pool deliberately drops items
	// (always under the race detector), which would regrow the
	// registration leak.
	conv     []convShard
	convMask int
}

// convShard is one per-P free list of idle convenience handles, padded
// out to a cache line so neighboring shards' locks do not false-share.
type convShard struct {
	mu   sync.Mutex
	free []*Handle
	_    [32]byte
}

// New builds count instances of the named back-end variant.
func New(variant string, count int, cfg alloc.Config, policy Policy) (*Multi, error) {
	if count <= 0 {
		return nil, fmt.Errorf("multi: instance count %d must be positive", count)
	}
	m := &Multi{variant: variant, cfg: cfg, policy: policy, span: cfg.Total}
	pools := 1
	for pools < runtime.GOMAXPROCS(0) && pools < 64 {
		pools *= 2
	}
	m.conv = make([]convShard, pools)
	m.convMask = pools - 1
	slots := make([]*slot, count)
	for i := 0; i < count; i++ {
		s, err := m.buildSlot()
		if err != nil {
			return nil, fmt.Errorf("multi: instance %d: %w", i, err)
		}
		slots[i] = s
	}
	m.geo = slots[0].a.Geometry()
	m.leafName = slots[0].a.Name()
	m.tab.Store(&table{slots: slots})
	return m, nil
}

// buildSlot constructs one leaf instance and wraps it in a fresh slot.
// Callers must hold m.mu except during New.
func (m *Multi) buildSlot() (*slot, error) {
	a, err := alloc.Build(m.variant, m.cfg)
	if err != nil {
		return nil, err
	}
	sizer, ok := a.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("multi: back-end %s cannot report chunk sizes", a.Name())
	}
	m.nextID++
	return &slot{id: m.nextID, a: a, sizer: sizer}, nil
}

// EnableLiveTracking turns on the per-slot live accounting that the
// draining→zero-live→unpublish retirement sequence depends on. It must be
// called before the router serves any traffic (the elastic manager calls
// it at construction); chunks delivered before tracking was enabled would
// be invisible to the counters and break the retirement argument.
func (m *Multi) EnableLiveTracking() { m.trackLive = true }

// LiveTracking reports whether per-slot live accounting is enabled.
func (m *Multi) LiveTracking() bool { return m.trackLive }

// BindMemory attaches a mapped region as the router's memory backing:
// slot k's offset window [k*Total, (k+1)*Total) is backed by region
// window k. Every currently published slot's window is committed here;
// afterwards the lifecycle keeps them in step — AddInstance commits
// (recommits, when refilling a retired hole) before publishing,
// Reactivate re-asserts the commit, and TryRetire decommits after
// unpublishing, which is what finally returns a retired instance's RSS
// to the OS. Like EnableLiveTracking it must be called before the router
// serves any traffic.
func (m *Multi) BindMemory(r *mem.Region) error {
	if r.WindowSize() != m.span {
		return fmt.Errorf("multi: region window %d bytes does not match the %d-byte instance span",
			r.WindowSize(), m.span)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tab.Load()
	if err := r.Ensure(len(t.slots)); err != nil {
		return err
	}
	for k, s := range t.slots {
		if s == nil {
			continue
		}
		if err := r.Commit(k); err != nil {
			return err
		}
	}
	m.region = r
	return nil
}

// Memory exposes the bound mapped region (nil for unmapped routers).
func (m *Multi) Memory() *mem.Region { return m.region }

// Name implements alloc.Allocator.
func (m *Multi) Name() string {
	if m.region != nil {
		return fmt.Sprintf("mapped+multi[%dx %s]", m.Instances(), m.leafName)
	}
	return fmt.Sprintf("multi[%dx %s]", m.Instances(), m.leafName)
}

// Geometry implements alloc.Allocator; it reports the per-instance
// geometry (instances are identical). The global offset space is wider:
// see OffsetSpan.
func (m *Multi) Geometry() geometry.Geometry { return m.geo }

// OffsetSpan implements alloc.Spanner: the router serves global offsets
// [0, Slots*Total). Retired holes keep their window reserved (offsets on
// surviving instances never move), so the span only ever grows.
func (m *Multi) OffsetSpan() uint64 { return m.span * uint64(len(m.tab.Load().slots)) }

// InstanceSpan returns the per-instance managed bytes (the width of one
// slot's offset window).
func (m *Multi) InstanceSpan() uint64 { return m.span }

// Instances returns the number of published back-end instances (active or
// draining; retired holes excluded).
func (m *Multi) Instances() int {
	n := 0
	for _, s := range m.tab.Load().slots {
		if s != nil {
			n++
		}
	}
	return n
}

// ActiveInstances returns the number of slots currently accepting
// allocations.
func (m *Multi) ActiveInstances() int {
	n := 0
	for _, s := range m.tab.Load().slots {
		if s != nil && s.state.Load() == slotActive {
			n++
		}
	}
	return n
}

// Slots returns the table length, retired holes included — the divisor of
// the global offset space.
func (m *Multi) Slots() int { return len(m.tab.Load().slots) }

// Instance returns the k-th published back-end (for per-instance stats).
// With an elastic lifecycle the slot may be a retired hole; Instance then
// returns the first published instance so leaf-probing stack walkers keep
// working, and panics only when nothing is published (impossible: the
// router never retires its last instance).
func (m *Multi) Instance(k int) alloc.Allocator {
	t := m.tab.Load()
	if k < len(t.slots) && t.slots[k] != nil {
		return t.slots[k].a
	}
	for _, s := range t.slots {
		if s != nil {
			return s.a
		}
	}
	panic("multi: no published instances")
}

// InstanceOf returns which instance slot serves a global offset.
func (m *Multi) InstanceOf(offset uint64) int { return int(offset / m.span) }

// route validates a global offset and splits it into (slot, local).
func (m *Multi) route(t *table, offset uint64) (int, uint64, *slot) {
	k := m.InstanceOf(offset)
	if k >= len(t.slots) {
		panic(fmt.Sprintf("multi: offset %#x outside the %d-slot offset space", offset, len(t.slots)))
	}
	s := t.slots[k]
	if s == nil {
		panic(fmt.Sprintf("multi: offset %#x routes to retired slot %d", offset, k))
	}
	return k, offset - uint64(k)*m.span, s
}

// reservedFor returns the reserved (power-of-two) size class a request
// rounds to — the delta the live-byte accounting applies per allocation.
func (m *Multi) reservedFor(size uint64) uint64 {
	return m.geo.SizeOfLevel(m.geo.LevelForSize(size))
}

// getConv pops an idle convenience handle from the calling P's pool
// shard, creating one only when that shard's are all in flight. A handle
// taken from shard i may be returned to shard j after a migration; the
// lists just shuffle, the registration bound is unaffected.
func (m *Multi) getConv() *Handle {
	c := &m.conv[proc.Hint()&m.convMask]
	c.mu.Lock()
	if n := len(c.free); n > 0 {
		h := c.free[n-1]
		c.free = c.free[:n-1]
		c.mu.Unlock()
		return h
	}
	c.mu.Unlock()
	return m.newHandle(m.prefer())
}

func (m *Multi) putConv(h *Handle) {
	c := &m.conv[proc.Hint()&m.convMask]
	c.mu.Lock()
	c.free = append(c.free, h)
	c.mu.Unlock()
}

// Alloc implements alloc.Allocator through a recycled convenience
// handle. Earlier revisions built a fresh handle per call; every handle
// permanently registers sub-handles on every instance, so the
// convenience path leaked without bound. The free list keeps the
// registration count at the peak concurrency of the convenience path
// instead.
func (m *Multi) Alloc(size uint64) (uint64, bool) {
	h := m.getConv()
	off, ok := h.Alloc(size)
	m.putConv(h)
	return off, ok
}

// Free implements alloc.Allocator (through a recycled handle, so the
// routing layer's Frees counter stays in balance with Allocs).
func (m *Multi) Free(offset uint64) {
	h := m.getConv()
	h.Free(offset)
	m.putConv(h)
}

// ChunkSize implements alloc.ChunkSizer by routing the global offset to
// the owning instance's metadata.
func (m *Multi) ChunkSize(offset uint64) uint64 {
	_, local, s := m.route(m.tab.Load(), offset)
	return s.sizer.ChunkSize(local)
}

// Scrub implements alloc.Scrubber: it forwards to every published
// instance that supports scrubbing. Like any Scrub, quiescent points only.
func (m *Multi) Scrub() {
	for _, s := range m.tab.Load().slots {
		if s == nil {
			continue
		}
		if sc, ok := s.a.(alloc.Scrubber); ok {
			sc.Scrub()
		}
	}
}

// prefer picks the preferred slot for the next handle by policy, skipping
// holes and draining slots when possible.
func (m *Multi) prefer() int {
	t := m.tab.Load()
	n := len(t.slots)
	if m.policy == RoundRobin {
		start := int(m.next.Add(1)-1) % n
		for d := 0; d < n; d++ {
			k := (start + d) % n
			if s := t.slots[k]; s != nil && s.state.Load() == slotActive {
				return k
			}
		}
		return start
	}
	return 0
}

// NewHandle implements alloc.Allocator: the handle carries the preferred
// instance chosen by the policy; per-instance sub-handles are created
// lazily as the handle's operations touch slots, so handles follow the
// table as it grows.
func (m *Multi) NewHandle() alloc.Handle { return m.newHandle(m.prefer()) }

// NewHandleOn returns a handle pinned to the given preferred slot —
// the explicit memory-policy binding (a thread bound to a NUMA node)
// that the Fixed policy hard-wires to instance 0.
func (m *Multi) NewHandleOn(instance int) alloc.Handle {
	t := m.tab.Load()
	if instance < 0 || instance >= len(t.slots) || t.slots[instance] == nil {
		panic(fmt.Sprintf("multi: NewHandleOn(%d) with %d slots", instance, len(t.slots)))
	}
	return m.newHandle(instance)
}

// NewHandlePreferring is the non-panicking sibling of NewHandleOn for
// affine callers above an elastic lifecycle (the per-CPU shard layer):
// the handle prefers slot k when it is published, and falls back to the
// routing policy's choice when k is out of range or a retired hole —
// affinity is advisory there, not a binding.
func (m *Multi) NewHandlePreferring(k int) *Handle {
	t := m.tab.Load()
	if k >= 0 && k < len(t.slots) && t.slots[k] != nil {
		return m.newHandle(k)
	}
	return m.newHandle(m.prefer())
}

// Rehome moves the handle's preferred slot back to k when that slot is
// published. Round-robin fallback deliberately drags the preference to
// whatever instance served last (see Handle.Alloc); an affine owner —
// shard k re-asserting "my instance is k" after a fallback excursion or
// a stash drain — undoes the drag with this. Owner-goroutine only, like
// every Handle method.
func (h *Handle) Rehome(k int) {
	t := h.m.tab.Load()
	if k >= 0 && k < len(t.slots) && t.slots[k] != nil {
		h.pref = k
	}
}

func (m *Multi) newHandle(pref int) *Handle {
	h := &Handle{m: m, pref: pref}
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// Stats aggregates all published instances (the back-end view of the
// traffic; the routing layer's own counters are in LayerStats). Instances
// retire only when fully drained — their allocs and frees are balanced —
// so dropping them keeps the aggregate balanced.
func (m *Multi) Stats() alloc.Stats {
	var total alloc.Stats
	for _, s := range m.tab.Load().slots {
		if s != nil {
			total.Add(s.a.Stats())
		}
	}
	return total
}

// RouteStats are the routing-layer counters aggregated across handles.
type RouteStats struct {
	// Routed counts allocations served by the handle's preferred instance.
	Routed uint64
	// Fallbacks counts allocations the preferred instance could not serve
	// that another instance absorbed (the kernel's zone-fallback path).
	Fallbacks uint64
}

// Handles returns the number of handles registered so far (pooled
// convenience handles included) — a diagnostic for the handle-leak
// regression test and capacity monitoring.
func (m *Multi) Handles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.handles)
}

// RouteStats aggregates the routing counters of all handles; quiescent
// points only.
func (m *Multi) RouteStats() RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := RouteStats{
		Routed:    m.closedRouting.Allocs - m.closedFallbacks,
		Fallbacks: m.closedFallbacks,
	}
	for _, h := range m.handles {
		total.Routed += h.stats.Allocs - h.fallbacks
		total.Fallbacks += h.fallbacks
	}
	return total
}

// LayerStats implements alloc.LayerStatser: the routing layer's entry
// (handle-level ops plus fallback counters) followed by one aggregated
// entry for the instance fleet.
func (m *Multi) LayerStats() []alloc.LayerStats {
	m.mu.Lock()
	routing := m.closedRouting
	fallbacks := m.closedFallbacks
	for _, h := range m.handles {
		routing.Add(h.stats)
		fallbacks += h.fallbacks
	}
	m.mu.Unlock()
	entry := alloc.LayerStats{
		Layer: m.Name(),
		Stats: routing,
		Extra: map[string]uint64{
			"instances": uint64(m.Instances()),
			"active":    uint64(m.ActiveInstances()),
			"slots":     uint64(m.Slots()),
			"fallbacks": fallbacks,
		},
	}
	if m.region != nil {
		ms := m.region.Stats()
		entry.Extra["mem_reserved"] = ms.ReservedBytes
		entry.Extra["mem_committed"] = ms.CommittedBytes
		entry.Extra["mem_decommits"] = ms.Decommits
		entry.Extra["mem_recommits"] = ms.Recommits
		if ms.HugeFallbacks > 0 {
			entry.Extra["mem_commit_fallbacks"] = ms.HugeFallbacks
		}
		if ms.BindFailures > 0 {
			entry.Extra["mem_bind_failures"] = ms.BindFailures
		}
		if n := ms.ReserveFails + ms.CommitFails + ms.DecommitFails; n > 0 {
			entry.Extra["mem_lifecycle_failures"] = n
		}
		for site, n := range m.region.Injector().Injected() {
			entry.Extra["fault_"+string(site)] = n
		}
	}
	backend := alloc.LayerStats{
		Layer: fmt.Sprintf("%s x%d", m.leafName, m.Instances()),
		Stats: m.Stats(),
	}
	return []alloc.LayerStats{entry, backend}
}

// AddInstance builds a fresh instance of the router's variant and
// publishes it: into the first retired hole when one exists (keeping the
// offset span stable), otherwise appended to the table (widening the
// global offset space by one instance span). It returns the slot index.
// Table mutations are serialized by the router's mutex; readers stay
// lock-free on the atomic table pointer. Publication order: the instance
// is fully constructed before the table carrying it is stored, so any
// handle that can see the slot sees a complete instance.
func (m *Multi) AddInstance() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.tab.Load()
	slots := append([]*slot(nil), old.slots...)
	k := -1
	for i, existing := range slots {
		if existing == nil {
			k = i
			break
		}
	}
	if k < 0 {
		slots = append(slots, nil)
		k = len(slots) - 1
	}
	// Publication order, extended to memory: the slot's window is
	// committed (a recommit when k is a refilled hole) before the table
	// carrying the slot is stored, so any handle that can route to the
	// instance finds its memory resident. Memory goes FIRST so the common
	// environmental failure (reserve/commit ENOMEM) aborts before any
	// instance exists — nothing to unwind, the table is untouched and the
	// widened slots copy is simply dropped.
	if m.region != nil {
		if err := m.region.Ensure(k + 1); err != nil {
			return 0, fmt.Errorf("multi: reserving window %d: %w", k, err)
		}
		if err := m.region.Commit(k); err != nil {
			return 0, fmt.Errorf("multi: committing window %d: %w", k, err)
		}
	}
	s, err := m.buildSlot()
	if err != nil {
		// Roll the commit back so no half-committed window leaks behind
		// the unpublished slot. Best-effort: if the decommit also fails
		// the window merely stays resident and a later grow into this
		// hole recommits it idempotently.
		if m.region != nil {
			_ = m.region.Decommit(k)
		}
		return 0, fmt.Errorf("multi: adding instance: %w", err)
	}
	slots[k] = s
	m.tab.Store(&table{slots: slots})
	return k, nil
}

// StartDrain flips slot k from active to draining: handles stop
// allocating from it (the state check on the allocation path) while frees
// keep routing to it by offset. Draining the last active slot is refused —
// the router never goes allocation-dead. Requires live tracking.
func (m *Multi) StartDrain(k int) error {
	if !m.trackLive {
		return fmt.Errorf("multi: StartDrain without live tracking")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tab.Load()
	if k < 0 || k >= len(t.slots) || t.slots[k] == nil {
		return fmt.Errorf("multi: StartDrain(%d): no such instance", k)
	}
	s := t.slots[k]
	if s.state.Load() != slotActive {
		return fmt.Errorf("multi: StartDrain(%d): already draining", k)
	}
	active := 0
	for _, other := range t.slots {
		if other != nil && other.state.Load() == slotActive {
			active++
		}
	}
	if active <= 1 {
		return fmt.Errorf("multi: StartDrain(%d) would leave no active instance", k)
	}
	s.state.Store(slotDraining)
	return nil
}

// Reactivate flips a draining slot back to active — the cheap grow path
// when capacity pressure returns before the drain completed.
func (m *Multi) Reactivate(k int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tab.Load()
	if k < 0 || k >= len(t.slots) || t.slots[k] == nil {
		return fmt.Errorf("multi: Reactivate(%d): no such instance", k)
	}
	s := t.slots[k]
	if s.state.Load() != slotDraining {
		return fmt.Errorf("multi: Reactivate(%d): not draining", k)
	}
	// A draining slot's window is still committed (its live chunks are
	// still backed); re-asserting the commit is an idempotent no-op that
	// keeps the invariant "published slot => committed window" local.
	if m.region != nil {
		if err := m.region.Commit(k); err != nil {
			return fmt.Errorf("multi: recommitting window %d: %w", k, err)
		}
	}
	s.state.Store(slotActive)
	return nil
}

// TryRetire unpublishes a fully drained slot: it succeeds only when the
// slot is draining and its live-chunk count is zero, replacing the table
// with a copy holding a hole at k. Why this is safe under concurrent
// allocation: the allocation path increments the slot's live counter
// BEFORE loading the state, and TryRetire loads the counter AFTER the
// draining state was stored. Under Go's sequentially consistent atomics,
// observing live==0 here therefore proves that every allocation attempt
// that could still deliver from this slot will load the state after the
// draining store — and back off. Frees need no such argument: live==0
// means no chunk of this slot is outstanding, so no legal free can route
// here again.
func (m *Multi) TryRetire(k int) (bool, error) {
	if !m.trackLive {
		return false, fmt.Errorf("multi: TryRetire without live tracking")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.tab.Load()
	if k < 0 || k >= len(t.slots) || t.slots[k] == nil {
		return false, fmt.Errorf("multi: TryRetire(%d): no such instance", k)
	}
	s := t.slots[k]
	if s.state.Load() != slotDraining {
		return false, fmt.Errorf("multi: TryRetire(%d): not draining", k)
	}
	if s.live.Load() != 0 {
		return false, nil
	}
	// Decommit BEFORE unpublishing. It is safe this early: the draining
	// state already blocks new allocations and live==0 proved no chunk
	// references the window (the draining→zero-live fence above), so
	// nothing can touch the pages between here and the table store. And
	// it makes decommit failure recoverable: the slot stays published and
	// draining, the window stays committed, and the next retirement pass
	// simply retries — instead of the old unpublished-but-still-resident
	// half state that nothing would ever revisit.
	if m.region != nil {
		if err := m.region.Decommit(k); err != nil {
			return false, fmt.Errorf("multi: retiring slot %d: %w", k, err)
		}
	}
	slots := append([]*slot(nil), t.slots...)
	slots[k] = nil
	m.tab.Store(&table{slots: slots})
	return true, nil
}

// InstanceInfo is one slot's lifecycle snapshot.
type InstanceInfo struct {
	// Slot is the table position (== offset window index).
	Slot int
	// State is the lifecycle state; Retired slots carry no other data.
	State State
	// Live is the number of delivered, not-yet-freed chunks (live
	// tracking only; 0 otherwise).
	Live int64
	// LiveBytes is the reserved bytes of those chunks.
	LiveBytes int64
	// Name labels the instance's leaf allocator.
	Name string
}

// InstanceInfos returns a lifecycle snapshot of every table slot,
// retired holes included.
func (m *Multi) InstanceInfos() []InstanceInfo {
	t := m.tab.Load()
	out := make([]InstanceInfo, len(t.slots))
	for k, s := range t.slots {
		if s == nil {
			out[k] = InstanceInfo{Slot: k, State: Retired}
			continue
		}
		st := Active
		if s.state.Load() == slotDraining {
			st = Draining
		}
		out[k] = InstanceInfo{
			Slot:      k,
			State:     st,
			Live:      s.live.Load(),
			LiveBytes: s.liveBytes.Load(),
			Name:      s.a.Name(),
		}
	}
	return out
}

// Straggler is one live chunk still pinning a draining slot, in global
// offsets.
type Straggler struct {
	Offset uint64
	Size   uint64
}

// Stragglers enumerates up to max live chunks on draining slot k, in
// global offsets — the input of the elastic manager's migration step. It
// returns nil when the slot is not draining or its leaf cannot walk its
// live index (alloc.LiveWalker). The draining fence guarantees the slot's
// live set only shrinks during the walk; chunks freed concurrently may
// still appear, which callers tolerate (migration runs under the Scrub
// quiescence contract for the chunks it moves).
func (m *Multi) Stragglers(k, max int) []Straggler {
	t := m.tab.Load()
	if k < 0 || k >= len(t.slots) || t.slots[k] == nil {
		return nil
	}
	s := t.slots[k]
	if s.state.Load() != slotDraining {
		return nil
	}
	w, ok := s.a.(alloc.LiveWalker)
	if !ok {
		return nil
	}
	base := uint64(k) * m.span
	var out []Straggler
	w.WalkLive(func(off, size uint64) bool {
		out = append(out, Straggler{Offset: base + off, Size: size})
		return max <= 0 || len(out) < max
	})
	return out
}

// Handle is the per-worker face of the composed allocator. Sub-handles
// are created lazily per slot, re-created when a hole is refilled by a
// new instance (detected by slot id), and dropped when the handle
// observes a table in which their slot retired — otherwise every handle
// that ever touched an instance would pin its metadata after the elastic
// manager unpublished it, defeating the point of the shrink.
type Handle struct {
	m         *Multi
	pref      int
	tabSeen   *table
	subs      []alloc.Handle
	subIDs    []uint64
	stats     alloc.Stats
	fallbacks uint64
}

// syncTable drops cached sub-handles whose slot the given table no longer
// backs with the same instance, so a retired instance becomes collectable
// as soon as the owner goroutine observes the change. It runs once per
// published table version (a pointer compare on the fast path). Handles
// that stop operating keep their last snapshot pinned — the same
// monotonic-registry caveat DESIGN.md documents for handles themselves.
func (h *Handle) syncTable(t *table) {
	if h.tabSeen == t {
		return
	}
	h.tabSeen = t
	for k := range h.subs {
		if h.subs[k] == nil {
			continue
		}
		if k >= len(t.slots) || t.slots[k] == nil || t.slots[k].id != h.subIDs[k] {
			h.subs[k] = nil
			h.subIDs[k] = 0
		}
	}
}

// sub returns the handle's per-worker sub-handle for slot k, creating or
// refreshing it when the slot changed identity since the last visit.
func (h *Handle) sub(s *slot, k int) alloc.Handle {
	for k >= len(h.subs) {
		h.subs = append(h.subs, nil)
		h.subIDs = append(h.subIDs, 0)
	}
	if h.subIDs[k] != s.id {
		h.subs[k] = s.a.NewHandle()
		h.subIDs[k] = s.id
	}
	return h.subs[k]
}

// tryAllocOn attempts one allocation on slot k. With live tracking the
// counter is incremented BEFORE the state check: either TryRetire
// observes the increment (live > 0, retirement refused), or this load
// observes the draining state and backs off — there is no interleaving in
// which a chunk is delivered from a slot that was already judged empty.
func (h *Handle) tryAllocOn(s *slot, k int, size uint64) (uint64, bool) {
	m := h.m
	if m.trackLive {
		s.live.Add(1)
		if s.state.Load() != slotActive {
			s.live.Add(-1)
			return 0, false
		}
	}
	off, ok := h.sub(s, k).Alloc(size)
	if !ok {
		if m.trackLive {
			s.live.Add(-1)
		}
		return 0, false
	}
	if m.trackLive {
		s.liveBytes.Add(int64(m.reservedFor(size)))
	}
	return uint64(k)*m.span + off, true
}

// Alloc tries the preferred instance first and falls back to the others in
// order, the kernel's zone-fallback discipline. Holes and draining slots
// are skipped. A round-robin handle that fell back moves its preference
// to the instance that served (the kernel's cached zone-iterator
// position): without the hint, every allocation against a saturated
// preferred instance re-walks its full level scan before falling back —
// quadratic exactly when a fleet runs near capacity, the regime the
// elastic manager operates in. Fixed-policy handles never move (the
// pinning is the experiment).
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	t := h.m.tab.Load()
	h.syncTable(t)
	n := len(t.slots)
	for d := 0; d < n; d++ {
		k := (h.pref + d) % n
		s := t.slots[k]
		if s == nil {
			continue
		}
		if off, ok := h.tryAllocOn(s, k, size); ok {
			h.stats.Allocs++
			if d != 0 {
				h.fallbacks++
				if h.m.policy == RoundRobin {
					h.pref = k
				}
			}
			return off, true
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// Free routes the offset back to its owning instance. The live counter is
// decremented only after the instance-level free completed, so a slot
// observed at live==0 has fully quiesced.
func (h *Handle) Free(offset uint64) {
	m := h.m
	t := m.tab.Load()
	h.syncTable(t)
	k, local, s := m.route(t, offset)
	if m.trackLive {
		// Read the reserved size before the free clears the metadata.
		reserved := s.sizer.ChunkSize(local)
		h.sub(s, k).Free(local)
		s.liveBytes.Add(-int64(reserved))
		s.live.Add(-1)
	} else {
		h.sub(s, k).Free(local)
	}
	h.stats.Frees++
}

// Stats returns this handle's routing counters (per-instance work is
// accounted in the sub-handles and aggregated by Multi.Stats).
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: close every cached per-instance
// sub-handle, fold the routing counters into the router's retained
// totals, and unregister. The handle must not be used afterwards.
func (h *Handle) Close() {
	if h.m == nil {
		return
	}
	for k, sub := range h.subs {
		if sub != nil {
			alloc.CloseHandle(sub)
			h.subs[k] = nil
			h.subIDs[k] = 0
		}
	}
	m := h.m
	h.m = nil
	m.mu.Lock()
	for i, other := range m.handles {
		if other == h {
			m.handles[i] = m.handles[len(m.handles)-1]
			m.handles = m.handles[:len(m.handles)-1]
			break
		}
	}
	m.closedRouting.Add(h.stats)
	m.closedFallbacks += h.fallbacks
	m.mu.Unlock()
}
