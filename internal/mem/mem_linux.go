//go:build linux

package mem

import (
	"syscall"
	"unsafe"
)

// osMapped: this platform really maps and unmaps pages; decommit returns
// RSS to the OS.
const osMapped = true

// osReserve maps winSize bytes of inaccessible address space. PROT_NONE +
// MAP_NORESERVE means the reservation costs neither RSS nor commit
// charge; any touch before Commit faults. When hugepage alignment is
// requested the mapping is padded by one huge-page extent and the
// returned view starts on a HugePageSize boundary (see HugePageSize).
func osReserve(winSize uint64, huge bool) (raw, buf []byte, err error) {
	size := winSize
	if huge {
		size += HugePageSize
	}
	raw, err = syscall.Mmap(-1, 0, int(size),
		syscall.PROT_NONE,
		syscall.MAP_PRIVATE|syscall.MAP_ANONYMOUS|syscall.MAP_NORESERVE)
	if err != nil {
		return nil, nil, err
	}
	buf = raw
	if huge {
		base := uintptr(unsafe.Pointer(&raw[0]))
		pad := uint64(0)
		if rem := uint64(base) % HugePageSize; rem != 0 {
			pad = HugePageSize - rem
		}
		buf = raw[pad : pad+winSize : pad+winSize]
	}
	return raw, buf, nil
}

// osProtectRW opens the window for access. Nothing else has happened
// yet when it fails, so a failed commit is all-or-nothing: the window is
// still fenced, a later retry starts clean.
func osProtectRW(buf []byte) error {
	return syscall.Mprotect(buf, syscall.PROT_READ|syscall.PROT_WRITE)
}

// osAdviseHuge requests THP coalescing. A failure (kernel built without
// THP, or an injected fault) is the first rung of the degradation
// ladder: the caller counts it and the window stays on base 4KiB pages.
func osAdviseHuge(buf []byte) error {
	return syscall.Madvise(buf, syscall.MADV_HUGEPAGE)
}

// osTouch faults one byte per page so the pages are resident when the
// commit returns — committed bytes are meant to reconcile with RSS, not
// with a lazy first-fault promise. Runs after the hugepage advise so
// the first faults can materialize 2MiB extents.
func osTouch(buf []byte) {
	step := syscall.Getpagesize()
	for i := 0; i < len(buf); i += step {
		buf[i] = 0
	}
}

// osDecommit gives the pages back (MADV_DONTNEED zero-fills the range and
// drops the RSS immediately) and fences the window off again, so a
// use-after-retire is a fault instead of a silent read of stale payload.
func osDecommit(buf []byte) error {
	if err := syscall.Madvise(buf, syscall.MADV_DONTNEED); err != nil {
		return err
	}
	return syscall.Mprotect(buf, syscall.PROT_NONE)
}

// osRelease unmaps the whole original reservation.
func osRelease(raw []byte) { _ = syscall.Munmap(raw) }
