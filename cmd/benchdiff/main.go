// Command benchdiff compares two nbbsbench -json reports cell by cell and
// prints the per-cell throughput deltas — the tool the CI bench-trajectory
// job uses to relate a fresh measurement to the committed BENCH_pr*.json
// baseline of the previous PR.
//
// Examples:
//
//	benchdiff -baseline BENCH_pr3.json -fresh bench-ci.json
//	benchdiff -baseline BENCH_pr3.json -fresh bench-ci.json -md >> "$GITHUB_STEP_SUMMARY"
//	benchdiff -baseline BENCH_pr4.json -fresh bench-ci.json -md -fail-over 30
//
// Without -fail-over the exit status is always 0 when both files parse:
// trajectory deltas are informational and the job summary is where a
// human reads them. With -fail-over <pct> the diff becomes a gate: any
// cell present in both reports whose throughput regressed by more than
// pct percent is named, and the exit status is 1 — how CI turns the
// trajectory from report-only into a regression tripwire (the threshold
// absorbs CI-box noise; 30% is the starting point).
//
// -p99-fail-over <pct> gates the latency percentiles the same way, under
// its own (looser) threshold: a percentile (p50/p99/p999) carried by
// both reports that grew by more than pct percent names the cell and the
// regressed percentile. Cells where either side lacks latency data (a v1
// baseline, a -latency=false run) are skipped — the 0-sentinel pairing
// rule — so throughput-only baselines keep gating on throughput alone.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "committed baseline report (BENCH_pr*.json)")
		fresh    = flag.String("fresh", "", "freshly measured report (nbbsbench -json output)")
		markdown = flag.Bool("md", false, "emit a GitHub-flavoured markdown table")
		failOver = flag.Float64("fail-over", 0, "exit non-zero when any cell present in both reports regressed by more than this percent (0 = report-only)")
		p99Over  = flag.Float64("p99-fail-over", 0, "exit non-zero when any latency percentile carried by both reports grew by more than this percent (0 = report-only)")
	)
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -baseline and -fresh are required")
		os.Exit(2)
	}
	if *failOver < 0 || *p99Over < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -fail-over and -p99-fail-over must be non-negative")
		os.Exit(2)
	}
	base, err := harness.LoadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	fr, err := harness.LoadReport(*fresh)
	if err != nil {
		fatal(err)
	}
	baseLabel, freshLabel := base.Label, fr.Label
	if baseLabel == "" {
		baseLabel = *baseline
	}
	if freshLabel == "" {
		freshLabel = *fresh
	}
	deltas := harness.DiffReports(base, fr)
	harness.WriteDiff(os.Stdout, baseLabel, freshLabel, deltas, *markdown)

	if *failOver == 0 && *p99Over == 0 {
		return
	}
	// Offender lines go to stdout so a `| tee -a $GITHUB_STEP_SUMMARY`
	// names them in the step summary, not just the log.
	var offenders []string
	for _, d := range deltas {
		if d.In != "both" {
			continue
		}
		if *failOver > 0 && d.DeltaPct() < -*failOver {
			offenders = append(offenders, fmt.Sprintf("%s/%s bytes=%d threads=%d: %.2f -> %.2f Mops/s (%+.1f%%)",
				d.Workload, d.Allocator, d.Bytes, d.Threads, d.BaseOps/1e6, d.FreshOps/1e6, d.DeltaPct()))
		}
		if *p99Over > 0 {
			// Each regressed percentile is named: a p999-only blowup is a
			// different bug than a p50 shift, and the line should say which.
			for _, pct := range []struct {
				name        string
				base, fresh uint64
			}{
				{"p50", d.BaseP50, d.FreshP50},
				{"p99", d.BaseP99, d.FreshP99},
				{"p999", d.BaseP999, d.FreshP999},
			} {
				if pd, ok := harness.PctDeltaPct(pct.base, pct.fresh); ok && pd > *p99Over {
					offenders = append(offenders, fmt.Sprintf("%s/%s bytes=%d threads=%d: %s %dns -> %dns (%+.1f%%)",
						d.Workload, d.Allocator, d.Bytes, d.Threads, pct.name, pct.base, pct.fresh, pd))
				}
			}
		}
	}
	if len(offenders) == 0 {
		fmt.Printf("\nbenchdiff: gate passed — no regression beyond the thresholds (throughput %.0f%%, percentiles %.0f%%)\n",
			*failOver, *p99Over)
		return
	}
	fmt.Printf("\nbenchdiff: FAIL — %d regression(s) beyond the thresholds (throughput %.0f%%, percentiles %.0f%%):\n\n",
		len(offenders), *failOver, *p99Over)
	for _, line := range offenders {
		if *markdown {
			fmt.Printf("- **%s**\n", line)
		} else {
			fmt.Printf("  %s\n", line)
		}
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
