package mem

import (
	"testing"
)

func TestLifecycleStateMachine(t *testing.T) {
	r, err := New(1<<16, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	if got := r.Windows(); got != 2 {
		t.Fatalf("Windows() = %d, want 2", got)
	}
	if r.Committed(0) || r.Committed(1) {
		t.Fatal("windows must start reserved, not committed")
	}
	s := r.Stats()
	if s.ReservedBytes != 2<<16 || s.CommittedBytes != 0 {
		t.Fatalf("fresh region stats = %+v", s)
	}

	// reserve -> commit
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	if !r.Committed(0) {
		t.Fatal("window 0 should be committed")
	}
	if s := r.Stats(); s.CommittedBytes != 1<<16 || s.Commits != 1 || s.Recommits != 0 {
		t.Fatalf("after commit: %+v", s)
	}
	// committing a committed window is a no-op
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Commits != 1 {
		t.Fatalf("idempotent commit must not count: %+v", s)
	}

	// the committed window is writable through Window/Bytes
	w := r.Window(0)
	if uint64(len(w)) != r.WindowSize() {
		t.Fatalf("Window(0) length %d, want %d", len(w), r.WindowSize())
	}
	w[0], w[len(w)-1] = 0xAB, 0xCD
	if b := r.Bytes(0, 0, 1); b[0] != 0xAB {
		t.Fatal("Bytes view does not alias the window")
	}

	// commit -> decommit
	if err := r.Decommit(0); err != nil {
		t.Fatal(err)
	}
	if r.Committed(0) {
		t.Fatal("window 0 should be decommitted")
	}
	if s := r.Stats(); s.CommittedBytes != 0 || s.Decommits != 1 {
		t.Fatalf("after decommit: %+v", s)
	}
	// decommitting again is a no-op
	if err := r.Decommit(0); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Decommits != 1 {
		t.Fatalf("idempotent decommit must not count: %+v", s)
	}

	// decommit -> recommit: counted separately, window comes back zeroed
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.Commits != 2 || s.Recommits != 1 {
		t.Fatalf("after recommit: %+v", s)
	}
	w = r.Window(0)
	if w[0] != 0 || w[len(w)-1] != 0 {
		t.Fatalf("recommitted window not zero-filled: %x %x", w[0], w[len(w)-1])
	}
}

func TestCommitMapAndEnsure(t *testing.T) {
	r, err := New(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	// Ensure grows without touching existing lifecycle states.
	if err := r.Ensure(3); err != nil {
		t.Fatal(err)
	}
	if err := r.Ensure(2); err != nil { // shrinking Ensure is a no-op
		t.Fatal(err)
	}
	got := r.CommitMap()
	want := []bool{true, false, false}
	if len(got) != len(want) {
		t.Fatalf("CommitMap length %d, want %d", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("CommitMap[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	if s := r.Stats(); s.ReservedBytes != 3<<12 {
		t.Fatalf("reserved bytes %d after Ensure(3), want %d", s.ReservedBytes, 3<<12)
	}
}

func TestUncommittedWindowPanics(t *testing.T) {
	r, err := New(1<<12, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("Window on a reserved window must panic")
		}
	}()
	r.Window(0)
}

func TestBadConfig(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("zero window size must be rejected")
	}
	if _, err := New(1<<12, -1); err == nil {
		t.Fatal("negative window count must be rejected")
	}
}

func TestReleaseIdempotent(t *testing.T) {
	r, err := New(1<<12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Commit(1); err != nil {
		t.Fatal(err)
	}
	r.Release()
	r.Release()
	if r.Windows() != 0 {
		t.Fatal("released region should hold no windows")
	}
}
