package bunch

import (
	"fmt"

	"repro/internal/geometry"
)

// ChunkSize implements alloc.ChunkSizer: the reserved size of a delivered
// chunk is the size of the serving tree node recorded in index[].
func (a *Allocator) ChunkSize(offset uint64) uint64 {
	if offset >= a.geo.Total || offset%a.geo.MinSize != 0 {
		panic(fmt.Sprintf("bunch: ChunkSize(%#x): offset outside the managed region or unaligned", offset))
	}
	n := a.index[a.geo.UnitIndex(offset)].Load()
	if n == 0 {
		panic(fmt.Sprintf("bunch: ChunkSize(%#x): offset not currently allocated", offset))
	}
	return a.geo.SizeOf(uint64(n))
}

// WalkLive implements alloc.LiveWalker (see the identical method on the
// 1-level allocator for the concurrency contract).
func (a *Allocator) WalkLive(fn func(offset, size uint64) bool) {
	for slot := range a.index {
		if n := a.index[slot].Load(); n != 0 {
			if !fn(uint64(slot)*a.geo.MinSize, a.geo.SizeOf(uint64(n))) {
				return
			}
		}
	}
}

// FreeBytes returns an estimate of the currently allocatable memory (see
// the identical method on the 1-level allocator).
func (a *Allocator) FreeBytes() uint64 {
	used := uint64(0)
	for slot := range a.index {
		if n := a.index[slot].Load(); n != 0 {
			used += a.geo.SizeOf(uint64(n))
		}
	}
	return a.geo.Total - used
}

// OccupancyByLevel reports, for each tree level, how many nodes currently
// serve an allocation (quiescent diagnostic).
func (a *Allocator) OccupancyByLevel() []int {
	counts := make([]int, a.geo.Depth+1)
	for slot := range a.index {
		if n := a.index[slot].Load(); n != 0 {
			counts[geometry.LevelOf(uint64(n))]++
		}
	}
	return counts
}
