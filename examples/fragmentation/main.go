// Fragmentation: watch the buddy tree's occupancy profile evolve under a
// mixed-size workload — an introspection walkthrough using the public
// API's diagnostics (ChunkSize, Stats) together with the level-occupancy
// view exposed by the non-blocking allocators.
//
// The program runs three phases on one instance: a mixed-size fill, a
// random partial release, and a coalescing drain, printing after each an
// ASCII profile of how many chunks are live per level and how much of the
// region each level holds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strings"

	nbbs "repro"
)

func main() {
	var (
		total = flag.Uint64("total", 1<<22, "managed bytes")
		fill  = flag.Int("fill", 3000, "chunks to allocate in the fill phase")
	)
	flag.Parse()

	b, err := nbbs.New(nbbs.Config{Total: *total, MinSize: 64, MaxSize: *total / 4})
	if err != nil {
		log.Fatal(err)
	}
	depth, maxLevel, _ := nbbs.Config{Total: *total, MinSize: 64, MaxSize: *total / 4}.Geometry()
	fmt.Printf("instance: %s, %d bytes, levels %d..%d usable\n\n", b.Variant(), *total, maxLevel, depth)

	rng := rand.New(rand.NewSource(7))
	sizes := []uint64{64, 64, 64, 256, 1024, 4096, 16384}
	var live []uint64

	// Phase 1: mixed-size fill.
	for i := 0; i < *fill; i++ {
		if off, ok := b.Alloc(sizes[rng.Intn(len(sizes))]); ok {
			live = append(live, off)
		}
	}
	profile(b, "after mixed-size fill", live)

	// Phase 2: release a random 60%.
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	cut := len(live) * 2 / 5
	for _, off := range live[cut:] {
		b.Free(off)
	}
	live = live[:cut]
	profile(b, "after releasing 60% at random", live)

	// Phase 3: drain and show the coalesced state.
	for _, off := range live {
		b.Free(off)
	}
	live = nil
	profile(b, "after full drain (buddies coalesced)", live)

	// The proof of coalescing: a maximum-size chunk is allocatable again.
	if off, ok := b.Alloc(*total / 4); ok {
		fmt.Printf("max-size chunk allocatable again at offset %d\n", off)
		b.Free(off)
	} else if b.Scrub() {
		fmt.Println("max-size alloc needed a metadata scrub first (see DESIGN.md residue note)")
	}
}

// profile prints live-chunk counts and bytes aggregated by chunk size.
func profile(b *nbbs.Buddy, title string, live []uint64) {
	bySize := map[uint64]int{}
	var usedBytes uint64
	for _, off := range live {
		size := b.ChunkSize(off)
		bySize[size]++
		usedBytes += size
	}
	fmt.Printf("-- %s: %d live chunks, %d bytes (%.1f%% of region)\n",
		title, len(live), usedBytes, 100*float64(usedBytes)/float64(b.Total()))
	for size := b.MinSize(); size <= b.MaxSize(); size <<= 1 {
		n := bySize[size]
		if n == 0 {
			continue
		}
		bar := strings.Repeat("#", min(60, n))
		fmt.Printf("%8d B x%-5d %s\n", size, n, bar)
	}
	fmt.Println()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
