package stack_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
)

// TestDifferentialRegistryComposites fuzzes every registry composite —
// the PR-1 stacks and the depot-backed ones — against the map-based
// oracle: random single/batched alloc/free sequences with interleaved
// quiescent Scrubs, checking no double-hand-out, exact ChunkSize
// reporting, and per-layer stats reconciliation after the drain.
func TestDifferentialRegistryComposites(t *testing.T) {
	composites := []string{
		"cached+4lvl-nb",
		"multi4+4lvl-nb",
		"cached+multi4+4lvl-nb",
		"depot+4lvl-nb",
		"depot+multi4+4lvl-nb",
	}
	for _, name := range composites {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
				t.Helper()
				a, err := alloc.Build(name, alloc.Config{Total: total, MinSize: minSize, MaxSize: maxSize})
				if err != nil {
					t.Fatalf("Build(%q): %v", name, err)
				}
				return a
			})
		})
	}
}

// TestDifferentialLeaves anchors the oracle against the bare leaf
// variants, so a divergence in a composite run isolates to the layers.
func TestDifferentialLeaves(t *testing.T) {
	for _, name := range []string{"4lvl-nb", "1lvl-nb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
				t.Helper()
				a, err := alloc.Build(name, alloc.Config{Total: total, MinSize: minSize, MaxSize: maxSize})
				if err != nil {
					t.Fatalf("Build(%q): %v", name, err)
				}
				return a
			})
		})
	}
}
