package stack_test

import (
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/stack"
)

// TestGeometryEdgeCases drives the degenerate tree shapes through both
// leaf variants and the stacked compositions: a single-unit region
// (Depth 0), a single-level tree (Depth 1), the smallest legal Total,
// MinSize==MaxSize classes, and bulk requests far larger than a
// front-end magazine. Each case fills the region through the batched
// contract, checks capacity and uniqueness, drains through the batched
// contract, and verifies the region coalesces back whole.
func TestGeometryEdgeCases(t *testing.T) {
	type shape struct {
		name                    string
		total, minSize, maxSize uint64
	}
	shapes := []shape{
		{"single-unit", 64, 64, 64},                   // Depth 0: one chunk is the whole region
		{"single-level", 128, 64, 128},                // Depth 1: one split
		{"smallest-total", 2, 1, 2},                   // the smallest non-degenerate region
		{"min-equals-max", 4096, 64, 64},              // one size class, MaxLevel == Depth
		{"min-equals-max-deep", 1 << 16, 8, 8},        // one class on a deep tree
		{"batch-over-magazine", 1 << 14, 64, 1 << 10}, // bulk >> magazine capacity (4)
	}

	type build struct {
		name string
		make func(t *testing.T, s shape) alloc.Allocator
	}
	leaf := func(variant string) func(t *testing.T, s shape) alloc.Allocator {
		return func(t *testing.T, s shape) alloc.Allocator {
			t.Helper()
			a, err := alloc.Build(variant, alloc.Config{Total: s.total, MinSize: s.minSize, MaxSize: s.maxSize})
			if err != nil {
				t.Fatalf("Build(%s): %v", variant, err)
			}
			return a
		}
	}
	stacked := func(spec stack.Spec) func(t *testing.T, s shape) alloc.Allocator {
		return func(t *testing.T, s shape) alloc.Allocator {
			t.Helper()
			sp := spec
			per := s.total
			if sp.Instances > 1 {
				per = s.total / uint64(sp.Instances)
				if per < s.maxSize || per < s.minSize {
					t.Skipf("per-instance share %d cannot serve max size %d", per, s.maxSize)
				}
			}
			sp.Per = alloc.Config{Total: per, MinSize: s.minSize, MaxSize: s.maxSize}
			st, err := stack.Build(sp)
			if err != nil {
				t.Fatalf("stack.Build: %v", err)
			}
			return st.Top
		}
	}
	builds := []build{
		{"1lvl-nb", leaf("1lvl-nb")},
		{"4lvl-nb", leaf("4lvl-nb")},
		{"cached", stacked(stack.Spec{Variant: "4lvl-nb", Cached: true, Magazine: 4})},
		{"depot", stacked(stack.Spec{Variant: "4lvl-nb", Depot: true, Magazine: 4, DepotCapacity: 2})},
		{"depot+multi2", stacked(stack.Spec{Variant: "4lvl-nb", Depot: true, Magazine: 4, Instances: 2})},
	}

	for _, s := range shapes {
		for _, b := range builds {
			t.Run(fmt.Sprintf("%s/%s", s.name, b.name), func(t *testing.T) {
				a := b.make(t, s)
				span := alloc.SpanOf(a)
				capacity := int(span / s.minSize)

				// Fill through the bulk contract, asking for more than fits
				// (and far more than any magazine holds): the batch must
				// deliver exactly the capacity, every chunk distinct.
				got := alloc.AllocBatchOf(a, s.minSize, capacity+8)
				if len(got) != capacity {
					t.Fatalf("AllocBatch(min, capacity+8) delivered %d chunks, want %d", len(got), capacity)
				}
				seen := map[uint64]bool{}
				for _, off := range got {
					if off%s.minSize != 0 || off >= span {
						t.Fatalf("chunk %#x misaligned or outside the %d-byte span", off, span)
					}
					if seen[off] {
						t.Fatalf("chunk %#x delivered twice", off)
					}
					seen[off] = true
				}
				// A full region must refuse more, single or batched.
				if _, ok := a.Alloc(s.minSize); ok {
					t.Fatal("alloc succeeded on a full region")
				}
				if extra := alloc.AllocBatchOf(a, s.minSize, 4); len(extra) != 0 {
					t.Fatalf("batch alloc on a full region delivered %d chunks", len(extra))
				}

				// Drain in bulk and verify the region coalesces whole again.
				alloc.FreeBatchOf(a, got)
				if s, ok := a.(alloc.Scrubber); ok {
					s.Scrub()
				}
				max := s.maxSize
				if _, ok := a.Alloc(max); !ok {
					t.Fatalf("max-size alloc (%d) failed after bulk drain", max)
				}
			})
		}
	}

	// Bulk through a caching handle whose magazine is far smaller than
	// the batch: the shim must spill correctly through magazine and depot.
	t.Run("batch-over-magazine/handle", func(t *testing.T) {
		st, err := stack.Build(stack.Spec{
			Variant: "4lvl-nb",
			Per:     alloc.Config{Total: 1 << 14, MinSize: 64, MaxSize: 1 << 10},
			Depot:   true, Magazine: 4, DepotCapacity: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := st.Top.NewHandle()
		got := alloc.HandleAllocBatch(h, 64, 100) // 25x the magazine capacity
		if len(got) != 100 {
			t.Fatalf("handle batch delivered %d chunks, want 100", len(got))
		}
		seen := map[uint64]bool{}
		for _, off := range got {
			if seen[off] {
				t.Fatalf("chunk %#x delivered twice", off)
			}
			seen[off] = true
		}
		alloc.HandleFreeBatch(h, got)
		st.Scrub()
		if _, ok := st.Top.Alloc(1 << 10); !ok {
			t.Fatal("max-size alloc failed after handle bulk drain")
		}
	})
}
