package core

import (
	"repro/internal/geometry"
	"repro/internal/status"
)

// This file implements the alloc.BatchAllocator contract natively: a bulk
// allocation collects the whole batch in the same two-pass SWAR level
// scan that a single Alloc uses for one node. A chunk-at-a-time loop
// restarts the scan at a fresh scatter slot per call and re-walks the
// occupied runs it already skipped; the batched scan keeps its position,
// so the probing cost of the batch is one traversal of the level
// regardless of n.

// AllocBatch reserves up to n chunks of at least size bytes in one level
// scan and appends their offsets to the returned slice. A short (possibly
// empty) result means the level could not serve the remainder; a batch
// that delivers nothing counts one AllocFail, exactly like a failed
// Alloc. Like every handle operation it is single-goroutine.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return nil
	}
	out := make([]uint64, 0, n)
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1
	h.seq++
	start := base + h.scatterSlot(level)
	// The bulk scan advances in word units: snapping the start down to a
	// packed-word boundary makes every loaded word get consumed from its
	// first in-level lane, so consecutive batches walk whole words instead
	// of re-loading a word for a partial tail. Levels narrower than a word
	// keep their scatter slot (their whole width shares word 0 anyway).
	if aligned := start &^ 7; aligned >= base {
		start = aligned
	}

	for pass := 0; pass < 2 && len(out) < n; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		i := lo
		for i < hi && len(out) < n {
			w := h.a.tree[geometry.WordIndex(i)].Load()
			lane := status.FirstFreeLane(w, geometry.LaneOf(i))
			cand := i&^7 + uint64(lane)
			if lane == status.LanesPerWord || cand >= hi {
				i = cand
				continue
			}
			failedAt := h.tryAlloc(cand, w)
			if failedAt == 0 {
				offset := geo.OffsetOf(cand)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(cand))
				h.stats.Allocs++
				out = append(out, offset)
				i = cand + 1
				continue
			}
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= cand {
				next = cand + 1
			}
			i = next
		}
		if i > hi {
			i = hi // a subtree skip may overshoot the pass bound
		}
		// Advance the scatter sequence past everything this pass walked,
		// so the next batch resumes where this scan stopped (and, after
		// the start realignment above, on the word this scan stopped in).
		// The single-alloc +1 rotation assumes one consumed slot per call;
		// a batch that delivered a whole run would otherwise restart the
		// next call inside its own still-live delivery and re-probe it
		// end to end (quadratic in the live-run length).
		h.seq += i - lo
	}
	if len(out) == 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch releases a batch of previously allocated chunks. The release
// climbs are the same as chunk-at-a-time frees (coalescing is already
// pairwise); the batch form exists so layer crossings hand the whole
// magazine down in one call.
func (h *Handle) FreeBatch(offsets []uint64) {
	for _, off := range offsets {
		h.Free(off)
	}
}

// AllocBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	h := a.pool.Get().(*Handle)
	out := h.AllocBatch(size, n)
	a.pool.Put(h)
	return out
}

// FreeBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) FreeBatch(offsets []uint64) {
	h := a.pool.Get().(*Handle)
	h.FreeBatch(offsets)
	a.pool.Put(h)
}
