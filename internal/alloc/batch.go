package alloc

// BatchAllocator is the bulk-transfer contract of the layer stack: layers
// that can move many same-size chunks across a layer boundary in one call
// implement it, and the caching front-end's depot uses it so magazine
// refills and drains hit the back-end as one operation instead of a
// chunk-at-a-time loop.
//
// AllocBatch reserves up to n chunks of at least size bytes and returns
// their offsets; a short (possibly empty) result means the instance could
// not serve the remainder, exactly like Alloc returning false. FreeBatch
// releases previously allocated chunks by offset; like Free, releasing an
// offset that is not currently allocated panics.
//
// The leaf non-blocking allocators implement it natively (one level scan
// collects the whole batch); the multi-instance router routes sub-batches
// per instance; the remaining layers forward it. Layers without a native
// implementation are served chunk-at-a-time by the AllocBatchOf /
// FreeBatchOf shims, so the contract is optional everywhere.
type BatchAllocator interface {
	AllocBatch(size uint64, n int) []uint64
	FreeBatch(offsets []uint64)
}

// BatchHandle is the per-worker face of the bulk contract, implemented by
// the handles of layers with native batching (the non-blocking leaves
// collect a batch in one level scan; the router handle routes sub-batches
// per instance). Handles without it are served by the HandleAllocBatch /
// HandleFreeBatch shims. Like Handle, not safe for concurrent use.
type BatchHandle interface {
	AllocBatch(size uint64, n int) []uint64
	FreeBatch(offsets []uint64)
}

// singleOps is the subset of Alloc/Free shared by Allocator and Handle
// that the chunk-at-a-time fallbacks need, so the four shims below share
// one loop each.
type singleOps interface {
	Alloc(size uint64) (uint64, bool)
	Free(offset uint64)
}

func allocLoop(s singleOps, size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		off, ok := s.Alloc(size)
		if !ok {
			break
		}
		out = append(out, off)
	}
	return out
}

func freeLoop(s singleOps, offsets []uint64) {
	for _, off := range offsets {
		s.Free(off)
	}
}

// HandleAllocBatch reserves up to n chunks of at least size bytes through
// a per-worker handle, natively when the handle implements BatchHandle.
func HandleAllocBatch(h Handle, size uint64, n int) []uint64 {
	if b, ok := h.(BatchHandle); ok {
		return b.AllocBatch(size, n)
	}
	return allocLoop(h, size, n)
}

// HandleFreeBatch releases a batch of chunks through a per-worker handle,
// natively when the handle implements BatchHandle.
func HandleFreeBatch(h Handle, offsets []uint64) {
	if b, ok := h.(BatchHandle); ok && len(offsets) > 0 {
		b.FreeBatch(offsets)
		return
	}
	freeLoop(h, offsets)
}

// AllocBatchOf reserves up to n chunks of at least size bytes from a:
// natively when the allocator implements BatchAllocator, through a
// chunk-at-a-time shim otherwise. Mirrors SpanOf's resolve-or-fallback
// pattern.
func AllocBatchOf(a Allocator, size uint64, n int) []uint64 {
	if b, ok := a.(BatchAllocator); ok {
		return b.AllocBatch(size, n)
	}
	return allocLoop(a, size, n)
}

// FreeBatchOf releases a batch of chunks: natively when the allocator
// implements BatchAllocator, one Free at a time otherwise.
func FreeBatchOf(a Allocator, offsets []uint64) {
	if b, ok := a.(BatchAllocator); ok && len(offsets) > 0 {
		b.FreeBatch(offsets)
		return
	}
	freeLoop(a, offsets)
}
