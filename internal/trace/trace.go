// Package trace records allocator operation streams and replays them
// deterministically — the regression-debugging tool for an allocator whose
// interesting bugs live in specific alloc/free interleavings. A recorded
// trace captures per-worker operation sequences (offsets are recorded for
// frees by referencing the allocation event that produced them, so a
// replay on a different allocator or layout stays meaningful even when
// placement differs).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/alloc"
)

// Op is one recorded operation.
type Op struct {
	// Worker identifies the recording handle.
	Worker int32
	// Size is the request size for allocations; 0 marks a free.
	Size uint64
	// Ref is, for frees, the index (within this worker's trace) of the
	// allocation event whose chunk is released.
	Ref int64
	// OK records whether the original allocation succeeded.
	OK bool
}

// Trace is a recorded operation stream.
type Trace struct {
	Ops []Op
}

// Recorder wraps an alloc.Handle, recording every operation.
type Recorder struct {
	inner  alloc.Handle
	worker int32
	trace  *Trace
	// myEvents maps live offsets to the recording index of the allocation
	// that produced them, so frees can reference allocations.
	events map[uint64]int64
}

// NewRecorder wraps a handle; all Recorders appending to the same Trace
// must do so from a single goroutine (record single-threaded schedules) or
// the caller must provide external ordering.
func NewRecorder(t *Trace, worker int32, inner alloc.Handle) *Recorder {
	return &Recorder{inner: inner, worker: worker, trace: t, events: map[uint64]int64{}}
}

// Alloc records and forwards an allocation.
func (r *Recorder) Alloc(size uint64) (uint64, bool) {
	off, ok := r.inner.Alloc(size)
	idx := int64(len(r.trace.Ops))
	r.trace.Ops = append(r.trace.Ops, Op{Worker: r.worker, Size: size, Ref: -1, OK: ok})
	if ok {
		r.events[off] = idx
	}
	return off, ok
}

// Free records and forwards a release.
func (r *Recorder) Free(offset uint64) {
	ref, ok := r.events[offset]
	if !ok {
		panic(fmt.Sprintf("trace: Free(%#x) of an offset this recorder did not allocate", offset))
	}
	delete(r.events, offset)
	r.inner.Free(offset)
	r.trace.Ops = append(r.trace.Ops, Op{Worker: r.worker, Ref: ref})
}

// Stats forwards to the wrapped handle.
func (r *Recorder) Stats() *alloc.Stats { return r.inner.Stats() }

// Replay re-executes a trace against a fresh allocator, returning how many
// allocations succeeded. Frees of allocations that failed on replay are
// skipped. The trace is replayed in recorded order on a single goroutine,
// which reproduces the logical schedule deterministically.
func Replay(t *Trace, a alloc.Allocator) (succeeded int, err error) {
	h := a.NewHandle()
	offsets := make([]uint64, len(t.Ops))
	oks := make([]bool, len(t.Ops))
	for i, op := range t.Ops {
		if op.Ref >= 0 { // free
			if op.Ref >= int64(i) {
				return succeeded, fmt.Errorf("trace: op %d frees future op %d", i, op.Ref)
			}
			if oks[op.Ref] {
				h.Free(offsets[op.Ref])
				oks[op.Ref] = false
			}
			continue
		}
		off, ok := h.Alloc(op.Size)
		offsets[i], oks[i] = off, ok
		if ok {
			succeeded++
		}
	}
	return succeeded, nil
}

// traceMagic guards the serialized format.
const traceMagic = uint32(0x4e424253) // "NBBS"

// Write serializes the trace in a compact binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Ops))); err != nil {
		return err
	}
	for _, op := range t.Ops {
		okByte := uint8(0)
		if op.OK {
			okByte = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Worker); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Size); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Ref); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, okByte); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxOps = 1 << 30
	if n > maxOps {
		return nil, fmt.Errorf("trace: unreasonable op count %d", n)
	}
	t := &Trace{Ops: make([]Op, n)}
	for i := range t.Ops {
		var okByte uint8
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Worker); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Size); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Ref); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &okByte); err != nil {
			return nil, err
		}
		t.Ops[i].OK = okByte != 0
	}
	return t, nil
}
