// Command nbbsfig regenerates the paper's figures: for a figure id in
// 8..12 it runs the corresponding experiment grid and prints one table per
// panel (one per request size), or gnuplot-ready series with -gnuplot.
//
// Examples:
//
//	nbbsfig -fig 8 -scale 0.01              # quick-shape Figure 8
//	nbbsfig -fig all -scale 0.05 -reps 2    # every figure, 5% volume
//	nbbsfig -fig 10 -gnuplot > larson.dat   # plottable Larson series
//
// The default scale runs in CI time; -scale 1 reproduces the paper's
// operation volumes (20M ops per cell, 10s Larson windows).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 8 | 9 | 10 | 11 | 12 | all")
		threads = flag.String("threads", "", "override thread grid (default: the paper's 4,8,16,24,32)")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's operation volumes")
		reps    = flag.Int("reps", 1, "repetitions per cell")
		seed    = flag.Int64("seed", 1, "workload RNG seed")
		gnuplot = flag.Bool("gnuplot", false, "emit gnuplot series instead of tables")
		check   = flag.Bool("check", false, "grade the paper's shape claims on the measured data (exit 1 on failures)")
		quiet   = flag.Bool("q", false, "suppress per-cell progress lines")
	)
	flag.Parse()

	var threadList []int
	if *threads != "" {
		var err error
		threadList, err = harness.ParseThreads(*threads)
		if err != nil {
			fatal(err)
		}
	}
	var figures []harness.Figure
	if *fig == "all" {
		figures = harness.Figures(threadList, *scale, *reps, *seed)
	} else {
		var id int
		if _, err := fmt.Sscanf(*fig, "%d", &id); err != nil {
			fatal(fmt.Errorf("bad figure id %q", *fig))
		}
		f, err := harness.FigureByID(id, threadList, *scale, *reps, *seed)
		if err != nil {
			fatal(err)
		}
		figures = []harness.Figure{f}
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	failedClaims := 0
	for _, f := range figures {
		if !*gnuplot {
			cells, err := f.Run(os.Stdout, progress)
			if err != nil {
				fatal(err)
			}
			if *check {
				failedClaims += harness.ReportClaims(os.Stdout, harness.EvaluateShape(f, cells))
				fmt.Println()
			}
			continue
		}
		for _, sw := range f.Sweeps {
			cells, err := sw.Run(progress)
			if err != nil {
				fatal(err)
			}
			for _, size := range sw.Sizes {
				harness.GnuplotSeries(os.Stdout, cells, size, sw.Allocators, f.Metric)
			}
		}
	}
	if failedClaims > 0 {
		fmt.Fprintf(os.Stderr, "nbbsfig: %d shape claims failed\n", failedClaims)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbbsfig:", err)
	os.Exit(1)
}
