// Package shard is the per-CPU sharded routing layer of the allocator
// stack: the locality optimization the paper's Figure 12 pinning
// experiment motivates, applied the way the Linux page allocator applies
// it with its per-CPU pagesets.
//
// The layer keys every handle operation to one of N shards (N =
// GOMAXPROCS at construction) by a cheap processor hint (internal/proc),
// and gives each shard two pieces of CPU-local state:
//
//   - an affine routing preference: shard s allocates through an inner
//     router handle preferring instance slot s, so a shard's tree walks
//     stay on "its" instance (and, over a NUMA-placed mapped region, on
//     its node) unless that instance cannot serve;
//   - a per-CPU chunk cache, bins of recently freed chunks per size
//     class. A local free parks the chunk in the current shard's bin; a
//     later allocation of the class pops it back out without touching
//     the tree at all — the pcp-list discipline that removes the
//     reserve/climb RMW traffic from the steady-state hot path.
//
// Frees of chunks owned by another shard (offset routes to an instance
// of a different shard) do not touch that shard's cache directly:
// they are pushed onto the owner's inbound stash, a small
// mutex-protected mailbox, and the owner merges the stash into its bins
// the next time it allocates — so chunks flow home to their instance,
// remote freers never contend on an owner's hot bins, and the
// cross-shard traffic on the common path is one short mailbox push.
// Stash and cache overflows, allocation failures, elastic drains and
// Scrub all flush parked chunks back to the trees in batches through the
// PR 2 bulk contract, which keeps the layer transparent: every chunk the
// cache holds is still "allocated" to the trees below, so the elastic
// live accounting and the retire fences of DESIGN.md are untouched — a
// parked chunk simply keeps its slot's live count raised until a drain
// runs, and the drain hooks provide the liveness (see DESIGN.md,
// "Per-CPU sharding and NUMA placement").
//
// Deferred-misuse caveat: handle frees validate the offset against the
// routing metadata at the call (freeing a foreign or already-freed
// offset panics there), but a double free whose first free is still
// parked in a cache or stash is only caught when the drain reaches the
// trees. The allocator-level convenience Free therefore bypasses the
// caches entirely and releases straight to the trees, preserving the
// strict contract semantics on the path the conformance suite probes.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/multi"
)

const (
	// binCap bounds the chunks one shard caches per size class; a free
	// overflowing it spills the older half of the bin to the trees as one
	// batch (the frontend magazine spill discipline, per CPU).
	binCap = 1024
	// stashCap bounds a shard's inbound remote-free stash across all
	// classes. A pusher that finds the stash full drains the whole stash
	// to the trees itself — the liveness valve for owner shards that lost
	// their P (GOMAXPROCS shrank) and will never merge.
	stashCap = 1024
	// rehomeEvery is the handle-op period for re-asserting inner-handle
	// affinity: round-robin fallback drags an inner handle's preference
	// to whatever instance served last, and the periodic Rehome undoes
	// the drag once the excursion is over.
	rehomeEvery = 512
)

// shardState is one shard's CPU-local state. The cache bins are guarded
// by mu (taken by the owning CPU, effectively uncontended); the inbound
// stash by inMu (taken by remote freers and by the owner's merge). Lock
// order is mu before inMu, and no tree operation runs under either.
type shardState struct {
	mu     sync.Mutex
	bins   [][]uint64 // per size class, cached (parked-free) offsets
	cached int        // total chunks across bins

	inMu    sync.Mutex
	inbound [][]uint64 // per size class, remote-freed offsets headed home
	inCount atomic.Int64

	hits        atomic.Uint64 // allocations served from the cache
	misses      atomic.Uint64 // allocations that went to the trees
	localFrees  atomic.Uint64 // frees parked in the own shard's bins
	remoteFrees atomic.Uint64 // frees pushed onto this shard's stash by others
	stashDrains atomic.Uint64 // stash drain events (merges and flushes)
	flushed     atomic.Uint64 // chunks returned to the trees from bins/stash

	_ [64]byte
}

// Allocator is the per-CPU sharded routing layer over a multi-instance
// stack (the router itself, or the elastic manager above it). It is a
// full citizen of the composable layer contract.
type Allocator struct {
	inner   alloc.Allocator
	router  *multi.Multi
	sizer   alloc.ChunkSizer
	geo     geometry.Geometry
	classes int
	nshards int
	shards  []*shardState

	mu         sync.Mutex
	handles    []*Handle
	convFree   []*Handle
	convStats  alloc.Stats
	nextStatic int
	// Retained counters of closed handles, so quiescent aggregation keeps
	// adding up across worker churn.
	closed          alloc.Stats
	closedWraps     uint64
	closedFallbacks uint64
}

// New wraps inner (which must contain a multi router somewhere below,
// found via Unwrap) with shards per-CPU shards; shards <= 0 takes
// GOMAXPROCS at call time.
func New(inner alloc.Allocator, shards int) (*Allocator, error) {
	router := findRouter(inner)
	if router == nil {
		return nil, fmt.Errorf("shard: no multi router below %s", inner.Name())
	}
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("shard: inner %s cannot report chunk sizes", inner.Name())
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	geo := inner.Geometry()
	a := &Allocator{
		inner:   inner,
		router:  router,
		sizer:   sizer,
		geo:     geo,
		classes: geo.Depth - geo.MaxLevel + 1,
		nshards: shards,
	}
	a.shards = make([]*shardState, shards)
	for i := range a.shards {
		a.shards[i] = &shardState{
			bins:    make([][]uint64, a.classes),
			inbound: make([][]uint64, a.classes),
		}
	}
	return a, nil
}

// findRouter walks Unwrap down to the multi router.
func findRouter(a alloc.Allocator) *multi.Multi {
	for {
		if m, ok := a.(*multi.Multi); ok {
			return m
		}
		u, ok := a.(interface{ Unwrap() alloc.Allocator })
		if !ok {
			return nil
		}
		a = u.Unwrap()
	}
}

// Shards returns the shard count.
func (a *Allocator) Shards() int { return a.nshards }

// classOf maps a request (or reserved) size to its cache bin.
func (a *Allocator) classOf(size uint64) int {
	return a.geo.LevelForSize(size) - a.geo.MaxLevel
}

// ownerOf maps a global offset to the shard whose instance owns it.
func (a *Allocator) ownerOf(offset uint64) int {
	return a.router.InstanceOf(offset) % a.nshards
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string {
	return fmt.Sprintf("shard[%d]+%s", a.nshards, a.inner.Name())
}

// Geometry implements alloc.Allocator (per-instance geometry, like the
// router).
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// OffsetSpan implements alloc.Spanner by forwarding the wrapped stack's
// offset space.
func (a *Allocator) OffsetSpan() uint64 { return alloc.SpanOf(a.inner) }

// Unwrap exposes the wrapped stack to generic walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.inner }

// ChunkSize implements alloc.ChunkSizer by forwarding: the shard layer
// never changes chunk placement, only who is holding a parked-free chunk.
func (a *Allocator) ChunkSize(offset uint64) uint64 { return a.sizer.ChunkSize(offset) }

// Alloc implements alloc.Allocator through a recycled per-shard handle
// (the multi conv-pool discipline: pooling keeps the permanent handle
// registrations bounded by the convenience path's peak concurrency).
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	h := a.getConv()
	off, ok := h.Alloc(size)
	a.putConv(h)
	return off, ok
}

// Free implements alloc.Allocator by releasing straight to the trees,
// bypassing the per-CPU caches: the convenience contract specifies that
// freeing a bad offset panics at the call, which a deferred stash free
// could not honour. Handle frees are the hot path and do cache.
func (a *Allocator) Free(offset uint64) {
	a.inner.Free(offset)
	a.mu.Lock()
	a.convStats.Frees++
	a.mu.Unlock()
}

// AllocBatch implements alloc.BatchAllocator as a pass-through: bulk
// callers want the back-end's batched level scan, not per-chunk cache
// pops (the frontend's batch rationale).
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	out := alloc.AllocBatchOf(a.inner, size, n)
	a.mu.Lock()
	a.convStats.Allocs += uint64(len(out))
	if len(out) == 0 && n > 0 {
		a.convStats.AllocFails++
	}
	a.mu.Unlock()
	return out
}

// FreeBatch implements alloc.BatchAllocator (pass-through, strict
// semantics like Free).
func (a *Allocator) FreeBatch(offsets []uint64) {
	alloc.FreeBatchOf(a.inner, offsets)
	a.mu.Lock()
	a.convStats.Frees += uint64(len(offsets))
	a.mu.Unlock()
}

// getConv pops an idle convenience handle.
func (a *Allocator) getConv() *Handle {
	a.mu.Lock()
	if n := len(a.convFree); n > 0 {
		h := a.convFree[n-1]
		a.convFree = a.convFree[:n-1]
		a.mu.Unlock()
		return h
	}
	a.mu.Unlock()
	return a.newHandle()
}

func (a *Allocator) putConv(h *Handle) {
	a.mu.Lock()
	a.convFree = append(a.convFree, h)
	a.mu.Unlock()
}

// NewHandle implements alloc.Allocator. Handles register permanently
// (the stack's monotonic-registry caveat); each lazily creates one inner
// router handle per shard it operates from.
func (a *Allocator) NewHandle() alloc.Handle { return a.newHandle() }

func (a *Allocator) newHandle() *Handle {
	h := &Handle{a: a}
	a.mu.Lock()
	h.static = a.nextStatic % a.nshards
	a.nextStatic++
	a.handles = append(a.handles, h)
	a.mu.Unlock()
	return h
}

// Stats implements alloc.Allocator: this layer's view of the traffic
// (cache hits included), aggregated across handles and the convenience
// path. Quiescent points only.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.convStats
	total.Add(a.closed)
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// Scrub implements alloc.Scrubber: every shard's cache and stash is
// flushed down first (parked chunks are semantically free, and leaf
// scrubbing rebuilds metadata from the live index), then Scrub forwards
// inward. Quiescent points only, like every Scrub.
func (a *Allocator) Scrub() {
	a.drain(0, ^uint64(0))
	if s, ok := a.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// DrainRange flushes every parked chunk of the global offset window
// [lo, hi) back to the trees — the elastic manager's drain hook: without
// it, chunks idling in a shard cache would pin a draining instance's
// live count above zero forever. Unlike Scrub this is safe concurrently
// with traffic: the shard structures are locked and the frees go down
// the thread-safe batched convenience path.
func (a *Allocator) DrainRange(lo, hi uint64) { a.drain(lo, hi) }

func (a *Allocator) drain(lo, hi uint64) {
	for _, st := range a.shards {
		if batch := st.takeRange(lo, hi); len(batch) > 0 {
			alloc.FreeBatchOf(a.inner, batch)
		}
	}
}

// reclaim flushes everything through the calling handle's sub-handle
// (cheaper batch path) — the capacity valve when a tree allocation
// fails while other shards hoard parked chunks.
func (a *Allocator) reclaim(sub *multi.Handle) {
	for _, st := range a.shards {
		if batch := st.takeRange(0, ^uint64(0)); len(batch) > 0 {
			sub.FreeBatch(batch)
		}
	}
}

// Totals is the aggregated shard-layer accounting; quiescent points only.
type Totals struct {
	Shards int
	// Hits are allocations served from a shard cache without touching
	// the trees; Misses went through to the trees.
	Hits, Misses uint64
	// LocalFrees parked a chunk in the freeing CPU's own bins;
	// RemoteFrees pushed one onto the owning shard's inbound stash.
	LocalFrees, RemoteFrees uint64
	// StashDrains counts stash drain events (owner merges and overflow
	// flushes); Flushed counts chunks returned to the trees from bins and
	// stashes (spills, reclaims, DrainRange, Scrub).
	StashDrains, Flushed uint64
	// CachedNow/StashedNow are the chunks currently parked (0 after
	// Scrub).
	CachedNow, StashedNow int
	// PinWraps counts operations whose processor hint exceeded the shard
	// count (GOMAXPROCS raised after construction); PinFallbacks counts
	// operations routed by the static fallback (non-gc toolchains).
	PinWraps, PinFallbacks uint64
}

// Totals aggregates the shard counters; quiescent points only.
func (a *Allocator) Totals() Totals {
	t := Totals{Shards: a.nshards}
	for _, st := range a.shards {
		t.Hits += st.hits.Load()
		t.Misses += st.misses.Load()
		t.LocalFrees += st.localFrees.Load()
		t.RemoteFrees += st.remoteFrees.Load()
		t.StashDrains += st.stashDrains.Load()
		t.Flushed += st.flushed.Load()
		st.mu.Lock()
		t.CachedNow += st.cached
		st.mu.Unlock()
		t.StashedNow += int(st.inCount.Load())
	}
	a.mu.Lock()
	t.PinWraps += a.closedWraps
	t.PinFallbacks += a.closedFallbacks
	for _, h := range a.handles {
		t.PinWraps += h.wraps
		t.PinFallbacks += h.pinFallbacks
	}
	a.mu.Unlock()
	return t
}

// ShardInfo is one shard's counter snapshot (for nbbsinfo -shard).
type ShardInfo struct {
	Shard                   int
	Hits, Misses            uint64
	LocalFrees, RemoteFrees uint64
	StashDrains, Flushed    uint64
	CachedNow, StashedNow   int
}

// ShardInfos returns a per-shard counter snapshot; quiescent points only.
func (a *Allocator) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, a.nshards)
	for i, st := range a.shards {
		st.mu.Lock()
		cached := st.cached
		st.mu.Unlock()
		out[i] = ShardInfo{
			Shard:       i,
			Hits:        st.hits.Load(),
			Misses:      st.misses.Load(),
			LocalFrees:  st.localFrees.Load(),
			RemoteFrees: st.remoteFrees.Load(),
			StashDrains: st.stashDrains.Load(),
			Flushed:     st.flushed.Load(),
			CachedNow:   cached,
			StashedNow:  int(st.inCount.Load()),
		}
	}
	return out
}

// LayerStats implements alloc.LayerStatser: the shard layer's entry with
// the shard_* counters, then the wrapped stack's entries.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	t := a.Totals()
	entry := alloc.LayerStats{
		Layer: fmt.Sprintf("shard[%d]", a.nshards),
		Stats: a.Stats(),
		Extra: map[string]uint64{
			"shards":             uint64(t.Shards),
			"shard_hits":         t.Hits,
			"shard_misses":       t.Misses,
			"shard_local_frees":  t.LocalFrees,
			"shard_remote_frees": t.RemoteFrees,
			"shard_stash_drains": t.StashDrains,
			"shard_flushed":      t.Flushed,
			"shard_cached":       uint64(t.CachedNow),
			"shard_stashed":      uint64(t.StashedNow),
			"shard_pin_wraps":    t.PinWraps,
			"shard_pin_fallback": t.PinFallbacks,
		},
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(a.inner)...)
}

// Find walks a stack down to its shard layer (nil when absent).
func Find(a alloc.Allocator) *Allocator {
	for a != nil {
		if sh, ok := a.(*Allocator); ok {
			return sh
		}
		u, ok := a.(interface{ Unwrap() alloc.Allocator })
		if !ok {
			return nil
		}
		a = u.Unwrap()
	}
	return nil
}
