// Package nbbs is a non-blocking buddy system for scalable memory
// management on multi-core machines, a Go implementation of Marotta,
// Ianni, Scarselli, Pellegrini and Quaglia, "A Non-blocking Buddy System
// for Scalable Memory Allocation on Multi-core Machines" (IEEE CLUSTER
// 2018).
//
// A Buddy manages a contiguous region of Total bytes, splitting it
// recursively into power-of-two chunks between MinSize and MaxSize, and
// serves concurrent Alloc/Free requests without any lock: coordination
// happens through single-word compare-and-swap on the allocator metadata,
// so threads proceed in parallel and only retry when they genuinely
// conflicted on the same chunk.
//
// Two non-blocking layouts are provided — Variant1Lvl with one status word
// per tree node, and Variant4Lvl (the default) packing four tree levels
// into each 64-bit word to quarter the atomic instructions per operation —
// along with the spin-lock baselines used by the paper's evaluation
// (Variant1LvlLocked, Variant4LvlLocked, VariantCloudwu,
// VariantLinuxStyle), which are handy as drop-in comparison points.
//
// The allocator trades in offsets relative to the managed region, which
// makes it a back-end in the paper's terminology: it can manage memory it
// does not own (a file, a shared segment, device memory). Pass
// WithMaterializedRegion to also reserve real bytes and use AllocBytes to
// receive the offset's window as a slice.
//
//	b, err := nbbs.New(nbbs.Config{Total: 1 << 26, MinSize: 64, MaxSize: 1 << 20},
//	    nbbs.WithMaterializedRegion())
//	...
//	h := b.NewHandle() // one per worker goroutine
//	off, ok := h.Alloc(4096)
//	...
//	h.Free(off)
//
// Handles are the intended hot-path interface: they carry the per-worker
// scan scatter state and private statistics. The Buddy's own Alloc/Free
// are convenience wrappers safe for occasional use from any goroutine.
package nbbs

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/frontend"
	"repro/internal/geometry"
	"repro/internal/multi"

	// Register all allocator variants.
	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

// Variant names an allocator implementation.
type Variant = string

// The available variants, by evaluation label.
const (
	// Variant4Lvl is the non-blocking buddy system with the 4-levels
	// optimization (paper §III.D) — the default and fastest variant.
	Variant4Lvl Variant = "4lvl-nb"
	// Variant1Lvl is the non-blocking buddy system with one status word
	// per node (paper §III.A-C).
	Variant1Lvl Variant = "1lvl-nb"
	// Variant4LvlLocked and Variant1LvlLocked are the same layouts
	// serialized by a global spin-lock (evaluation baselines).
	Variant4LvlLocked Variant = "4lvl-sl"
	Variant1LvlLocked Variant = "1lvl-sl"
	// VariantCloudwu is the cloudwu/buddy tree allocator under a spin-lock.
	VariantCloudwu Variant = "buddy-sl"
	// VariantLinuxStyle is a Linux-kernel-shaped free-list buddy under a
	// spin-lock.
	VariantLinuxStyle Variant = "linux-buddy"
)

// Variants lists every registered allocator label.
func Variants() []string { return alloc.Names() }

// Config sizes a buddy instance. All three values must be powers of two,
// with MinSize <= MaxSize <= Total.
type Config struct {
	// Total is the managed region size in bytes.
	Total uint64
	// MinSize is the allocation unit; requests round up to it.
	MinSize uint64
	// MaxSize caps a single allocation.
	MaxSize uint64
}

// Stats are the operation counters aggregated across an instance's
// handles; see the field docs in the paper-reproduction harness for how
// RMW/CASFail/Retries relate to the algorithm.
type Stats = alloc.Stats

// Handle is a per-worker allocation interface; obtain one per goroutine
// from Buddy.NewHandle. It is not safe for concurrent use.
type Handle = alloc.Handle

// Buddy is a buddy-system instance of some variant, optionally backed by
// a real memory region.
type Buddy struct {
	impl    alloc.Allocator
	region  *arena.Arena
	variant Variant
}

// Option configures New.
type Option func(*options)

type options struct {
	variant     Variant
	materialize bool
}

// WithVariant selects the allocator implementation (default Variant4Lvl).
func WithVariant(v Variant) Option { return func(o *options) { o.variant = v } }

// WithMaterializedRegion backs the managed region with real memory so
// AllocBytes/Bytes can hand out slices.
func WithMaterializedRegion() Option { return func(o *options) { o.materialize = true } }

// New builds a buddy instance.
func New(cfg Config, opts ...Option) (*Buddy, error) {
	o := options{variant: Variant4Lvl}
	for _, opt := range opts {
		opt(&o)
	}
	impl, err := alloc.Build(o.variant, alloc.Config{Total: cfg.Total, MinSize: cfg.MinSize, MaxSize: cfg.MaxSize})
	if err != nil {
		return nil, err
	}
	return &Buddy{
		impl:    impl,
		region:  arena.New(cfg.Total, o.materialize),
		variant: o.variant,
	}, nil
}

// Variant returns the implementation label of this instance.
func (b *Buddy) Variant() Variant { return b.variant }

// Total returns the managed region size in bytes.
func (b *Buddy) Total() uint64 { return b.impl.Geometry().Total }

// MinSize returns the allocation unit.
func (b *Buddy) MinSize() uint64 { return b.impl.Geometry().MinSize }

// MaxSize returns the largest single allocation.
func (b *Buddy) MaxSize() uint64 { return b.impl.Geometry().MaxSize }

// Alloc reserves a chunk of at least size bytes and returns its offset
// within the managed region; ok is false when the instance cannot serve
// the request. Offset 0 is a valid allocation.
func (b *Buddy) Alloc(size uint64) (offset uint64, ok bool) { return b.impl.Alloc(size) }

// Free releases a previously allocated chunk by its offset. Freeing an
// offset that is not currently allocated panics.
func (b *Buddy) Free(offset uint64) { b.impl.Free(offset) }

// NewHandle returns a per-worker handle; use one handle per goroutine on
// hot paths.
func (b *Buddy) NewHandle() Handle { return b.impl.NewHandle() }

// Stats aggregates operation counters across all handles; call it at
// quiescent points (not concurrently with operations).
func (b *Buddy) Stats() Stats { return b.impl.Stats() }

// ChunkSize reports the reserved (rounded-up) size of a live allocation.
func (b *Buddy) ChunkSize(offset uint64) uint64 {
	return b.impl.(alloc.ChunkSizer).ChunkSize(offset)
}

// Materialized reports whether the region is backed by real memory.
func (b *Buddy) Materialized() bool { return b.region.Materialized() }

// Bytes returns the memory window of a live allocation as a slice; the
// instance must have been built WithMaterializedRegion. The slice is valid
// until the chunk is freed.
func (b *Buddy) Bytes(offset uint64) []byte {
	return b.region.Bytes(offset, b.ChunkSize(offset))
}

// AllocBytes combines Alloc and Bytes: it reserves at least size bytes and
// returns the chunk's window. The returned offset is the Free token.
func (b *Buddy) AllocBytes(size uint64) (buf []byte, offset uint64, ok bool) {
	off, ok := b.Alloc(size)
	if !ok {
		return nil, 0, false
	}
	return b.region.Bytes(off, b.ChunkSize(off)), off, true
}

// Scrubber is implemented by the non-blocking variants: Scrub rebuilds the
// metadata from the live-allocation index at a quiescent point, shedding
// the conservative residue racing releases may strand (see DESIGN.md).
type Scrubber interface{ Scrub() }

// Scrub sheds conservative metadata residue on a quiescent instance; it
// reports whether the variant supports scrubbing.
func (b *Buddy) Scrub() bool {
	if s, ok := b.impl.(Scrubber); ok {
		s.Scrub()
		return true
	}
	return false
}

// Backend exposes the underlying allocator for composition with the
// advanced wrappers below.
func (b *Buddy) Backend() interface {
	Name() string
	Alloc(uint64) (uint64, bool)
	Free(uint64)
} {
	return b.impl
}

// CachedHandle is a per-worker handle with magazine caching in front of
// the instance (the paper's front-end/back-end composition). Frees park
// chunks in per-size-class magazines served back to later allocations;
// Flush returns everything to the back-end.
type CachedHandle struct {
	*frontend.Handle
}

// NewCachedHandle layers a caching front-end handle over the instance.
// magazine is the per-size-class capacity (0 = default).
func (b *Buddy) NewCachedHandle(magazine int) (*CachedHandle, error) {
	fe, err := frontend.New(b.impl, magazine)
	if err != nil {
		return nil, err
	}
	return &CachedHandle{fe.NewHandle().(*frontend.Handle)}, nil
}

// MultiConfig sizes a multi-instance (NUMA-style) allocator: Instances
// independent back-ends of Per geometry behind one offset space.
type MultiConfig struct {
	Instances int
	Per       Config
}

// Multi is a set of same-geometry instances behind one offset space, with
// per-handle preferred-instance routing and fallback — the multi-instance
// deployment the paper describes for NUMA machines.
type Multi = multi.Multi

// NewMulti builds a multi-instance allocator of the given variant.
func NewMulti(cfg MultiConfig, opts ...Option) (*Multi, error) {
	o := options{variant: Variant4Lvl}
	for _, opt := range opts {
		opt(&o)
	}
	if o.materialize {
		return nil, fmt.Errorf("nbbs: materialized regions are not supported on multi-instance allocators")
	}
	return multi.New(o.variant, cfg.Instances, alloc.Config{
		Total:   cfg.Per.Total,
		MinSize: cfg.Per.MinSize,
		MaxSize: cfg.Per.MaxSize,
	}, multi.RoundRobin)
}

// Geometry describes the derived tree shape of a configuration without
// building an instance (useful for capacity planning).
func (c Config) Geometry() (depth, maxLevel int, err error) {
	g, err := geometry.New(c.Total, c.MinSize, c.MaxSize)
	if err != nil {
		return 0, 0, err
	}
	return g.Depth, g.MaxLevel, nil
}
