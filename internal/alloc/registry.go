package alloc

import (
	"fmt"
	"sort"
	"sync"
)

// Config carries everything needed to build any allocator variant of the
// evaluation.
type Config struct {
	Total   uint64 // managed bytes (power of two)
	MinSize uint64 // allocation unit (power of two)
	MaxSize uint64 // largest single allocation (power of two)
	// LockKind selects the spin-lock flavor for blocking baselines
	// ("tas", "ttas", "ticket"); empty means the default TTAS.
	LockKind string
}

// Factory builds an allocator instance from a config.
type Factory func(Config) (Allocator, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a factory under the allocator's evaluation label. The
// concrete allocator packages register themselves in init functions so the
// harness can enumerate variants without import cycles.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("alloc: duplicate registration of %q", name))
	}
	registry[name] = f
}

// Build constructs the named allocator variant.
func Build(name string, cfg Config) (Allocator, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("alloc: unknown allocator %q (known: %v)", name, Names())
	}
	return f(cfg)
}

// Names lists the registered variants in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
