package multi

// Batch routing: the router implements the bulk-transfer contract by
// splitting batches per instance. A bulk allocation asks the preferred
// instance for the whole batch and falls back to the other instances for
// the remainder (the per-chunk zone-fallback discipline, applied once per
// sub-batch instead of once per chunk); a bulk release groups the global
// offsets by owning instance and hands each instance its group in one
// call, so a depot drain crossing the router stays one operation per
// instance rather than one per chunk.

import "repro/internal/alloc"

// AllocBatch implements alloc.BatchHandle with per-instance routing.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	m := h.m
	cnt := len(h.subs)
	for d := 0; d < cnt && len(out) < n; d++ {
		k := (h.pref + d) % cnt
		got := alloc.HandleAllocBatch(h.subs[k], size, n-len(out))
		if len(got) == 0 {
			continue
		}
		base := uint64(k) * m.span
		for _, off := range got {
			out = append(out, base+off)
		}
		h.stats.Allocs += uint64(len(got))
		if d != 0 {
			h.fallbacks += uint64(len(got))
		}
	}
	if len(out) == 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch implements alloc.BatchHandle: offsets are grouped by owning
// instance and each group is released in one per-instance call.
func (h *Handle) FreeBatch(offsets []uint64) {
	if len(offsets) == 0 {
		return
	}
	groups := make([][]uint64, len(h.subs))
	for _, off := range offsets {
		k, local := h.m.route(off)
		groups[k] = append(groups[k], local)
	}
	for k, group := range groups {
		if len(group) == 0 {
			continue
		}
		alloc.HandleFreeBatch(h.subs[k], group)
		h.stats.Frees += uint64(len(group))
	}
}

// AllocBatch implements alloc.BatchAllocator through a recycled
// convenience handle (see Multi.Alloc for why handles are pooled).
func (m *Multi) AllocBatch(size uint64, n int) []uint64 {
	h := m.getConv()
	out := h.AllocBatch(size, n)
	m.putConv(h)
	return out
}

// FreeBatch implements alloc.BatchAllocator through a recycled handle.
func (m *Multi) FreeBatch(offsets []uint64) {
	h := m.getConv()
	h.FreeBatch(offsets)
	m.putConv(h)
}
