// Package frontend implements a caching front-end allocator layered over
// any back-end instance — the composition the paper's conclusions point
// to as future work ("embed our solution in front-end allocators allowing
// them to interact more frequently with the back-end allocator, thanks to
// its increased scalability").
//
// Each worker handle keeps small per-size-class magazines of chunks
// obtained from the back-end: allocations are served from the magazine
// when possible and frees refill it, spilling half back to the back-end
// when a magazine overflows. This is the classic quick-list/magazine
// discipline of cached kernel allocators [3]; the interesting property in
// combination with the non-blocking back-end is that magazine misses and
// spills — the cross-thread contention points of a cached design — hit an
// allocator that does not serialize them.
//
// With WithDepot the spill path changes discipline: full magazines are
// exchanged whole with a shared per-size-class depot in O(1), and only
// depot misses (batch refill) and depot overflows (batch drain) cross
// into the back-end, through the alloc.BatchAllocator bulk contract (see
// DESIGN.md, "The bulk-transfer contract and the magazine depot").
//
// The front-end is a composable layer (see DESIGN.md): it works over any
// alloc.Allocator that implements alloc.ChunkSizer — a leaf variant, a
// multi-instance router, a traced stack — and itself forwards the whole
// layer contract, so further layers stack on top of it.
package frontend

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// DefaultMagazine is the per-class magazine capacity.
const DefaultMagazine = 32

// Allocator is a caching front-end over a back-end instance.
type Allocator struct {
	backend alloc.Allocator
	sizer   alloc.ChunkSizer
	geo     geometry.Geometry
	magCap  int
	// depot, when non-nil, is the shared magazine exchange: overflowing
	// handles park full magazines there in O(1) instead of spilling
	// chunk-at-a-time, and dry handles grab them back. refill is the
	// batch size of a back-end refill after a depot miss.
	depot  *Depot
	refill int

	mu          sync.Mutex
	handles     []*Handle
	conv        alloc.Stats // ops served by the pass-through convenience path
	closed      alloc.Stats // retained counters of closed handles
	closedCache CacheStats

	// Drain fence: DrainDepotRange records the retiring window, then bumps
	// the epoch; handles compare epochs on their next operation and flush
	// magazines overlapping a recorded window, so a draining instance's
	// live count converges without waiting for an idle worker to churn or
	// for a quiescent Scrub. Windows are never pruned — a stale window is
	// harmless because magazines can never hold offsets of memory that was
	// actually retired.
	drainEpoch atomic.Uint64
	drainMu    sync.Mutex
	drainWins  map[uint64]uint64 // lo -> hi
}

// Option tunes the front-end beyond the magazine capacity.
type Option func(*Allocator)

// WithDepot attaches the shared magazine depot: full magazines are
// exchanged with a per-size-class global pool in O(1), and only depot
// misses (refill) and overflows (drain) cross into the back-end — as
// batches via the alloc.BatchAllocator contract, not chunk-at-a-time.
// capacity bounds the full magazines retained per class (0 = default).
func WithDepot(capacity int) Option {
	return func(a *Allocator) {
		classes := a.geo.Depth - a.geo.MaxLevel + 1
		a.depot = newDepot(classes, capacity)
	}
}

// WithBatchRefill sets how many chunks a back-end batch refill brings up
// after a depot miss (default: half a magazine). Only meaningful with
// WithDepot.
func WithBatchRefill(n int) Option {
	return func(a *Allocator) {
		if n > 0 {
			a.refill = n
		}
	}
}

// New layers a front-end over the given back-end, which must implement
// alloc.ChunkSizer (every layer in this repository does): frees enter the
// magazine of the size class the chunk was reserved at, which only the
// back-end metadata knows.
func New(backend alloc.Allocator, magCap int, opts ...Option) (*Allocator, error) {
	sizer, ok := backend.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("frontend: backend %s cannot report chunk sizes", backend.Name())
	}
	if magCap <= 0 {
		magCap = DefaultMagazine
	}
	a := &Allocator{backend: backend, sizer: sizer, geo: backend.Geometry(), magCap: magCap,
		drainWins: make(map[uint64]uint64)}
	a.refill = magCap / 2
	if a.refill == 0 {
		a.refill = 1
	}
	for _, o := range opts {
		o(a)
	}
	return a, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string {
	if a.depot != nil {
		return "depot+" + a.backend.Name()
	}
	return "cached+" + a.backend.Name()
}

// Depot exposes the shared magazine depot (nil without WithDepot).
func (a *Allocator) Depot() *Depot { return a.depot }

// SetEventSink installs the flight-recorder publish hook on the depot's
// back-end crossings (refill/drain). A no-op without WithDepot — the
// depot-less spill path has no batched crossings worth recording.
func (a *Allocator) SetEventSink(fn func(event string, a, b uint64)) {
	if a.depot != nil {
		a.depot.SetEventSink(fn)
	}
}

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// OffsetSpan implements alloc.Spanner by forwarding the wrapped stack's
// offset space (a multi-instance back-end is wider than its Geometry).
func (a *Allocator) OffsetSpan() uint64 { return alloc.SpanOf(a.backend) }

// Backend exposes the wrapped back-end (for statistics and tests).
func (a *Allocator) Backend() alloc.Allocator { return a.backend }

// Unwrap exposes the wrapped back-end to generic stack walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.backend }

// ChunkSize implements alloc.ChunkSizer by forwarding to the back-end
// metadata (the front-end never changes chunk placement, only who holds a
// free chunk).
func (a *Allocator) ChunkSize(offset uint64) uint64 { return a.sizer.ChunkSize(offset) }

// Alloc implements alloc.Allocator by passing through to the back-end:
// caching only pays per-worker, so the convenience path does not cache.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	off, ok := a.backend.Alloc(size)
	a.mu.Lock()
	if ok {
		a.conv.Allocs++
	} else {
		a.conv.AllocFails++
	}
	a.mu.Unlock()
	return off, ok
}

// Free implements alloc.Allocator (pass-through, see Alloc).
func (a *Allocator) Free(offset uint64) {
	a.backend.Free(offset)
	a.mu.Lock()
	a.conv.Frees++
	a.mu.Unlock()
}

// AllocBatch implements alloc.BatchAllocator: like the convenience Alloc,
// the pass-through path does not cache, it forwards the bulk request to
// the back-end (natively or via the shim).
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	out := alloc.AllocBatchOf(a.backend, size, n)
	a.mu.Lock()
	a.conv.Allocs += uint64(len(out))
	if len(out) == 0 && n > 0 {
		a.conv.AllocFails++
	}
	a.mu.Unlock()
	return out
}

// FreeBatch implements alloc.BatchAllocator (pass-through, see AllocBatch).
func (a *Allocator) FreeBatch(offsets []uint64) {
	alloc.FreeBatchOf(a.backend, offsets)
	a.mu.Lock()
	a.conv.Frees += uint64(len(offsets))
	a.mu.Unlock()
}

// Stats implements alloc.Allocator with this layer's view of the traffic:
// the operations served at the front-end (magazine hits included),
// aggregated across handles and the convenience path. The back-end's own
// counters — how much traffic the magazines did NOT absorb — remain
// available via Backend().Stats() and LayerStats. Quiescent points only.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.conv
	total.Add(a.closed)
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// CacheTotals aggregates the magazine counters of every handle created so
// far; quiescent points only.
func (a *Allocator) CacheTotals() CacheStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.closedCache
	for _, h := range a.handles {
		total.Hits += h.cache.Hits
		total.Misses += h.cache.Misses
		total.Spills += h.cache.Spills
		total.Refills += h.cache.Refills
	}
	return total
}

// Scrub implements alloc.Scrubber for the stack: it flushes every
// handle's magazines back to the back-end, drains the depot (depot
// residency does not survive a quiesce — every parked magazine goes back
// down, each as one batch), then forwards Scrub inward. Magazines are
// per-worker state, so this is strictly quiescent-only — no handle may be
// in use concurrently.
func (a *Allocator) Scrub() {
	a.mu.Lock()
	handles := append([]*Handle(nil), a.handles...)
	a.mu.Unlock()
	for _, h := range handles {
		h.Flush()
	}
	if a.depot != nil {
		for _, mag := range a.depot.DrainAll() {
			alloc.FreeBatchOf(a.backend, mag)
		}
	}
	if s, ok := a.backend.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// DrainDepotRange evicts every depot-parked magazine holding a chunk of
// the global offset window [lo, hi) and batch-frees it to the back-end —
// the elastic manager's drain hook: without it, magazines idling in the
// depot would pin a draining instance's live count above zero forever.
// Unlike Scrub this is safe concurrently with traffic: the depot is
// internally locked and the frees go down the thread-safe batched
// convenience path.
//
// Per-worker handle magazines are single-owner state, so they cannot be
// flushed from here; instead the call arms the drain fence — the window
// is recorded and the drain epoch bumped, and each handle flushes its
// overlapping magazines on its own next operation. The elastic manager
// re-invokes the hook on every Poll, so retirement converges as soon as
// every parking worker has performed one operation — no idle-worker
// churn or quiescent Scrub required.
func (a *Allocator) DrainDepotRange(lo, hi uint64) {
	if a.depot != nil {
		// No front-end stats here: a drained chunk's free was counted when
		// a worker parked it, exactly like the Scrub-path depot drain.
		for _, mag := range a.depot.DrainRange(lo, hi) {
			alloc.FreeBatchOf(a.backend, mag)
		}
	}
	a.drainMu.Lock()
	if hi > a.drainWins[lo] {
		a.drainWins[lo] = hi
	}
	a.drainMu.Unlock()
	a.drainEpoch.Add(1)
}

// drainWindows snapshots the recorded draining windows.
func (a *Allocator) drainWindows() map[uint64]uint64 {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	wins := make(map[uint64]uint64, len(a.drainWins))
	for lo, hi := range a.drainWins {
		wins[lo] = hi
	}
	return wins
}

// LayerStats implements alloc.LayerStatser: the front-end entry with its
// magazine counters, then the wrapped stack's entries.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	cache := a.CacheTotals()
	layer := "cached"
	extra := map[string]uint64{
		"hits":    cache.Hits,
		"misses":  cache.Misses,
		"spills":  cache.Spills,
		"refills": cache.Refills,
	}
	if a.depot != nil {
		layer = "depot"
		ds := a.depot.Stats()
		extra["depot_full_pushes"] = ds.FullPushes
		extra["depot_full_pops"] = ds.FullPops
		extra["depot_pop_misses"] = ds.PopMisses
		extra["depot_drains"] = ds.Drains
		extra["depot_drained_chunks"] = ds.DrainedChunks
		extra["depot_batch_refills"] = ds.Refills
		extra["depot_refilled_chunks"] = ds.RefilledChunks
		extra["depot_retained_chunks"] = uint64(a.depot.Retained())
	}
	entry := alloc.LayerStats{
		Layer: layer,
		Stats: a.Stats(),
		Extra: extra,
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(a.backend)...)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle {
	classes := a.geo.Depth - a.geo.MaxLevel + 1
	h := &Handle{
		a:     a,
		back:  a.backend.NewHandle(),
		mags:  make([][]uint64, classes),
		epoch: a.drainEpoch.Load(),
	}
	a.mu.Lock()
	a.handles = append(a.handles, h)
	a.mu.Unlock()
	return h
}

// CacheStats counts magazine behaviour per handle.
type CacheStats struct {
	Hits    uint64 // allocations served from a magazine
	Misses  uint64 // allocations that went to the back-end
	Spills  uint64 // chunks returned to the back-end on magazine overflow
	Refills uint64 // frees absorbed into a magazine
}

// Handle is the per-worker caching face. It is not safe for concurrent
// use. Call Flush before dropping a handle, or its cached chunks stay
// reserved in the back-end until the allocator-level Scrub reclaims them.
type Handle struct {
	a      *Allocator
	back   alloc.Handle
	mags   [][]uint64 // per level-class stacks of cached offsets
	stats  alloc.Stats
	cache  CacheStats
	epoch  uint64
	closed bool
}

func (h *Handle) class(level int) int { return level - h.a.geo.MaxLevel }

// syncDrain catches the handle up with the drain fence: every magazine
// holding a chunk inside a recorded draining window flushes to the
// back-end, so the draining instance's live count can reach zero while
// this worker stays idle-but-alive afterwards.
func (h *Handle) syncDrain(epoch uint64) {
	h.epoch = epoch
	wins := h.a.drainWindows()
	if len(wins) == 0 {
		return
	}
	for cls, mag := range h.mags {
		hit := false
	scan:
		for _, off := range mag {
			for lo, hi := range wins {
				if off >= lo && off < hi {
					hit = true
					break scan
				}
			}
		}
		if hit {
			alloc.HandleFreeBatch(h.back, mag)
			h.cache.Spills += uint64(len(mag))
			h.mags[cls] = mag[:0]
		}
	}
}

// checkDrain is the one-atomic-load fast path of the drain fence.
func (h *Handle) checkDrain() {
	if e := h.a.drainEpoch.Load(); e != h.epoch {
		h.syncDrain(e)
	}
}

// Alloc serves from the size class magazine. On an empty magazine a
// depot-backed handle exchanges it for a full one in O(1), and only a
// depot miss reaches the back-end — as one batch refill. Without a depot
// the miss goes straight down, chunk-at-a-time (the PR-1 discipline).
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	h.checkDrain()
	if size > h.a.geo.MaxSize {
		h.stats.AllocFails++
		return 0, false
	}
	level := h.a.geo.LevelForSize(size)
	cls := h.class(level)
	if mag := h.mags[cls]; len(mag) > 0 {
		off := mag[len(mag)-1]
		h.mags[cls] = mag[:len(mag)-1]
		h.cache.Hits++
		h.stats.Allocs++
		return off, true
	}
	if d := h.a.depot; d != nil {
		if mag, ok := d.ExchangeFull(cls, h.mags[cls]); ok {
			off := mag[len(mag)-1]
			h.mags[cls] = mag[:len(mag)-1]
			h.cache.Hits++
			h.stats.Allocs++
			return off, true
		}
		// Depot miss: one back-end trip restocks the magazine. The batch
		// requests the class's reserved size so every refilled chunk
		// classifies back into this magazine.
		batch := alloc.HandleAllocBatch(h.back, h.a.geo.SizeOfLevel(level), h.a.refill)
		h.cache.Misses++
		if len(batch) == 0 {
			h.stats.AllocFails++
			return 0, false
		}
		off := batch[len(batch)-1]
		h.mags[cls] = append(h.mags[cls], batch[:len(batch)-1]...)
		d.noteRefill(len(batch))
		h.stats.Allocs++
		return off, true
	}
	h.cache.Misses++
	off, ok := h.back.Alloc(size)
	if ok {
		h.stats.Allocs++
	} else {
		h.stats.AllocFails++
	}
	return off, ok
}

// Free pushes the chunk into its class magazine. When the magazine is
// full a depot-backed handle parks it whole in the depot in O(1) (or, at
// depot capacity, drains it to the back-end as one batch); without a
// depot the older half spills chunk-at-a-time as before.
func (h *Handle) Free(offset uint64) {
	h.checkDrain()
	size := h.a.sizer.ChunkSize(offset)
	cls := h.class(h.a.geo.LevelForSize(size))
	mag := h.mags[cls]
	if len(mag) >= h.a.magCap {
		if d := h.a.depot; d != nil {
			if fresh, ok := d.ExchangeEmpty(cls, mag); ok {
				if fresh == nil {
					fresh = make([]uint64, 0, h.a.magCap)
				}
				mag = fresh
			} else {
				alloc.HandleFreeBatch(h.back, mag)
				h.cache.Spills += uint64(len(mag))
				mag = mag[:0]
			}
		} else {
			spill := len(mag) / 2
			for _, off := range mag[:spill] {
				h.back.Free(off)
				h.cache.Spills++
			}
			mag = append(mag[:0], mag[spill:]...)
		}
	}
	h.mags[cls] = append(mag, offset)
	h.cache.Refills++
	h.stats.Frees++
}

// AllocBatch implements alloc.BatchHandle by forwarding the bulk request
// to the back-end handle in one crossing. Like the allocator-level
// convenience path, bulk transfers do not cache: magazines are the
// steady-state chunk-at-a-time optimization, while a batch caller (a
// deep ramp, a planter) wants the back-end's batched level scan — routing
// a 512-chunk fill through per-chunk magazine misses would turn one scan
// into 512.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if size > h.a.geo.MaxSize {
		h.stats.AllocFails++
		return nil
	}
	out := alloc.HandleAllocBatch(h.back, size, n)
	h.stats.Allocs += uint64(len(out))
	if len(out) == 0 && n > 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch implements alloc.BatchHandle (forwarded, see AllocBatch).
func (h *Handle) FreeBatch(offsets []uint64) {
	alloc.HandleFreeBatch(h.back, offsets)
	h.stats.Frees += uint64(len(offsets))
}

// Flush returns every cached chunk to the back-end, one batch per
// magazine.
func (h *Handle) Flush() {
	for cls, mag := range h.mags {
		if len(mag) == 0 {
			continue
		}
		alloc.HandleFreeBatch(h.back, mag)
		h.cache.Spills += uint64(len(mag))
		h.mags[cls] = mag[:0]
	}
}

// Cached returns the number of chunks currently held in magazines.
func (h *Handle) Cached() int {
	n := 0
	for _, mag := range h.mags {
		n += len(mag)
	}
	return n
}

// CacheStats returns the magazine counters.
func (h *Handle) CacheStats() CacheStats { return h.cache }

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: flush the magazines, fold the
// operation and cache counters into the allocator's retained totals,
// unregister, and close the wrapped back-end handle. The handle must not
// be used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	h.Flush()
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.closedCache.Hits += h.cache.Hits
	a.closedCache.Misses += h.cache.Misses
	a.closedCache.Spills += h.cache.Spills
	a.closedCache.Refills += h.cache.Refills
	a.mu.Unlock()
	alloc.CloseHandle(h.back)
}
