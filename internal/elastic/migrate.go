// Live-chunk migration: the bounded-retirement half of the policy
// redesign. A draining slot whose last chunks belong to long-lived
// owners would otherwise stay draining until those owners happen to
// free — the stall the straggler regression test pins. The migration
// step copies such stragglers onto active slots (alloc-new / copy /
// free-old) so TryRetire converges in a bounded number of Polls.
//
// Why this rides the draining fence: a draining slot refuses new
// allocations (the live-increment-before-state-check ordering in
// multi.Handle.tryAllocOn), so the slot's live set can only shrink while
// the manager enumerates it — enumerate-then-move cannot race a chunk
// INTO the window it is vacating. Frees of enumerated chunks are the
// remaining hazard, which is why ownership matters: a chunk picked for
// migration is freed by the manager, and its owner learns the new
// offset through the OnMigrate hooks before Poll returns. Owners must
// not free a chunk concurrently with a Poll that may migrate it — the
// same quiescence contract Scrub already imposes, narrowed to chunks on
// draining slots (and a straggler is by definition a chunk nobody is
// busy freeing).
package elastic

import (
	"repro/internal/alloc"
	"repro/internal/multi"
)

// Migration defaults.
const (
	// DefaultMigrateBatch bounds the chunks moved off one slot per Poll,
	// so a migration pass stays a bounded slice of a decision step.
	DefaultMigrateBatch = 64
	// DefaultMigrateAfter is how many Polls a slot must have been
	// draining before migration starts: the cheap paths (drain hooks
	// pulling parked magazines down, owners freeing on their own) get
	// that long to empty the slot for free.
	DefaultMigrateAfter = 1
)

// MigrationConfig tunes the migration step of the retire path. The zero
// value disables migration (the pre-PR-10 behavior): moving a chunk
// changes its offset, so only owners prepared to track moves through
// OnMigrate hooks should enable it.
type MigrationConfig struct {
	// Enabled turns the migration step on.
	Enabled bool
	// MaxChunksPerPoll bounds the chunks moved off one draining slot per
	// Poll (0 = DefaultMigrateBatch).
	MaxChunksPerPoll int
	// AfterPolls is how many Polls a slot must have been draining before
	// its stragglers are moved (0 = DefaultMigrateAfter).
	AfterPolls int
}

func (c MigrationConfig) withDefaults() MigrationConfig {
	if c.MaxChunksPerPoll <= 0 {
		c.MaxChunksPerPoll = DefaultMigrateBatch
	}
	if c.AfterPolls <= 0 {
		c.AfterPolls = DefaultMigrateAfter
	}
	return c
}

// MigrateHook observes one moved chunk: the straggler that lived at
// oldOff now lives at newOff (size reserved bytes, contents copied when
// the stack is memory-backed). Hooks run under the manager's decision
// mutex before Poll returns, in registration order; owners use them to
// rewrite outstanding references. Register during stack construction or
// before the first migrating Poll.
type MigrateHook func(oldOff, newOff, size uint64)

// OnMigrate registers a migration observer.
func (mgr *Manager) OnMigrate(fn MigrateHook) {
	mgr.mu.Lock()
	mgr.migrateHooks = append(mgr.migrateHooks, fn)
	mgr.mu.Unlock()
}

// migrateSlot moves up to the configured batch of live chunks off
// draining slot k onto active slots and returns how many moved. Called
// with mu held. Replacement chunks come through the router's bulk
// contract (one batched crossing per size class run), bytes are copied
// when a mapped region backs the windows, and the old offsets go back
// down as one batch — after every copy completed, so a partial pass
// never leaves a chunk half-moved: a straggler either still lives at
// its old offset or is fully copied and re-homed.
func (mgr *Manager) migrateSlot(k int, act *Action) int {
	stragglers := mgr.inner.Stragglers(k, mgr.cfg.Migration.MaxChunksPerPoll)
	if len(stragglers) == 0 {
		return 0
	}
	if mgr.mig == nil {
		mgr.mig = mgr.inner.NewHandle()
	}
	region := mgr.inner.Memory()
	span := mgr.inner.InstanceSpan()
	type move struct {
		old, new, size uint64
	}
	var moves []move
	// Alloc-new in same-size runs through the bulk contract. A short
	// batch means the active fleet cannot host the remainder this step:
	// stop, count the refusal, and let a later Poll retry — nothing was
	// touched for the chunks left behind.
	for i := 0; i < len(stragglers); {
		j := i + 1
		for j < len(stragglers) && stragglers[j].Size == stragglers[i].Size {
			j++
		}
		got := alloc.HandleAllocBatch(mgr.mig, stragglers[i].Size, j-i)
		for n, newOff := range got {
			s := stragglers[i+n]
			// The draining fence keeps the replacement off slot k itself
			// (allocations skip draining slots), so the copy below never
			// aliases its source.
			moves = append(moves, move{old: s.Offset, new: newOff, size: s.Size})
		}
		if len(got) < j-i {
			mgr.counters.MigrateFails++
			mgr.emit("migrate-fail", uint64(k), uint64(len(stragglers)-len(moves)))
			break
		}
		i = j
	}
	if len(moves) == 0 {
		return 0
	}
	olds := make([]uint64, 0, len(moves))
	for _, mv := range moves {
		if region != nil {
			dst := region.Bytes(mgr.inner.InstanceOf(mv.new), mv.new%span, mv.size)
			src := region.Bytes(k, mv.old%span, mv.size)
			copy(dst, src)
		}
		olds = append(olds, mv.old)
	}
	alloc.HandleFreeBatch(mgr.mig, olds)
	for _, mv := range moves {
		mgr.counters.MigratedChunks++
		mgr.counters.MigratedBytes += mv.size
		for _, fn := range mgr.migrateHooks {
			fn(mv.old, mv.new, mv.size)
		}
		mgr.emit("migrate", mv.old, mv.new)
	}
	act.Migrated += len(moves)
	return len(moves)
}

// DrainAge is one draining slot's time-to-retire-so-far.
type DrainAge struct {
	// Slot is the table position.
	Slot int
	// Polls is how many Poll steps the slot has been draining.
	Polls uint64
	// Live is the chunk count still pinning it.
	Live int64
}

// DrainAges reports how long each currently draining slot has waited,
// in Poll steps — the per-slot time-to-retire gauge nbbsinfo prints.
func (mgr *Manager) DrainAges() []DrainAge {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	var out []DrainAge
	for _, info := range mgr.inner.InstanceInfos() {
		if info.State != multi.Draining {
			continue
		}
		age := uint64(0)
		if since, ok := mgr.drainSince[info.Slot]; ok {
			age = mgr.counters.Polls - since
		}
		out = append(out, DrainAge{Slot: info.Slot, Polls: age, Live: info.Live})
	}
	return out
}
