// Package arena models the contiguous memory region a buddy-system
// instance manages. The allocators themselves operate purely on metadata
// and hand out offsets into the region (paper equation (3) computes
// starting addresses relative to base_address); an Arena optionally
// materializes the region as real memory so callers can actually read and
// write the memory they were granted.
//
// Keeping materialization optional lets the benchmark harness measure pure
// allocator behaviour — the paper's benchmarks never touch the allocated
// payload either — without reserving gigabytes of RSS.
//
// Since the mapped-memory backing PR, the bytes behind an arena come from
// internal/mem rather than make([]byte): a platform-backed region with a
// reserve/commit/decommit lifecycle. A stand-alone arena commits its
// region at construction — the fixed-deployment behaviour is unchanged —
// but a Materialize layer over a router that already carries a bound
// mem.Region (a mapped elastic stack) borrows the router's windows
// instead of allocating its own, so the byte views follow the elastic
// commit/decommit lifecycle and retired instances really give their pages
// back to the OS.
//
// Materialize wraps any allocator stack as a composable layer: it sizes
// real memory to the stack's global offset span and hands out byte
// windows for live chunks. Over a multi-instance router it keeps one
// window per instance — the per-NUMA-node memory the router models —
// behind the single global offset space.
package arena

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/mem"
)

// Arena is a contiguous region of Total bytes, optionally backed by a
// committed mem.Region window.
type Arena struct {
	total  uint64
	region *mem.Region
}

// New creates an arena of the given size. If materialize is true the
// region is backed by real memory (one committed mem window); otherwise
// only offsets exist. Like make([]byte) before it, a backing failure is
// an OOM-class event and panics.
func New(total uint64, materialize bool) *Arena {
	a := &Arena{total: total}
	if materialize {
		r, err := mem.New(total, 1)
		if err == nil {
			err = r.Commit(0)
		}
		if err != nil {
			panic(fmt.Sprintf("arena: materializing %d bytes: %v", total, err))
		}
		a.region = r
	}
	return a
}

// Total returns the region size in bytes.
func (a *Arena) Total() uint64 { return a.total }

// Materialized reports whether the region is backed by real memory.
func (a *Arena) Materialized() bool { return a.region != nil }

// Bytes returns the [offset, offset+size) window of the region as a slice.
// It panics if the arena is not materialized or the window is out of
// bounds — both are caller bugs, not runtime conditions.
func (a *Arena) Bytes(offset, size uint64) []byte {
	if a.region == nil {
		panic("arena: Bytes on a non-materialized arena")
	}
	if offset+size > a.total || offset+size < offset {
		panic(fmt.Sprintf("arena: window [%d,%d) outside region of %d bytes", offset, offset+size, a.total))
	}
	return a.region.Bytes(0, offset, size)
}

// Allocator is the materialized-region layer: a pass-through allocator
// stack layer that additionally backs the wrapped stack's offset space
// with real memory, so callers can read and write the chunks they are
// granted. It forwards the whole composable contract (ChunkSizer,
// Spanner, Scrubber, LayerStatser), so it stacks over any allocator —
// including a multi-instance router, where it keeps one window per
// instance behind the global offset space.
type Allocator struct {
	inner   alloc.Allocator
	sizer   alloc.ChunkSizer
	segSize uint64 // bytes per per-instance window
	// region backs the byte views: created (and fully committed) here for
	// unmapped stacks, borrowed from a mapped router below otherwise — in
	// the borrowed case its lifecycle (commit on grow, decommit on
	// retire) belongs to the router and this layer only reads windows.
	region *mem.Region
}

// instanceCounter is implemented by the multi-instance router; unwrapper
// by every layer that wraps a single inner allocator; memoryProvider by
// layers carrying a bound mapped region (the router under WithMapped).
type instanceCounter interface{ Instances() int }
type unwrapper interface{ Unwrap() alloc.Allocator }
type memoryProvider interface{ Memory() *mem.Region }

// segmentsOf walks the stack down to the multi-instance router (if any)
// to learn how many windows the offset space splits into.
func segmentsOf(a alloc.Allocator) int {
	for {
		if ic, ok := a.(instanceCounter); ok {
			return ic.Instances()
		}
		w, ok := a.(unwrapper)
		if !ok {
			return 1
		}
		a = w.Unwrap()
	}
}

// regionOf walks the stack for a layer that already carries a bound
// mapped region (nil when the stack is unmapped).
func regionOf(a alloc.Allocator) *mem.Region {
	for {
		if mp, ok := a.(memoryProvider); ok {
			if r := mp.Memory(); r != nil {
				return r
			}
		}
		w, ok := a.(unwrapper)
		if !ok {
			return nil
		}
		a = w.Unwrap()
	}
}

// Materialize wraps a stack with a materialized region sized to its
// global offset span. The stack must implement alloc.ChunkSizer so Bytes
// can learn the reserved window of an offset.
//
// When the wrapped stack carries a bound mapped region (a router built
// with mapped backing), that region is borrowed rather than duplicated:
// the windows the router commits and decommits through the elastic
// lifecycle are exactly the bytes this layer hands out, so the two layers
// can never disagree about what memory exists.
func Materialize(inner alloc.Allocator) (*Allocator, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("arena: %s cannot report chunk sizes", inner.Name())
	}
	if r := regionOf(inner); r != nil {
		return &Allocator{inner: inner, sizer: sizer, segSize: r.WindowSize(), region: r}, nil
	}
	span := alloc.SpanOf(inner)
	segments := segmentsOf(inner)
	segSize := span / uint64(segments)
	r, err := mem.New(segSize, segments)
	if err != nil {
		return nil, fmt.Errorf("arena: reserving %d windows of %d bytes: %w", segments, segSize, err)
	}
	for k := 0; k < segments; k++ {
		if err := r.Commit(k); err != nil {
			r.Release()
			return nil, fmt.Errorf("arena: committing window %d: %w", k, err)
		}
	}
	return &Allocator{inner: inner, sizer: sizer, segSize: segSize, region: r}, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "mat+" + a.inner.Name() }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.inner.Geometry() }

// OffsetSpan implements alloc.Spanner. It is forwarded (not cached): over
// a mapped elastic stack the span grows with the router's table, and the
// borrowed region grows with it.
func (a *Allocator) OffsetSpan() uint64 { return alloc.SpanOf(a.inner) }

// Unwrap exposes the wrapped stack to generic stack walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.inner }

// Region exposes the backing mem region (for commit-map introspection).
func (a *Allocator) Region() *mem.Region { return a.region }

// Alloc implements alloc.Allocator (pass-through).
func (a *Allocator) Alloc(size uint64) (uint64, bool) { return a.inner.Alloc(size) }

// Free implements alloc.Allocator (pass-through).
func (a *Allocator) Free(offset uint64) { a.inner.Free(offset) }

// AllocBatch implements alloc.BatchAllocator (pass-through).
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	return alloc.AllocBatchOf(a.inner, size, n)
}

// FreeBatch implements alloc.BatchAllocator (pass-through).
func (a *Allocator) FreeBatch(offsets []uint64) { alloc.FreeBatchOf(a.inner, offsets) }

// NewHandle implements alloc.Allocator (pass-through: the layer holds no
// per-worker state, so inner handles are used directly).
func (a *Allocator) NewHandle() alloc.Handle { return a.inner.NewHandle() }

// Stats implements alloc.Allocator (pass-through).
func (a *Allocator) Stats() alloc.Stats { return a.inner.Stats() }

// ChunkSize implements alloc.ChunkSizer (pass-through).
func (a *Allocator) ChunkSize(offset uint64) uint64 { return a.sizer.ChunkSize(offset) }

// Scrub implements alloc.Scrubber (pass-through).
func (a *Allocator) Scrub() {
	if s, ok := a.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// LayerStats implements alloc.LayerStatser: the arena contributes no
// operation counters, only its memory footprint and — since the
// mapped-memory backing — the region's commit accounting.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	ms := a.region.Stats()
	entry := alloc.LayerStats{
		Layer: "mat",
		Extra: map[string]uint64{
			"bytes":         ms.ReservedBytes,
			"segments":      uint64(a.region.Windows()),
			"mem_reserved":  ms.ReservedBytes,
			"mem_committed": ms.CommittedBytes,
			"mem_decommits": ms.Decommits,
			"mem_recommits": ms.Recommits,
		},
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(a.inner)...)
}

// Bytes returns the memory window of a live chunk at a global offset as a
// slice; the slice is valid until the chunk is freed — and, since the
// mapped backing, only while the stack itself stays reachable (the slice
// views OS-mapped memory that a garbage-collected region unmaps; see
// mem.Region.Window). A chunk never crosses a window boundary: chunks are
// size-aligned within their instance's window and no larger than it.
func (a *Allocator) Bytes(offset uint64) []byte {
	size := a.sizer.ChunkSize(offset)
	seg := offset / a.segSize
	if int(seg) >= a.region.Windows() {
		panic(fmt.Sprintf("arena: offset %#x outside the materialized span of %d bytes",
			offset, uint64(a.region.Windows())*a.segSize))
	}
	return a.region.Bytes(int(seg), offset-seg*a.segSize, size)
}

// AllocBytes combines Alloc and Bytes: it reserves at least size bytes
// and returns the chunk's window plus the offset (the Free token).
func (a *Allocator) AllocBytes(size uint64) (buf []byte, offset uint64, ok bool) {
	off, ok := a.inner.Alloc(size)
	if !ok {
		return nil, 0, false
	}
	return a.Bytes(off), off, true
}
