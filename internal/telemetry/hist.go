// Package telemetry is the always-on observability layer of the
// allocator stack: per-handle lock-free latency histograms recorded at
// layer boundaries (mergeable on demand into p50/p99/p999), and a
// flight-recorder event ring the lifecycle machinery — elastic
// grow/drain/retire, injected faults, degradation-ladder rungs,
// slab/depot refill-spill-drain — publishes into, dumpable as JSON and
// attached to chaos incidents.
//
// The recording discipline mirrors the stack's stats discipline
// (DESIGN.md "Per-layer statistics"): histograms are per handle and
// single-writer, so recording is one clock read plus one bucket
// increment with no lock-prefixed RMW; a handle's buckets are folded
// into its boundary's retained accumulator on Close(). Bucket counters
// are atomic.Uint64 written with Load+Store (a plain store on every
// platform Go targets) so a concurrent merge — or a Close racing a
// last in-flight record — reads them without a data race; the cost of
// an atomic store is the cost of a plain store, which is what keeps
// "lock-free" honest under the race detector.
package telemetry

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the size of the log-linear bucket ladder: exact buckets
// for 0..3ns, then two buckets per power of two up to bucket 63, whose
// lower edge is 3·2^30 ns — the ladder spans nanoseconds to seconds
// with at most 25% relative error per bucket (HDR-style, 1 significant
// bit of mantissa).
const NumBuckets = 64

// bucketOf maps an elapsed duration in nanoseconds to its bucket.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 4 {
		return int(v)
	}
	msb := bits.Len64(v) - 1
	idx := 2*msb + int((v>>(msb-1))&1)
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper edge (in ns) of a bucket —
// the value percentile extraction reports, so a reported percentile
// always bounds the true one from above.
func bucketUpper(i int) uint64 {
	if i < 4 {
		return uint64(i)
	}
	msb := i / 2
	half := uint64(i % 2)
	lo := uint64(1)<<msb + half<<(msb-1)
	return lo + uint64(1)<<(msb-1) - 1
}

// Op identifies which handle operation a histogram covers.
type Op int

// The recorded operations, one histogram each per handle.
const (
	OpAlloc Op = iota
	OpFree
	OpAllocBatch
	OpFreeBatch
	numOps
)

// String returns the operation's stats label.
func (op Op) String() string {
	switch op {
	case OpAlloc:
		return "alloc"
	case OpFree:
		return "free"
	case OpAllocBatch:
		return "alloc_batch"
	case OpFreeBatch:
		return "free_batch"
	}
	return "unknown"
}

// Histogram is a single-writer latency histogram: exactly one goroutine
// records (the handle's owner), any goroutine may concurrently read the
// buckets. Record issues no RMW instruction — the increment is an
// atomic load and an atomic store of a counter only the owner writes.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
}

// Record adds one elapsed-nanoseconds sample. Owner goroutine only.
func (h *Histogram) Record(ns int64) {
	c := &h.counts[bucketOf(ns)]
	c.Store(c.Load() + 1)
}

// AddTo accumulates the histogram's current buckets into s. Safe to
// call concurrently with Record; a racing in-flight sample may or may
// not be included (each bucket read is atomic, the walk is not).
func (h *Histogram) AddTo(s *Snapshot) {
	for i := range h.counts {
		s[i] += h.counts[i].Load()
	}
}

// Snapshot is a plain (non-atomic) bucket vector: the merge currency of
// the package. Zero value is empty and usable.
type Snapshot [NumBuckets]uint64

// Add accumulates other into s.
func (s *Snapshot) Add(other *Snapshot) {
	for i := range s {
		s[i] += other[i]
	}
}

// Total returns the sample count.
func (s *Snapshot) Total() uint64 {
	var n uint64
	for _, c := range s {
		n += c
	}
	return n
}

// Quantile returns the upper edge of the bucket holding the q-quantile
// sample (0 < q <= 1), or 0 for an empty snapshot.
func (s *Snapshot) Quantile(q float64) uint64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i, c := range s {
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(NumBuckets - 1)
}

// Percentiles is the fixed p50/p99/p999 summary every surface of the
// package reports (nanoseconds; 0 = no samples).
type Percentiles struct {
	P50  uint64 `json:"p50_ns"`
	P99  uint64 `json:"p99_ns"`
	P999 uint64 `json:"p999_ns"`
}

// Percentiles extracts the summary from a snapshot.
func (s *Snapshot) Percentiles() Percentiles {
	if s.Total() == 0 {
		return Percentiles{}
	}
	return Percentiles{
		P50:  s.Quantile(0.50),
		P99:  s.Quantile(0.99),
		P999: s.Quantile(0.999),
	}
}
