package cloudwu

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// checkInvariants walks the state-machine tree and verifies the buddy.c
// consistency rules at a quiescent point:
//   - SPLIT: at least one descendant chunk is still available.
//   - FULL: both children closed (USED or FULL), nothing available below.
//   - USED/UNUSED: leaf of the logical decomposition; children (if any
//     were materialized by earlier splits) are stale and unreachable.
func checkInvariants(t *testing.T, a *Allocator) {
	t.Helper()
	var walk func(n uint64)
	walk = func(n uint64) {
		switch a.tree[n] {
		case used, unused:
			return // logical leaf; anything deeper is unreachable
		case split:
			l, r := geometry.Left(n), geometry.Right(n)
			if a.closed(l) && a.closed(r) {
				t.Fatalf("node %d SPLIT but both children closed (should be FULL)", n)
			}
			walk(l)
			walk(r)
		case full:
			l, r := geometry.Left(n), geometry.Right(n)
			if !a.closed(l) || !a.closed(r) {
				t.Fatalf("node %d FULL but a child is open", n)
			}
			walk(l)
			walk(r)
		}
	}
	walk(1)
}

func TestStateMachineInvariants(t *testing.T) {
	a, err := New(alloc.Config{Total: 1 << 13, MinSize: 8, MaxSize: 1 << 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var live []uint64
	for step := 0; step < 5000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			a.Free(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else if off, ok := a.Alloc(uint64(1) << (3 + rng.Intn(9))); ok {
			live = append(live, off)
		}
		if step%500 == 0 {
			checkInvariants(t, a)
		}
	}
	for _, off := range live {
		a.Free(off)
	}
	checkInvariants(t, a)
	if a.tree[1] != unused {
		t.Fatalf("root = %d after drain, want UNUSED", a.tree[1])
	}
}

func TestFullMarkBlocksDescent(t *testing.T) {
	a, err := New(alloc.Config{Total: 256, MinSize: 8, MaxSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the left half with 16 leaves, the right half with one chunk.
	var leaves []uint64
	for i := 0; i < 16; i++ {
		off, ok := a.Alloc(8)
		if !ok {
			t.Fatal("leaf alloc failed")
		}
		leaves = append(leaves, off)
	}
	rightHalf, ok := a.Alloc(128)
	if !ok {
		t.Fatal("right-half alloc failed")
	}
	if a.tree[1] != full {
		t.Fatalf("root = %d with everything taken, want FULL", a.tree[1])
	}
	if _, ok := a.Alloc(8); ok {
		t.Fatal("alloc succeeded on a FULL tree")
	}
	// Freeing one leaf must reopen the path up to the root.
	a.Free(leaves[0])
	if a.tree[1] != split {
		t.Fatalf("root = %d after partial free, want SPLIT", a.tree[1])
	}
	if _, ok := a.Alloc(8); !ok {
		t.Fatal("alloc failed after reopening")
	}
	_ = rightHalf
}

func TestChunkSizeWalk(t *testing.T) {
	a, err := New(alloc.Config{Total: 1 << 12, MinSize: 8, MaxSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	off1, _ := a.Alloc(100) // rounds to 128
	off2, _ := a.Alloc(8)
	if got := a.ChunkSize(off1); got != 128 {
		t.Fatalf("ChunkSize(big) = %d, want 128", got)
	}
	if got := a.ChunkSize(off2); got != 8 {
		t.Fatalf("ChunkSize(small) = %d, want 8", got)
	}
	a.Free(off1)
	a.Free(off2)
	// ChunkSize of a freed offset panics.
	defer func() {
		if recover() == nil {
			t.Error("ChunkSize of a freed offset did not panic")
		}
	}()
	a.ChunkSize(off1)
}
