package stats

import (
	"math"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.Std-2) > 1e-9 {
		t.Fatalf("Std = %f, want 2", s.Std)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 {
		t.Fatalf("single-sample summary = %+v", s)
	}
}

func TestCycles(t *testing.T) {
	if got := Cycles(time.Second, 2); got != 2e9 {
		t.Fatalf("Cycles(1s, 2GHz) = %g", got)
	}
	if got := Cycles(500*time.Millisecond, 1); got != 5e8 {
		t.Fatalf("Cycles(0.5s, 1GHz) = %g", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(2*time.Second, time.Second); got != 2 {
		t.Fatalf("Speedup = %f", got)
	}
	if !math.IsInf(Speedup(time.Second, 0), 1) {
		t.Fatal("Speedup over zero must be +Inf")
	}
}

func TestGainPercent(t *testing.T) {
	// The paper reports gains like "84%": slow=100, fast=16 -> 84%.
	if got := GainPercent(100, 16); got != 84 {
		t.Fatalf("GainPercent = %f", got)
	}
	if GainPercent(0, 5) != 0 {
		t.Fatal("zero baseline must yield 0")
	}
}
