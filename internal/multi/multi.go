// Package multi composes several single-instance back-end allocators into
// one address space, the deployment mode the paper's related-work section
// describes for large NUMA machines: the Linux kernel keeps one buddy
// instance per NUMA node and routes requests by memory policy, falling
// back to other nodes when the preferred one cannot serve.
//
// The wrapper is deliberately orthogonal to the allocator variant: it
// takes any registered back-end (non-blocking or spin-locked), which is
// exactly the paper's point — multi-instance data separation and
// non-blocking single-instance management compose.
package multi

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// Policy selects the preferred instance for a handle.
type Policy int

const (
	// RoundRobin assigns handles to instances in creation order, the
	// moral equivalent of spreading threads across NUMA nodes.
	RoundRobin Policy = iota
	// Fixed pins every handle to instance 0, reproducing the paper's
	// Figure 12 setup where the memory policy binds all threads to one
	// buddy instance ("instance 0") to measure same-instance contention.
	Fixed
)

// Multi is a set of same-geometry back-end instances behind one offset
// space: instance k serves global offsets [k*Total, (k+1)*Total).
type Multi struct {
	instances []alloc.Allocator
	policy    Policy
	span      uint64 // per-instance managed bytes
	next      atomic.Uint64
}

// New builds count instances of the named back-end variant.
func New(variant string, count int, cfg alloc.Config, policy Policy) (*Multi, error) {
	if count <= 0 {
		return nil, fmt.Errorf("multi: instance count %d must be positive", count)
	}
	m := &Multi{policy: policy, span: cfg.Total}
	for i := 0; i < count; i++ {
		a, err := alloc.Build(variant, cfg)
		if err != nil {
			return nil, fmt.Errorf("multi: instance %d: %w", i, err)
		}
		m.instances = append(m.instances, a)
	}
	return m, nil
}

// Name implements alloc.Allocator.
func (m *Multi) Name() string {
	return fmt.Sprintf("multi[%dx %s]", len(m.instances), m.instances[0].Name())
}

// Geometry implements alloc.Allocator; it reports the per-instance
// geometry (instances are identical).
func (m *Multi) Geometry() geometry.Geometry { return m.instances[0].Geometry() }

// Instances returns the number of composed back-ends.
func (m *Multi) Instances() int { return len(m.instances) }

// InstanceOf returns which instance serves a global offset.
func (m *Multi) InstanceOf(offset uint64) int { return int(offset / m.span) }

// Alloc implements alloc.Allocator through a transient handle.
func (m *Multi) Alloc(size uint64) (uint64, bool) {
	h := m.NewHandle()
	return h.Alloc(size)
}

// Free implements alloc.Allocator.
func (m *Multi) Free(offset uint64) {
	k := m.InstanceOf(offset)
	m.instances[k].Free(offset - uint64(k)*m.span)
}

// NewHandle implements alloc.Allocator: the handle carries the preferred
// instance chosen by the policy plus per-instance sub-handles.
func (m *Multi) NewHandle() alloc.Handle {
	pref := 0
	if m.policy == RoundRobin {
		pref = int(m.next.Add(1)-1) % len(m.instances)
	}
	h := &Handle{m: m, pref: pref, subs: make([]alloc.Handle, len(m.instances))}
	for i, inst := range m.instances {
		h.subs[i] = inst.NewHandle()
	}
	return h
}

// Stats aggregates all instances.
func (m *Multi) Stats() alloc.Stats {
	var total alloc.Stats
	for _, inst := range m.instances {
		total.Add(inst.Stats())
	}
	return total
}

// Handle is the per-worker face of the composed allocator.
type Handle struct {
	m     *Multi
	pref  int
	subs  []alloc.Handle
	stats alloc.Stats
}

// Alloc tries the preferred instance first and falls back to the others in
// order, the kernel's zone-fallback discipline.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	n := len(h.subs)
	for d := 0; d < n; d++ {
		k := (h.pref + d) % n
		if off, ok := h.subs[k].Alloc(size); ok {
			h.stats.Allocs++
			return uint64(k)*h.m.span + off, true
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// Free routes the offset back to its owning instance.
func (h *Handle) Free(offset uint64) {
	k := h.m.InstanceOf(offset)
	h.subs[k].Free(offset - uint64(k)*h.m.span)
	h.stats.Frees++
}

// Stats returns this handle's routing counters (per-instance work is
// accounted in the sub-handles and aggregated by Multi.Stats).
func (h *Handle) Stats() *alloc.Stats { return &h.stats }
