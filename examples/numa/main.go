// NUMA: multi-instance deployment with skewed load — the scenario the
// paper's related-work discussion uses to motivate a faster back-end.
//
// Multiple same-geometry buddy instances stand behind one offset space
// (one per simulated NUMA node) and handles are spread round-robin, like
// threads bound to nodes. The request load is then skewed: most workers
// hammer whatever instance their handle prefers, but a hot group all
// lands on the same one — the "peak of requests saturating cached
// allocation" case where the single instance's own scalability decides
// throughput. Run it with -variant 4lvl-nb and -variant 1lvl-sl to see
// the difference data separation alone cannot hide.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	nbbs "repro"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "simulated NUMA nodes (allocator instances)")
		workers = flag.Int("workers", 16, "worker goroutines")
		hot     = flag.Float64("hot", 0.5, "fraction of workers whose handles all prefer node 0")
		ops     = flag.Int("ops", 200000, "alloc/free pairs per worker")
		variant = flag.String("variant", nbbs.Variant4Lvl, "allocator variant per instance")
	)
	flag.Parse()

	m, err := nbbs.NewMulti(nbbs.MultiConfig{
		Instances: *nodes,
		Per:       nbbs.Config{Total: 32 << 20, MinSize: 64, MaxSize: 64 << 10},
	}, nbbs.WithVariant(*variant))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d workers, %.0f%% pinned hot on one instance\n", m.Name(), *workers, *hot*100)

	// Handles are assigned round-robin over instances; creating the "hot"
	// workers' handles first and discarding the spread ones afterwards
	// models a skewed memory policy simply: hot workers share handle
	// preference (instance 0 group), the rest stay spread.
	hotWorkers := int(float64(*workers) * *hot)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var h nbbs.Handle
			if w < hotWorkers {
				// All hot workers bind to the same node, like a skewed
				// memory policy: NewHandleOn pins the handle's preferred
				// instance explicitly (fallback still applies).
				h = m.Multi().NewHandleOn(0)
			} else {
				h = m.NewHandle()
			}
			rng := rand.New(rand.NewSource(int64(w)))
			sizes := []uint64{64, 256, 1024, 8 << 10}
			var live []uint64
			for i := 0; i < *ops; i++ {
				if off, ok := h.Alloc(sizes[rng.Intn(len(sizes))]); ok {
					live = append(live, off)
				}
				if len(live) > 32 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := m.Stats()
	fmt.Printf("completed %d ops in %v (%.2f Mops/s)\n",
		s.OpsTotal(), elapsed.Round(time.Millisecond), float64(s.OpsTotal())/elapsed.Seconds()/1e6)
	rs := m.Multi().RouteStats()
	fmt.Printf("routing: %d preferred-instance allocations, %d fallbacks to other nodes\n",
		rs.Routed, rs.Fallbacks)
	for _, layer := range m.LayerStats() {
		fmt.Printf("  layer %-22s allocs=%d frees=%d fails=%d extra=%v\n",
			layer.Layer, layer.Stats.Allocs, layer.Stats.Frees, layer.Stats.AllocFails, layer.Extra)
	}
}
