package shard

import (
	"repro/internal/alloc"
	"repro/internal/multi"
	"repro/internal/proc"
)

// Handle is a per-worker view of the sharded layer: the hot path. Every
// operation resolves the current shard from the processor hint, tries
// the shard's cache, and only then descends into the trees through an
// inner router handle affine to the shard's instance slot. Not safe for
// concurrent use, like every alloc.Handle.
type Handle struct {
	a *Allocator
	// static is the round-robin shard this handle uses when the
	// toolchain offers no processor hint (proc.Dynamic == false).
	static int
	// subs are the lazily created inner router handles, one per shard
	// this handle has operated from.
	subs  []*multi.Handle
	ops   uint64
	stats alloc.Stats

	wraps        uint64 // hints >= nshards, wrapped by modulo
	pinFallbacks uint64 // ops routed via the static fallback
}

// sid resolves the shard for the current operation.
func (h *Handle) sid() int {
	if !proc.Dynamic {
		h.pinFallbacks++
		return h.static
	}
	p := proc.Hint()
	if p >= h.a.nshards {
		// GOMAXPROCS grew past the shard count: fold the extra Ps onto
		// the existing shards rather than leave them uncached.
		h.wraps++
		p %= h.a.nshards
	}
	return p
}

// sub returns the inner router handle for shard sid, creating it with an
// affine preference (shard s prefers instance slot s) on first use.
func (h *Handle) sub(sid int) *multi.Handle {
	for sid >= len(h.subs) {
		h.subs = append(h.subs, nil)
	}
	if h.subs[sid] == nil {
		h.subs[sid] = h.a.router.NewHandlePreferring(sid % h.a.router.Slots())
	}
	return h.subs[sid]
}

// maintain periodically re-asserts affinity: router fallback moves a
// sub-handle's preference to whatever slot served last, and without the
// reset a single capacity excursion would misroute the shard forever.
func (h *Handle) maintain(sid int) {
	h.ops++
	if h.ops%rehomeEvery == 0 && sid < len(h.subs) && h.subs[sid] != nil {
		h.subs[sid].Rehome(sid % h.a.router.Slots())
	}
}

// Alloc implements alloc.Handle: cache pop on the current shard, then
// the affine tree path, then a full cache reclaim and one retry.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	a := h.a
	if size > a.geo.MaxSize {
		h.stats.AllocFails++
		return 0, false
	}
	sid := h.sid()
	h.maintain(sid)
	cls := a.classOf(size)
	st := a.shards[sid]
	if off, ok := st.popCached(cls); ok {
		h.stats.Allocs++
		return off, true
	}
	sub := h.sub(sid)
	off, ok := sub.Alloc(size)
	if !ok {
		// The trees may be out of space only because other shards hoard
		// parked chunks; flush every cache and stash down and retry once.
		a.reclaim(sub)
		off, ok = sub.Alloc(size)
	}
	if ok {
		h.stats.Allocs++
		return off, true
	}
	h.stats.AllocFails++
	return 0, false
}

// Free implements alloc.Handle. The offset is validated and classified
// through the routing metadata first — a foreign or already-freed offset
// panics here, at the call. A chunk owned by the current shard parks in
// its bins; anything else is pushed onto the owner's inbound stash so it
// flows home without touching the owner's hot bins.
func (h *Handle) Free(offset uint64) {
	a := h.a
	reserved := a.sizer.ChunkSize(offset)
	cls := a.classOf(reserved)
	sid := h.sid()
	h.maintain(sid)
	owner := a.ownerOf(offset)
	if owner == sid {
		if spill := a.shards[sid].pushCached(cls, offset); spill != nil {
			h.sub(sid).FreeBatch(spill)
		}
	} else {
		if over := a.shards[owner].pushInbound(cls, offset); over != nil {
			// Stash overflow: the pusher drains the whole stash to the
			// trees itself (the orphaned-owner liveness valve).
			h.sub(sid).FreeBatch(over)
		}
	}
	h.stats.Frees++
}

// AllocBatch implements alloc.BatchHandle as a pass-through to the
// affine inner handle: bulk callers want the back-end's batched level
// scan, not per-chunk cache pops.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if size > h.a.geo.MaxSize {
		h.stats.AllocFails++
		return nil
	}
	sid := h.sid()
	h.maintain(sid)
	out := h.sub(sid).AllocBatch(size, n)
	h.stats.Allocs += uint64(len(out))
	if len(out) == 0 && n > 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch implements alloc.BatchHandle as a strict pass-through (bulk
// frees skip the caches, like the convenience path).
func (h *Handle) FreeBatch(offsets []uint64) {
	if len(offsets) == 0 {
		return
	}
	sid := h.sid()
	h.maintain(sid)
	h.sub(sid).FreeBatch(offsets)
	h.stats.Frees += uint64(len(offsets))
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: close every per-shard inner router
// handle, fold this handle's counters into the allocator's retained
// totals, and unregister. The handle must not be used afterwards.
// Chunks this worker freed live in the shard caches, not in the handle,
// so nothing needs flushing here.
func (h *Handle) Close() {
	if h.a == nil {
		return
	}
	for k, sub := range h.subs {
		if sub != nil {
			alloc.CloseHandle(sub)
			h.subs[k] = nil
		}
	}
	a := h.a
	h.a = nil
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.closedWraps += h.wraps
	a.closedFallbacks += h.pinFallbacks
	a.mu.Unlock()
}

// popCached pops a cached chunk of the class, merging this shard's
// inbound stash into the bins first when the bin is dry and remote frees
// are waiting. One lock round-trip on the hit path.
func (st *shardState) popCached(cls int) (uint64, bool) {
	st.mu.Lock()
	bin := st.bins[cls]
	if len(bin) == 0 && st.inCount.Load() > 0 {
		st.mergeInbound()
		bin = st.bins[cls]
	}
	if n := len(bin); n > 0 {
		off := bin[n-1]
		st.bins[cls] = bin[:n-1]
		st.cached--
		st.mu.Unlock()
		st.hits.Add(1)
		return off, true
	}
	st.mu.Unlock()
	st.misses.Add(1)
	return 0, false
}

// mergeInbound splices the inbound stash into the cache bins (chunks
// flowing home). Caller holds st.mu; lock order is mu -> inMu.
func (st *shardState) mergeInbound() {
	st.inMu.Lock()
	moved := 0
	for cls, in := range st.inbound {
		if len(in) == 0 {
			continue
		}
		st.bins[cls] = append(st.bins[cls], in...)
		moved += len(in)
		st.inbound[cls] = in[:0]
	}
	if moved > 0 {
		st.inCount.Add(int64(-moved))
		st.cached += moved
		st.stashDrains.Add(1)
	}
	st.inMu.Unlock()
}

// pushCached parks a locally freed chunk in the shard's bin. When the
// bin is full it extracts the older half as a spill batch for the caller
// to free outside the lock.
func (st *shardState) pushCached(cls int, off uint64) []uint64 {
	st.mu.Lock()
	bin := st.bins[cls]
	if len(bin) >= binCap {
		spill := len(bin) / 2
		out := append([]uint64(nil), bin[:spill]...)
		rest := append(bin[:0], bin[spill:]...)
		st.bins[cls] = append(rest, off)
		st.cached -= spill - 1
		st.mu.Unlock()
		st.localFrees.Add(1)
		st.flushed.Add(uint64(spill))
		return out
	}
	st.bins[cls] = append(bin, off)
	st.cached++
	st.mu.Unlock()
	st.localFrees.Add(1)
	return nil
}

// pushInbound pushes a remotely freed chunk onto this (owner) shard's
// stash. When the stash is at capacity the whole stash plus the new
// chunk comes back as a batch for the pusher to free to the trees.
func (st *shardState) pushInbound(cls int, off uint64) []uint64 {
	st.inMu.Lock()
	st.remoteFrees.Add(1)
	if int(st.inCount.Load()) >= stashCap {
		out := st.takeInboundLocked()
		out = append(out, off)
		st.stashDrains.Add(1)
		st.flushed.Add(uint64(len(out)))
		st.inMu.Unlock()
		return out
	}
	st.inbound[cls] = append(st.inbound[cls], off)
	st.inCount.Add(1)
	st.inMu.Unlock()
	return nil
}

// takeInboundLocked extracts the whole stash; caller holds st.inMu and
// owns the counter updates.
func (st *shardState) takeInboundLocked() []uint64 {
	var out []uint64
	for cls, in := range st.inbound {
		out = append(out, in...)
		st.inbound[cls] = in[:0]
	}
	st.inCount.Store(0)
	return out
}

// takeRange extracts every parked chunk with offset in [lo, hi) from the
// bins and the stash, for DrainRange / reclaim / Scrub.
func (st *shardState) takeRange(lo, hi uint64) []uint64 {
	var out []uint64
	st.mu.Lock()
	for cls, bin := range st.bins {
		kept := bin[:0]
		for _, off := range bin {
			if off >= lo && off < hi {
				out = append(out, off)
			} else {
				kept = append(kept, off)
			}
		}
		st.bins[cls] = kept
	}
	st.cached -= len(out)
	fromBins := len(out)
	st.inMu.Lock()
	moved := 0
	for cls, in := range st.inbound {
		kept := in[:0]
		for _, off := range in {
			if off >= lo && off < hi {
				out = append(out, off)
				moved++
			} else {
				kept = append(kept, off)
			}
		}
		st.inbound[cls] = kept
	}
	if moved > 0 {
		st.inCount.Add(int64(-moved))
	}
	st.inMu.Unlock()
	st.mu.Unlock()
	if len(out) > 0 {
		if moved > 0 || fromBins > 0 {
			st.stashDrains.Add(1)
		}
		st.flushed.Add(uint64(len(out)))
	}
	return out
}
