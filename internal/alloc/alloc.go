// Package alloc defines the allocator contract shared by the non-blocking
// buddy system and all baseline allocators of the evaluation, together
// with per-worker handles and the instrumentation counters the ablation
// experiments report.
//
// All allocators manage a contiguous region and trade in offsets relative
// to its base; offset 0 is a valid allocation, so the boolean result — not
// a sentinel offset — signals failure, exactly like the paper's NBALLOC
// returning NULL.
package alloc

import "repro/internal/geometry"

// Allocator is a back-end buddy allocator instance.
//
// Alloc returns the offset of a chunk of at least size bytes and true, or
// false if the current state of the instance cannot serve the request
// (size too large, or no free node at the target level). Free releases a
// previously allocated chunk by its offset.
//
// Alloc and Free on the Allocator itself are safe for concurrent use. For
// hot loops, each worker should obtain its own Handle: handles carry the
// per-worker scatter state that spreads same-level allocations across the
// tree (paper §III.B) and per-worker statistics that avoid any shared
// counter traffic on the measurement path.
type Allocator interface {
	// Name returns the evaluation label of the allocator, e.g. "1lvl-nb".
	Name() string
	// Geometry returns the instance's tree geometry.
	Geometry() geometry.Geometry
	// Alloc and Free serve one-off requests through an internal handle.
	Alloc(size uint64) (offset uint64, ok bool)
	Free(offset uint64)
	// NewHandle returns a handle for a single worker goroutine. Handles
	// must not be shared between goroutines.
	NewHandle() Handle
	// Stats aggregates the statistics of all handles created so far.
	// It is intended for quiescent points (after a benchmark run).
	Stats() Stats
}

// Handle is a per-worker view of an allocator. It is not safe for
// concurrent use; create one Handle per goroutine.
type Handle interface {
	Alloc(size uint64) (offset uint64, ok bool)
	Free(offset uint64)
	// Stats returns the live counters of this handle.
	Stats() *Stats
}

// HandleCloser is implemented by handles that can be released: Close
// flushes any chunks the handle has parked (magazines, bins), folds its
// counters into the allocator's retained totals so quiescent Stats keep
// adding up, and removes the handle from the allocator's registry. After
// Close the handle must not be used. Closing is optional — short-lived
// benchmark workers may simply drop handles — but long-running
// worker-churn deployments must Close to keep registries bounded.
type HandleCloser interface{ Close() }

// CloseHandle closes h when its layer supports closing, and is a no-op
// otherwise. Layers forward it to the handles they wrap so a single call
// releases a whole per-worker stack.
func CloseHandle(h Handle) {
	if c, ok := h.(HandleCloser); ok {
		c.Close()
	}
}

// ChunkSizer is implemented by allocators that can report the reserved
// (power-of-two) size of a currently delivered chunk from their own
// metadata. Front-end layers rely on it to classify frees without
// trusting the caller to remember sizes. Implementations panic when the
// offset is not currently allocated.
//
// ChunkSizer is part of the composable-layer contract (see DESIGN.md):
// every layer — leaf allocator, multi-instance router, caching front-end,
// trace recorder, materialized arena — implements it, which is what lets
// layers stack in any order.
type ChunkSizer interface {
	ChunkSize(offset uint64) uint64
}

// Spanner is implemented by layers whose offset space is wider than the
// per-instance Geometry().Total — the multi-instance router serves global
// offsets [0, Instances*Total). Layers that wrap another allocator must
// forward it so the span survives stacking.
type Spanner interface {
	OffsetSpan() uint64
}

// SpanOf returns the size of an allocator's global offset space: the
// OffsetSpan when the allocator (or stack) reports one, the managed
// region size otherwise. Arena layers size their backing memory with it.
func SpanOf(a Allocator) uint64 {
	if s, ok := a.(Spanner); ok {
		return s.OffsetSpan()
	}
	return a.Geometry().Total
}

// LiveWalker is implemented by leaf allocators that can enumerate their
// currently delivered chunks from the live-allocation index. WalkLive
// calls fn with each live chunk's offset and reserved size until fn
// returns false or the index is exhausted.
//
// The walk reads the index with atomic loads but takes no snapshot:
// chunks allocated or freed concurrently may or may not be observed. The
// one caller that acts on the result — the elastic manager's migration
// step — only walks instances behind the router's draining fence, where
// the live set can shrink but never grow, and operates under the same
// quiescence contract as Scrub for the chunks it moves.
type LiveWalker interface {
	WalkLive(fn func(offset, size uint64) bool)
}

// Scrubber is the quiescent maintenance hook of the non-blocking
// allocators: Scrub rebuilds metadata from the live-allocation index,
// shedding the conservative residue racing releases may strand (see
// DESIGN.md). Composable layers forward Scrub inward — and may use it to
// release layer-held resources, like a caching front-end flushing its
// magazines — so a whole stack quiesces with one call.
type Scrubber interface{ Scrub() }

// LayerStats is one layer's contribution to a stack's counters: the
// operations observed at that layer plus layer-specific extras (magazine
// hits, routing fallbacks, arena bytes, ...).
type LayerStats struct {
	// Layer labels the layer, e.g. "cached", "multi[4x 4lvl-nb]".
	Layer string
	// Stats are the allocator-contract counters at this layer.
	Stats Stats
	// Extra carries layer-specific counters keyed by name.
	Extra map[string]uint64
}

// LayerStatser is implemented by composable layers: LayerStats returns
// this layer's entry followed by the entries of everything it wraps,
// top-down. Like Stats, it is for quiescent points.
type LayerStatser interface {
	LayerStats() []LayerStats
}

// StackStats returns the per-layer counters of an allocator stack,
// top-down. A leaf allocator contributes a single entry.
func StackStats(a Allocator) []LayerStats {
	if ls, ok := a.(LayerStatser); ok {
		return ls.LayerStats()
	}
	return []LayerStats{{Layer: a.Name(), Stats: a.Stats()}}
}

// Stats counts the work performed by an allocator handle. RMW counts the
// atomic read-modify-write instructions issued (CAS attempts and atomic
// adds), the metric the 4-level optimization is designed to reduce
// (paper §III.D); CASFail counts the failed subset; Retries counts
// operation-level restarts (a TryAlloc abort followed by a move to another
// node); LockAcq counts lock acquisitions for blocking allocators.
type Stats struct {
	Allocs     uint64 // successful allocations
	Frees      uint64 // successful releases
	AllocFails uint64 // allocations that returned !ok
	RMW        uint64 // atomic RMW instructions issued
	CASFail    uint64 // failed CAS attempts
	Retries    uint64 // node-level allocation retries (TryAlloc aborts)
	LockAcq    uint64 // spin-lock acquisitions (blocking baselines only)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Allocs += other.Allocs
	s.Frees += other.Frees
	s.AllocFails += other.AllocFails
	s.RMW += other.RMW
	s.CASFail += other.CASFail
	s.Retries += other.Retries
	s.LockAcq += other.LockAcq
}

// OpsTotal returns the total completed operations (allocs + frees).
func (s *Stats) OpsTotal() uint64 { return s.Allocs + s.Frees }
