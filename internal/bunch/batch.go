package bunch

import (
	"repro/internal/geometry"
	"repro/internal/status"
)

// Native alloc.BatchAllocator implementation over the bunch layout; see
// internal/core/batch.go for the rationale. The scan is the same as the
// 1-level variant's batched scan with the bunch-word probe substituted.

// AllocBatch reserves up to n chunks of at least size bytes in one level
// scan, returning their offsets. A short or empty result means the level
// could not serve the remainder; an empty batch counts one AllocFail.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return nil
	}
	out := make([]uint64, 0, n)
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1
	h.seq++
	start := base + h.scatterSlot(level)

	for pass := 0; pass < 2 && len(out) < n; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		i := lo
		for i < hi && len(out) < n {
			word, field, count, _ := h.a.nodeWord(i)
			if word.Load()&status.Fill(field, count, status.Busy) != 0 {
				i++
				continue
			}
			failedAt := h.tryAlloc(i)
			if failedAt == 0 {
				offset := geo.OffsetOf(i)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(i))
				h.stats.Allocs++
				out = append(out, offset)
				i++
				continue
			}
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= i {
				next = i + 1
			}
			i = next
		}
		if i > hi {
			i = hi // a subtree skip may overshoot the pass bound
		}
		// Advance the scatter sequence past everything this pass walked
		// (see the identical rover advance in internal/core/batch.go: a
		// +1-per-call rotation would restart every batch inside its own
		// still-live delivery and re-probe it end to end).
		h.seq += i - lo
	}
	if len(out) == 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch releases a batch of previously allocated chunks.
func (h *Handle) FreeBatch(offsets []uint64) {
	for _, off := range offsets {
		h.Free(off)
	}
}

// AllocBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	h := a.pool.Get().(*Handle)
	out := h.AllocBatch(size, n)
	a.pool.Put(h)
	return out
}

// FreeBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) FreeBatch(offsets []uint64) {
	h := a.pool.Get().(*Handle)
	h.FreeBatch(offsets)
	a.pool.Put(h)
}
