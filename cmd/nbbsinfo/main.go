// Command nbbsinfo prints the derived tree geometry and metadata footprint
// of a buddy-system configuration: levels, chunk sizes, node counts, and
// the bytes of metadata each layout (1-level words vs 4-level bunches)
// needs — a capacity-planning and teaching aid.
//
// Example:
//
//	nbbsinfo -total 67108864 -min 8 -max 16384
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/geometry"
)

func main() {
	var (
		total   = flag.Uint64("total", 64<<20, "managed bytes (power of two)")
		minSize = flag.Uint64("min", 8, "allocation unit in bytes (power of two)")
		maxSize = flag.Uint64("max", 16<<10, "maximum request size in bytes (power of two)")
	)
	flag.Parse()

	geo, err := geometry.New(*total, *minSize, *maxSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbbsinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("configuration: total=%d min=%d max=%d\n", geo.Total, geo.MinSize, geo.MaxSize)
	fmt.Printf("tree depth: %d (leaves = allocation units: %d)\n", geo.Depth, geo.Leaves())
	fmt.Printf("max level: %d (climb destination; chunk size %d)\n", geo.MaxLevel, geo.SizeOfLevel(geo.MaxLevel))
	fmt.Printf("tree nodes: %d\n", geo.Nodes()-1)

	fmt.Printf("\n%-6s %14s %14s %10s\n", "level", "chunk bytes", "nodes", "bunchleaf")
	for l := 0; l <= geo.Depth; l++ {
		leaf := ""
		if geo.IsLeafLevel(l) {
			leaf = "yes"
		}
		target := " "
		if l == geo.MaxLevel {
			target = "<- max level"
		}
		fmt.Printf("%-6d %14d %14d %10s %s\n", l, geo.SizeOfLevel(l), geometry.LevelWidth(l), leaf, target)
	}

	// Metadata footprints.
	flatBytes := geo.Nodes() * 4 // one uint32 status word per node
	var words uint64
	for _, lvl := range geo.LeafLevels() {
		words += geometry.WordsAtLevel(lvl)
	}
	bunchBytes := words * 8
	indexBytes := geo.Leaves() * 4
	fmt.Printf("\nmetadata footprint:\n")
	fmt.Printf("  1lvl tree[] : %12d bytes (%.2f%% of managed memory)\n", flatBytes, pct(flatBytes, geo.Total))
	fmt.Printf("  4lvl bunches: %12d bytes (%.2f%% of managed memory, %d words)\n", bunchBytes, pct(bunchBytes, geo.Total), words)
	fmt.Printf("  index[]     : %12d bytes (%.2f%% of managed memory)\n", indexBytes, pct(indexBytes, geo.Total))

	// RMW economics: climb lengths with and without bunches.
	climb1 := geo.Depth - geo.MaxLevel
	climb4 := 0
	for lam := geo.LeafLevelFor(geo.Depth) - geometry.BunchSpan; lam >= geo.LeafLevelFor(geo.MaxLevel); lam -= geometry.BunchSpan {
		climb4++
	}
	fmt.Printf("\nworst-case RMW per allocation (min-size chunk):\n")
	fmt.Printf("  1lvl: %d (reserve + %d climb steps)\n", climb1+1, climb1)
	fmt.Printf("  4lvl: %d (reserve + %d climb steps)\n", climb4+1, climb4)
}

func pct(part, whole uint64) float64 { return float64(part) / float64(whole) * 100 }
