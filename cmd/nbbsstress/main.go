// Command nbbsstress drives any allocator variant with reproducible
// concurrent schedules under runtime verification: every delivered chunk
// is claimed in a unit-granular shadow map, so overlapping allocations
// (paper safety property S1) and unbacked releases (S2) are detected the
// moment they happen. It is the repository's fuzzer: run it long, vary
// seeds, and any safety bug in an allocator becomes a counted incident
// with a reproducible seed.
//
// Examples:
//
//	nbbsstress -variant 4lvl-nb -workers 16 -ops 1000000
//	nbbsstress -variant 1lvl-nb -seeds 50            # 50 seeds, CI-sized runs
//	nbbsstress -all -workers 8                       # every variant once
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/harness"
	"repro/internal/verify"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
	_ "repro/internal/stack"
)

func main() {
	var (
		variant  = flag.String("variant", "4lvl-nb", "allocator variant to stress")
		all      = flag.Bool("all", false, "stress every registered variant")
		workers  = flag.Int("workers", 8, "concurrent goroutines")
		ops      = flag.Int("ops", 200000, "operations per worker per seed")
		seeds    = flag.Int("seeds", 1, "number of seeds to run (seed = base..base+n-1)")
		baseSeed = flag.Uint64("seed", 1, "base seed")
		total    = flag.Uint64("total", 1<<24, "managed bytes")
		minSize  = flag.Uint64("min", 8, "allocation unit")
		maxSize  = flag.Uint64("max", 1<<14, "maximum request size")
		sizesArg = flag.String("sizes", "8,64,512,4096,16384", "request-size mix")
		freeBias = flag.Int("freebias", 40, "percent of steps that free (0-100)")
		maxLive  = flag.Int("maxlive", 64, "per-worker live-chunk cap")
	)
	flag.Parse()

	sizes, err := harness.ParseSizes(*sizesArg)
	if err != nil {
		fatal(err)
	}
	variants := []string{*variant}
	if *all {
		variants = alloc.Names()
	}
	failures := 0
	for _, v := range variants {
		for s := 0; s < *seeds; s++ {
			seed := *baseSeed + uint64(s)
			a, err := alloc.Build(v, alloc.Config{Total: *total, MinSize: *minSize, MaxSize: *maxSize})
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			rep, err := verify.Stress(a, verify.StressConfig{
				Workers:  *workers,
				Ops:      *ops,
				Sizes:    sizes,
				FreeBias: *freeBias,
				MaxLive:  *maxLive,
				Seed:     seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s seed=%-6d %8.2fs  %s\n", v, seed, time.Since(start).Seconds(), rep)
			if rep.Failed() {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "nbbsstress: %d failing runs\n", failures)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbbsstress:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
