package status

// Bunch-word packing for the 4-level optimization (paper §III.D, Figure 7).
// A bunch word is a uint64 holding the 5-bit status of the 8 bunch leaves
// in its low 40 bits: leaf field j occupies bits [5j, 5j+5).

// FieldBits is the width of one packed status field.
const FieldBits = 5

// Field extracts the 5-bit status of leaf field j from a bunch word.
func Field(word uint64, j int) uint32 {
	return uint32(word>>(FieldBits*j)) & Mask
}

// WithField returns word with leaf field j replaced by val.
func WithField(word uint64, j int, val uint32) uint64 {
	shift := FieldBits * j
	return word&^(uint64(Mask)<<shift) | uint64(val&Mask)<<shift
}

// FieldMask returns the mask covering count consecutive fields starting at
// field j.
func FieldMask(j, count int) uint64 {
	var m uint64
	for k := 0; k < count; k++ {
		m |= uint64(Mask) << (FieldBits * (j + k))
	}
	return m
}

// Fill returns count consecutive copies of val starting at field j.
func Fill(j, count int, val uint32) uint64 {
	var m uint64
	for k := 0; k < count; k++ {
		m |= uint64(val&Mask) << (FieldBits * (j + k))
	}
	return m
}

// AnyBusy reports whether any of the count fields starting at j has a Busy
// bit set, i.e. whether the covered node is not free.
func AnyBusy(word uint64, j, count int) bool {
	return word&Fill(j, count, Busy) != 0
}
