// Package proc provides a cheap current-processor hint for per-CPU
// sharded data structures (internal/shard): an index that is stable for
// as long as the calling goroutine stays on the same P and cheap enough
// to query on every allocator operation.
//
// On the gc toolchain the hint is the runtime's own P id, read through a
// momentary procPin/procUnpin pair (the same mechanism sync.Pool uses to
// key its per-P pools). Pinning disables preemption only for the
// nanoseconds between the two calls; no lock, no syscall. The hint is
// advisory by construction — the goroutine can migrate to another P the
// instant after Hint returns — so callers must treat it as a routing
// preference, never as mutual exclusion.
//
// On other toolchains (gccgo, future ports without the linknamed
// runtime entry points) Dynamic is false and Hint degrades to a weak
// stack-address hash; shard owners then fall back to a static assignment
// made at handle-creation time (see internal/shard).
package proc

import "runtime"

// MaxHint returns the exclusive upper bound Hint can currently return:
// GOMAXPROCS on the gc toolchain. Note that GOMAXPROCS can be raised at
// runtime, so consumers sizing arrays by MaxHint must reduce later hints
// modulo their own size.
func MaxHint() int { return runtime.GOMAXPROCS(0) }
