package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestRingOverwriteOldest pins the eviction contract on a single shard:
// a full ring drops the oldest entries, keeps the newest, and Published
// still counts everything ever written.
func TestRingOverwriteOldest(t *testing.T) {
	r := newRing(4, 1)
	for i := uint64(1); i <= 10; i++ {
		r.Publish("src", "ev", i, 0)
	}
	if got := r.Published(); got != 10 {
		t.Fatalf("Published = %d, want 10", got)
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(7 + i); e.Step != want || e.A != want {
			t.Fatalf("event %d = %+v, want step/a %d (oldest four overwritten)", i, e, want)
		}
	}
}

// TestRingUnderfilled: a ring that never wrapped returns exactly what
// was published, in step order.
func TestRingUnderfilled(t *testing.T) {
	r := newRing(8, 1)
	r.Publish("a", "x", 1, 2)
	r.Publish("b", "y", 3, 4)
	ev := r.Events()
	if len(ev) != 2 || ev[0].Source != "a" || ev[1].Source != "b" || ev[0].Step != 1 || ev[1].Step != 2 {
		t.Fatalf("got %+v", ev)
	}
}

// TestRingConcurrentPublish hammers a sharded ring from 8 goroutines
// under the race detector; afterwards the retained steps are unique and
// sorted, and Published equals the total written.
func TestRingConcurrentPublish(t *testing.T) {
	r := newRing(1024, 4)
	const workers = 8
	const per = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Publish("w", "ev", uint64(w), uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Published(); got != workers*per {
		t.Fatalf("Published = %d, want %d", got, workers*per)
	}
	ev := r.Events()
	seen := map[uint64]bool{}
	for i, e := range ev {
		if i > 0 && ev[i-1].Step >= e.Step {
			t.Fatalf("events not in strictly increasing step order at %d", i)
		}
		if seen[e.Step] {
			t.Fatalf("duplicate step %d", e.Step)
		}
		seen[e.Step] = true
	}
}

// TestRingDumpJSON round-trips the dump and pins the empty-ring shape
// to a JSON array (not null) — the contract incident files rely on.
func TestRingDumpJSON(t *testing.T) {
	r := newRing(4, 1)
	var buf bytes.Buffer
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := bytes.TrimSpace(buf.Bytes()); string(got) != "[]" {
		t.Fatalf("empty dump = %q, want []", got)
	}
	r.Publish("elastic", "retire", 3, 0)
	buf.Reset()
	if err := r.DumpJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != (Event{Step: 1, Source: "elastic", Event: "retire", A: 3}) {
		t.Fatalf("round-trip = %+v", back)
	}
}

// TestRingNil: a nil ring is the disabled state — every method is a
// no-op, which is what lets event sources publish unconditionally.
func TestRingNil(t *testing.T) {
	var r *Ring
	r.Publish("x", "y", 0, 0)
	if r.Published() != 0 || r.Events() != nil {
		t.Fatal("nil ring must be inert")
	}
}
