package slab

import (
	"repro/internal/alloc"
)

// magCap is the per-class magazine capacity of a handle; refillBatch is
// how many objects one central take pulls, and spillBatch how many one
// overflow pushes back — half the capacity each, so a worker alternating
// between allocs and frees ping-pongs against the magazine, not the
// central locks.
const (
	magCap      = 64
	refillBatch = 32
	spillBatch  = 32
)

// entry is one magazine slot: the object's offset plus its pre-resolved
// run and slot index. Parking the resolution alongside the offset keeps
// the magazine-hit paths free of run-index loads and slot divisions —
// an Alloc that hits the magazine touches nothing shared but the run's
// own req slot. The run pointer stays valid for as long as the entry is
// parked: a run with objects in a magazine has missing free slots, so it
// can never become fully free and be released.
type entry struct {
	off uint64
	r   *run
	i   uint32
}

// Handle is the per-worker face of the slab layer: class-sized requests
// hit a per-class magazine (no locks), refilled from and spilled to the
// central store in batches; larger requests forward to the wrapped
// per-worker handle. Not safe for concurrent use, like every Handle.
type Handle struct {
	a      *Allocator
	inner  alloc.Handle
	mags   [][]entry // per class; nil slices until first use
	stats  alloc.Stats
	extra  handleExtra
	epoch  uint64
	closed bool
}

// syncDrain catches the handle up with the drain fence: flush every
// magazine holding an offset inside a recorded draining window, so the
// elastic manager's Poll can observe the backing runs empty without
// waiting for a quiescent Scrub.
func (h *Handle) syncDrain(epoch uint64) {
	h.epoch = epoch
	wins := h.a.drainWindows()
	if len(wins) == 0 {
		return
	}
	for ci := range h.mags {
		m := h.mags[ci]
		hit := false
	scan:
		for _, e := range m {
			for lo, hi := range wins {
				if e.off >= lo && e.off < hi {
					hit = true
					break scan
				}
			}
		}
		if hit {
			h.a.putEntries(ci, m)
			h.mags[ci] = m[:0]
			h.extra.drainFlushes++
			h.a.emit("drain-flush", uint64(ci), uint64(len(m)))
		}
	}
}

// checkDrain is the one-atomic-load fast path of the drain fence.
func (h *Handle) checkDrain() {
	if e := h.a.drainEpoch.Load(); e != h.epoch {
		h.syncDrain(e)
	}
}

// Alloc implements alloc.Handle.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	h.checkDrain()
	a := h.a
	if a.cutoff == 0 || size > a.cutoff {
		return a.allocLarge(h.inner, size, &h.stats)
	}
	ci := a.classOf(size)
	m := h.mags[ci]
	if len(m) == 0 {
		m = a.takeEntries(ci, m, refillBatch)
		if len(m) == 0 {
			a.reclaimEmpties()
			m = a.takeEntries(ci, m, refillBatch)
		}
		if len(m) == 0 {
			return a.allocSmall(h.inner, size, &h.stats, &h.extra)
		}
		h.extra.refills++
		h.a.emit("refill", uint64(ci), uint64(len(m)))
	}
	e := m[len(m)-1]
	h.mags[ci] = m[:len(m)-1]
	stamp(e.r, e.i, size, &h.extra)
	h.stats.Allocs++
	return e.off, true
}

// Free implements alloc.Handle.
func (h *Handle) Free(off uint64) {
	h.checkDrain()
	a := h.a
	r := a.runAt(off)
	if r == nil {
		h.inner.Free(off)
		h.stats.Frees++
		return
	}
	i := ownFree(r, off, &h.extra)
	h.stats.Frees++
	m := append(h.mags[r.class], entry{off: off, r: r, i: i})
	if len(m) > magCap {
		n := len(m) - spillBatch
		a.putEntries(r.class, m[n:])
		m = m[:n]
		h.extra.spills++
		a.emit("spill", uint64(r.class), uint64(spillBatch))
	}
	h.mags[r.class] = m
}

// AllocBatch implements alloc.BatchHandle: class-sized batches drain the
// magazine then the central store; larger sizes forward to the wrapped
// handle's native batching.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	h.checkDrain()
	if n <= 0 {
		return nil
	}
	a := h.a
	if a.cutoff == 0 || size > a.cutoff {
		out := alloc.HandleAllocBatch(h.inner, size, n)
		h.stats.Allocs += uint64(len(out))
		if len(out) < n {
			h.stats.AllocFails++
		}
		return out
	}
	ci := a.classOf(size)
	out := make([]uint64, 0, n)
	m := h.mags[ci]
	for len(out) < n && len(m) > 0 {
		e := m[len(m)-1]
		m = m[:len(m)-1]
		stamp(e.r, e.i, size, &h.extra)
		out = append(out, e.off)
	}
	h.mags[ci] = m
	fromMag := len(out)
	if len(out) < n {
		out = a.take(ci, out, n)
	}
	if len(out) < n {
		a.reclaimEmpties()
		out = a.take(ci, out, n)
	}
	for _, off := range out[fromMag:] {
		a.ownAlloc(off, size, &h.extra)
	}
	h.stats.Allocs += uint64(len(out))
	if len(out) < n {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch implements alloc.BatchHandle: slab objects go straight to
// their runs grouped by class (bypassing the magazine — batch frees are
// drain traffic, not hot-loop traffic), pass-through offsets forward to
// the wrapped handle as one batch.
func (h *Handle) FreeBatch(offs []uint64) {
	h.checkDrain()
	a := h.a
	var fwd []uint64
	byClass := map[int][]uint64{}
	for _, off := range offs {
		r := a.runAt(off)
		if r == nil {
			fwd = append(fwd, off)
			continue
		}
		ownFree(r, off, &h.extra)
		byClass[r.class] = append(byClass[r.class], off)
	}
	for ci, group := range byClass {
		a.put(ci, group)
	}
	if len(fwd) > 0 {
		alloc.HandleFreeBatch(h.inner, fwd)
	}
	h.stats.Frees += uint64(len(offs))
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Flush spills every magazine to the central store. Callable by the
// owning goroutine at any time, or by Scrub/Close at quiescent points.
func (h *Handle) Flush() {
	for ci, m := range h.mags {
		if len(m) > 0 {
			h.a.putEntries(ci, m)
			h.mags[ci] = m[:0]
		}
	}
}

// Close implements alloc.HandleCloser: flush the magazines, fold the
// counters into the allocator's retained totals, unregister, and close
// the wrapped handle. The handle must not be used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	h.Flush()
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.stats.Add(h.stats)
	a.closed.extra.add(h.extra)
	a.mu.Unlock()
	alloc.CloseHandle(h.inner)
}
