package linuxbuddy_test

import (
	"testing"

	"repro/internal/alloctest"

	_ "repro/internal/linuxbuddy" // register linux-buddy
)

func TestConformance(t *testing.T) { alloctest.Run(t, "linux-buddy") }
