//go:build !gc

package proc

import "unsafe"

// Dynamic reports whether Hint returns a live processor id; false here:
// this toolchain has no linknamed procPin, so Hint is only a weak
// goroutine-stack hash and shard owners should prefer a static
// assignment made at handle-creation time.
const Dynamic = false

// Hint returns a weak goroutine-scoped hash: goroutine stacks are
// distinct allocations, so shifting away the in-frame bits spreads
// goroutines over small table sizes. Stable only until the runtime moves
// the stack (growth), which is exactly why Dynamic consumers must not
// rely on it for ownership.
func Hint() int {
	var x byte
	return int(uintptr(unsafe.Pointer(&x)) >> 13)
}
