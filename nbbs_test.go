package nbbs_test

import (
	"sync"
	"testing"

	nbbs "repro"
)

var cfg = nbbs.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16}

func TestVariantsAvailable(t *testing.T) {
	want := []string{
		nbbs.Variant1Lvl, nbbs.Variant4Lvl,
		nbbs.Variant1LvlLocked, nbbs.Variant4LvlLocked,
		nbbs.VariantCloudwu, nbbs.VariantLinuxStyle,
	}
	have := map[string]bool{}
	for _, v := range nbbs.Variants() {
		have[v] = true
	}
	for _, v := range want {
		if !have[v] {
			t.Errorf("variant %q not registered", v)
		}
	}
}

func TestDefaultVariant(t *testing.T) {
	b, err := nbbs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Variant() != nbbs.Variant4Lvl {
		t.Fatalf("default variant = %q", b.Variant())
	}
	if b.Total() != cfg.Total || b.MinSize() != cfg.MinSize || b.MaxSize() != cfg.MaxSize {
		t.Fatal("geometry accessors diverge from config")
	}
}

func TestEveryVariantAllocates(t *testing.T) {
	for _, v := range nbbs.Variants() {
		v := v
		t.Run(v, func(t *testing.T) {
			b, err := nbbs.New(cfg, nbbs.WithVariant(v))
			if err != nil {
				t.Fatal(err)
			}
			off, ok := b.Alloc(100)
			if !ok {
				t.Fatal("alloc failed")
			}
			if got := b.ChunkSize(off); got != 128 {
				t.Fatalf("ChunkSize = %d, want 128 (100 rounded up)", got)
			}
			b.Free(off)
		})
	}
}

func TestBadConfigRejected(t *testing.T) {
	if _, err := nbbs.New(nbbs.Config{Total: 1000, MinSize: 8, MaxSize: 64}); err == nil {
		t.Error("non-power-of-two total accepted")
	}
	if _, err := nbbs.New(cfg, nbbs.WithVariant("no-such")); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestMaterializedBytes(t *testing.T) {
	b, err := nbbs.New(cfg, nbbs.WithMaterializedRegion())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Materialized() {
		t.Fatal("region not materialized")
	}
	buf, off, ok := b.AllocBytes(100)
	if !ok {
		t.Fatal("AllocBytes failed")
	}
	if len(buf) != 128 {
		t.Fatalf("AllocBytes window = %d bytes, want the 128-byte chunk", len(buf))
	}
	buf[0], buf[127] = 0xAB, 0xCD
	again := b.Bytes(off)
	if again[0] != 0xAB || again[127] != 0xCD {
		t.Fatal("Bytes window does not alias the allocation")
	}
	b.Free(off)
}

func TestBytesWithoutMaterialization(t *testing.T) {
	b, err := nbbs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := b.Alloc(64)
	if !ok {
		t.Fatal("alloc failed")
	}
	defer b.Free(off)
	defer func() {
		if recover() == nil {
			t.Error("Bytes on an offset-only instance did not panic")
		}
	}()
	b.Bytes(off)
}

func TestHandlesConcurrent(t *testing.T) {
	b, err := nbbs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := b.NewHandle()
			for i := 0; i < 10000; i++ {
				if off, ok := h.Alloc(256); ok {
					h.Free(off)
				}
			}
		}()
	}
	wg.Wait()
	s := b.Stats()
	if s.Allocs != s.Frees || s.Allocs == 0 {
		t.Fatalf("stats = %d allocs / %d frees", s.Allocs, s.Frees)
	}
}

func TestScrubSupport(t *testing.T) {
	for v, want := range map[nbbs.Variant]bool{
		nbbs.Variant1Lvl:       true,
		nbbs.Variant4Lvl:       true,
		nbbs.Variant1LvlLocked: false,
		nbbs.VariantCloudwu:    false,
	} {
		b, err := nbbs.New(cfg, nbbs.WithVariant(v))
		if err != nil {
			t.Fatal(err)
		}
		if got := b.Scrub(); got != want {
			t.Errorf("Scrub() on %s = %v, want %v", v, got, want)
		}
	}
}

func TestCachedHandle(t *testing.T) {
	b, err := nbbs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.NewCachedHandle(8)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := h.Alloc(512)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.Free(off)
	off2, ok := h.Alloc(512)
	if !ok || off2 != off {
		t.Fatalf("magazine miss: got %d, want parked %d", off2, off)
	}
	h.Free(off2)
	h.Flush()
	s := b.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("back-end leaked: %d/%d", s.Allocs, s.Frees)
	}
}

func TestMulti(t *testing.T) {
	m, err := nbbs.NewMulti(nbbs.MultiConfig{Instances: 3, Per: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances() != 3 || m.Total() != 3*cfg.Total {
		t.Fatalf("Instances/Total = %d/%d", m.Instances(), m.Total())
	}
	h := m.NewHandle()
	off, ok := h.Alloc(4096)
	if !ok {
		t.Fatal("alloc failed")
	}
	if inst := m.InstanceOf(off); inst < 0 || inst > 2 {
		t.Fatalf("InstanceOf = %d", inst)
	}
	if got := m.ChunkSize(off); got != 4096 {
		t.Fatalf("ChunkSize through the router = %d, want 4096", got)
	}
	h.Free(off)
	pinned := m.Multi().NewHandleOn(2)
	off2, ok := pinned.Alloc(64)
	if !ok || m.InstanceOf(off2) != 2 {
		t.Fatalf("pinned handle landed on instance %d", m.InstanceOf(off2))
	}
	pinned.Free(off2)
}

// TestElasticFacade drives the elastic capacity manager through the
// public API: explicit Polls grow the fleet under pressure and retire it
// back to the floor once drained.
func TestElasticFacade(t *testing.T) {
	b, err := nbbs.New(cfg,
		nbbs.WithInstances(1),
		nbbs.WithElastic(nbbs.ElasticConfig{MinInstances: 1, MaxInstances: 3, Hysteresis: 1}))
	if err != nil {
		t.Fatal(err)
	}
	mgr := b.Elastic()
	if mgr == nil {
		t.Fatal("Elastic() = nil on a WithElastic stack")
	}
	if b.Instances() != 1 {
		t.Fatalf("initial Instances = %d", b.Instances())
	}
	// Fill past the high watermark, poll, and the fleet grows; the new
	// window widens Total.
	h := b.NewHandle()
	var live []uint64
	for mgr.Utilization() < 0.8 {
		off, ok := h.Alloc(cfg.MaxSize)
		if !ok {
			t.Fatal("alloc failed below capacity")
		}
		live = append(live, off)
	}
	mgr.Poll()
	if b.Instances() != 2 {
		t.Fatalf("Instances after pressured poll = %d, want 2", b.Instances())
	}
	if b.Total() != 2*cfg.Total {
		t.Fatalf("Total after grow = %d, want %d", b.Total(), 2*cfg.Total)
	}
	// Drain and poll the fleet back to the floor.
	for _, off := range live {
		h.Free(off)
	}
	for i := 0; i < 4 && b.Instances() > 1; i++ {
		mgr.Poll()
	}
	if b.Instances() != 1 {
		t.Fatalf("Instances after drained polls = %d, want the floor 1", b.Instances())
	}
	if c := mgr.Counters(); c.Grows == 0 || c.Retires == 0 {
		t.Fatalf("lifecycle counters: %+v", c)
	}
	// Elastic excludes materialized regions (the span grows at runtime).
	if _, err := nbbs.New(cfg,
		nbbs.WithElastic(nbbs.ElasticConfig{}), nbbs.WithMaterializedRegion()); err == nil {
		t.Fatal("elastic+materialize accepted")
	}
}

// TestMaterializedMulti exercises the formerly-rejected composition:
// materialized regions over a multi-instance router.
func TestMaterializedMulti(t *testing.T) {
	m, err := nbbs.NewMulti(nbbs.MultiConfig{Instances: 2, Per: cfg}, nbbs.WithMaterializedRegion())
	if err != nil {
		t.Fatalf("materialized multi rejected: %v", err)
	}
	if !m.Materialized() {
		t.Fatal("not materialized")
	}
	// Pin a handle to instance 1 so the global offset exceeds the
	// per-instance span, proving Bytes routes across sub-arenas.
	h := m.Multi().NewHandleOn(1)
	off, ok := h.Alloc(128)
	if !ok {
		t.Fatal("alloc failed")
	}
	if off < cfg.Total {
		t.Fatalf("pinned alloc offset %d inside instance 0's window", off)
	}
	buf := m.Bytes(off)
	if len(buf) != 128 {
		t.Fatalf("window = %d bytes, want 128", len(buf))
	}
	buf[0], buf[127] = 0xEE, 0xFF
	again := m.Bytes(off)
	if again[0] != 0xEE || again[127] != 0xFF {
		t.Fatal("window does not alias the sub-arena")
	}
	h.Free(off)
}

// TestComposedStackEndToEnd drives the full production composition the
// paper's conclusions call for: caching front-end + 4-instance router +
// materialized region, end to end through AllocBytes.
func TestComposedStackEndToEnd(t *testing.T) {
	b, err := nbbs.New(cfg,
		nbbs.WithInstances(4),
		nbbs.WithFrontend(8),
		nbbs.WithMaterializedRegion())
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "mat+cached+multi[4x 4lvl-nb]" {
		t.Fatalf("Name = %q", b.Name())
	}
	if b.Total() != 4*cfg.Total {
		t.Fatalf("Total = %d, want global span %d", b.Total(), 4*cfg.Total)
	}
	buf, off, ok := b.AllocBytes(100)
	if !ok {
		t.Fatal("AllocBytes through the stack failed")
	}
	if len(buf) != 128 {
		t.Fatalf("window = %d bytes, want 128", len(buf))
	}
	buf[0] = 0xAB
	if b.Bytes(off)[0] != 0xAB {
		t.Fatal("window does not alias the arena")
	}
	b.Free(off)

	// Concurrent caching handles through the full stack.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := b.NewHandle()
			for i := 0; i < 3000; i++ {
				if off, ok := h.Alloc(256); ok {
					b.Bytes(off)[0] = 1
					h.Free(off)
				}
			}
		}()
	}
	wg.Wait()
	if !b.Scrub() { // flush magazines, scrub leaves
		t.Fatal("non-blocking leaves should scrub")
	}
	layers := b.LayerStats()
	if len(layers) != 4 { // mat, cached, multi, leaf fleet
		t.Fatalf("LayerStats = %d entries, want 4", len(layers))
	}
	if layers[0].Layer != "mat" || layers[1].Layer != "cached" {
		t.Fatalf("layer order = %q, %q", layers[0].Layer, layers[1].Layer)
	}
	front := layers[1].Stats
	if front.Allocs == 0 || front.Allocs != front.Frees {
		t.Fatalf("front-end layer stats = %d allocs / %d frees", front.Allocs, front.Frees)
	}
	if layers[1].Extra["hits"] == 0 {
		t.Fatal("magazines absorbed no traffic")
	}
	// After Scrub flushed the magazines, the back-end must balance too.
	back := layers[3].Stats
	if back.Allocs != back.Frees {
		t.Fatalf("back-end leaked: %d allocs vs %d frees", back.Allocs, back.Frees)
	}
}

// TestDepotStackEndToEnd drives the depot-backed production composition
// through the facade: O(1) magazine exchanges between workers, bulk
// alloc/free through the batched contract, depot counters via
// DepotStats and LayerStats, and full reclamation on Scrub.
func TestDepotStackEndToEnd(t *testing.T) {
	b, err := nbbs.New(cfg,
		nbbs.WithInstances(4),
		nbbs.WithFrontend(8),
		nbbs.WithDepot(0))
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "depot+multi[4x 4lvl-nb]" {
		t.Fatalf("Name = %q", b.Name())
	}

	// Bulk contract through the whole stack.
	batch := b.AllocBatch(256, 100)
	if len(batch) != 100 {
		t.Fatalf("AllocBatch delivered %d chunks, want 100", len(batch))
	}
	seen := map[uint64]bool{}
	for _, off := range batch {
		if seen[off] {
			t.Fatalf("chunk %#x delivered twice", off)
		}
		seen[off] = true
		if got := b.ChunkSize(off); got != 256 {
			t.Fatalf("ChunkSize(%#x) = %d, want 256", off, got)
		}
	}
	b.FreeBatch(batch)

	// A producer/consumer pair across handles exercises the depot
	// exchange path: the consumer frees what the producer allocated.
	producer, consumer := b.NewHandle(), b.NewHandle()
	ring := make(chan uint64, 256)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20000; i++ {
			if off, ok := producer.Alloc(256); ok {
				ring <- off
			}
		}
		close(ring)
	}()
	go func() {
		defer wg.Done()
		for off := range ring {
			consumer.Free(off)
		}
	}()
	wg.Wait()

	ds, ok := b.DepotStats()
	if !ok {
		t.Fatal("DepotStats not available on a WithDepot stack")
	}
	if ds.FullPushes == 0 || ds.FullPops == 0 {
		t.Fatalf("depot exchanged no magazines: %+v", ds)
	}
	if !b.Scrub() {
		t.Fatal("non-blocking leaves should scrub")
	}
	layers := b.LayerStats()
	if layers[0].Layer != "depot" {
		t.Fatalf("top layer = %q, want depot", layers[0].Layer)
	}
	if layers[0].Extra["depot_retained_chunks"] != 0 {
		t.Fatalf("depot retained %d chunks after Scrub", layers[0].Extra["depot_retained_chunks"])
	}
	back := layers[2].Stats
	if back.Allocs != back.Frees {
		t.Fatalf("back-end leaked: %d allocs vs %d frees", back.Allocs, back.Frees)
	}
}

// TestTraceLayer records every handle operation through a composed stack
// (replay itself is covered by the trace package's own tests).
func TestTraceLayer(t *testing.T) {
	var tr nbbs.Trace
	b, err := nbbs.New(cfg, nbbs.WithTrace(&tr), nbbs.WithFrontend(8))
	if err != nil {
		t.Fatal(err)
	}
	h := b.NewHandle()
	var live []uint64
	for i := 0; i < 100; i++ {
		if off, ok := h.Alloc(64 << (i % 3)); ok {
			live = append(live, off)
		}
		if len(live) > 4 {
			h.Free(live[0])
			live = live[1:]
		}
	}
	for _, off := range live {
		h.Free(off)
	}
	if len(tr.Ops) != 200 {
		t.Fatalf("trace recorded %d ops, want 200", len(tr.Ops))
	}
}

func TestConfigGeometry(t *testing.T) {
	depth, maxLevel, err := cfg.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	if depth != 14 || maxLevel != 4 {
		t.Fatalf("Geometry = depth %d maxLevel %d, want 14/4", depth, maxLevel)
	}
	if _, _, err := (nbbs.Config{Total: 3}).Geometry(); err == nil {
		t.Error("bad geometry accepted")
	}
}

// TestMappedMemoryFacade drives the mapped backing through the public
// API: WithMappedMemory + WithElastic + WithMaterializedRegion builds
// (the arena borrows the router's lifecycle-following region), the
// commit accounting is exposed, and a retire visibly decommits.
func TestMappedMemoryFacade(t *testing.T) {
	b, err := nbbs.New(cfg,
		nbbs.WithInstances(2),
		nbbs.WithElastic(nbbs.ElasticConfig{MinInstances: 1, MaxInstances: 2, Hysteresis: 1}),
		nbbs.WithMappedMemory(),
		nbbs.WithMaterializedRegion(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Mapped() || b.Memory() == nil {
		t.Fatal("stack does not report its mapped backing")
	}
	ms, ok := b.MemStats()
	if !ok || ms.CommittedBytes != 2*cfg.Total {
		t.Fatalf("MemStats = %+v/%v, want both windows committed", ms, ok)
	}
	// Materialized bytes work over the mapped region.
	buf, off, ok := b.AllocBytes(256)
	if !ok {
		t.Fatal("AllocBytes failed")
	}
	buf[0] = 0xEE
	if b.Bytes(off)[0] != 0xEE {
		t.Fatal("mapped window does not alias")
	}
	b.Free(off)
	// An idle poll retires one instance and decommits its window.
	b.Elastic().Poll()
	b.Elastic().Poll()
	if b.Instances() != 1 {
		t.Fatalf("Instances = %d after idle polls, want 1", b.Instances())
	}
	ms, _ = b.MemStats()
	if ms.CommittedBytes != cfg.Total || ms.Decommits != 1 {
		t.Fatalf("after retire: %+v, want one decommitted window", ms)
	}
	committed := 0
	for _, c := range b.Memory().CommitMap() {
		if c {
			committed++
		}
	}
	if committed != 1 {
		t.Fatalf("commit map shows %d committed windows, want 1", committed)
	}
}

func TestShardingFacade(t *testing.T) {
	b, err := nbbs.New(cfg,
		nbbs.WithInstances(2),
		nbbs.WithElastic(nbbs.ElasticConfig{MinInstances: 1, MaxInstances: 4, Hysteresis: 1}),
		nbbs.WithMappedMemory(),
		nbbs.WithSharding(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	sh := b.Sharded()
	if sh == nil {
		t.Fatal("stack does not report its shard layer")
	}
	if sh.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", sh.Shards())
	}
	h := b.NewHandle()
	off, ok := h.Alloc(256)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.Free(off)
	got, ok := h.Alloc(256)
	if !ok {
		t.Fatal("recycle alloc failed")
	}
	if got != off {
		t.Fatalf("shard cache did not recycle: %d != %d", got, off)
	}
	h.Free(got)
	if tot := sh.Totals(); tot.Hits == 0 {
		t.Fatalf("no cache hits recorded: %+v", tot)
	}
	// The shard layer reports itself in LayerStats, above the manager.
	ls := b.LayerStats()
	if len(ls) < 3 {
		t.Fatalf("expected shard + elastic + router entries, got %d", len(ls))
	}
	if ls[0].Layer != "shard[2]" {
		t.Fatalf("top layer %q, want shard[2]", ls[0].Layer)
	}
	// A chunk parked in a shard cache keeps its slot live; the elastic
	// drain hook flushes it so retirement still completes.
	off2, _ := h.Alloc(512)
	h.Free(off2) // parked, not tree-freed
	b.Elastic().Poll()
	b.Elastic().Poll()
	if n := b.Instances(); n != 1 {
		t.Fatalf("Instances = %d after idle polls, want 1 (drain hook must flush shard caches)", n)
	}
	b.Scrub()
	if tot := sh.Totals(); tot.CachedNow != 0 || tot.StashedNow != 0 {
		t.Fatalf("Scrub left parked chunks: %+v", tot)
	}
}
