package bunch

import (
	"testing"

	"repro/internal/geometry"
	"repro/internal/status"
)

func mustNew(t testing.TB, total, minSize, maxSize uint64, opts ...Option) *Allocator {
	t.Helper()
	a, err := New(total, minSize, maxSize, opts...)
	if err != nil {
		t.Fatalf("New(%d,%d,%d): %v", total, minSize, maxSize, err)
	}
	return a
}

// TestInteriorNodeOccupiesCoveredFields pins the §III.D rule: reserving a
// node above a bunch-leaf level writes BUSY into all covered leaf fields
// of one word, atomically.
func TestInteriorNodeOccupiesCoveredFields(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter()) // depth 7, materialized {7,3}
	h := a.newHandle()
	off, ok := h.Alloc(256) // level 2: covers leaves 8,9 at level 3
	if !ok || off != 0 {
		t.Fatalf("alloc = (%d,%v)", off, ok)
	}
	word, field, count, lam := a.nodeWord(4)
	if lam != 3 || field != 0 || count != 2 {
		t.Fatalf("nodeWord(4) = field %d count %d lam %d", field, count, lam)
	}
	w := word.Load()
	for j := 0; j < 8; j++ {
		got := status.Field(w, j)
		if j < 2 && got != status.Busy {
			t.Fatalf("covered field %d = %s, want BUSY", j, status.String(got))
		}
		if j >= 2 && got != 0 {
			t.Fatalf("uncovered field %d = %s, want clear", j, status.String(got))
		}
	}
	h.Free(off)
	if w := word.Load(); w != 0 {
		t.Fatalf("word not clear after free: %#x", w)
	}
}

// TestClimbMarksParentBunchLeaf verifies a minimum-size allocation marks
// the materialized ancestor's field (4 levels up) rather than any interior
// node.
func TestClimbMarksParentBunchLeaf(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter()) // depth 7
	h := a.newHandle()
	off, ok := h.Alloc(8) // leaf node 128 at level 7
	if !ok || off != 0 {
		t.Fatalf("alloc = (%d,%v)", off, ok)
	}
	// The level-7 word holding leaf 128 must have field 0 BUSY.
	leafWord, f := a.wordOf(128, 7)
	if got := status.Field(leafWord.Load(), f); got != status.Busy {
		t.Fatalf("leaf field = %s", status.String(got))
	}
	// The materialized ancestor is node 8 at level 3 (128 >> 4); the climb
	// came from child 16 (level 4, even = left), so OCC_LEFT must be set.
	ancWord, af := a.wordOf(8, 3)
	if got := status.Field(ancWord.Load(), af); got != status.OccLeft {
		t.Fatalf("ancestor field = %s, want OL", status.String(got))
	}
	h.Free(off)
	if got := status.Field(ancWord.Load(), af); got != 0 {
		t.Fatalf("ancestor field = %s after free", status.String(got))
	}
}

// TestRollbackOnOccupiedAncestor forces the abort path across words.
func TestRollbackOnOccupiedAncestor(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter())
	h := a.newHandle()
	half, ok := h.Alloc(512) // node 2 at level 1: covers leaves 16..19... level 1 -> lam 3, leaves 4 fields
	if !ok || half != 0 {
		t.Fatalf("half alloc = (%d,%v)", half, ok)
	}
	small, ok := h.Alloc(8)
	if !ok {
		t.Fatal("small alloc failed")
	}
	if small < 512 {
		t.Fatalf("small alloc at %d under the occupied half", small)
	}
	if h.stats.Retries == 0 {
		t.Fatal("no retry recorded")
	}
	h.Free(small)
	h.Free(half)
	for i := range a.words {
		if w := a.words[i].Load(); w != 0 {
			t.Fatalf("word %d dirty after drain: %#x", i, w)
		}
	}
}

// TestAllDepthResidues exercises every depth mod 4 (partial top bunches,
// single-node trees) with a fill/drain/refill cycle.
func TestAllDepthResidues(t *testing.T) {
	for depth := 0; depth <= 9; depth++ {
		total := uint64(8) << depth
		a := mustNew(t, total, 8, total)
		var offs []uint64
		for {
			off, ok := a.Alloc(8)
			if !ok {
				break
			}
			offs = append(offs, off)
		}
		if len(offs) != 1<<depth {
			t.Fatalf("depth %d: filled %d units, want %d", depth, len(offs), 1<<depth)
		}
		for _, off := range offs {
			a.Free(off)
		}
		if off, ok := a.Alloc(total); !ok || off != 0 {
			t.Fatalf("depth %d: whole-region alloc after drain = (%d,%v)", depth, off, ok)
		}
		a.Free(0)
	}
}

// TestDerivedArrest pins the in-word buddy derivation used by release
// climbs: occupied-and-not-coalescing buddy halves arrest, coalescing ones
// do not.
func TestDerivedArrest(t *testing.T) {
	// Field 1 busy, buddy of field 0 at the bottom derived level.
	w := status.WithField(0, 1, status.Occ)
	if !derivedArrest(w, 0, 1) {
		t.Fatal("busy sibling field must arrest")
	}
	// Same, but the buddy is also coalescing: must not arrest.
	w = status.WithField(0, 1, status.Occ|status.CoalLeft)
	if derivedArrest(w, 0, 1) {
		t.Fatal("coalescing buddy must not arrest")
	}
	// Busy cousin two levels up: fields 4..7 half against 0..3.
	w = status.WithField(0, 6, status.OccRight)
	if !derivedArrest(w, 0, 2) {
		t.Fatal("busy upper half must arrest a climb from the lower quarter")
	}
	// Clean word never arrests.
	if derivedArrest(0, 3, 1) {
		t.Fatal("clean word arrested")
	}
	// A node covering the whole word has no in-word buddies.
	if derivedArrest(status.Fill(0, 8, status.Busy), 0, 8) {
		t.Fatal("whole-word node cannot arrest against itself")
	}
}

// TestGeometryAgreement cross-checks nodeWord against the geometry
// package over the whole tree.
func TestGeometryAgreement(t *testing.T) {
	a := mustNew(t, 1<<13, 8, 1<<13) // depth 10, materialized {10,6,2}
	for n := uint64(1); n < a.geo.Nodes(); n++ {
		_, field, count, lam := a.nodeWord(n)
		if want := a.geo.LeafLevelFor(geometry.LevelOf(n)); lam != want {
			t.Fatalf("node %d: lam=%d want %d", n, lam, want)
		}
		first, cnt := a.geo.CoveredLeaves(n)
		if cnt != count {
			t.Fatalf("node %d: count=%d want %d", n, count, cnt)
		}
		_, f := geometry.WordOf(first, lam)
		if f != field {
			t.Fatalf("node %d: field=%d want %d", n, field, f)
		}
	}
}
