package elastic_test

import (
	"errors"
	"syscall"
	"testing"
	"time"

	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/multi"

	_ "repro/internal/core"
)

// faultedManager builds an elastic manager over a region whose lifecycle
// calls route through a fresh injector, with a logical clock the test
// advances by hand so backoff decisions are deterministic.
func faultedManager(t *testing.T, instances int, cfg elastic.Config) (*elastic.Manager, *mem.Region, *fault.Injector, *time.Time) {
	t.Helper()
	m, err := multi.New("4lvl-nb", instances, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(1)
	r, err := mem.New(m.InstanceSpan(), m.Slots(), mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	mgr, err := elastic.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	mgr.SetClock(func() time.Time { return now })
	return mgr, r, in, &now
}

// TestGrowErrorCauseDistinguished is the regression test for the error
// conflation: a commit failure must surface its real cause, and only a
// genuine cap refusal reads as ErrAtCap.
func TestGrowErrorCauseDistinguished(t *testing.T) {
	mgr, r, in, now := faultedManager(t, 2, elastic.Config{MaxInstances: 3})

	in.Set(fault.FailAlways(fault.Commit, syscall.ENOMEM))
	_, err := mgr.Grow()
	if err == nil || !errors.Is(err, syscall.ENOMEM) {
		t.Fatalf("Grow under commit fault = %v, want the ENOMEM cause", err)
	}
	if errors.Is(err, elastic.ErrAtCap) {
		t.Fatalf("environmental failure reported as at-cap: %v", err)
	}
	c := mgr.Counters()
	if c.GrowFailures != 1 || c.DeniedAtCap != 0 {
		t.Fatalf("counters after failed grow: %+v", c)
	}
	if s := r.Stats(); s.CommitFails != 1 {
		t.Fatalf("region stats: %+v", s)
	}

	// Clear the schedule and let the backoff window lapse, then grow to
	// the cap: the refusal is now ErrAtCap, counted separately, with no
	// environmental cause attached.
	in.Clear()
	*now = now.Add(time.Minute)
	if _, err := mgr.Grow(); err != nil {
		t.Fatalf("grow after recovery: %v", err)
	}
	_, err = mgr.Grow()
	if !errors.Is(err, elastic.ErrAtCap) {
		t.Fatalf("Grow at cap = %v, want ErrAtCap", err)
	}
	if errors.Is(err, syscall.ENOMEM) || errors.Is(err, elastic.ErrBackpressure) {
		t.Fatalf("cap refusal carries a stale cause: %v", err)
	}
	c = mgr.Counters()
	if c.DeniedAtCap != 1 || c.GrowFailures != 1 {
		t.Fatalf("counters after cap refusal: %+v", c)
	}
}

// TestPersistentGrowFailureBacksOff pins the no-hot-spin property: under
// a persistent commit failure, repeated grow pressure produces a bounded
// number of syscall attempts (the backoff gate absorbs the rest as
// ErrBackpressure), and Poll neither wedges nor panics.
func TestPersistentGrowFailureBacksOff(t *testing.T) {
	mgr, r, in, now := faultedManager(t, 1, elastic.Config{
		MaxInstances:  4,
		Hysteresis:    1,
		GrowRetryBase: time.Second,
		GrowRetryMax:  8 * time.Second,
	})
	in.Set(fault.FailAlways(fault.Commit, syscall.ENOMEM))

	if _, err := mgr.Grow(); !errors.Is(err, syscall.ENOMEM) {
		t.Fatalf("first grow = %v, want ENOMEM", err)
	}
	// A burst of grow pressure inside the backoff window: every decision
	// is absorbed by the gate, not the environment.
	for i := 0; i < 50; i++ {
		_, err := mgr.Grow()
		if !errors.Is(err, elastic.ErrBackpressure) {
			t.Fatalf("grow %d inside backoff window = %v, want ErrBackpressure", i, err)
		}
		if !errors.Is(err, syscall.ENOMEM) {
			t.Fatalf("backpressure error lost its cause: %v", err)
		}
	}
	if s := r.Stats(); s.CommitFails != 1 {
		t.Fatalf("%d commit attempts under backoff, want 1 (hot-spin)", s.CommitFails)
	}
	c := mgr.Counters()
	if c.GrowFailures != 1 || c.DeniedBackpressure != 50 {
		t.Fatalf("counters under backoff: %+v", c)
	}

	// Poll keeps serving decisions through the failure: utilization is
	// driven over the high watermark so every Poll wants to grow, and the
	// backoff gate must keep syscall attempts far below the Poll count.
	fill(t, mgr, 0.9)
	for i := 0; i < 200; i++ {
		*now = now.Add(50 * time.Millisecond) // 200 polls over 10 virtual seconds
		mgr.Poll()
	}
	c = mgr.Counters()
	if got := r.Stats().CommitFails; got > 8 {
		t.Fatalf("%d commit attempts over 200 polls — backoff not absorbing (counters %+v)", got, c)
	}
	if c.Polls != 200 {
		t.Fatalf("Poll wedged under persistent failure: %+v", c)
	}
	if c.GrowRetries == 0 {
		t.Fatal("backoff never re-attempted the grow")
	}
	// Allocation under failed grow degrades to deny, never panics: fill
	// the remaining capacity and require a clean nil.
	for i := 0; i < 1<<12; i++ {
		if _, ok := mgr.Alloc(per.MaxSize); !ok {
			break
		}
	}
	if _, ok := mgr.Alloc(per.MaxSize); ok {
		t.Fatal("capacity should be exhausted with growth failing")
	}
}

// TestRecoveryAfterFaultsClear pins the recovery contract: once the
// schedule clears and the backoff window elapses, the next Poll grows
// successfully and the counters reconcile.
func TestRecoveryAfterFaultsClear(t *testing.T) {
	mgr, r, in, now := faultedManager(t, 1, elastic.Config{
		MaxInstances:  4,
		Hysteresis:    1,
		GrowRetryBase: time.Second,
		GrowRetryMax:  8 * time.Second,
	})
	in.Set(fault.FailAlways(fault.Commit, syscall.ENOMEM))
	fill(t, mgr, 0.9)
	if act := mgr.Poll(); act.GrowErr == nil {
		t.Fatalf("poll under fault did not record the failure: %+v", act)
	}

	in.Clear()
	*now = now.Add(time.Minute) // well past any backoff window
	act := mgr.Poll()
	if act.Grew < 0 {
		t.Fatalf("poll after faults cleared did not grow: %+v", act)
	}
	if !r.Committed(act.Grew) {
		t.Fatalf("recovered grow left window %d uncommitted", act.Grew)
	}
	c := mgr.Counters()
	if c.Grows != 1 || c.GrowFailures != 1 || c.GrowRetries != 1 {
		t.Fatalf("counters after recovery: %+v", c)
	}
	// The fleet is healthy again: the next failure-free Grow hits the cap
	// path or publishes, never the stale backoff gate.
	if _, err := mgr.Grow(); err != nil && !errors.Is(err, elastic.ErrAtCap) {
		t.Fatalf("grow after recovery = %v", err)
	}
}
