// The pluggable grow/shrink decision seam of the capacity manager.
//
// The manager separates mechanism from policy: Poll owns the lifecycle
// mechanics (retire passes, drain hooks, migration, the grow backoff
// ladder) and delegates the single question "should the fleet change?"
// to a Policy. A policy sees one Observation per step — per-slot
// utilization/live-bytes snapshots plus a monotonic step clock — and
// answers with a typed Decision. The reactive watermark rule the manager
// shipped with is WatermarkPolicy (the default, bit-for-bit the old
// behavior); PredictivePolicy layers an EWMA + slope estimator on top to
// pre-grow ahead of ramps and hold shrink through transient troughs.
package elastic

import "repro/internal/multi"

// DecisionKind enumerates what a policy wants done to the fleet.
type DecisionKind int

const (
	// Hold leaves the instance set as it is.
	Hold DecisionKind = iota
	// GrowOne asks for one more active instance (a reactivated drain or
	// a fresh publish; the manager owns the mechanism and the backoff).
	GrowOne
	// DrainSlot asks to start draining one slot (Decision.Slot; -1 lets
	// the manager pick the least-utilized active slot).
	DrainSlot
)

func (k DecisionKind) String() string {
	switch k {
	case GrowOne:
		return "grow-one"
	case DrainSlot:
		return "drain-slot"
	default:
		return "hold"
	}
}

// Decision is one policy verdict for one observation step.
type Decision struct {
	Kind DecisionKind
	// Slot is the drain victim for DrainSlot (-1 = manager picks the
	// least-utilized active slot); ignored otherwise.
	Slot int
}

// SlotObs is one slot's snapshot inside an Observation.
type SlotObs struct {
	// Slot is the table position (== offset window index).
	Slot int
	// State is the lifecycle state (multi.Active/Draining/Retired).
	State multi.State
	// Live is the slot's delivered, not-yet-freed chunk count.
	Live int64
	// LiveBytes is the reserved bytes of those chunks.
	LiveBytes int64
	// Utilization is LiveBytes over the instance span.
	Utilization float64
}

// Observation is the input of one policy step: the fleet shape, the
// aggregate utilization the watermarks are defined over, per-slot
// snapshots, and a monotonic step clock (the manager's Poll counter —
// policies that reason about time reason in steps, never wall clock, so
// decisions replay deterministically).
type Observation struct {
	// Step is the monotonic observation counter (the Poll count).
	Step uint64
	// Utilization is live bytes over active capacity.
	Utilization float64
	// Active and Published count the slots accepting allocations and the
	// slots occupying table positions (active + draining).
	Active, Published int
	// Floor and Cap are the manager's MinInstances/MaxInstances bounds,
	// so a policy can avoid asking for what the manager must refuse.
	Floor, Cap int
	// Slots holds one snapshot per table slot, retired holes included.
	Slots []SlotObs
}

// LeastUtilizedActive returns the active slot with the fewest live bytes
// (-1 when none) — the canonical drain-victim choice.
func LeastUtilizedActive(o Observation) int {
	victim, best := -1, int64(0)
	for _, s := range o.Slots {
		if s.State != multi.Active {
			continue
		}
		if victim < 0 || s.LiveBytes < best {
			victim, best = s.Slot, s.LiveBytes
		}
	}
	return victim
}

// Policy is the pluggable grow/shrink decision rule. Decide is called
// once per Poll under the manager's decision mutex; implementations may
// keep state between calls (streaks, EWMAs) but must not be shared
// between managers, and must not call back into the manager.
type Policy interface {
	// Name labels the policy for introspection (nbbsinfo, tests).
	Name() string
	// Decide maps one observation to one fleet decision.
	Decide(o Observation) Decision
}

// WatermarkPolicy is the reactive hysteresis rule the manager shipped
// with, extracted verbatim: utilization at or above High for Hysteresis
// consecutive steps asks for one grow; at or below Low for Hysteresis
// consecutive steps asks to drain the least-utilized active slot; any
// step in between resets both streaks.
type WatermarkPolicy struct {
	High, Low  float64
	Hysteresis int

	hiStreak, loStreak int
}

// NewWatermarkPolicy builds the reactive watermark rule. Zero values
// take the manager defaults (DefaultHighWater/LowWater/Hysteresis).
func NewWatermarkPolicy(high, low float64, hysteresis int) *WatermarkPolicy {
	if high <= 0 {
		high = DefaultHighWater
	}
	if low <= 0 {
		low = DefaultLowWater
	}
	if hysteresis <= 0 {
		hysteresis = DefaultHysteresis
	}
	return &WatermarkPolicy{High: high, Low: low, Hysteresis: hysteresis}
}

// Name implements Policy.
func (p *WatermarkPolicy) Name() string { return "watermark" }

// Decide implements Policy.
func (p *WatermarkPolicy) Decide(o Observation) Decision {
	switch {
	case o.Utilization >= p.High:
		p.loStreak = 0
		p.hiStreak++
		if p.hiStreak >= p.Hysteresis {
			p.hiStreak = 0
			return Decision{Kind: GrowOne}
		}
	case o.Utilization <= p.Low:
		p.hiStreak = 0
		p.loStreak++
		if p.loStreak >= p.Hysteresis {
			p.loStreak = 0
			return Decision{Kind: DrainSlot, Slot: LeastUtilizedActive(o)}
		}
	default:
		p.hiStreak, p.loStreak = 0, 0
	}
	return Decision{Kind: Hold, Slot: -1}
}

// Predictive-policy defaults.
const (
	// DefaultPredictiveAlpha smooths the utilization EWMA: high enough
	// to track a ramp within a few steps, low enough that one spike
	// does not read as a trend.
	DefaultPredictiveAlpha = 0.5
	// DefaultPredictiveBeta smooths the slope estimate (the EWMA of the
	// EWMA's own deltas).
	DefaultPredictiveBeta = 0.5
	// DefaultPredictiveHorizon is how many steps ahead the estimator
	// extrapolates when testing the high watermark — the pre-grow lead.
	DefaultPredictiveHorizon = 4.0
	// predictiveDrift is the slope magnitude treated as "flat": a shrink
	// is only considered while the trend is below it, so a trough with
	// pressure already returning is ridden out instead of drained into.
	predictiveDrift = 0.005
)

// PredictiveConfig tunes a PredictivePolicy; zero fields take defaults.
type PredictiveConfig struct {
	// HighWater/LowWater are the same thresholds the watermark rule
	// uses; the predictor tests its extrapolation against High and its
	// smoothed utilization against Low.
	HighWater, LowWater float64
	// Hysteresis is the shrink-side streak (grows are deliberately
	// un-hystereted: the whole point is acting before the ramp peaks,
	// and the slope test already filters one-step spikes).
	Hysteresis int
	// Alpha smooths the utilization EWMA (0 = DefaultPredictiveAlpha).
	Alpha float64
	// Beta smooths the slope estimate (0 = DefaultPredictiveBeta).
	Beta float64
	// Horizon is the extrapolation lead in steps (0 = default).
	Horizon float64
}

// PredictivePolicy is the EWMA + slope estimator: it grows when the
// utilization trend, extrapolated Horizon steps ahead, will cross the
// high watermark — so capacity is published before the burst needs it,
// when the environment is still healthy enough to commit memory — and
// it shrinks only when the smoothed utilization sits below the low
// watermark with a flat-or-falling trend, so a transient trough inside
// a sawtooth does not flap the instance set.
type PredictivePolicy struct {
	cfg PredictiveConfig

	ewma, slope float64
	seeded      bool
	loStreak    int
}

// NewPredictivePolicy builds the EWMA + slope policy.
func NewPredictivePolicy(cfg PredictiveConfig) *PredictivePolicy {
	if cfg.HighWater <= 0 {
		cfg.HighWater = DefaultHighWater
	}
	if cfg.LowWater <= 0 {
		cfg.LowWater = DefaultLowWater
	}
	if cfg.Hysteresis <= 0 {
		cfg.Hysteresis = DefaultHysteresis
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultPredictiveAlpha
	}
	if cfg.Beta <= 0 || cfg.Beta > 1 {
		cfg.Beta = DefaultPredictiveBeta
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = DefaultPredictiveHorizon
	}
	return &PredictivePolicy{cfg: cfg}
}

// Name implements Policy.
func (p *PredictivePolicy) Name() string { return "predictive" }

// State returns the live estimator state (EWMA of utilization and its
// smoothed per-step slope) for introspection — nbbsinfo prints it.
func (p *PredictivePolicy) State() (ewma, slope float64) { return p.ewma, p.slope }

// Decide implements Policy.
func (p *PredictivePolicy) Decide(o Observation) Decision {
	u := o.Utilization
	if !p.seeded {
		p.ewma, p.slope, p.seeded = u, 0, true
	} else {
		prev := p.ewma
		p.ewma += p.cfg.Alpha * (u - p.ewma)
		p.slope += p.cfg.Beta * ((p.ewma - prev) - p.slope)
	}
	predicted := p.ewma + p.slope*p.cfg.Horizon
	if u >= p.cfg.HighWater || predicted >= p.cfg.HighWater {
		p.loStreak = 0
		return Decision{Kind: GrowOne}
	}
	if p.ewma <= p.cfg.LowWater && p.slope <= predictiveDrift {
		p.loStreak++
		if p.loStreak >= p.cfg.Hysteresis {
			p.loStreak = 0
			return Decision{Kind: DrainSlot, Slot: LeastUtilizedActive(o)}
		}
		return Decision{Kind: Hold, Slot: -1}
	}
	p.loStreak = 0
	return Decision{Kind: Hold, Slot: -1}
}
