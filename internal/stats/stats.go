// Package stats provides the small statistical and unit-conversion helpers
// the benchmark harness reports with: repetition summaries and the nominal
// clock-cycle conversion used to present Figure 12 in the paper's unit.
package stats

import (
	"math"
	"time"
)

// Summary condenses repeated measurements of one experiment cell.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	Std  float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var sq float64
		for _, v := range samples {
			d := v - s.Mean
			sq += d * d
		}
		s.Std = math.Sqrt(sq / float64(s.N-1))
	}
	return s
}

// Cycles converts a duration to nominal clock cycles at the given clock
// rate in GHz. The paper's Figure 12 reports rdtsc cycle counts on a 2 GHz
// Opteron; reporting our wall time in the same unit keeps the axes
// comparable without pretending to cycle-accurate measurement.
func Cycles(d time.Duration, ghz float64) float64 {
	return d.Seconds() * ghz * 1e9
}

// Speedup returns how much faster b is than a (a/b), e.g. 2.0 when b takes
// half the time of a.
func Speedup(a, b time.Duration) float64 {
	if b <= 0 {
		return math.Inf(1)
	}
	return float64(a) / float64(b)
}

// GainPercent expresses the paper's "performance gain" of fast vs slow:
// (slow-fast)/slow * 100.
func GainPercent(slow, fast float64) float64 {
	if slow == 0 {
		return 0
	}
	return (slow - fast) / slow * 100
}
