// Command nbbsinfo prints the derived tree geometry and metadata footprint
// of a buddy-system configuration: levels, chunk sizes, node counts, and
// the bytes of metadata each layout (1-level words vs 4-level bunches)
// needs — a capacity-planning and teaching aid.
//
// With -demo-ops it additionally builds a composed allocator stack
// (variant, optional multi-instance router, optional caching front-end,
// optional materialized region), drives a short concurrent workload, and
// reports each layer's counters separately: front-end magazine hits and
// spills, routing fallbacks, back-end RMW/CAS traffic.
//
// Examples:
//
//	nbbsinfo -total 67108864 -min 8 -max 16384
//	nbbsinfo -total 16777216 -min 64 -max 65536 \
//	    -instances 4 -cached -materialize -demo-ops 200000
//	nbbsinfo -instances 4 -depot -demo-ops 200000   # depot_* layer counters
//	nbbsinfo -instances 4 -depot -slab -demo-ops 200000  # per-class slab table
//	nbbsinfo -instances 2 -elastic -elastic-max 4 -demo-ops 400000
//	    # watermark config, per-instance utilization, lifecycle counters
//	nbbsinfo -instances 2 -elastic -elastic-max 4 -mem -demo-ops 400000
//	    # mapped windows: per-slot commit map and commit/decommit totals
//	nbbsinfo -instances 2 -elastic -mem -latency -events -demo-ops 400000
//	    # per-layer latency percentile table and the flight-recorder dump
//	nbbsinfo -instances 2 -elastic -elastic-policy predictive \
//	    -elastic-migrate -mem -demo-ops 400000
//	    # EWMA/slope estimator state, the live-chunk migration showcase,
//	    # per-slot drain ages and time-to-retire
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	nbbs "repro"
	"repro/internal/geometry"
	"repro/internal/multi"
)

func main() {
	var (
		total       = flag.Uint64("total", 64<<20, "managed bytes (power of two; per instance with -instances)")
		minSize     = flag.Uint64("min", 8, "allocation unit in bytes (power of two)")
		maxSize     = flag.Uint64("max", 16<<10, "maximum request size in bytes (power of two)")
		variant     = flag.String("variant", nbbs.Variant4Lvl, "allocator variant for -demo-ops")
		instances   = flag.Int("instances", 1, "back-end instances (multi-instance router layer)")
		cached      = flag.Bool("cached", false, "layer the caching front-end over the back-end")
		magazine    = flag.Int("magazine", 0, "front-end per-class magazine capacity (0 = default)")
		depot       = flag.Bool("depot", false, "attach the shared magazine depot to the front-end (implies -cached)")
		slabFlag    = flag.Bool("slab", false, "layer the size-class slab over the stack (prints the per-class run/occupancy table)")
		slabCutoff  = flag.Uint64("slab-cutoff", 0, "largest slab class in bytes (0 = default, clamped to the geometry)")
		materialize = flag.Bool("materialize", false, "back the offset space with real memory")
		mapped      = flag.Bool("mem", false, "back instance windows with mapped memory following the slot lifecycle (prints the commit map)")
		sharded     = flag.Bool("shard", false, "layer per-CPU sharded routing over the router (prints per-shard counters; with -mem, the window NUMA-node map)")
		shards      = flag.Int("shards", 0, "shard count for -shard (0 = GOMAXPROCS)")
		elastic     = flag.Bool("elastic", false, "wrap the router with the elastic capacity manager (demo polls it in the background)")
		elasticMin  = flag.Int("elastic-min", 1, "elastic instance floor")
		elasticMax  = flag.Int("elastic-max", 0, "elastic instance cap (0 = twice the initial instances)")
		elasticPol  = flag.String("elastic-policy", "watermark", "elastic decision rule: watermark | predictive")
		elasticMig  = flag.Bool("elastic-migrate", false, "enable live-chunk migration off draining instances")
		demoOps     = flag.Int("demo-ops", 0, "drive this many ops through the stack and report per-layer stats")
		workers     = flag.Int("workers", 8, "worker goroutines for -demo-ops")
		latency     = flag.Bool("latency", false, "enable telemetry and print the per-layer latency percentile table (with -demo-ops)")
		events      = flag.Bool("events", false, "enable telemetry and dump the flight-recorder event ring (with -demo-ops)")
	)
	flag.Parse()

	geo, err := geometry.New(*total, *minSize, *maxSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbbsinfo:", err)
		os.Exit(1)
	}
	fmt.Printf("configuration: total=%d min=%d max=%d\n", geo.Total, geo.MinSize, geo.MaxSize)
	fmt.Printf("tree depth: %d (leaves = allocation units: %d)\n", geo.Depth, geo.Leaves())
	fmt.Printf("max level: %d (climb destination; chunk size %d)\n", geo.MaxLevel, geo.SizeOfLevel(geo.MaxLevel))
	fmt.Printf("tree nodes: %d\n", geo.Nodes()-1)

	fmt.Printf("\n%-6s %14s %14s %10s\n", "level", "chunk bytes", "nodes", "bunchleaf")
	for l := 0; l <= geo.Depth; l++ {
		leaf := ""
		if geo.IsLeafLevel(l) {
			leaf = "yes"
		}
		target := " "
		if l == geo.MaxLevel {
			target = "<- max level"
		}
		fmt.Printf("%-6d %14d %14d %10s %s\n", l, geo.SizeOfLevel(l), geometry.LevelWidth(l), leaf, target)
	}

	// Metadata footprints.
	flatBytes := geo.StatusWords() * 8 // one status byte per node, word-packed
	var words uint64
	for _, lvl := range geo.LeafLevels() {
		words += geometry.WordsAtLevel(lvl)
	}
	bunchBytes := words * 8
	indexBytes := geo.Leaves() * 4
	fmt.Printf("\nmetadata footprint:\n")
	fmt.Printf("  1lvl tree[] : %12d bytes (%.2f%% of managed memory, %d words)\n", flatBytes, pct(flatBytes, geo.Total), geo.StatusWords())
	fmt.Printf("  4lvl bunches: %12d bytes (%.2f%% of managed memory, %d words)\n", bunchBytes, pct(bunchBytes, geo.Total), words)
	fmt.Printf("  index[]     : %12d bytes (%.2f%% of managed memory)\n", indexBytes, pct(indexBytes, geo.Total))

	// RMW economics: climb lengths with and without bunches.
	climb1 := geo.Depth - geo.MaxLevel
	climb4 := 0
	for lam := geo.LeafLevelFor(geo.Depth) - geometry.BunchSpan; lam >= geo.LeafLevelFor(geo.MaxLevel); lam -= geometry.BunchSpan {
		climb4++
	}
	fmt.Printf("\nworst-case RMW per allocation (min-size chunk):\n")
	fmt.Printf("  1lvl: %d (reserve + %d climb steps)\n", climb1+1, climb1)
	fmt.Printf("  4lvl: %d (reserve + %d climb steps)\n", climb4+1, climb4)

	if *demoOps > 0 {
		demo(stackConfig{
			cfg:         nbbs.Config{Total: *total, MinSize: *minSize, MaxSize: *maxSize},
			variant:     *variant,
			instances:   *instances,
			cached:      *cached,
			magazine:    *magazine,
			depot:       *depot,
			slab:        *slabFlag,
			slabCutoff:  *slabCutoff,
			materialize: *materialize,
			mapped:      *mapped,
			sharded:     *sharded,
			shards:      *shards,
			elastic:     *elastic,
			elasticMin:  *elasticMin,
			elasticMax:  *elasticMax,
			elasticPol:  *elasticPol,
			elasticMig:  *elasticMig,
			ops:         *demoOps,
			workers:     *workers,
			latency:     *latency,
			events:      *events,
		})
	}
}

type stackConfig struct {
	cfg         nbbs.Config
	variant     string
	instances   int
	cached      bool
	magazine    int
	depot       bool
	slab        bool
	slabCutoff  uint64
	materialize bool
	mapped      bool
	sharded     bool
	shards      int
	elastic     bool
	elasticMin  int
	elasticMax  int
	elasticPol  string
	elasticMig  bool
	ops         int
	workers     int
	latency     bool
	events      bool
}

// demo builds the requested layer stack, drives a short mixed-size
// workload through per-worker handles, and prints each layer's counters.
func demo(sc stackConfig) {
	opts := []nbbs.Option{nbbs.WithVariant(sc.variant)}
	if sc.instances > 1 {
		opts = append(opts, nbbs.WithInstances(sc.instances))
	}
	if sc.elastic {
		ec := nbbs.ElasticConfig{
			MinInstances: sc.elasticMin,
			MaxInstances: sc.elasticMax,
			Migration:    nbbs.MigrationConfig{Enabled: sc.elasticMig},
		}
		switch sc.elasticPol {
		case "", "watermark":
		case "predictive":
			ec.Policy = nbbs.NewPredictivePolicy(nbbs.PredictiveConfig{})
		default:
			fmt.Fprintf(os.Stderr, "nbbsinfo: unknown -elastic-policy %q (watermark | predictive)\n", sc.elasticPol)
			os.Exit(1)
		}
		opts = append(opts, nbbs.WithElastic(ec))
	}
	if sc.cached {
		opts = append(opts, nbbs.WithFrontend(sc.magazine))
	}
	if sc.depot {
		opts = append(opts, nbbs.WithDepot(0))
	}
	if sc.slab {
		opts = append(opts, nbbs.WithSlab(sc.slabCutoff))
	}
	if sc.mapped {
		opts = append(opts, nbbs.WithMappedMemory())
	}
	if sc.sharded {
		opts = append(opts, nbbs.WithSharding(sc.shards))
	}
	if sc.materialize {
		opts = append(opts, nbbs.WithMaterializedRegion())
	}
	if sc.latency || sc.events {
		opts = append(opts, nbbs.WithTelemetry(nbbs.TelemetryConfig{}))
	}
	b, err := nbbs.New(sc.cfg, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nbbsinfo:", err)
		os.Exit(1)
	}

	fmt.Printf("\nstack demo: %s, %d ops over %d workers\n", b.Name(), sc.ops, sc.workers)
	if mgr := b.Elastic(); mgr != nil && !sc.elasticMig {
		// Run the capacity policy in the background while the demo load is
		// on, so the printed lifecycle counters reflect real transitions.
		// With -elastic-migrate the poller stays off during the load: a
		// migrating Poll must not race the workers freeing their held
		// chunks (the quiescence contract) — the migration showcase runs
		// single-threaded after the workers join.
		mgr.Start(500 * time.Microsecond)
		defer mgr.Stop()
	}
	sizes := []uint64{sc.cfg.MinSize, sc.cfg.MinSize * 4, sc.cfg.MinSize * 16, sc.cfg.MaxSize / 2}
	var wg sync.WaitGroup
	for w := 0; w < sc.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := b.NewHandle()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var live []uint64
			for i := 0; i < sc.ops/sc.workers; i++ {
				if off, ok := h.Alloc(sizes[rng.Intn(len(sizes))]); ok {
					if sc.materialize {
						b.Bytes(off)[0] = byte(w) // touch the real memory
					}
					live = append(live, off)
				}
				if len(live) > 16 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	if mgr := b.Elastic(); mgr != nil {
		// Scrub is quiescent-only: the background poller must stop before
		// it, or a concurrent Poll could batch-free depot magazines into
		// the leaves mid-rebuild.
		mgr.Stop()
	}
	b.Scrub()

	fmt.Printf("\nper-layer stats (top-down):\n")
	fmt.Printf("  %-24s %10s %10s %8s %10s %10s  %s\n",
		"layer", "allocs", "frees", "fails", "RMW", "CASfail", "extras")
	for _, layer := range b.LayerStats() {
		keys := make([]string, 0, len(layer.Extra))
		for k := range layer.Extra {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		extras := ""
		for _, k := range keys {
			extras += fmt.Sprintf("%s=%d ", k, layer.Extra[k])
		}
		fmt.Printf("  %-24s %10d %10d %8d %10d %10d  %s\n",
			layer.Layer, layer.Stats.Allocs, layer.Stats.Frees, layer.Stats.AllocFails,
			layer.Stats.RMW, layer.Stats.CASFail, extras)
	}

	if mgr := b.Elastic(); mgr != nil {
		mgr.Poll() // the stack is drained: complete any pending retires
	}
	if reg := b.Telemetry(); reg != nil && sc.latency {
		fmt.Printf("\nlatency percentiles (sampled, top-down, ns):\n")
		fmt.Printf("  %-12s %-12s %10s %8s %8s %8s\n", "boundary", "op", "samples", "p50", "p99", "p999")
		for _, ll := range reg.Latencies() {
			for _, op := range ll.Ops {
				if op.Samples == 0 {
					continue
				}
				fmt.Printf("  %-12s %-12s %10d %8d %8d %8d\n",
					ll.Layer, op.Op, op.Samples, op.P50, op.P99, op.P999)
			}
		}
	}
	if reg := b.Telemetry(); reg != nil && sc.events {
		ev := reg.Ring().Events()
		fmt.Printf("\nflight recorder: %d event(s) retained of %d published (oldest first):\n",
			len(ev), reg.Ring().Published())
		for _, e := range ev {
			fmt.Printf("  step=%-8d %-8s %-16s a=%d b=%d\n", e.Step, e.Source, e.Event, e.A, e.B)
		}
	}
	if sl := b.Slab(); sl != nil {
		fmt.Printf("\nsize-class slab: cutoff=%d run=%d bytes, frag=%d bytes\n",
			sl.Cutoff(), sl.RunBytes(), sl.FragBytes())
		fmt.Printf("  %-10s %12s %8s %10s %10s\n", "class", "objs/run", "runs", "live", "free")
		for _, ci := range sl.ClassInfos() {
			fmt.Printf("  %-10d %12d %8d %10d %10d\n", ci.Size, ci.ObjsPerRun, ci.Runs, ci.Live, ci.Free)
		}
	}
	if sh := b.Sharded(); sh != nil {
		tot := sh.Totals()
		hitPct := 0.0
		if tot.Hits+tot.Misses > 0 {
			hitPct = float64(tot.Hits) / float64(tot.Hits+tot.Misses) * 100
		}
		fmt.Printf("\nper-CPU sharded routing: %d shards (%.1f%% cache hit rate)\n", tot.Shards, hitPct)
		fmt.Printf("  totals: hits=%d misses=%d local_frees=%d remote_frees=%d stash_drains=%d flushed=%d pin_wraps=%d pin_fallbacks=%d\n",
			tot.Hits, tot.Misses, tot.LocalFrees, tot.RemoteFrees, tot.StashDrains, tot.Flushed, tot.PinWraps, tot.PinFallbacks)
		fmt.Printf("  %-6s %10s %10s %12s %13s %13s %10s %8s %8s\n",
			"shard", "hits", "misses", "local frees", "remote frees", "stash drains", "flushed", "cached", "stashed")
		for _, si := range sh.ShardInfos() {
			fmt.Printf("  %-6d %10d %10d %12d %13d %13d %10d %8d %8d\n",
				si.Shard, si.Hits, si.Misses, si.LocalFrees, si.RemoteFrees, si.StashDrains, si.Flushed, si.CachedNow, si.StashedNow)
		}
	}
	if r := b.Memory(); r != nil {
		s := r.Stats()
		backing := "portable fallback (bookkeeping only)"
		if nbbs.MappedBacking() {
			backing = "platform mapped (decommit returns RSS)"
		}
		fmt.Printf("\nmapped memory backing: %s\n", backing)
		fmt.Printf("  windows: %d x %d bytes reserved (%d bytes), %d bytes committed\n",
			r.Windows(), r.WindowSize(), s.ReservedBytes, s.CommittedBytes)
		fmt.Printf("  lifecycle: commits=%d decommits=%d recommits=%d\n",
			s.Commits, s.Decommits, s.Recommits)
		if s.HugeFallbacks+s.BindFailures+s.ReserveFails+s.CommitFails+s.DecommitFails > 0 {
			fmt.Printf("  degradation: huge_fallbacks=%d bind_failures=%d reserve_fails=%d commit_fails=%d decommit_fails=%d\n",
				s.HugeFallbacks, s.BindFailures, s.ReserveFails, s.CommitFails, s.DecommitFails)
		}
		fmt.Printf("  commit map:\n")
		nodes := r.NodeMap()
		for k, committed := range r.CommitMap() {
			state := "decommitted"
			if committed {
				state = "committed"
			}
			node := ""
			if r.NUMAPolicy() && k < len(nodes) {
				if nodes[k] >= 0 {
					node = fmt.Sprintf("  numa-node=%d", nodes[k])
				} else {
					node = "  numa-node=unplaced"
				}
			}
			fmt.Printf("    window %-3d [%#012x, %#012x)  %s%s\n",
				k, uint64(k)*r.WindowSize(), uint64(k+1)*r.WindowSize(), state, node)
		}
		if r.NUMAPolicy() {
			aware := "policy recorded only (single node or no syscalls)"
			if nbbs.NUMABacking() {
				aware = "mbind preferred placement active"
			}
			fmt.Printf("  numa: %d online node(s); %s\n", len(nbbs.NUMANodes()), aware)
		}
	}

	// Migration showcase: strand a few chunks on a slot, drain it, and
	// let the Migrate step move them — everything from this single
	// goroutine (the workers have joined), so the quiescence contract of
	// migration holds by construction.
	if mgr := b.Elastic(); mgr != nil && sc.elasticMig {
		migrationShowcase(b, mgr)
	}

	if mgr := b.Elastic(); mgr != nil {
		cfg := mgr.Config()
		c := mgr.Counters()
		fmt.Printf("\nelastic capacity manager:\n")
		fmt.Printf("  policy: %s\n", mgr.Policy().Name())
		if p, ok := mgr.Policy().(*nbbs.PredictivePolicy); ok {
			ewma, slope := p.State()
			fmt.Printf("  estimator: ewma=%.3f utilization, slope=%+.5f per poll\n", ewma, slope)
		} else {
			fmt.Printf("  watermarks: grow >= %.0f%% utilization, shrink <= %.0f%% (hysteresis %d polls)\n",
				cfg.HighWater*100, cfg.LowWater*100, cfg.Hysteresis)
		}
		fmt.Printf("  fleet bounds: %d..%d instances\n", cfg.MinInstances, cfg.MaxInstances)
		fmt.Printf("  lifecycle: polls=%d grows=%d reactivations=%d drains=%d retires=%d denied_at_cap=%d\n",
			c.Polls, c.Grows, c.Reactivations, c.Drains, c.Retires, c.DeniedAtCap)
		if c.GrowFailures+c.GrowRetries+c.DeniedBackpressure+c.RetireFailures > 0 {
			fmt.Printf("  degradation: grow_failures=%d grow_retries=%d denied_backpressure=%d retire_failures=%d\n",
				c.GrowFailures, c.GrowRetries, c.DeniedBackpressure, c.RetireFailures)
		}
		if cfg.Migration.Enabled {
			fmt.Printf("  migration: moved=%d chunk(s), %d bytes, refused_passes=%d\n",
				c.MigratedChunks, c.MigratedBytes, c.MigrateFails)
			if c.Retires > 0 {
				fmt.Printf("  last retirement: %d poll(s) from drain start\n", c.LastRetirePolls)
			}
		}
		if ages := mgr.DrainAges(); len(ages) > 0 {
			fmt.Printf("  still draining (time-to-retire pending):\n")
			for _, a := range ages {
				fmt.Printf("    slot %-3d draining for %d poll(s), %d live chunk(s)\n", a.Slot, a.Polls, a.Live)
			}
		}
		span := mgr.Router().InstanceSpan()
		fmt.Printf("  per-instance utilization (%d-byte windows):\n", span)
		fmt.Printf("    %-5s %-9s %12s %14s %8s\n", "slot", "state", "live chunks", "live bytes", "util")
		for _, info := range mgr.Router().InstanceInfos() {
			fmt.Printf("    %-5d %-9s %12d %14d %7.1f%%\n",
				info.Slot, info.State, info.Live, info.LiveBytes,
				float64(info.LiveBytes)/float64(span)*100)
		}
	}
}

// migrationShowcase strands a few min-size chunks on a draining slot and
// polls until the Migrate step has moved them and retired the slot. It
// runs on the caller's goroutine only, after the demo workers joined:
// migration requires that no owner frees a chunk concurrently with a
// migrating Poll. The OnMigrate hook rewrites the held offsets — the
// ownership contract every migration-aware owner implements.
func migrationShowcase(b *nbbs.Buddy, mgr *nbbs.ElasticManager) {
	m := b.Multi()
	if m == nil {
		return
	}
	// Make sure a second active slot exists to strand chunks on.
	active := func() (n, highest int) {
		highest = -1
		for _, info := range m.InstanceInfos() {
			if info.State == multi.Active {
				n++
				highest = info.Slot
			}
		}
		return n, highest
	}
	n, victim := active()
	if n < 2 {
		if _, err := mgr.Grow(); err != nil {
			fmt.Printf("\nlive-chunk migration showcase skipped: %v\n", err)
			return
		}
		n, victim = active()
		if n < 2 {
			return
		}
	}
	h := m.NewHandleOn(victim)
	var held []uint64
	for len(held) < 4 {
		off, ok := h.Alloc(b.MinSize())
		if !ok {
			break
		}
		if m.InstanceOf(off) != victim {
			h.Free(off) // fallback landed it elsewhere; not a straggler
			break
		}
		held = append(held, off)
	}
	if len(held) == 0 {
		return
	}
	mgr.OnMigrate(func(oldOff, newOff, _ uint64) {
		for i := range held {
			if held[i] == oldOff {
				held[i] = newOff
			}
		}
	})
	if err := m.StartDrain(victim); err != nil {
		for _, off := range held {
			h.Free(off)
		}
		return
	}
	fmt.Printf("\nlive-chunk migration showcase: %d straggler(s) stranded on draining slot %d\n",
		len(held), victim)
	for i := 0; i < 8; i++ {
		act := mgr.Poll()
		if act.Migrated > 0 {
			fmt.Printf("  poll %d moved %d chunk(s) onto active slots\n", i+1, act.Migrated)
		}
		if len(act.Retired) > 0 {
			fmt.Printf("  poll %d retired slot(s) %v — retirement bounded by migration\n", i+1, act.Retired)
			break
		}
	}
	for _, off := range held {
		h.Free(off) // final — possibly rewritten — addresses
	}
}

func pct(part, whole uint64) float64 { return float64(part) / float64(whole) * 100 }
