package stack_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/multi"
	"repro/internal/stack"
	"repro/internal/trace"
)

// TestElasticRetireWithIdleParkedWorker is the regression test for the
// magazine-stall bug: a worker handle parks chunks from a draining
// instance's window in its front-end magazines and then goes idle (but
// stays alive). Before the drain fence, those parked chunks kept the
// victim's live count above zero forever — retirement only completed
// after a quiescent Scrub. With the fence, the worker's next operation
// (any operation, on any window) flushes the overlapping magazines, and
// the following Poll retires the slot. No Scrub anywhere in this test.
func TestElasticRetireWithIdleParkedWorker(t *testing.T) {
	t.Parallel()
	st, err := stack.Build(stack.Spec{
		Variant:   "4lvl-nb",
		Per:       alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16},
		Instances: 2,
		Elastic:   &elastic.Config{MinInstances: 1, MaxInstances: 2},
		Depot:     true, Magazine: 8,
	})
	if err != nil {
		t.Fatalf("stack.Build: %v", err)
	}
	span := st.Multi.InstanceSpan()

	const size = 1024
	worker := st.Top.NewHandle()
	offs := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		off, ok := worker.Alloc(size)
		if !ok {
			t.Fatalf("worker alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	victim := int(offs[0] / span)
	for _, off := range offs {
		if int(off/span) != victim {
			t.Fatalf("worker allocations split across instances (%d and %d); the test needs one affine window", victim, off/span)
		}
	}

	// Pin the other slot with more live bytes so the forced Shrink picks
	// the worker's window as the least-utilized victim.
	other := 1 - victim
	pin := st.Multi.NewHandlePreferring(other)
	pinOffs := make([]uint64, 0, 16)
	for i := 0; i < 16; i++ {
		off, ok := pin.Alloc(size)
		if !ok {
			t.Fatalf("pin alloc %d failed", i)
		}
		if int(off/span) != other {
			t.Fatalf("pin allocation landed on slot %d, want %d", off/span, other)
		}
		pinOffs = append(pinOffs, off)
	}

	// Park six of the worker's chunks in its magazine (capacity 8, so
	// nothing spills to the depot) and release the rest through the
	// convenience path, which goes straight down. The victim window now
	// has live chunks held only inside the idle worker's magazines.
	for _, off := range offs[:6] {
		worker.Free(off)
	}
	for _, off := range offs[6:] {
		st.Top.Free(off)
	}

	got, err := st.Elastic.Shrink()
	if err != nil {
		t.Fatalf("Shrink: %v", err)
	}
	if got != victim {
		t.Fatalf("Shrink drained slot %d, want %d", got, victim)
	}

	// The worker is idle: Poll alone must not retire the slot (the
	// parked chunks are still live), and before the fence it never would.
	st.Elastic.Poll()
	if s := st.Multi.InstanceInfos()[victim].State; s != multi.Draining {
		t.Fatalf("slot %d state after idle Poll = %v, want Draining", victim, s)
	}

	// One operation on the worker — an allocation that cannot even be
	// served from the draining window — trips the fence and flushes the
	// parked magazines back down.
	off, ok := worker.Alloc(size)
	if !ok {
		t.Fatal("worker alloc after drain start failed")
	}
	if int(off/span) == victim {
		t.Fatalf("draining slot %d served a new allocation", victim)
	}

	st.Elastic.Poll()
	if s := st.Multi.InstanceInfos()[victim].State; s != multi.Retired {
		t.Fatalf("slot %d state after fence flush + Poll = %v, want Retired", victim, s)
	}

	worker.Free(off)
	for _, o := range pinOffs {
		pin.Free(o)
	}
}

// TestHandleRegistriesStayFlat is the regression test for the
// monotonically-growing handle registries: every layer now implements
// alloc.HandleCloser, so a create/use/close cycle returns each layer's
// registry to its baseline size instead of leaking an entry per worker.
func TestHandleRegistriesStayFlat(t *testing.T) {
	t.Parallel()
	tr := &trace.Trace{}
	st, err := stack.Build(stack.Spec{
		Variant:   "4lvl-nb",
		Per:       alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16},
		Instances: 2,
		Sharded:   true, Shards: 2,
		Depot:  true,
		Slab:   true,
		Record: tr,
	})
	if err != nil {
		t.Fatalf("stack.Build: %v", err)
	}
	leaf, ok := st.Multi.Instance(0).(interface{ Handles() int })
	if !ok {
		t.Fatalf("leaf %s does not expose Handles()", st.Multi.Instance(0).Name())
	}

	cycle := func() {
		h := st.Top.NewHandle()
		defer alloc.CloseHandle(h)
		var offs []uint64
		for _, size := range []uint64{64, 192, 1024, 1 << 15} {
			for i := 0; i < 4; i++ {
				if off, ok := h.Alloc(size); ok {
					offs = append(offs, off)
				}
			}
		}
		for _, off := range offs {
			h.Free(off)
		}
	}

	// One warm-up cycle populates the lazily created shared state
	// (convenience-path pools, per-slot sub-handles), then the baseline
	// is recorded and every further cycle must return to it exactly.
	cycle()
	base := []struct {
		layer string
		count func() int
	}{
		{"slab", st.Slab.Handles},
		{"frontend", st.Frontend.Handles},
		{"shard", st.Shard.Handles},
		{"multi", st.Multi.Handles},
		{"leaf", leaf.Handles},
	}
	want := make([]int, len(base))
	for i, b := range base {
		want[i] = b.count()
	}

	const cycles = 32
	for c := 0; c < cycles; c++ {
		cycle()
		for i, b := range base {
			if got := b.count(); got != want[i] {
				t.Fatalf("cycle %d: %s registry has %d handles, want the baseline %d", c, b.layer, got, want[i])
			}
		}
	}
}
