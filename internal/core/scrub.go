package core

import (
	"repro/internal/geometry"
	"repro/internal/status"
)

// Scrub rebuilds the status tree from the set of live allocations recorded
// in index[]. It exists because the non-blocking release path is allowed
// to stop propagating early when it races with concurrent operations
// (Algorithm 4 returns on a cleared coalescing bit or an occupied buddy),
// which can strand conservative occupied/coalescing markings on nodes
// whose subtrees are in fact free. Such residue never violates safety —
// the stale bits only ever claim MORE occupancy than real — but it can
// make high-level allocations fail on a lightly loaded instance until
// later operations re-clean the path.
//
// Scrub must only be called while no other operation is in flight (a
// maintenance point); it is not part of the paper's algorithm and the
// benchmarks never use it.
func (a *Allocator) Scrub() {
	// Collect the live nodes first: index[] holds the serving node at the
	// head unit of each delivered chunk.
	var live []uint64
	for slot := range a.index {
		if n := a.index[slot].Load(); n != 0 {
			live = append(live, uint64(n))
		}
	}
	for w := range a.tree {
		a.tree[w].Store(0)
	}
	maxLevel := a.geo.MaxLevel
	for _, n := range live {
		a.setRawStatus(n, status.Busy)
		child := n
		for geometry.LevelOf(child) > maxLevel {
			parent := geometry.Parent(child)
			a.setRawStatus(parent, status.Mark(a.rawStatus(parent), child))
			child = parent
		}
	}
}

// LiveNodes returns the number of currently delivered chunks (quiescent
// diagnostic).
func (a *Allocator) LiveNodes() int {
	live := 0
	for slot := range a.index {
		if a.index[slot].Load() != 0 {
			live++
		}
	}
	return live
}
