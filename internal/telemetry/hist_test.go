package telemetry

import (
	"sync"
	"testing"
)

// TestBucketLadder pins the log-linear bucket geometry: every bucket's
// upper edge maps back to itself, edges are strictly increasing, and the
// value just past one bucket's edge lands in the next — the properties
// percentile extraction relies on.
func TestBucketLadder(t *testing.T) {
	prev := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		up := bucketUpper(i)
		if i > 0 && up <= prev {
			t.Fatalf("bucketUpper not increasing at %d: %d <= %d", i, up, prev)
		}
		if got := bucketOf(int64(up)); got != i {
			t.Errorf("bucketOf(bucketUpper(%d)=%d) = %d", i, up, got)
		}
		if i < NumBuckets-1 {
			if got := bucketOf(int64(up + 1)); got != i+1 {
				t.Errorf("bucketOf(%d) = %d, want %d", up+1, got, i+1)
			}
		}
		prev = up
	}
	if got := bucketOf(-5); got != 0 {
		t.Errorf("bucketOf(-5) = %d, want 0 (clamped)", got)
	}
	if got := bucketOf(1 << 62); got != NumBuckets-1 {
		t.Errorf("bucketOf(1<<62) = %d, want top bucket", got)
	}
}

// TestBucketRelativeError checks the ladder's precision claim: from
// bucket 4 up, reporting a bucket's upper edge overstates any sample in
// the bucket by at most 50% (1 significant mantissa bit — the HDR-style
// trade the package documents).
func TestBucketRelativeError(t *testing.T) {
	for i := 4; i < NumBuckets; i++ {
		up := bucketUpper(i)
		lo := bucketUpper(i-1) + 1
		if err := float64(up-lo) / float64(lo); err > 0.5 {
			t.Errorf("bucket %d [%d,%d]: relative width %.2f > 0.5", i, lo, up, err)
		}
	}
}

// TestRecordAndQuantile records a known distribution and checks the
// percentile read-out bounds it from above within one bucket.
func TestRecordAndQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 998; i++ {
		h.Record(100) // bucket upper edge 127
	}
	h.Record(100000) // two tail outliers: they own ranks 999 and 1000,
	h.Record(100000) // so the p999 rank (999) lands on them

	var s Snapshot
	h.AddTo(&s)
	if got := s.Total(); got != 1000 {
		t.Fatalf("Total = %d, want 1000", got)
	}
	if got := s.Quantile(0.50); got != 127 {
		t.Errorf("p50 = %d, want 127 (upper edge of the 100ns bucket)", got)
	}
	if got := s.Quantile(0.99); got != 127 {
		t.Errorf("p99 = %d, want 127 (rank 990 of 1000 is still the bulk)", got)
	}
	p := s.Percentiles()
	if p.P999 < 100000 {
		t.Errorf("p999 = %d, want >= 100000 (the outliers' bucket)", p.P999)
	}
	if got := s.Quantile(1.0); got < 100000 {
		t.Errorf("max = %d, want >= 100000", got)
	}
	if p.P50 != s.Quantile(0.50) || p.P99 != s.Quantile(0.99) {
		t.Errorf("Percentiles() disagrees with Quantile(): %+v", p)
	}
}

// TestSnapshotMerge checks Add is the bucket-wise sum and empty
// snapshots report zero percentiles.
func TestSnapshotMerge(t *testing.T) {
	var a, b Snapshot
	a[3], b[3], b[7] = 2, 3, 5
	a.Add(&b)
	if a[3] != 5 || a[7] != 5 {
		t.Fatalf("Add: got %v", a[:8])
	}
	var empty Snapshot
	if empty.Quantile(0.5) != 0 || (empty.Percentiles() != Percentiles{}) {
		t.Errorf("empty snapshot must report zero percentiles")
	}
}

// TestSeriesConcurrentRecordMergeClose is the race-detector workout the
// single-writer discipline must survive: 8 owner goroutines record into
// their own sets while a reader merges continuously and each owner
// closes its set mid-stream. After the fold, the retained accumulator
// holds every sample exactly once.
func TestSeriesConcurrentRecordMergeClose(t *testing.T) {
	s := &Series{layer: "test"}
	const workers = 8
	const perWorker = 20000

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.Merged() // must not race with Record or close
			}
		}
	}()

	var owners sync.WaitGroup
	for w := 0; w < workers; w++ {
		owners.Add(1)
		go func(w int) {
			defer owners.Done()
			hs := s.newSet()
			for i := 0; i < perWorker; i++ {
				hs.h[OpAlloc].Record(int64(i % 5000))
				if i == perWorker/2 && w%2 == 0 {
					// Half the workers close mid-stream and keep going on a
					// fresh set — the worker-churn shape Close() must absorb.
					s.close(hs)
					hs = s.newSet()
				}
			}
			s.close(hs)
		}(w)
	}
	owners.Wait()
	close(stop)
	readers.Wait()

	merged := s.Merged()
	if got := merged[OpAlloc].Total(); got != workers*perWorker {
		t.Fatalf("retained %d samples, want %d", got, workers*perWorker)
	}
	if merged[OpFree].Total() != 0 {
		t.Fatalf("free histogram polluted")
	}
}
