// Command nbbsstress drives any allocator variant with reproducible
// concurrent schedules under runtime verification: every delivered chunk
// is claimed in a unit-granular shadow map, so overlapping allocations
// (paper safety property S1) and unbacked releases (S2) are detected the
// moment they happen. It is the repository's fuzzer: run it long, vary
// seeds, and any safety bug in an allocator becomes a counted incident
// with a reproducible seed.
//
// With -chaos it runs the other harness instead: the differential
// map-oracle over the mapped elastic composites while a seeded fault
// schedule fails the region's lifecycle syscalls underneath them
// (internal/chaos). Any invariant violation — or a failure to recover
// once the schedule clears — is an incident, and the recorded fault
// schedule is written as a JSON artifact that -chaos-replay reproduces
// exactly.
//
// Examples:
//
//	nbbsstress -variant 4lvl-nb -workers 16 -ops 1000000
//	nbbsstress -variant 1lvl-nb -seeds 50            # 50 seeds, CI-sized runs
//	nbbsstress -all -workers 8                       # every variant once
//	nbbsstress -chaos -seeds 25                      # the CI chaos gate
//	nbbsstress -chaos -chaos-replay chaos-incident-mapped+elastic-7.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/verify"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
	_ "repro/internal/stack"
)

func main() {
	var (
		variant  = flag.String("variant", "4lvl-nb", "allocator variant to stress")
		all      = flag.Bool("all", false, "stress every registered variant")
		workers  = flag.Int("workers", 8, "concurrent goroutines")
		ops      = flag.Int("ops", 200000, "operations per worker per seed")
		seeds    = flag.Int("seeds", 1, "number of seeds to run (seed = base..base+n-1)")
		baseSeed = flag.Uint64("seed", 1, "base seed")
		total    = flag.Uint64("total", 1<<24, "managed bytes")
		minSize  = flag.Uint64("min", 8, "allocation unit")
		maxSize  = flag.Uint64("max", 1<<14, "maximum request size")
		sizesArg = flag.String("sizes", "8,64,512,4096,16384", "request-size mix")
		freeBias = flag.Int("freebias", 40, "percent of steps that free (0-100)")
		maxLive  = flag.Int("maxlive", 64, "per-worker live-chunk cap")

		chaosMode   = flag.Bool("chaos", false, "run the fault-schedule differential harness instead")
		chaosProb   = flag.Float64("chaos-prob", 0.05, "per-syscall fault probability of the chaos schedule")
		chaosReplay = flag.String("chaos-replay", "", "replay a recorded incident schedule (JSON file)")
	)
	flag.Parse()

	if *chaosMode {
		os.Exit(runChaos(*seeds, *baseSeed, *ops, *chaosProb, *chaosReplay))
	}

	sizes, err := harness.ParseSizes(*sizesArg)
	if err != nil {
		fatal(err)
	}
	variants := []string{*variant}
	if *all {
		variants = alloc.Names()
	}
	failures := 0
	for _, v := range variants {
		for s := 0; s < *seeds; s++ {
			seed := *baseSeed + uint64(s)
			a, err := alloc.Build(v, alloc.Config{Total: *total, MinSize: *minSize, MaxSize: *maxSize})
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			rep, err := verify.Stress(a, verify.StressConfig{
				Workers:  *workers,
				Ops:      *ops,
				Sizes:    sizes,
				FreeBias: *freeBias,
				MaxLive:  *maxLive,
				Seed:     seed,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%-12s seed=%-6d %8.2fs  %s\n", v, seed, time.Since(start).Seconds(), rep)
			if rep.Failed() {
				failures++
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "nbbsstress: %d failing runs\n", failures)
		os.Exit(1)
	}
}

// incident is the JSON artifact of a failing chaos run: everything
// needed to reproduce it (-chaos-replay) plus the violations observed.
type incident struct {
	chaos.Report
	ReplayWith string `json:"replay_with"`
}

// runChaos executes the chaos gate: seeds × composites, default-sized
// runs, each run's -ops steps under an active fault schedule. A failing
// run writes its recorded schedule as chaos-incident-<composite>-<seed>.json.
func runChaos(seeds int, baseSeed uint64, ops int, prob float64, replayPath string) int {
	steps := ops
	if steps > 100000 {
		// The chaos oracle is single-threaded and per-step; -ops defaults
		// are sized for the concurrent stress harness.
		steps = 100000
	}
	var replay []fault.Fault
	composites := chaos.Composites()
	if replayPath != "" {
		blob, err := os.ReadFile(replayPath)
		if err != nil {
			fatal(err)
		}
		var inc incident
		if err := json.Unmarshal(blob, &inc); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", replayPath, err))
		}
		replay = inc.Schedule
		composites = []string{inc.Composite}
		baseSeed, seeds, steps = inc.Seed, 1, inc.Steps
	}
	failures := 0
	for _, composite := range composites {
		for s := 0; s < seeds; s++ {
			seed := baseSeed + uint64(s)
			start := time.Now()
			rep := chaos.Run(chaos.Config{
				Composite: composite,
				Seed:      seed,
				Steps:     steps,
				Prob:      prob,
				Replay:    replay,
			})
			status := "ok"
			if !rep.OK() {
				status = "FAIL"
				failures++
				name := fmt.Sprintf("chaos-incident-%s-%d.json", composite, seed)
				blob, _ := json.MarshalIndent(incident{
					Report:     rep,
					ReplayWith: fmt.Sprintf("nbbsstress -chaos -chaos-replay %s", name),
				}, "", "  ")
				if err := os.WriteFile(name, blob, 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "nbbsstress: writing incident %s: %v\n", name, err)
				} else {
					fmt.Fprintf(os.Stderr, "nbbsstress: incident schedule written to %s\n", name)
				}
				for _, v := range rep.Violations {
					fmt.Fprintf(os.Stderr, "nbbsstress:   violation: %s\n", v)
				}
			}
			fmt.Printf("chaos %-22s seed=%-6d %8.2fs  %-4s  ops=%d denied=%d injected=%d mid-drain-kills=%d\n",
				composite, seed, time.Since(start).Seconds(), status,
				rep.Ops, rep.Denied, rep.Injected, rep.MidDrainKills)
			if replayPath != "" {
				// A replay is a post-mortem: dump the flight recorder so the
				// lifecycle leading to the failure reads straight off stdout.
				fmt.Printf("flight recorder (%d events, oldest first):\n", len(rep.Events))
				for _, e := range rep.Events {
					fmt.Printf("  step=%-8d %-8s %-16s a=%d b=%d\n", e.Step, e.Source, e.Event, e.A, e.B)
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "nbbsstress: %d failing chaos runs\n", failures)
		return 1
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbbsstress:", strings.TrimSpace(err.Error()))
	os.Exit(1)
}
