package multi

import (
	"testing"

	"repro/internal/alloc"

	_ "repro/internal/core"
)

// TestSyncTableDropsRetiredSubHandles pins the release semantics of the
// handle sub-caches: once a slot retires and the owner goroutine
// observes the new table, the handle must drop its cached sub-handle so
// the retired instance's metadata is garbage-collectable — the whole
// point of an elastic shrink.
func TestSyncTableDropsRetiredSubHandles(t *testing.T) {
	cfg := alloc.Config{Total: 1 << 12, MinSize: 64, MaxSize: 1 << 10}
	m, err := New("1lvl-nb", 2, cfg, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	h := m.NewHandleOn(1).(*Handle)
	off, ok := h.Alloc(64)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("pinned alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	h.Free(off)
	if h.subs[1] == nil {
		t.Fatal("sub-handle for slot 1 not cached after use")
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	if done, err := m.TryRetire(1); err != nil || !done {
		t.Fatalf("TryRetire = (%v, %v)", done, err)
	}
	// The cache survives until the owner observes the new table...
	if h.subs[1] == nil {
		t.Fatal("sub-handle dropped before the owner observed the table change")
	}
	// ...and the next operation drops it.
	off, ok = h.Alloc(64)
	if !ok {
		t.Fatal("alloc after retire failed")
	}
	h.Free(off)
	if h.subs[1] != nil || h.subIDs[1] != 0 {
		t.Fatalf("retired slot's sub-handle still cached after an op: subIDs[1]=%d", h.subIDs[1])
	}
	// A refilled hole gets a fresh sub-handle keyed by the new id.
	k, err := m.AddInstance()
	if err != nil || k != 1 {
		t.Fatalf("AddInstance = (%d, %v)", k, err)
	}
	h2 := m.NewHandleOn(1).(*Handle)
	off, ok = h2.Alloc(64)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("alloc on refilled hole = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	h2.Free(off)
}
