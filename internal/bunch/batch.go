package bunch

import (
	"repro/internal/geometry"
	"repro/internal/status"
)

// Native alloc.BatchAllocator implementation over the bunch layout; see
// internal/core/batch.go for the rationale. The scan is the same as the
// 1-level variant's batched scan with the bunch-word probe substituted.

// AllocBatch reserves up to n chunks of at least size bytes in one level
// scan, returning their offsets. A short or empty result means the level
// could not serve the remainder; an empty batch counts one AllocFail.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return nil
	}
	out := make([]uint64, 0, n)
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1
	h.seq++
	start := base + h.scatterSlot(level)
	// Advance in word units: snap the bulk scan's start to the first node
	// of its bunch word so every loaded word is consumed from its first
	// in-level field (see the identical alignment in internal/core). A
	// node at this level covers count fields, so a word carries
	// 8/count nodes of the level.
	if _, field, count, _ := h.a.nodeWord(start); field != 0 {
		if aligned := start - uint64(field/count); aligned >= base {
			start = aligned
		}
	}

	for pass := 0; pass < 2 && len(out) < n; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		i := lo
		for i < hi && len(out) < n {
			word, field, count, _ := h.a.nodeWord(i)
			w := word.Load()
			f := status.FirstFreeRun(w, field, count)
			if f == status.LanesPerWord {
				i += uint64((status.LanesPerWord - field) / count)
				continue
			}
			cand := i + uint64((f-field)/count)
			if cand >= hi {
				i = hi
				continue
			}
			failedAt := h.tryAlloc(cand, w)
			if failedAt == 0 {
				offset := geo.OffsetOf(cand)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(cand))
				h.stats.Allocs++
				out = append(out, offset)
				i = cand + 1
				continue
			}
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= cand {
				next = cand + 1
			}
			i = next
		}
		if i > hi {
			i = hi // a subtree skip may overshoot the pass bound
		}
		// Advance the scatter sequence past everything this pass walked
		// (see the identical rover advance in internal/core/batch.go: a
		// +1-per-call rotation would restart every batch inside its own
		// still-live delivery and re-probe it end to end).
		h.seq += i - lo
	}
	if len(out) == 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch releases a batch of previously allocated chunks.
func (h *Handle) FreeBatch(offsets []uint64) {
	for _, off := range offsets {
		h.Free(off)
	}
}

// AllocBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	h := a.pool.Get().(*Handle)
	out := h.AllocBatch(size, n)
	a.pool.Put(h)
	return out
}

// FreeBatch implements alloc.BatchAllocator through a pooled handle.
func (a *Allocator) FreeBatch(offsets []uint64) {
	h := a.pool.Get().(*Handle)
	h.FreeBatch(offsets)
	a.pool.Put(h)
}
