// Command benchdiff compares two nbbsbench -json reports cell by cell and
// prints the per-cell throughput deltas — the tool the CI bench-trajectory
// job uses to relate a fresh measurement to the committed BENCH_pr*.json
// baseline of the previous PR.
//
// Examples:
//
//	benchdiff -baseline BENCH_pr3.json -fresh bench-ci.json
//	benchdiff -baseline BENCH_pr3.json -fresh bench-ci.json -md >> "$GITHUB_STEP_SUMMARY"
//
// The exit status is always 0 when both files parse: trajectory deltas
// are informational (CI boxes differ run to run), the job summary is
// where a human reads them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "committed baseline report (BENCH_pr*.json)")
		fresh    = flag.String("fresh", "", "freshly measured report (nbbsbench -json output)")
		markdown = flag.Bool("md", false, "emit a GitHub-flavoured markdown table")
	)
	flag.Parse()
	if *baseline == "" || *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -baseline and -fresh are required")
		os.Exit(2)
	}
	base, err := harness.LoadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	fr, err := harness.LoadReport(*fresh)
	if err != nil {
		fatal(err)
	}
	baseLabel, freshLabel := base.Label, fr.Label
	if baseLabel == "" {
		baseLabel = *baseline
	}
	if freshLabel == "" {
		freshLabel = *fresh
	}
	harness.WriteDiff(os.Stdout, baseLabel, freshLabel, harness.DiffReports(base, fr), *markdown)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
