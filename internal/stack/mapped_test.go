package stack_test

import (
	"testing"

	"repro/internal/elastic"
	"repro/internal/frontend"
	"repro/internal/stack"
)

// TestMappedSpecValidation pins the composition rules: mapped backing
// lives at the router (Instances >= 1), and the elastic+materialize
// combination — rejected since PR 4 — is admitted exactly when Mapped
// lets the arena borrow the router's lifecycle-following region.
func TestMappedSpecValidation(t *testing.T) {
	if _, err := stack.Build(stack.Spec{Variant: "4lvl-nb", Per: per, Mapped: true}); err == nil {
		t.Fatal("Mapped without the multi router must be rejected")
	}
	if _, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per, Instances: 2,
		Elastic:     &elastic.Config{},
		Materialize: true,
	}); err == nil {
		t.Fatal("Elastic+Materialize without Mapped must still be rejected")
	}
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per, Instances: 2,
		Elastic:     &elastic.Config{},
		Mapped:      true,
		Materialize: true,
	})
	if err != nil {
		t.Fatalf("Elastic+Mapped+Materialize must build: %v", err)
	}
	if st.Mem == nil {
		t.Fatal("mapped stack carries no region")
	}
	if st.Arena.Region() != st.Mem {
		t.Fatal("the arena must borrow the router's region, not allocate its own")
	}
}

// TestMappedElasticMaterializedBytes drives the full new composition:
// byte windows over an elastic fleet whose backing follows the
// commit/decommit lifecycle. Chunks written at the peak survive the
// drain of *other* instances, a retired window decommits, and a
// re-growth recommits it with zeroed, usable bytes.
func TestMappedElasticMaterializedBytes(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per, Instances: 2,
		Elastic: &elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1},
		Mapped:  true, Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr := st.Elastic

	// Write through a materialized window on each instance.
	offs := map[int]uint64{}
	for k := 0; k < 2; k++ {
		h := st.Multi.NewHandleOn(k)
		off, ok := h.Alloc(256)
		if !ok {
			t.Fatalf("alloc on instance %d failed", k)
		}
		offs[k] = off
		buf := st.Arena.Bytes(off)
		for i := range buf {
			buf[i] = byte(0xA0 + k)
		}
	}

	// Free instance 1's chunk and shrink: slot 1 drains, retires, and its
	// window decommits; slot 0's bytes are untouched.
	st.Top.Free(offs[1])
	if _, err := mgr.Shrink(); err != nil {
		t.Fatal(err)
	}
	mgr.Poll()
	if st.Multi.Instances() != 1 {
		t.Fatalf("Instances = %d after shrink, want 1", st.Multi.Instances())
	}
	if st.Mem.Committed(1) {
		t.Fatal("retired slot 1's window is still committed")
	}
	if buf := st.Arena.Bytes(offs[0]); buf[0] != 0xA0 || buf[len(buf)-1] != 0xA0 {
		t.Fatal("surviving instance's bytes were disturbed by the retirement")
	}

	// Bytes on an offset of the retired window must panic, not fault.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Bytes on a retired window did not panic")
			}
		}()
		st.Arena.Bytes(offs[1])
	}()

	// Re-grow into the hole: the window recommits zeroed and serves bytes
	// again.
	k, err := mgr.Grow()
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Fatalf("grow refilled slot %d, want the hole 1", k)
	}
	if s := st.Mem.Stats(); s.Recommits != 1 {
		t.Fatalf("grow into the hole must recommit: %+v", s)
	}
	h := st.Multi.NewHandleOn(1)
	off, ok := h.Alloc(256)
	if !ok {
		t.Fatal("alloc on the regrown instance failed")
	}
	buf := st.Arena.Bytes(off)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("recommitted window handed out non-zero bytes")
		}
	}
	h.Free(off)
	st.Top.Free(offs[0])
}

// TestDepotDrainsBeforeWindowDecommit is the ordering fence end-to-end:
// a draining instance whose chunks idle in the magazine depot cannot
// retire — and therefore cannot decommit — until the drain hook returns
// them, and a chunk pinned outside the depot keeps the window committed
// through any number of polls.
func TestDepotDrainsBeforeWindowDecommit(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per, Instances: 2,
		Elastic:  &elastic.Config{MinInstances: 1, MaxInstances: 2, Hysteresis: 1},
		Depot:    true,
		Magazine: 4,
		Mapped:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, fe, m := st.Elastic, st.Frontend, st.Multi

	// Pin one chunk per instance at the router level (outside the
	// front-end, so no magazine can absorb the free).
	pins := map[int]uint64{}
	for k := 0; k < 2; k++ {
		h := m.NewHandleOn(k)
		off, ok := h.Alloc(per.MinSize)
		if !ok {
			t.Fatalf("pin alloc on instance %d failed", k)
		}
		pins[k] = off
	}

	// Park depot magazines holding instance-0 and instance-1 chunks.
	for k := 0; k < 2; k++ {
		rh := m.NewHandleOn(k)
		var offs []uint64
		for i := 0; i < 12; i++ {
			off, ok := rh.Alloc(128)
			if !ok {
				t.Fatalf("alloc on instance %d failed", k)
			}
			offs = append(offs, off)
		}
		fh := fe.NewHandle().(*frontend.Handle)
		for _, off := range offs {
			fh.Free(off)
		}
		// Leave only depot-parked residency: per-worker magazines are
		// single-owner state the drain hook cannot touch, so they are
		// flushed here (the "worker churns or flushes" path).
		fh.Flush()
	}
	if fe.Depot().Retained() == 0 {
		t.Fatal("setup parked nothing in the depot")
	}

	victim, err := mgr.Shrink()
	if err != nil {
		t.Fatal(err)
	}
	// The Shrink step already ran the drain hook: no chunk of the victim's
	// window may still be parked, yet the pinned chunk blocks retirement,
	// so the window MUST still be committed.
	lo := uint64(victim) * m.InstanceSpan()
	hi := lo + m.InstanceSpan()
	if got := m.InstanceInfos()[victim].Live; got != 1 {
		t.Fatalf("victim live = %d after the depot drain, want just the pin", got)
	}
	for i := 0; i < 3; i++ {
		mgr.Poll()
	}
	if !st.Mem.Committed(victim) {
		t.Fatal("window decommitted while a live chunk still referenced it")
	}
	if c := mgr.Counters(); c.Retires != 0 {
		t.Fatalf("retired with a live pin: %+v", c)
	}

	// Unpin: the next poll retires and decommits.
	m.Free(pins[victim])
	mgr.Poll()
	if st.Mem.Committed(victim) {
		t.Fatal("window still committed after the drained instance retired")
	}
	if s := st.Mem.Stats(); s.Decommits != 1 {
		t.Fatalf("decommit accounting: %+v", s)
	}
	// Nothing of the victim's window survives anywhere in the depot.
	if n := fe.Depot().Retained(); n > 0 {
		for _, mag := range fe.Depot().DrainAll() {
			for _, off := range mag {
				if off >= lo && off < hi {
					t.Fatalf("offset %#x of the decommitted window parked in the depot", off)
				}
			}
		}
	}
}
