// Package alloctest is a reusable conformance suite run against every
// allocator variant of the evaluation. It checks the paper's safety
// properties — S1: a successful allocation returns a non-allocated chunk
// coherent with the requested size; S2: a free releases exactly the memory
// targeted — plus buddy-system behaviours (alignment, split/coalesce,
// exhaustion, misuse detection) both sequentially and under concurrency.
package alloctest

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/alloc"
)

// Run executes the full conformance suite against the registered allocator
// variant with the given evaluation label.
func Run(t *testing.T, name string) {
	t.Helper()
	RunBuilder(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
		t.Helper()
		a, err := alloc.Build(name, alloc.Config{Total: total, MinSize: minSize, MaxSize: maxSize})
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		return a
	})
}

// Builder constructs an allocator for one conformance sub-test. The
// returned allocator's global offset space must be [0, total) — composed
// stacks (multi routers, caching front-ends, arenas) qualify as long as
// their instance spans multiply out to total.
type Builder = func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator

// RunBuilder executes the full conformance suite against allocators the
// builder constructs — the entry point for composed layer stacks, which
// have no registry label of their own.
func RunBuilder(t *testing.T, build Builder) {
	t.Helper()

	t.Run("FillDrainRefill", func(t *testing.T) { testFillDrainRefill(t, build) })
	t.Run("Alignment", func(t *testing.T) { testAlignment(t, build) })
	t.Run("SplitCoalesce", func(t *testing.T) { testSplitCoalesce(t, build) })
	t.Run("MixedSizesNoOverlap", func(t *testing.T) { testMixedSizesNoOverlap(t, build) })
	t.Run("SizeRounding", func(t *testing.T) { testSizeRounding(t, build) })
	t.Run("Oversize", func(t *testing.T) { testOversize(t, build) })
	t.Run("ZeroSize", func(t *testing.T) { testZeroSize(t, build) })
	t.Run("DoubleFreePanics", func(t *testing.T) { testDoubleFreePanics(t, build) })
	t.Run("ForeignFreePanics", func(t *testing.T) { testForeignFreePanics(t, build) })
	t.Run("MinimalGeometry", func(t *testing.T) { testMinimalGeometry(t, build) })
	t.Run("MaxLevelRestriction", func(t *testing.T) { testMaxLevelRestriction(t, build) })
	t.Run("RandomSequentialVsShadow", func(t *testing.T) { testRandomSequentialVsShadow(t, build) })
	t.Run("QuickOpSequences", func(t *testing.T) { testQuickOpSequences(t, build) })
	t.Run("ConcurrentNoOverlap", func(t *testing.T) { testConcurrentNoOverlap(t, build) })
	t.Run("ConcurrentChurnDrain", func(t *testing.T) { testConcurrentChurnDrain(t, build) })
	t.Run("ConcurrentMixedLevels", func(t *testing.T) { testConcurrentMixedLevels(t, build) })
	t.Run("StatsAccounting", func(t *testing.T) { testStatsAccounting(t, build) })
}

type builder = Builder

// Scrubber is implemented by the non-blocking allocators: their release
// path may strand conservative occupied/coalescing markings when racing
// with concurrent operations (the unmark climb stops early by design), and
// Scrub rebuilds the metadata from the live-allocation index at a
// quiescent point. The stale bits only ever claim more occupancy than
// real, so this is a liveness matter, never a safety one. Composed stacks
// forward Scrub inward and use it to release layer-held chunks too — a
// caching front-end flushes its magazines — so a stack that scrubs is a
// stack that fully quiesces.
type Scrubber interface{ Scrub() }

// mustAllocAfterDrain asserts that size is allocatable on a (supposedly)
// fully drained instance. Non-blocking allocators are permitted one Scrub
// to shed benign residue first; an allocator without Scrub must succeed
// directly, and a failure after scrubbing is a real coalescing bug either
// way. The chunk is freed again before returning.
func mustAllocAfterDrain(t *testing.T, a alloc.Allocator, size uint64, context string) {
	t.Helper()
	off, ok := a.Alloc(size)
	if !ok {
		s, canScrub := a.(Scrubber)
		if !canScrub {
			t.Fatalf("%s: alloc(%d) failed after drain", context, size)
		}
		s.Scrub()
		if off, ok = a.Alloc(size); !ok {
			t.Fatalf("%s: alloc(%d) failed after drain even after Scrub", context, size)
		}
	}
	a.Free(off)
}

func testFillDrainRefill(t *testing.T, build builder) {
	a := build(t, 4096, 8, 4096)
	var offs []uint64
	seen := map[uint64]bool{}
	for {
		off, ok := a.Alloc(8)
		if !ok {
			break
		}
		if seen[off] {
			t.Fatalf("offset %d delivered twice", off)
		}
		seen[off] = true
		offs = append(offs, off)
	}
	if len(offs) != 512 {
		t.Fatalf("filled %d units, want 512", len(offs))
	}
	for _, off := range offs {
		a.Free(off)
	}
	if off, ok := a.Alloc(4096); !ok || off != 0 {
		t.Fatalf("whole-region alloc after drain = (%d,%v), want (0,true)", off, ok)
	}
	a.Free(0)
}

func testAlignment(t *testing.T, build builder) {
	a := build(t, 1<<16, 8, 1<<16)
	for _, size := range []uint64{8, 16, 64, 512, 4096, 1 << 14} {
		off, ok := a.Alloc(size)
		if !ok {
			t.Fatalf("alloc(%d) failed on a fresh region slice", size)
		}
		if off%size != 0 {
			t.Errorf("alloc(%d) returned offset %d, not size-aligned (axiom AX2)", size, off)
		}
		if off+size > 1<<16 {
			t.Errorf("alloc(%d) = %d overruns the region", size, off)
		}
		a.Free(off)
	}
}

func testSplitCoalesce(t *testing.T, build builder) {
	a := build(t, 1024, 8, 1024)
	small, ok := a.Alloc(8)
	if !ok {
		t.Fatal("small alloc failed")
	}
	big, ok := a.Alloc(512)
	if !ok {
		t.Fatal("half-region alloc failed alongside an 8-byte chunk")
	}
	if (small < 512) == (big < 512) {
		t.Fatalf("small (%d) and big (%d) landed in the same half", small, big)
	}
	if _, ok := a.Alloc(1024); ok {
		t.Fatal("whole-region alloc succeeded while fragmented")
	}
	a.Free(small)
	a.Free(big)
	if _, ok := a.Alloc(1024); !ok {
		t.Fatal("whole-region alloc failed after frees: buddies did not coalesce")
	}
}

func testMixedSizesNoOverlap(t *testing.T, build builder) {
	a := build(t, 1<<16, 8, 1<<13)
	type chunk struct{ off, size uint64 }
	var live []chunk
	for _, size := range []uint64{8, 8, 128, 1024, 8192, 64, 64, 2048, 8, 512} {
		off, ok := a.Alloc(size)
		if !ok {
			t.Fatalf("alloc(%d) failed", size)
		}
		for _, c := range live {
			if off < c.off+c.size && c.off < off+size {
				t.Fatalf("chunk [%d,%d) overlaps live chunk [%d,%d)", off, off+size, c.off, c.off+c.size)
			}
		}
		live = append(live, chunk{off, size})
	}
	for _, c := range live {
		a.Free(c.off)
	}
}

func testSizeRounding(t *testing.T, build builder) {
	a := build(t, 1024, 8, 1024)
	// A 3-byte request must consume a full allocation unit.
	off1, ok1 := a.Alloc(3)
	off2, ok2 := a.Alloc(5)
	if !ok1 || !ok2 {
		t.Fatal("sub-unit allocs failed")
	}
	if off1 == off2 {
		t.Fatal("two sub-unit allocs shared one unit")
	}
	a.Free(off1)
	a.Free(off2)
	// A 9-byte request rounds to 16.
	o1, _ := a.Alloc(9)
	o2, ok := a.Alloc(9)
	if !ok {
		t.Fatal("second 9-byte alloc failed")
	}
	if d := diff(o1, o2); d < 16 {
		t.Fatalf("9-byte chunks only %d apart; rounding to 16 not honoured", d)
	}
	a.Free(o1)
	a.Free(o2)
}

func testOversize(t *testing.T, build builder) {
	a := build(t, 1024, 8, 512)
	if _, ok := a.Alloc(513); ok {
		t.Fatal("alloc above MaxSize succeeded")
	}
	if _, ok := a.Alloc(1 << 40); ok {
		t.Fatal("absurd alloc succeeded")
	}
}

func testZeroSize(t *testing.T, build builder) {
	a := build(t, 1024, 8, 1024)
	off, ok := a.Alloc(0)
	if !ok {
		t.Fatal("zero-size alloc failed; it should round to one allocation unit")
	}
	a.Free(off)
}

func testDoubleFreePanics(t *testing.T, build builder) {
	a := build(t, 1024, 8, 1024)
	off, ok := a.Alloc(64)
	if !ok {
		t.Fatal("alloc failed")
	}
	a.Free(off)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	a.Free(off)
}

func testForeignFreePanics(t *testing.T, build builder) {
	a := build(t, 1024, 8, 1024)
	defer func() {
		if recover() == nil {
			t.Error("free of a never-allocated offset did not panic")
		}
	}()
	a.Free(512)
}

func testMinimalGeometry(t *testing.T, build builder) {
	// A degenerate instance: one allocation unit, depth 0.
	a := build(t, 64, 64, 64)
	off, ok := a.Alloc(64)
	if !ok || off != 0 {
		t.Fatalf("single-unit alloc = (%d,%v), want (0,true)", off, ok)
	}
	if _, ok := a.Alloc(64); ok {
		t.Fatal("second alloc on a single-unit instance succeeded")
	}
	a.Free(0)
	if _, ok := a.Alloc(64); !ok {
		t.Fatal("re-alloc after free failed")
	}
}

func testMaxLevelRestriction(t *testing.T, build builder) {
	// MaxSize below Total: requests up to MaxSize succeed, nothing larger.
	a := build(t, 1<<12, 8, 1<<10)
	var offs []uint64
	for i := 0; i < 4; i++ {
		off, ok := a.Alloc(1 << 10)
		if !ok {
			t.Fatalf("max-size alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	if _, ok := a.Alloc(1 << 10); ok {
		t.Fatal("fifth max-size alloc succeeded beyond capacity")
	}
	for _, off := range offs {
		a.Free(off)
	}
}

// testRandomSequentialVsShadow drives a long random alloc/free sequence and
// validates every response against a shadow interval set (S1 and S2 from a
// single thread, exercising deep split/merge interleavings).
func testRandomSequentialVsShadow(t *testing.T, build builder) {
	const total, minSize, maxSize = 1 << 14, 8, 1 << 11
	a := build(t, total, minSize, maxSize)
	geo := a.Geometry()
	rng := rand.New(rand.NewSource(42))
	type chunk struct{ off, reserved uint64 }
	var live []chunk
	occupied := map[uint64]bool{} // unit index -> taken
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			k := rng.Intn(len(live))
			c := live[k]
			a.Free(c.off)
			for u := c.off / minSize; u < (c.off+c.reserved)/minSize; u++ {
				if !occupied[u] {
					t.Fatalf("step %d: unit %d freed twice", step, u)
				}
				delete(occupied, u)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(1) << (3 + rng.Intn(9)) // 8..2048
		off, ok := a.Alloc(size)
		if !ok {
			continue
		}
		reserved := geo.SizeOfLevel(geo.LevelForSize(size))
		if off%reserved != 0 || off+reserved > total {
			t.Fatalf("step %d: alloc(%d) -> [%d,%d) misaligned or out of range", step, size, off, off+reserved)
		}
		for u := off / minSize; u < (off+reserved)/minSize; u++ {
			if occupied[u] {
				t.Fatalf("step %d: alloc(%d) at %d overlaps live unit %d (S1 violated)", step, size, off, u)
			}
			occupied[u] = true
		}
		live = append(live, chunk{off, reserved})
	}
	for _, c := range live {
		a.Free(c.off)
	}
	if _, ok := a.Alloc(maxSize); !ok {
		t.Fatal("max-size alloc failed after full drain")
	}
}

// testQuickOpSequences drives testing/quick-generated operation sequences
// through a fresh instance, checking the buddy-system postconditions of
// every response: alignment to the reserved size, containment in the
// region, no overlap with live chunks, and a clean full-capacity state
// after draining. Each generated byte encodes one operation: high bit set
// frees the n-th live chunk, otherwise allocates one of 8 size classes.
func testQuickOpSequences(t *testing.T, build builder) {
	const total, minSize, maxSize = 1 << 13, 8, 1 << 11
	property := func(script []byte) bool {
		a := build(t, total, minSize, maxSize)
		geo := a.Geometry()
		type chunk struct{ off, reserved uint64 }
		var live []chunk
		for _, op := range script {
			if op&0x80 != 0 && len(live) > 0 {
				k := int(op&0x7f) % len(live)
				a.Free(live[k].off)
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			size := uint64(minSize) << (op & 7)
			off, ok := a.Alloc(size)
			if !ok {
				continue
			}
			reserved := geo.SizeOfLevel(geo.LevelForSize(size))
			if off%reserved != 0 || off+reserved > total {
				return false
			}
			for _, c := range live {
				if off < c.off+c.reserved && c.off < off+reserved {
					return false
				}
			}
			live = append(live, chunk{off, reserved})
		}
		for _, c := range live {
			a.Free(c.off)
		}
		off, ok := a.Alloc(maxSize)
		if !ok {
			return false
		}
		a.Free(off)
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// testConcurrentNoOverlap hammers one instance from many goroutines while a
// shared per-unit claim map (atomics on the test side only) asserts that no
// two live allocations ever overlap — the concurrent version of S1/S2.
func testConcurrentNoOverlap(t *testing.T, build builder) {
	const total, minSize, maxSize = 1 << 20, 8, 1 << 14
	workers := 8
	if testing.Short() {
		workers = 4
	}
	a := build(t, total, minSize, maxSize)
	geo := a.Geometry()
	claims := make([]atomic.Int32, total/minSize)
	var overlaps atomic.Int64

	claim := func(off, reserved uint64, delta int32) {
		for u := off / minSize; u < (off+reserved)/minSize; u++ {
			if v := claims[u].Add(delta); v != 0 && v != 1 {
				overlaps.Add(1)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a.NewHandle()
			rng := rand.New(rand.NewSource(int64(w) + 7))
			type chunk struct{ off, reserved uint64 }
			var live []chunk
			for i := 0; i < 30000; i++ {
				if len(live) > 0 && rng.Intn(5) < 2 {
					k := rng.Intn(len(live))
					c := live[k]
					claim(c.off, c.reserved, -1)
					h.Free(c.off)
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				size := uint64(1) << (3 + rng.Intn(12)) // 8..16K
				off, ok := h.Alloc(size)
				if !ok {
					continue
				}
				reserved := geo.SizeOfLevel(geo.LevelForSize(size))
				claim(off, reserved, 1)
				live = append(live, chunk{off, reserved})
			}
			for _, c := range live {
				claim(c.off, c.reserved, -1)
				h.Free(c.off)
			}
		}()
	}
	wg.Wait()
	if n := overlaps.Load(); n != 0 {
		t.Fatalf("%d overlapping-claim events observed (S1/S2 violated)", n)
	}
	for u := range claims {
		if v := claims[u].Load(); v != 0 {
			t.Fatalf("unit %d left with claim count %d after drain", u, v)
		}
	}
	mustAllocAfterDrain(t, a, maxSize, "concurrent no-overlap")
}

// testConcurrentChurnDrain runs an alloc/free ping-pong (the Linux
// Scalability pattern) concurrently and verifies the instance coalesces
// back to a fully allocatable state.
func testConcurrentChurnDrain(t *testing.T, build builder) {
	const total = 1 << 18
	a := build(t, total, 8, total)
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a.NewHandle()
			for i := 0; i < iters; i++ {
				if off, ok := h.Alloc(64); ok {
					h.Free(off)
				}
			}
		}()
	}
	wg.Wait()
	mustAllocAfterDrain(t, a, total, "concurrent churn")
}

// testConcurrentMixedLevels spreads workers over different target levels so
// climbs constantly cross each other mid-tree, the scenario the coalescing
// bits exist for.
func testConcurrentMixedLevels(t *testing.T, build builder) {
	const total = 1 << 18
	a := build(t, total, 8, 1<<13)
	sizes := []uint64{8, 64, 512, 4096, 1 << 13}
	iters := 10000
	if testing.Short() {
		iters = 2000
	}
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a.NewHandle()
			size := sizes[w%len(sizes)]
			var live []uint64
			for i := 0; i < iters; i++ {
				if off, ok := h.Alloc(size); ok {
					live = append(live, off)
				}
				if len(live) > 8 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	mustAllocAfterDrain(t, a, 1<<13, "mixed-level churn")
}

func testStatsAccounting(t *testing.T, build builder) {
	a := build(t, 1<<12, 8, 1<<12)
	h := a.NewHandle()
	const n = 100
	for i := 0; i < n; i++ {
		off, ok := h.Alloc(8)
		if !ok {
			t.Fatal("alloc failed")
		}
		h.Free(off)
	}
	s := h.Stats()
	if s.Allocs != n || s.Frees != n {
		t.Fatalf("handle stats = %d allocs/%d frees, want %d/%d", s.Allocs, s.Frees, n, n)
	}
	agg := a.Stats()
	if agg.Allocs < n {
		t.Fatalf("aggregated stats lost handle counts: %d allocs", agg.Allocs)
	}
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}
