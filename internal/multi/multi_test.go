package multi_test

import (
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/multi"

	_ "repro/internal/core"
)

var per = alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14}

func TestRoutingAndGlobalOffsets(t *testing.T) {
	m, err := multi.New("1lvl-nb", 4, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if m.Instances() != 4 {
		t.Fatalf("Instances = %d", m.Instances())
	}
	// Round-robin handles prefer distinct instances; their first
	// allocations land in distinct offset windows.
	seen := map[int]bool{}
	var offs []uint64
	for i := 0; i < 4; i++ {
		h := m.NewHandle()
		off, ok := h.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		seen[m.InstanceOf(off)] = true
		offs = append(offs, off)
	}
	if len(seen) != 4 {
		t.Fatalf("4 round-robin handles hit %d distinct instances", len(seen))
	}
	for _, off := range offs {
		m.Free(off)
	}
}

func TestFixedPolicyPinsInstanceZero(t *testing.T) {
	m, err := multi.New("1lvl-nb", 4, per, multi.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h := m.NewHandle()
		off, ok := h.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		if m.InstanceOf(off) != 0 {
			t.Fatalf("fixed-policy handle landed on instance %d", m.InstanceOf(off))
		}
		h.Free(off)
	}
}

func TestFallbackWhenPreferredFull(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	h := m.NewHandle()
	// Exhaust instance 0 (every handle prefers it under Fixed).
	var offs []uint64
	for {
		off, ok := h.Alloc(1 << 14)
		if !ok {
			t.Fatal("alloc failed before both instances were full")
		}
		offs = append(offs, off)
		if m.InstanceOf(off) == 1 {
			break // fallback reached instance 1
		}
	}
	if got := m.InstanceOf(offs[len(offs)-1]); got != 1 {
		t.Fatalf("fallback allocation on instance %d", got)
	}
	for _, off := range offs {
		m.Free(off)
	}
	// Exhaust everything: Alloc must eventually fail rather than spin.
	offs = offs[:0]
	for {
		off, ok := h.Alloc(1 << 14)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != 2*4 { // 2 instances x (64K/16K) chunks
		t.Fatalf("filled %d max-size chunks, want 8", len(offs))
	}
	s := m.Stats()
	_ = s
	for _, off := range offs {
		m.Free(off)
	}
}

func TestConcurrentAcrossInstances(t *testing.T) {
	m, err := multi.New("1lvl-nb", 4, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := m.NewHandle()
			var live []uint64
			for i := 0; i < 5000; i++ {
				if off, ok := h.Alloc(64 << (i % 3)); ok {
					live = append(live, off)
				}
				if len(live) > 16 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	s := m.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("leak across instances: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := multi.New("1lvl-nb", 0, per, multi.RoundRobin); err == nil {
		t.Error("zero instances accepted")
	}
	if _, err := multi.New("no-such", 2, per, multi.RoundRobin); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestName(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "multi[2x 1lvl-nb]" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestChunkSizeRoutesGlobally(t *testing.T) {
	m, err := multi.New("1lvl-nb", 4, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	// Pin a handle per instance so allocations land in every window.
	for k := 0; k < 4; k++ {
		h := m.NewHandleOn(k)
		off, ok := h.Alloc(100)
		if !ok {
			t.Fatal("alloc failed")
		}
		if m.InstanceOf(off) != k {
			t.Fatalf("pinned handle %d landed on instance %d", k, m.InstanceOf(off))
		}
		if got := m.ChunkSize(off); got != 128 {
			t.Fatalf("ChunkSize(%#x) = %d, want 128", off, got)
		}
		h.Free(off)
	}
	// An offset outside the global span panics.
	defer func() {
		if recover() == nil {
			t.Error("ChunkSize outside the offset space did not panic")
		}
	}()
	m.ChunkSize(4 * per.Total)
}

func TestOffsetSpan(t *testing.T) {
	m, err := multi.New("1lvl-nb", 4, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if got := alloc.SpanOf(m); got != 4*per.Total {
		t.Fatalf("SpanOf = %d, want %d", got, 4*per.Total)
	}
}

// TestConvenienceDoesNotLeakHandles regresses the transient-handle leak:
// the convenience Alloc/Free path must reuse pooled handles instead of
// permanently registering a fresh sub-handle set per call.
func TestConvenienceDoesNotLeakHandles(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		off, ok := m.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		m.Free(off)
	}
	if got := m.Handles(); got > 4 {
		t.Fatalf("%d handles registered by 2000 sequential convenience ops", got)
	}
}

func TestRouteStatsCountFallbacks(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.Fixed)
	if err != nil {
		t.Fatal(err)
	}
	h := m.NewHandle()
	// Fill instance 0 with max-size chunks; the next allocation must fall
	// back to instance 1 and be counted.
	var offs []uint64
	for i := 0; i < int(per.Total/per.MaxSize); i++ {
		off, ok := h.Alloc(per.MaxSize)
		if !ok {
			t.Fatal("fill alloc failed")
		}
		offs = append(offs, off)
	}
	off, ok := h.Alloc(per.MaxSize)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("fallback alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	offs = append(offs, off)
	rs := m.RouteStats()
	if rs.Fallbacks != 1 {
		t.Fatalf("RouteStats.Fallbacks = %d, want 1", rs.Fallbacks)
	}
	if rs.Routed != uint64(len(offs)-1) {
		t.Fatalf("RouteStats.Routed = %d, want %d", rs.Routed, len(offs)-1)
	}
	for _, off := range offs {
		m.Free(off)
	}
}

// elasticRouter builds a router with live tracking on, as the elastic
// manager does at construction.
func elasticRouter(t *testing.T, count int) *multi.Multi {
	t.Helper()
	m, err := multi.New("1lvl-nb", count, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	return m
}

func TestLifecycleRequiresLiveTracking(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.StartDrain(1); err == nil {
		t.Error("StartDrain without live tracking accepted")
	}
	if _, err := m.TryRetire(1); err == nil {
		t.Error("TryRetire without live tracking accepted")
	}
}

func TestAddInstanceWidensThenReusesHoles(t *testing.T) {
	m := elasticRouter(t, 2)
	if got := alloc.SpanOf(m); got != 2*per.Total {
		t.Fatalf("initial span = %d", got)
	}
	// Appending widens the table.
	k, err := m.AddInstance()
	if err != nil || k != 2 {
		t.Fatalf("AddInstance = (%d, %v), want slot 2", k, err)
	}
	if got := alloc.SpanOf(m); got != 3*per.Total {
		t.Fatalf("span after append = %d, want %d", got, 3*per.Total)
	}
	// Retire slot 1 and grow again: the hole is reused, the span is
	// unchanged, and the slot serves its old offset window.
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	if done, err := m.TryRetire(1); err != nil || !done {
		t.Fatalf("TryRetire(1) = (%v, %v)", done, err)
	}
	if got := m.Instances(); got != 2 {
		t.Fatalf("Instances after retire = %d, want 2", got)
	}
	k, err = m.AddInstance()
	if err != nil || k != 1 {
		t.Fatalf("AddInstance after retire = (%d, %v), want hole 1", k, err)
	}
	if got := alloc.SpanOf(m); got != 3*per.Total {
		t.Fatalf("span after hole reuse = %d, want %d", got, 3*per.Total)
	}
	h := m.NewHandleOn(1)
	off, ok := h.Alloc(64)
	if !ok || m.InstanceOf(off) != 1 {
		t.Fatalf("refilled slot alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	h.Free(off)
}

func TestDrainingReceivesFreesRefusesAllocs(t *testing.T) {
	m := elasticRouter(t, 2)
	h := m.NewHandleOn(0)
	off, ok := h.Alloc(64)
	if !ok || m.InstanceOf(off) != 0 {
		t.Fatalf("pinned alloc = (%v, instance %d)", ok, m.InstanceOf(off))
	}
	if err := m.StartDrain(0); err != nil {
		t.Fatal(err)
	}
	// New allocations skip the draining slot even for a handle that
	// prefers it.
	off2, ok := h.Alloc(64)
	if !ok || m.InstanceOf(off2) != 1 {
		t.Fatalf("alloc during drain = (%v, instance %d), want fallback to 1", ok, m.InstanceOf(off2))
	}
	// Retirement is refused while the chunk is live.
	if done, err := m.TryRetire(0); err != nil || done {
		t.Fatalf("TryRetire with a live chunk = (%v, %v)", done, err)
	}
	// The free routes back to the draining instance by offset, after
	// which retirement succeeds.
	h.Free(off)
	if done, err := m.TryRetire(0); err != nil || !done {
		t.Fatalf("TryRetire after the free = (%v, %v)", done, err)
	}
	h.Free(off2)
	// Freeing into a retired window panics (nothing can legally be live
	// there).
	defer func() {
		if recover() == nil {
			t.Error("free into a retired slot's window did not panic")
		}
	}()
	m.Free(off)
}

func TestStartDrainRefusesLastActive(t *testing.T) {
	m := elasticRouter(t, 2)
	if err := m.StartDrain(0); err != nil {
		t.Fatal(err)
	}
	if err := m.StartDrain(1); err == nil {
		t.Error("draining the last active instance accepted")
	}
	if err := m.Reactivate(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Reactivate(0); err == nil {
		t.Error("reactivating an active instance accepted")
	}
}

func TestInstanceInfosTrackLiveBytes(t *testing.T) {
	m := elasticRouter(t, 2)
	h := m.NewHandleOn(0)
	off, ok := h.Alloc(100) // reserves 128
	if !ok {
		t.Fatal("alloc failed")
	}
	infos := m.InstanceInfos()
	if infos[0].State != multi.Active || infos[0].Live != 1 || infos[0].LiveBytes != 128 {
		t.Fatalf("slot 0 info = %+v, want active live=1 liveBytes=128", infos[0])
	}
	if infos[1].Live != 0 {
		t.Fatalf("slot 1 info = %+v, want empty", infos[1])
	}
	h.Free(off)
	infos = m.InstanceInfos()
	if infos[0].Live != 0 || infos[0].LiveBytes != 0 {
		t.Fatalf("slot 0 info after free = %+v", infos[0])
	}
	// Batched ops settle the counters identically.
	batch := alloc.HandleAllocBatch(h, 64, 5)
	if len(batch) != 5 {
		t.Fatalf("batch = %d chunks", len(batch))
	}
	var live, liveBytes int64
	for _, info := range m.InstanceInfos() {
		live += info.Live
		liveBytes += info.LiveBytes
	}
	if live != 5 || liveBytes != 5*64 {
		t.Fatalf("after batch: live=%d liveBytes=%d, want 5/320", live, liveBytes)
	}
	alloc.HandleFreeBatch(h, batch)
	for _, info := range m.InstanceInfos() {
		if info.Live != 0 || info.LiveBytes != 0 {
			t.Fatalf("slot %d not settled after batch free: %+v", info.Slot, info)
		}
	}
}

func TestScrubForwardsToInstances(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	// Scrub on a quiescent router must be a no-op, not a panic, and keep
	// the full span allocatable.
	m.Scrub()
	for k := 0; k < 2; k++ {
		h := m.NewHandleOn(k)
		off, ok := h.Alloc(per.MaxSize)
		if !ok {
			t.Fatalf("instance %d cannot serve max-size after Scrub", k)
		}
		h.Free(off)
	}
}

// TestBindMemoryContract covers the router-side mapped-backing rules:
// window geometry must match the instance span, binding commits every
// published slot's window, and the Name gains the mapped prefix so
// stacked labels reveal the backing.
func TestBindMemoryContract(t *testing.T) {
	m, err := multi.New("1lvl-nb", 2, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := mem.New(per.Total/2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(wrong); err == nil {
		t.Fatal("BindMemory accepted a mismatched window size")
	}
	r, err := mem.New(per.Total, 1) // short: BindMemory must Ensure the rest
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	if m.Memory() != r {
		t.Fatal("Memory() does not expose the bound region")
	}
	if r.Windows() != 2 || !r.Committed(0) || !r.Committed(1) {
		t.Fatalf("bind must reserve and commit every published slot: windows=%d map=%v",
			r.Windows(), r.CommitMap())
	}
	if m.Name() != "mapped+multi[2x 1lvl-nb]" {
		t.Fatalf("Name = %q", m.Name())
	}
	// AddInstance appends a slot; its window is committed before the
	// instance can serve.
	m.EnableLiveTracking()
	k, err := m.AddInstance()
	if err != nil {
		t.Fatal(err)
	}
	if !r.Committed(k) {
		t.Fatalf("added slot %d's window not committed", k)
	}
}
