package slab_test

import (
	"sync"
	"testing"

	"repro/internal/alloc"
	_ "repro/internal/bunch" // registers the 4lvl-nb leaf
	"repro/internal/slab"
)

func build(t *testing.T, cfg alloc.Config) alloc.Allocator {
	t.Helper()
	leaf, err := alloc.Build("4lvl-nb", cfg)
	if err != nil {
		t.Fatalf("Build(4lvl-nb): %v", err)
	}
	return leaf
}

func newSlab(t *testing.T, cfg alloc.Config, cutoff uint64) (*slab.Allocator, alloc.Allocator) {
	t.Helper()
	leaf := build(t, cfg)
	sl, err := slab.New(leaf, cutoff)
	if err != nil {
		t.Fatalf("slab.New: %v", err)
	}
	return sl, leaf
}

var cfg = alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16}

// TestClassTable pins the class table: every power of two and half-step
// in [MinSize, cutoff] that is a multiple of MinSize, and the rounding
// each request size maps to.
func TestClassTable(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	if got, want := sl.Cutoff(), uint64(2048); got != want {
		t.Fatalf("Cutoff() = %d, want %d", got, want)
	}
	cases := []struct {
		size, class uint64
	}{
		{1, 64}, {64, 64}, {65, 128}, {128, 128}, {129, 192}, {192, 192},
		{193, 256}, {256, 256}, {257, 384}, {384, 384}, {385, 512},
		{512, 512}, {513, 768}, {1000, 1024}, {1025, 1536}, {1537, 2048},
		{2047, 2048}, {2048, 2048},
	}
	for _, c := range cases {
		got, ok := sl.ReservedFor(c.size)
		if !ok || got != c.class {
			t.Errorf("ReservedFor(%d) = %d,%v, want %d,true", c.size, got, ok, c.class)
		}
	}
	if _, ok := sl.ReservedFor(2049); ok {
		t.Error("ReservedFor(cutoff+1) should pass through")
	}
}

// TestCutoffClamp verifies the cutoff is clamped to half the run chunk
// so every run holds at least two objects.
func TestCutoffClamp(t *testing.T) {
	sl, _ := newSlab(t, cfg, 1<<20)
	if rc := sl.RunBytes(); sl.Cutoff() > rc/2 {
		t.Fatalf("cutoff %d exceeds half the run chunk %d", sl.Cutoff(), rc)
	}
}

// TestTransparentMode covers geometries where no class fits (MinSize
// above half the run chunk): the layer must pass everything through and
// still satisfy the whole contract.
func TestTransparentMode(t *testing.T) {
	sl, _ := newSlab(t, alloc.Config{Total: 1 << 20, MinSize: 4096, MaxSize: 1 << 16}, 0)
	if sl.Cutoff() != 0 {
		t.Fatalf("Cutoff() = %d, want 0 (transparent)", sl.Cutoff())
	}
	h := sl.NewHandle()
	off, ok := h.Alloc(100)
	if !ok {
		t.Fatal("transparent Alloc failed")
	}
	if got := sl.ChunkSize(off); got != 4096 {
		t.Fatalf("ChunkSize = %d, want the buddy rounding 4096", got)
	}
	h.Free(off)
	if s := sl.Stats(); s.Allocs != 1 || s.Frees != 1 {
		t.Fatalf("stats = %+v, want 1 alloc / 1 free", s)
	}
}

// TestCutoffBoundary exercises cutoff and cutoff+1: the first is the
// largest class, the second passes through to the buddy's rounding.
func TestCutoffBoundary(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	h := sl.NewHandle()
	at, ok := h.Alloc(sl.Cutoff())
	if !ok {
		t.Fatal("Alloc(cutoff) failed")
	}
	if got := sl.ChunkSize(at); got != sl.Cutoff() {
		t.Fatalf("ChunkSize(cutoff alloc) = %d, want %d", got, sl.Cutoff())
	}
	over, ok := h.Alloc(sl.Cutoff() + 1)
	if !ok {
		t.Fatal("Alloc(cutoff+1) failed")
	}
	if got := sl.ChunkSize(over); got != 2*sl.Cutoff() {
		t.Fatalf("ChunkSize(cutoff+1 alloc) = %d, want the buddy rounding %d", got, 2*sl.Cutoff())
	}
	h.Free(at)
	h.Free(over)
}

// TestDoubleFreePanics pins the run-slot allocated bit: freeing twice
// panics at the second call.
func TestDoubleFreePanics(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	off, ok := sl.Alloc(64)
	if !ok {
		t.Fatal("Alloc failed")
	}
	sl.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	sl.Free(off)
}

// TestForeignFreePanics pins offset validation: an offset inside a run
// window that is not on a class boundary panics.
func TestForeignFreePanics(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	off, ok := sl.Alloc(64)
	if !ok {
		t.Fatal("Alloc failed")
	}
	_ = off
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned free did not panic")
		}
	}()
	sl.Free(off + 1)
}

// TestChunkSizeFreedPanics: ChunkSize of a freed slab slot panics like
// every layer's not-allocated contract.
func TestChunkSizeFreedPanics(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	off, ok := sl.Alloc(64)
	if !ok {
		t.Fatal("Alloc failed")
	}
	sl.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("ChunkSize of freed offset did not panic")
		}
	}()
	sl.ChunkSize(off)
}

// TestFragGaugeBelowBuddyWaste pins the headline effect: for request
// sizes between classes, slab internal fragmentation is strictly below
// the buddy's power-of-two rounding waste.
func TestFragGaugeBelowBuddyWaste(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	h := sl.NewHandle()
	const n, size = 16, 160 // class 192 vs buddy 256
	offs := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		off, ok := h.Alloc(size)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	slabWaste := uint64(n * (192 - size))
	buddyWaste := uint64(n * (256 - size))
	if got := sl.FragBytes(); got != slabWaste {
		t.Fatalf("FragBytes() = %d, want %d", got, slabWaste)
	}
	if sl.FragBytes() >= buddyWaste {
		t.Fatalf("slab frag %d not below buddy rounding waste %d", sl.FragBytes(), buddyWaste)
	}
	for _, off := range offs {
		h.Free(off)
	}
	if got := sl.FragBytes(); got != 0 {
		t.Fatalf("FragBytes() after freeing all = %d, want 0", got)
	}
}

// TestScrubKeepsPartialRuns: Scrub releases fully-free runs but must
// leave live objects in partial runs untouched and addressable.
func TestScrubKeepsPartialRuns(t *testing.T) {
	sl, leaf := newSlab(t, cfg, 0)
	h := sl.NewHandle()
	keep, ok := h.Alloc(64)
	if !ok {
		t.Fatal("Alloc failed")
	}
	gone := make([]uint64, 0, 8)
	for i := 0; i < 8; i++ {
		off, ok := h.Alloc(1024)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		gone = append(gone, off)
	}
	for _, off := range gone {
		h.Free(off)
	}
	sl.Scrub()
	// The 1024-class runs were fully free: released. The 64-class run
	// still holds keep: retained, and the object still resolves.
	if got := sl.ChunkSize(keep); got != 64 {
		t.Fatalf("ChunkSize(keep) after Scrub = %d, want 64", got)
	}
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 1 {
		t.Fatalf("leaf live chunks after Scrub = %d, want 1 (the partial run)", live)
	}
	h.Free(keep)
	sl.Scrub()
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 0 {
		t.Fatalf("leaf live chunks after final Scrub = %d, want 0", live)
	}
}

// TestBatchRoundTrip: class-sized batches come from the central store
// and return to their runs; a Scrub then releases every backing chunk.
func TestBatchRoundTrip(t *testing.T) {
	sl, leaf := newSlab(t, cfg, 0)
	h := sl.NewHandle()
	out := alloc.HandleAllocBatch(h, 256, 40)
	if len(out) != 40 {
		t.Fatalf("AllocBatch returned %d offsets, want 40", len(out))
	}
	seen := map[uint64]bool{}
	for _, off := range out {
		if seen[off] {
			t.Fatalf("offset %d handed out twice", off)
		}
		seen[off] = true
		if got := sl.ChunkSize(off); got != 256 {
			t.Fatalf("ChunkSize(%d) = %d, want 256", off, got)
		}
	}
	alloc.HandleFreeBatch(h, out)
	sl.Scrub()
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 0 {
		t.Fatalf("leaf live chunks after batch round-trip + Scrub = %d, want 0", live)
	}
}

// TestDrainFence is the slab half of the elastic-retirement fence: a
// worker parks objects in its magazine, DrainRange arms the fence, the
// worker's next (unrelated) operation flushes the magazine, and the next
// DrainRange — as the manager's Poll would issue — releases the now
// fully-free run. No Scrub.
func TestDrainFence(t *testing.T) {
	sl, leaf := newSlab(t, cfg, 0)
	span := sl.OffsetSpan()
	h := sl.NewHandle()
	offs := make([]uint64, 0, 10)
	for i := 0; i < 10; i++ {
		off, ok := h.Alloc(64)
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		h.Free(off) // parked in the magazine
	}
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 1 {
		t.Fatalf("leaf live chunks with parked magazine = %d, want 1", live)
	}
	sl.DrainRange(0, span)
	// The run is pinned by magazine-held objects; the window release
	// alone cannot free it.
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 1 {
		t.Fatalf("leaf live chunks after DrainRange = %d, want 1 (magazine pins the run)", live)
	}
	// One unrelated operation trips the fence.
	pass, ok := h.Alloc(1 << 15)
	if !ok {
		t.Fatal("pass-through alloc failed")
	}
	sl.DrainRange(0, span) // as the next Poll would
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 1 {
		t.Fatalf("leaf live chunks after fence flush + DrainRange = %d, want 1 (just the pass-through)", live)
	}
	var flushes uint64
	for _, ls := range sl.LayerStats() {
		if ls.Layer == "slab" {
			flushes = ls.Extra["slab_drain_flushes"]
			break
		}
	}
	if flushes == 0 {
		t.Fatal("slab_drain_flushes = 0, want at least one fence-forced flush")
	}
	h.Free(pass)
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 0 {
		t.Fatalf("leaf live chunks at end = %d, want 0", live)
	}
}

// TestConcurrentChurn hammers refill/spill and run provisioning from
// many handles at once (run it with -race), with a concurrent DrainRange
// arming the fence mid-churn, then checks global accounting.
func TestConcurrentChurn(t *testing.T) {
	sl, leaf := newSlab(t, alloc.Config{Total: 1 << 22, MinSize: 64, MaxSize: 1 << 16}, 0)
	const workers = 8
	const rounds = 300
	sizes := []uint64{64, 96, 160, 1024, 2048, 4096}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				sl.DrainRange(0, sl.OffsetSpan()/2)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := sl.NewHandle()
			var held []uint64
			for r := 0; r < rounds; r++ {
				size := sizes[(w+r)%len(sizes)]
				if off, ok := h.Alloc(size); ok {
					held = append(held, off)
				}
				if len(held) > 32 {
					h.Free(held[0])
					held = held[1:]
				}
			}
			for _, off := range held {
				h.Free(off)
			}
			alloc.CloseHandle(h)
		}(w)
	}
	wg.Wait()
	close(stop)
	s := sl.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("slab allocs %d != frees %d at quiescence", s.Allocs, s.Frees)
	}
	if got := sl.FragBytes(); got != 0 {
		t.Fatalf("FragBytes() at quiescence = %d, want 0", got)
	}
	sl.Scrub()
	if live := leaf.Stats().Allocs - leaf.Stats().Frees; live != 0 {
		t.Fatalf("leaf live chunks after Scrub = %d, want 0", live)
	}
}

// TestClassInfos checks the introspection table against known traffic.
func TestClassInfos(t *testing.T) {
	sl, _ := newSlab(t, cfg, 0)
	off, ok := sl.Alloc(100) // class 128
	if !ok {
		t.Fatal("Alloc failed")
	}
	var found bool
	for _, ci := range sl.ClassInfos() {
		if ci.Size == 128 {
			found = true
			if ci.Live != 1 {
				t.Fatalf("class 128 Live = %d, want 1", ci.Live)
			}
			if ci.Runs != 1 {
				t.Fatalf("class 128 Runs = %d, want 1", ci.Runs)
			}
			if uint64(ci.ObjsPerRun) != sl.RunBytes()/128 {
				t.Fatalf("class 128 ObjsPerRun = %d, want %d", ci.ObjsPerRun, sl.RunBytes()/128)
			}
		} else if ci.Live != 0 {
			t.Fatalf("class %d Live = %d, want 0", ci.Size, ci.Live)
		}
	}
	if !found {
		t.Fatal("class 128 missing from ClassInfos")
	}
	sl.Free(off)
}
