package harness

import (
	"math"
	"os"
	"strings"
	"testing"
)

func diffFixtures() (JSONReport, JSONReport) {
	base := JSONReport{Schema: JSONSchema, Label: "pr2", Cells: []JSONCell{
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 10e6},
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 8, OpsPerSec: 20e6},
		{Workload: "remote-free", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 5e6},
	}}
	fresh := JSONReport{Schema: JSONSchema, Label: "ci", Cells: []JSONCell{
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 12e6},
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 8, OpsPerSec: 19e6},
		{Workload: "frag", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 7e6},
	}}
	return base, fresh
}

func TestDiffReportsPairsAndClassifies(t *testing.T) {
	base, fresh := diffFixtures()
	deltas := DiffReports(base, fresh)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4: %+v", len(deltas), deltas)
	}
	// Baseline order first: the two larson cells, then the baseline-only
	// remote-free cell, then the fresh-only frag cell appended.
	if deltas[0].In != "both" || math.Abs(deltas[0].DeltaPct()-20) > 1e-9 {
		t.Fatalf("cell 0 = %+v, want both/+20%%", deltas[0])
	}
	if deltas[1].In != "both" || math.Abs(deltas[1].DeltaPct()-(-5)) > 1e-9 {
		t.Fatalf("cell 1 = %+v, want both/-5%%", deltas[1])
	}
	if deltas[2].In != "baseline-only" || deltas[2].Workload != "remote-free" {
		t.Fatalf("cell 2 = %+v, want baseline-only remote-free", deltas[2])
	}
	if deltas[3].In != "fresh-only" || deltas[3].Workload != "frag" {
		t.Fatalf("cell 3 = %+v, want fresh-only frag", deltas[3])
	}
}

func TestWriteDiffRendersBothFormats(t *testing.T) {
	base, fresh := diffFixtures()
	deltas := DiffReports(base, fresh)

	var md strings.Builder
	WriteDiff(&md, base.Label, fresh.Label, deltas, true)
	out := md.String()
	for _, want := range []string{"| workload |", "+20.0%", "-5.0%", "new", "gone", "pr2 Mops/s", "ci Mops/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown diff missing %q:\n%s", want, out)
		}
	}

	var txt strings.Builder
	WriteDiff(&txt, "", "", deltas, false)
	if !strings.Contains(txt.String(), "baseline Mops/s") || strings.Contains(txt.String(), "|") {
		t.Fatalf("text diff malformed:\n%s", txt.String())
	}
}

// TestDiffMixedSchemaSlabPairing pins the slab-cutoff cell identity: a
// pre-slab baseline (no slab_cutoff field, zero value) pairs with fresh
// slab-less cells of the same label, while a slab cell with an explicit
// cutoff is its own grid point — the same sentinel convention Procs
// uses, so old and new reports diff without false pairings.
func TestDiffMixedSchemaSlabPairing(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Label: "pr6", Cells: []JSONCell{
		// Pre-slab baseline: the field is absent, unmarshals as 0.
		{Workload: "mixed", Allocator: "depot+multi4+4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 10e6},
	}}
	fresh := JSONReport{Schema: JSONSchema, Label: "pr7", Cells: []JSONCell{
		{Workload: "mixed", Allocator: "depot+multi4+4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 11e6},
		{Workload: "mixed", Allocator: "slab+depot+multi4+4lvl-nb", Bytes: 128, Threads: 4,
			OpsPerSec: 15e6, SlabCutoff: 2048},
	}}
	deltas := DiffReports(base, fresh)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(deltas), deltas)
	}
	if deltas[0].In != "both" || math.Abs(deltas[0].DeltaPct()-10) > 1e-9 || deltas[0].SlabCutoff != 0 {
		t.Fatalf("cell 0 = %+v, want both/+10%%/cutoff 0", deltas[0])
	}
	if deltas[1].In != "fresh-only" || deltas[1].SlabCutoff != 2048 {
		t.Fatalf("cell 1 = %+v, want fresh-only with cutoff 2048", deltas[1])
	}

	// The same label at a different cutoff must NOT pair: a re-tuned
	// class table is a different grid point, not a regression.
	base.Cells = append(base.Cells, JSONCell{Workload: "mixed",
		Allocator: "slab+depot+multi4+4lvl-nb", Bytes: 128, Threads: 4,
		OpsPerSec: 14e6, SlabCutoff: 1024})
	deltas = DiffReports(base, fresh)
	var cutoffIns []string
	for _, d := range deltas {
		if d.Allocator == "slab+depot+multi4+4lvl-nb" {
			cutoffIns = append(cutoffIns, d.In)
		}
	}
	if len(cutoffIns) != 2 || cutoffIns[0] != "baseline-only" || cutoffIns[1] != "fresh-only" {
		t.Fatalf("cutoff-mismatched slab cells = %v, want [baseline-only fresh-only]", cutoffIns)
	}
}

// TestDiffCarriesPercentilePairs pins the v2 latency columns through the
// pairing: percentiles ride on the delta for cells present on each side,
// never join the cell key, and render in the p99 columns.
func TestDiffCarriesPercentilePairs(t *testing.T) {
	base := JSONReport{Schema: JSONSchema, Label: "pr9", Cells: []JSONCell{
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 10e6,
			P50: 100, P99: 400, P999: 900},
		// A throughput-only baseline cell (v1 or -latency=false): zeros.
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 8, OpsPerSec: 20e6},
	}}
	fresh := JSONReport{Schema: JSONSchema, Label: "ci", Cells: []JSONCell{
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 4, OpsPerSec: 10e6,
			P50: 110, P99: 600, P999: 950},
		{Workload: "larson", Allocator: "4lvl-nb", Bytes: 128, Threads: 8, OpsPerSec: 20e6,
			P50: 90, P99: 350, P999: 800},
	}}
	deltas := DiffReports(base, fresh)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	d := deltas[0]
	if d.BaseP99 != 400 || d.FreshP99 != 600 || d.BaseP50 != 100 || d.FreshP999 != 950 {
		t.Fatalf("percentile pairs not carried: %+v", d)
	}
	// Cell 1 has latency only on the fresh side: the pair must be
	// reported unmatched (base zero), not invented.
	if deltas[1].BaseP99 != 0 || deltas[1].FreshP99 != 350 {
		t.Fatalf("half-carried pair mishandled: %+v", deltas[1])
	}

	var txt strings.Builder
	WriteDiff(&txt, base.Label, fresh.Label, deltas, false)
	out := txt.String()
	for _, want := range []string{"base p99", "fresh p99", "p99 delta", "400ns", "600ns", "+50.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text diff missing %q:\n%s", want, out)
		}
	}
	// The half-carried pair renders "-" for the missing side and no delta.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-side sentinel absent:\n%s", out)
	}
}

// TestPctDeltaPct pins the 0-sentinel pairing rule: a percentile delta
// exists only when both sides carried samples.
func TestPctDeltaPct(t *testing.T) {
	if pd, ok := PctDeltaPct(400, 600); !ok || math.Abs(pd-50) > 1e-9 {
		t.Fatalf("PctDeltaPct(400,600) = %v,%v want 50,true", pd, ok)
	}
	if pd, ok := PctDeltaPct(400, 200); !ok || math.Abs(pd-(-50)) > 1e-9 {
		t.Fatalf("PctDeltaPct(400,200) = %v,%v want -50,true", pd, ok)
	}
	for _, c := range [][2]uint64{{0, 600}, {400, 0}, {0, 0}} {
		if _, ok := PctDeltaPct(c[0], c[1]); ok {
			t.Fatalf("PctDeltaPct(%d,%d) must report no pairing", c[0], c[1])
		}
	}
}

// TestLoadReportAcceptsV1 pins schema compatibility: committed v1
// baselines (pre-latency PRs) keep loading after the v2 bump — their
// cells simply carry zero percentiles — while unknown schemas still
// fail loudly.
func TestLoadReportAcceptsV1(t *testing.T) {
	dir := t.TempDir()
	write := func(name, schema string) string {
		path := dir + "/" + name
		body := `{"schema":"` + schema + `","label":"x","cells":[` +
			`{"workload":"larson","allocator":"4lvl-nb","bytes":128,"threads":4,"ops_per_sec":1000000}]}`
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rep, err := LoadReport(write("v1.json", jsonSchemaV1))
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].P99 != 0 {
		t.Fatalf("v1 cells mangled: %+v", rep.Cells)
	}
	if _, err := LoadReport(write("v2.json", JSONSchema)); err != nil {
		t.Fatalf("current schema rejected: %v", err)
	}
	if _, err := LoadReport(write("bad.json", "nbbsbench/v99")); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
