//go:build linux && arm64

package mem

// Raw NUMA syscall numbers (generic arm64 table).
const (
	sysMbind         = 235
	sysGetMempolicy  = 236
	numaHaveSyscalls = true
)
