package status

import (
	"testing"
	"testing/quick"
)

func TestFieldRoundtrip(t *testing.T) {
	var w uint64
	for j := 0; j < 8; j++ {
		w = WithField(w, j, uint32(j)+1)
	}
	for j := 0; j < 8; j++ {
		if got := Field(w, j); got != uint32(j)+1 {
			t.Fatalf("Field(%d) = %#x, want %#x", j, got, j+1)
		}
	}
	// One byte per lane: the upper three bits of every byte stay clear.
	if w&^statMask != 0 {
		t.Fatalf("packing leaked outside the status bits: %#x", w)
	}
}

func TestFieldMaskAndFill(t *testing.T) {
	if FieldMask(0, 8) != statMask {
		t.Fatalf("FieldMask(0,8) = %#x", FieldMask(0, 8))
	}
	if Fill(2, 2, Busy) != uint64(Busy)<<16|uint64(Busy)<<24 {
		t.Fatalf("Fill(2,2,Busy) = %#x", Fill(2, 2, Busy))
	}
}

func TestAnyBusy(t *testing.T) {
	w := WithField(0, 3, CoalLeft) // coalescing only: not busy
	if AnyBusy(w, 0, 8) {
		t.Error("coal-only field reported busy")
	}
	w = WithField(w, 5, Occ)
	if !AnyBusy(w, 4, 4) {
		t.Error("busy field in range not detected")
	}
	if AnyBusy(w, 0, 4) {
		t.Error("busy field outside range detected")
	}
}

// Property: WithField changes exactly the targeted field.
func TestQuickWithFieldIsolation(t *testing.T) {
	f := func(w uint64, j uint8, val uint32) bool {
		w &= statMask
		jj := int(j % 8)
		out := WithField(w, jj, val)
		if Field(out, jj) != val&Mask {
			return false
		}
		for k := 0; k < 8; k++ {
			if k != jj && Field(out, k) != Field(w, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AnyBusy(w, j, c) is exactly the OR of per-field busy tests.
func TestQuickAnyBusyDefinition(t *testing.T) {
	f := func(w uint64, j, c uint8) bool {
		w &= statMask
		jj := int(j % 8)
		cc := int(c%8) + 1
		if jj+cc > 8 {
			cc = 8 - jj
		}
		want := false
		for k := jj; k < jj+cc; k++ {
			if Field(w, k)&Busy != 0 {
				want = true
			}
		}
		return AnyBusy(w, jj, cc) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// firstFreeLaneRef is the per-lane reference the SWAR form must match.
func firstFreeLaneRef(w uint64, from int) int {
	for j := from; j < LanesPerWord; j++ {
		if Field(w, j)&Busy == 0 {
			return j
		}
	}
	return LanesPerWord
}

func TestFirstFreeLane(t *testing.T) {
	cases := []struct {
		w    uint64
		from int
		want int
	}{
		{0, 0, 0},
		{0, 5, 5},
		{0, 8, 8},
		{Fill(0, 8, Busy), 0, 8},
		{Fill(0, 3, Busy), 0, 3},
		{Fill(0, 3, Busy), 4, 4},
		{WithField(0, 0, Occ), 0, 1},
		// Coalescing-only lanes count as free, exactly like IsFree.
		{Fill(0, 8, CoalLeft), 0, 0},
		{WithField(Fill(0, 8, Busy), 6, CoalRight), 0, 6},
	}
	for _, c := range cases {
		if got := FirstFreeLane(c.w, c.from); got != c.want {
			t.Errorf("FirstFreeLane(%#x, %d) = %d, want %d", c.w, c.from, got, c.want)
		}
	}
}

// Property: the SWAR first-free-lane scan agrees with the per-lane
// reference on every status word and scan start.
func TestQuickFirstFreeLane(t *testing.T) {
	f := func(w uint64, from uint8) bool {
		w &= statMask
		ff := int(from % 9) // 0..8 inclusive: the one-past-the-end start is legal
		return FirstFreeLane(w, ff) == firstFreeLaneRef(w, ff)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// firstFreeRunRef is the per-run reference for FirstFreeRun.
func firstFreeRunRef(w uint64, from, count int) int {
	for f := from; f < LanesPerWord; f += count {
		if !AnyBusy(w, f, count) {
			return f
		}
	}
	return LanesPerWord
}

func TestQuickFirstFreeRun(t *testing.T) {
	f := func(w uint64, from, countSel uint8) bool {
		w &= statMask
		count := 1 << (countSel % 4) // 1, 2, 4, 8
		ff := (int(from) % (LanesPerWord/count + 1)) * count
		return FirstFreeRun(w, ff, count) == firstFreeRunRef(w, ff, count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
