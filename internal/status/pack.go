package status

import "math/bits"

// Word packing shared by both non-blocking leaves: one status byte per
// node, eight nodes per 64-bit atomic word. The five status bits of a
// node occupy the low bits of its byte (lane); the upper three bits of
// every lane stay zero. The byte-per-node layout (rather than the
// paper's §III.D 5-bit fields) trades 37% of the footprint for lanes
// that sit on natural byte boundaries, which is what makes the SWAR
// level scan below possible: one atomic 64-bit load yields eight node
// statuses, and classic free-byte bit tricks locate the first free
// candidate without per-node loads.

// FieldBits is the width of one packed status field (lane).
const FieldBits = 8

// LanesPerWord is how many node statuses one 64-bit word carries.
const LanesPerWord = 64 / FieldBits

// Lane-broadcast constants: the usual SWAR companions with one bit (or
// one byte value) repeated in every lane.
const (
	laneLSB  uint64 = 0x0101010101010101 // low bit of every lane
	laneMSB  uint64 = 0x8080808080808080 // high bit of every lane
	lane7F   uint64 = 0x7F7F7F7F7F7F7F7F
	busyAll  uint64 = uint64(Busy) * laneLSB // Busy mask in every lane
	coalAll  uint64 = uint64(CoalLeft|CoalRight) * laneLSB
	statMask uint64 = uint64(Mask) * laneLSB
)

// ShiftToLane positions a single-node status value (or mask) in lane j
// of a packed word — the building block for word-level atomic Or/And:
// setting a branch's coalescing bit is Or(ShiftToLane(CoalBit(c), j)),
// clearing a node outright is And(^ShiftToLane(Mask, j)).
func ShiftToLane(val uint32, j int) uint64 {
	return uint64(val&Mask) << (FieldBits * j)
}

// OccLane reports whether lane j's node is itself reserved (its Occ bit
// set) without extracting the lane.
func OccLane(word uint64, j int) bool {
	return word&ShiftToLane(Occ, j) != 0
}

// MarkLane returns word with the child's branch marked occupied and its
// coalescing bit cleared in lane j — the word-level form of
// Mark(CleanCoal(field, child), child), saving the extract/reinsert of
// the climb's hottest step.
func MarkLane(word uint64, j int, child uint64) uint64 {
	return word&^ShiftToLane(CoalLeft>>mod2(child), j) | ShiftToLane(OccLeft>>mod2(child), j)
}

// CoalLane reports whether lane j carries the coalescing bit of the
// child's branch (word-level IsCoal).
func CoalLane(word uint64, j int, child uint64) bool {
	return word&ShiftToLane(CoalLeft>>mod2(child), j) != 0
}

// UnmarkLane returns word with the child's branch occupancy and
// coalescing bits cleared in lane j (word-level Unmark).
func UnmarkLane(word uint64, j int, child uint64) uint64 {
	return word &^ ShiftToLane((OccLeft|CoalLeft)>>mod2(child), j)
}

// OccBuddyLane reports whether lane j carries the occupancy bit of the
// buddy of child (word-level IsOccBuddy).
func OccBuddyLane(word uint64, j int, child uint64) bool {
	return word&ShiftToLane(OccRight<<mod2(child), j) != 0
}

// CoalBuddyLane reports whether lane j carries the coalescing bit of the
// buddy of child (word-level IsCoalBuddy).
func CoalBuddyLane(word uint64, j int, child uint64) bool {
	return word&ShiftToLane(CoalRight<<mod2(child), j) != 0
}

// Field extracts the status of lane j from a packed word.
func Field(word uint64, j int) uint32 {
	return uint32(word>>(FieldBits*j)) & Mask
}

// WithField returns word with lane j replaced by val.
func WithField(word uint64, j int, val uint32) uint64 {
	shift := FieldBits * j
	return word&^(uint64(Mask)<<shift) | uint64(val&Mask)<<shift
}

// FieldMask returns the mask covering count consecutive lanes starting at
// lane j.
func FieldMask(j, count int) uint64 {
	return Fill(j, count, Mask)
}

// Fill returns count consecutive copies of val starting at lane j.
func Fill(j, count int, val uint32) uint64 {
	// count consecutive set bytes, starting at byte j.
	run := laneLSB >> (64 - FieldBits*count) << (FieldBits * j)
	return run * uint64(val&Mask)
}

// AnyBusy reports whether any of the count lanes starting at j has a Busy
// bit set, i.e. whether the covered node is not free.
func AnyBusy(word uint64, j, count int) bool {
	return word&Fill(j, count, Busy) != 0
}

// busyLanes returns the lane-occupancy bitmap of a word: the high bit of
// lane j is set iff lane j has at least one Busy bit. Masking with Busy
// leaves every lane ≤ 0x13 < 0x80, so adding 0x7F per lane carries into
// the lane's high bit exactly when the lane is non-zero and never across
// lanes — the bitmap is exact, with no borrow artifacts.
func busyLanes(word uint64) uint64 {
	m := word & busyAll
	return ((m + lane7F) | m) & laneMSB
}

// FirstFreeLane returns the lowest lane index j in [from, LanesPerWord)
// whose status byte has no Busy bit (pending coalescing bits do not
// disqualify a lane, matching IsFree), or LanesPerWord when every
// remaining lane is busy. It is the word-level form of the NBALLOC level
// probe: the classic free-byte trick (w - 0x0101…) & ^w & 0x8080… flags
// the first zero byte of the busy-masked word, and the first flag is
// exact even though borrow propagation can spuriously flag lanes above
// it — the scan only ever consumes the first.
func FirstFreeLane(word uint64, from int) int {
	m := word & busyAll
	// Lanes below the scan start must not surface: force them busy.
	m |= laneLSB & (1<<(FieldBits*from) - 1)
	z := (m - laneLSB) & ^m & laneMSB
	return bits.TrailingZeros64(z) / FieldBits // TrailingZeros64(0) = 64 -> 8
}

// alignedMSB[k] holds the high bits of the lanes that can start an
// aligned run of 1<<k lanes: every lane for runs of 1, lanes 0/2/4/6
// for pairs, lanes 0/4 for quads, lane 0 for a whole-word run.
var alignedMSB = [4]uint64{
	laneMSB,
	0x0080008000800080,
	0x0000008000000080,
	0x0000000000000080,
}

// FirstFreeRun generalizes FirstFreeLane to nodes covering count
// consecutive lanes (interior nodes of a bunch word): it returns the
// lowest count-aligned lane index f in [from, LanesPerWord) such that
// lanes [f, f+count) are all Busy-free, or LanesPerWord when no such run
// remains. from must itself be count-aligned and count a power of two
// (the bunch layout guarantees both). The exact busy-lane bitmap is
// folded so each run start accumulates its whole run's occupancy, then
// the first clear aligned position is picked.
func FirstFreeRun(word uint64, from, count int) int {
	b := busyLanes(word)
	for s := 1; s < count; s <<= 1 {
		b |= b >> (FieldBits * s)
	}
	// Candidate positions: high bits of count-aligned lanes at or after
	// from.
	cand := alignedMSB[bits.TrailingZeros8(uint8(count))] &^ (1<<(FieldBits*from) - 1)
	z := cand &^ b
	return bits.TrailingZeros64(z) / FieldBits
}
