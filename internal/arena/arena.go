// Package arena models the contiguous memory region a buddy-system
// instance manages. The allocators themselves operate purely on metadata
// and hand out offsets into the region (paper equation (3) computes
// starting addresses relative to base_address); an Arena optionally
// materializes the region as a byte slab so callers can actually read and
// write the memory they were granted.
//
// Keeping materialization optional lets the benchmark harness measure pure
// allocator behaviour — the paper's benchmarks never touch the allocated
// payload either — without reserving gigabytes of RSS.
package arena

import "fmt"

// Arena is a contiguous region of Total bytes, optionally backed by a slab.
type Arena struct {
	total uint64
	slab  []byte
}

// New creates an arena of the given size. If materialize is true the
// region is backed by real memory; otherwise only offsets exist.
func New(total uint64, materialize bool) *Arena {
	a := &Arena{total: total}
	if materialize {
		a.slab = make([]byte, total)
	}
	return a
}

// Total returns the region size in bytes.
func (a *Arena) Total() uint64 { return a.total }

// Materialized reports whether the region is backed by real memory.
func (a *Arena) Materialized() bool { return a.slab != nil }

// Bytes returns the [offset, offset+size) window of the region as a slice.
// It panics if the arena is not materialized or the window is out of
// bounds — both are caller bugs, not runtime conditions.
func (a *Arena) Bytes(offset, size uint64) []byte {
	if a.slab == nil {
		panic("arena: Bytes on a non-materialized arena")
	}
	if offset+size > a.total || offset+size < offset {
		panic(fmt.Sprintf("arena: window [%d,%d) outside region of %d bytes", offset, offset+size, a.total))
	}
	return a.slab[offset : offset+size : offset+size]
}
