//go:build !linux

package main

// rss is unavailable off Linux (and the mapped backing is bookkeeping
// there anyway); the demo then asserts on committed-bytes accounting
// only.
func rss() (uint64, bool) { return 0, false }
