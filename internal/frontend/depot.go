package frontend

import "sync"

// Depot is the shared, per-size-class magazine exchange of the front-end
// (the depot layer of cached kernel allocators [3]): handles trade whole
// magazines with it in O(1) — a full magazine in for an empty one when a
// worker's magazine overflows, an empty in for a full one when it runs
// dry — so the cross-thread hand-off cost of a remote-free workload is
// one mutex-protected pointer swap per magCap chunks instead of a
// back-end round trip per chunk. Only when the depot itself is empty
// (refill) or at capacity (drain) does memory move a layer down, and then
// it moves as one batch through the alloc.BatchAllocator contract.
type Depot struct {
	mu sync.Mutex
	// cap bounds the full magazines retained per size class; beyond it an
	// overflowing magazine is drained to the back-end in one batch.
	cap int
	// full[class] holds full magazines; empty holds exhausted magazine
	// slices awaiting reuse (they carry no chunks, only capacity).
	full  [][][]uint64
	empty [][]uint64

	stats DepotStats

	// sink, when non-nil, receives one call per batched back-end crossing
	// (refill, capacity drain, drain-range eviction) for the telemetry
	// flight recorder (a = class index where known, b = chunks moved).
	// Exchange hits stay unpublished — they are the O(1) steady state.
	sink func(event string, a, b uint64)
}

// SetEventSink installs the flight-recorder publish hook for back-end
// crossings. Install before traffic; nil uninstalls.
func (d *Depot) SetEventSink(fn func(event string, a, b uint64)) {
	d.mu.Lock()
	d.sink = fn
	d.mu.Unlock()
}

// emit publishes a crossing event. Called with mu held; nil-safe.
func (d *Depot) emit(event string, a, b uint64) {
	if d.sink != nil {
		d.sink(event, a, b)
	}
}

// DefaultDepotCapacity is the per-class bound of retained full magazines.
const DefaultDepotCapacity = 8

// DepotStats counts depot traffic; quiescent points only.
type DepotStats struct {
	FullPushes     uint64 // full magazines accepted from overflowing handles
	FullPops       uint64 // full magazines handed to running-dry handles
	PopMisses      uint64 // exchanges that found the class empty
	Drains         uint64 // full magazines refused at capacity (drained below)
	DrainedChunks  uint64 // chunks those drains moved to the back-end
	Refills        uint64 // back-end batch refills after a pop miss
	RefilledChunks uint64 // chunks those refills brought up
}

// newDepot builds a depot for the given number of size classes.
func newDepot(classes, capacity int) *Depot {
	if capacity <= 0 {
		capacity = DefaultDepotCapacity
	}
	return &Depot{cap: capacity, full: make([][][]uint64, classes)}
}

// ExchangeFull trades an exhausted magazine for a full one of the class.
// On a miss the empty slice is kept for a later exchange and the caller
// refills from the back-end instead.
func (d *Depot) ExchangeFull(cls int, empty []uint64) ([]uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	stack := d.full[cls]
	if len(stack) == 0 {
		d.stats.PopMisses++
		return nil, false
	}
	mag := stack[len(stack)-1]
	d.full[cls] = stack[:len(stack)-1]
	d.stats.FullPops++
	if empty != nil {
		d.empty = append(d.empty, empty[:0])
	}
	return mag, true
}

// ExchangeEmpty trades a full magazine for an empty one. When the class
// is at capacity it refuses (ok false) and the caller drains the
// magazine to the back-end in one batch.
func (d *Depot) ExchangeEmpty(cls int, full []uint64) ([]uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.full[cls]) >= d.cap {
		d.stats.Drains++
		d.stats.DrainedChunks += uint64(len(full))
		d.emit("drain", uint64(cls), uint64(len(full)))
		return nil, false
	}
	d.full[cls] = append(d.full[cls], full)
	d.stats.FullPushes++
	var empty []uint64
	if n := len(d.empty); n > 0 {
		empty = d.empty[n-1]
		d.empty = d.empty[:n-1]
	}
	return empty, true
}

// noteRefill records a back-end batch refill performed by a handle after
// a pop miss.
func (d *Depot) noteRefill(chunks int) {
	d.mu.Lock()
	d.stats.Refills++
	d.stats.RefilledChunks += uint64(chunks)
	d.emit("refill", 0, uint64(chunks))
	d.mu.Unlock()
}

// DrainRange removes and returns every retained full magazine holding at
// least one chunk in the global offset window [lo, hi) — the elastic
// shrink path: a draining back-end instance cannot reach zero live chunks
// while the depot parks its memory. Magazines mix chunks from several
// instances (they are filled by frees, which route anywhere), so a
// matching magazine is evicted whole; the caller frees it down and the
// out-of-window chunks simply return to their own instances.
func (d *Depot) DrainRange(lo, hi uint64) [][]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out [][]uint64
	for cls, stack := range d.full {
		kept := stack[:0]
		for _, mag := range stack {
			hit := false
			for _, off := range mag {
				if off >= lo && off < hi {
					hit = true
					break
				}
			}
			if hit {
				out = append(out, mag)
				d.stats.Drains++
				d.stats.DrainedChunks += uint64(len(mag))
				d.emit("drain-range", uint64(cls), uint64(len(mag)))
			} else {
				kept = append(kept, mag)
			}
		}
		d.full[cls] = kept
	}
	return out
}

// DrainAll removes and returns every retained full magazine — the Scrub
// path: depot residency does not survive a quiesce, all depot-held chunks
// go back to the back-end. Quiescent points only.
func (d *Depot) DrainAll() [][]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out [][]uint64
	for cls, stack := range d.full {
		out = append(out, stack...)
		d.full[cls] = nil
	}
	d.empty = nil
	return out
}

// Retained returns the number of chunks currently parked in the depot;
// quiescent points only.
func (d *Depot) Retained() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, stack := range d.full {
		for _, mag := range stack {
			n += len(mag)
		}
	}
	return n
}

// Stats returns the depot counters; quiescent points only.
func (d *Depot) Stats() DepotStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}
