package telemetry

import (
	"sync"
)

// DefaultSampleInterval is the per-handle sampling countdown: one in
// every N single-chunk operations is timed. Sampling is what keeps the
// timed path inside the overhead budget (<3% of a back-end op, gated in
// CI; see DESIGN.md "Observability"): an untimed operation costs one
// decrement and one forwarding call, a timed one adds two clock reads —
// at 256 the clock cost amortizes to a fraction of a nanosecond per op,
// leaving the probe's fixed interception cost (a second interface
// dispatch) as the floor. Batch operations are always timed — they are
// refill-path rare and amortize the clock over the whole batch.
const DefaultSampleInterval = 256

// DefaultRingSize is the per-shard capacity of the flight-recorder ring.
const DefaultRingSize = 256

// Config tunes a Registry. The zero value takes every default.
type Config struct {
	// SampleInterval times one in N single-chunk handle operations
	// (0 = DefaultSampleInterval, 1 = every operation).
	SampleInterval int
	// RingSize is the per-shard event capacity of the flight recorder
	// (0 = DefaultRingSize).
	RingSize int
	// RingShards is the number of write-sharded sub-rings (0 = one per
	// processor hint). Deterministic harnesses (chaos) pin it to 1 so
	// overwrite-oldest eviction does not depend on goroutine placement.
	RingShards int
}

// Registry is one stack's telemetry root: the ordered set of
// layer-boundary latency series plus the flight-recorder ring. A nil
// *Registry is the disabled state — Build inserts no probes and wires
// no event sinks, so the hot path pays nothing.
type Registry struct {
	interval int
	ring     *Ring

	mu     sync.Mutex
	series []*Series
}

// New builds a registry.
func New(cfg Config) *Registry {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	return &Registry{
		interval: cfg.SampleInterval,
		ring:     newRing(cfg.RingSize, cfg.RingShards),
	}
}

// SampleInterval returns the per-handle sampling countdown period.
func (r *Registry) SampleInterval() int { return r.interval }

// Ring returns the flight-recorder event ring.
func (r *Registry) Ring() *Ring { return r.ring }

// Sink returns a publish closure bound to a source label, the shape the
// event-emitting layers (elastic, fault, slab, depot, mem) accept —
// they depend on nothing in this package.
func (r *Registry) Sink(source string) func(event string, a, b uint64) {
	return func(event string, a, b uint64) { r.ring.Publish(source, event, a, b) }
}

// Series returns the latency series for a layer boundary, creating it
// on first use. Build calls it once per probe, bottom-up.
func (r *Registry) Series(layer string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.series {
		if s.layer == layer {
			return s
		}
	}
	s := &Series{layer: layer}
	r.series = append(r.series, s)
	return s
}

// OpLatency is one operation's merged summary at one layer boundary.
type OpLatency struct {
	Op      string `json:"op"`
	Samples uint64 `json:"samples"`
	Percentiles
}

// LayerLatency is one layer boundary's merged summary.
type LayerLatency struct {
	Layer string      `json:"layer"`
	Ops   []OpLatency `json:"ops"`
}

// Latencies merges every boundary's live handles and retained
// accumulators into percentile summaries, top-down (probes register
// bottom-up; the report reverses them so it reads like LayerStats).
// Quiescent points preferred; concurrent records may be partially seen.
func (r *Registry) Latencies() []LayerLatency {
	r.mu.Lock()
	series := append([]*Series(nil), r.series...)
	r.mu.Unlock()
	out := make([]LayerLatency, 0, len(series))
	for i := len(series) - 1; i >= 0; i-- {
		s := series[i]
		merged := s.Merged()
		ll := LayerLatency{Layer: s.layer}
		for op := Op(0); op < numOps; op++ {
			snap := &merged[op]
			ll.Ops = append(ll.Ops, OpLatency{
				Op:          op.String(),
				Samples:     snap.Total(),
				Percentiles: snap.Percentiles(),
			})
		}
		out = append(out, ll)
	}
	return out
}

// Series is the latency accumulator of one layer boundary: the retained
// buckets of closed handles plus the live handles still recording.
type Series struct {
	layer string

	mu       sync.Mutex
	retained [numOps]Snapshot
	live     []*histSet
}

// Layer returns the boundary label.
func (s *Series) Layer() string { return s.layer }

// histSet is one handle's histograms, one per operation.
type histSet struct {
	h [numOps]Histogram
}

// newSet registers a fresh per-handle histogram set.
func (s *Series) newSet() *histSet {
	hs := &histSet{}
	s.mu.Lock()
	s.live = append(s.live, hs)
	s.mu.Unlock()
	return hs
}

// close folds a handle's buckets into the retained accumulator and
// drops it from the live list (swap-remove, same shape as the layers'
// handle registries), so the series stays flat under worker churn.
func (s *Series) close(hs *histSet) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for op := range hs.h {
		hs.h[op].AddTo(&s.retained[op])
	}
	for i, l := range s.live {
		if l == hs {
			s.live[i] = s.live[len(s.live)-1]
			s.live[len(s.live)-1] = nil
			s.live = s.live[:len(s.live)-1]
			break
		}
	}
}

// Merged returns retained plus live buckets per operation.
func (s *Series) Merged() [numOps]Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.retained
	for _, hs := range s.live {
		for op := range hs.h {
			hs.h[op].AddTo(&out[op])
		}
	}
	return out
}
