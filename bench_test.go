// Benchmark harness: one testing.B family per paper figure plus the
// ablations called out in DESIGN.md. Each figure bench reproduces the
// corresponding workload pattern with b.N operations spread over a worker
// grid; `go test -bench Fig08 -benchmem` regenerates the shape of Figure 8
// (per-operation cost by allocator, size and thread count), and so on.
// cmd/nbbsfig renders the same experiments as the paper's tables instead.
package nbbs_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alloc"
	"repro/internal/frontend"

	"repro/internal/bunch"
	_ "repro/internal/cloudwu"
	"repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
	_ "repro/internal/stack"
)

// benchInstance mirrors the paper's user-space configuration: 8-byte
// allocation units, 16 KB maximum chunks (Figures 8-11).
var benchInstance = alloc.Config{Total: 16 << 20, MinSize: 8, MaxSize: 16 << 10}

// kernelInstance mirrors Figure 12: page-grained units, 4 MB max order.
var kernelInstance = alloc.Config{Total: 256 << 20, MinSize: 4 << 10, MaxSize: 4 << 20}

// benchAllocators is the paper's user-space comparison set.
var benchAllocators = []string{"4lvl-nb", "1lvl-nb", "4lvl-sl", "1lvl-sl", "buddy-sl"}

func benchThreads() []int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return []int{1}
	}
	return []int{1, n}
}

// runWorkers spreads b.N operations over the worker goroutines, each
// driving its own handle with the given per-worker body.
func runWorkers(b *testing.B, a alloc.Allocator, threads int, body func(h alloc.Handle, iters int, id int)) {
	b.Helper()
	iters := b.N / threads
	if iters == 0 {
		iters = 1
	}
	handles := make([]alloc.Handle, threads)
	for i := range handles {
		handles[i] = a.NewHandle()
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(handles[w], iters, w)
		}()
	}
	wg.Wait()
	b.StopTimer()
}

func build(b *testing.B, variant string, cfg alloc.Config) alloc.Allocator {
	b.Helper()
	a, err := alloc.Build(variant, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkFig08LinuxScalability: the Linux Scalability pattern — tight
// same-size alloc/free pairs per worker (paper Figure 8; one op = one
// alloc+free pair).
func BenchmarkFig08LinuxScalability(b *testing.B) {
	for _, variant := range benchAllocators {
		for _, size := range []uint64{8, 128, 1024} {
			for _, threads := range benchThreads() {
				b.Run(fmt.Sprintf("%s/bytes=%d/threads=%d", variant, size, threads), func(b *testing.B) {
					a := build(b, variant, benchInstance)
					runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
						for i := 0; i < iters; i++ {
							if off, ok := h.Alloc(size); ok {
								h.Free(off)
							}
						}
					})
				})
			}
		}
	}
}

// BenchmarkFig09ThreadTest: the Thread Test pattern — allocate a batch,
// then free the whole batch (paper Figure 9; one op = one alloc+free pair,
// batched 100 at a time).
func BenchmarkFig09ThreadTest(b *testing.B) {
	const batch = 100
	for _, variant := range benchAllocators {
		for _, size := range []uint64{8, 128, 1024} {
			for _, threads := range benchThreads() {
				b.Run(fmt.Sprintf("%s/bytes=%d/threads=%d", variant, size, threads), func(b *testing.B) {
					a := build(b, variant, benchInstance)
					runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
						live := make([]uint64, 0, batch)
						for done := 0; done < iters; {
							live = live[:0]
							for k := 0; k < batch && done < iters; k++ {
								if off, ok := h.Alloc(size); ok {
									live = append(live, off)
								}
								done++
							}
							for _, off := range live {
								h.Free(off)
							}
						}
					})
				})
			}
		}
	}
}

// BenchmarkFig10Larson: the Larson pattern — replace a random chunk in a
// shared table, freeing what another worker allocated (paper Figure 10;
// one op = one replace).
func BenchmarkFig10Larson(b *testing.B) {
	const slots = 2048
	for _, variant := range benchAllocators {
		for _, size := range []uint64{8, 128, 1024} {
			for _, threads := range benchThreads() {
				b.Run(fmt.Sprintf("%s/bytes=%d/threads=%d", variant, size, threads), func(b *testing.B) {
					a := build(b, variant, benchInstance)
					table := make([]atomic.Uint64, slots)
					runWorkers(b, a, threads, func(h alloc.Handle, iters, id int) {
						rng := rand.New(rand.NewSource(int64(id) + 1))
						for i := 0; i < iters; i++ {
							var repl uint64
							if off, ok := h.Alloc(size); ok {
								repl = off + 1
							}
							if old := table[rng.Intn(slots)].Swap(repl); old != 0 {
								h.Free(old - 1)
							}
						}
					})
					// Drain outside the timed region.
					for i := range table {
						if v := table[i].Swap(0); v != 0 {
							a.Free(v - 1)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig11ConstantOccupancy: the paper's own pattern — a standing
// mixed-size pool per worker, each op frees a random element and
// re-allocates its size (paper Figure 11; one op = one free+alloc pair).
func BenchmarkFig11ConstantOccupancy(b *testing.B) {
	for _, variant := range benchAllocators {
		for _, size := range []uint64{8, 128, 1024} {
			for _, threads := range benchThreads() {
				b.Run(fmt.Sprintf("%s/bytes=%d/threads=%d", variant, size, threads), func(b *testing.B) {
					a := build(b, variant, benchInstance)
					runWorkers(b, a, threads, func(h alloc.Handle, iters, id int) {
						rng := rand.New(rand.NewSource(int64(id) + 1))
						type chunk struct {
							off  uint64
							size uint64
							ok   bool
						}
						// More chunks at smaller sizes, max 16x min size.
						var pool []chunk
						for c := 0; c < 5; c++ {
							s := size << c
							for k := 0; k < 16>>c; k++ {
								off, ok := h.Alloc(s)
								pool = append(pool, chunk{off, s, ok})
							}
						}
						for i := 0; i < iters; i++ {
							c := &pool[rng.Intn(len(pool))]
							if c.ok {
								h.Free(c.off)
							}
							c.off, c.ok = h.Alloc(c.size)
						}
						for _, c := range pool {
							if c.ok {
								h.Free(c.off)
							}
						}
					})
				})
			}
		}
	}
}

// BenchmarkFig12KernelComparison: the kernel-style configuration — 128 KB
// chunks on a page-grained instance, the non-blocking allocators against
// the Linux-style free-list buddy at full parallelism (paper Figure 12).
func BenchmarkFig12KernelComparison(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	const size = 128 << 10
	for _, variant := range []string{"4lvl-nb", "1lvl-nb", "buddy-sl", "linux-buddy"} {
		for _, pattern := range []string{"linux-scalability", "thread-test", "constant-occupancy"} {
			b.Run(fmt.Sprintf("%s/%s/threads=%d", variant, pattern, threads), func(b *testing.B) {
				a := build(b, variant, kernelInstance)
				switch pattern {
				case "linux-scalability":
					runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
						for i := 0; i < iters; i++ {
							if off, ok := h.Alloc(size); ok {
								h.Free(off)
							}
						}
					})
				case "thread-test":
					runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
						live := make([]uint64, 0, 16)
						for done := 0; done < iters; {
							live = live[:0]
							for k := 0; k < 16 && done < iters; k++ {
								if off, ok := h.Alloc(size); ok {
									live = append(live, off)
								}
								done++
							}
							for _, off := range live {
								h.Free(off)
							}
						}
					})
				case "constant-occupancy":
					runWorkers(b, a, threads, func(h alloc.Handle, iters, id int) {
						rng := rand.New(rand.NewSource(int64(id) + 1))
						var pool []uint64
						for k := 0; k < 8; k++ {
							if off, ok := h.Alloc(size); ok {
								pool = append(pool, off)
							}
						}
						for i := 0; i < iters; i++ {
							if len(pool) == 0 {
								break
							}
							k := rng.Intn(len(pool))
							h.Free(pool[k])
							if off, ok := h.Alloc(size); ok {
								pool[k] = off
							} else {
								pool[k] = pool[len(pool)-1]
								pool = pool[:len(pool)-1]
							}
						}
						for _, off := range pool {
							h.Free(off)
						}
					})
				}
			})
		}
	}
}

// BenchmarkAblationRMWCount quantifies §III.D's claim: the 4-level layout
// cuts atomic RMW instructions per operation by ~4x on deep climbs. The
// custom metrics RMW/op and CASfail/op are the point; ns/op is secondary.
func BenchmarkAblationRMWCount(b *testing.B) {
	for _, variant := range []string{"1lvl-nb", "4lvl-nb"} {
		for _, size := range []uint64{8, 1024} {
			b.Run(fmt.Sprintf("%s/bytes=%d", variant, size), func(b *testing.B) {
				a := build(b, variant, benchInstance)
				threads := runtime.GOMAXPROCS(0)
				runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
					for i := 0; i < iters; i++ {
						if off, ok := h.Alloc(size); ok {
							h.Free(off)
						}
					}
				})
				s := a.Stats()
				if ops := s.OpsTotal(); ops > 0 {
					b.ReportMetric(float64(s.RMW)/float64(ops), "RMW/op")
					b.ReportMetric(float64(s.CASFail)/float64(ops), "CASfail/op")
				}
			})
		}
	}
}

// BenchmarkAblationScatter measures the §III.B scattered scan start: with
// it, concurrent same-level allocations spread over the level; without it,
// they all fight for the first free node.
func BenchmarkAblationScatter(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, scattered := range []bool{true, false} {
		name := "scattered"
		if !scattered {
			name = "fixed-start"
		}
		b.Run(fmt.Sprintf("1lvl-nb/%s/threads=%d", name, threads), func(b *testing.B) {
			var opts []core.Option
			if !scattered {
				opts = append(opts, core.WithoutScatter())
			}
			a, err := core.New(benchInstance.Total, benchInstance.MinSize, benchInstance.MaxSize, opts...)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
				for i := 0; i < iters; i++ {
					if off, ok := h.Alloc(64); ok {
						h.Free(off)
					}
				}
			})
		})
		b.Run(fmt.Sprintf("4lvl-nb/%s/threads=%d", name, threads), func(b *testing.B) {
			var opts []bunch.Option
			if !scattered {
				opts = append(opts, bunch.WithoutScatter())
			}
			a, err := bunch.New(benchInstance.Total, benchInstance.MinSize, benchInstance.MaxSize, opts...)
			if err != nil {
				b.Fatal(err)
			}
			runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
				for i := 0; i < iters; i++ {
					if off, ok := h.Alloc(64); ok {
						h.Free(off)
					}
				}
			})
		})
	}
}

// BenchmarkAblationLockKind compares spin-lock flavors under the blocking
// baseline, checking the baselines are not strawmen: the paper's gap must
// hold against the best lock, not just the worst.
func BenchmarkAblationLockKind(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, kind := range []string{"tas", "ttas", "ticket"} {
		b.Run(fmt.Sprintf("1lvl-sl/%s/threads=%d", kind, threads), func(b *testing.B) {
			cfg := benchInstance
			cfg.LockKind = kind
			a := build(b, "1lvl-sl", cfg)
			runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
				for i := 0; i < iters; i++ {
					if off, ok := h.Alloc(64); ok {
						h.Free(off)
					}
				}
			})
		})
	}
}

// BenchmarkAblationFrontend measures the future-work composition: the
// Larson pattern straight on the back-end versus through per-worker
// caching magazines.
func BenchmarkAblationFrontend(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	const slots = 2048
	run := func(b *testing.B, mkHandle func() alloc.Handle, a alloc.Allocator) {
		table := make([]atomic.Uint64, slots)
		iters := b.N / threads
		if iters == 0 {
			iters = 1
		}
		handles := make([]alloc.Handle, threads)
		for i := range handles {
			handles[i] = mkHandle()
		}
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < threads; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := handles[w]
				rng := rand.New(rand.NewSource(int64(w) + 1))
				for i := 0; i < iters; i++ {
					var repl uint64
					if off, ok := h.Alloc(128); ok {
						repl = off + 1
					}
					if old := table[rng.Intn(slots)].Swap(repl); old != 0 {
						h.Free(old - 1)
					}
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		for w := range handles {
			if fh, ok := handles[w].(*frontend.Handle); ok {
				fh.Flush()
			}
		}
		for i := range table {
			if v := table[i].Swap(0); v != 0 {
				a.Free(v - 1)
			}
		}
	}
	b.Run(fmt.Sprintf("direct/threads=%d", threads), func(b *testing.B) {
		a := build(b, "4lvl-nb", benchInstance)
		run(b, a.NewHandle, a)
	})
	b.Run(fmt.Sprintf("cached/threads=%d", threads), func(b *testing.B) {
		a := build(b, "4lvl-nb", benchInstance)
		fe, err := frontend.New(a, 32)
		if err != nil {
			b.Fatal(err)
		}
		run(b, fe.NewHandle, a)
	})
}

// BenchmarkStackCachedMulti measures the composed layer stacks on the
// Larson pattern (cross-worker frees, the workload that exercises both
// the magazines and the router): the bare back-end against the
// multi-instance router, the caching front-end, and the full
// cached+multi production composition the paper's conclusions call for.
func BenchmarkStackCachedMulti(b *testing.B) {
	const slots = 2048
	stacks := []string{
		"4lvl-nb", "multi4+4lvl-nb", "cached+4lvl-nb", "cached+multi4+4lvl-nb",
		"depot+4lvl-nb", "depot+multi4+4lvl-nb",
	}
	for _, variant := range stacks {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", variant, threads), func(b *testing.B) {
				a := build(b, variant, benchInstance)
				table := make([]atomic.Uint64, slots)
				runWorkers(b, a, threads, func(h alloc.Handle, iters, id int) {
					rng := rand.New(rand.NewSource(int64(id) + 1))
					for i := 0; i < iters; i++ {
						var repl uint64
						if off, ok := h.Alloc(128); ok {
							repl = off + 1
						}
						if old := table[rng.Intn(slots)].Swap(repl); old != 0 {
							h.Free(old - 1)
						}
					}
				})
				for i := range table {
					if v := table[i].Swap(0); v != 0 {
						a.Free(v - 1)
					}
				}
				if fe, ok := a.(*frontend.Allocator); ok {
					cache := fe.CacheTotals()
					if ops := cache.Hits + cache.Misses; ops > 0 {
						b.ReportMetric(float64(cache.Hits)/float64(ops)*100, "maghit%")
					}
				}
			})
		}
	}
}

// BenchmarkAblationFragmentation tests the paper's resilience claim (§I):
// the non-blocking allocator should not degrade "independently of the
// current level of fragmentation of the handled memory blocks", whereas
// lock-based scans serialize behind longer critical sections as the tree
// fills up. The instance is pre-fragmented to the given occupancy with
// scattered min-size chunks before the timed churn.
func BenchmarkAblationFragmentation(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	for _, variant := range []string{"4lvl-nb", "1lvl-nb", "1lvl-sl", "buddy-sl"} {
		for _, occupancy := range []int{0, 50, 90} {
			b.Run(fmt.Sprintf("%s/occupancy=%d%%/threads=%d", variant, occupancy, threads), func(b *testing.B) {
				cfg := alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 16 << 10}
				a := build(b, variant, cfg)
				// Pre-fragment: fill `occupancy`% of the allocation units
				// with 64-byte chunks, then free every other one so the
				// remaining free space is maximally scattered.
				pre := a.NewHandle()
				units := int(cfg.Total / 64)
				var planted []uint64
				for i := 0; i < units*occupancy/100; i++ {
					if off, ok := pre.Alloc(64); ok {
						planted = append(planted, off)
					}
				}
				for i := 0; i < len(planted); i += 2 {
					pre.Free(planted[i])
				}
				runWorkers(b, a, threads, func(h alloc.Handle, iters, _ int) {
					for i := 0; i < iters; i++ {
						if off, ok := h.Alloc(64); ok {
							h.Free(off)
						}
					}
				})
			})
		}
	}
}

// BenchmarkLevelScan isolates the NBALLOC level-scan cost the packed
// status words target, away from the full drivers: a single worker
// ping-pongs one min-class chunk over three pre-planted landscapes.
// "empty" is the best case (the first probed word has a free lane);
// "checkerboard" plants long-lived chunks with one hole per 16, so the
// rotating scatter start walks ~8 occupied statuses per allocation; and
// "near-full" leaves one hole per 64, walking ~32. The occupied-run
// traversal is where the SWAR pass replaces one atomic load per node
// with one per eight nodes.
func BenchmarkLevelScan(b *testing.B) {
	cfg := alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 16 << 10}
	const size = 64
	landscapes := []struct {
		name      string
		holeEvery int // plant chunks, then free every holeEvery-th (0 = plant nothing)
	}{
		{"empty", 0},
		{"checkerboard", 16},
		{"near-full", 64},
	}
	for _, land := range landscapes {
		for _, variant := range []string{"1lvl-nb", "4lvl-nb"} {
			b.Run(fmt.Sprintf("%s/%s", land.name, variant), func(b *testing.B) {
				a := build(b, variant, cfg)
				planter := a.NewHandle()
				var keep []uint64
				if land.holeEvery > 0 {
					var planted []uint64
					for {
						off, ok := planter.Alloc(size)
						if !ok {
							break
						}
						planted = append(planted, off)
					}
					for i, off := range planted {
						if i%land.holeEvery == 0 {
							planter.Free(off)
						} else {
							keep = append(keep, off)
						}
					}
				}
				h := a.NewHandle()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if off, ok := h.Alloc(size); ok {
						h.Free(off)
					}
				}
				b.StopTimer()
				for _, off := range keep {
					planter.Free(off)
				}
			})
		}
	}
}
