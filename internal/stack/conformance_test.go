package stack_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
	"repro/internal/multi"
	"repro/internal/stack"
	"repro/internal/trace"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
)

// instancesFor picks the largest instance count (up to want) whose share
// of total can still serve maxSize, mirroring the registry composites.
func instancesFor(want int, total, maxSize uint64) int {
	n := want
	for n > 1 && total/uint64(n) < maxSize {
		n /= 2
	}
	return n
}

// specBuilder adapts a Spec template to the conformance suite: the
// suite's (total, minSize, maxSize) describes the GLOBAL offset space,
// which multi specs split over their instances.
func specBuilder(template stack.Spec, wantInstances int) alloctest.Builder {
	return func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
		t.Helper()
		s := template
		n := 1
		if wantInstances > 1 {
			n = instancesFor(wantInstances, total, maxSize)
		}
		if n > 1 {
			s.Instances = n
		} else {
			s.Instances = 0
		}
		s.Per = alloc.Config{Total: total / uint64(n), MinSize: minSize, MaxSize: maxSize}
		if template.Record != nil {
			// A fresh trace per instance, or replays of earlier sub-tests
			// would interleave.
			s.Record = &trace.Trace{}
		}
		st, err := stack.Build(s)
		if err != nil {
			t.Fatalf("stack.Build: %v", err)
		}
		return st.Top
	}
}

// TestConformanceCachedMulti runs the full conformance suite over the
// caching front-end stacked on a 4-instance router — the composition the
// seed rejected outright (frontend.New failed on Multi's missing
// ChunkSizer).
func TestConformanceCachedMulti(t *testing.T) {
	alloctest.RunBuilder(t, specBuilder(stack.Spec{
		Variant: "4lvl-nb",
		Cached:  true, Magazine: 8,
	}, 4))
}

// TestConformanceTraceCached runs the suite over the trace recorder
// stacked on the caching front-end: every handle operation is recorded
// while the magazines reshape the back-end traffic underneath.
func TestConformanceTraceCached(t *testing.T) {
	alloctest.RunBuilder(t, specBuilder(stack.Spec{
		Variant: "1lvl-nb",
		Cached:  true, Magazine: 8,
		Record: &trace.Trace{},
	}, 1))
}

// TestConformanceMultiMaterialized runs the suite over a materialized
// 4-instance router — the composition nbbs.NewMulti used to reject.
func TestConformanceMultiMaterialized(t *testing.T) {
	alloctest.RunBuilder(t, specBuilder(stack.Spec{
		Variant:     "4lvl-nb",
		Materialize: true,
	}, 4))
}

// TestConformanceFullStack runs the suite over the complete production
// composition of the acceptance criteria: caching front-end + 4-instance
// router + materialized region.
func TestConformanceFullStack(t *testing.T) {
	alloctest.RunBuilder(t, specBuilder(stack.Spec{
		Variant: "4lvl-nb",
		Cached:  true, Magazine: 8,
		Materialize: true,
	}, 4))
}

// TestConformanceRegistryComposites runs the suite over the composite
// variants registered for the benchmark harness, by name like any leaf.
func TestConformanceRegistryComposites(t *testing.T) {
	for _, name := range []string{
		"cached+4lvl-nb", "multi4+4lvl-nb", "cached+multi4+4lvl-nb",
		"depot+4lvl-nb", "depot+multi4+4lvl-nb", "elastic+multi+4lvl-nb",
		"mapped+elastic+multi+4lvl-nb",
		"shard+mapped+elastic+multi+4lvl-nb",
		"slab+4lvl-nb", "slab+depot+multi4+4lvl-nb",
		"slab+mapped+elastic+multi+4lvl-nb",
	} {
		t.Run(name, func(t *testing.T) { alloctest.Run(t, name) })
	}
}

// TestConformanceFixedPolicyMulti pins every handle to instance 0 (the
// paper's Figure 12 memory policy) and checks the fallback path keeps
// the composed allocator conformant.
func TestConformanceFixedPolicyMulti(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-policy sweep skipped in -short")
	}
	alloctest.RunBuilder(t, specBuilder(stack.Spec{
		Variant: "4lvl-nb",
		Policy:  multi.Fixed,
	}, 4))
}
