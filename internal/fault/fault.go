// Package fault is the deterministic syscall-fault injector of the
// mapped/elastic stack: a schedulable shim table that internal/mem
// routes every platform call through, so tests — and the chaos harness —
// can make the environment fail on command.
//
// The paper's claims are progress guarantees: the allocator keeps
// serving under contention. The layers grown over it (mapped memory,
// elastic capacity, the multi router's lifecycle) lean on syscalls —
// mmap, mprotect, madvise, mbind — that fail in production for
// environmental reasons (ENOMEM under pressure, EAGAIN from the kernel,
// THP disabled). Those failures are nearly impossible to provoke
// naturally in a test, so every recovery path they guard would otherwise
// ship untested. The injector closes that gap deterministically:
//
//   - every call site is a named Site with a per-site call counter;
//   - a schedule of Rules decides which calls fail: the Nth call, every
//     call, a call-index range, or a seeded probability;
//   - every injected fault is recorded as (site, call index), so a
//     failing schedule — however it was generated — replays exactly via
//     Replay/UseReplay, which is what the chaos harness uploads as its
//     incident artifact.
//
// The injector is nil-safe (a nil *Injector injects nothing), so the
// production path pays one nil check per syscall — all of which are on
// cold lifecycle paths (commit/decommit), never on alloc/free.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// Site names one injectable syscall site of the platform backend.
type Site string

// The sites internal/mem routes through the injector. The portable
// fallback checks the same sites, so fault schedules behave identically
// on every platform.
const (
	// Reserve is the address-space reservation (mmap on Linux).
	Reserve Site = "reserve"
	// Commit is the make-resident transition (mprotect RW + touch).
	Commit Site = "commit"
	// Huge is the transparent-huge-page advise inside a commit
	// (MADV_HUGEPAGE); its failure is the first rung of the degradation
	// ladder — the window falls back to base 4KiB pages.
	Huge Site = "huge"
	// Bind is the NUMA placement call (mbind); best-effort by contract.
	Bind Site = "bind"
	// Decommit is the return-to-OS transition (MADV_DONTNEED).
	Decommit Site = "decommit"
)

// Sites lists every injectable site.
func Sites() []Site { return []Site{Reserve, Commit, Huge, Bind, Decommit} }

// Fault is one injected failure: the N-th call (1-based) at Site failed
// with Err. A []Fault is a complete, replayable schedule — the JSON form
// is the chaos harness's incident artifact.
type Fault struct {
	Site Site   `json:"site"`
	N    uint64 `json:"n"`
	Err  string `json:"err"`
}

func (f Fault) String() string { return fmt.Sprintf("%s#%d: %s", f.Site, f.N, f.Err) }

// Rule decides whether one call at a site fails. Build rules with the
// Fail* constructors; exactly one trigger (Nth, Every/From/To, Prob) is
// set per rule.
type Rule struct {
	Site Site
	// Nth fails exactly the Nth call (1-based); 0 disables this trigger.
	Nth uint64
	// Every fails all calls, optionally windowed to [From, To] (0 = open).
	Every    bool
	From, To uint64
	// Prob fails each call independently with this probability, decided
	// by the injector's seed and the call index — deterministic for a
	// given (seed, site, index), so a probabilistic run is reproducible
	// from its seed alone and exactly replayable from its record.
	Prob float64
	// Err is the error injected (defaults to a generic injected-fault
	// error when nil).
	Err error
}

// FailNth fails exactly the nth call (1-based) at the site.
func FailNth(site Site, n uint64, err error) Rule { return Rule{Site: site, Nth: n, Err: err} }

// FailAlways fails every call at the site until the schedule changes.
func FailAlways(site Site, err error) Rule { return Rule{Site: site, Every: true, Err: err} }

// FailRange fails every call with index in [from, to] (1-based,
// inclusive; to == 0 leaves the range open-ended).
func FailRange(site Site, from, to uint64, err error) Rule {
	return Rule{Site: site, Every: true, From: from, To: to, Err: err}
}

// FailProb fails each call at the site with probability p, seeded by the
// injector (deterministic per call index).
func FailProb(site Site, p float64, err error) Rule { return Rule{Site: site, Prob: p, Err: err} }

func (r Rule) matches(n, seed uint64) bool {
	switch {
	case r.Nth != 0:
		return n == r.Nth
	case r.Every:
		if r.From != 0 && n < r.From {
			return false
		}
		if r.To != 0 && n > r.To {
			return false
		}
		return true
	case r.Prob > 0:
		return hash64(seed^siteHash(r.Site)^n*0x9E3779B97F4A7C15) < uint64(r.Prob*float64(1<<63)*2)
	}
	return false
}

// siteHash folds a site name into 64 bits (FNV-1a).
func siteHash(s Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hash64 is SplitMix64's finalizer: a cheap, well-mixed 64-bit hash.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Injector is a schedulable fault source. All methods are safe for
// concurrent use and nil-safe: a nil injector never injects, so callers
// hold one unconditionally.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	rules  []Rule
	replay map[Site]map[uint64]string

	calls    map[Site]uint64
	injected map[Site]uint64
	record   []Fault

	// sink, when non-nil, receives one call per injected fault for the
	// telemetry flight recorder: event is the site name, a the 1-based
	// call index. Invoked with mu held, in injection order, so the ring's
	// logical steps match the record's order exactly.
	sink func(event string, a, b uint64)
}

// New builds an injector with the given seed (for probabilistic rules)
// and initial schedule. An empty schedule injects nothing until Set.
func New(seed uint64, rules ...Rule) *Injector {
	return &Injector{
		seed:     seed,
		rules:    rules,
		calls:    map[Site]uint64{},
		injected: map[Site]uint64{},
	}
}

// Replay builds an injector that fails exactly the recorded faults —
// the same (site, call index) pairs with the same error text — and
// nothing else.
func Replay(faults []Fault) *Injector {
	in := New(0)
	in.UseReplay(faults)
	return in
}

// Check is the shim: call sites invoke it once per syscall attempt, and
// a non-nil return is the injected failure (the syscall must not run).
// Call counting continues across schedule changes, so a record spliced
// together from several Set/Clear phases still replays exactly.
func (in *Injector) Check(site Site) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[site]++
	n := in.calls[site]
	if in.replay != nil {
		if msg, ok := in.replay[site][n]; ok {
			return in.fail(site, n, errors.New(msg))
		}
		return nil
	}
	for _, r := range in.rules {
		if r.Site != site || !r.matches(n, in.seed) {
			continue
		}
		err := r.Err
		if err == nil {
			err = fmt.Errorf("fault: injected %s failure", site)
		}
		return in.fail(site, n, err)
	}
	return nil
}

// fail records and returns one injected fault. Called with mu held.
func (in *Injector) fail(site Site, n uint64, err error) error {
	in.injected[site]++
	in.record = append(in.record, Fault{Site: site, N: n, Err: err.Error()})
	if in.sink != nil {
		in.sink(string(site), n, 0)
	}
	return err
}

// SetEventSink installs the flight-recorder publish hook: every
// injected fault is published as (site, call index). Nil-safe on a nil
// injector; nil uninstalls.
func (in *Injector) SetEventSink(fn func(event string, a, b uint64)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.sink = fn
	in.mu.Unlock()
}

// Set replaces the schedule; call counters and the record persist, so
// phased schedules (arm, escalate, clear) produce one coherent record.
func (in *Injector) Set(rules ...Rule) {
	in.mu.Lock()
	in.rules = append([]Rule(nil), rules...)
	in.replay = nil
	in.mu.Unlock()
}

// Clear drops the schedule: faults stop, counters and the record stay —
// the recovery phase of a chaos run keeps counting calls so its record
// remains replayable.
func (in *Injector) Clear() { in.Set() }

// UseReplay switches the injector into replay mode: exactly the given
// recorded faults fire, by (site, call index), nothing else.
func (in *Injector) UseReplay(faults []Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.replay = map[Site]map[uint64]string{}
	for _, f := range faults {
		m := in.replay[f.Site]
		if m == nil {
			m = map[uint64]string{}
			in.replay[f.Site] = m
		}
		m[f.N] = f.Err
	}
}

// Record returns the injected faults so far, in injection order — a
// complete schedule for Replay.
func (in *Injector) Record() []Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Fault(nil), in.record...)
}

// Calls returns the per-site call counts (injected or not).
func (in *Injector) Calls() map[Site]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]uint64, len(in.calls))
	for s, n := range in.calls {
		out[s] = n
	}
	return out
}

// Injected returns the per-site injected-fault counts — the fault_*
// counters LayerStats surfaces.
func (in *Injector) Injected() map[Site]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]uint64, len(in.injected))
	for s, n := range in.injected {
		out[s] = n
	}
	return out
}

// InjectedTotal returns the total number of injected faults.
func (in *Injector) InjectedTotal() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var t uint64
	for _, n := range in.injected {
		t += n
	}
	return t
}
