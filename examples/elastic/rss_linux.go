//go:build linux

package main

import (
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
)

// rss returns the process resident set in bytes via /proc/self/statm
// (field 2, in pages). ok is true: on Linux the measurement — and the
// assertions gated on it — are live. The Go heap is pushed back to the
// OS first so the sawtooth of the demo itself dominates the reading.
func rss() (uint64, bool) {
	debug.FreeOSMemory()
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * uint64(syscall.Getpagesize()), true
}
