// Command nbbstrace records allocator operation traces and replays them:
//
//	nbbstrace record -out ops.trace -ops 100000       # record a random schedule
//	nbbstrace replay -in ops.trace -variant 4lvl-nb    # re-execute on any variant
//	nbbstrace bench  -in ops.trace                     # replay on every variant, timed
//
// A trace captures the logical schedule (sizes and alloc/free pairing,
// not raw offsets), so a trace recorded once replays meaningfully across
// all allocator variants — the deterministic-regression workflow for
// placement bugs.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/alloc"
	"repro/internal/trace"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
	_ "repro/internal/stack"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		record(args)
	case "replay":
		replay(args)
	case "bench":
		benchAll(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: nbbstrace record|replay|bench [flags]")
	os.Exit(2)
}

func instanceFlags(fs *flag.FlagSet) func() alloc.Config {
	total := fs.Uint64("total", 1<<24, "managed bytes")
	minSize := fs.Uint64("min", 8, "allocation unit")
	maxSize := fs.Uint64("max", 1<<14, "maximum request size")
	return func() alloc.Config {
		return alloc.Config{Total: *total, MinSize: *minSize, MaxSize: *maxSize}
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("out", "ops.trace", "output trace file")
	ops := fs.Int("ops", 100000, "operations to record")
	seed := fs.Int64("seed", 1, "schedule seed")
	variant := fs.String("variant", "1lvl-nb", "allocator to record against")
	cfg := instanceFlags(fs)
	fs.Parse(args)

	a, err := alloc.Build(*variant, cfg())
	if err != nil {
		fatal(err)
	}
	tr := &trace.Trace{}
	r := trace.NewRecorder(tr, 0, a.NewHandle())
	rng := rand.New(rand.NewSource(*seed))
	var live []uint64
	for i := 0; i < *ops; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			r.Free(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		if off, ok := r.Alloc(uint64(8) << rng.Intn(11)); ok {
			live = append(live, off)
		}
	}
	for _, off := range live {
		r.Free(off)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d ops to %s\n", len(tr.Ops), *out)
}

func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal(err)
	}
	return tr
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "ops.trace", "input trace file")
	variant := fs.String("variant", "4lvl-nb", "allocator to replay on")
	cfg := instanceFlags(fs)
	fs.Parse(args)

	tr := load(*in)
	a, err := alloc.Build(*variant, cfg())
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	ok, err := trace.Replay(tr, a)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d ops on %s in %v (%d allocations succeeded)\n",
		len(tr.Ops), *variant, time.Since(start).Round(time.Microsecond), ok)
}

func benchAll(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	in := fs.String("in", "ops.trace", "input trace file")
	reps := fs.Int("reps", 3, "repetitions per variant (best reported)")
	cfg := instanceFlags(fs)
	fs.Parse(args)

	tr := load(*in)
	for _, variant := range alloc.Names() {
		best := time.Duration(1<<62 - 1)
		var succeeded int
		for r := 0; r < *reps; r++ {
			a, err := alloc.Build(variant, cfg())
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			ok, err := trace.Replay(tr, a)
			if err != nil {
				fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			succeeded = ok
		}
		perOp := best / time.Duration(len(tr.Ops))
		fmt.Printf("%-12s %10v total  %8v/op  (%d allocs succeeded)\n", variant, best.Round(time.Microsecond), perOp, succeeded)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbbstrace:", err)
	os.Exit(1)
}
