package nbbs_test

import (
	"testing"

	nbbs "repro"
)

// shape fingerprints the layers a stack was built with, so the
// structured-Config and functional-option forms can be compared.
func shape(b *nbbs.Buddy) map[string]bool {
	return map[string]bool{
		"multi":        b.Multi() != nil,
		"elastic":      b.Elastic() != nil,
		"slab":         b.Slab() != nil,
		"sharded":      b.Sharded() != nil,
		"mapped":       b.Mapped(),
		"materialized": b.Materialized(),
		"telemetry":    b.Telemetry() != nil,
	}
}

// TestConfigOptionEquivalence pins the adapter contract of the v2
// facade: every With* option and its Config field describe the same
// stack. Each case builds both forms and compares the composed stack
// label (which encodes the full layer chain) and the layer accessors.
func TestConfigOptionEquivalence(t *testing.T) {
	geo := nbbs.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16}
	cases := []struct {
		name string
		cfg  nbbs.Config
		opts []nbbs.Option
	}{
		{
			name: "bare",
			cfg:  geo,
		},
		{
			name: "variant",
			cfg: func() nbbs.Config {
				c := geo
				c.Variant = nbbs.Variant1Lvl
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithVariant(nbbs.Variant1Lvl)},
		},
		{
			name: "instances",
			cfg: func() nbbs.Config {
				c := geo
				c.Backing.Instances = 4
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithInstances(4)},
		},
		{
			name: "elastic-implies-instances",
			cfg: func() nbbs.Config {
				c := geo
				c.Elastic = &nbbs.ElasticConfig{MaxInstances: 4}
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithElastic(nbbs.ElasticConfig{MaxInstances: 4})},
		},
		{
			name: "mapped-elastic",
			cfg: func() nbbs.Config {
				c := geo
				c.Backing.Mapped = true
				c.Elastic = &nbbs.ElasticConfig{MaxInstances: 4}
				return c
			}(),
			opts: []nbbs.Option{
				nbbs.WithMappedMemory(),
				nbbs.WithElastic(nbbs.ElasticConfig{MaxInstances: 4}),
			},
		},
		{
			name: "frontend-depot-slab",
			cfg: func() nbbs.Config {
				c := geo
				c.Frontend.Cached = true
				c.Frontend.Magazine = 16
				c.Frontend.Depot = true
				c.Frontend.DepotCapacity = 8
				c.Frontend.BatchRefill = 4
				c.Frontend.Slab = true
				return c
			}(),
			opts: []nbbs.Option{
				nbbs.WithFrontend(16),
				nbbs.WithDepot(8),
				nbbs.WithBatchRefill(4),
				nbbs.WithSlab(0),
			},
		},
		{
			name: "sharded",
			cfg: func() nbbs.Config {
				c := geo
				c.Frontend.Sharded = true
				c.Frontend.Shards = 2
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithSharding(2)},
		},
		{
			name: "materialized",
			cfg: func() nbbs.Config {
				c := geo
				c.Backing.Materialize = true
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithMaterializedRegion()},
		},
		{
			name: "telemetry",
			cfg: func() nbbs.Config {
				c := geo
				c.Telemetry.Enabled = true
				return c
			}(),
			opts: []nbbs.Option{nbbs.WithTelemetry(nbbs.TelemetryConfig{})},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			viaConfig, err := nbbs.New(tc.cfg)
			if err != nil {
				t.Fatalf("Config form: %v", err)
			}
			viaOpts, err := nbbs.New(geo, tc.opts...)
			if err != nil {
				t.Fatalf("option form: %v", err)
			}
			if a, b := viaConfig.Name(), viaOpts.Name(); a != b {
				t.Fatalf("stack labels diverge: Config %q vs options %q", a, b)
			}
			cs, os := shape(viaConfig), shape(viaOpts)
			for layer := range cs {
				if cs[layer] != os[layer] {
					t.Errorf("layer %s: Config form %v, option form %v", layer, cs[layer], os[layer])
				}
			}
			// Both forms must actually serve traffic.
			for _, b := range []*nbbs.Buddy{viaConfig, viaOpts} {
				h := b.NewHandle()
				off, ok := h.Alloc(128)
				if !ok {
					t.Fatal("alloc failed")
				}
				h.Free(off)
			}
		})
	}
}

// TestOptionsOverrideConfig pins the layering order: functional options
// apply on top of the structured fields, so mixing the forms is
// well-defined.
func TestOptionsOverrideConfig(t *testing.T) {
	cfg := nbbs.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16}
	cfg.Variant = nbbs.Variant1Lvl
	b, err := nbbs.New(cfg, nbbs.WithVariant(nbbs.Variant4Lvl))
	if err != nil {
		t.Fatal(err)
	}
	if b.Variant() != nbbs.Variant4Lvl {
		t.Fatalf("option did not override Config field: variant %q", b.Variant())
	}
}

// TestConfigElasticPolicy builds an elastic stack with the predictive
// policy through the structured Config and checks it is wired through.
func TestConfigElasticPolicy(t *testing.T) {
	cfg := nbbs.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 16}
	cfg.Backing.Instances = 2
	cfg.Elastic = &nbbs.ElasticConfig{
		MaxInstances: 4,
		Policy:       nbbs.NewPredictivePolicy(nbbs.PredictiveConfig{}),
	}
	b, err := nbbs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mgr := b.Elastic()
	if mgr == nil {
		t.Fatal("no elastic manager")
	}
	if got := mgr.Policy().Name(); got != "predictive" {
		t.Fatalf("policy %q, want predictive", got)
	}
	if _, ok := mgr.Policy().(*nbbs.PredictivePolicy); !ok {
		t.Fatalf("policy type %T", mgr.Policy())
	}
}
