package stack_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
	"repro/internal/elastic"
	"repro/internal/stack"
)

// TestDifferentialRegistryComposites fuzzes every registry composite —
// the PR-1 stacks, the depot-backed ones, and the elastic composite
// (whose runs additionally interleave Poll-driven grow/drain/retire) —
// against the map-based oracle: random single/batched alloc/free
// sequences with interleaved quiescent Scrubs, checking no
// double-hand-out, exact ChunkSize reporting, and per-layer stats
// reconciliation after the drain.
func TestDifferentialRegistryComposites(t *testing.T) {
	composites := []string{
		"cached+4lvl-nb",
		"multi4+4lvl-nb",
		"cached+multi4+4lvl-nb",
		"depot+4lvl-nb",
		"depot+multi4+4lvl-nb",
		"elastic+multi+4lvl-nb",
		"mapped+elastic+multi+4lvl-nb",
		"predictive+mapped+elastic+multi+4lvl-nb",
		"shard+mapped+elastic+multi+4lvl-nb",
		"slab+4lvl-nb",
		"slab+depot+multi4+4lvl-nb",
		"slab+mapped+elastic+multi+4lvl-nb",
	}
	for _, name := range composites {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
				t.Helper()
				a, err := alloc.Build(name, alloc.Config{Total: total, MinSize: minSize, MaxSize: maxSize})
				if err != nil {
					t.Fatalf("Build(%q): %v", name, err)
				}
				return a
			})
		})
	}
}

// TestDifferentialDepotElastic fuzzes the full elastic cooperation path:
// the magazine depot stacked over the capacity manager, so the
// interleaved Shrink/Poll steps exercise the depot drain hook — parked
// magazines overlapping a draining instance's window must go back down
// for its live count to reach zero.
func TestDifferentialDepotElastic(t *testing.T) {
	t.Parallel()
	alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
		t.Helper()
		n := instancesFor(4, total, maxSize)
		st, err := stack.Build(stack.Spec{
			Variant:   "4lvl-nb",
			Per:       alloc.Config{Total: total / uint64(n), MinSize: minSize, MaxSize: maxSize},
			Instances: n,
			Elastic:   &elastic.Config{MinInstances: 1, MaxInstances: 2 * n},
			Depot:     true, Magazine: 8,
		})
		if err != nil {
			t.Fatalf("stack.Build: %v", err)
		}
		return st.Top
	})
}

// TestDifferentialLeaves anchors the oracle against the bare leaf
// variants, so a divergence in a composite run isolates to the layers.
func TestDifferentialLeaves(t *testing.T) {
	for _, name := range []string{"4lvl-nb", "1lvl-nb"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
				t.Helper()
				a, err := alloc.Build(name, alloc.Config{Total: total, MinSize: minSize, MaxSize: maxSize})
				if err != nil {
					t.Fatalf("Build(%q): %v", name, err)
				}
				return a
			})
		})
	}
}
