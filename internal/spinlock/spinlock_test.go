package spinlock

import (
	"sync"
	"testing"
)

func kinds() []Kind { return []Kind{KindTAS, KindTTAS, KindTicket} }

func TestMutualExclusion(t *testing.T) {
	for _, kind := range kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			l := New(kind)
			const workers, iters = 8, 5000
			counter := 0
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						l.Lock()
						counter++ // unsynchronized except by the lock
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != workers*iters {
				t.Fatalf("counter = %d, want %d: lost updates under %s", counter, workers*iters, kind)
			}
		})
	}
}

func TestUncontendedReacquire(t *testing.T) {
	for _, kind := range kinds() {
		l := New(kind)
		for i := 0; i < 1000; i++ {
			l.Lock()
			l.Unlock()
		}
	}
}

func TestDefaultKind(t *testing.T) {
	if _, ok := New("").(*TTAS); !ok {
		t.Error("empty kind must default to TTAS")
	}
	if _, ok := New("bogus").(*TTAS); !ok {
		t.Error("unknown kind must default to TTAS")
	}
	if _, ok := New(KindTAS).(*TAS); !ok {
		t.Error("tas kind must build a TAS lock")
	}
	if _, ok := New(KindTicket).(*Ticket); !ok {
		t.Error("ticket kind must build a Ticket lock")
	}
}

func TestTicketFIFO(t *testing.T) {
	// With the lock held, two queued acquirers must be served in ticket
	// order. We serialize the queueing itself to make order deterministic.
	l := new(Ticket)
	l.Lock()
	order := make(chan int, 2)
	firstQueued := make(chan struct{})
	go func() {
		close(firstQueued)
		l.Lock()
		order <- 1
		l.Unlock()
	}()
	<-firstQueued
	// Give the first goroutine time to take its ticket before the second.
	for l.next.Load() < 2 {
	}
	go func() {
		l.Lock()
		order <- 2
		l.Unlock()
	}()
	for l.next.Load() < 3 {
	}
	l.Unlock()
	if a, b := <-order, <-order; a != 1 || b != 2 {
		t.Fatalf("service order = %d,%d, want 1,2", a, b)
	}
}
