//go:build linux

package mem

import (
	"os"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"unsafe"
)

// rss returns the process resident set in bytes via /proc/self/statm
// (field 2, in pages) — the same measurement examples/elastic gates on.
func rss(t *testing.T) uint64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(string(data))
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return pages * uint64(syscall.Getpagesize())
}

// TestMappedRSSLifecycle is the page-level ground truth of the package:
// commit raises RSS by the window size (the touch loop makes residency
// eager), decommit returns it. Margins are half the window to absorb
// unrelated runtime traffic.
func TestMappedRSSLifecycle(t *testing.T) {
	if !Mapped() {
		t.Skip("portable fallback: no RSS effect to measure")
	}
	const win = 8 << 20
	r, err := New(win, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()

	before := rss(t)
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	atCommit := rss(t)
	if atCommit < before+win/2 {
		t.Fatalf("commit did not raise RSS: before=%d after=%d (want >= +%d)", before, atCommit, win/2)
	}
	if err := r.Decommit(0); err != nil {
		t.Fatal(err)
	}
	atDecommit := rss(t)
	if atDecommit > atCommit-win/2 {
		t.Fatalf("decommit did not return RSS: committed=%d decommitted=%d (want <= -%d)", atCommit, atDecommit, win/2)
	}
}

// TestHugePageAlignment checks the alignment rule: a hugepage-advised
// window starts on a HugePageSize boundary, and windows that are not a
// multiple of the extent never request the advice.
func TestHugePageAlignment(t *testing.T) {
	r, err := New(HugePageSize, 1, WithHugePages())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if !r.HugePages() {
		t.Fatal("2MiB-multiple window with WithHugePages must be hugepage-eligible")
	}
	if err := r.Commit(0); err != nil {
		t.Fatal(err)
	}
	w := r.Window(0)
	if addr := uintptr(unsafe.Pointer(&w[0])); addr%HugePageSize != 0 {
		t.Fatalf("hugepage window not 2MiB-aligned: %#x", addr)
	}

	small, err := New(1<<16, 1, WithHugePages())
	if err != nil {
		t.Fatal(err)
	}
	defer small.Release()
	if small.HugePages() {
		t.Fatal("64KiB window must not be hugepage-eligible (alignment rule)")
	}
}
