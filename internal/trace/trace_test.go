package trace_test

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/trace"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
)

func build(t *testing.T, variant string) alloc.Allocator {
	t.Helper()
	a, err := alloc.Build(variant, alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func record(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	a := build(t, "1lvl-nb")
	tr := &trace.Trace{}
	r := trace.NewRecorder(tr, 0, a.NewHandle())
	rng := rand.New(rand.NewSource(seed))
	var live []uint64
	for i := 0; i < 2000; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			r.Free(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		if off, ok := r.Alloc(uint64(64 << rng.Intn(6))); ok {
			live = append(live, off)
		}
	}
	for _, off := range live {
		r.Free(off)
	}
	return tr
}

func TestRecordReplayOnSameVariant(t *testing.T) {
	tr := record(t, 7)
	got, err := trace.Replay(tr, build(t, "1lvl-nb"))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, op := range tr.Ops {
		if op.Ref < 0 && op.OK {
			want++
		}
	}
	if got != want {
		t.Fatalf("replay succeeded %d allocs, recording had %d", got, want)
	}
}

func TestReplayAcrossVariants(t *testing.T) {
	// A trace recorded on the 1-level allocator replays on the 4-level
	// one: same requests, same availability (single-threaded schedule).
	tr := record(t, 11)
	if _, err := trace.Replay(tr, build(t, "4lvl-nb")); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	tr := record(t, 13)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("roundtrip ops = %d, want %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if tr.Ops[i] != back.Ops[i] {
			t.Fatalf("op %d = %+v, want %+v", i, back.Ops[i], tr.Ops[i])
		}
	}
	// And the deserialized trace still replays.
	if _, err := trace.Replay(back, build(t, "1lvl-nb")); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := trace.Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := trace.Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReplayRejectsForwardRef(t *testing.T) {
	bad := &trace.Trace{Ops: []trace.Op{{Ref: 5}}}
	if _, err := trace.Replay(bad, build(t, "1lvl-nb")); err == nil {
		t.Fatal("forward free reference accepted")
	}
}

func TestRecorderForeignFreePanics(t *testing.T) {
	a := build(t, "1lvl-nb")
	tr := &trace.Trace{}
	r := trace.NewRecorder(tr, 0, a.NewHandle())
	defer func() {
		if recover() == nil {
			t.Fatal("foreign free did not panic")
		}
	}()
	r.Free(128)
}

// TestAllocatorLayerConcurrentRecording drives the allocator-level trace
// layer from several goroutines: appends must serialize safely and the
// recorded schedule must replay cleanly on a fresh instance.
func TestAllocatorLayerConcurrentRecording(t *testing.T) {
	tr := &trace.Trace{}
	layer, err := trace.NewAllocator(build(t, "1lvl-nb"), tr)
	if err != nil {
		t.Fatal(err)
	}
	if layer.Name() != "trace+1lvl-nb" {
		t.Fatalf("Name = %q", layer.Name())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := layer.NewHandle()
			var live []uint64
			for i := 0; i < 1000; i++ {
				if off, ok := h.Alloc(64 << (i % 3)); ok {
					live = append(live, off)
				}
				if len(live) > 8 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	if len(tr.Ops) == 0 {
		t.Fatal("nothing recorded")
	}
	if _, err := trace.Replay(tr, build(t, "1lvl-nb")); err != nil {
		t.Fatalf("replay of concurrently recorded trace: %v", err)
	}
	workers := map[int32]bool{}
	for _, op := range tr.Ops {
		workers[op.Worker] = true
	}
	if len(workers) != 4 {
		t.Fatalf("trace names %d workers, want 4", len(workers))
	}
}

// TestAllocatorLayerForwardsContract checks the layer keeps the
// composable contract intact (ChunkSize, unrecorded convenience ops).
func TestAllocatorLayerForwardsContract(t *testing.T) {
	tr := &trace.Trace{}
	layer, err := trace.NewAllocator(build(t, "4lvl-nb"), tr)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := layer.Alloc(100)
	if !ok {
		t.Fatal("alloc failed")
	}
	if got := layer.ChunkSize(off); got != 128 {
		t.Fatalf("ChunkSize = %d, want 128", got)
	}
	layer.Free(off)
	if len(tr.Ops) != 0 {
		t.Fatalf("convenience path recorded %d ops, want 0", len(tr.Ops))
	}
}
