//go:build !linux

package mem

// osMapped: the portable fallback keeps one heap []byte per window;
// commit and decommit are bookkeeping only, so the stack builds and the
// lifecycle state machine behaves identically everywhere — the RSS
// effect is simply absent.
const osMapped = false

// osReserve allocates the window's backing slice up front. Go zero-fills
// it and the OS pages it in lazily, which is as close to "reserved" as a
// portable allocation gets.
func osReserve(winSize uint64, huge bool) (raw, buf []byte, err error) {
	b := make([]byte, winSize)
	return b, b, nil
}

// osProtectRW is bookkeeping: the slice already exists and is writable.
func osProtectRW(buf []byte) error { return nil }

// osAdviseHuge is bookkeeping; the fallback has no THP to advise.
func osAdviseHuge(buf []byte) error { return nil }

// osTouch is bookkeeping: Go already zero-filled the slice.
func osTouch(buf []byte) {}

// osDecommit zero-fills the window so a later recommit observes the same
// "fresh window is zero" invariant MADV_DONTNEED gives the Linux backend.
func osDecommit(buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	return nil
}

// osRelease lets the GC take the slice.
func osRelease(raw []byte) {}
