package stack_test

import (
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/stack"
	"repro/internal/trace"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
	_ "repro/internal/slbuddy"
)

var per = alloc.Config{Total: 1 << 18, MinSize: 64, MaxSize: 1 << 14}

// TestStatsReconcile drives a caching + multi stack and checks that the
// per-layer counters reconcile: every front-end allocation was served
// either by a magazine hit or by a back-end allocation, and the routing
// layer saw exactly the back-end's traffic.
func TestStatsReconcile(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per,
		Instances: 4,
		Cached:    true, Magazine: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := st.Top.NewHandle()
			var live []uint64
			for i := 0; i < 8000; i++ {
				if off, ok := h.Alloc(64 << (i % 4)); ok {
					live = append(live, off)
				}
				if len(live) > 12 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()

	front := st.Frontend.Stats()
	cache := st.Frontend.CacheTotals()
	router := st.Multi.Stats() // aggregated instance (back-end) counters

	// Every alloc attempt that reached the magazines either hit or missed.
	if got := cache.Hits + cache.Misses; got != front.Allocs+front.AllocFails {
		t.Fatalf("Hits+Misses = %d, want front-end attempts %d",
			got, front.Allocs+front.AllocFails)
	}
	// Front-end successes decompose into magazine serves + back-end allocs.
	if front.Allocs != cache.Hits+router.Allocs {
		t.Fatalf("front-end Allocs %d != Hits %d + back-end Allocs %d",
			front.Allocs, cache.Hits, router.Allocs)
	}
	// What the magazines did not absorb or still hold went back down:
	// back-end frees are the spills plus flushes.
	st.Scrub() // flush magazines
	routerAfter := st.Multi.Stats()
	if routerAfter.Allocs != routerAfter.Frees {
		t.Fatalf("back-end unbalanced after flush: %d allocs vs %d frees",
			routerAfter.Allocs, routerAfter.Frees)
	}
	// The routing layer's handle-level view matches the instance fleet.
	layers := st.LayerStats()
	if len(layers) != 3 { // cached, multi, leaf fleet
		t.Fatalf("LayerStats = %d entries, want 3", len(layers))
	}
	routing := layers[1].Stats
	if routing.Allocs != router.Allocs {
		t.Fatalf("routing-layer Allocs %d != instance-fleet Allocs %d",
			routing.Allocs, router.Allocs)
	}
}

// TestSpanThroughLayers checks OffsetSpan survives arbitrary stacking.
func TestSpanThroughLayers(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: per,
		Instances:   4,
		Cached:      true,
		Record:      &trace.Trace{},
		Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * per.Total
	if got := alloc.SpanOf(st.Top); got != want {
		t.Fatalf("SpanOf(top) = %d, want %d", got, want)
	}
	if st.Top.Name() != "mat+trace+cached+multi[4x 4lvl-nb]" {
		t.Fatalf("Name = %q", st.Top.Name())
	}
	if len(st.LayerStats()) != 5 {
		t.Fatalf("LayerStats entries = %d, want 5", len(st.LayerStats()))
	}
}

// TestCanScrub reports leaf scrubbability through any stack.
func TestCanScrub(t *testing.T) {
	for variant, want := range map[string]bool{"4lvl-nb": true, "1lvl-sl": false} {
		st, err := stack.Build(stack.Spec{
			Variant: variant, Per: per, Instances: 2, Cached: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.CanScrub(); got != want {
			t.Errorf("CanScrub(%s stack) = %v, want %v", variant, got, want)
		}
		if got := st.Scrub(); got != want {
			t.Errorf("Scrub(%s stack) = %v, want %v", variant, got, want)
		}
	}
}

// TestConvenienceHandleLeakFixed regresses the Multi.Alloc transient
// handle leak: the convenience path must not register a fresh set of
// sub-handles on every call. Sub-handle registration shows up as
// unbounded growth of per-instance aggregated stats structures; we probe
// it through memory-stable repeated convenience calls.
func TestConvenienceHandleLeakFixed(t *testing.T) {
	st, err := stack.Build(stack.Spec{Variant: "4lvl-nb", Per: per, Instances: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := st.Multi
	const n = 5000
	for i := 0; i < n; i++ {
		off, ok := m.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		m.Free(off)
	}
	// The seed built a fresh handle per convenience call — n*2 handles,
	// each registering sub-handles on every instance forever. The pooled
	// path reuses a few.
	if got := m.Handles(); got > 8 {
		t.Fatalf("%d handles registered after %d sequential convenience ops, want a small pooled set", got, n)
	}
	routing := m.LayerStats()[0].Stats
	if routing.Allocs != n || routing.Frees != n {
		t.Fatalf("routing stats = %d/%d, want %d/%d (pooled handle lost ops)",
			routing.Allocs, routing.Frees, n, n)
	}
}
