//go:build !gc

package telemetry

import "time"

// nanotime is the portable fallback for toolchains without the runtime
// linkname: a wall-clock read. Latency samples stay meaningful (the
// intervals are far shorter than any clock step), only slightly pricier.
func nanotime() int64 { return time.Now().UnixNano() }
