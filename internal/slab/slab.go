// Package slab implements a tcmalloc/mimalloc-style size-class layer over
// any allocator of the layer contract: requests up to a cutoff are served
// from fixed-size object runs carved out of buddy chunks, larger requests
// pass through to the wrapped allocator untouched.
//
// The buddy tree rounds every request to a power of two, so small-object
// traffic wastes up to ~50% of committed memory to internal fragmentation
// and spends tree CAS traffic on tiny chunks. The slab layer fixes both:
// the class table interleaves half-steps (3·2^k) between the powers of
// two, cutting worst-case rounding waste from 2x to 1.5x, and a single
// tree operation provisions a whole run (hundreds of objects), so the
// per-object hot path is a run free-list push/pop.
//
// Frees carry no size and objects carry no headers: a run index keyed by
// the run-chunk-aligned window of an offset resolves any offset to its run
// (or to "not slab memory — forward inward") with one atomic load. The
// same index powers ChunkSize, double-free detection (a per-slot requested
// size doubling as an allocated bit) and the internal-fragmentation gauge.
//
// Class invariants, chosen so the layer is invisible to the conformance
// and differential nets:
//
//   - every class is a multiple of geometry MinSize, so power-of-two
//     requests land on classes exactly equal to the buddy's own rounding
//     and offsets stay MinSize-aligned;
//   - the run chunk is a power of two no larger than geometry MaxSize and
//     no larger than a quarter of the region, so runs coexist with large
//     pass-through allocations;
//   - the cutoff is at most half the run chunk, so every run holds at
//     least two objects.
//
// Residency rule (same as the depot and shard layers): objects parked in
// runs and handle magazines are free-to-caller but live-in-backend — the
// backing chunks pin multi-router live counts. Scrub flushes magazines
// and returns every fully-free run; DrainRange releases empty runs inside
// a retiring window and arms a drain epoch so handle magazines overlapping
// the window flush on their owner's next operation (no quiescence needed).
package slab

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// DefaultCutoff is the largest request served from runs when the caller
// does not choose a cutoff (still clamped to half the run chunk).
const DefaultCutoff = 2048

// maxRunChunk caps the run backing-chunk size: large enough to amortize
// one tree operation over hundreds of small objects, small enough that a
// run is a cheap unit of reclaim.
const maxRunChunk = 8192

// emptyCap is how many fully-free runs each class caches for reuse before
// releasing them to the wrapped allocator. Scrub and DrainRange release
// cached empties regardless.
const emptyCap = 2

// run is one backing chunk carved into equal objects. The free stack and
// the transitions between the central lists are guarded by the owning
// class lock; req[i] is written only by the goroutine that owns object i
// at that moment (the allocator on Alloc, the freeer on Free), with
// happens-before supplied by the class lock, the single-owner magazine,
// or the caller's own transfer of the object between goroutines.
type run struct {
	start   uint64 // global offset of the backing chunk
	class   int    // index into Allocator.classes
	objSize uint64
	mul     uint64 // ceil(2^32/objSize): fixed-point reciprocal for slot
	count   uint32
	free    []uint32 // LIFO of free slot indices
	req     []uint32 // requested bytes per slot; 0 = slot is free
}

// slot converts a byte displacement inside the run to a slot index with a
// reciprocal multiply instead of a hardware divide. Exact for every
// displacement below the run chunk: the reciprocal error is at most
// (objSize-1)/2^32 per unit, and displacement·(objSize-1) < 2^13·2^13
// stays far under 2^32 (non-transparent mode implies runChunk ≤ 8192).
func (r *run) slot(d uint64) uint32 {
	return uint32((d * r.mul) >> 32)
}

// runIndex maps off>>shift to the run owning that window. Lookups are one
// atomic load; installs, removals and growth happen under Allocator.idxMu.
// Windows without a run are nil: by buddy exclusivity a pass-through chunk
// can never share a window with a live run, so nil means "forward inward".
type runIndex struct {
	shift uint
	slots []atomic.Pointer[run]
}

func (ix *runIndex) at(off uint64) *run {
	k := off >> ix.shift
	if k >= uint64(len(ix.slots)) {
		return nil
	}
	return ix.slots[k].Load()
}

// classState is the central store of one size class.
type classState struct {
	size uint64

	mu      sync.Mutex
	partial []*run // runs with both live objects and free slots
	empty   []*run // fully-free cached runs, at most emptyCap

	// Counters, guarded by mu.
	runs      uint64 // live runs (incl. full and cached-empty)
	runAllocs uint64 // cumulative backing chunks taken from the inner
	runFrees  uint64 // cumulative backing chunks returned
}

// Allocator is the size-class layer. It implements the full layer
// contract: Allocator, BatchAllocator, ChunkSizer, Spanner, Scrubber,
// LayerStatser, plus the DrainRange hook for elastic retirement.
type Allocator struct {
	inner    alloc.Allocator
	sizer    alloc.ChunkSizer
	geo      geometry.Geometry
	runChunk uint64
	runShift uint
	cutoff   uint64 // 0 when no class fits: transparent pass-through mode
	classes  []classState
	classIdx []uint8 // ceil(size/MinSize) -> class index

	idxMu sync.Mutex // guards index install/remove/grow
	idx   atomic.Pointer[runIndex]

	mu      sync.Mutex // guards handles and the closed accumulators
	handles []*Handle
	closed  closedStats

	convMu    sync.Mutex // guards the conv-path counters
	convStats alloc.Stats
	convExtra handleExtra

	// Drain fence: DrainRange records the retiring window, then bumps the
	// epoch; handles compare epochs on their next operation and flush
	// magazines overlapping a recorded window. Windows are never pruned —
	// a stale window is harmless because magazines can never hold offsets
	// from memory that was actually retired.
	drainEpoch atomic.Uint64
	drainMu    sync.Mutex
	drainWins  map[uint64]uint64 // lo -> hi

	// sink, when non-nil, receives one call per magazine refill, spill
	// and drain-fence flush for the telemetry flight recorder (a = class
	// index, b = entries moved). Installed during stack construction,
	// before handles exist; the ring it publishes into is itself
	// concurrency-safe, so handles call it without coordination.
	sink func(event string, a, b uint64)
}

// SetEventSink installs the flight-recorder publish hook for magazine
// refill/spill/drain-flush crossings. Install before traffic; nil
// uninstalls.
func (a *Allocator) SetEventSink(fn func(event string, a, b uint64)) { a.sink = fn }

// emit publishes a magazine-crossing event. Nil-safe.
func (a *Allocator) emit(event string, x, y uint64) {
	if a.sink != nil {
		a.sink(event, x, y)
	}
}

// closedStats retains the contribution of closed handles so quiescent
// Stats/LayerStats keep adding up across worker churn.
type closedStats struct {
	stats alloc.Stats
	extra handleExtra
}

// handleExtra is the slab-specific counter block shared by handles, the
// conv path, and the closed accumulator.
type handleExtra struct {
	frag         int64  // live internal fragmentation contribution, bytes
	fallthroughs uint64 // class-sized requests served by the inner instead
	refills      uint64 // magazine refills from the central store
	spills       uint64 // magazine overflows spilled to the central store
	drainFlushes uint64 // magazine flushes forced by the drain fence
}

func (e *handleExtra) add(o handleExtra) {
	e.frag += o.frag
	e.fallthroughs += o.fallthroughs
	e.refills += o.refills
	e.spills += o.spills
	e.drainFlushes += o.drainFlushes
}

// New wraps inner with the size-class layer. cutoff bounds the largest
// class (0 means DefaultCutoff); the effective cutoff is clamped to half
// the run chunk, and when no valid class fits the geometry the layer runs
// in transparent pass-through mode.
func New(inner alloc.Allocator, cutoff uint64) (*Allocator, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("slab: inner allocator %s does not implement ChunkSize", inner.Name())
	}
	geo := inner.Geometry()
	a := &Allocator{
		inner:     inner,
		sizer:     sizer,
		geo:       geo,
		drainWins: make(map[uint64]uint64),
	}
	a.runChunk = min(maxRunChunk, geo.MaxSize, geo.Total/4)
	if a.runChunk < geo.MinSize {
		a.runChunk = geo.MinSize
	}
	for s := uint64(1); ; s <<= 1 {
		if s == a.runChunk {
			break
		}
		a.runShift++
	}
	if cutoff == 0 {
		cutoff = DefaultCutoff
	}
	cutoff = min(cutoff, a.runChunk/2)
	a.buildClasses(cutoff)
	span := alloc.SpanOf(inner)
	a.idx.Store(&runIndex{
		shift: a.runShift,
		slots: make([]atomic.Pointer[run], span>>a.runShift),
	})
	return a, nil
}

// buildClasses fills the class table with every power of two and
// half-step (3·2^k) in [MinSize, cutoff] that is a multiple of MinSize,
// ascending, and builds the size→class lookup. Restricting to multiples
// of MinSize keeps every object MinSize-aligned and makes power-of-two
// classes coincide exactly with the buddy's own rounding.
func (a *Allocator) buildClasses(cutoff uint64) {
	var sizes []uint64
	for c := a.geo.MinSize; c <= cutoff; c <<= 1 {
		sizes = append(sizes, c)
		if h := c + c/2; h <= cutoff && h%a.geo.MinSize == 0 {
			sizes = append(sizes, h)
		}
	}
	if len(sizes) == 0 {
		a.cutoff = 0 // transparent mode
		return
	}
	a.cutoff = sizes[len(sizes)-1]
	a.classes = make([]classState, len(sizes))
	for i, s := range sizes {
		a.classes[i].size = s
	}
	a.classIdx = make([]uint8, a.cutoff/a.geo.MinSize+1)
	ci := 0
	for u := range a.classIdx {
		for uint64(u)*a.geo.MinSize > sizes[ci] {
			ci++
		}
		a.classIdx[u] = uint8(ci)
	}
}

// classOf maps a request size (≤ cutoff) to its class index.
func (a *Allocator) classOf(size uint64) int {
	return int(a.classIdx[(size+a.geo.MinSize-1)/a.geo.MinSize])
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "slab+" + a.inner.Name() }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// OffsetSpan forwards the wrapped allocator's global offset space.
func (a *Allocator) OffsetSpan() uint64 { return alloc.SpanOf(a.inner) }

// Unwrap exposes the wrapped allocator for stack walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.inner }

// Cutoff returns the largest request size served from runs; 0 means the
// layer is transparent for this geometry.
func (a *Allocator) Cutoff() uint64 { return a.cutoff }

// RunBytes returns the backing-chunk size of a run.
func (a *Allocator) RunBytes() uint64 { return a.runChunk }

// ReservedFor reports the bytes the slab reserves for a request of the
// given size and true, or false when the request passes through to the
// wrapped allocator (which then applies its own rounding).
func (a *Allocator) ReservedFor(size uint64) (uint64, bool) {
	if a.cutoff == 0 || size > a.cutoff {
		return 0, false
	}
	return a.classes[a.classOf(size)].size, true
}

// runAt resolves an offset to its run, or nil for pass-through memory.
func (a *Allocator) runAt(off uint64) *run {
	return a.idx.Load().at(off)
}

// install publishes a run in the index, growing it when the wrapped
// stack's offset span has grown (elastic Grow).
func (a *Allocator) install(r *run) {
	a.idxMu.Lock()
	defer a.idxMu.Unlock()
	ix := a.idx.Load()
	k := r.start >> a.runShift
	if k >= uint64(len(ix.slots)) {
		n := uint64(len(ix.slots)) * 2
		if n == 0 {
			n = 1
		}
		for k >= n {
			n *= 2
		}
		grown := &runIndex{shift: a.runShift, slots: make([]atomic.Pointer[run], n)}
		for i := range ix.slots {
			grown.slots[i].Store(ix.slots[i].Load())
		}
		a.idx.Store(grown)
		ix = grown
	}
	ix.slots[k].Store(r)
}

// remove unpublishes a run. Must happen before the backing chunk is
// returned to the wrapped allocator, so a window can never be re-issued
// as pass-through memory while a stale run entry still claims it.
func (a *Allocator) remove(r *run) {
	a.idxMu.Lock()
	a.idx.Load().slots[r.start>>a.runShift].Store(nil)
	a.idxMu.Unlock()
}

// newRun provisions a run for class ci: a cached empty if available,
// otherwise one backing chunk from the wrapped allocator. Called with the
// class lock held; returns nil when the inner allocation fails (the
// caller retries after reclaimEmpties, then falls through).
func (a *Allocator) newRun(ci int) *run {
	cs := &a.classes[ci]
	if n := len(cs.empty); n > 0 {
		r := cs.empty[n-1]
		cs.empty = cs.empty[:n-1]
		return r
	}
	start, ok := a.inner.Alloc(a.runChunk)
	if !ok {
		return nil
	}
	count := uint32(a.runChunk / cs.size)
	r := &run{start: start, class: ci, objSize: cs.size,
		mul: (1<<32 + cs.size - 1) / cs.size, count: count,
		free: make([]uint32, count), req: make([]uint32, count)}
	for i := uint32(0); i < count; i++ {
		r.free[count-1-i] = i // pop order = ascending offsets
	}
	cs.runs++
	cs.runAllocs++
	a.install(r)
	return r
}

// releaseLocked returns a fully-free run's chunk to the wrapped
// allocator. Called with the class lock held.
func (a *Allocator) releaseLocked(cs *classState, r *run) {
	a.remove(r)
	cs.runs--
	cs.runFrees++
	a.inner.Free(r.start)
}

// takeRun returns a run of class ci with at least one free slot — the top
// partial run, or a freshly provisioned one — or nil when the inner
// allocator cannot back a new run. Called with the class lock held.
func (a *Allocator) takeRun(cs *classState, ci int) *run {
	if n := len(cs.partial); n > 0 {
		return cs.partial[n-1]
	}
	if r := a.newRun(ci); r != nil {
		cs.partial = append(cs.partial, r)
		return r
	}
	return nil
}

// take moves up to want objects of class ci from the central store into
// out, provisioning runs as needed. Thread-safe.
func (a *Allocator) take(ci int, out []uint64, want int) []uint64 {
	cs := &a.classes[ci]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for len(out) < want {
		r := a.takeRun(cs, ci)
		if r == nil {
			break
		}
		for len(out) < want && len(r.free) > 0 {
			i := r.free[len(r.free)-1]
			r.free = r.free[:len(r.free)-1]
			out = append(out, r.start+uint64(i)*r.objSize)
		}
		if len(r.free) == 0 {
			cs.partial = cs.partial[:len(cs.partial)-1]
		}
	}
	return out
}

// takeEntries is take for handle magazines: the same central-store pops,
// but emitting the run pointer and slot index alongside each offset so
// the magazine-hit paths never touch the run index or divide.
func (a *Allocator) takeEntries(ci int, out []entry, want int) []entry {
	cs := &a.classes[ci]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for len(out) < want {
		r := a.takeRun(cs, ci)
		if r == nil {
			break
		}
		for len(out) < want && len(r.free) > 0 {
			i := r.free[len(r.free)-1]
			r.free = r.free[:len(r.free)-1]
			out = append(out, entry{off: r.start + uint64(i)*r.objSize, r: r, i: i})
		}
		if len(r.free) == 0 {
			cs.partial = cs.partial[:len(cs.partial)-1]
		}
	}
	return out
}

// putOneLocked pushes one freed slot back onto its run and handles the
// full→partial→empty list transitions. Called with the class lock held.
func (a *Allocator) putOneLocked(cs *classState, r *run, i uint32) {
	r.free = append(r.free, i)
	switch len(r.free) {
	case 1: // full -> partial
		cs.partial = append(cs.partial, r)
	case int(r.count): // partial -> empty
		for j, p := range cs.partial {
			if p == r {
				cs.partial[j] = cs.partial[len(cs.partial)-1]
				cs.partial = cs.partial[:len(cs.partial)-1]
				break
			}
		}
		if len(cs.empty) < emptyCap {
			cs.empty = append(cs.empty, r)
		} else {
			a.releaseLocked(cs, r)
		}
	}
}

// put returns objects of class ci to their runs. Offsets must already be
// validated and have their req slot cleared by the caller (the owner-side
// bookkeeping); put only handles central-store state. Thread-safe.
func (a *Allocator) put(ci int, offs []uint64) {
	cs := &a.classes[ci]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, off := range offs {
		r := a.runAt(off)
		a.putOneLocked(cs, r, r.slot(off-r.start))
	}
}

// putEntries is put for handle magazines: entries carry their run and
// slot, so no index lookups or divisions under the class lock.
func (a *Allocator) putEntries(ci int, es []entry) {
	cs := &a.classes[ci]
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for _, e := range es {
		a.putOneLocked(cs, e.r, e.i)
	}
}

// reclaimEmpties releases every cached empty run back to the wrapped
// allocator. Called lock-free from failure paths so a large pass-through
// request (or a refill for another class) can coalesce their chunks.
func (a *Allocator) reclaimEmpties() {
	for ci := range a.classes {
		cs := &a.classes[ci]
		cs.mu.Lock()
		for _, r := range cs.empty {
			a.releaseLocked(cs, r)
		}
		cs.empty = cs.empty[:0]
		cs.mu.Unlock()
	}
}

// ownFree performs the owner-side half of freeing a slab object: validate
// the offset against the run, detect double/foreign frees, clear the
// requested-size slot and update the fragmentation gauge. Returns the
// slot index so the handle path can park the entry without re-deriving
// it. The central half is put.
func ownFree(r *run, off uint64, extra *handleExtra) uint32 {
	d := off - r.start
	i := r.slot(d)
	if uint64(i)*r.objSize != d {
		panic(fmt.Sprintf("slab: free of offset %d not on a class-%d boundary of run at %d", off, r.objSize, r.start))
	}
	req := r.req[i]
	if req == 0 {
		panic(fmt.Sprintf("slab: double free of offset %d", off))
	}
	r.req[i] = 0
	extra.frag -= int64(r.objSize) - int64(req)
	return i
}

// stamp performs the owner-side half of a slab allocation on a resolved
// slot: record the requested size (zero-byte requests keep the allocated
// bit set) and update the fragmentation gauge.
func stamp(r *run, i uint32, size uint64, extra *handleExtra) {
	req := uint32(size)
	if req == 0 {
		req = 1
	}
	r.req[i] = req
	extra.frag += int64(r.objSize) - int64(req)
}

// ownAlloc is stamp for callers holding only an offset (the conv and
// batch paths): resolve the run and slot first.
func (a *Allocator) ownAlloc(off, size uint64, extra *handleExtra) {
	r := a.runAt(off)
	stamp(r, r.slot(off-r.start), size, extra)
}

// allocSmall serves one class-sized request through the central store,
// falling back to reclaim-and-retry and finally to the wrapped allocator
// (counted as a fallthrough) when runs cannot be provisioned.
func (a *Allocator) allocSmall(inner allocFace, size uint64, stats *alloc.Stats, extra *handleExtra) (uint64, bool) {
	ci := a.classOf(size)
	var buf [1]uint64
	out := a.take(ci, buf[:0], 1)
	if len(out) == 0 {
		a.reclaimEmpties()
		out = a.take(ci, buf[:0], 1)
	}
	if len(out) == 1 {
		a.ownAlloc(out[0], size, extra)
		stats.Allocs++
		return out[0], true
	}
	off, ok := inner.Alloc(size)
	if ok {
		extra.fallthroughs++
		stats.Allocs++
	} else {
		stats.AllocFails++
	}
	return off, ok
}

// allocLarge serves a pass-through request, reclaiming cached empty runs
// and retrying once when the wrapped allocator is out of space.
func (a *Allocator) allocLarge(inner allocFace, size uint64, stats *alloc.Stats) (uint64, bool) {
	off, ok := inner.Alloc(size)
	if !ok && len(a.classes) > 0 {
		a.reclaimEmpties()
		off, ok = inner.Alloc(size)
	}
	if ok {
		stats.Allocs++
	} else {
		stats.AllocFails++
	}
	return off, ok
}

// allocFace is the single-op face shared by the conv path (the wrapped
// Allocator) and the handle path (the wrapped Handle).
type allocFace interface {
	Alloc(size uint64) (uint64, bool)
	Free(offset uint64)
}

// Alloc implements alloc.Allocator (the thread-safe conv path).
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	if a.cutoff == 0 || size > a.cutoff {
		a.convMu.Lock()
		defer a.convMu.Unlock()
		return a.allocLarge(a.inner, size, &a.convStats)
	}
	a.convMu.Lock()
	defer a.convMu.Unlock()
	return a.allocSmall(a.inner, size, &a.convStats, &a.convExtra)
}

// Free implements alloc.Allocator (the thread-safe conv path).
func (a *Allocator) Free(off uint64) {
	r := a.runAt(off)
	if r == nil {
		a.inner.Free(off)
		a.convMu.Lock()
		a.convStats.Frees++
		a.convMu.Unlock()
		return
	}
	a.convMu.Lock()
	ownFree(r, off, &a.convExtra)
	a.convStats.Frees++
	a.convMu.Unlock()
	a.put(r.class, []uint64{off})
}

// AllocBatch implements alloc.BatchAllocator: class-sized batches come
// from the central store in one take, larger sizes forward inward.
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	if a.cutoff == 0 || size > a.cutoff {
		out := alloc.AllocBatchOf(a.inner, size, n)
		a.convMu.Lock()
		a.convStats.Allocs += uint64(len(out))
		if len(out) < n {
			a.convStats.AllocFails++
		}
		a.convMu.Unlock()
		return out
	}
	ci := a.classOf(size)
	out := a.take(ci, make([]uint64, 0, n), n)
	if len(out) < n {
		a.reclaimEmpties()
		out = a.take(ci, out, n)
	}
	a.convMu.Lock()
	for _, off := range out {
		a.ownAlloc(off, size, &a.convExtra)
	}
	a.convStats.Allocs += uint64(len(out))
	if len(out) < n {
		a.convStats.AllocFails++
	}
	a.convMu.Unlock()
	return out
}

// FreeBatch implements alloc.BatchAllocator: slab objects return to their
// runs grouped by class, pass-through offsets forward inward as one batch.
func (a *Allocator) FreeBatch(offs []uint64) {
	var fwd []uint64
	byClass := map[int][]uint64{}
	a.convMu.Lock()
	for _, off := range offs {
		r := a.runAt(off)
		if r == nil {
			fwd = append(fwd, off)
			continue
		}
		ownFree(r, off, &a.convExtra)
		byClass[r.class] = append(byClass[r.class], off)
	}
	a.convStats.Frees += uint64(len(offs))
	a.convMu.Unlock()
	for ci, group := range byClass {
		a.put(ci, group)
	}
	if len(fwd) > 0 {
		alloc.FreeBatchOf(a.inner, fwd)
	}
}

// ChunkSize implements alloc.ChunkSizer: the class size for slab objects,
// the wrapped allocator's answer for pass-through memory. Panics on
// offsets that are not currently allocated, like every layer.
func (a *Allocator) ChunkSize(off uint64) uint64 {
	r := a.runAt(off)
	if r == nil {
		return a.sizer.ChunkSize(off)
	}
	d := off - r.start
	if i := r.slot(d); uint64(i)*r.objSize != d || r.req[i] == 0 {
		panic(fmt.Sprintf("slab: ChunkSize of unallocated offset %d", off))
	}
	return r.objSize
}

// Scrub flushes every handle magazine, returns every fully-free run
// (cached empties included) to the wrapped allocator, and forwards
// inward. Like the other layers' Scrub, it is a quiescent maintenance
// hook: no handle may be mid-operation.
func (a *Allocator) Scrub() {
	a.mu.Lock()
	hs := append([]*Handle(nil), a.handles...)
	a.mu.Unlock()
	for _, h := range hs {
		h.Flush()
	}
	for ci := range a.classes {
		cs := &a.classes[ci]
		cs.mu.Lock()
		for _, r := range cs.empty {
			a.releaseLocked(cs, r)
		}
		cs.empty = cs.empty[:0]
		cs.mu.Unlock()
	}
	if s, ok := a.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// DrainRange is the elastic retirement hook: it releases every fully-free
// run whose backing chunk lies inside [lo, hi), then arms the drain fence
// so handles flush magazines overlapping the window on their next
// operation. The elastic manager calls it at drain start and again on
// every Poll, so objects flushed by handles converge to released runs
// without a quiescent Scrub.
func (a *Allocator) DrainRange(lo, hi uint64) {
	for ci := range a.classes {
		cs := &a.classes[ci]
		cs.mu.Lock()
		kept := cs.empty[:0]
		for _, r := range cs.empty {
			if r.start >= lo && r.start < hi {
				a.releaseLocked(cs, r)
			} else {
				kept = append(kept, r)
			}
		}
		cs.empty = kept
		cs.mu.Unlock()
	}
	a.drainMu.Lock()
	if hi > a.drainWins[lo] {
		a.drainWins[lo] = hi
	}
	a.drainMu.Unlock()
	a.drainEpoch.Add(1)
}

// drainWindows snapshots the recorded draining windows.
func (a *Allocator) drainWindows() map[uint64]uint64 {
	a.drainMu.Lock()
	defer a.drainMu.Unlock()
	wins := make(map[uint64]uint64, len(a.drainWins))
	for lo, hi := range a.drainWins {
		wins[lo] = hi
	}
	return wins
}

// Stats implements alloc.Allocator: the sum of all live handles, closed
// handles and the conv path. For quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	s := a.closed.stats
	for _, h := range a.handles {
		s.Add(h.stats)
	}
	a.mu.Unlock()
	a.convMu.Lock()
	s.Add(a.convStats)
	a.convMu.Unlock()
	return s
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle {
	h := &Handle{
		a:     a,
		inner: a.inner.NewHandle(),
		epoch: a.drainEpoch.Load(),
	}
	if a.cutoff != 0 {
		h.mags = make([][]entry, len(a.classes))
	}
	a.mu.Lock()
	a.handles = append(a.handles, h)
	a.mu.Unlock()
	return h
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// extraTotals sums the slab-specific counters across live handles, closed
// handles and the conv path. Caller must not hold a.mu.
func (a *Allocator) extraTotals() handleExtra {
	a.mu.Lock()
	e := a.closed.extra
	for _, h := range a.handles {
		e.add(h.extra)
	}
	a.mu.Unlock()
	a.convMu.Lock()
	e.add(a.convExtra)
	a.convMu.Unlock()
	return e
}

// LayerStats implements alloc.LayerStatser.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	e := a.extraTotals()
	frag := e.frag
	if frag < 0 {
		frag = 0
	}
	var runs, runAllocs, runFrees uint64
	for ci := range a.classes {
		cs := &a.classes[ci]
		cs.mu.Lock()
		runs += cs.runs
		runAllocs += cs.runAllocs
		runFrees += cs.runFrees
		cs.mu.Unlock()
	}
	ls := alloc.LayerStats{
		Layer: "slab",
		Stats: a.Stats(),
		Extra: map[string]uint64{
			"slab_classes":       uint64(len(a.classes)),
			"slab_cutoff":        a.cutoff,
			"slab_run_bytes":     a.runChunk,
			"slab_runs":          runs,
			"slab_run_allocs":    runAllocs,
			"slab_run_frees":     runFrees,
			"slab_frag_bytes":    uint64(frag),
			"slab_fallthroughs":  e.fallthroughs,
			"slab_refills":       e.refills,
			"slab_spills":        e.spills,
			"slab_drain_flushes": e.drainFlushes,
		},
	}
	return append([]alloc.LayerStats{ls}, alloc.StackStats(a.inner)...)
}

// FragBytes returns the current internal-fragmentation gauge: bytes
// reserved by classes beyond what callers requested, across live objects.
// For quiescent points.
func (a *Allocator) FragBytes() uint64 {
	f := a.extraTotals().frag
	if f < 0 {
		f = 0
	}
	return uint64(f)
}

// ClassInfo describes one size class for diagnostics (nbbsinfo -slab).
type ClassInfo struct {
	Size       uint64 // object size in bytes
	ObjsPerRun uint32
	Runs       uint64 // live runs (full + partial + cached empty)
	Live       uint64 // allocated objects
	Free       uint64 // free slots across live runs
}

// ClassInfos reports the per-class run/occupancy table. It takes every
// class lock and walks the run index, so it is safe concurrently but
// intended for diagnostics.
func (a *Allocator) ClassInfos() []ClassInfo {
	infos := make([]ClassInfo, len(a.classes))
	for ci := range a.classes {
		cs := &a.classes[ci]
		cs.mu.Lock()
		infos[ci] = ClassInfo{
			Size:       cs.size,
			ObjsPerRun: uint32(a.runChunk / cs.size),
			Runs:       cs.runs,
		}
	}
	ix := a.idx.Load()
	for k := range ix.slots {
		if r := ix.slots[k].Load(); r != nil {
			infos[r.class].Free += uint64(len(r.free))
			infos[r.class].Live += uint64(r.count) - uint64(len(r.free))
		}
	}
	for ci := range a.classes {
		a.classes[ci].mu.Unlock()
	}
	return infos
}

// Find walks a stack's Unwrap chain and returns the first slab layer, or
// nil if the stack has none.
func Find(a alloc.Allocator) *Allocator {
	for a != nil {
		if sl, ok := a.(*Allocator); ok {
			return sl
		}
		u, ok := a.(interface{ Unwrap() alloc.Allocator })
		if !ok {
			return nil
		}
		a = u.Unwrap()
	}
	return nil
}
