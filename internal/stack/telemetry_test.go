package stack_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/alloctest"
	"repro/internal/elastic"
	"repro/internal/stack"
	"repro/internal/telemetry"

	_ "repro/internal/core"
)

// TestDifferentialTelemetry fuzzes telemetry-probed stacks against the
// map-based oracle: Spec.Telemetry inserts a latency probe above every
// layer boundary, and the probed stack must stay exactly conformant —
// probes forward offsets, ChunkSize and Scrub untouched, and their
// LayerStats entries carry zero traffic so the per-layer reconciliation
// after the drain holds unchanged. The sampling interval is pinned low
// so the timed path itself is exercised heavily, not just forwarding.
func TestDifferentialTelemetry(t *testing.T) {
	cases := []struct {
		name string
		spec stack.Spec
	}{
		{"cached+multi", stack.Spec{Variant: "4lvl-nb", Cached: true, Magazine: 8}},
		{"slab+cached+mapped+elastic+multi", stack.Spec{
			Variant: "4lvl-nb",
			Elastic: &elastic.Config{MinInstances: 1},
			Mapped:  true,
			Cached:  true, Magazine: 8,
			Slab: true,
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			alloctest.RunDifferential(t, func(t *testing.T, total, minSize, maxSize uint64) alloc.Allocator {
				t.Helper()
				s := c.spec
				n := instancesFor(4, total, maxSize)
				s.Instances = n
				if s.Elastic != nil {
					e := *s.Elastic
					e.MaxInstances = 2 * n
					s.Elastic = &e
				}
				s.Per = alloc.Config{Total: total / uint64(n), MinSize: minSize, MaxSize: maxSize}
				s.Telemetry = telemetry.New(telemetry.Config{SampleInterval: 2})
				st, err := stack.Build(s)
				if err != nil {
					t.Fatalf("stack.Build: %v", err)
				}
				return st.Top
			})
		})
	}
}

// TestTelemetryProbesRecord pins the wiring end to end: a probed stack
// reports non-zero samples at its boundaries after handle traffic, the
// probe keeps the stack's name unchanged, and the flight recorder holds
// whatever lifecycle events the run produced.
func TestTelemetryProbesRecord(t *testing.T) {
	reg := telemetry.New(telemetry.Config{SampleInterval: 1})
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb",
		Per:     alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 14},
		Cached:  true, Magazine: 8,
	})
	if err != nil {
		t.Fatalf("stack.Build: %v", err)
	}
	bare := st.Top.Name()
	st, err = stack.Build(stack.Spec{
		Variant: "4lvl-nb",
		Per:     alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 14},
		Cached:  true, Magazine: 8,
		Telemetry: reg,
	})
	if err != nil {
		t.Fatalf("stack.Build with telemetry: %v", err)
	}
	if got := st.Top.Name(); got != bare {
		t.Errorf("probes changed the stack name: %q != %q", got, bare)
	}

	h := st.Top.NewHandle()
	var offs []uint64
	for i := 0; i < 256; i++ {
		if off, ok := h.Alloc(64); ok {
			offs = append(offs, off)
		}
	}
	for _, off := range offs {
		h.Free(off)
	}
	alloc.CloseHandle(h)

	var total uint64
	for _, ll := range reg.Latencies() {
		for _, op := range ll.Ops {
			total += op.Samples
		}
	}
	if total == 0 {
		t.Fatalf("no samples recorded at any boundary (interval 1, %d ops)", 2*len(offs))
	}
	boundaries := map[string]bool{}
	for _, ll := range reg.Latencies() {
		boundaries[ll.Layer] = true
	}
	for _, want := range []string{"backend", "frontend"} {
		if !boundaries[want] {
			t.Errorf("boundary %q missing from Latencies(); got %v", want, boundaries)
		}
	}
}
