package status

import (
	"testing"
	"testing/quick"
)

func TestFieldRoundtrip(t *testing.T) {
	var w uint64
	for j := 0; j < 8; j++ {
		w = WithField(w, j, uint32(j)+1)
	}
	for j := 0; j < 8; j++ {
		if got := Field(w, j); got != uint32(j)+1 {
			t.Fatalf("Field(%d) = %#x, want %#x", j, got, j+1)
		}
	}
	if w>>40 != 0 {
		t.Fatalf("packing leaked above bit 40: %#x", w)
	}
}

func TestFieldMaskAndFill(t *testing.T) {
	if FieldMask(0, 8) != (1<<40)-1 {
		t.Fatalf("FieldMask(0,8) = %#x", FieldMask(0, 8))
	}
	if Fill(2, 2, Busy) != uint64(Busy)<<10|uint64(Busy)<<15 {
		t.Fatalf("Fill(2,2,Busy) = %#x", Fill(2, 2, Busy))
	}
}

func TestAnyBusy(t *testing.T) {
	w := WithField(0, 3, CoalLeft) // coalescing only: not busy
	if AnyBusy(w, 0, 8) {
		t.Error("coal-only field reported busy")
	}
	w = WithField(w, 5, Occ)
	if !AnyBusy(w, 4, 4) {
		t.Error("busy field in range not detected")
	}
	if AnyBusy(w, 0, 4) {
		t.Error("busy field outside range detected")
	}
}

// Property: WithField changes exactly the targeted field.
func TestQuickWithFieldIsolation(t *testing.T) {
	f := func(w uint64, j uint8, val uint32) bool {
		w &= (1 << 40) - 1
		jj := int(j % 8)
		out := WithField(w, jj, val)
		if Field(out, jj) != val&Mask {
			return false
		}
		for k := 0; k < 8; k++ {
			if k != jj && Field(out, k) != Field(w, k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AnyBusy(w, j, c) is exactly the OR of per-field busy tests.
func TestQuickAnyBusyDefinition(t *testing.T) {
	f := func(w uint64, j, c uint8) bool {
		w &= (1 << 40) - 1
		jj := int(j % 8)
		cc := int(c%8) + 1
		if jj+cc > 8 {
			cc = 8 - jj
		}
		want := false
		for k := jj; k < jj+cc; k++ {
			if Field(w, k)&Busy != 0 {
				want = true
			}
		}
		return AnyBusy(w, jj, cc) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
