package fault_test

import (
	"encoding/json"
	"errors"
	"syscall"
	"testing"

	"repro/internal/fault"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *fault.Injector
	for _, s := range fault.Sites() {
		if err := in.Check(s); err != nil {
			t.Fatalf("nil injector injected at %s: %v", s, err)
		}
	}
	if in.Record() != nil || in.InjectedTotal() != 0 {
		t.Fatal("nil injector must report an empty record")
	}
}

func TestDeterministicTriggers(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule fault.Rule
		want []bool // outcome of calls 1..len(want): true = injected
	}{
		{"nth", fault.FailNth(fault.Commit, 3, syscall.ENOMEM), []bool{false, false, true, false, false}},
		{"always", fault.FailAlways(fault.Commit, syscall.ENOMEM), []bool{true, true, true}},
		{"range", fault.FailRange(fault.Commit, 2, 3, syscall.EAGAIN), []bool{false, true, true, false}},
		{"open-range", fault.FailRange(fault.Commit, 3, 0, syscall.EAGAIN), []bool{false, false, true, true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := fault.New(1, tc.rule)
			for i, want := range tc.want {
				err := in.Check(fault.Commit)
				if got := err != nil; got != want {
					t.Fatalf("call %d: injected=%v, want %v (err=%v)", i+1, got, want, err)
				}
				if want && !errors.Is(err, tc.rule.Err) {
					t.Fatalf("call %d: err = %v, want %v", i+1, err, tc.rule.Err)
				}
			}
			// Other sites are untouched by the schedule.
			if err := in.Check(fault.Decommit); err != nil {
				t.Fatalf("unscheduled site injected: %v", err)
			}
		})
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		in := fault.New(seed, fault.FailProb(fault.Decommit, 0.5, syscall.EAGAIN))
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Check(fault.Decommit) != nil
		}
		return out
	}
	a, b := run(7), run(7)
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i+1)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.5 schedule injected %d/%d — not probabilistic", hits, len(a))
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

func TestRecordReplaysExactly(t *testing.T) {
	in := fault.New(42, fault.FailProb(fault.Commit, 0.3, syscall.ENOMEM),
		fault.FailProb(fault.Decommit, 0.3, syscall.EAGAIN))
	var first []bool
	for i := 0; i < 40; i++ {
		first = append(first, in.Check(fault.Commit) != nil, in.Check(fault.Decommit) != nil)
	}
	rec := in.Record()
	if len(rec) == 0 {
		t.Fatal("p=0.3 over 80 calls injected nothing")
	}

	// A JSON round trip (the incident-artifact format) must not change it.
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	var back []fault.Fault
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	rep := fault.Replay(back)
	var second []bool
	for i := 0; i < 40; i++ {
		second = append(second, rep.Check(fault.Commit) != nil, rep.Check(fault.Decommit) != nil)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at step %d", i)
		}
	}
	if got := rep.Record(); len(got) != len(rec) {
		t.Fatalf("replay recorded %d faults, original %d", len(got), len(rec))
	}
}

func TestPhasedScheduleKeepsOneRecord(t *testing.T) {
	in := fault.New(1, fault.FailNth(fault.Commit, 1, syscall.ENOMEM))
	if in.Check(fault.Commit) == nil {
		t.Fatal("phase 1 fault missing")
	}
	in.Clear()
	if in.Check(fault.Commit) != nil {
		t.Fatal("cleared injector still injects")
	}
	// Counting continued through the clear: the next rule sees call 3.
	in.Set(fault.FailNth(fault.Commit, 3, syscall.EAGAIN))
	if in.Check(fault.Commit) == nil {
		t.Fatal("phase 2 fault missing")
	}
	rec := in.Record()
	if len(rec) != 2 || rec[0].N != 1 || rec[1].N != 3 {
		t.Fatalf("spliced record = %v", rec)
	}
	if in.InjectedTotal() != 2 || in.Injected()[fault.Commit] != 2 || in.Calls()[fault.Commit] != 3 {
		t.Fatalf("counters: injected=%v calls=%v", in.Injected(), in.Calls())
	}
}

func TestDefaultError(t *testing.T) {
	in := fault.New(1, fault.FailAlways(fault.Huge, nil))
	if err := in.Check(fault.Huge); err == nil {
		t.Fatal("nil rule error must fall back to a generic injected error")
	}
}
