// Package workload implements the benchmark drivers: the four of the
// paper's evaluation (§IV) plus a remote-free producer/consumer driver:
//
//   - Linux Scalability [22]: every thread runs a tight alloc/free
//     ping-pong of one fixed size.
//   - Thread Test [17] (from the Hoard paper): every thread repeatedly
//     allocates a batch of chunks and then frees the whole batch.
//   - Larson [23]: a simulated server where chunks are handed off through
//     shared slots, so memory allocated by one thread is routinely freed
//     by another; measured as throughput over a fixed time window.
//   - Constant Occupancy (the paper's own): every thread builds a
//     mixed-size pool (more chunks at smaller sizes), then repeatedly
//     frees a random pool entry and re-allocates the same size, keeping
//     the buddy occupancy factor constant.
//   - Remote Free (this repository's): a producer/consumer hand-off
//     where every release is performed by a thread that did not allocate
//     the chunk — the pure cross-thread pattern that Larson samples,
//     isolated to exercise front-end spill/depot behaviour.
//   - Frag (this repository's): an alloc/free ping-pong over an instance
//     pre-fragmented with a checkerboard of long-lived chunks, so every
//     level scan walks long occupied runs before finding a hole — the
//     pattern that stresses the packed status tree's SWAR scan.
//   - Burst (this repository's): a sawtooth live-set — every thread ramps
//     its holdings to a peak above the elastic high watermark, holds,
//     drains to a trough below the low watermark, holds, and repeats —
//     the diurnal/bursty pattern an elastic capacity manager exists for.
//     When the allocator stack contains one, the driver polls it at phase
//     boundaries and during the holds, so instances grow at peak and
//     drain/retire at trough; on fixed stacks it is a pure sawtooth.
//   - Burst Straggler (this repository's): the Burst sawtooth with one
//     long-lived chunk pinned per worker across the drains, the pattern
//     that stalls a draining slot forever unless the elastic manager's
//     migration step moves the straggler off it.
//   - Mixed (this repository's): each thread churns a fixed working set
//     with log-uniform request sizes — an octave exponent drawn
//     uniformly, then a size drawn uniformly within the octave — so
//     small, poorly power-of-two-fitting requests dominate the stream
//     the way they dominate real allocator traffic. The size-class slab
//     layer's showcase.
//
// Every driver takes a prebuilt allocator instance and a Config whose
// operation counts follow the paper (20M/T for Linux Scalability and
// Constant Occupancy, 10k/T allocations x 200 rounds for Thread Test, a
// 10-second window for Larson) scaled by a configurable factor so the
// full grid also runs in CI time.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/alloc"
	"repro/internal/elastic"
)

// Config parameterizes a single benchmark run.
type Config struct {
	Threads int    // worker goroutines hammering the one instance
	Size    uint64 // request size in bytes (Constant Occupancy: minimum size)
	// Scale multiplies the paper's iteration counts; 1.0 reproduces the
	// paper's volumes, smaller values proportionally shrink every
	// driver's work (and the Larson window).
	Scale float64
	// Seed makes runs reproducible; workers derive private streams.
	Seed int64
}

func (c Config) scaled(n uint64) uint64 {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := uint64(float64(n) * s)
	if v == 0 {
		v = 1
	}
	return v
}

// Result is the outcome of one driver execution.
type Result struct {
	Workload  string
	Allocator string
	Threads   int
	Size      uint64
	Elapsed   time.Duration
	Ops       uint64 // completed allocations + frees
	Fails     uint64 // allocation attempts the instance could not serve
}

// Throughput returns completed operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Func is a benchmark driver.
type Func func(a alloc.Allocator, cfg Config) Result

// Drivers enumerates the benchmarks by their evaluation names: the
// paper's four plus the remote-free producer/consumer driver that
// isolates the cross-thread release path.
var Drivers = map[string]Func{
	"linux-scalability":  LinuxScalability,
	"thread-test":        ThreadTest,
	"larson":             Larson,
	"constant-occupancy": ConstantOccupancy,
	"remote-free":        RemoteFree,
	"frag":               Frag,
	"burst":              Burst,
	"burst-straggler":    BurstStraggler,
	"mixed":              Mixed,
}

// Names returns the driver names in sorted order — the canonical list
// for command-line help and validation messages.
func Names() []string {
	out := make([]string, 0, len(Drivers))
	for name := range Drivers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// run spawns cfg.Threads workers, waits for all to finish, and accounts
// elapsed wall time and completed operations.
func run(name string, a alloc.Allocator, cfg Config, worker func(id int, h alloc.Handle)) Result {
	var wg sync.WaitGroup
	handles := make([]alloc.Handle, cfg.Threads)
	for i := range handles {
		handles[i] = a.NewHandle()
	}
	start := time.Now()
	for i := 0; i < cfg.Threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(i, handles[i])
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var ops, fails uint64
	for _, h := range handles {
		s := h.Stats()
		ops += s.Allocs + s.Frees
		fails += s.AllocFails
	}
	return Result{
		Workload:  name,
		Allocator: a.Name(),
		Threads:   cfg.Threads,
		Size:      cfg.Size,
		Elapsed:   elapsed,
		Ops:       ops,
		Fails:     fails,
	}
}

// LinuxScalability: each thread performs 20M/T iterations of
// {alloc(size); free} (paper: "threads continuously execute an
// allocation/release pattern, with fixed size").
func LinuxScalability(a alloc.Allocator, cfg Config) Result {
	iters := cfg.scaled(20_000_000) / uint64(cfg.Threads)
	return run("linux-scalability", a, cfg, func(id int, h alloc.Handle) {
		for i := uint64(0); i < iters; i++ {
			if off, ok := h.Alloc(cfg.Size); ok {
				h.Free(off)
			}
		}
	})
}

// ThreadTest: each thread performs 10k/T allocations of the given size,
// then releases all of them, repeating the pattern for 200 rounds
// (paper's citation of the Hoard thread test).
func ThreadTest(a alloc.Allocator, cfg Config) Result {
	batch := cfg.scaled(10_000) / uint64(cfg.Threads)
	if batch == 0 {
		batch = 1
	}
	const rounds = 200
	return run("thread-test", a, cfg, func(id int, h alloc.Handle) {
		live := make([]uint64, 0, batch)
		for r := 0; r < rounds; r++ {
			live = live[:0]
			for i := uint64(0); i < batch; i++ {
				if off, ok := h.Alloc(cfg.Size); ok {
					live = append(live, off)
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}
	})
}

// larsonSlots is the size of the shared hand-off table: enough slots that
// slot collisions are not the bottleneck, few enough that chunks routinely
// migrate between threads.
const larsonSlots = 4096

// Larson: a Web-server simulation. A shared slot table holds live chunks;
// each worker repeatedly allocates a replacement for a random slot and
// frees whatever chunk it displaced — routinely one allocated by another
// thread. Runs for a fixed window (10s at Scale 1) and reports throughput.
func Larson(a alloc.Allocator, cfg Config) Result {
	slots := make([]atomic.Uint64, larsonSlots) // 0 = empty, else offset+1
	window := time.Duration(float64(10*time.Second) * normScale(cfg.Scale))
	var deadline atomic.Bool
	timer := time.AfterFunc(window, func() { deadline.Store(true) })
	defer timer.Stop()

	res := run("larson", a, cfg, func(id int, h alloc.Handle) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
		for !deadline.Load() {
			// Batch a few operations per deadline check to keep the
			// atomic load off the critical path.
			for k := 0; k < 64; k++ {
				slot := &slots[rng.Intn(larsonSlots)]
				var repl uint64
				if off, ok := h.Alloc(cfg.Size); ok {
					repl = off + 1
				}
				if old := slot.Swap(repl); old != 0 {
					h.Free(old - 1)
				}
			}
		}
	})
	// Drain the table so the instance can be reused or inspected; use a
	// real handle so the frees are visible in the aggregated statistics.
	drain := a.NewHandle()
	for i := range slots {
		if v := slots[i].Swap(0); v != 0 {
			drain.Free(v - 1)
		}
	}
	res.Elapsed = window // throughput is defined over the window
	return res
}

// remoteFreeQueueCap bounds the in-flight chunks per hand-off queue:
// deep enough that producers rarely stall, shallow enough that the
// working set stays bounded.
const remoteFreeQueueCap = 1024

// RemoteFree: a producer/consumer hand-off. Half the threads allocate
// and push offsets through a shared queue; the other half pop and free
// them, so every single release is remote — the pure form of the
// cross-thread pattern Larson only samples. This is the front-end's
// worst case: consumer magazines fill with chunks the consumer never
// re-allocates, so a chunk-at-a-time front-end pays a back-end round
// trip per spilled chunk, while a depot-backed one hands whole magazines
// across in O(1). With one thread the driver degenerates to a local
// alloc/free ping-pong through the queue.
func RemoteFree(a alloc.Allocator, cfg Config) Result {
	producers := cfg.Threads / 2
	if producers == 0 {
		producers = 1
	}
	queue := make(chan uint64, remoteFreeQueueCap)
	iters := cfg.scaled(10_000_000) / uint64(producers)
	var done sync.WaitGroup
	done.Add(producers)
	go func() {
		done.Wait()
		close(queue)
	}()
	return run("remote-free", a, cfg, func(id int, h alloc.Handle) {
		if id < producers {
			for i := uint64(0); i < iters; i++ {
				if off, ok := h.Alloc(cfg.Size); ok {
					if cfg.Threads == 1 {
						// Single-thread degenerate mode: drain inline so the
						// bounded queue cannot deadlock the lone worker.
						select {
						case queue <- off:
						default:
							h.Free(off)
						}
					} else {
						queue <- off
					}
				}
			}
			done.Done()
			if id == 0 && cfg.Threads == 1 {
				for off := range queue {
					h.Free(off)
				}
			}
			return
		}
		for off := range queue {
			h.Free(off)
		}
	})
}

// fragRunLen is the length of the occupied runs of the frag driver's
// checkerboard: between two free holes sit fragRunLen long-lived chunks,
// so a level scan starting from a scattered point walks fragRunLen/2
// occupied statuses on average before finding a hole.
const fragRunLen = 15

// fragPlantBatch is the bulk-allocation unit of the frag planter. The
// checkerboard is planted and torn down through the allocator-level
// bulk-transfer contract: the batched level scan keeps its rover, so
// filling the whole instance stays linear, and on composed stacks the
// allocator's batch forwards straight to the back-end instead of
// amplifying through magazine refills (a chunk-at-a-time fill of a
// nearly-exhausted heap through a batch-refilling front-end is
// quadratic in the heap size).
const fragPlantBatch = 4096

// Frag: the fragmentation-resilience driver. Before timing, a planter
// handle fills the instance with cfg.Size chunks and then frees every
// (fragRunLen+1)-th one, leaving a checkerboard of long-lived occupied
// runs separated by isolated holes. The timed phase is the Linux
// Scalability ping-pong over that landscape: every allocation's level
// scan must traverse an occupied run to reach a hole, which is exactly
// the memory-bandwidth-bound path the word-packed status layout targets
// (eight node statuses per atomic load instead of one). The planted
// chunks are released after the timed window so the instance drains.
func Frag(a alloc.Allocator, cfg Config) Result {
	var planted []uint64
	for {
		batch := alloc.AllocBatchOf(a, cfg.Size, fragPlantBatch)
		planted = append(planted, batch...)
		if len(batch) < fragPlantBatch {
			// A short batch means the scan could not serve the remainder:
			// the instance is as full as it gets.
			break
		}
	}
	keep := planted[:0]
	holes := make([]uint64, 0, len(planted)/(fragRunLen+1)+1)
	for i, off := range planted {
		if i%(fragRunLen+1) == 0 {
			holes = append(holes, off)
		} else {
			keep = append(keep, off)
		}
	}
	alloc.FreeBatchOf(a, holes)
	iters := cfg.scaled(10_000_000) / uint64(cfg.Threads)
	res := run("frag", a, cfg, func(id int, h alloc.Handle) {
		for i := uint64(0); i < iters; i++ {
			if off, ok := h.Alloc(cfg.Size); ok {
				h.Free(off)
			}
		}
	})
	alloc.FreeBatchOf(a, keep)
	return res
}

// Burst sawtooth shape, as fractions of the initial offset span: the peak
// sits above the elastic manager's default high watermark (so held peaks
// demand growth) and the trough far below the low watermark (so held
// troughs demand retirement). Ramp and drain move memory through the
// bulk-transfer contract in burstBatch-chunk steps: a deep fill through
// single allocations re-probes the collectively delivered run on every
// call (the quadratic pattern the PR 2 batch rover fixed — the frag
// planter moved to bulk fills for the same reason), while the batched
// level scan advances past everything it walked.
const (
	burstPeakNum, burstPeakDen = 17, 20 // 85% of the initial span
	burstTroughDiv             = 16     // trough = peak/16 (~5.3%)
	burstBatch                 = 512    // bulk-contract step of ramp/drain
)

// Burst: the elastic-capacity driver. Every thread cycles its private
// live set through a sawtooth — ramp to peak, hold (churn at constant
// occupancy), drain to trough, hold — so the stack-wide footprint swings
// between ~85% and ~5% of the initial capacity. At phase boundaries and
// periodically during the holds each worker polls the stack's capacity
// manager (when it has one): held peaks satisfy the grow hysteresis,
// held troughs the drain hysteresis, so an elastic stack expands at peak
// and retires instances at trough within each cycle. The drain phase
// releases newest-first, so trough survivors are the oldest chunks — the
// ones packed on the workers' preferred instances — which leaves grown
// instances empty and actually retirable. A failed ramp allocation polls
// and retries once (growth may be what it is waiting for) before moving
// on.
func Burst(a alloc.Allocator, cfg Config) Result {
	return burstDriver("burst", a, cfg, nil)
}

// BurstStraggler: the Burst sawtooth with one long-lived chunk per
// worker. Each thread allocates a single chunk during its first peak and
// holds it across every subsequent drain, so trough phases leave exactly
// Threads stragglers scattered over the fleet — a slot hosting one can
// only retire once its owner lets go. Without migration that is never
// (the stall the regression test pins); with migration enabled the
// manager copies the straggler onto an active slot and retirement
// completes in bounded polls. The driver registers an OnMigrate hook
// that rewrites the held offsets — the ownership contract of the
// migration step — and frees the stragglers at their final addresses
// only after every worker has joined.
//
// Against a migration-ENABLED manager, run this driver with
// Config.Threads = 1: the hook rewrites only the parked stragglers, so
// a migrating Poll must never race a concurrent worker freeing its
// transient sawtooth chunks off the same draining slot (the quiescence
// contract of elastic migration). A single worker serializes its polls
// and frees, and its trough-held chunks pin the preferred slot's byte
// count above the straggler slot's, keeping them off the drain victim.
func BurstStraggler(a alloc.Allocator, cfg Config) Result {
	stragglers := make([]atomic.Uint64, cfg.Threads) // 0 = none, else offset+1
	if mgr := elastic.Find(a); mgr != nil {
		mgr.OnMigrate(func(oldOff, newOff, _ uint64) {
			for i := range stragglers {
				if stragglers[i].CompareAndSwap(oldOff+1, newOff+1) {
					return
				}
			}
		})
	}
	res := burstDriver("burst-straggler", a, cfg, func(id int, h alloc.Handle) {
		if stragglers[id].Load() == 0 {
			if off, ok := h.Alloc(cfg.Size); ok {
				stragglers[id].Store(off + 1)
			}
		}
	})
	// Workers have joined and no Poll is in flight, so the (possibly
	// migrated) addresses are stable; free through a real handle so the
	// aggregated statistics stay balanced.
	drain := a.NewHandle()
	for i := range stragglers {
		if v := stragglers[i].Swap(0); v != 0 {
			drain.Free(v - 1)
		}
	}
	if mgr := elastic.Find(a); mgr != nil {
		mgr.Poll()
	}
	// The straggler frees and the poll above may have retired instances,
	// and an elastic stack's display name carries its live instance
	// count — re-stamp the label so it names the stack as it now stands.
	res.Allocator = a.Name()
	return res
}

// burstDriver is the shared sawtooth body of Burst and BurstStraggler;
// atPeak, when non-nil, runs once per worker per cycle at the top of the
// ramp.
func burstDriver(name string, a alloc.Allocator, cfg Config, atPeak func(id int, h alloc.Handle)) Result {
	mgr := elastic.Find(a)
	geo := a.Geometry()
	reserved := geo.SizeOfLevel(geo.LevelForSize(cfg.Size))
	span := alloc.SpanOf(a)
	peak := span * burstPeakNum / burstPeakDen / reserved / uint64(cfg.Threads)
	if peak < 8 {
		peak = 8
	}
	trough := peak / burstTroughDiv
	if trough < 1 {
		trough = 1
	}
	// A cycle costs about (peak-trough) allocs + as many frees + a peak's
	// worth of churn per worker.
	opsPerCycle := 3 * peak
	cycles := cfg.scaled(10_000_000) / uint64(cfg.Threads) / opsPerCycle
	if cycles == 0 {
		cycles = 1
	}
	pollEvery := int(peak / 8)
	if pollEvery == 0 {
		pollEvery = 1
	}
	poll := func() {
		if mgr != nil {
			mgr.Poll()
		}
	}
	return run(name, a, cfg, func(id int, h alloc.Handle) {
		live := make([]uint64, 0, peak)
		churn := func(rounds uint64) {
			for i := uint64(0); i < rounds; i++ {
				if len(live) > 0 {
					h.Free(live[len(live)-1])
					live = live[:len(live)-1]
				}
				if off, ok := h.Alloc(cfg.Size); ok {
					live = append(live, off)
				}
				if i%uint64(pollEvery) == 0 {
					poll()
				}
			}
		}
		for c := uint64(0); c < cycles; c++ {
			// Ramp to peak in bulk-contract steps.
			for uint64(len(live)) < peak {
				n := int(peak) - len(live)
				if n > burstBatch {
					n = burstBatch
				}
				got := alloc.HandleAllocBatch(h, cfg.Size, n)
				live = append(live, got...)
				poll()
				if len(got) < n {
					// The fleet is saturated mid-ramp; the poll above may
					// have published capacity. A second short batch means it
					// did not (cap reached): hold at whatever this is.
					if got = alloc.HandleAllocBatch(h, cfg.Size, n-len(got)); len(got) == 0 {
						break
					}
					live = append(live, got...)
				}
			}
			poll()
			if atPeak != nil {
				atPeak(id, h)
			}
			churn(peak / 2) // hold at peak
			poll()
			// Drain to trough, newest first, in bulk-contract steps.
			for uint64(len(live)) > trough {
				n := len(live) - int(trough)
				if n > burstBatch {
					n = burstBatch
				}
				alloc.HandleFreeBatch(h, live[len(live)-n:])
				live = live[:len(live)-n]
			}
			poll()
			churn(peak / 8) // hold at trough (longer than a hysteresis streak)
			poll()
		}
		alloc.HandleFreeBatch(h, live)
		poll()
	})
}

func normScale(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// occupancyClasses returns the Constant Occupancy size classes: the paper
// uses sizes from cfg.Size up to 16x cfg.Size, "with larger amount of
// allocations bound to smaller chunk sizes". We use the five power-of-two
// classes with per-class counts inversely proportional to size.
func occupancyClasses(minSize uint64, budget int) []uint64 {
	classes := []uint64{minSize, 2 * minSize, 4 * minSize, 8 * minSize, 16 * minSize}
	var pool []uint64
	for _, s := range classes {
		n := budget * int(classes[0]) / int(s)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			pool = append(pool, s)
		}
	}
	return pool
}

// constOccPoolBudget is the per-thread count of minimum-size chunks the
// initial pool is normalized to.
const constOccPoolBudget = 64

// ConstantOccupancy: each thread pre-allocates its mixed-size pool, then
// runs 20M/T rounds of {free random element; alloc the same size},
// keeping the instance's occupancy factor constant while exercising
// frees and allocations across levels.
func ConstantOccupancy(a alloc.Allocator, cfg Config) Result {
	iters := cfg.scaled(20_000_000) / uint64(cfg.Threads)
	return run("constant-occupancy", a, cfg, func(id int, h alloc.Handle) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*104729))
		sizes := occupancyClasses(cfg.Size, constOccPoolBudget)
		type chunk struct {
			off  uint64
			size uint64
			ok   bool
		}
		pool := make([]chunk, len(sizes))
		for i, s := range sizes {
			off, ok := h.Alloc(s)
			pool[i] = chunk{off, s, ok}
		}
		for i := uint64(0); i < iters; i++ {
			c := &pool[rng.Intn(len(pool))]
			if c.ok {
				h.Free(c.off)
			}
			c.off, c.ok = h.Alloc(c.size)
		}
		for _, c := range pool {
			if c.ok {
				h.Free(c.off)
			}
		}
	})
}

// mixedSlots is the per-thread working-set size of the mixed driver.
const mixedSlots = 256

// Mixed: each thread keeps a mixedSlots-entry working set and runs
// 20M/T rounds of {free the slot if occupied; alloc a fresh log-uniform
// size into it}. Sizes draw an octave exponent uniformly from
// [3, log2(cfg.Size)-1] and then a size uniformly within the octave, so
// the stream is dominated by small requests with poor power-of-two fit
// (the sizes a size-class slab serves from runs) while the top octave
// keeps larger chunks in play; cfg.Size bounds the largest request.
// The base iteration count is 5x the fixed-size drivers': mixed ops are
// magazine-hit cheap, so short cells would be dominated by per-rep
// stack construction (run provisioning, magazine fill) instead of the
// steady state the driver exists to compare.
func Mixed(a alloc.Allocator, cfg Config) Result {
	iters := cfg.scaled(100_000_000) / uint64(cfg.Threads)
	maxE := 3
	for uint64(1)<<(maxE+2) <= cfg.Size {
		maxE++
	}
	return run("mixed", a, cfg, func(id int, h alloc.Handle) {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*15485863))
		size := func() uint64 {
			lo := uint64(1) << (3 + rng.Intn(maxE-2))
			if s := lo + uint64(rng.Int63n(int64(lo))); s <= cfg.Size {
				return s
			}
			return cfg.Size // degenerate tiny cfg.Size: stay in bounds
		}
		type chunk struct {
			off uint64
			ok  bool
		}
		pool := make([]chunk, mixedSlots)
		for i := uint64(0); i < iters; i++ {
			c := &pool[rng.Intn(len(pool))]
			if c.ok {
				h.Free(c.off)
			}
			c.off, c.ok = h.Alloc(size())
		}
		for _, c := range pool {
			if c.ok {
				h.Free(c.off)
			}
		}
	})
}

// Validate rejects configurations the drivers cannot honour.
func (c Config) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("workload: thread count %d must be positive", c.Threads)
	}
	if c.Size == 0 {
		return fmt.Errorf("workload: request size must be positive")
	}
	return nil
}
