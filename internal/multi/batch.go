package multi

// Batch routing: the router implements the bulk-transfer contract by
// splitting batches per instance. A bulk allocation asks the preferred
// instance for the whole batch and falls back to the other instances for
// the remainder (the per-chunk zone-fallback discipline, applied once per
// sub-batch instead of once per chunk); a bulk release groups the global
// offsets by owning instance and hands each instance its group in one
// call, so a depot drain crossing the router stays one operation per
// instance rather than one per chunk.
//
// With live tracking (elastic deployments) the batch paths follow the
// same counter discipline as the single-chunk paths: the live counter is
// raised by the full requested amount before the state check and settled
// to the delivered amount afterwards, and batch frees decrement only
// after the instance-level release completed.

import "repro/internal/alloc"

// tryAllocBatchOn asks slot k for up to n chunks, honouring the elastic
// live-counter ordering (raise before the state check, settle after).
func (h *Handle) tryAllocBatchOn(s *slot, k int, size uint64, n int) []uint64 {
	m := h.m
	if m.trackLive {
		s.live.Add(int64(n))
		if s.state.Load() != slotActive {
			s.live.Add(int64(-n))
			return nil
		}
	}
	got := alloc.HandleAllocBatch(h.sub(s, k), size, n)
	if m.trackLive {
		if delta := int64(len(got) - n); delta != 0 {
			s.live.Add(delta)
		}
		if len(got) > 0 {
			s.liveBytes.Add(int64(m.reservedFor(size)) * int64(len(got)))
		}
	}
	return got
}

// AllocBatch implements alloc.BatchHandle with per-instance routing.
func (h *Handle) AllocBatch(size uint64, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	out := make([]uint64, 0, n)
	m := h.m
	t := m.tab.Load()
	h.syncTable(t)
	cnt := len(t.slots)
	// Walk from a snapshot of the preference: the fallback path below may
	// move h.pref to a serving instance mid-batch, which must not reorder
	// the remainder of this walk.
	pref := h.pref
	for d := 0; d < cnt && len(out) < n; d++ {
		k := (pref + d) % cnt
		s := t.slots[k]
		if s == nil {
			continue
		}
		got := h.tryAllocBatchOn(s, k, size, n-len(out))
		if len(got) == 0 {
			continue
		}
		base := uint64(k) * m.span
		for _, off := range got {
			out = append(out, base+off)
		}
		h.stats.Allocs += uint64(len(got))
		if d != 0 {
			h.fallbacks += uint64(len(got))
			if m.policy == RoundRobin {
				// Move the preference to the serving instance, as on the
				// single-chunk fallback path.
				h.pref = k
			}
		}
	}
	if len(out) == 0 {
		h.stats.AllocFails++
	}
	return out
}

// FreeBatch implements alloc.BatchHandle: offsets are grouped by owning
// instance and each group is released in one per-instance call.
func (h *Handle) FreeBatch(offsets []uint64) {
	if len(offsets) == 0 {
		return
	}
	m := h.m
	t := m.tab.Load()
	h.syncTable(t)
	groups := make([][]uint64, len(t.slots))
	for _, off := range offsets {
		k, local, _ := m.route(t, off)
		groups[k] = append(groups[k], local)
	}
	for k, group := range groups {
		if len(group) == 0 {
			continue
		}
		s := t.slots[k]
		var bytes int64
		if m.trackLive {
			// Read reserved sizes before the release clears the metadata.
			for _, local := range group {
				bytes += int64(s.sizer.ChunkSize(local))
			}
		}
		alloc.HandleFreeBatch(h.sub(s, k), group)
		if m.trackLive {
			s.liveBytes.Add(-bytes)
			s.live.Add(int64(-len(group)))
		}
		h.stats.Frees += uint64(len(group))
	}
}

// AllocBatch implements alloc.BatchAllocator through a recycled
// convenience handle (see Multi.Alloc for why handles are pooled).
func (m *Multi) AllocBatch(size uint64, n int) []uint64 {
	h := m.getConv()
	out := h.AllocBatch(size, n)
	m.putConv(h)
	return out
}

// FreeBatch implements alloc.BatchAllocator through a recycled handle.
func (m *Multi) FreeBatch(offsets []uint64) {
	h := m.getConv()
	h.FreeBatch(offsets)
	m.putConv(h)
}
