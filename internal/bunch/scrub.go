package bunch

import (
	"repro/internal/geometry"
	"repro/internal/status"
)

// Scrub rebuilds the bunch words from the set of live allocations recorded
// in index[]. See the identical method on the 1-level allocator
// (internal/core) for why stranded conservative markings can survive a
// racing release. Scrub must only be called while no other operation is in
// flight; it is a maintenance utility, not part of the paper's algorithm.
func (a *Allocator) Scrub() {
	var live []uint64
	for slot := range a.index {
		if n := a.index[slot].Load(); n != 0 {
			live = append(live, uint64(n))
		}
	}
	for w := range a.words {
		a.words[w].Store(0)
	}
	lamStop := a.geo.LeafLevelFor(a.geo.MaxLevel)
	for _, n := range live {
		nLevel := geometry.LevelOf(n)
		word, field, count, leafLevel := a.nodeWord(n)
		word.Store(word.Load() | status.Fill(field, count, status.Busy))
		for lam := leafLevel - geometry.BunchSpan; lam >= lamStop; lam -= geometry.BunchSpan {
			anc := geometry.AncestorAt(n, nLevel, lam)
			child := geometry.AncestorAt(n, nLevel, lam+1)
			w, f := a.wordOf(anc, lam)
			w.Store(status.WithField(w.Load(), f, status.Mark(status.Field(w.Load(), f), child)))
		}
	}
}

// LiveNodes returns the number of currently delivered chunks (quiescent
// diagnostic).
func (a *Allocator) LiveNodes() int {
	live := 0
	for slot := range a.index {
		if a.index[slot].Load() != 0 {
			live++
		}
	}
	return live
}
