//go:build linux && amd64

package mem

// Raw NUMA syscall numbers (x86-64 table).
const (
	sysMbind         = 237
	sysGetMempolicy  = 239
	numaHaveSyscalls = true
)
