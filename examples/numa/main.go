// NUMA: per-CPU sharded routing with NUMA-aware memory placement — the
// deployment the paper's related-work discussion motivates, made real.
//
// The stack is the full PR 6 composition: per-CPU shards over the
// multi-instance router with mapped, NUMA-placed backing memory. Every
// worker's operations key to the shard of the CPU they run on; each
// shard prefers its own instance, whose window was committed onto the
// NUMA node of that CPU (mbind preferred policy before the first touch).
// The demo drives a mixed load, then:
//
//   - prints the shard counters (cache hit rate, remote-free stash
//     traffic) and the window -> NUMA-node map;
//   - asserts the placement: for every committed window, the node the
//     kernel reports for its first page (get_mempolicy) must equal the
//     node the policy assigned (NodeMap). On single-node machines and
//     platforms without the syscalls the assertion passes trivially —
//     the policy is bookkeeping-only there, and the demo says so.
//
// A second phase skews the load (every worker frees chunks a designated
// producer allocated) to show the remote-free stash path absorbing
// cross-shard traffic.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	nbbs "repro"
)

func main() {
	var (
		instances = flag.Int("instances", 4, "back-end instances (one per shard when possible)")
		workers   = flag.Int("workers", 8, "worker goroutines")
		ops       = flag.Int("ops", 200000, "alloc/free pairs per worker")
		variant   = flag.String("variant", nbbs.Variant4Lvl, "allocator variant per instance")
	)
	flag.Parse()

	b, err := nbbs.New(nbbs.Config{Total: 32 << 20, MinSize: 64, MaxSize: 64 << 10},
		nbbs.WithVariant(*variant),
		nbbs.WithInstances(*instances),
		nbbs.WithMappedMemory(),
		nbbs.WithSharding(0), // GOMAXPROCS shards
	)
	if err != nil {
		log.Fatal(err)
	}
	sh := b.Sharded()
	fmt.Printf("%s: %d workers, %d shards over %d instances\n",
		b.Name(), *workers, sh.Shards(), b.Instances())
	if nbbs.NUMABacking() {
		fmt.Printf("NUMA: %d online nodes, mbind placement active\n", len(nbbs.NUMANodes()))
	} else {
		fmt.Printf("NUMA: single node or no syscalls — placement is bookkeeping only\n")
	}

	// Phase 1: CPU-local churn. Every worker allocates and frees on its
	// own shard; the steady state should be nearly all cache hits.
	sizes := []uint64{64, 256, 1024, 8 << 10}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := b.NewHandle()
			rng := rand.New(rand.NewSource(int64(w)))
			var live []uint64
			for i := 0; i < *ops; i++ {
				if off, ok := h.Alloc(sizes[rng.Intn(len(sizes))]); ok {
					live = append(live, off)
				}
				if len(live) > 32 {
					h.Free(live[0])
					live = live[1:]
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	local := time.Since(start)
	tot := sh.Totals()
	hitPct := float64(tot.Hits) / float64(tot.Hits+tot.Misses) * 100
	s := b.Stats()
	fmt.Printf("\nlocal churn: %d ops in %v (%.2f Mops/s), %.1f%% shard-cache hits\n",
		s.OpsTotal(), local.Round(time.Millisecond),
		float64(s.OpsTotal())/local.Seconds()/1e6, hitPct)

	// Phase 2: producer/consumer skew — workers free chunks a single
	// producer handle allocated, so most frees are remote to the freeing
	// shard and flow through the owners' inbound stashes.
	prod := b.NewHandle()
	ch := make(chan uint64, 1024)
	var cwg sync.WaitGroup
	consumers := *workers
	for w := 0; w < consumers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			h := b.NewHandle()
			for off := range ch {
				h.Free(off)
			}
		}()
	}
	start = time.Now()
	remoteOps := *ops * 2
	for i := 0; i < remoteOps; i++ {
		if off, ok := prod.Alloc(sizes[i%len(sizes)]); ok {
			ch <- off
		}
	}
	close(ch)
	cwg.Wait()
	remote := time.Since(start)
	tot = sh.Totals()
	fmt.Printf("remote-free skew: %d pairs in %v (%.2f Mops/s), %d stash pushes, %d stash drains\n",
		remoteOps, remote.Round(time.Millisecond),
		float64(2*remoteOps)/remote.Seconds()/1e6, tot.RemoteFrees, tot.StashDrains)

	b.Scrub()

	// Placement report and assertion: the kernel's answer for each
	// committed window must match the node the policy assigned.
	r := b.Memory()
	nodes := r.NodeMap()
	fmt.Printf("\nwindow -> NUMA node map:\n")
	violations := 0
	for k, assigned := range nodes {
		if !r.Committed(k) {
			fmt.Printf("  window %-3d decommitted (assigned node %d)\n", k, assigned)
			continue
		}
		line := fmt.Sprintf("  window %-3d assigned node %-3d", k, assigned)
		if got, ok := nbbs.NodeOfWindow(r, k); ok {
			line += fmt.Sprintf(" kernel reports %-3d", got)
			if nbbs.NUMABacking() && got != assigned {
				line += "  MISMATCH"
				violations++
			}
		} else {
			line += " kernel placement unavailable"
		}
		fmt.Println(line)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "numa: %d window(s) placed off their assigned node\n", violations)
		os.Exit(1)
	}
	fmt.Printf("placement verified: every committed window is on its assigned node\n")

	for _, layer := range b.LayerStats() {
		fmt.Printf("  layer %-28s allocs=%d frees=%d fails=%d\n",
			layer.Layer, layer.Stats.Allocs, layer.Stats.Frees, layer.Stats.AllocFails)
	}
}
