package telemetry

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/frontend"
	"repro/internal/geometry"
)

// Probe is the latency-recording layer: a transparent wrapper (the
// trace layer's shape) inserted at a layer boundary by stack.Build when
// telemetry is enabled. Its handles time a sampled fraction of their
// single-chunk operations and every batch operation into the boundary's
// Series; everything else forwards untouched. Name is forwarded
// unchanged — a probed stack is the same stack, observably.
type Probe struct {
	inner    alloc.Allocator
	sizer    alloc.ChunkSizer
	series   *Series
	interval uint32
}

// NewProbe wraps a layer boundary. interval <= 0 takes the registry
// default; callers normally go through stack.Build, which passes the
// registry's configured interval.
func NewProbe(inner alloc.Allocator, series *Series, interval int) (*Probe, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("telemetry: %s cannot report chunk sizes", inner.Name())
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Probe{inner: inner, sizer: sizer, series: series, interval: uint32(interval)}, nil
}

// Name implements alloc.Allocator (forwarded unchanged: the probe is
// invisible to naming, conformance labels and composite registries).
func (p *Probe) Name() string { return p.inner.Name() }

// Geometry implements alloc.Allocator.
func (p *Probe) Geometry() geometry.Geometry { return p.inner.Geometry() }

// OffsetSpan implements alloc.Spanner (pass-through).
func (p *Probe) OffsetSpan() uint64 { return alloc.SpanOf(p.inner) }

// Unwrap exposes the wrapped stack to generic stack walkers.
func (p *Probe) Unwrap() alloc.Allocator { return p.inner }

// Series returns the boundary's latency series.
func (p *Probe) Series() *Series { return p.series }

// Alloc implements alloc.Allocator (convenience path, unrecorded — the
// per-handle histograms are the hot-path discipline, and the
// convenience wrappers route through shared internal handles whose
// ownership the single-writer increment could not claim).
func (p *Probe) Alloc(size uint64) (uint64, bool) { return p.inner.Alloc(size) }

// Free implements alloc.Allocator (pass-through, unrecorded).
func (p *Probe) Free(offset uint64) { p.inner.Free(offset) }

// AllocBatch implements alloc.BatchAllocator (pass-through, unrecorded).
func (p *Probe) AllocBatch(size uint64, n int) []uint64 {
	return alloc.AllocBatchOf(p.inner, size, n)
}

// FreeBatch implements alloc.BatchAllocator (pass-through, unrecorded).
func (p *Probe) FreeBatch(offsets []uint64) { alloc.FreeBatchOf(p.inner, offsets) }

// ChunkSize implements alloc.ChunkSizer (pass-through).
func (p *Probe) ChunkSize(offset uint64) uint64 { return p.sizer.ChunkSize(offset) }

// Scrub implements alloc.Scrubber (pass-through).
func (p *Probe) Scrub() {
	if s, ok := p.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// Stats implements alloc.Allocator (pass-through).
func (p *Probe) Stats() alloc.Stats { return p.inner.Stats() }

// LayerStats implements alloc.LayerStatser: a telemetry_* percentile
// block for this boundary, then the wrapped stack's entries. Operations
// without samples contribute no keys (the elastic layer's conditional
// pattern), so the block stays dense.
func (p *Probe) LayerStats() []alloc.LayerStats {
	merged := p.series.Merged()
	extra := map[string]uint64{}
	var total uint64
	for op := Op(0); op < numOps; op++ {
		snap := &merged[op]
		n := snap.Total()
		total += n
		if n == 0 {
			continue
		}
		pct := snap.Percentiles()
		extra["telemetry_"+op.String()+"_samples"] = n
		extra["telemetry_"+op.String()+"_p50_ns"] = pct.P50
		extra["telemetry_"+op.String()+"_p99_ns"] = pct.P99
		extra["telemetry_"+op.String()+"_p999_ns"] = pct.P999
	}
	extra["telemetry_samples"] = total
	entry := alloc.LayerStats{
		Layer: "telemetry:" + p.series.layer,
		Extra: extra,
	}
	return append([]alloc.LayerStats{entry}, alloc.StackStats(p.inner)...)
}

// NewHandle implements alloc.Allocator: a sampling, recording handle
// over an inner handle.
func (p *Probe) NewHandle() alloc.Handle {
	return &probeHandle{
		inner:    p.inner.NewHandle(),
		series:   p.series,
		set:      p.series.newSet(),
		interval: p.interval,
		cdAlloc:  p.interval,
		cdFree:   p.interval,
	}
}

// probeHandle is the per-worker face of the probe. Like every handle it
// is single-goroutine; the countdowns and histograms are owner-written.
type probeHandle struct {
	inner    alloc.Handle
	series   *Series
	set      *histSet
	interval uint32
	cdAlloc  uint32
	cdFree   uint32
}

// Alloc forwards, timing one in every interval calls. Alloc and Free
// keep separate countdowns: a workload that strictly alternates the two
// ops would otherwise alias against a shared even-interval countdown and
// only ever sample one kind.
func (h *probeHandle) Alloc(size uint64) (uint64, bool) {
	h.cdAlloc--
	if h.cdAlloc != 0 {
		return h.inner.Alloc(size)
	}
	h.cdAlloc = h.interval
	t0 := nanotime()
	off, ok := h.inner.Alloc(size)
	h.set.h[OpAlloc].Record(nanotime() - t0)
	return off, ok
}

// Free forwards, timing one in every interval calls (own countdown; see
// Alloc for the aliasing rationale).
func (h *probeHandle) Free(offset uint64) {
	h.cdFree--
	if h.cdFree != 0 {
		h.inner.Free(offset)
		return
	}
	h.cdFree = h.interval
	t0 := nanotime()
	h.inner.Free(offset)
	h.set.h[OpFree].Record(nanotime() - t0)
}

// AllocBatch implements alloc.BatchHandle, always timed: batches are
// refill-path rare and the clock amortizes over the whole batch.
func (h *probeHandle) AllocBatch(size uint64, n int) []uint64 {
	t0 := nanotime()
	offs := alloc.HandleAllocBatch(h.inner, size, n)
	h.set.h[OpAllocBatch].Record(nanotime() - t0)
	return offs
}

// FreeBatch implements alloc.BatchHandle, always timed.
func (h *probeHandle) FreeBatch(offsets []uint64) {
	t0 := nanotime()
	alloc.HandleFreeBatch(h.inner, offsets)
	h.set.h[OpFreeBatch].Record(nanotime() - t0)
}

// Stats forwards to the wrapped handle.
func (h *probeHandle) Stats() *alloc.Stats { return h.inner.Stats() }

// Flush forwards the front-end caching face (no-op when the wrapped
// handle has none): a probed caching stack keeps its Flush contract.
func (h *probeHandle) Flush() {
	if f, ok := h.inner.(interface{ Flush() }); ok {
		f.Flush()
	}
}

// CacheStats forwards the front-end caching face's counters (zero when
// the wrapped handle is not a caching handle).
func (h *probeHandle) CacheStats() frontend.CacheStats {
	if c, ok := h.inner.(interface{ CacheStats() frontend.CacheStats }); ok {
		return c.CacheStats()
	}
	return frontend.CacheStats{}
}

// Close implements alloc.HandleCloser: fold this handle's buckets into
// the boundary's retained accumulator (the PR 7 stats discipline) and
// close the wrapped handle.
func (h *probeHandle) Close() {
	h.series.close(h.set)
	alloc.CloseHandle(h.inner)
}
