package arena

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

func TestMaterialized(t *testing.T) {
	a := New(4096, true)
	if !a.Materialized() || a.Total() != 4096 {
		t.Fatal("materialized arena misreports itself")
	}
	w1 := a.Bytes(0, 64)
	w2 := a.Bytes(64, 64)
	for i := range w1 {
		w1[i] = 0xAA
	}
	for _, b := range w2 {
		if b != 0 {
			t.Fatal("windows overlap")
		}
	}
	if len(w1) != 64 || cap(w1) != 64 {
		t.Fatalf("window len/cap = %d/%d, want 64/64", len(w1), cap(w1))
	}
	// Windows alias the region: rereading sees the writes.
	if a.Bytes(0, 64)[0] != 0xAA {
		t.Fatal("window does not alias the region")
	}
}

func TestNotMaterialized(t *testing.T) {
	a := New(4096, false)
	if a.Materialized() {
		t.Fatal("offset-only arena claims to be materialized")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bytes on a non-materialized arena did not panic")
		}
	}()
	a.Bytes(0, 1)
}

func TestOutOfBounds(t *testing.T) {
	a := New(4096, true)
	for _, c := range [][2]uint64{{4096, 1}, {4090, 16}, {^uint64(0), 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes(%d,%d) did not panic", c[0], c[1])
				}
			}()
			a.Bytes(c[0], c[1])
		}()
	}
	// The full window is fine.
	if len(a.Bytes(0, 4096)) != 4096 {
		t.Error("full-region window failed")
	}
}

// fakeMulti is a minimal multi-like stack: 2 "instances" of half the
// span each, enough to exercise segmented materialization without
// importing a leaf allocator package.
type fakeMulti struct {
	geo   geometry.Geometry
	sizes map[uint64]uint64
}

func (f *fakeMulti) Name() string                { return "fake-multi" }
func (f *fakeMulti) Geometry() geometry.Geometry { return f.geo }
func (f *fakeMulti) Alloc(uint64) (uint64, bool) { return 0, false }
func (f *fakeMulti) Free(uint64)                 {}
func (f *fakeMulti) NewHandle() alloc.Handle     { return nil }
func (f *fakeMulti) Stats() alloc.Stats          { return alloc.Stats{} }
func (f *fakeMulti) Instances() int              { return 2 }
func (f *fakeMulti) OffsetSpan() uint64          { return 2 * f.geo.Total }
func (f *fakeMulti) ChunkSize(off uint64) uint64 { return f.sizes[off] }

func TestMaterializeSegmentsPerInstance(t *testing.T) {
	geo := geometry.MustNew(4096, 64, 1024)
	inner := &fakeMulti{geo: geo, sizes: map[uint64]uint64{0: 64, 4096 + 128: 256}}
	m, err := Materialize(inner)
	if err != nil {
		t.Fatal(err)
	}
	if m.OffsetSpan() != 8192 || m.Region().Windows() != 2 {
		t.Fatalf("span/segments = %d/%d, want 8192/2", m.OffsetSpan(), m.Region().Windows())
	}
	// Windows in both instances' offset ranges materialize and are
	// disjoint backing memory.
	w0 := m.Bytes(0)
	w1 := m.Bytes(4096 + 128)
	if len(w0) != 64 || len(w1) != 256 {
		t.Fatalf("window sizes = %d/%d, want 64/256", len(w0), len(w1))
	}
	w0[0], w1[0] = 0x11, 0x22
	if m.Bytes(0)[0] != 0x11 || m.Bytes(4096 + 128)[0] != 0x22 {
		t.Fatal("windows do not alias their sub-arenas")
	}
	// Offsets beyond the span panic.
	defer func() {
		if recover() == nil {
			t.Error("Bytes outside the span did not panic")
		}
	}()
	inner.sizes[8192] = 64
	m.Bytes(8192)
}

func TestMaterializeRequiresChunkSizer(t *testing.T) {
	bare := struct{ alloc.Allocator }{&fakeMulti{geo: geometry.MustNew(4096, 64, 1024)}}
	if _, err := Materialize(bare); err == nil {
		t.Error("allocator without ChunkSize accepted")
	}
}
