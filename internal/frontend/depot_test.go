package frontend_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/alloc"
	"repro/internal/frontend"
	"repro/internal/multi"
)

// depotFrontend builds the depot-backed front-end over a 4-instance
// router of the given leaf — the full production composition.
func depotFrontend(t *testing.T, variant string, magCap, depotCap int) (*frontend.Allocator, *multi.Multi) {
	t.Helper()
	m, err := multi.New(variant, 4, alloc.Config{Total: 1 << 20, MinSize: 64, MaxSize: 1 << 14}, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := frontend.New(m, magCap, frontend.WithDepot(depotCap))
	if err != nil {
		t.Fatal(err)
	}
	return fe, m
}

// TestDepotExchange checks the O(1) magazine hand-off: a handle that
// overflows parks full magazines in the depot, and a second handle that
// runs dry picks them up without touching the back-end.
func TestDepotExchange(t *testing.T) {
	fe, _ := depotFrontend(t, "4lvl-nb", 8, 4)
	producer := fe.NewHandle().(*frontend.Handle)
	consumer := fe.NewHandle().(*frontend.Handle)

	// The producer allocates and frees enough chunks of one class to
	// overflow its magazine repeatedly.
	var offs []uint64
	for i := 0; i < 64; i++ {
		off, ok := producer.Alloc(128)
		if !ok {
			t.Fatal("producer alloc failed")
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		producer.Free(off)
	}
	ds := fe.Depot().Stats()
	if ds.FullPushes == 0 {
		t.Fatalf("no full magazines reached the depot: %+v", ds)
	}
	if fe.Depot().Retained() == 0 {
		t.Fatal("depot retained no chunks after producer overflow")
	}

	// The consumer, whose magazine is empty, must be served by a depot
	// exchange, not by the back-end.
	beforeMiss := consumer.CacheStats().Misses
	if _, ok := consumer.Alloc(128); !ok {
		t.Fatal("consumer alloc failed")
	}
	if got := consumer.CacheStats().Misses; got != beforeMiss {
		t.Fatalf("consumer went to the back-end (%d misses) despite a stocked depot", got)
	}
	if ds := fe.Depot().Stats(); ds.FullPops != 1 {
		t.Fatalf("depot full pops = %d, want 1", ds.FullPops)
	}
	fe.Scrub()
	if fe.Depot().Retained() != 0 {
		t.Fatalf("depot retained %d chunks after Scrub", fe.Depot().Retained())
	}
}

// TestDepotBatchRefillAndDrain checks both back-end crossings: a depot
// miss refills the magazine in one batch, and overflowing past the depot
// capacity drains whole magazines back down.
func TestDepotBatchRefillAndDrain(t *testing.T) {
	fe, _ := depotFrontend(t, "4lvl-nb", 4, 1)
	h := fe.NewHandle().(*frontend.Handle)

	// Cold start: the first allocation must batch-refill (depot empty).
	first, ok := h.Alloc(128)
	if !ok {
		t.Fatal("alloc failed")
	}
	ds := fe.Depot().Stats()
	if ds.Refills != 1 || ds.RefilledChunks == 0 {
		t.Fatalf("cold alloc did not batch-refill: %+v", ds)
	}
	if h.Cached() != int(ds.RefilledChunks)-1 {
		t.Fatalf("magazine holds %d chunks, want refilled-1 = %d", h.Cached(), ds.RefilledChunks-1)
	}

	// Overflow far past the 1-magazine depot capacity: drains must kick in.
	var offs []uint64
	for i := 0; i < 40; i++ {
		off, ok := h.Alloc(128)
		if !ok {
			t.Fatal("alloc failed")
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		h.Free(off)
	}
	h.Free(first)
	ds = fe.Depot().Stats()
	if ds.Drains == 0 || ds.DrainedChunks == 0 {
		t.Fatalf("no drains despite overflowing a capacity-1 depot: %+v", ds)
	}
	fe.Scrub()
	if s := fe.Backend().Stats(); s.Allocs != s.Frees {
		t.Fatalf("back-end unbalanced after Scrub: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

// TestDepotConcurrentSpillRefill is the race net for the depot layer:
// many handles run a remote-free pattern (each worker frees chunks its
// neighbour allocated), driving constant magazine overflow on the
// freeing side and constant exhaustion on the allocating side, so the
// depot's O(1) exchanges happen from every worker concurrently. Between
// rounds, all workers quiesce and Scrub runs, extending the PR-1
// stats-reconciliation invariant to the depot layer: after a quiesce the
// depot retains nothing and the back-end balances.
func TestDepotConcurrentSpillRefill(t *testing.T) {
	fe, m := depotFrontend(t, "4lvl-nb", 8, 6)
	const workers = 8
	rounds := 6
	iters := 3000
	if testing.Short() {
		rounds, iters = 2, 800
	}

	// Per-unit claim map on the test side: the depot must never let one
	// chunk be live in two places.
	span := alloc.SpanOf(fe)
	claims := make([]atomic.Int32, span/64)
	var overlaps atomic.Int64
	claim := func(off, reserved uint64, delta int32) {
		for u := off / 64; u < (off+reserved)/64; u++ {
			if v := claims[u].Add(delta); v != 0 && v != 1 {
				overlaps.Add(1)
			}
		}
	}

	handles := make([]*frontend.Handle, workers)
	for i := range handles {
		handles[i] = fe.NewHandle().(*frontend.Handle)
	}
	geo := fe.Geometry()

	for round := 0; round < rounds; round++ {
		// One hand-off ring per round: worker w frees what w-1 allocated.
		rings := make([]chan uint64, workers)
		for i := range rings {
			rings[i] = make(chan uint64, 256)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := handles[w]
				rng := rand.New(rand.NewSource(int64(round*workers + w)))
				out, in := rings[w], rings[(w+workers-1)%workers]
				// Ring values are offset+1 so the zero value of a closed
				// channel is never mistaken for a real offset 0.
				for i := 0; i < iters; i++ {
					size := uint64(64) << (rng.Intn(3) * 2) // 64, 256, 1024
					if off, ok := h.Alloc(size); ok {
						claim(off, geo.SizeOfLevel(geo.LevelForSize(size)), 1)
						select {
						case out <- off + 1:
						default:
							claim(off, geo.SizeOfLevel(geo.LevelForSize(size)), -1)
							h.Free(off)
						}
					}
					select {
					case v, ok := <-in:
						if ok {
							claim(v-1, fe.ChunkSize(v-1), -1)
							h.Free(v - 1)
						}
					default:
					}
				}
				// Drain the inbound ring so the round quiesces empty.
				close(out)
				for v := range in {
					claim(v-1, fe.ChunkSize(v-1), -1)
					h.Free(v - 1)
				}
			}()
		}
		wg.Wait()

		// Quiescent point: scrub, then reconcile depot and back-end.
		fe.Scrub()
		if got := fe.Depot().Retained(); got != 0 {
			t.Fatalf("round %d: depot retained %d chunks after Scrub", round, got)
		}
		if s := m.Stats(); s.Allocs != s.Frees {
			t.Fatalf("round %d: back-end unbalanced after Scrub: %d allocs vs %d frees",
				round, s.Allocs, s.Frees)
		}
		if n := overlaps.Load(); n != 0 {
			t.Fatalf("round %d: %d overlapping-claim events (double hand-out through the depot)", round, n)
		}
		for u := range claims {
			if v := claims[u].Load(); v != 0 {
				t.Fatalf("round %d: unit %d left with claim count %d", round, u, v)
			}
		}
	}

	// The depot must actually have been exercised, or the race net is
	// vacuous.
	ds := fe.Depot().Stats()
	if ds.FullPushes == 0 || ds.FullPops == 0 {
		t.Fatalf("depot never exchanged a magazine under load: %+v", ds)
	}
}

// TestDrainDepotRange is the elastic shrink hook in isolation: only
// magazines holding at least one chunk of the requested offset window are
// evicted (whole, since magazines mix instances), their chunks go back to
// the back-end, and magazines entirely outside the window stay parked.
func TestDrainDepotRange(t *testing.T) {
	fe, m := depotFrontend(t, "4lvl-nb", 4, 16)
	span := m.InstanceSpan()

	// Park magazines from two pinned producers so the depot holds full
	// magazines attributable to instance 0 and instance 1 respectively.
	// Frontend handles route through round-robin router handles, so pin at
	// the router: chunks allocated on instance k live in window k.
	for k := 0; k < 2; k++ {
		rh := m.NewHandleOn(k)
		var offs []uint64
		for i := 0; i < 12; i++ {
			off, ok := rh.Alloc(128)
			if !ok {
				t.Fatalf("alloc on instance %d failed", k)
			}
			offs = append(offs, off)
		}
		// Frees enter the front-end path, overflow the 4-cap magazine and
		// park in the depot.
		fh := fe.NewHandle().(*frontend.Handle)
		for _, off := range offs {
			fh.Free(off)
		}
		fh.Flush()
	}
	if fe.Depot().Retained() == 0 {
		t.Fatal("setup parked nothing in the depot")
	}

	// Drain instance 0's window. Every instance-0 chunk must leave the
	// depot; instance-1 magazines stay parked unless a magazine mixed both.
	beforeFrees := m.Stats().Frees
	fe.DrainDepotRange(0, span)
	if got := m.Stats().Frees; got == beforeFrees {
		t.Fatal("drained magazines were not freed to the back-end")
	}
	if fe.Depot().Retained() == 0 {
		t.Fatal("instance-1 magazines should have survived the instance-0 drain")
	}
	for _, off := range depotOffsets(fe) {
		if off < span {
			t.Fatalf("offset %#x of the drained window still parked in the depot", off)
		}
	}
	// A full scrub still reconciles the back-end.
	fe.Scrub()
	if s := m.Stats(); s.Allocs != s.Frees {
		t.Fatalf("back-end unbalanced after Scrub: %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

// depotOffsets snapshots every chunk offset parked in the depot. The
// snapshot is destructive (DrainAll), so the chunks are handed straight
// back to the back-end — callers assert on the returned offsets and treat
// the depot as empty afterwards.
func depotOffsets(fe *frontend.Allocator) []uint64 {
	var out []uint64
	for _, mag := range fe.Depot().DrainAll() {
		out = append(out, mag...)
		alloc.FreeBatchOf(fe.Backend(), mag)
	}
	return out
}
