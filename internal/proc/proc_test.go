package proc

import (
	"runtime"
	"sync"
	"testing"
)

func TestHintInRange(t *testing.T) {
	if !Dynamic {
		t.Skip("static fallback: hints are hashes, not P ids")
	}
	max := runtime.GOMAXPROCS(0)
	for i := 0; i < 1000; i++ {
		if p := Hint(); p < 0 || p >= max {
			t.Fatalf("Hint() = %d outside [0, %d)", p, max)
		}
	}
}

func TestHintConcurrent(t *testing.T) {
	// No assertion beyond in-range and no race/panic: the hint is
	// advisory, so all the contract guarantees under concurrency is that
	// calling it from many goroutines is safe.
	max := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p := Hint()
				if Dynamic && (p < 0 || p >= max) {
					panic("hint out of range")
				}
			}
		}()
	}
	wg.Wait()
}
