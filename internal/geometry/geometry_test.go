package geometry

import (
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	cases := []struct {
		total, min, max uint64
		ok              bool
	}{
		{1024, 8, 1024, true},
		{1024, 8, 256, true},
		{64, 64, 64, true},
		{1000, 8, 256, false},  // total not a power of two
		{1024, 10, 256, false}, // min not a power of two
		{1024, 8, 300, false},  // max not a power of two
		{1024, 8, 2048, false}, // max > total
		{1024, 2048, 1024, false},
		{1024, 256, 8, false}, // max < min
		{0, 8, 8, false},
		{1024, 0, 8, false},
	}
	for _, c := range cases {
		_, err := New(c.total, c.min, c.max)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d) err=%v, want ok=%v", c.total, c.min, c.max, err, c.ok)
		}
	}
}

func TestDerivedShape(t *testing.T) {
	g := MustNew(1024, 8, 256)
	if g.Depth != 7 {
		t.Errorf("Depth = %d, want 7", g.Depth)
	}
	if g.MaxLevel != 2 {
		t.Errorf("MaxLevel = %d, want 2", g.MaxLevel)
	}
	if g.Nodes() != 256 || g.Leaves() != 128 {
		t.Errorf("Nodes=%d Leaves=%d, want 256/128", g.Nodes(), g.Leaves())
	}
}

func TestPaperEquations(t *testing.T) {
	// Equations (1)-(3) against the Figure 2 example tree (levels 0..3).
	g := MustNew(128, 16, 128)
	if g.Depth != 3 {
		t.Fatalf("depth = %d", g.Depth)
	}
	for n := uint64(1); n < 16; n++ {
		wantLevel := 0
		for m := n; m > 1; m >>= 1 {
			wantLevel++
		}
		if LevelOf(n) != wantLevel {
			t.Errorf("LevelOf(%d) = %d, want %d", n, LevelOf(n), wantLevel)
		}
		if got, want := g.SizeOf(n), uint64(128)>>wantLevel; got != want {
			t.Errorf("SizeOf(%d) = %d, want %d", n, got, want)
		}
		if got, want := g.OffsetOf(n), (n-1<<wantLevel)*(128>>wantLevel); got != want {
			t.Errorf("OffsetOf(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestLevelForSize(t *testing.T) {
	g := MustNew(1024, 8, 512)
	cases := []struct {
		size uint64
		want int
	}{
		{0, 7}, {1, 7}, {8, 7}, {9, 6}, {16, 6}, {17, 5},
		{512, 1}, {300, 1}, {256, 2},
	}
	for _, c := range cases {
		if got := g.LevelForSize(c.size); got != c.want {
			t.Errorf("LevelForSize(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestNavigation(t *testing.T) {
	if Parent(7) != 3 || Left(3) != 6 || Right(3) != 7 || Sibling(6) != 7 || Sibling(7) != 6 {
		t.Error("tree navigation broken")
	}
	if !IsLeftChild(6) || IsLeftChild(7) {
		t.Error("IsLeftChild parity wrong")
	}
	if AncestorAt(100, 6, 3) != 12 {
		t.Errorf("AncestorAt(100,6,3) = %d, want 12", AncestorAt(100, 6, 3))
	}
}

// Property: OffsetOf and NodeAt are inverse within a level, and a node's
// chunk nests exactly inside its parent's.
func TestQuickOffsetInverseAndNesting(t *testing.T) {
	g := MustNew(1<<20, 16, 1<<20)
	f := func(raw uint64) bool {
		n := raw%(g.Nodes()-1) + 1
		level := LevelOf(n)
		off := g.OffsetOf(n)
		if g.NodeAt(level, off) != n {
			return false
		}
		if n == 1 {
			return true
		}
		p := Parent(n)
		pOff, pSize := g.OffsetOf(p), g.SizeOf(p)
		return off >= pOff && off+g.SizeOf(n) <= pOff+pSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: siblings tile their parent exactly (AX1-AX3: contiguity,
// alignment, size).
func TestQuickBuddyTiling(t *testing.T) {
	g := MustNew(1<<16, 8, 1<<16)
	f := func(raw uint64) bool {
		n := raw%(g.Nodes()/2-1) + 1 // any non-leaf node
		l, r := Left(n), Right(n)
		return g.OffsetOf(l) == g.OffsetOf(n) &&
			g.OffsetOf(r) == g.OffsetOf(n)+g.SizeOf(l) &&
			g.SizeOf(l)+g.SizeOf(r) == g.SizeOf(n) &&
			g.OffsetOf(l)%g.SizeOf(l) == 0 &&
			g.OffsetOf(r)%g.SizeOf(r) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LevelForSize always yields a servable level whose chunk fits
// the request.
func TestQuickLevelForSizeFits(t *testing.T) {
	g := MustNew(1<<20, 8, 1<<14)
	f := func(raw uint64) bool {
		size := raw % g.MaxSize
		level := g.LevelForSize(size)
		if level < g.MaxLevel || level > g.Depth {
			return false
		}
		return g.SizeOfLevel(level) >= size || size < g.MinSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestWordLevelAlignment pins the guarantee the SWAR level scan relies
// on: no level straddles a packed status word mid-level. Levels of width
// >= 8 start on a word boundary and fill whole words; narrower levels
// fit entirely inside word 0.
func TestWordLevelAlignment(t *testing.T) {
	for level := 0; level <= 24; level++ {
		base, width := FirstOfLevel(level), LevelWidth(level)
		if width >= StatusLanes {
			if base%StatusLanes != 0 || width%StatusLanes != 0 {
				t.Fatalf("level %d: base %d width %d not word-aligned", level, base, width)
			}
			continue
		}
		if WordIndex(base) != 0 || WordIndex(base+width-1) != 0 {
			t.Fatalf("level %d (nodes %d..%d) leaks outside word 0", level, base, base+width-1)
		}
	}
}

func TestStatusWords(t *testing.T) {
	cases := []struct {
		total, min uint64
		want       uint64
	}{
		{64, 64, 1},       // depth 0: 2 node slots, 1 word
		{1 << 5, 8, 1},    // depth 2: 8 slots, 1 word
		{1 << 6, 8, 2},    // depth 3: 16 slots, 2 words
		{1 << 12, 8, 128}, // depth 9: 1024 slots, 128 words
	}
	for _, c := range cases {
		g := MustNew(c.total, c.min, c.total)
		if got := g.StatusWords(); got != c.want {
			t.Errorf("StatusWords(total=%d,min=%d) = %d, want %d", c.total, c.min, got, c.want)
		}
	}
	for n := uint64(0); n < 64; n++ {
		if WordIndex(n) != n/8 || LaneOf(n) != int(n%8) {
			t.Fatalf("node %d: word/lane = %d/%d", n, WordIndex(n), LaneOf(n))
		}
	}
}
