package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/proc"
)

// Event is one flight-recorder entry. Step is a logical timestamp — a
// global atomic counter, not a clock — so a replayed chaos run
// publishes the identical sequence and two same-seed runs compare equal
// (replay safety; see DESIGN.md "Observability"). A and B are
// event-specific operands (a slot index, a chunk count, a fault site's
// call ordinal — whatever the source finds useful).
type Event struct {
	Step   uint64 `json:"step"`
	Source string `json:"source"`
	Event  string `json:"event"`
	A      uint64 `json:"a,omitempty"`
	B      uint64 `json:"b,omitempty"`
}

// Ring is the flight recorder: fixed-size, overwrite-oldest, sharded by
// processor hint so concurrent publishers rarely contend on one mutex.
// Events are rare by construction (lifecycle transitions, faults,
// refill/spill/drain crossings — never per-op), so a mutexed shard
// write is cheap; the global step counter is the only cross-shard
// synchronization on the publish path.
type Ring struct {
	step   atomic.Uint64
	shards []ringShard
}

type ringShard struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

func newRing(size, shards int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	if shards <= 0 {
		shards = proc.MaxHint()
	}
	r := &Ring{shards: make([]ringShard, shards)}
	for i := range r.shards {
		r.shards[i].buf = make([]Event, size)
	}
	return r
}

// Publish appends an event, overwriting the shard's oldest entry when
// the shard is full.
func (r *Ring) Publish(source, event string, a, b uint64) {
	if r == nil {
		return
	}
	step := r.step.Add(1)
	s := &r.shards[proc.Hint()%len(r.shards)]
	s.mu.Lock()
	s.buf[s.next] = Event{Step: step, Source: source, Event: event, A: a, B: b}
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Published returns the total number of events ever published,
// including those the ring has since overwritten.
func (r *Ring) Published() uint64 {
	if r == nil {
		return 0
	}
	return r.step.Load()
}

// Events returns the retained events in logical-step order. Each shard
// is read under its mutex, so the dump happens-after every publish it
// includes.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.buf[s.next:]...)
			out = append(out, s.buf[:s.next]...)
		} else {
			out = append(out, s.buf[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// DumpJSON writes the retained events as a JSON array.
func (r *Ring) DumpJSON(w io.Writer) error {
	events := r.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
