// Package bunch implements the paper's 4-levels optimization (§III.D,
// evaluation label "4lvl-nb"): the non-blocking buddy system with four
// tree levels packed per 64-bit word, cutting the atomic RMW instructions
// on a climb by a factor of four.
//
// Only the deepest level of each 4-level group — the bunch leaves — is
// materialized: 8 leaves × one status byte fill one word exactly (the
// paper packs 5-bit fields into 40 bits; we spend the spare 3 bits per
// leaf to put every field on a byte boundary, which buys the SWAR level
// scan below). The state of the 7 interior nodes of a bunch is derived
// from its leaves: partial occupancy is the OR of the children's
// occupancy, full occupancy the AND, and coalescing the OR of the
// children's coalescing bits (paper Figure 6). Bunch-leaf levels are
// aligned to the bottom of the tree, so tree leaves are always
// materialized and the topmost bunch may be partial.
//
// The algorithms are the same three-phase NBAlloc/NBFree of internal/core
// with two systematic changes:
//
//   - a direct occupy or release of a node touches all the bunch-leaf
//     fields covering it in one CAS (they fit a single word by layout);
//   - climbs step from one materialized level to the next (4 levels per
//     RMW), and the per-level buddy checks the 1-level algorithm performs
//     in between are answered by deriving the intermediate state from the
//     already-witnessed word, costing no extra atomic instruction.
//
// The level scan is a SWAR pass: one atomic load of a bunch word answers
// all the nodes the word covers at the scanned level (eight at the
// materialized levels, fewer above them), with status.FirstFreeRun
// locating the first free candidate by bit tricks.
package bunch

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/status"
)

func init() {
	alloc.Register("4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		return NewFromConfig(cfg)
	})
}

// Allocator is a single 4-level non-blocking buddy-system instance.
type Allocator struct {
	geo geometry.Geometry
	// words holds the bunch words of all materialized levels, deepest
	// level first; wordBase[level] is the offset of a materialized
	// level's words within the slice.
	words    []atomic.Uint64
	wordBase [64]uint64
	// index maps allocation-unit slots to the serving node, as in core.
	index   []atomic.Uint32
	scatter bool

	mu      sync.Mutex
	handles []*Handle
	closed  alloc.Stats // retained counters of closed handles
	nextID  uint64
	pool    sync.Pool
}

// Option tweaks allocator construction.
type Option func(*Allocator)

// WithoutScatter disables the scattered scan start (ablation A2).
func WithoutScatter() Option { return func(a *Allocator) { a.scatter = false } }

// New builds an instance managing total bytes with the given allocation
// unit and maximum request size (all powers of two).
func New(total, minSize, maxSize uint64, opts ...Option) (*Allocator, error) {
	geo, err := geometry.New(total, minSize, maxSize)
	if err != nil {
		return nil, err
	}
	return NewWithGeometry(geo, opts...), nil
}

// NewFromConfig adapts New to the registry factory signature.
func NewFromConfig(cfg alloc.Config) (*Allocator, error) {
	return New(cfg.Total, cfg.MinSize, cfg.MaxSize)
}

// NewWithGeometry builds an instance from an already-validated geometry.
func NewWithGeometry(geo geometry.Geometry, opts ...Option) *Allocator {
	if geo.Depth > 31 {
		panic(fmt.Sprintf("bunch: depth %d exceeds the uint32 node-index range", geo.Depth))
	}
	a := &Allocator{
		geo:     geo,
		index:   make([]atomic.Uint32, geo.Leaves()),
		scatter: true,
	}
	var total uint64
	for _, lvl := range geo.LeafLevels() {
		a.wordBase[lvl] = total
		total += geometry.WordsAtLevel(lvl)
	}
	a.words = make([]atomic.Uint64, total)
	for _, o := range opts {
		o(a)
	}
	a.pool.New = func() any { return a.NewHandle() }
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "4lvl-nb" }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// wordOf returns the bunch word holding leaf (which must be at the
// materialized level leafLevel) and the field position of leaf within it.
func (a *Allocator) wordOf(leaf uint64, leafLevel int) (*atomic.Uint64, int) {
	w, f := geometry.WordOf(leaf, leafLevel)
	return &a.words[a.wordBase[leafLevel]+w], f
}

// nodeWord locates the word and covered field range of an arbitrary node.
func (a *Allocator) nodeWord(n uint64) (word *atomic.Uint64, field, count int, leafLevel int) {
	first, cnt := a.geo.CoveredLeaves(n)
	leafLevel = a.geo.LeafLevelFor(geometry.LevelOf(n))
	w, f := a.wordOf(first, leafLevel)
	return w, f, cnt, leafLevel
}

// Alloc serves a one-off request through a pooled handle.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	h := a.pool.Get().(*Handle)
	off, ok := h.Alloc(size)
	a.pool.Put(h)
	return off, ok
}

// Free releases a chunk through a pooled handle.
func (a *Allocator) Free(offset uint64) {
	h := a.pool.Get().(*Handle)
	h.Free(offset)
	a.pool.Put(h)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle { return a.newHandle() }

func (a *Allocator) newHandle() *Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a, id: a.nextID}
	a.nextID++
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.closed
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator (not safe for concurrent
// use).
type Handle struct {
	a      *Allocator
	id     uint64
	seq    uint64
	stats  alloc.Stats
	closed bool
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: fold this handle's counters into
// the allocator's retained totals and unregister it, so handle-churning
// callers do not grow the registry without bound. The handle must not be
// used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.mu.Unlock()
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// scatterSlot spreads handles across the level by golden-ratio hashing
// and rotates each handle's start between allocations (see the identical
// method in internal/core).
func (h *Handle) scatterSlot(level int) uint64 {
	if !h.a.scatter || level == 0 {
		return 0
	}
	base := (h.id * 0x9E3779B97F4A7C15) >> uint(64-level)
	return (base + h.seq) & (geometry.LevelWidth(level) - 1)
}

// Alloc is NBALLOC over the bunch layout: identical scan and subtree-skip
// logic to the 1-level variant; only the per-node state probe and the
// reservation differ.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return 0, false
	}
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1
	h.seq++
	start := base + h.scatterSlot(level)

	for pass := 0; pass < 2; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		for i := lo; i < hi; {
			// Probe a whole bunch word at once with the busy mask only, as
			// the 1-level IsFree does: transient coalescing bits do not
			// disqualify a node (the reservation CAS inside tryAlloc still
			// requires them clear). FirstFreeRun yields the first candidate
			// among the 8/count nodes the word covers at this level.
			word, field, count, _ := h.a.nodeWord(i)
			w := word.Load()
			f := status.FirstFreeRun(w, field, count)
			if f == status.LanesPerWord {
				i += uint64((status.LanesPerWord - field) / count) // next word's first node
				continue
			}
			cand := i + uint64((f-field)/count)
			if cand >= hi {
				i = hi
				continue
			}
			failedAt := h.tryAlloc(cand, w)
			if failedAt == 0 {
				offset := geo.OffsetOf(cand)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(cand))
				h.stats.Allocs++
				return offset, true
			}
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= cand {
				next = cand + 1
			}
			i = next
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// tryAlloc reserves node n and propagates partial occupancy to the max
// level in 4-level steps. It returns 0 on success or the index of the
// conflicting node, after rolling back its own updates. scanned is the
// caller's already-loaded value of n's word, seeding the first
// reservation attempt so the hot path issues no redundant atomic load.
func (h *Handle) tryAlloc(n, scanned uint64) uint64 {
	geo := h.a.geo
	nLevel := geometry.LevelOf(n)
	word, field, count, leafLevel := h.a.nodeWord(n)

	// Reserve n: all covered leaf fields must be exactly clear (as in the
	// 1-level CAS from 0 to BUSY: pending coalescing bits also fail the
	// reservation); a CAS lost purely to traffic on sibling fields of the
	// word is retried, since the covered fields are re-validated.
	occupyMask := status.Fill(field, count, status.Busy)
	for w := scanned; ; w = word.Load() {
		if w&status.Fill(field, count, status.Mask) != 0 {
			return n
		}
		h.stats.RMW++
		if word.CompareAndSwap(w, w|occupyMask) {
			break
		}
		h.stats.CASFail++
	}

	// Climb. Interior bunch ancestors of n derive their state from the
	// fields just set; explicit updates happen at each materialized level
	// above n's bunch, down to the one that covers MaxLevel.
	lamStop := geo.LeafLevelFor(geo.MaxLevel)
	for lam := leafLevel - geometry.BunchSpan; lam >= lamStop; lam -= geometry.BunchSpan {
		anc := geometry.AncestorAt(n, nLevel, lam)
		child := geometry.AncestorAt(n, nLevel, lam+1)
		ancWord, ancField := h.a.wordOf(anc, lam)
		for {
			w := ancWord.Load()
			f := status.Field(w, ancField)
			if status.IsOcc(f) {
				// A fully reserved ancestor: roll back the climb (which
				// has updated materialized levels (lam, leafLevel-4]) and
				// n's own reservation, then report the conflict.
				h.freeNode(n, lam+geometry.BunchSpan)
				return anc
			}
			nf := status.Mark(status.CleanCoal(f, child), child)
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, status.WithField(w, ancField, nf)) {
				break
			}
			h.stats.CASFail++
		}
	}
	return 0
}

// Free is NBFREE: recover the serving node from index[] and release it all
// the way up to the level covering MaxLevel.
func (h *Handle) Free(offset uint64) {
	geo := h.a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("bunch: Free(%#x): offset outside the managed region or unaligned", offset))
	}
	n := h.a.index[geo.UnitIndex(offset)].Swap(0)
	if n == 0 {
		panic(fmt.Sprintf("bunch: Free(%#x): offset not currently allocated (double free?)", offset))
	}
	h.freeNode(uint64(n), geo.LeafLevelFor(geo.MaxLevel))
	h.stats.Frees++
}

// freeNode releases node n, propagating through materialized levels down
// to ubLam (the bunch-leaf level the release must reach). For a real free
// ubLam covers MaxLevel; for a TryAlloc rollback it is the level just
// below the conflict point.
func (h *Handle) freeNode(n uint64, ubLam int) {
	nLevel := geometry.LevelOf(n)
	word, field, count, leafLevel := h.a.nodeWord(n)

	// Phase 1: mark the climb path as coalescing. The 1-level algorithm
	// checks at every step whether the buddy branch is occupied (and not
	// itself coalescing) to arrest the climb; here the buddies at the
	// levels interior to the bunch just left are derived from the
	// witnessed word, and the buddy at the explicit step is read from the
	// ancestor's own field.
	lowWord, lowField, lowCount := word.Load(), field, count
	for lam := leafLevel - geometry.BunchSpan; lam >= ubLam; lam -= geometry.BunchSpan {
		if derivedArrest(lowWord, lowField, lowCount) {
			break
		}
		anc := geometry.AncestorAt(n, nLevel, lam)
		child := geometry.AncestorAt(n, nLevel, lam+1)
		ancWord, ancField := h.a.wordOf(anc, lam)
		// Setting one coalescing bit would be a natural atomic Or — but
		// the value-returning atomic.Uint64.Or/And intrinsics miscompile
		// this climb shape on go1.24.0/amd64 (a register holding a live
		// pointer gets clobbered; reproduced standalone), so the mark
		// stays a CAS loop. Skipping the RMW when the bit is already set
		// is safe: the loaded word is then exactly the witness an Or would
		// have returned.
		coal := status.ShiftToLane(status.CoalBit(child), ancField)
		var witnessed uint64
		for {
			w := ancWord.Load()
			witnessed = w
			if w&coal != 0 {
				break
			}
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, w|coal) {
				break
			}
			h.stats.CASFail++
		}
		wf := status.Field(witnessed, ancField)
		if status.IsOccBuddy(wf, child) && !status.IsCoalBuddy(wf, child) {
			break
		}
		// The next iteration's derived checks look at the word we just
		// left the mark in, from the ancestor's field upward.
		lowWord, lowField, lowCount = witnessed, ancField, 1
	}

	// Phase 2: release n itself by clearing all its covered fields. A CAS
	// loop (rather than the 1-level plain store) tolerates concurrent
	// traffic on sibling fields of the word. (An atomic And would do it
	// in one guaranteed RMW, but see the intrinsic caveat in phase 1.)
	clearMask := status.FieldMask(field, count)
	var afterRelease uint64
	for {
		w := word.Load()
		afterRelease = w &^ clearMask
		h.stats.RMW++
		if word.CompareAndSwap(w, afterRelease) {
			break
		}
		h.stats.CASFail++
	}

	// Phase 3: propagate the release (UNMARK). Climbing one materialized
	// step asserts that the whole subtree under the ancestor's child
	// branch is free, which is exactly "the word just updated holds no
	// busy field": that one test answers every per-level buddy check the
	// 1-level algorithm would perform in between. The coalescing bit in
	// the ancestor's field protects the step against racing allocations,
	// which clear it when they reuse the branch.
	if nLevel <= ubLam { // n is at (or above) the destination level: no climb happened
		return
	}
	lowAfter := afterRelease
	for lam := leafLevel - geometry.BunchSpan; lam >= ubLam; lam -= geometry.BunchSpan {
		if anyBusyWord(lowAfter) {
			return
		}
		anc := geometry.AncestorAt(n, nLevel, lam)
		child := geometry.AncestorAt(n, nLevel, lam+1)
		ancWord, ancField := h.a.wordOf(anc, lam)
		var updated uint64
		for {
			w := ancWord.Load()
			f := status.Field(w, ancField)
			if !status.IsCoal(f, child) {
				return
			}
			nf := status.Unmark(f, child)
			updated = status.WithField(w, ancField, nf)
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, updated) {
				break
			}
			h.stats.CASFail++
		}
		lowAfter = updated
	}
}

// derivedArrest walks the within-word buddy tree from the fields [j,j+count)
// towards the word root and reports whether some derived buddy is occupied
// while not coalescing — the condition that arrests a release climb in the
// 1-level algorithm, answered here without touching memory.
func derivedArrest(w uint64, j, count int) bool {
	for count < 8 {
		buddy := j ^ count
		busy := w&status.Fill(buddy, count, status.Busy) != 0
		coal := w&status.Fill(buddy, count, status.CoalLeft|status.CoalRight) != 0
		if busy && !coal {
			return true
		}
		count <<= 1
		j &^= count - 1
	}
	return false
}

// anyBusyWord reports whether any field of a bunch word has a busy bit.
func anyBusyWord(w uint64) bool { return w&status.Fill(0, 8, status.Busy) != 0 }
