package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
)

// snapshotForExport is the JSON/expvar shape of a registry dump.
type snapshotForExport struct {
	Latencies []LayerLatency `json:"latencies"`
	Events    []Event        `json:"events"`
	Published uint64         `json:"events_published"`
}

func (r *Registry) export() snapshotForExport {
	return snapshotForExport{
		Latencies: r.Latencies(),
		Events:    r.ring.Events(),
		Published: r.ring.Published(),
	}
}

// Handler returns an HTTP handler serving the registry as Prometheus
// text exposition (default) or as JSON (?format=json): per-boundary
// per-op sample counts and p50/p99/p999 gauges, the cumulative bucket
// ladder, and the flight recorder's publish counter.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.export())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# HELP nbbs_latency_samples_total Sampled operations per layer boundary and op.\n")
		fmt.Fprintf(w, "# TYPE nbbs_latency_samples_total counter\n")
		latencies := r.Latencies()
		for _, ll := range latencies {
			for _, op := range ll.Ops {
				if op.Samples == 0 {
					continue
				}
				fmt.Fprintf(w, "nbbs_latency_samples_total{layer=%q,op=%q} %d\n", ll.Layer, op.Op, op.Samples)
			}
		}
		for _, q := range []struct {
			name string
			get  func(OpLatency) uint64
		}{
			{"nbbs_latency_p50_nanoseconds", func(o OpLatency) uint64 { return o.P50 }},
			{"nbbs_latency_p99_nanoseconds", func(o OpLatency) uint64 { return o.P99 }},
			{"nbbs_latency_p999_nanoseconds", func(o OpLatency) uint64 { return o.P999 }},
		} {
			fmt.Fprintf(w, "# HELP %s Merged latency percentile per layer boundary and op.\n", q.name)
			fmt.Fprintf(w, "# TYPE %s gauge\n", q.name)
			for _, ll := range latencies {
				for _, op := range ll.Ops {
					if op.Samples == 0 {
						continue
					}
					fmt.Fprintf(w, "%s{layer=%q,op=%q} %d\n", q.name, ll.Layer, op.Op, q.get(op))
				}
			}
		}
		fmt.Fprintf(w, "# HELP nbbs_events_published_total Flight-recorder events published (including overwritten).\n")
		fmt.Fprintf(w, "# TYPE nbbs_events_published_total counter\n")
		fmt.Fprintf(w, "nbbs_events_published_total %d\n", r.ring.Published())
		fmt.Fprintf(w, "# HELP nbbs_events_retained Flight-recorder events currently retained.\n")
		fmt.Fprintf(w, "# TYPE nbbs_events_retained gauge\n")
		fmt.Fprintf(w, "nbbs_events_retained %d\n", len(r.ring.Events()))
	})
}

// PublishExpvar registers the registry under the given expvar name
// (served by the standard /debug/vars endpoint). Registering the same
// name twice panics, per expvar's contract — one registry per name.
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return r.export() }))
}
