// Package linuxbuddy implements the paper's "linux-buddy" comparator: the
// Linux kernel zone allocator shape (kernel 3.2 era, the version the paper
// measured) — per-order free lists with split-on-allocation and buddy
// coalescing on free, serialized by one spin-lock per instance, the
// equivalent of zone->lock guarding __get_free_pages/free_pages.
//
// The managed region is viewed as an array of pages of MinSize bytes. A
// free block of order k is 2^k contiguous pages whose head page sits on
// freeLists[k]; the lists are intrusive doubly-linked lists threaded
// through a per-page record (the moral equivalent of struct page), so
// removing a specific buddy during coalescing is O(1) exactly as in the
// kernel.
package linuxbuddy

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/spinlock"
)

func init() {
	alloc.Register("linux-buddy", func(cfg alloc.Config) (alloc.Allocator, error) {
		return New(cfg)
	})
}

const nilPage = int64(-1)

// page is the per-page bookkeeping record. A page is "buddy" (free-list
// member) only when it heads a free block; allocated block heads carry
// their order so free() needs only the offset, like free_pages with the
// order recovered from the page.
type page struct {
	next, prev int64 // free-list links, nilPage when not linked
	order      int8  // order of the block this page heads
	free       bool  // on a free list (PageBuddy)
	allocated  bool  // head of a delivered block
	flags      uint8 // per-page state flags (PG_* equivalent)
}

// Per-page flag values mimicking the prep/check cycle of the kernel.
const (
	flagPrepared uint8 = 0x1 // set by prep on allocation, cleared on free
)

// Allocator is a single-instance Linux-style buddy allocator.
type Allocator struct {
	geo      geometry.Geometry
	lock     spinlock.Locker
	pages    []page
	freeHead []int64 // freeHead[order] -> first free block head, nilPage if empty
	maxOrder int     // largest order servable (log2(MaxSize/MinSize))

	mu      sync.Mutex
	handles []*Handle
	closed  alloc.Stats // retained counters of closed handles
}

// New builds a "linux-buddy" instance.
func New(cfg alloc.Config) (*Allocator, error) {
	geo, err := geometry.New(cfg.Total, cfg.MinSize, cfg.MaxSize)
	if err != nil {
		return nil, err
	}
	a := &Allocator{
		geo:      geo,
		lock:     spinlock.New(spinlock.Kind(cfg.LockKind)),
		pages:    make([]page, geo.Leaves()),
		maxOrder: geo.Depth - geo.MaxLevel,
	}
	// The kernel's MAX_ORDER caps block size; the whole region may exceed
	// it, in which case it is seeded as multiple max-order blocks.
	a.freeHead = make([]int64, a.maxOrder+1)
	for i := range a.freeHead {
		a.freeHead[i] = nilPage
	}
	for i := range a.pages {
		a.pages[i].next, a.pages[i].prev = nilPage, nilPage
	}
	blockPages := int64(1) << a.maxOrder
	for head := int64(0); head < int64(geo.Leaves()); head += blockPages {
		a.insertFree(head, a.maxOrder)
	}
	return a, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "linux-buddy" }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// Alloc implements alloc.Allocator.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	var s alloc.Stats
	return a.alloc(size, &s)
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(offset uint64) {
	var s alloc.Stats
	a.release(offset, &s)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a}
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.closed
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator.
type Handle struct {
	a      *Allocator
	stats  alloc.Stats
	closed bool
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: fold this handle's counters into
// the allocator's retained totals and unregister it, so handle-churning
// callers do not grow the registry without bound. The handle must not be
// used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.mu.Unlock()
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// Alloc implements alloc.Handle.
func (h *Handle) Alloc(size uint64) (uint64, bool) { return h.a.alloc(size, &h.stats) }

// Free implements alloc.Handle.
func (h *Handle) Free(offset uint64) { h.a.release(offset, &h.stats) }

// orderForSize maps a byte size to a page order (get_order).
func (a *Allocator) orderForSize(size uint64) int {
	if size <= a.geo.MinSize {
		return 0
	}
	pagesNeeded := (size + a.geo.MinSize - 1) / a.geo.MinSize
	order := bits.Len64(pagesNeeded - 1)
	return order
}

// alloc is __rmqueue: find the smallest populated order ≥ the request,
// detach the block, and give the unused halves back one order at a time
// (the kernel's expand()).
func (a *Allocator) alloc(size uint64, s *alloc.Stats) (uint64, bool) {
	if size > a.geo.MaxSize {
		s.AllocFails++
		return 0, false
	}
	order := a.orderForSize(size)
	a.lock.Lock()
	s.LockAcq++
	cur := order
	for cur <= a.maxOrder && a.freeHead[cur] == nilPage {
		cur++
	}
	if cur > a.maxOrder {
		a.lock.Unlock()
		s.AllocFails++
		return 0, false
	}
	head := a.removeHead(cur)
	// expand(): return the tail halves of the oversized block.
	for cur > order {
		cur--
		buddy := head + int64(1)<<cur
		a.insertFree(buddy, cur)
	}
	a.pages[head].order = int8(order)
	a.pages[head].allocated = true
	// prep_new_page: the kernel prepares every page of the block before
	// handing it out (flag checks, refcount init, clearing PG_buddy);
	// this O(2^order) per-page walk is an intrinsic cost of the Linux
	// allocation path for high-order blocks and part of what the paper
	// measures in Figure 12.
	for p := head; p < head+int64(1)<<order; p++ {
		if a.pages[p].free && p != head {
			a.lock.Unlock()
			panic(fmt.Sprintf("linux-buddy: page %d inside delivered block still on a free list", p))
		}
		a.pages[p].flags = flagPrepared
	}
	a.lock.Unlock()
	s.Allocs++
	return uint64(head) * a.geo.MinSize, true
}

// release is __free_pages_ok/__free_one_page: push the block back and
// greedily merge with its buddy while the buddy is a free block of the
// same order.
func (a *Allocator) release(offset uint64, s *alloc.Stats) {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("linux-buddy: Free(%#x): offset outside the managed region or unaligned", offset))
	}
	head := int64(offset / geo.MinSize)
	a.lock.Lock()
	s.LockAcq++
	if !a.pages[head].allocated {
		a.lock.Unlock()
		panic(fmt.Sprintf("linux-buddy: Free(%#x): offset not currently allocated (double free?)", offset))
	}
	order := int(a.pages[head].order)
	a.pages[head].allocated = false
	// free_pages_check: the kernel validates and clears the state of
	// every page of the block before it re-enters the free lists, the
	// release-side twin of prep_new_page.
	for p := head; p < head+int64(1)<<order; p++ {
		if a.pages[p].flags != flagPrepared {
			a.lock.Unlock()
			panic(fmt.Sprintf("linux-buddy: Free(%#x): page %d has bad state %#x", offset, p, a.pages[p].flags))
		}
		a.pages[p].flags = 0
	}
	for order < a.maxOrder {
		buddy := head ^ int64(1)<<order
		if buddy >= int64(len(a.pages)) || !a.pages[buddy].free || int(a.pages[buddy].order) != order {
			break
		}
		a.removeFree(buddy, order)
		if buddy < head {
			head = buddy
		}
		order++
	}
	a.insertFree(head, order)
	a.lock.Unlock()
	s.Frees++
}

// insertFree pushes a block head onto its order's free list.
func (a *Allocator) insertFree(head int64, order int) {
	p := &a.pages[head]
	p.free = true
	p.order = int8(order)
	p.prev = nilPage
	p.next = a.freeHead[order]
	if p.next != nilPage {
		a.pages[p.next].prev = head
	}
	a.freeHead[order] = head
}

// removeFree unlinks a specific block head from its order's free list —
// the O(1) detach that coalescing relies on.
func (a *Allocator) removeFree(head int64, order int) {
	p := &a.pages[head]
	if p.prev != nilPage {
		a.pages[p.prev].next = p.next
	} else {
		a.freeHead[order] = p.next
	}
	if p.next != nilPage {
		a.pages[p.next].prev = p.prev
	}
	p.free = false
	p.next, p.prev = nilPage, nilPage
}

// removeHead pops the first block of an order's free list.
func (a *Allocator) removeHead(order int) int64 {
	head := a.freeHead[order]
	a.removeFree(head, order)
	return head
}

// ChunkSize implements alloc.ChunkSizer: the block order is recovered from
// the head page record, as free_pages does.
func (a *Allocator) ChunkSize(offset uint64) uint64 {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("linux-buddy: ChunkSize(%#x): offset outside the managed region or unaligned", offset))
	}
	head := offset / geo.MinSize
	a.lock.Lock()
	p := a.pages[head]
	a.lock.Unlock()
	if !p.allocated {
		panic(fmt.Sprintf("linux-buddy: ChunkSize(%#x): offset not currently allocated", offset))
	}
	return geo.MinSize << uint(p.order)
}
