package bunch_test

import (
	"testing"

	"repro/internal/alloctest"

	_ "repro/internal/bunch" // register 4lvl-nb
)

func TestConformance(t *testing.T) { alloctest.Run(t, "4lvl-nb") }
