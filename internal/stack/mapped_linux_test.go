//go:build linux

package stack_test

import (
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/mem"
	"repro/internal/multi"
	"repro/internal/stack"
)

func rssBytes(t *testing.T) uint64 {
	t.Helper()
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		t.Fatal(err)
	}
	pages, err := strconv.ParseUint(strings.Fields(string(data))[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return pages * uint64(syscall.Getpagesize())
}

// TestMappedSawtoothAccountingReconciles drives one burst sawtooth —
// ramp to the peak, hold, drain to near-empty, hold — through a mapped
// depot+elastic stack and checks, at every lifecycle edge, that the
// three views of committed memory agree: the region's own Stats, the
// published-slot count times the window size, and the mem_* keys the
// router surfaces through LayerStats. On this platform (the mapped
// backend is real) the process RSS must also fall with the decommits.
func TestMappedSawtoothAccountingReconciles(t *testing.T) {
	perBig := alloc.Config{Total: 4 << 20, MinSize: 64, MaxSize: 1 << 14}
	const floor, cap_ = 1, 4
	st, err := stack.Build(stack.Spec{
		Variant: "4lvl-nb", Per: perBig, Instances: 2,
		Elastic:  &elastic.Config{MinInstances: floor, MaxInstances: cap_, Hysteresis: 1},
		Depot:    true,
		Magazine: 8,
		Mapped:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr, m := st.Elastic, st.Multi

	reconcile := func(phase string) {
		t.Helper()
		published := 0
		for _, info := range m.InstanceInfos() {
			if info.State != multi.Retired {
				published++
			}
		}
		s := st.Mem.Stats()
		if want := uint64(published) * st.Mem.WindowSize(); s.CommittedBytes != want {
			t.Fatalf("%s: region committed %d bytes, want %d (%d published slots)",
				phase, s.CommittedBytes, want, published)
		}
		var extra map[string]uint64
		for _, layer := range st.LayerStats() {
			if _, ok := layer.Extra["mem_committed"]; ok {
				extra = layer.Extra
				break
			}
		}
		if extra == nil {
			t.Fatalf("%s: no layer surfaces mem_* accounting", phase)
		}
		if extra["mem_committed"] != s.CommittedBytes ||
			extra["mem_reserved"] != s.ReservedBytes ||
			extra["mem_decommits"] != s.Decommits ||
			extra["mem_recommits"] != s.Recommits {
			t.Fatalf("%s: LayerStats %v does not reconcile with region %+v", phase, extra, s)
		}
	}
	reconcile("start")

	debug.FreeOSMemory()
	rssStart := rssBytes(t)

	// Ramp: allocate 16KiB chunks, polling so the manager can grow, until
	// the fleet hits the cap and utilization is high.
	h := st.Top.NewHandle()
	var live []uint64
	for i := 0; i < 4096 && (m.Instances() < cap_ || mgr.Utilization() < 0.8); i++ {
		off, ok := h.Alloc(16 << 10)
		if !ok {
			mgr.Poll()
			if off, ok = h.Alloc(16 << 10); !ok {
				break
			}
		}
		live = append(live, off)
		mgr.Poll()
	}
	if m.Instances() != cap_ {
		t.Fatalf("ramp did not grow the fleet to the cap: %d instances", m.Instances())
	}
	reconcile("peak")
	debug.FreeOSMemory()
	rssPeak := rssBytes(t)
	if want := rssStart + 6<<20; rssPeak < want {
		t.Fatalf("peak RSS %d below start %d + committed growth (want >= %d)", rssPeak, rssStart, want)
	}

	// Drain: free everything, then poll the fleet back to the floor.
	for _, off := range live {
		h.Free(off)
	}
	if fh, ok := h.(interface{ Flush() }); ok {
		fh.Flush()
	}
	for i := 0; i < 16 && m.Instances() > floor; i++ {
		mgr.Poll()
	}
	if got := m.Instances(); got != floor {
		t.Fatalf("drain did not retire to the floor: %d instances", got)
	}
	reconcile("trough")
	s := st.Mem.Stats()
	if s.Decommits < cap_-floor {
		t.Fatalf("expected at least %d decommits, got %+v", cap_-floor, s)
	}
	debug.FreeOSMemory()
	rssEnd := rssBytes(t)
	if rssEnd > rssPeak-6<<20 {
		t.Fatalf("retirement did not return RSS: peak %d, end %d (want <= peak - %d)", rssPeak, rssEnd, 6<<20)
	}
	if !mem.Mapped() {
		t.Fatal("linux build must report a mapped backend")
	}
}
