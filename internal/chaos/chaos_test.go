package chaos

import (
	"reflect"
	"testing"

	_ "repro/internal/bunch"
	_ "repro/internal/core"
)

// TestRunHoldsInvariantsAndRecovers is the in-tree slice of the chaos
// gate: a few seeds per composite, full invariant + recovery checks.
// nbbsstress -chaos runs the wide version (25 seeds) in CI.
func TestRunHoldsInvariantsAndRecovers(t *testing.T) {
	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for _, composite := range Composites() {
		for _, seed := range []uint64{1, 7, 42} {
			rep := Run(Config{Composite: composite, Seed: seed, Steps: steps})
			if !rep.OK() {
				t.Errorf("%s seed %d: violations=%v recovered=%v (schedule %d faults)",
					composite, seed, rep.Violations, rep.Recovered, len(rep.Schedule))
				continue
			}
			if rep.Injected == 0 {
				t.Errorf("%s seed %d: schedule injected nothing — the run proved nothing", composite, seed)
			}
			if rep.MidDrainKills == 0 {
				t.Errorf("%s seed %d: the mid-drain kill scenario did not run", composite, seed)
			}
			if composite == "mapped+elastic" && !testing.Short() && rep.Migrations == 0 {
				t.Errorf("%s seed %d: the migration path was never exercised", composite, seed)
			}
		}
	}
}

// TestRunIsDeterministic pins the replay contract at harness level: the
// same seed reproduces the identical run, and replaying a run's recorded
// schedule reproduces its outcome.
func TestRunIsDeterministic(t *testing.T) {
	cfg := Config{Composite: "mapped+elastic", Seed: 99, Steps: 1500}
	first := Run(cfg)
	second := Run(cfg)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", first, second)
	}
	if !first.OK() {
		t.Fatalf("seed run failed: %+v", first.Violations)
	}

	replay := Run(Config{Composite: cfg.Composite, Seed: cfg.Seed, Steps: cfg.Steps, Replay: first.Schedule})
	if !replay.OK() {
		t.Fatalf("replay of a passing schedule failed: %+v", replay.Violations)
	}
	if replay.Injected != first.Injected || len(replay.Schedule) != len(first.Schedule) {
		t.Fatalf("replay injected %d faults over %d records, original %d over %d",
			replay.Injected, len(replay.Schedule), first.Injected, len(first.Schedule))
	}
}

// TestFlightRecorderDeterministic pins the embedded flight-recorder dump
// into the replay contract: the chaos harness runs its ring single-
// sharded with logical-step timestamps, so two same-seed runs record the
// identical event sequence — the property that makes an incident file's
// event trail trustworthy evidence rather than a racy approximation.
func TestFlightRecorderDeterministic(t *testing.T) {
	cfg := Config{Composite: "mapped+elastic", Seed: 7, Steps: 2000}
	first := Run(cfg)
	second := Run(cfg)
	if len(first.Events) == 0 {
		t.Fatal("chaos run recorded no flight-recorder events — the sinks are unwired")
	}
	if !reflect.DeepEqual(first.Events, second.Events) {
		t.Fatalf("same seed recorded different event sequences:\n%+v\n%+v", first.Events, second.Events)
	}
	for i := 1; i < len(first.Events); i++ {
		if first.Events[i].Step <= first.Events[i-1].Step {
			t.Fatalf("event steps not strictly increasing at index %d: %+v", i, first.Events[i-1:i+1])
		}
	}
}
