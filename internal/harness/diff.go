package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Trajectory diffing: compare a freshly measured JSON report against a
// committed BENCH_pr*.json baseline cell by cell, so CI can print where
// the current tree stands relative to the last recorded point. Cells are
// paired by (workload, allocator, bytes, threads, procs, slab cutoff);
// throughput is the
// comparison metric because it is pooled across reps and meaningful for
// both fixed-window and fixed-volume drivers.

// CellDelta is the comparison of one grid point across two reports.
type CellDelta struct {
	Workload  string
	Allocator string
	Bytes     uint64
	Threads   int
	// Procs distinguishes -procs sweep cells; 0 for plain-grid cells
	// (which is also what pre-procs baselines report, so old and new
	// standard grids keep pairing).
	Procs int
	// SlabCutoff distinguishes slab-stack cells by their class table; 0
	// for slab-less stacks (and for pre-slab baselines, the same sentinel
	// convention as Procs, so mixed-schema reports keep pairing).
	SlabCutoff uint64
	// BaseOps and FreshOps are ops/sec; a side missing the cell reports 0
	// there and In marks which sides carried it.
	BaseOps  float64
	FreshOps float64
	In       string // "both", "baseline-only", "fresh-only"
	// Latency percentile pairs (ns); 0 on a side whose report carried no
	// latency data for the cell (a v1 baseline, a -latency=false run).
	// Percentile deltas are only meaningful when both sides are non-zero.
	BaseP50, FreshP50   uint64
	BaseP99, FreshP99   uint64
	BaseP999, FreshP999 uint64
}

// PctDeltaPct returns the fresh-over-baseline change of one percentile
// pair in percent, and whether both sides carried the percentile.
func PctDeltaPct(base, fresh uint64) (float64, bool) {
	if base == 0 || fresh == 0 {
		return 0, false
	}
	return (float64(fresh) - float64(base)) / float64(base) * 100, true
}

// DeltaPct returns the fresh-over-baseline throughput change in percent;
// it is only meaningful for cells present in both reports.
func (d CellDelta) DeltaPct() float64 {
	if d.BaseOps == 0 {
		return 0
	}
	return (d.FreshOps - d.BaseOps) / d.BaseOps * 100
}

func cellKey(c JSONCell) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%d", c.Workload, c.Allocator, c.Bytes, c.Threads, c.Procs, c.SlabCutoff)
}

// DiffReports pairs the two reports' cells and returns the deltas in the
// baseline's cell order, with fresh-only cells appended.
func DiffReports(base, fresh JSONReport) []CellDelta {
	freshBy := map[string]JSONCell{}
	for _, c := range fresh.Cells {
		freshBy[cellKey(c)] = c
	}
	var out []CellDelta
	seen := map[string]bool{}
	for _, b := range base.Cells {
		k := cellKey(b)
		if seen[k] {
			continue
		}
		seen[k] = true
		d := CellDelta{
			Workload: b.Workload, Allocator: b.Allocator, Bytes: b.Bytes, Threads: b.Threads,
			Procs: b.Procs, SlabCutoff: b.SlabCutoff, BaseOps: b.OpsPerSec, In: "baseline-only",
			BaseP50: b.P50, BaseP99: b.P99, BaseP999: b.P999,
		}
		if f, ok := freshBy[k]; ok {
			d.FreshOps = f.OpsPerSec
			d.FreshP50, d.FreshP99, d.FreshP999 = f.P50, f.P99, f.P999
			d.In = "both"
		}
		out = append(out, d)
	}
	var extra []CellDelta
	for _, f := range fresh.Cells {
		if !seen[cellKey(f)] {
			seen[cellKey(f)] = true
			extra = append(extra, CellDelta{
				Workload: f.Workload, Allocator: f.Allocator, Bytes: f.Bytes, Threads: f.Threads,
				Procs: f.Procs, SlabCutoff: f.SlabCutoff, FreshOps: f.OpsPerSec, In: "fresh-only",
				FreshP50: f.P50, FreshP99: f.P99, FreshP999: f.P999,
			})
		}
	}
	sort.SliceStable(extra, func(i, j int) bool {
		if extra[i].Workload != extra[j].Workload {
			return extra[i].Workload < extra[j].Workload
		}
		if extra[i].Allocator != extra[j].Allocator {
			return extra[i].Allocator < extra[j].Allocator
		}
		return extra[i].Threads < extra[j].Threads
	})
	return append(out, extra...)
}

// WriteDiff renders the deltas as a text or GitHub-flavoured-markdown
// table. baseLabel and freshLabel title the value columns.
func WriteDiff(w io.Writer, baseLabel, freshLabel string, deltas []CellDelta, markdown bool) {
	if baseLabel == "" {
		baseLabel = "baseline"
	}
	if freshLabel == "" {
		freshLabel = "fresh"
	}
	if markdown {
		fmt.Fprintf(w, "| workload | allocator | bytes | threads | procs | %s Mops/s | %s Mops/s | delta | %s p99 | %s p99 | p99 delta |\n",
			baseLabel, freshLabel, baseLabel, freshLabel)
		fmt.Fprintf(w, "|---|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n")
	} else {
		fmt.Fprintf(w, "%-14s %-24s %7s %8s %6s %14s %14s %9s %10s %10s %10s\n",
			"workload", "allocator", "bytes", "threads", "procs", baseLabel+" Mops/s", freshLabel+" Mops/s", "delta",
			"base p99", "fresh p99", "p99 delta")
	}
	for _, d := range deltas {
		delta := "new"
		switch d.In {
		case "both":
			delta = fmt.Sprintf("%+.1f%%", d.DeltaPct())
		case "baseline-only":
			delta = "gone"
		}
		procs := "-"
		if d.Procs > 0 {
			procs = fmt.Sprintf("%d", d.Procs)
		}
		p99Delta := "-"
		if pd, ok := PctDeltaPct(d.BaseP99, d.FreshP99); ok {
			p99Delta = fmt.Sprintf("%+.1f%%", pd)
		}
		if markdown {
			fmt.Fprintf(w, "| %s | %s | %d | %d | %s | %s | %s | %s | %s | %s | %s |\n",
				d.Workload, d.Allocator, d.Bytes, d.Threads, procs, mops(d.BaseOps), mops(d.FreshOps), delta,
				nanos(d.BaseP99), nanos(d.FreshP99), p99Delta)
		} else {
			fmt.Fprintf(w, "%-14s %-24s %7d %8d %6s %14s %14s %9s %10s %10s %10s\n",
				d.Workload, d.Allocator, d.Bytes, d.Threads, procs, mops(d.BaseOps), mops(d.FreshOps), delta,
				nanos(d.BaseP99), nanos(d.FreshP99), p99Delta)
		}
	}
}

func nanos(v uint64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%dns", v)
}

func mops(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v/1e6)
}

// LoadReport reads a JSON report from disk, rejecting unknown schemas so
// trajectory tooling fails loudly on format drift.
func LoadReport(path string) (JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return JSONReport{}, err
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return JSONReport{}, fmt.Errorf("harness: parsing %s: %w", path, err)
	}
	if rep.Schema != JSONSchema && rep.Schema != jsonSchemaV1 {
		return JSONReport{}, fmt.Errorf("harness: %s has schema %q, want %q (or the accepted %q)",
			path, rep.Schema, JSONSchema, jsonSchemaV1)
	}
	return rep, nil
}
