// Elastic: pressure-driven capacity behind the multi-instance router,
// backed by mapped memory so the shrink is visible to the OS.
//
// A fixed buddy region forces a choice for bursty traffic: provision for
// the peak (and waste the trough) or provision for the trough (and fail
// at the peak). This demo builds a 2-instance deployment with an elastic
// capacity manager capped at 4 over mapped windows (WithMappedMemory),
// then drives one full burst cycle through it:
//
//  1. Ramp: allocations pile up past the high watermark; explicit Poll
//     steps let the manager observe the pressure and publish fresh
//     instances, each commit touching its window into residency (the
//     burst is absorbed instead of failing — and RSS grows with it).
//  2. Quiet: everything is freed; Polls observe the idle fleet, mark the
//     surplus instances draining, and — once their live counts hit
//     zero — unpublish them and DECOMMIT their windows: committed bytes
//     and, on Linux, the process RSS measured via /proc/self/statm drop
//     back. This is the property PR 4 could not deliver with a fixed
//     region: peak RSS is no longer permanent.
//  3. Re-burst: pressure returns; grows refill the retired holes and
//     recommit their windows, proving decommitted capacity comes back.
//
// The program asserts each phase (growth, RSS/committed drop, recommit
// recovery) and exits non-zero otherwise, so it doubles as an end-to-end
// check — CI's gate that elastic retirement really returns memory.
// Poll is used instead of the background Start/Stop goroutine to keep
// every transition visible and deterministic.
package main

import (
	"fmt"
	"log"
	"os"

	nbbs "repro"
)

const (
	floor    = 2       // initial and minimum instances
	cap_     = 4       // elastic ceiling
	perTotal = 8 << 20 // bytes per instance window: big enough to dominate RSS noise
	chunk    = 16 << 10
)

func committed(b *nbbs.Buddy) uint64 {
	s, ok := b.MemStats()
	if !ok {
		log.Fatal("stack reports no mapped-memory accounting")
	}
	return s.CommittedBytes
}

// ramp allocates chunks, polling as it goes, until the fleet reaches the
// cap; it returns the live offsets.
func ramp(b *nbbs.Buddy, h nbbs.Handle, mgr *nbbs.ElasticManager, phase string) []uint64 {
	var live []uint64
	for i := 0; b.Instances() < cap_ && i < 8192; i++ {
		off, ok := h.Alloc(chunk)
		if !ok {
			// The current fleet is saturated mid-ramp: give the manager a
			// chance to publish capacity and retry.
			mgr.Poll()
			if off, ok = h.Alloc(chunk); !ok {
				log.Fatalf("%s allocation failed at %d instances, utilization %.0f%%",
					phase, b.Instances(), mgr.Utilization()*100)
			}
		}
		live = append(live, off)
		if act := mgr.Poll(); act.Grew >= 0 || act.Reactivated >= 0 {
			slot := act.Grew
			if slot < 0 {
				slot = act.Reactivated
			}
			fmt.Printf("%s: %4d chunks live, utilization %3.0f%% -> grew instance slot %d (now %d instances, %d MiB committed)\n",
				phase, len(live), act.Utilization*100, slot, b.Instances(), committed(b)>>20)
		}
	}
	return live
}

// quiet frees everything and polls the fleet back down to the floor.
func quiet(b *nbbs.Buddy, h nbbs.Handle, mgr *nbbs.ElasticManager, live []uint64) {
	for _, off := range live {
		h.Free(off)
	}
	for i := 0; i < 16 && b.Instances() > floor; i++ {
		act := mgr.Poll()
		if act.DrainStarted >= 0 {
			fmt.Printf("quiet: utilization %3.0f%% -> draining slot %d\n", act.Utilization*100, act.DrainStarted)
		}
		for _, k := range act.Retired {
			fmt.Printf("quiet: slot %d reached zero live chunks -> retired+decommitted (now %d instances, %d MiB committed)\n",
				k, b.Instances(), committed(b)>>20)
		}
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	b, err := nbbs.New(
		nbbs.Config{Total: perTotal, MinSize: 64, MaxSize: chunk},
		nbbs.WithInstances(floor),
		nbbs.WithElastic(nbbs.ElasticConfig{MinInstances: floor, MaxInstances: cap_}),
		nbbs.WithMappedMemory(),
	)
	if err != nil {
		log.Fatal(err)
	}
	mgr := b.Elastic()
	backing := "portable fallback (committed-bytes assertions only)"
	if nbbs.MappedBacking() {
		backing = "platform mapped (RSS assertions live)"
	}
	fmt.Printf("deployment: %s\n", b.Name())
	fmt.Printf("backing: %s\n", backing)
	fmt.Printf("start: %d instances (floor %d, cap %d), %d MiB committed\n\n",
		b.Instances(), floor, cap_, committed(b)>>20)

	_, haveRSS := rss()
	committedStart := committed(b)

	// Phase 1 — the burst.
	h := b.NewHandle()
	live := ramp(b, h, mgr, "burst")
	peak := b.Instances()
	committedPeak := committed(b)
	rssPeak, _ := rss()
	fmt.Printf("peak: %d instances serving %d live chunks (utilization %.0f%%, %d MiB committed",
		peak, len(live), mgr.Utilization()*100, committedPeak>>20)
	if haveRSS {
		fmt.Printf(", RSS %d MiB", rssPeak>>20)
	}
	fmt.Printf(")\n\n")
	if peak <= floor {
		fail("the burst never grew the fleet above the floor (%d instances)", peak)
	}
	if committedPeak <= committedStart {
		fail("growth did not commit memory: %d -> %d bytes", committedStart, committedPeak)
	}

	// Phase 2 — the quiet period: drain, retire, decommit.
	quiet(b, h, mgr, live)
	if b.Instances() != floor {
		fail("fleet did not return to the floor: %d instances, want %d", b.Instances(), floor)
	}
	committedTrough := committed(b)
	if want := committedPeak - uint64(peak-floor)*perTotal; committedTrough != want {
		fail("retirement did not decommit the surplus windows: %d bytes committed, want %d", committedTrough, want)
	}
	rssTrough, _ := rss()
	fmt.Printf("\ntrough: %d instances, %d MiB committed", b.Instances(), committedTrough>>20)
	if haveRSS {
		fmt.Printf(", RSS %d MiB", rssTrough>>20)
	}
	fmt.Printf("\n")
	if haveRSS {
		// The decommits returned (peak-floor) windows; demand at least half
		// of that back in RSS so runtime noise cannot mask a regression
		// where decommit stops reaching the OS.
		wantDrop := uint64(peak-floor) * perTotal / 2
		if rssTrough+wantDrop > rssPeak {
			fail("RSS did not drop after retirement: peak %d MiB, trough %d MiB (want a drop >= %d MiB)",
				rssPeak>>20, rssTrough>>20, wantDrop>>20)
		}
		fmt.Printf("rss: burst peak %d MiB -> quiet trough %d MiB (decommit returned the pages)\n",
			rssPeak>>20, rssTrough>>20)
	}

	// Phase 3 — the re-burst: the retired holes recommit and serve again.
	live = ramp(b, h, mgr, "re-burst")
	ms, _ := b.MemStats()
	if b.Instances() <= floor {
		fail("the re-burst never regrew the fleet")
	}
	if committed(b) <= committedTrough {
		fail("re-growth did not recommit windows")
	}
	if ms.Recommits == 0 {
		fail("re-growth should have recommitted a decommitted hole (recommits=0)")
	}
	fmt.Printf("\nre-burst: %d instances again, %d MiB committed, %d windows recommitted\n",
		b.Instances(), committed(b)>>20, ms.Recommits)
	quiet(b, h, mgr, live)

	c := mgr.Counters()
	ms, _ = b.MemStats()
	fmt.Printf("\nlifecycle: grows=%d reactivations=%d drains=%d retires=%d denied_at_cap=%d over %d polls\n",
		c.Grows, c.Reactivations, c.Drains, c.Retires, c.DeniedAtCap, c.Polls)
	fmt.Printf("memory:    commits=%d decommits=%d recommits=%d\n", ms.Commits, ms.Decommits, ms.Recommits)
	fmt.Printf("end: %d instances, %d MiB committed\n", b.Instances(), committed(b)>>20)
	if b.Instances() != floor {
		fail("fleet did not return to the floor: %d instances, want %d", b.Instances(), floor)
	}
	fmt.Println("OK: burst absorbed by growth, retirement returned memory to the OS, re-burst recommitted it")
}
