// Command nbbsbench runs one benchmark sweep: a workload over a grid of
// allocator variants, thread counts and request sizes, on freshly built
// allocators. Composed layer stacks are registered variants too, so the
// paper's future-work compositions sweep like any leaf allocator:
// "cached+4lvl-nb" (front-end magazines), "multi4+4lvl-nb" (4-instance
// NUMA-style router splitting -total), and "cached+multi4+4lvl-nb".
//
// Examples:
//
//	nbbsbench -workload linux-scalability -threads 4,8,16 -sizes 8,128 -scale 0.01
//	nbbsbench -workload larson -alloc 4lvl-nb,buddy-sl -csv
//	nbbsbench -workload larson -alloc 4lvl-nb,cached+multi4+4lvl-nb -threads 8
//	nbbsbench -workload constant-occupancy -scale 1 -reps 3   # paper volume
//	nbbsbench -workload remote-free -alloc cached+multi4+4lvl-nb,depot+multi4+4lvl-nb \
//	    -json -label pr2 > BENCH_pr2.json
//	nbbsbench -workload frag -alloc 4lvl-nb -threads 8 -cpuprofile cpu.prof \
//	    && go tool pprof -top cpu.prof   # diagnose a hot-path regression
//	nbbsbench -workload burst -alloc depot+multi4+4lvl-nb,elastic+multi+4lvl-nb \
//	    -threads 8   # sawtooth live-set; the elastic stack grows/retires
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/alloc"
	"repro/internal/harness"
	"repro/internal/workload"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
	_ "repro/internal/stack"
)

func main() {
	var (
		workloadName = flag.String("workload", "linux-scalability", "comma-separated workloads: "+strings.Join(workload.Names(), " | "))
		allocators   = flag.String("alloc", strings.Join(harness.AllocatorsUserSpace, ","), "comma-separated allocator variants")
		threads      = flag.String("threads", "1,2,4,8", "comma-separated thread counts")
		procsFlag    = flag.String("procs", "", "comma-separated GOMAXPROCS values (e.g. 1,4,8): run every cell once per value and report scaling efficiency (throughput@P / P*throughput@1); empty = current GOMAXPROCS only")
		sizes        = flag.String("sizes", "8,128,1024", "comma-separated request sizes in bytes")
		total        = flag.Uint64("total", harness.UserSpaceInstance.Total, "managed bytes per instance (power of two)")
		minSize      = flag.Uint64("min", harness.UserSpaceInstance.MinSize, "allocation unit in bytes (power of two)")
		maxSize      = flag.Uint64("max", harness.UserSpaceInstance.MaxSize, "maximum request size in bytes (power of two)")
		scale        = flag.Float64("scale", 0.01, "fraction of the paper's operation volumes (1 = 20M ops / 10s Larson window)")
		reps         = flag.Int("reps", 1, "repetitions per cell (mean reported)")
		seed         = flag.Int64("seed", 1, "workload RNG seed")
		lockKind     = flag.String("lock", "", "spin-lock flavor for blocking variants: tas | ttas | ticket")
		csv          = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut      = flag.Bool("json", false, "emit the machine-readable JSON report (BENCH trajectory format)")
		label        = flag.String("label", "", "label recorded in the JSON report (e.g. pr2)")
		kops         = flag.Bool("kops", false, "report KOps/s instead of seconds")
		latency      = flag.Bool("latency", true, "record sampled per-op latency percentiles (p50/p99/p999) per cell; -latency=false measures throughput with no telemetry probe at all")
		quiet        = flag.Bool("q", false, "suppress per-cell progress lines")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile (after the sweep) to this file")
	)
	flag.Parse()

	// Profiling hooks: hot-path regressions are diagnosable straight from
	// the harness (`nbbsbench ... -cpuprofile cpu.pb.gz` then
	// `go tool pprof`), no editing required. The profile spans the whole
	// sweep, so profile one cell (one workload/alloc/thread/size) for a
	// clean attribution.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settle allocations so the profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	workloads := strings.Split(*workloadName, ",")
	for _, w := range workloads {
		if _, ok := workload.Drivers[w]; !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q; valid: %s\n", w, strings.Join(workload.Names(), ", "))
			os.Exit(2)
		}
	}
	threadList, err := harness.ParseThreads(*threads)
	if err != nil {
		fatal(err)
	}
	sizeList, err := harness.ParseSizes(*sizes)
	if err != nil {
		fatal(err)
	}
	procsList := []int{0} // 0 = leave GOMAXPROCS alone, no procs stamp
	if *procsFlag != "" {
		procsList, err = harness.ParseThreads(*procsFlag)
		if err != nil {
			fatal(err)
		}
		for _, p := range procsList {
			if p < 1 {
				fatal(fmt.Errorf("-procs values must be positive, got %d", p))
			}
		}
	}
	sweep := harness.Sweep{
		Allocators: strings.Split(*allocators, ","),
		Threads:    threadList,
		Sizes:      sizeList,
		Instance:   alloc.Config{Total: *total, MinSize: *minSize, MaxSize: *maxSize, LockKind: *lockKind},
		Scale:      *scale,
		Reps:       *reps,
		Seed:       *seed,
		Latency:    *latency,
	}
	progress := os.Stderr
	if *quiet {
		progress = nil
	}
	var cells []harness.Cell
	for _, w := range workloads {
		sweep.Workload = w
		for _, p := range procsList {
			sweep.Procs = p
			ws, err := sweep.Run(progress)
			if err != nil {
				fatal(err)
			}
			cells = append(cells, ws...)
		}
	}
	if *jsonOut {
		if err := harness.JSON(os.Stdout, *label, cells); err != nil {
			fatal(err)
		}
		return
	}
	if *csv {
		harness.CSV(os.Stdout, cells)
		return
	}
	for _, w := range workloads {
		metric := harness.MetricSeconds
		if *kops || w == "larson" || w == "remote-free" {
			metric = harness.MetricKOps
		}
		var sub []harness.Cell
		for _, c := range cells {
			if c.Workload == w {
				sub = append(sub, c)
			}
		}
		for _, size := range sizeList {
			harness.Table(os.Stdout, fmt.Sprintf("%s - Bytes=%d", w, size), sub, size, sweep.Allocators, metric)
			fmt.Println()
		}
	}
	if *procsFlag != "" {
		harness.ScalingTable(os.Stdout, cells)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nbbsbench:", err)
	os.Exit(1)
}
