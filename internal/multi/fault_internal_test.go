package multi

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/alloc"
	"repro/internal/fault"
	"repro/internal/mem"

	_ "repro/internal/core"
)

var faultCfg = alloc.Config{Total: 1 << 12, MinSize: 64, MaxSize: 1 << 10}

// mappedRouter builds a live-tracked router backed by a region whose
// lifecycle calls route through a fresh (initially empty) injector.
func mappedRouter(t *testing.T, count int) (*Multi, *mem.Region, *fault.Injector) {
	t.Helper()
	m, err := New("1lvl-nb", count, faultCfg, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableLiveTracking()
	in := fault.New(1)
	r, err := mem.New(m.InstanceSpan(), m.Slots(), mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BindMemory(r); err != nil {
		t.Fatal(err)
	}
	return m, r, in
}

// TestAddInstanceCommitFailureLeavesNoTrace pins the memory-first grow
// order: when the window commit fails, no instance was constructed, the
// table is untouched, and a retry grows cleanly.
func TestAddInstanceCommitFailureLeavesNoTrace(t *testing.T) {
	m, r, in := mappedRouter(t, 2)
	slots, id := m.Slots(), m.nextID

	in.Set(fault.FailAlways(fault.Commit, syscall.ENOMEM))
	if _, err := m.AddInstance(); !errors.Is(err, syscall.ENOMEM) {
		t.Fatalf("AddInstance under commit fault = %v, want ENOMEM", err)
	}
	if m.Slots() != slots || m.Instances() != 2 {
		t.Fatalf("failed grow mutated the table: slots=%d instances=%d", m.Slots(), m.Instances())
	}
	if m.nextID != id {
		t.Fatal("failed grow constructed an instance before committing memory")
	}
	if s := r.Stats(); s.CommitFails != 1 || s.CommittedBytes != 2*m.InstanceSpan() {
		t.Fatalf("region stats after failed grow: %+v", s)
	}

	in.Clear()
	k, err := m.AddInstance()
	if err != nil {
		t.Fatalf("grow retry: %v", err)
	}
	if !r.Committed(k) {
		t.Fatalf("retried grow left window %d uncommitted", k)
	}
}

// TestAddInstanceRollsBackCommitOnBuildFailure is the regression test for
// the partial-grow leak: a buildSlot failure after the window commit must
// decommit the window and publish nothing.
func TestAddInstanceRollsBackCommitOnBuildFailure(t *testing.T) {
	m, r, _ := mappedRouter(t, 2)

	// Open a hole so the failed grow targets a known slot index.
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}
	if done, err := m.TryRetire(1); err != nil || !done {
		t.Fatalf("TryRetire = (%v, %v)", done, err)
	}
	if r.Committed(1) {
		t.Fatal("retired window still committed")
	}

	variant := m.variant
	m.variant = "no-such-variant"
	_, err := m.AddInstance()
	m.variant = variant
	if err == nil {
		t.Fatal("AddInstance with an unbuildable variant must fail")
	}
	if m.Instances() != 1 {
		t.Fatalf("failed grow published an instance: %d", m.Instances())
	}
	if r.Committed(1) {
		t.Fatal("buildSlot failure leaked a committed window behind the unpublished slot")
	}

	// The hole is still growable once the environment is sane again.
	k, err := m.AddInstance()
	if err != nil || k != 1 {
		t.Fatalf("grow after rollback = (%d, %v)", k, err)
	}
	if !r.Committed(1) {
		t.Fatal("grow after rollback left the window uncommitted")
	}
}

// TestTryRetireDecommitFailureKeepsSlotDraining pins the recoverable
// retire order: a decommit failure must NOT unpublish the slot — it stays
// draining with its window committed, and the next pass retries.
func TestTryRetireDecommitFailureKeepsSlotDraining(t *testing.T) {
	m, r, in := mappedRouter(t, 2)
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}

	in.Set(fault.FailAlways(fault.Decommit, syscall.EAGAIN))
	done, err := m.TryRetire(1)
	if done || !errors.Is(err, syscall.EAGAIN) {
		t.Fatalf("TryRetire under decommit fault = (%v, %v), want (false, EAGAIN)", done, err)
	}
	if m.Instances() != 2 {
		t.Fatal("failed retire unpublished the slot")
	}
	if infos := m.InstanceInfos(); infos[1].State != Draining {
		t.Fatalf("slot 1 state after failed retire = %v, want Draining", infos[1].State)
	}
	if !r.Committed(1) {
		t.Fatal("failed retire decommitted the window anyway")
	}
	// Frees (and a change of heart) still work: the slot is fully alive.
	if err := m.Reactivate(1); err != nil {
		t.Fatalf("Reactivate after failed retire: %v", err)
	}
	if err := m.StartDrain(1); err != nil {
		t.Fatal(err)
	}

	in.Clear()
	done, err = m.TryRetire(1)
	if err != nil || !done {
		t.Fatalf("TryRetire after schedule cleared = (%v, %v)", done, err)
	}
	if r.Committed(1) || m.Instances() != 1 {
		t.Fatal("recovered retire did not decommit and unpublish")
	}
}
