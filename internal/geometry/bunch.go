package geometry

// Bunch layout for the 4-level optimization (paper §III.D).
//
// Tree levels are partitioned into groups of (at most) four consecutive
// levels called bunches. Only the deepest level of each bunch — the "bunch
// leaves" — is materialized in memory: 8 bunch leaves × one status byte
// fill one 64-bit word (the paper's 5-bit fields, widened to byte lanes
// for the SWAR level scan — see internal/status). The state of the 7
// interior nodes of a bunch is derived from its leaves (partial occupancy
// = OR of children occupancy, full occupancy = AND of children
// occupancy), so one CAS on a bunch word covers 4 tree levels.
//
// We align bunch-leaf levels from the BOTTOM of the tree (Depth, Depth-4,
// Depth-8, ...), so the tree leaves — the nodes touched by minimum-size
// allocations, by far the most frequent — are always bunch leaves. The
// topmost bunch may therefore be partial (fewer than 4 levels); when
// Depth%4 == 0 it degenerates to the root alone, whose "bunch" has a
// single leaf: itself.

// BunchSpan is the number of tree levels covered by a full bunch.
const BunchSpan = 4

// LeafLevelFor returns Λ(level): the bunch-leaf level that materializes the
// state of a node at the given level. It is the smallest materialized level
// ≥ level; materialized levels are congruent to Depth modulo 4.
func (g Geometry) LeafLevelFor(level int) int {
	return g.Depth - (g.Depth-level)/BunchSpan*BunchSpan
}

// IsLeafLevel reports whether a level is materialized in the bunch layout.
func (g Geometry) IsLeafLevel(level int) bool { return (g.Depth-level)%BunchSpan == 0 }

// CoveredLeaves returns the contiguous run of bunch-leaf nodes that carry
// the state of node n: the descendants of n at LeafLevelFor(level(n)).
// first is the index of the leftmost covered leaf and count ∈ {1,2,4,8}.
// The run is always contained in a single bunch word.
func (g Geometry) CoveredLeaves(n uint64) (first uint64, count int) {
	shift := uint(g.LeafLevelFor(LevelOf(n)) - LevelOf(n))
	return n << shift, 1 << shift
}

// WordOf locates the bunch word holding a bunch-leaf node: the per-level
// slot of the leaf divided by 8, and the field position within the word.
// leafLevel must be the (materialized) level of leaf.
func WordOf(leaf uint64, leafLevel int) (word uint64, field int) {
	slot := leaf - FirstOfLevel(leafLevel)
	return slot >> 3, int(slot & 7)
}

// WordsAtLevel returns how many bunch words a materialized level needs.
func WordsAtLevel(level int) uint64 {
	w := LevelWidth(level)
	return (w + 7) >> 3
}

// LeafLevels returns the materialized levels from deepest to shallowest.
func (g Geometry) LeafLevels() []int {
	var levels []int
	for l := g.Depth; l >= 0; l -= BunchSpan {
		levels = append(levels, l)
	}
	return levels
}
