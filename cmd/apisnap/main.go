// Command apisnap prints the exported API surface of a Go package as a
// sorted, deterministic set of lines — one per exported constant,
// variable, function, type, method, struct field, or interface method.
// The committed snapshot (api/nbbs.txt for the root nbbs package) is a
// CI gate: a PR that changes the public surface must regenerate the
// file, which makes every API change an explicit, reviewable diff
// rather than an accident.
//
// Regenerate with:
//
//	go run ./cmd/apisnap > api/nbbs.txt
//
// The snapshot is purely syntactic (go/ast, no type checking): what it
// pins is the declared surface as written, including parameter names —
// renames show up as diffs on purpose, they are part of the documented
// API.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	dir := flag.String("dir", ".", "package directory to snapshot")
	flag.Parse()
	lines, err := snapshot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisnap:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

func snapshot(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	add := func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) }
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil {
						recv := render(fset, d.Recv.List[0].Type)
						if !ast.IsExported(strings.TrimLeft(recv, "*")) {
							continue
						}
						add("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type))
					} else {
						add("func %s%s", d.Name.Name, signature(fset, d.Type))
					}
				case *ast.GenDecl:
					switch d.Tok {
					case token.CONST, token.VAR:
						kw := "const"
						if d.Tok == token.VAR {
							kw = "var"
						}
						for _, spec := range d.Specs {
							vs := spec.(*ast.ValueSpec)
							for _, n := range vs.Names {
								if !n.IsExported() {
									continue
								}
								if vs.Type != nil {
									add("%s %s %s", kw, n.Name, render(fset, vs.Type))
								} else {
									add("%s %s", kw, n.Name)
								}
							}
						}
					case token.TYPE:
						for _, spec := range d.Specs {
							lines = append(lines, typeLines(fset, spec.(*ast.TypeSpec))...)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	// Duplicate lines collapse (e.g. a const block re-declared per file
	// would otherwise double up).
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out, nil
}

// typeLines flattens one exported type declaration: the type line
// itself, plus one line per exported struct field or interface method.
func typeLines(fset *token.FileSet, ts *ast.TypeSpec) []string {
	if !ts.Name.IsExported() {
		return nil
	}
	name := ts.Name.Name
	if ts.Assign != token.NoPos {
		return []string{fmt.Sprintf("type %s = %s", name, render(fset, ts.Type))}
	}
	var out []string
	switch t := ts.Type.(type) {
	case *ast.StructType:
		out = append(out, fmt.Sprintf("type %s struct", name))
		for _, field := range t.Fields.List {
			if len(field.Names) == 0 { // embedded
				typ := render(fset, field.Type)
				if ast.IsExported(strings.TrimLeft(typ, "*")) {
					out = append(out, fmt.Sprintf("type %s struct, embedded %s", name, typ))
				}
				continue
			}
			for _, n := range field.Names {
				if n.IsExported() {
					out = append(out, fmt.Sprintf("type %s struct, %s %s", name, n.Name, render(fset, field.Type)))
				}
			}
		}
	case *ast.InterfaceType:
		out = append(out, fmt.Sprintf("type %s interface", name))
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 { // embedded interface
				out = append(out, fmt.Sprintf("type %s interface, embedded %s", name, render(fset, m.Type)))
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					out = append(out, fmt.Sprintf("type %s interface, %s%s", name, n.Name, signature(fset, m.Type.(*ast.FuncType))))
				}
			}
		}
	default:
		out = append(out, fmt.Sprintf("type %s %s", name, render(fset, ts.Type)))
	}
	return out
}

// signature renders a function type without the leading "func" keyword.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	return strings.TrimPrefix(render(fset, ft), "func")
}

func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		panic(err)
	}
	// Multi-line renderings (an inline struct literal type, say) collapse
	// to one canonical line so the snapshot stays line-oriented.
	return strings.Join(strings.Fields(buf.String()), " ")
}
