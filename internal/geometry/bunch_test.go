package geometry

import (
	"testing"
	"testing/quick"
)

func TestLeafLevels(t *testing.T) {
	g := MustNew(1<<14, 8, 1<<14) // depth 11
	want := []int{11, 7, 3}
	got := g.LeafLevels()
	if len(got) != len(want) {
		t.Fatalf("LeafLevels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LeafLevels = %v, want %v", got, want)
		}
	}
	for _, l := range want {
		if !g.IsLeafLevel(l) {
			t.Errorf("IsLeafLevel(%d) = false", l)
		}
	}
	if g.IsLeafLevel(5) || g.IsLeafLevel(0) {
		t.Error("non-materialized level reported as leaf level")
	}
}

func TestLeafLevelFor(t *testing.T) {
	g := MustNew(1<<14, 8, 1<<14) // depth 11, materialized {11,7,3}
	cases := map[int]int{0: 3, 1: 3, 3: 3, 4: 7, 5: 7, 7: 7, 8: 11, 11: 11}
	for level, want := range cases {
		if got := g.LeafLevelFor(level); got != want {
			t.Errorf("LeafLevelFor(%d) = %d, want %d", level, got, want)
		}
	}
}

func TestCoveredLeaves(t *testing.T) {
	g := MustNew(1<<14, 8, 1<<14)
	// A node at a materialized level covers itself.
	if first, count := g.CoveredLeaves(1 << 11); first != 1<<11 || count != 1 {
		t.Errorf("CoveredLeaves(leaf) = (%d,%d)", first, count)
	}
	// A node 3 levels above a materialized level covers 8 leaves.
	if first, count := g.CoveredLeaves(1 << 8); first != 1<<11 || count != 8 {
		t.Errorf("CoveredLeaves(bunch root) = (%d,%d)", first, count)
	}
	// The tree root covers the top bunch's leaves at level 3.
	if first, count := g.CoveredLeaves(1); first != 8 || count != 8 {
		t.Errorf("CoveredLeaves(root) = (%d,%d)", first, count)
	}
}

func TestWordOf(t *testing.T) {
	if w, f := WordOf(1<<11, 11); w != 0 || f != 0 {
		t.Errorf("WordOf(first leaf) = (%d,%d)", w, f)
	}
	if w, f := WordOf(1<<11+13, 11); w != 1 || f != 5 {
		t.Errorf("WordOf(leaf 13) = (%d,%d)", w, f)
	}
}

func TestWordsAtLevel(t *testing.T) {
	if WordsAtLevel(11) != 256 {
		t.Errorf("WordsAtLevel(11) = %d, want 256", WordsAtLevel(11))
	}
	if WordsAtLevel(1) != 1 || WordsAtLevel(0) != 1 {
		t.Error("partial top levels must still get one word")
	}
}

// Property: every node's covered leaves land in one 8-aligned word, and
// distinct same-level nodes never share covered fields.
func TestQuickCoveredLeavesWordContainment(t *testing.T) {
	g := MustNew(1<<16, 8, 1<<16) // depth 13, materialized {13,9,5,1}
	f := func(raw uint64) bool {
		n := raw%(g.Nodes()-1) + 1
		first, count := g.CoveredLeaves(n)
		lam := g.LeafLevelFor(LevelOf(n))
		if LevelOf(first) != lam {
			return false
		}
		w1, f1 := WordOf(first, lam)
		w2, f2 := WordOf(first+uint64(count)-1, lam)
		return w1 == w2 && f2 == f1+count-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: covered-leaf ranges of a node and its sibling are disjoint and
// together exactly cover their parent's range (when in the same bunch) —
// the derivation rule of paper Figure 6.
func TestQuickCoveredLeavesSiblingPartition(t *testing.T) {
	g := MustNew(1<<16, 8, 1<<16)
	f := func(raw uint64) bool {
		n := raw%(g.Nodes()/2-1) + 1 // non-leaf node
		l, r := Left(n), Right(n)
		if g.LeafLevelFor(LevelOf(l)) != g.LeafLevelFor(LevelOf(n)) {
			return true // children start a new bunch; derivation crosses words
		}
		fl, cl := g.CoveredLeaves(l)
		fr, cr := g.CoveredLeaves(r)
		fn, cn := g.CoveredLeaves(n)
		return fl == fn && fr == fl+uint64(cl) && cl+cr == cn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
