package linuxbuddy

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
)

// checkFreeLists validates the free-list structure at a quiescent point:
// every listed block head is marked free with the right order, links are
// mutually consistent, blocks are order-aligned, and the sum of free and
// live bytes equals the managed total.
func checkFreeLists(t *testing.T, a *Allocator, liveBytes uint64) {
	t.Helper()
	freeBytes := uint64(0)
	for order := 0; order <= a.maxOrder; order++ {
		prev := nilPage
		for head := a.freeHead[order]; head != nilPage; head = a.pages[head].next {
			p := a.pages[head]
			if !p.free {
				t.Fatalf("order %d: listed page %d not marked free", order, head)
			}
			if int(p.order) != order {
				t.Fatalf("order %d: listed page %d has order %d", order, head, p.order)
			}
			if p.prev != prev {
				t.Fatalf("order %d: page %d prev link = %d, want %d", order, head, p.prev, prev)
			}
			if head%(1<<order) != 0 {
				t.Fatalf("order %d: block head %d not order-aligned", order, head)
			}
			freeBytes += a.geo.MinSize << order
			prev = head
		}
	}
	if freeBytes+liveBytes != a.geo.Total {
		t.Fatalf("free %d + live %d != total %d", freeBytes, liveBytes, a.geo.Total)
	}
}

func TestFreeListInvariants(t *testing.T) {
	a, err := New(alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	checkFreeLists(t, a, 0)
	rng := rand.New(rand.NewSource(17))
	live := map[uint64]uint64{} // offset -> reserved bytes
	liveBytes := uint64(0)
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			for off, sz := range live {
				a.Free(off)
				liveBytes -= sz
				delete(live, off)
				break
			}
		} else {
			size := uint64(64) << rng.Intn(9)
			if off, ok := a.Alloc(size); ok {
				reserved := a.ChunkSize(off)
				live[off] = reserved
				liveBytes += reserved
			}
		}
		if step%1000 == 0 {
			checkFreeLists(t, a, liveBytes)
		}
	}
	for off := range live {
		a.Free(off)
	}
	checkFreeLists(t, a, 0)
	// Full coalescing: the free lists must hold exactly the seeded
	// max-order blocks again.
	count := 0
	for head := a.freeHead[a.maxOrder]; head != nilPage; head = a.pages[head].next {
		count++
	}
	if want := int(a.geo.Leaves() >> a.maxOrder); count != want {
		t.Fatalf("%d max-order blocks after drain, want %d", count, want)
	}
}

func TestOrderForSize(t *testing.T) {
	a, err := New(alloc.Config{Total: 1 << 16, MinSize: 4 << 10, MaxSize: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[uint64]int{
		1:       0,
		4 << 10: 0,
		5 << 10: 1,
		8 << 10: 1,
		9 << 10: 2,
	}
	for size, want := range cases {
		if got := a.orderForSize(size); got != want {
			t.Errorf("orderForSize(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestExpandReturnsTails(t *testing.T) {
	a, err := New(alloc.Config{Total: 1 << 12, MinSize: 64, MaxSize: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	// A single min-size allocation splits the whole region: orders 0..5
	// must each hold exactly one free buddy afterwards.
	off, ok := a.Alloc(64)
	if !ok || off != 0 {
		t.Fatalf("alloc = (%d,%v)", off, ok)
	}
	for order := 0; order < a.maxOrder; order++ {
		n := 0
		for head := a.freeHead[order]; head != nilPage; head = a.pages[head].next {
			n++
		}
		if n != 1 {
			t.Fatalf("order %d holds %d blocks after one split, want 1", order, n)
		}
	}
	a.Free(off)
}

func TestMultipleSeededBlocks(t *testing.T) {
	// MaxSize below Total: the region seeds as several MAX_ORDER blocks
	// that never merge past the cap, exactly like the kernel.
	a, err := New(alloc.Config{Total: 1 << 12, MinSize: 64, MaxSize: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var offs []uint64
	for i := 0; i < 4; i++ {
		off, ok := a.Alloc(1 << 10)
		if !ok {
			t.Fatalf("max-order alloc %d failed", i)
		}
		offs = append(offs, off)
	}
	if _, ok := a.Alloc(64); ok {
		t.Fatal("alloc succeeded beyond capacity")
	}
	for _, off := range offs {
		a.Free(off)
	}
	checkFreeLists(t, a, 0)
}
