package slbuddy_test

import (
	"testing"

	"repro/internal/alloctest"

	_ "repro/internal/slbuddy" // register 1lvl-sl and 4lvl-sl
)

func TestConformance1Lvl(t *testing.T) { alloctest.Run(t, "1lvl-sl") }

func TestConformance4Lvl(t *testing.T) { alloctest.Run(t, "4lvl-sl") }
