package mem

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"unsafe"
)

// NUMA awareness: a Region built WithNUMAPolicy places each window's
// pages on the NUMA node of the core expected to allocate from it —
// window k goes to the node of cpu (k mod NumCPU), matching the per-CPU
// shard layer's "shard k owns instance k" affinity, so a shard's tree
// walks and payload touches stay node-local.
//
// On Linux the placement is real: node topology is discovered from
// sysfs (/sys/devices/system/node), the preferred-node policy is
// installed with the raw mbind syscall before the commit's first touch
// (first-touch then faults the pages onto that node), and NodeOfAddr
// queries the kernel's actual page placement via get_mempolicy, which is
// what examples/numa asserts against. Everywhere else — non-Linux,
// Linux architectures without wired syscall numbers, single-node
// machines — the same API degrades to a no-op that reports one node, so
// callers never need build tags: the policy bookkeeping (NodeMap) works
// identically, only the physical effect is absent.

// WithNUMAPolicy enables per-window NUMA placement for commits: window k
// is bound to the node of core (k mod NumCPU) before its pages are
// touched. A no-op on single-node machines and on platforms without
// NUMA syscalls; the assigned node still shows up in NodeMap either way.
func WithNUMAPolicy() Option { return func(r *Region) { r.numa = true } }

// NUMANodes returns the online NUMA node ids, smallest first. Platforms
// without discoverable topology report a single node 0.
func NUMANodes() []int { return append([]int(nil), numaNodeIDs()...) }

// NodeOfCPU returns the NUMA node a cpu belongs to (0 when unknown).
func NodeOfCPU(cpu int) int { return nodeOfCPU(cpu) }

// NUMAAware reports whether this platform can physically place pages
// (Linux with wired mbind/get_mempolicy syscalls); when false, the
// policy is bookkeeping only, exactly like the Mapped() fallback split.
func NUMAAware() bool { return numaSupported() }

// NodeOfAddr asks the kernel which node backs the page holding the first
// byte of b; ok is false when the platform cannot answer (non-Linux, or
// the page is not resident). The byte should have been touched first —
// a committed window qualifies, Commit touches every page.
func NodeOfAddr(b []byte) (int, bool) {
	if len(b) == 0 {
		return 0, false
	}
	return osNodeOfAddr(unsafe.Pointer(&b[0]))
}

// NUMAPolicy reports whether this region was built WithNUMAPolicy.
func (r *Region) NUMAPolicy() bool { return r.numa }

// NodeMap returns the node each window was assigned at commit time (-1
// for windows never committed under the policy), index-aligned with the
// router's slot table when the region backs one.
func (r *Region) NodeMap() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.wins))
	for k, w := range r.wins {
		out[k] = w.node
	}
	return out
}

// nodeForWindow maps window k to its target node: the node of the core a
// k-affine shard runs on.
func (r *Region) nodeForWindow(k int) int {
	ncpu := runtime.NumCPU()
	if ncpu <= 0 {
		ncpu = 1
	}
	return nodeOfCPU(k % ncpu)
}

// parseIDList parses the sysfs ID-list syntax ("0", "0-3", "0,2-3,8")
// used by /sys/devices/system/node/online and the per-node cpulist
// files. Shared by the Linux discovery code; portable so the parser is
// testable on every platform.
func parseIDList(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if lo, hi, ok := strings.Cut(field, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("mem: bad id range %q", field)
			}
			b, err := strconv.Atoi(hi)
			if err != nil || b < a {
				return nil, fmt.Errorf("mem: bad id range %q", field)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.Atoi(field)
		if err != nil {
			return nil, fmt.Errorf("mem: bad id %q", field)
		}
		out = append(out, v)
	}
	return out, nil
}
