// Package slbuddy implements the paper's own-data-structure blocking
// baselines "1lvl-sl" and "4lvl-sl": the exact tree layouts of the
// non-blocking buddy system, but with every operation executed as a
// critical section under one global spin-lock instead of via RMW
// instructions (paper §IV). Inside the lock the updates are plain stores,
// and no coalescing bits are needed — the transient states they flag
// cannot be observed by other threads.
//
// These baselines isolate the cost of the synchronization discipline: the
// data structure and traversal logic are held constant with internal/core
// and internal/bunch, so any performance gap is attributable to spin-lock
// serialization versus non-blocking conflict detection.
package slbuddy

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/spinlock"
	"repro/internal/status"
)

func init() {
	alloc.Register("1lvl-sl", func(cfg alloc.Config) (alloc.Allocator, error) {
		return New1Lvl(cfg)
	})
	alloc.Register("4lvl-sl", func(cfg alloc.Config) (alloc.Allocator, error) {
		return New4Lvl(cfg)
	})
}

// layout is the storage scheme the locked algorithms run over. All methods
// are called with the instance lock held; none of them synchronize.
type layout interface {
	// free reports whether node n has no busy bits.
	free(n uint64) bool
	// occAncestor returns the first fully-occupied ancestor on n's climb
	// path (which makes n unallocatable), or 0 when the path is clear.
	occAncestor(n uint64) uint64
	// occupy reserves node n and marks partial occupancy up to MaxLevel.
	// The path must have been validated with occAncestor first.
	occupy(n uint64)
	// release clears node n and unmarks the climb path, stopping where the
	// buddy subtree is still occupied.
	release(n uint64)
}

// Allocator is a spin-lock protected buddy instance over either layout.
type Allocator struct {
	name  string
	geo   geometry.Geometry
	lock  spinlock.Locker
	lay   layout
	index []uint32 // unit slot -> serving node, 0 = not delivered
	next  uint64   // rotating scan start, advanced per allocation

	mu      sync.Mutex
	handles []*Handle
	closed  alloc.Stats // retained counters of closed handles
}

// New1Lvl builds the "1lvl-sl" baseline.
func New1Lvl(cfg alloc.Config) (*Allocator, error) {
	return build("1lvl-sl", cfg, func(geo geometry.Geometry) layout { return newFlatLayout(geo) })
}

// New4Lvl builds the "4lvl-sl" baseline.
func New4Lvl(cfg alloc.Config) (*Allocator, error) {
	return build("4lvl-sl", cfg, func(geo geometry.Geometry) layout { return newBunchLayout(geo) })
}

func build(name string, cfg alloc.Config, mk func(geometry.Geometry) layout) (*Allocator, error) {
	geo, err := geometry.New(cfg.Total, cfg.MinSize, cfg.MaxSize)
	if err != nil {
		return nil, err
	}
	if geo.Depth > 31 {
		return nil, fmt.Errorf("slbuddy: depth %d exceeds the uint32 node-index range", geo.Depth)
	}
	return &Allocator{
		name:  name,
		geo:   geo,
		lock:  spinlock.New(spinlock.Kind(cfg.LockKind)),
		lay:   mk(geo),
		index: make([]uint32, geo.Leaves()),
	}, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return a.name }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// Alloc implements alloc.Allocator.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	var s alloc.Stats
	return a.alloc(size, &s)
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(offset uint64) {
	var s alloc.Stats
	a.release(offset, &s)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a}
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.closed
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator.
type Handle struct {
	a      *Allocator
	stats  alloc.Stats
	closed bool
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: fold this handle's counters into
// the allocator's retained totals and unregister it, so handle-churning
// callers do not grow the registry without bound. The handle must not be
// used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.mu.Unlock()
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// Alloc implements alloc.Handle.
func (h *Handle) Alloc(size uint64) (uint64, bool) { return h.a.alloc(size, &h.stats) }

// Free implements alloc.Handle.
func (h *Handle) Free(offset uint64) { h.a.release(offset, &h.stats) }

// alloc performs the whole allocation as one critical section: scan the
// target level for a free node whose climb path is clear, occupy it, and
// record the serving node. A free node under a fully-occupied ancestor
// makes the scan skip the ancestor's entire subtree, exactly like the
// non-blocking NBALLOC.
func (a *Allocator) alloc(size uint64, s *alloc.Stats) (uint64, bool) {
	geo := a.geo
	if size > geo.MaxSize {
		s.AllocFails++
		return 0, false
	}
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1

	a.lock.Lock()
	s.LockAcq++
	// Rotate the scan start across allocations so the locked variants do
	// not re-walk fragmented prefixes either.
	start := base + a.next%(end-base)
	a.next++
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		for i := lo; i < hi; {
			if !a.lay.free(i) {
				i++
				continue
			}
			if conflict := a.lay.occAncestor(i); conflict != 0 {
				s.Retries++
				d := uint64(1) << uint(level-geometry.LevelOf(conflict))
				next := (conflict + 1) * d
				if next <= i {
					next = i + 1
				}
				i = next
				continue
			}
			a.lay.occupy(i)
			offset := geo.OffsetOf(i)
			a.index[geo.UnitIndex(offset)] = uint32(i)
			a.lock.Unlock()
			s.Allocs++
			return offset, true
		}
	}
	a.lock.Unlock()
	s.AllocFails++
	return 0, false
}

// release frees the chunk at offset under the lock.
func (a *Allocator) release(offset uint64, s *alloc.Stats) {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("%s: Free(%#x): offset outside the managed region or unaligned", a.name, offset))
	}
	slot := geo.UnitIndex(offset)
	a.lock.Lock()
	s.LockAcq++
	n := uint64(a.index[slot])
	if n == 0 {
		a.lock.Unlock()
		panic(fmt.Sprintf("%s: Free(%#x): offset not currently allocated (double free?)", a.name, offset))
	}
	a.index[slot] = 0
	a.lay.release(n)
	a.lock.Unlock()
	s.Frees++
}

// flatLayout is the 1lvl storage: one status word per node.
type flatLayout struct {
	geo  geometry.Geometry
	tree []uint32
}

func newFlatLayout(geo geometry.Geometry) *flatLayout {
	return &flatLayout{geo: geo, tree: make([]uint32, geo.Nodes())}
}

func (l *flatLayout) free(n uint64) bool { return status.IsFree(l.tree[n]) }

func (l *flatLayout) occAncestor(n uint64) uint64 {
	for cur := geometry.Parent(n); cur >= 1 && geometry.LevelOf(cur) >= l.geo.MaxLevel; cur = geometry.Parent(cur) {
		if status.IsOcc(l.tree[cur]) {
			return cur
		}
	}
	return 0
}

func (l *flatLayout) occupy(n uint64) {
	l.tree[n] = status.Busy
	child := n
	for geometry.LevelOf(child) > l.geo.MaxLevel {
		parent := geometry.Parent(child)
		l.tree[parent] = status.Mark(l.tree[parent], child)
		child = parent
	}
}

func (l *flatLayout) release(n uint64) {
	l.tree[n] = 0
	child := n
	for geometry.LevelOf(child) > l.geo.MaxLevel {
		parent := geometry.Parent(child)
		val := status.Unmark(l.tree[parent], child)
		l.tree[parent] = val
		if status.IsOccBuddy(val, child) {
			return
		}
		child = parent
	}
}

// bunchLayout is the 4lvl storage: packed bunch words, interior node state
// derived from the bunch leaves, climbs stepping four levels per word.
type bunchLayout struct {
	geo      geometry.Geometry
	words    []uint64
	wordBase [64]uint64
}

func newBunchLayout(geo geometry.Geometry) *bunchLayout {
	l := &bunchLayout{geo: geo}
	var total uint64
	for _, lvl := range geo.LeafLevels() {
		l.wordBase[lvl] = total
		total += geometry.WordsAtLevel(lvl)
	}
	l.words = make([]uint64, total)
	return l
}

func (l *bunchLayout) locate(n uint64) (word *uint64, field, count, leafLevel int) {
	first, cnt := l.geo.CoveredLeaves(n)
	leafLevel = l.geo.LeafLevelFor(geometry.LevelOf(n))
	w, f := geometry.WordOf(first, leafLevel)
	return &l.words[l.wordBase[leafLevel]+w], f, cnt, leafLevel
}

func (l *bunchLayout) leafField(leaf uint64, leafLevel int) (word *uint64, field int) {
	w, f := geometry.WordOf(leaf, leafLevel)
	return &l.words[l.wordBase[leafLevel]+w], f
}

func (l *bunchLayout) free(n uint64) bool {
	word, field, count, _ := l.locate(n)
	return *word&status.Fill(field, count, status.Busy) == 0
}

func (l *bunchLayout) occAncestor(n uint64) uint64 {
	// An occupied ancestor inside n's own bunch implies busy covered
	// fields, which the free() probe already rejected; only the
	// materialized ancestor leaves above the bunch need checking.
	nLevel := geometry.LevelOf(n)
	_, _, _, leafLevel := l.locate(n)
	lamStop := l.geo.LeafLevelFor(l.geo.MaxLevel)
	for lam := leafLevel - geometry.BunchSpan; lam >= lamStop; lam -= geometry.BunchSpan {
		anc := geometry.AncestorAt(n, nLevel, lam)
		word, field := l.leafField(anc, lam)
		if status.IsOcc(status.Field(*word, field)) {
			return anc
		}
	}
	return 0
}

func (l *bunchLayout) occupy(n uint64) {
	nLevel := geometry.LevelOf(n)
	word, field, count, leafLevel := l.locate(n)
	*word |= status.Fill(field, count, status.Busy)
	lamStop := l.geo.LeafLevelFor(l.geo.MaxLevel)
	for lam := leafLevel - geometry.BunchSpan; lam >= lamStop; lam -= geometry.BunchSpan {
		anc := geometry.AncestorAt(n, nLevel, lam)
		child := geometry.AncestorAt(n, nLevel, lam+1)
		w, f := l.leafField(anc, lam)
		*w = status.WithField(*w, f, status.Mark(status.Field(*w, f), child))
	}
}

func (l *bunchLayout) release(n uint64) {
	nLevel := geometry.LevelOf(n)
	word, field, count, leafLevel := l.locate(n)
	*word &^= status.FieldMask(field, count)
	lamStop := l.geo.LeafLevelFor(l.geo.MaxLevel)
	low := *word
	for lam := leafLevel - geometry.BunchSpan; lam >= lamStop; lam -= geometry.BunchSpan {
		if low&status.Fill(0, 8, status.Busy) != 0 {
			// Some buddy within the word just left is still occupied: the
			// merge cannot propagate past it.
			return
		}
		anc := geometry.AncestorAt(n, nLevel, lam)
		child := geometry.AncestorAt(n, nLevel, lam+1)
		w, f := l.leafField(anc, lam)
		*w = status.WithField(*w, f, status.Unmark(status.Field(*w, f), child))
		low = *w
	}
}

// ChunkSize implements alloc.ChunkSizer under the instance lock.
func (a *Allocator) ChunkSize(offset uint64) uint64 {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("%s: ChunkSize(%#x): offset outside the managed region or unaligned", a.name, offset))
	}
	a.lock.Lock()
	n := uint64(a.index[geo.UnitIndex(offset)])
	a.lock.Unlock()
	if n == 0 {
		panic(fmt.Sprintf("%s: ChunkSize(%#x): offset not currently allocated", a.name, offset))
	}
	return geo.SizeOf(n)
}
