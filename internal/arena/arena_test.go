package arena

import "testing"

func TestMaterialized(t *testing.T) {
	a := New(4096, true)
	if !a.Materialized() || a.Total() != 4096 {
		t.Fatal("materialized arena misreports itself")
	}
	w1 := a.Bytes(0, 64)
	w2 := a.Bytes(64, 64)
	for i := range w1 {
		w1[i] = 0xAA
	}
	for _, b := range w2 {
		if b != 0 {
			t.Fatal("windows overlap")
		}
	}
	if len(w1) != 64 || cap(w1) != 64 {
		t.Fatalf("window len/cap = %d/%d, want 64/64", len(w1), cap(w1))
	}
	// Windows alias the region: rereading sees the writes.
	if a.Bytes(0, 64)[0] != 0xAA {
		t.Fatal("window does not alias the region")
	}
}

func TestNotMaterialized(t *testing.T) {
	a := New(4096, false)
	if a.Materialized() {
		t.Fatal("offset-only arena claims to be materialized")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bytes on a non-materialized arena did not panic")
		}
	}()
	a.Bytes(0, 1)
}

func TestOutOfBounds(t *testing.T) {
	a := New(4096, true)
	for _, c := range [][2]uint64{{4096, 1}, {4090, 16}, {^uint64(0), 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bytes(%d,%d) did not panic", c[0], c[1])
				}
			}()
			a.Bytes(c[0], c[1])
		}()
	}
	// The full window is fine.
	if len(a.Bytes(0, 4096)) != 4096 {
		t.Error("full-region window failed")
	}
}
