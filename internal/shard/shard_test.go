package shard_test

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/alloc"
	"repro/internal/multi"
	"repro/internal/proc"
	"repro/internal/shard"

	_ "repro/internal/bunch"
)

var per = alloc.Config{Total: 1 << 16, MinSize: 64, MaxSize: 1 << 14}

func newSharded(t *testing.T, instances, shards int) (*shard.Allocator, *multi.Multi) {
	t.Helper()
	m, err := multi.New("4lvl-nb", instances, per, multi.RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	a, err := shard.New(m, shards)
	if err != nil {
		t.Fatal(err)
	}
	return a, m
}

func TestCacheHitRecycle(t *testing.T) {
	a, _ := newSharded(t, 2, 1)
	h := a.NewHandle().(*shard.Handle)
	off, ok := h.Alloc(128)
	if !ok {
		t.Fatal("alloc failed")
	}
	h.Free(off)
	got, ok := h.Alloc(128)
	if !ok {
		t.Fatal("recycle alloc failed")
	}
	if got != off {
		t.Fatalf("expected cache to recycle offset %d, got %d", off, got)
	}
	tot := a.Totals()
	if tot.Hits != 1 || tot.LocalFrees != 1 {
		t.Fatalf("hits=%d localFrees=%d, want 1/1", tot.Hits, tot.LocalFrees)
	}
}

func TestScrubFlushesCaches(t *testing.T) {
	a, m := newSharded(t, 2, 2)
	h := a.NewHandle().(*shard.Handle)
	offs := make([]uint64, 0, 32)
	for i := 0; i < 32; i++ {
		off, ok := h.Alloc(256)
		if !ok {
			t.Fatal("alloc failed")
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		h.Free(off)
	}
	tot := a.Totals()
	if tot.CachedNow+tot.StashedNow != 32 {
		t.Fatalf("parked %d+%d chunks, want 32", tot.CachedNow, tot.StashedNow)
	}
	a.Scrub()
	tot = a.Totals()
	if tot.CachedNow != 0 || tot.StashedNow != 0 {
		t.Fatalf("Scrub left %d cached, %d stashed", tot.CachedNow, tot.StashedNow)
	}
	// Everything the shard layer ever parked must have flowed back to
	// the trees: the router's view balances.
	ms := m.Stats()
	if ms.Allocs != ms.Frees {
		t.Fatalf("router allocs %d != frees %d after Scrub", ms.Allocs, ms.Frees)
	}
	// Push/pop/flush reconciliation.
	if tot.LocalFrees+tot.RemoteFrees != tot.Hits+tot.Flushed {
		t.Fatalf("pushes %d+%d != pops %d + flushed %d",
			tot.LocalFrees, tot.RemoteFrees, tot.Hits, tot.Flushed)
	}
}

func TestRemoteFreeFlowsHome(t *testing.T) {
	// With 2 shards over 2 instances, a chunk from instance 1 freed by a
	// shard-0 actor must cross through shard 1's stash.
	a, _ := newSharded(t, 2, 2)
	span := per.Total

	// Allocate straight from instance 1 through an affine router
	// sub-handle, then free it through the shard layer *as shard 0*.
	// Shard identity follows the processor hint, which we cannot choose
	// from a test, so instead drive the layer until the counters show a
	// cross-shard free happened — on a single-P machine every op comes
	// from the same shard, so any chunk of the other parity is remote.
	h := a.NewHandle().(*shard.Handle)
	var offs []uint64
	for i := 0; i < 64; i++ {
		off, ok := h.Alloc(64)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	// Force some allocations onto the second instance by exhausting... the
	// affine instance serves all of these; instead free a batch-allocated
	// chunk from each instance.
	batch := a.AllocBatch(64, 2)
	for _, off := range offs {
		h.Free(off)
	}
	remoteSeen := false
	for _, off := range batch {
		inst := int(off / span)
		_ = inst
		h.Free(off)
	}
	tot := a.Totals()
	if tot.RemoteFrees > 0 {
		remoteSeen = true
		if tot.StashedNow == 0 && tot.StashDrains == 0 && tot.Flushed == 0 {
			t.Fatalf("remote frees recorded but neither stashed nor drained: %+v", tot)
		}
	}
	// The batch spanned both instances only when the router had space on
	// both; tolerate the degenerate case but require consistency.
	_ = remoteSeen
	a.Scrub()
	tot = a.Totals()
	if tot.LocalFrees+tot.RemoteFrees != tot.Hits+tot.Flushed {
		t.Fatalf("reconciliation failed after Scrub: %+v", tot)
	}
}

func TestConvFreePanicsOnDoubleFree(t *testing.T) {
	a, _ := newSharded(t, 2, 2)
	off, ok := a.Alloc(128)
	if !ok {
		t.Fatal("alloc failed")
	}
	a.Free(off)
	defer func() {
		if recover() == nil {
			t.Fatal("double conv Free did not panic")
		}
	}()
	a.Free(off)
}

func TestConcurrentChurnAcrossShards(t *testing.T) {
	// The -race workhorse: GOMAXPROCS workers churning alloc/free with
	// deliberate cross-goroutine frees so chunks take the stash path.
	a, m := newSharded(t, 4, 4)
	workers := 4
	if n := runtime.GOMAXPROCS(0); n > workers {
		workers = n
	}
	const opsPer = 2000
	ch := make(chan uint64, workers*64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			h := a.NewHandle().(*shard.Handle)
			local := make([]uint64, 0, 32)
			for i := 0; i < opsPer; i++ {
				if off, ok := h.Alloc(64 << uint((seed+i)%3)); ok {
					if i%7 == 0 {
						select {
						case ch <- off:
						default:
							local = append(local, off)
						}
					} else {
						local = append(local, off)
					}
				}
				if i%3 == 0 {
					// Free someone else's chunk when available.
					select {
					case off := <-ch:
						h.Free(off)
					default:
					}
				}
				if i%2 == 1 && len(local) > 0 {
					h.Free(local[len(local)-1])
					local = local[:len(local)-1]
				}
			}
			for _, off := range local {
				h.Free(off)
			}
		}(w)
	}
	wg.Wait()
	close(ch)
	var h = a.NewHandle().(*shard.Handle)
	for off := range ch {
		h.Free(off)
	}
	a.Scrub()
	tot := a.Totals()
	if tot.CachedNow != 0 || tot.StashedNow != 0 {
		t.Fatalf("Scrub left residue: %+v", tot)
	}
	ms := m.Stats()
	if ms.Allocs != ms.Frees {
		t.Fatalf("router unbalanced after churn: allocs %d frees %d", ms.Allocs, ms.Frees)
	}
	s := a.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("shard layer unbalanced: allocs %d frees %d", s.Allocs, s.Frees)
	}
}

func TestGOMAXPROCSShrinkAfterHandles(t *testing.T) {
	// Handles created while GOMAXPROCS is high must stay correct after a
	// shrink: high shards become orphans whose parked chunks are only
	// reachable through reclaim and Scrub, and whose stashes rely on the
	// pusher-side overflow valve.
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	a, m := newSharded(t, 4, 4)
	h := a.NewHandle().(*shard.Handle)
	var offs []uint64
	for i := 0; i < 128; i++ {
		off, ok := h.Alloc(64)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	runtime.GOMAXPROCS(1)
	// All further ops land on shard 0 regardless of where the chunks came
	// from; frees of other shards' chunks go through their stashes.
	for _, off := range offs {
		h.Free(off)
	}
	// Exhaust-and-reclaim must find chunks parked on orphaned shards.
	var burst []uint64
	for {
		off, ok := h.Alloc(per.MaxSize)
		if !ok {
			break
		}
		burst = append(burst, off)
	}
	if len(burst) == 0 {
		t.Fatal("no capacity after shrink")
	}
	for _, off := range burst {
		h.Free(off)
	}
	a.Scrub()
	tot := a.Totals()
	if tot.CachedNow != 0 || tot.StashedNow != 0 {
		t.Fatalf("residue after shrink+Scrub: %+v", tot)
	}
	ms := m.Stats()
	if ms.Allocs != ms.Frees {
		t.Fatalf("router unbalanced: %+v", ms)
	}
}

func TestLayerStatsShape(t *testing.T) {
	a, _ := newSharded(t, 2, 2)
	h := a.NewHandle().(*shard.Handle)
	off, _ := h.Alloc(64)
	h.Free(off)
	ls := alloc.StackStats(a)
	if len(ls) < 2 {
		t.Fatalf("expected shard + inner entries, got %d", len(ls))
	}
	if ls[0].Layer != "shard[2]" {
		t.Fatalf("top layer %q", ls[0].Layer)
	}
	for _, key := range []string{"shard_hits", "shard_misses", "shard_local_frees",
		"shard_remote_frees", "shard_stash_drains", "shard_flushed",
		"shard_cached", "shard_stashed", "shard_pin_wraps", "shard_pin_fallback"} {
		if _, ok := ls[0].Extra[key]; !ok {
			t.Fatalf("missing extra %q: %v", key, ls[0].Extra)
		}
	}
	if a.Name() != "shard[2]+"+"multi[2x 4lvl-nb]" {
		// Name shape is part of the registry contract; fail loudly if the
		// inner label changed.
		t.Logf("name = %q", a.Name())
	}
	if shard.Find(a) != a {
		t.Fatal("Find did not locate the shard layer")
	}
	if proc.MaxHint() < 1 {
		t.Fatal("proc.MaxHint < 1")
	}
}

func TestDrainRangeUnparksWindow(t *testing.T) {
	a, m := newSharded(t, 2, 2)
	h := a.NewHandle().(*shard.Handle)
	var offs []uint64
	for i := 0; i < 16; i++ {
		if off, ok := h.Alloc(64); ok {
			offs = append(offs, off)
		}
	}
	for _, off := range offs {
		h.Free(off)
	}
	span := per.Total
	// Drain instance 0's window only.
	a.DrainRange(0, span)
	tot := a.Totals()
	for _, infos := range a.ShardInfos() {
		_ = infos
	}
	// No parked chunk with offset < span may remain; verify via a second
	// full drain finding only >= span chunks.
	if tot.CachedNow+tot.StashedNow > 0 {
		a.DrainRange(span, ^uint64(0))
		tot = a.Totals()
	}
	if tot.CachedNow != 0 || tot.StashedNow != 0 {
		t.Fatalf("residue after range drains: %+v", tot)
	}
	ms := m.Stats()
	if ms.Allocs != ms.Frees {
		t.Fatalf("router unbalanced after drains: %+v", ms)
	}
}
