// Package multi composes several single-instance back-end allocators into
// one address space, the deployment mode the paper's related-work section
// describes for large NUMA machines: the Linux kernel keeps one buddy
// instance per NUMA node and routes requests by memory policy, falling
// back to other nodes when the preferred one cannot serve.
//
// The wrapper is deliberately orthogonal to the allocator variant: it
// takes any registered back-end (non-blocking or spin-locked), which is
// exactly the paper's point — multi-instance data separation and
// non-blocking single-instance management compose. It is a full citizen
// of the composable layer contract (alloc.ChunkSizer, alloc.Spanner,
// alloc.LayerStatser, alloc.Scrubber), so caching front-ends and
// materialized arenas stack over it transparently.
package multi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// Policy selects the preferred instance for a handle.
type Policy int

const (
	// RoundRobin assigns handles to instances in creation order, the
	// moral equivalent of spreading threads across NUMA nodes.
	RoundRobin Policy = iota
	// Fixed pins every handle to instance 0, reproducing the paper's
	// Figure 12 setup where the memory policy binds all threads to one
	// buddy instance ("instance 0") to measure same-instance contention.
	Fixed
)

// Multi is a set of same-geometry back-end instances behind one offset
// space: instance k serves global offsets [k*Total, (k+1)*Total).
type Multi struct {
	instances []alloc.Allocator
	sizers    []alloc.ChunkSizer
	policy    Policy
	span      uint64 // per-instance managed bytes
	next      atomic.Uint64

	mu      sync.Mutex
	handles []*Handle
	// free holds idle convenience handles for Multi.Alloc/Free. A plain
	// free list (not sync.Pool) keeps the permanently-registered handle
	// count bounded by the convenience path's peak concurrency —
	// sync.Pool deliberately drops items (always under the race
	// detector), which would regrow the registration leak.
	free []*Handle
}

// New builds count instances of the named back-end variant.
func New(variant string, count int, cfg alloc.Config, policy Policy) (*Multi, error) {
	if count <= 0 {
		return nil, fmt.Errorf("multi: instance count %d must be positive", count)
	}
	m := &Multi{policy: policy, span: cfg.Total}
	for i := 0; i < count; i++ {
		a, err := alloc.Build(variant, cfg)
		if err != nil {
			return nil, fmt.Errorf("multi: instance %d: %w", i, err)
		}
		sizer, ok := a.(alloc.ChunkSizer)
		if !ok {
			return nil, fmt.Errorf("multi: back-end %s cannot report chunk sizes", a.Name())
		}
		m.instances = append(m.instances, a)
		m.sizers = append(m.sizers, sizer)
	}
	return m, nil
}

// Name implements alloc.Allocator.
func (m *Multi) Name() string {
	return fmt.Sprintf("multi[%dx %s]", len(m.instances), m.instances[0].Name())
}

// Geometry implements alloc.Allocator; it reports the per-instance
// geometry (instances are identical). The global offset space is wider:
// see OffsetSpan.
func (m *Multi) Geometry() geometry.Geometry { return m.instances[0].Geometry() }

// OffsetSpan implements alloc.Spanner: the router serves global offsets
// [0, Instances*Total).
func (m *Multi) OffsetSpan() uint64 { return m.span * uint64(len(m.instances)) }

// Instances returns the number of composed back-ends.
func (m *Multi) Instances() int { return len(m.instances) }

// Instance returns the k-th composed back-end (for per-instance stats).
func (m *Multi) Instance(k int) alloc.Allocator { return m.instances[k] }

// InstanceOf returns which instance serves a global offset.
func (m *Multi) InstanceOf(offset uint64) int { return int(offset / m.span) }

// route validates a global offset and splits it into (instance, local).
func (m *Multi) route(offset uint64) (int, uint64) {
	k := m.InstanceOf(offset)
	if k >= len(m.instances) {
		panic(fmt.Sprintf("multi: offset %#x outside the %d-instance offset space", offset, len(m.instances)))
	}
	return k, offset - uint64(k)*m.span
}

// getConv pops an idle convenience handle, creating one only when all
// are in flight.
func (m *Multi) getConv() *Handle {
	m.mu.Lock()
	if n := len(m.free); n > 0 {
		h := m.free[n-1]
		m.free = m.free[:n-1]
		m.mu.Unlock()
		return h
	}
	m.mu.Unlock()
	return m.newHandle(m.prefer())
}

func (m *Multi) putConv(h *Handle) {
	m.mu.Lock()
	m.free = append(m.free, h)
	m.mu.Unlock()
}

// Alloc implements alloc.Allocator through a recycled convenience
// handle. Earlier revisions built a fresh handle per call; every handle
// permanently registers sub-handles on every instance, so the
// convenience path leaked without bound. The free list keeps the
// registration count at the peak concurrency of the convenience path
// instead.
func (m *Multi) Alloc(size uint64) (uint64, bool) {
	h := m.getConv()
	off, ok := h.Alloc(size)
	m.putConv(h)
	return off, ok
}

// Free implements alloc.Allocator (through a recycled handle, so the
// routing layer's Frees counter stays in balance with Allocs).
func (m *Multi) Free(offset uint64) {
	h := m.getConv()
	h.Free(offset)
	m.putConv(h)
}

// ChunkSize implements alloc.ChunkSizer by routing the global offset to
// the owning instance's metadata.
func (m *Multi) ChunkSize(offset uint64) uint64 {
	k, local := m.route(offset)
	return m.sizers[k].ChunkSize(local)
}

// Scrub implements alloc.Scrubber: it forwards to every instance that
// supports scrubbing. Like any Scrub, quiescent points only.
func (m *Multi) Scrub() {
	for _, inst := range m.instances {
		if s, ok := inst.(alloc.Scrubber); ok {
			s.Scrub()
		}
	}
}

// prefer picks the preferred instance for the next handle by policy.
func (m *Multi) prefer() int {
	if m.policy == RoundRobin {
		return int(m.next.Add(1)-1) % len(m.instances)
	}
	return 0
}

// NewHandle implements alloc.Allocator: the handle carries the preferred
// instance chosen by the policy plus per-instance sub-handles.
func (m *Multi) NewHandle() alloc.Handle { return m.newHandle(m.prefer()) }

// NewHandleOn returns a handle pinned to the given preferred instance —
// the explicit memory-policy binding (a thread bound to a NUMA node)
// that the Fixed policy hard-wires to instance 0.
func (m *Multi) NewHandleOn(instance int) alloc.Handle {
	if instance < 0 || instance >= len(m.instances) {
		panic(fmt.Sprintf("multi: NewHandleOn(%d) with %d instances", instance, len(m.instances)))
	}
	return m.newHandle(instance)
}

func (m *Multi) newHandle(pref int) *Handle {
	h := &Handle{m: m, pref: pref, subs: make([]alloc.Handle, len(m.instances))}
	for i, inst := range m.instances {
		h.subs[i] = inst.NewHandle()
	}
	m.mu.Lock()
	m.handles = append(m.handles, h)
	m.mu.Unlock()
	return h
}

// Stats aggregates all instances (the back-end view of the traffic; the
// routing layer's own counters are in LayerStats).
func (m *Multi) Stats() alloc.Stats {
	var total alloc.Stats
	for _, inst := range m.instances {
		total.Add(inst.Stats())
	}
	return total
}

// RouteStats are the routing-layer counters aggregated across handles.
type RouteStats struct {
	// Routed counts allocations served by the handle's preferred instance.
	Routed uint64
	// Fallbacks counts allocations the preferred instance could not serve
	// that another instance absorbed (the kernel's zone-fallback path).
	Fallbacks uint64
}

// Handles returns the number of handles registered so far (pooled
// convenience handles included) — a diagnostic for the handle-leak
// regression test and capacity monitoring.
func (m *Multi) Handles() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.handles)
}

// RouteStats aggregates the routing counters of all handles; quiescent
// points only.
func (m *Multi) RouteStats() RouteStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total RouteStats
	for _, h := range m.handles {
		total.Routed += h.stats.Allocs - h.fallbacks
		total.Fallbacks += h.fallbacks
	}
	return total
}

// LayerStats implements alloc.LayerStatser: the routing layer's entry
// (handle-level ops plus fallback counters) followed by one aggregated
// entry for the instance fleet.
func (m *Multi) LayerStats() []alloc.LayerStats {
	m.mu.Lock()
	var routing alloc.Stats
	var fallbacks uint64
	for _, h := range m.handles {
		routing.Add(h.stats)
		fallbacks += h.fallbacks
	}
	m.mu.Unlock()
	entry := alloc.LayerStats{
		Layer: m.Name(),
		Stats: routing,
		Extra: map[string]uint64{
			"instances": uint64(len(m.instances)),
			"fallbacks": fallbacks,
		},
	}
	backend := alloc.LayerStats{
		Layer: fmt.Sprintf("%s x%d", m.instances[0].Name(), len(m.instances)),
		Stats: m.Stats(),
	}
	return []alloc.LayerStats{entry, backend}
}

// Handle is the per-worker face of the composed allocator.
type Handle struct {
	m         *Multi
	pref      int
	subs      []alloc.Handle
	stats     alloc.Stats
	fallbacks uint64
}

// Alloc tries the preferred instance first and falls back to the others in
// order, the kernel's zone-fallback discipline.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	n := len(h.subs)
	for d := 0; d < n; d++ {
		k := (h.pref + d) % n
		if off, ok := h.subs[k].Alloc(size); ok {
			h.stats.Allocs++
			if d != 0 {
				h.fallbacks++
			}
			return uint64(k)*h.m.span + off, true
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// Free routes the offset back to its owning instance.
func (h *Handle) Free(offset uint64) {
	k, local := h.m.route(offset)
	h.subs[k].Free(local)
	h.stats.Frees++
}

// Stats returns this handle's routing counters (per-instance work is
// accounted in the sub-handles and aggregated by Multi.Stats).
func (h *Handle) Stats() *alloc.Stats { return &h.stats }
