package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// synth builds a synthetic cell.
func synth(wl, allocator string, size uint64, threads int, seconds float64) Cell {
	return Cell{
		Result: workload.Result{
			Workload:  wl,
			Allocator: allocator,
			Size:      size,
			Threads:   threads,
			Elapsed:   time.Duration(seconds * float64(time.Second)),
			Ops:       uint64(1e6),
		},
		Summary: stats.Summarize([]float64{seconds}),
	}
}

func figureForTest() Figure {
	return Figure{
		ID:     8,
		Metric: MetricSeconds,
		Sweeps: []Sweep{{
			Workload:   "linux-scalability",
			Allocators: []string{"1lvl-nb", "1lvl-sl"},
			Threads:    []int{4, 32},
			Sizes:      []uint64{8},
		}},
	}
}

func TestClaimsPassOnPaperShape(t *testing.T) {
	f := figureForTest()
	cells := []Cell{
		synth("linux-scalability", "1lvl-nb", 8, 4, 0.40),
		synth("linux-scalability", "1lvl-nb", 8, 32, 0.06), // scales
		synth("linux-scalability", "1lvl-sl", 8, 4, 0.15),
		synth("linux-scalability", "1lvl-sl", 8, 32, 0.14), // flat
	}
	results := EvaluateShape(f, cells)
	if len(results) != 3 {
		t.Fatalf("got %d claims, want 3", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("claim %q failed on paper-shaped data: %s", r.Claim, r.Detail)
		}
	}
}

func TestClaimsFailOnInvertedShape(t *testing.T) {
	f := figureForTest()
	cells := []Cell{
		synth("linux-scalability", "1lvl-nb", 8, 4, 0.10),
		synth("linux-scalability", "1lvl-nb", 8, 32, 0.50), // anti-scales
		synth("linux-scalability", "1lvl-sl", 8, 4, 0.20),
		synth("linux-scalability", "1lvl-sl", 8, 32, 0.05), // lock "scales"
	}
	results := EvaluateShape(f, cells)
	failed := 0
	for _, r := range results {
		if !r.OK {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("%d claims failed on inverted data, want all 3", failed)
	}
}

func TestClaimsThroughputDirection(t *testing.T) {
	f := Figure{
		ID:     10,
		Metric: MetricKOps,
		Sweeps: []Sweep{{
			Workload:   "larson",
			Allocators: []string{"4lvl-nb", "buddy-sl"},
			Threads:    []int{4, 32},
			Sizes:      []uint64{8},
		}},
	}
	mk := func(allocator string, threads int, kops float64) Cell {
		c := synth("larson", allocator, 8, threads, 1.0)
		c.Ops = uint64(kops * 1e3) // 1-second window: ops = KOps*1e3
		return c
	}
	cells := []Cell{
		mk("4lvl-nb", 4, 2000), mk("4lvl-nb", 32, 20000), // rises
		mk("buddy-sl", 4, 2000), mk("buddy-sl", 32, 2100), // flat
	}
	for _, r := range EvaluateShape(f, cells) {
		if !r.OK {
			t.Errorf("claim %q failed: %s", r.Claim, r.Detail)
		}
	}
}

func TestReportClaims(t *testing.T) {
	var buf bytes.Buffer
	failed := ReportClaims(&buf, []ClaimResult{
		{Figure: 8, Panel: "p", Claim: "c1", OK: true, Detail: "d"},
		{Figure: 8, Panel: "p", Claim: "c2", OK: false, Detail: "d"},
	})
	if failed != 1 {
		t.Fatalf("failed = %d, want 1", failed)
	}
	out := buf.String()
	if !strings.Contains(out, "[PASS]") || !strings.Contains(out, "[FAIL]") {
		t.Fatalf("report missing statuses:\n%s", out)
	}
}
