// Package core implements the paper's primary contribution: the 1-level
// non-blocking buddy system (paper §III.A-C, Algorithms 1-4, evaluation
// label "1lvl-nb").
//
// State is a static complete binary tree stored in an array with the root
// at index 1. Every node carries five status bits (see internal/status),
// packed one byte per node into 64-bit atomic words: node n's byte is
// lane n&7 of tree[n>>3]. Every mutation is a single-word CAS on the
// containing word that rewrites only the node's lane; an operation that
// loses a CAS race either retries the same climb step (when the update
// remains coherent — including a loss purely to traffic on sibling lanes
// of the word) or aborts and moves to another node (when a conflicting
// allocation reserved the chunk). No thread ever blocks another: the
// algorithm is lock-free (paper appendix, Theorem A.1).
//
// The packed layout exists for the NBALLOC level scan: one atomic 64-bit
// load yields eight node statuses and a SWAR free-byte trick finds the
// first free candidate, so scanning an occupied run costs one load per
// eight nodes instead of one per node (see status.FirstFreeLane). The
// array-embedded heap shape keeps every level word-pure: levels of width
// >= 8 start on word boundaries, narrower ones share word 0 (see
// internal/geometry/words.go).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/status"
)

func init() {
	alloc.Register("1lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		return NewFromConfig(cfg)
	})
}

// Allocator is a single non-blocking buddy-system instance.
type Allocator struct {
	geo geometry.Geometry
	// tree holds the packed status bytes: node n's five status bits live
	// in lane geometry.LaneOf(n) of tree[geometry.WordIndex(n)]. Lane 0 of
	// word 0 is the unused node index 0, so node arithmetic matches the
	// paper (root at 1).
	tree []atomic.Uint64
	// index maps allocation-unit slots (offset/MinSize) to the tree node
	// that served the allocation starting there; 0 means "not delivered",
	// which is what makes double frees detectable.
	index []atomic.Uint32
	// scatter disables the scattered scan start when false (ablation A2).
	scatter bool

	mu      sync.Mutex
	handles []*Handle
	closed  alloc.Stats // retained counters of closed handles
	nextID  uint64
	pool    sync.Pool
}

// Option tweaks allocator construction.
type Option func(*Allocator)

// WithoutScatter makes every allocation scan its target level from the
// first node, the configuration the scattered-start ablation compares
// against.
func WithoutScatter() Option { return func(a *Allocator) { a.scatter = false } }

// New builds an instance managing total bytes with the given allocation
// unit and maximum request size (all powers of two).
func New(total, minSize, maxSize uint64, opts ...Option) (*Allocator, error) {
	geo, err := geometry.New(total, minSize, maxSize)
	if err != nil {
		return nil, err
	}
	return NewWithGeometry(geo, opts...), nil
}

// NewFromConfig adapts New to the registry factory signature.
func NewFromConfig(cfg alloc.Config) (*Allocator, error) {
	return New(cfg.Total, cfg.MinSize, cfg.MaxSize)
}

// NewWithGeometry builds an instance from an already-validated geometry.
func NewWithGeometry(geo geometry.Geometry, opts ...Option) *Allocator {
	if geo.Depth > 31 {
		panic(fmt.Sprintf("core: depth %d exceeds the uint32 node-index range", geo.Depth))
	}
	a := &Allocator{
		geo:     geo,
		tree:    make([]atomic.Uint64, geo.StatusWords()),
		index:   make([]atomic.Uint32, geo.Leaves()),
		scatter: true,
	}
	for _, o := range opts {
		o(a)
	}
	a.pool.New = func() any { return a.NewHandle() }
	return a
}

// statusWord returns the packed word holding node n's status byte and
// n's lane within it.
func (a *Allocator) statusWord(n uint64) (*atomic.Uint64, int) {
	return &a.tree[geometry.WordIndex(n)], geometry.LaneOf(n)
}

// rawStatus returns node n's status byte — the single-node view of the
// packed tree used by tests and quiescent diagnostics.
func (a *Allocator) rawStatus(n uint64) uint32 {
	w, lane := a.statusWord(n)
	return status.Field(w.Load(), lane)
}

// setRawStatus overwrites node n's status byte, preserving sibling lanes.
// Quiescent use only (Scrub, tests).
func (a *Allocator) setRawStatus(n uint64, val uint32) {
	w, lane := a.statusWord(n)
	for {
		cur := w.Load()
		if w.CompareAndSwap(cur, status.WithField(cur, lane, val)) {
			return
		}
	}
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "1lvl-nb" }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// Alloc serves a one-off request through a pooled handle. Hot loops should
// use NewHandle instead.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	h := a.pool.Get().(*Handle)
	off, ok := h.Alloc(size)
	a.pool.Put(h)
	return off, ok
}

// Free releases a chunk through a pooled handle.
func (a *Allocator) Free(offset uint64) {
	h := a.pool.Get().(*Handle)
	h.Free(offset)
	a.pool.Put(h)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle { return a.newHandle() }

func (a *Allocator) newHandle() *Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a, id: a.nextID}
	a.nextID++
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.closed
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator (not safe for concurrent
// use). It carries the scattered scan start that spreads concurrent
// same-level allocations over different nodes, and private counters.
type Handle struct {
	a      *Allocator
	id     uint64
	seq    uint64
	stats  alloc.Stats
	closed bool
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: fold this handle's counters into
// the allocator's retained totals and unregister it, so handle-churning
// callers do not grow the registry without bound. The handle must not be
// used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.closed.Add(h.stats)
	a.mu.Unlock()
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// scatterSlot picks the slot within a level where this handle starts
// scanning — the paper's "starting from scattered points" refinement.
// Multiplying the handle id by the 64-bit golden ratio and keeping the
// top bits spreads any number of handles evenly across the level, and the
// per-handle sequence rotates the start between allocations so a handle
// does not re-walk its own previously delivered (still live) run of nodes
// on every call.
func (h *Handle) scatterSlot(level int) uint64 {
	if !h.a.scatter || level == 0 {
		return 0
	}
	base := (h.id * 0x9E3779B97F4A7C15) >> uint(64-level)
	return (base + h.seq) & (geometry.LevelWidth(level) - 1)
}

// Alloc is the paper's NBALLOC (Algorithm 1). It identifies the target
// level for the request, then scans that level for a free node and tries
// to reserve it with TryAlloc; when TryAlloc fails because of an occupied
// ancestor it skips the whole subtree of the conflicting node (lines
// A18-A19) before probing further.
//
// The scan is a SWAR pass over the packed words: each loaded word answers
// eight nodes at once, with status.FirstFreeLane locating the first free
// candidate in the word and the subtree-skip arithmetic layered on top.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return 0, false
	}
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1 // one past the last node of the level
	h.seq++
	start := base + h.scatterSlot(level)

	// Scan [start, end) and then wrap to [base, start): two linear passes
	// keep the subtree-skip arithmetic identical to the paper's.
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		for i := lo; i < hi; {
			w := h.a.tree[geometry.WordIndex(i)].Load()
			lane := status.FirstFreeLane(w, geometry.LaneOf(i))
			cand := i&^7 + uint64(lane)
			if lane == status.LanesPerWord || cand >= hi {
				// No candidate left in this word (cand is then the next
				// word's start) or the first one is past the pass bound.
				i = cand
				continue
			}
			failedAt := h.tryAlloc(cand, w)
			if failedAt == 0 {
				offset := geo.OffsetOf(cand)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(cand))
				h.stats.Allocs++
				return offset, true
			}
			// The allocation lost to a chunk reserved at failedAt: every
			// descendant of failedAt at this level is equally taken, so
			// jump past the whole subtree.
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= cand {
				next = cand + 1
			}
			i = next
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// tryAlloc is the paper's TRYALLOC (Algorithm 2). It reserves node n with
// a CAS of its lane from the all-clear state to BUSY, then climbs to the
// max level marking each ancestor's branch as occupied (and clearing its
// coalescing bit, so racing releases notice the branch was reused). It
// returns 0 on success or the index of the node that made the allocation
// fail; in the failure case all updates performed by the climb are rolled
// back through freeNode before returning.
//
// A CAS lost purely to traffic on sibling lanes of the containing word is
// retried after re-reading, since the node's own lane is re-validated
// each attempt — the step stays coherent exactly as in the unpacked
// algorithm. scanned is the caller's already-loaded value of n's word,
// seeding the first reservation attempt so the hot path issues no
// redundant atomic load.
func (h *Handle) tryAlloc(n, scanned uint64) uint64 {
	word, lane := h.a.statusWord(n)
	for w := scanned; ; w = word.Load() {
		if status.Field(w, lane) != 0 {
			// Not exactly clear: occupied, or a pending coalescing bit —
			// both fail the reservation, as the 1-word CAS(0, BUSY) did.
			return n
		}
		h.stats.RMW++
		if word.CompareAndSwap(w, status.WithField(w, lane, status.Busy)) {
			break
		}
		h.stats.CASFail++
	}
	maxLevel := h.a.geo.MaxLevel
	current := n
	for geometry.LevelOf(current) > maxLevel {
		child := current
		current = geometry.Parent(current)
		ancWord, ancLane := h.a.statusWord(current)
		for {
			w := ancWord.Load()
			if status.OccLane(w, ancLane) {
				// An ancestor is fully reserved by another allocation:
				// this chunk cannot be fragmented. Roll back what the
				// climb marked so far and report the conflict point.
				h.freeNode(n, geometry.LevelOf(child))
				return current
			}
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, status.MarkLane(w, ancLane, child)) {
				break
			}
			// A concurrent operation changed this node's other bits or a
			// sibling lane; the marking is still coherent, so re-read and
			// retry the step.
			h.stats.CASFail++
		}
	}
	return 0
}

// Free is the paper's NBFREE (Algorithm 3): it recovers the node that
// served the offset from index[] and runs the three-phase release up to
// the max level. Freeing an offset that is not currently delivered (a
// double free or a foreign pointer) panics, mirroring the abort-on-misuse
// convention of production allocators.
func (h *Handle) Free(offset uint64) {
	slot := h.a.geo.UnitIndex(offset)
	if offset >= h.a.geo.Total || offset%h.a.geo.MinSize != 0 {
		panic(fmt.Sprintf("core: Free(%#x): offset outside the managed region or unaligned", offset))
	}
	n := h.a.index[slot].Swap(0)
	if n == 0 {
		panic(fmt.Sprintf("core: Free(%#x): offset not currently allocated (double free?)", offset))
	}
	h.freeNode(uint64(n), h.a.geo.MaxLevel)
	h.stats.Frees++
}

// freeNode is the paper's FREENODE (Algorithm 3). upperBound is the LEVEL
// the release must propagate to: MaxLevel for a real free, or the level of
// the last node marked by an aborted TryAlloc climb for a rollback.
//
// Phase 1 marks the climb path as coalescing so racing operations know a
// release is in flight; it stops early at a node whose other branch is
// occupied (and not itself coalescing), because the merge cannot proceed
// past a fragmented buddy. Phase 2 clears the released node's lane — the
// unpacked algorithm's plain store becomes a sub-word CAS loop because
// sibling lanes of the word may be mutating concurrently and must not be
// clobbered. Phase 3 (unmark) walks the same path clearing the coalescing
// and occupancy bits, unless a racing allocation already reused the
// branch.
func (h *Handle) freeNode(n uint64, upperBound int) {
	// Phase 1: flag the path as coalescing (lines F2-F18). Setting one
	// bit would be a natural atomic Or — but the value-returning
	// atomic.Uint64.Or/And intrinsics miscompile this climb shape on
	// go1.24.0/amd64 (a register holding a live pointer gets clobbered;
	// reproduced standalone), so the mark stays a CAS loop. Skipping the
	// RMW when the bit is already set is safe: the loaded word is then
	// exactly the witness an Or would have returned.
	runner := n
	current := geometry.Parent(n)
	for geometry.LevelOf(runner) > upperBound {
		ancWord, ancLane := h.a.statusWord(current)
		coal := status.ShiftToLane(status.CoalBit(runner), ancLane)
		var witnessed uint64
		for {
			w := ancWord.Load()
			witnessed = w
			if w&coal != 0 {
				break
			}
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, w|coal) {
				break
			}
			h.stats.CASFail++
		}
		if status.OccBuddyLane(witnessed, ancLane, runner) && !status.CoalBuddyLane(witnessed, ancLane, runner) {
			// The buddy subtree is occupied: the release cannot merge past
			// this node, so the climb is arrested here (paper Figure 4).
			break
		}
		runner = current
		current = geometry.Parent(current)
	}

	// Phase 2: release the node itself (line F19): clear just this node's
	// lane, leaving concurrent sibling-lane updates untouched.
	nWord, nLane := h.a.statusWord(n)
	for {
		w := nWord.Load()
		h.stats.RMW++
		if nWord.CompareAndSwap(w, status.WithField(w, nLane, 0)) {
			break
		}
		h.stats.CASFail++
	}

	// Phase 3: propagate the release towards the upper bound (Algorithm 4).
	if geometry.LevelOf(n) != upperBound {
		h.unmark(n, upperBound)
	}
}

// unmark is the paper's UNMARK (Algorithm 4): climb from n towards the
// upper bound clearing the coalescing and occupancy bits of the branch
// being left. If the coalescing bit of a node is found already cleared, a
// concurrent operation took over the branch (an allocation reused it, or
// another release already cleaned it) and the climb stops; if the buddy of
// the branch is occupied the merge cannot continue upward either.
func (h *Handle) unmark(n uint64, upperBound int) {
	current := n
	for {
		child := current
		current = geometry.Parent(current)
		ancWord, ancLane := h.a.statusWord(current)
		var updated uint64
		for {
			w := ancWord.Load()
			if !status.CoalLane(w, ancLane, child) {
				return
			}
			updated = status.UnmarkLane(w, ancLane, child)
			h.stats.RMW++
			if ancWord.CompareAndSwap(w, updated) {
				break
			}
			h.stats.CASFail++
		}
		if geometry.LevelOf(current) <= upperBound || status.OccBuddyLane(updated, ancLane, child) {
			return
		}
	}
}
