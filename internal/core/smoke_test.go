package core

import (
	"sync"
	"testing"

	"repro/internal/geometry"
	"repro/internal/status"
)

func mustNew(t testing.TB, total, minSize, maxSize uint64, opts ...Option) *Allocator {
	t.Helper()
	a, err := New(total, minSize, maxSize, opts...)
	if err != nil {
		t.Fatalf("New(%d,%d,%d): %v", total, minSize, maxSize, err)
	}
	return a
}

func TestSequentialAllocFreeReuse(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024)
	seen := map[uint64]bool{}
	var offs []uint64
	for i := 0; i < 128; i++ {
		off, ok := a.Alloc(8)
		if !ok {
			t.Fatalf("alloc %d failed with free memory", i)
		}
		if seen[off] {
			t.Fatalf("alloc %d returned already-delivered offset %d", i, off)
		}
		seen[off] = true
		offs = append(offs, off)
	}
	if _, ok := a.Alloc(8); ok {
		t.Fatal("alloc succeeded on an exhausted instance")
	}
	for _, off := range offs {
		a.Free(off)
	}
	// After releasing everything the full region must be allocatable again.
	if off, ok := a.Alloc(1024); !ok || off != 0 {
		t.Fatalf("whole-region alloc after drain = (%d,%v), want (0,true)", off, ok)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024)
	small, ok := a.Alloc(8)
	if !ok {
		t.Fatal("small alloc failed")
	}
	// The 512-byte half not containing the 8-byte chunk must be available.
	big, ok := a.Alloc(512)
	if !ok {
		t.Fatal("half-region alloc failed alongside a small chunk")
	}
	if (small < 512) == (big < 512) {
		t.Fatalf("overlapping halves: small=%d big=%d", small, big)
	}
	// But the full region must not be.
	if _, ok := a.Alloc(1024); ok {
		t.Fatal("whole-region alloc succeeded while fragmented")
	}
	a.Free(small)
	a.Free(big)
	if _, ok := a.Alloc(1024); !ok {
		t.Fatal("whole-region alloc failed after coalescing")
	}
}

func TestQuiescentTreeClean(t *testing.T) {
	a := mustNew(t, 4096, 8, 4096)
	var offs []uint64
	for _, size := range []uint64{8, 16, 64, 8, 256, 32} {
		off, ok := a.Alloc(size)
		if !ok {
			t.Fatalf("alloc(%d) failed", size)
		}
		offs = append(offs, off)
	}
	for _, off := range offs {
		a.Free(off)
	}
	for n := uint64(1); n < a.geo.Nodes(); n++ {
		if v := a.rawStatus(n); v != 0 {
			t.Fatalf("node %d (level %d) not clean after drain: %s", n, geometry.LevelOf(n), status.String(v))
		}
	}
}

func TestConcurrentNoOverlap(t *testing.T) {
	const workers = 8
	a := mustNew(t, 1<<20, 8, 1<<14)
	var wg sync.WaitGroup
	allocated := make([][][2]uint64, workers) // per-worker [offset,size) log
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a.NewHandle()
			live := map[uint64]uint64{}
			sizes := []uint64{8, 8, 8, 128, 128, 1024, 1 << 14}
			rng := uint64(w)*2654435761 + 12345
			for i := 0; i < 20000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				if len(live) > 0 && rng%3 == 0 {
					for off := range live {
						h.Free(off)
						delete(live, off)
						break
					}
					continue
				}
				size := sizes[rng%uint64(len(sizes))]
				if off, ok := h.Alloc(size); ok {
					live[off] = size
					allocated[w] = append(allocated[w], [2]uint64{off, size})
				}
			}
			for off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	// Conservative occupied/coalescing residue on interior nodes is a
	// documented property of racing releases (the unmark climb stops
	// early), but a stale OCC bit would be a real leak: OCC is only ever
	// cleared by the owner's release, which all completed above.
	residue := 0
	for n := uint64(1); n < a.geo.Nodes(); n++ {
		v := a.rawStatus(n)
		if status.IsOcc(v) {
			t.Fatalf("node %d (level %d) still OCC after concurrent drain: %s", n, geometry.LevelOf(n), status.String(v))
		}
		if v != 0 {
			residue++
		}
	}
	if a.LiveNodes() != 0 {
		t.Fatalf("%d live index entries after drain", a.LiveNodes())
	}
	t.Logf("benign residue on %d nodes after drain", residue)
	// Scrub must restore a pristine tree on a drained instance.
	a.Scrub()
	for n := uint64(1); n < a.geo.Nodes(); n++ {
		if v := a.rawStatus(n); v != 0 {
			t.Fatalf("node %d not clean after Scrub: %s", n, status.String(v))
		}
	}
	if _, ok := a.Alloc(1 << 14); !ok {
		t.Fatal("max-size alloc failed after drain and Scrub")
	}
}
