package mem_test

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
)

// TestInjectedLifecycleFailures drives each fault site through a Region
// and pins the degradation contract: a failed transition leaves the
// window in its prior state, is counted, and a clean retry succeeds.
func TestInjectedLifecycleFailures(t *testing.T) {
	const winSize = 1 << 16

	for _, tc := range []struct {
		name string
		rule fault.Rule
		run  func(t *testing.T, r *mem.Region, in *fault.Injector)
	}{
		{
			name: "commit failure leaves window reserved, retry succeeds",
			rule: fault.FailNth(fault.Commit, 1, syscall.ENOMEM),
			run: func(t *testing.T, r *mem.Region, in *fault.Injector) {
				err := r.Commit(0)
				if !errors.Is(err, syscall.ENOMEM) {
					t.Fatalf("Commit = %v, want ENOMEM", err)
				}
				if r.Committed(0) {
					t.Fatal("failed commit left the window committed")
				}
				if s := r.Stats(); s.CommitFails != 1 || s.Commits != 0 || s.CommittedBytes != 0 {
					t.Fatalf("stats after failed commit: %+v", s)
				}
				if err := r.Commit(0); err != nil {
					t.Fatalf("retry after Nth-commit fault: %v", err)
				}
				if !r.Committed(0) {
					t.Fatal("retry did not commit")
				}
			},
		},
		{
			name: "decommit failure keeps window committed, clears and retires",
			rule: fault.FailAlways(fault.Decommit, syscall.EAGAIN),
			run: func(t *testing.T, r *mem.Region, in *fault.Injector) {
				if err := r.Commit(0); err != nil {
					t.Fatal(err)
				}
				err := r.Decommit(0)
				if !errors.Is(err, syscall.EAGAIN) {
					t.Fatalf("Decommit = %v, want EAGAIN", err)
				}
				if !r.Committed(0) {
					t.Fatal("failed decommit flipped the window to decommitted")
				}
				if s := r.Stats(); s.DecommitFails != 1 || s.Decommits != 0 || s.CommittedBytes != winSize {
					t.Fatalf("stats after failed decommit: %+v", s)
				}
				// The window stayed usable through the failure.
				r.Window(0)[0] = 1
				in.Clear()
				if err := r.Decommit(0); err != nil {
					t.Fatalf("decommit after schedule cleared: %v", err)
				}
				if r.Committed(0) {
					t.Fatal("decommit after recovery did not take")
				}
			},
		},
		{
			name: "bind failure is counted, commit proceeds",
			rule: fault.FailAlways(fault.Bind, syscall.EPERM),
			run: func(t *testing.T, r *mem.Region, in *fault.Injector) {
				if err := r.Commit(0); err != nil {
					t.Fatalf("bind failure must not fail the commit: %v", err)
				}
				if s := r.Stats(); s.BindFailures != 1 || s.Commits != 1 {
					t.Fatalf("stats after bind fault: %+v", s)
				}
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := fault.New(1, tc.rule)
			opts := []mem.Option{mem.WithFaultInjector(in)}
			if tc.rule.Site == fault.Bind {
				opts = append(opts, mem.WithNUMAPolicy())
			}
			r, err := mem.New(winSize, 1, opts...)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()
			if got := r.Injector(); got != in {
				t.Fatal("Injector() does not return the installed injector")
			}
			tc.run(t, r, in)
		})
	}
}

// TestInjectedHugeFallback pins the first rung of the degradation
// ladder: a hugepage-advise fault demotes the window to 4KiB pages —
// counted, never an error.
func TestInjectedHugeFallback(t *testing.T) {
	in := fault.New(1, fault.FailAlways(fault.Huge, syscall.EINVAL))
	r, err := mem.New(mem.HugePageSize, 2, mem.WithHugePages(), mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if !r.HugePages() {
		t.Skip("hugepage advise not active on this configuration")
	}
	for k := 0; k < 2; k++ {
		if err := r.Commit(k); err != nil {
			t.Fatalf("hugepage fallback must not fail Commit(%d): %v", k, err)
		}
		// The demoted window is still fully usable.
		b := r.Window(k)
		b[0], b[len(b)-1] = 1, 1
	}
	s := r.Stats()
	if s.HugeFallbacks != 2 || s.Commits != 2 || s.CommitFails != 0 {
		t.Fatalf("stats after hugepage faults: %+v", s)
	}
}

// TestInjectedReserveFailure pins that Ensure surfaces a reserve fault
// without growing the region, and that New propagates it.
func TestInjectedReserveFailure(t *testing.T) {
	in := fault.New(1, fault.FailNth(fault.Reserve, 2, syscall.ENOMEM))
	r, err := mem.New(1<<16, 1, mem.WithFaultInjector(in))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if err := r.Ensure(3); !errors.Is(err, syscall.ENOMEM) {
		t.Fatalf("Ensure under reserve fault = %v, want ENOMEM", err)
	}
	if got := r.Windows(); got != 1 {
		t.Fatalf("failed Ensure left %d windows, want 1", got)
	}
	if s := r.Stats(); s.ReserveFails != 1 {
		t.Fatalf("stats after reserve fault: %+v", s)
	}
	// The schedule has passed its Nth call; the same Ensure now succeeds.
	if err := r.Ensure(3); err != nil {
		t.Fatalf("Ensure retry: %v", err)
	}

	if _, err := mem.New(1<<16, 1, mem.WithFaultInjector(
		fault.New(1, fault.FailNth(fault.Reserve, 1, syscall.ENOMEM)))); err == nil {
		t.Fatal("New must propagate a reserve fault")
	}
}

// TestProbabilisticScheduleReplays runs a seeded probabilistic schedule
// against a region, then replays its record against a fresh region and
// requires the identical outcome sequence — the incident-artifact
// contract end to end through real call sites.
func TestProbabilisticScheduleReplays(t *testing.T) {
	drive := func(in *fault.Injector) []bool {
		r, err := mem.New(1<<16, 4, mem.WithFaultInjector(in))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Release()
		var out []bool
		for pass := 0; pass < 16; pass++ {
			for k := 0; k < 4; k++ {
				out = append(out, r.Commit(k) != nil)
			}
			for k := 0; k < 4; k++ {
				out = append(out, r.Decommit(k) != nil)
			}
		}
		return out
	}

	in := fault.New(99,
		fault.FailProb(fault.Commit, 0.25, syscall.ENOMEM),
		fault.FailProb(fault.Decommit, 0.25, syscall.EAGAIN))
	first := drive(in)
	rec := in.Record()
	if len(rec) == 0 {
		t.Fatal("probabilistic schedule injected nothing over 128 calls")
	}
	second := drive(fault.Replay(rec))
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at lifecycle call %d", i)
		}
	}
}
