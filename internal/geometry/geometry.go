// Package geometry implements the tree geometry of an array-embedded buddy
// system: level arithmetic, the index/size/address correspondence of paper
// equations (1)-(3), and the bunch-leaf layout used by the 4-level
// optimization (paper §III.D).
//
// Conventions (matching the paper): the tree is a static complete binary
// tree stored in an array with the root at index 1; the left child of node
// n is 2n and the right child is 2n+1. The root is level 0 and levels grow
// downward, so the tree leaves (allocation units) live at level Depth.
package geometry

import (
	"fmt"
	"math/bits"
)

// Geometry describes one buddy-system instance: the managed region size and
// the derived tree shape. All sizes are powers of two.
type Geometry struct {
	// Total is the number of bytes managed by the instance.
	Total uint64
	// MinSize is the allocation unit: the size of a tree leaf. Requests
	// smaller than MinSize are rounded up to it.
	MinSize uint64
	// MaxSize is the largest size servable by a single allocation.
	MaxSize uint64
	// Depth is the level of the leaves: Total/2^Depth == MinSize.
	Depth int
	// MaxLevel is the shallowest level that allocations may target:
	// Total/2^MaxLevel == MaxSize. It is the destination of every climb.
	MaxLevel int
}

// New validates the configuration and derives the tree shape.
func New(total, minSize, maxSize uint64) (Geometry, error) {
	switch {
	case total == 0 || !isPow2(total):
		return Geometry{}, fmt.Errorf("geometry: total %d is not a positive power of two", total)
	case minSize == 0 || !isPow2(minSize):
		return Geometry{}, fmt.Errorf("geometry: min size %d is not a positive power of two", minSize)
	case maxSize == 0 || !isPow2(maxSize):
		return Geometry{}, fmt.Errorf("geometry: max size %d is not a positive power of two", maxSize)
	case minSize > total:
		return Geometry{}, fmt.Errorf("geometry: min size %d exceeds total %d", minSize, total)
	case maxSize > total:
		return Geometry{}, fmt.Errorf("geometry: max size %d exceeds total %d", maxSize, total)
	case maxSize < minSize:
		return Geometry{}, fmt.Errorf("geometry: max size %d below min size %d", maxSize, minSize)
	}
	g := Geometry{
		Total:    total,
		MinSize:  minSize,
		MaxSize:  maxSize,
		Depth:    log2(total) - log2(minSize),
		MaxLevel: log2(total) - log2(maxSize),
	}
	return g, nil
}

// MustNew is New for statically-known-good configurations.
func MustNew(total, minSize, maxSize uint64) Geometry {
	g, err := New(total, minSize, maxSize)
	if err != nil {
		panic(err)
	}
	return g
}

// Nodes returns the length of the tree array: 2^(Depth+1), of which
// indexes [1, 2^(Depth+1)-1] are valid nodes (index 0 is unused).
func (g Geometry) Nodes() uint64 { return 1 << (g.Depth + 1) }

// Leaves returns the number of allocation units (leaves), Total/MinSize.
func (g Geometry) Leaves() uint64 { return 1 << g.Depth }

// LevelOf returns the level of node n — paper equation (1):
// level(n) = floor(log2(n)).
func LevelOf(n uint64) int { return bits.Len64(n) - 1 }

// FirstOfLevel returns the index of the first node of a level.
func FirstOfLevel(level int) uint64 { return 1 << level }

// LevelWidth returns the number of nodes at a level.
func LevelWidth(level int) uint64 { return 1 << level }

// SizeOfLevel returns the chunk size managed by nodes of a level —
// paper equation (2): size(n) = Total / 2^level(n).
func (g Geometry) SizeOfLevel(level int) uint64 { return g.Total >> level }

// SizeOf returns the chunk size managed by node n.
func (g Geometry) SizeOf(n uint64) uint64 { return g.SizeOfLevel(LevelOf(n)) }

// OffsetOf returns the starting offset of node n's chunk relative to the
// base address — paper equation (3):
// starting(n) = base + (n - 2^level(n)) * size(n).
func (g Geometry) OffsetOf(n uint64) uint64 {
	level := LevelOf(n)
	return (n - FirstOfLevel(level)) * g.SizeOfLevel(level)
}

// NodeAt is the inverse of OffsetOf for a given level: it returns the node
// index whose chunk starts at offset within that level.
func (g Geometry) NodeAt(level int, offset uint64) uint64 {
	return FirstOfLevel(level) + offset/g.SizeOfLevel(level)
}

// UnitIndex returns the allocation-unit slot of an offset: offset/MinSize.
// This is the subscript used by the paper's index[] array.
func (g Geometry) UnitIndex(offset uint64) uint64 { return offset / g.MinSize }

// LevelForSize maps a request size to the target level, rounding the
// request up to the next managed size: level = floor(log2(Total/size)),
// upper-bounded by Depth (paper line A5-A8). Sizes below MinSize round to
// the allocation unit; the caller must reject size > MaxSize beforehand.
func (g Geometry) LevelForSize(size uint64) int {
	if size <= g.MinSize {
		return g.Depth
	}
	level := log2(g.Total) - ceilLog2(size)
	if level > g.Depth {
		level = g.Depth
	}
	if level < g.MaxLevel {
		level = g.MaxLevel
	}
	return level
}

// Parent, Left, Right, Sibling navigate the array-embedded tree.
func Parent(n uint64) uint64  { return n >> 1 }
func Left(n uint64) uint64    { return n << 1 }
func Right(n uint64) uint64   { return n<<1 | 1 }
func Sibling(n uint64) uint64 { return n ^ 1 }

// IsLeftChild reports whether n is the left child of its parent. With the
// root at index 1, left children have even indexes.
func IsLeftChild(n uint64) bool { return n&1 == 0 }

// AncestorAt returns n's ancestor at the given (shallower or equal) level.
func AncestorAt(n uint64, fromLevel, toLevel int) uint64 {
	return n >> uint(fromLevel-toLevel)
}

func isPow2(v uint64) bool { return v&(v-1) == 0 }

func log2(v uint64) int { return bits.Len64(v) - 1 }

func ceilLog2(v uint64) int {
	l := log2(v)
	if v&(v-1) != 0 {
		l++
	}
	return l
}
