// Package harness runs the paper's experiments: it sweeps a workload over
// allocator variants, thread counts and request sizes, building a fresh
// single-instance allocator for every cell exactly as the evaluation does,
// and renders the resulting series as text tables, CSV, or gnuplot-ready
// columns.
package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/alloc"
	"repro/internal/slab"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Sweep describes one experiment grid.
type Sweep struct {
	// Workload is a key of workload.Drivers.
	Workload string
	// Allocators are registry labels, in presentation order.
	Allocators []string
	// Threads and Sizes span the grid.
	Threads []int
	Sizes   []uint64
	// Instance is the allocator geometry every cell is built with.
	Instance alloc.Config
	// Scale multiplies the paper's iteration counts (1.0 = paper volume).
	Scale float64
	// Reps repeats each cell; the mean is reported.
	Reps int
	// Seed feeds the workload RNGs.
	Seed int64
	// Procs, when positive, pins GOMAXPROCS for the whole sweep —
	// allocator builds included, so GOMAXPROCS-derived construction
	// parameters (shard counts, conv-pool widths) see the same value the
	// workload runs under — and stamps every cell with it. 0 leaves the
	// runtime untouched and the cells unstamped.
	Procs int
	// Latency wraps every cell's allocator in one top-level telemetry
	// probe and reports sampled single-op Alloc/Free percentiles
	// (p50/p99/p999) per cell — tail latency is the metric a non-blocking
	// allocator exists to win, so the trajectory tracks it alongside
	// throughput. Batch operations are excluded: a whole-batch latency
	// is a different unit and would skew the tail.
	Latency bool
}

// Cell is one measured grid point.
type Cell struct {
	workload.Result
	Summary stats.Summary // seconds across reps
	// Procs is the GOMAXPROCS the cell ran under (0 = whatever the
	// process default was; only -procs sweeps stamp it).
	Procs int
	// SlabCutoff is the size-class slab cutoff of the allocator the cell
	// ran on (0 = no slab layer in the stack). Part of the cell identity:
	// the same label measured with a different class table is a different
	// grid point.
	SlabCutoff uint64
	// LatencySamples and Latency are the sampled single-op Alloc/Free
	// latency percentiles pooled across reps; zero when the sweep ran
	// without Latency (the 0-sentinel convention every optional cell
	// field uses).
	LatencySamples uint64
	Latency        telemetry.Percentiles
}

// Run executes the sweep, streaming per-cell progress lines to progress
// (if non-nil) and returning all cells in sweep order.
func (s Sweep) Run(progress io.Writer) ([]Cell, error) {
	driver, ok := workload.Drivers[s.Workload]
	if !ok {
		return nil, fmt.Errorf("harness: unknown workload %q", s.Workload)
	}
	reps := s.Reps
	if reps <= 0 {
		reps = 1
	}
	if s.Procs > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(s.Procs))
	}
	var cells []Cell
	for _, size := range s.Sizes {
		for _, threads := range s.Threads {
			for _, name := range s.Allocators {
				samples := make([]float64, 0, reps)
				var last workload.Result
				var slabCutoff uint64
				var totOps, totFails uint64
				var totElapsed time.Duration
				// One latency series per cell: every rep's probe feeds it,
				// so the percentiles pool across reps like ops do.
				var series *telemetry.Series
				if s.Latency {
					series = telemetry.New(telemetry.Config{}).Series(name)
				}
				for r := 0; r < reps; r++ {
					a, err := alloc.Build(name, s.Instance)
					if err != nil {
						return nil, fmt.Errorf("harness: building %s: %w", name, err)
					}
					if series != nil {
						p, err := telemetry.NewProbe(a, series, 0)
						if err != nil {
							return nil, fmt.Errorf("harness: probing %s: %w", name, err)
						}
						a = p
					}
					cfg := workload.Config{
						Threads: threads,
						Size:    size,
						Scale:   s.Scale,
						Seed:    s.Seed + int64(r),
					}
					if err := cfg.Validate(); err != nil {
						return nil, err
					}
					if sl := slab.Find(a); sl != nil {
						slabCutoff = sl.Cutoff()
					}
					last = driver(a, cfg)
					// Key the cell by the requested registry label: for
					// composed stacks the display name differs (e.g.
					// "cached+multi[4x 4lvl-nb]" vs "cached+multi4+4lvl-nb")
					// and tables match on the sweep's labels.
					last.Allocator = name
					samples = append(samples, last.Elapsed.Seconds())
					totOps += last.Ops
					totFails += last.Fails
					totElapsed += last.Elapsed
				}
				// Pool ops and elapsed across reps so Throughput is the
				// pooled mean, not the last rep's sample.
				last.Ops, last.Fails, last.Elapsed = totOps, totFails, totElapsed
				cell := Cell{Result: last, Summary: stats.Summarize(samples), Procs: s.Procs, SlabCutoff: slabCutoff}
				if series != nil {
					merged := series.Merged()
					var snap telemetry.Snapshot
					snap.Add(&merged[telemetry.OpAlloc])
					snap.Add(&merged[telemetry.OpFree])
					cell.LatencySamples = snap.Total()
					cell.Latency = snap.Percentiles()
				}
				cells = append(cells, cell)
				if progress != nil {
					procNote := ""
					if s.Procs > 0 {
						procNote = fmt.Sprintf(" procs=%-3d", s.Procs)
					}
					latNote := ""
					if cell.LatencySamples > 0 {
						latNote = fmt.Sprintf("  p50=%dns p99=%dns p999=%dns",
							cell.Latency.P50, cell.Latency.P99, cell.Latency.P999)
					}
					fmt.Fprintf(progress, "%-20s %-12s bytes=%-7d threads=%-3d%s %10.3fs %12.0f ops/s%s\n",
						s.Workload, name, size, threads, procNote, cell.Summary.Mean, cell.Throughput(), latNote)
				}
			}
		}
	}
	return cells, nil
}

// Metric selects what a table reports.
type Metric int

const (
	// MetricSeconds reports mean execution time, the unit of the paper's
	// Figures 8, 9 and 11.
	MetricSeconds Metric = iota
	// MetricKOps reports throughput in KOps/sec, the unit of Figure 10.
	MetricKOps
	// MetricCycles reports nominal clock cycles (at 2 GHz), Figure 12's unit.
	MetricCycles
)

func (m Metric) value(c Cell) float64 {
	switch m {
	case MetricKOps:
		return c.Throughput() / 1e3
	case MetricCycles:
		return c.Summary.Mean * 2e9 // nominal 2 GHz, as the paper's testbed
	default:
		return c.Summary.Mean
	}
}

func (m Metric) unit() string {
	switch m {
	case MetricKOps:
		return "KOps/s"
	case MetricCycles:
		return "cycles(2GHz)"
	default:
		return "seconds"
	}
}

// Table renders the cells of one size as a threads x allocators table, the
// shape of one panel of a paper figure.
func Table(w io.Writer, title string, cells []Cell, size uint64, allocators []string, m Metric) {
	fmt.Fprintf(w, "# %s (%s)\n", title, m.unit())
	fmt.Fprintf(w, "%-8s", "threads")
	for _, a := range allocators {
		fmt.Fprintf(w, " %14s", a)
	}
	fmt.Fprintln(w)

	byThread := map[int]map[string]Cell{}
	var threads []int
	for _, c := range cells {
		if c.Size != size {
			continue
		}
		row, ok := byThread[c.Threads]
		if !ok {
			row = map[string]Cell{}
			byThread[c.Threads] = row
			threads = append(threads, c.Threads)
		}
		row[c.Allocator] = c
	}
	sort.Ints(threads)
	for _, t := range threads {
		fmt.Fprintf(w, "%-8d", t)
		for _, a := range allocators {
			if c, ok := byThread[t][a]; ok {
				fmt.Fprintf(w, " %14.4g", m.value(c))
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// CSV renders all cells as comma-separated rows with a header. seconds
// is the per-rep mean while ops/fails are pooled across reps; the reps
// column is what relates the two (ops_per_sec is already the pooled
// ops/elapsed ratio).
func CSV(w io.Writer, cells []Cell) {
	fmt.Fprintln(w, "workload,allocator,bytes,threads,reps,seconds,ops,ops_per_sec,fails,p50_ns,p99_ns,p999_ns")
	for _, c := range cells {
		fmt.Fprintf(w, "%s,%s,%d,%d,%d,%.6f,%d,%.1f,%d,%d,%d,%d\n",
			c.Workload, c.Allocator, c.Size, c.Threads, c.Summary.N, c.Summary.Mean, c.Ops, c.Throughput(), c.Fails,
			c.Latency.P50, c.Latency.P99, c.Latency.P999)
	}
}

// JSONSchema versions the machine-readable report format so trajectory
// tooling can detect incompatible changes. v2 added the optional
// latency percentile fields (lat_samples / p50_ns / p99_ns / p999_ns);
// LoadReport still accepts v1 baselines — the new fields follow the
// 0-sentinel pairing convention, so pre-telemetry cells keep keying and
// diffing against fresh ones.
const JSONSchema = "nbbsbench/v2"

// jsonSchemaV1 is the previous accepted schema (pre-latency reports).
const jsonSchemaV1 = "nbbsbench/v1"

// JSONCell is one grid point of the machine-readable report.
type JSONCell struct {
	Workload   string  `json:"workload"`
	Allocator  string  `json:"allocator"`
	Bytes      uint64  `json:"bytes"`
	Threads    int     `json:"threads"`
	Reps       int     `json:"reps"`
	SecondsAvg float64 `json:"seconds_mean"`
	SecondsMin float64 `json:"seconds_min"`
	SecondsMax float64 `json:"seconds_max"`
	SecondsStd float64 `json:"seconds_std"`
	Ops        uint64  `json:"ops"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	Fails      uint64  `json:"fails"`
	// Procs is the GOMAXPROCS the cell ran under; 0 (omitted) for cells
	// of a plain sweep, which keeps old baselines and fresh standard
	// grids keying identically in trajectory diffs.
	Procs int `json:"procs,omitempty"`
	// ScalingEff is throughput@P / (P * throughput@1) against the same
	// grid point's P=1 cell — 1.0 is perfect scaling. Only stamped on
	// -procs sweep cells whose P=1 companion exists in the same report.
	ScalingEff float64 `json:"scaling_efficiency,omitempty"`
	// SlabCutoff is the slab class cutoff of the stack the cell ran on;
	// 0 (omitted) for slab-less stacks, which keeps pre-slab baselines
	// and fresh slab-less cells keying identically in trajectory diffs —
	// the same sentinel convention as Procs.
	SlabCutoff uint64 `json:"slab_cutoff,omitempty"`
	// LatSamples and the percentile fields are the sampled single-op
	// Alloc/Free latency summary of a -latency sweep; 0 (omitted) when
	// the cell ran without latency probes — not part of the cell key, so
	// v1 baselines and latency-less runs keep pairing, and benchdiff only
	// diffs percentiles when both sides carry them (the Procs/SlabCutoff
	// sentinel convention).
	LatSamples uint64 `json:"lat_samples,omitempty"`
	P50        uint64 `json:"p50_ns,omitempty"`
	P99        uint64 `json:"p99_ns,omitempty"`
	P999       uint64 `json:"p999_ns,omitempty"`
}

// JSONReport is the machine-readable benchmark report emitted by
// `nbbsbench -json` — the format the BENCH_*.json perf-trajectory files
// are committed in, one point per PR.
type JSONReport struct {
	Schema string     `json:"schema"`
	Label  string     `json:"label,omitempty"`
	Cells  []JSONCell `json:"cells"`
}

// Report converts measured cells into a machine-readable report,
// stamping scaling efficiency on -procs sweep cells (see
// JSONCell.ScalingEff).
func Report(label string, cells []Cell) JSONReport {
	rep := JSONReport{Schema: JSONSchema, Label: label}
	base := map[string]float64{} // grid point -> throughput at procs=1
	for _, c := range cells {
		if c.Procs == 1 {
			base[fmt.Sprintf("%s|%s|%d|%d", c.Workload, c.Allocator, c.Size, c.Threads)] = c.Throughput()
		}
	}
	for _, c := range cells {
		jc := JSONCell{
			Workload:   c.Workload,
			Allocator:  c.Allocator,
			Bytes:      c.Size,
			Threads:    c.Threads,
			Reps:       c.Summary.N,
			SecondsAvg: c.Summary.Mean,
			SecondsMin: c.Summary.Min,
			SecondsMax: c.Summary.Max,
			SecondsStd: c.Summary.Std,
			Ops:        c.Ops,
			OpsPerSec:  c.Throughput(),
			Fails:      c.Fails,
			Procs:      c.Procs,
			SlabCutoff: c.SlabCutoff,
			LatSamples: c.LatencySamples,
			P50:        c.Latency.P50,
			P99:        c.Latency.P99,
			P999:       c.Latency.P999,
		}
		if c.Procs > 0 {
			k := fmt.Sprintf("%s|%s|%d|%d", c.Workload, c.Allocator, c.Size, c.Threads)
			if b, ok := base[k]; ok && b > 0 {
				jc.ScalingEff = c.Throughput() / (float64(c.Procs) * b)
			}
		}
		rep.Cells = append(rep.Cells, jc)
	}
	return rep
}

// ScalingTable renders the -procs sweep cells as one row per grid point
// with a "Mops/s (eff)" column per GOMAXPROCS value, where eff is the
// scaling efficiency against the row's procs=1 cell (1.00 = perfect).
// Cells without a Procs stamp are ignored.
func ScalingTable(w io.Writer, cells []Cell) {
	var procs []int
	seenP := map[int]bool{}
	type key struct {
		workload, allocator string
		size                uint64
		threads             int
	}
	rows := map[key]map[int]Cell{}
	var order []key
	for _, c := range cells {
		if c.Procs <= 0 {
			continue
		}
		if !seenP[c.Procs] {
			seenP[c.Procs] = true
			procs = append(procs, c.Procs)
		}
		k := key{c.Workload, c.Allocator, c.Size, c.Threads}
		if rows[k] == nil {
			rows[k] = map[int]Cell{}
			order = append(order, k)
		}
		rows[k][c.Procs] = c
	}
	if len(order) == 0 {
		return
	}
	sort.Ints(procs)
	fmt.Fprintf(w, "# scaling efficiency: Mops/s (throughput@P / P*throughput@1)\n")
	fmt.Fprintf(w, "%-14s %-28s %7s %8s", "workload", "allocator", "bytes", "threads")
	for _, p := range procs {
		fmt.Fprintf(w, " %18s", fmt.Sprintf("procs=%d", p))
	}
	fmt.Fprintln(w)
	for _, k := range order {
		fmt.Fprintf(w, "%-14s %-28s %7d %8d", k.workload, k.allocator, k.size, k.threads)
		baseCell, haveBase := rows[k][1]
		for _, p := range procs {
			c, ok := rows[k][p]
			if !ok {
				fmt.Fprintf(w, " %18s", "-")
				continue
			}
			if haveBase && baseCell.Throughput() > 0 {
				eff := c.Throughput() / (float64(p) * baseCell.Throughput())
				fmt.Fprintf(w, " %18s", fmt.Sprintf("%.2f (%.2f)", c.Throughput()/1e6, eff))
			} else {
				fmt.Fprintf(w, " %18s", fmt.Sprintf("%.2f", c.Throughput()/1e6))
			}
		}
		fmt.Fprintln(w)
	}
}

// JSON renders cells as an indented machine-readable report.
func JSON(w io.Writer, label string, cells []Cell) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report(label, cells))
}

// GnuplotSeries renders one column block per allocator: "threads value"
// pairs separated by blank lines, directly plottable with gnuplot's index.
func GnuplotSeries(w io.Writer, cells []Cell, size uint64, allocators []string, m Metric) {
	for _, a := range allocators {
		fmt.Fprintf(w, "# series %s bytes=%d (%s)\n", a, size, m.unit())
		for _, c := range cells {
			if c.Allocator == a && c.Size == size {
				fmt.Fprintf(w, "%d %g\n", c.Threads, m.value(c))
			}
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
}

// AllocatorsUserSpace is the comparison set of Figures 8-11, in the
// paper's legend order.
var AllocatorsUserSpace = []string{"4lvl-nb", "1lvl-nb", "4lvl-sl", "1lvl-sl", "buddy-sl"}

// AllocatorsKernelStyle is Figure 12's comparison set.
var AllocatorsKernelStyle = []string{"4lvl-nb", "1lvl-nb", "buddy-sl", "linux-buddy"}

// ParseSizes parses a comma-separated size list ("8,128,1024").
func ParseSizes(s string) ([]uint64, error) {
	var out []uint64
	for _, f := range strings.Split(s, ",") {
		var v uint64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil {
			return nil, fmt.Errorf("harness: bad size %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseThreads parses a comma-separated thread list ("4,8,16,24,32").
func ParseThreads(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err != nil {
			return nil, fmt.Errorf("harness: bad thread count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}
