// Package status implements the 5-bit per-node state of the non-blocking
// buddy system (paper §III.A, Figure 1) and the manipulation functions the
// algorithms are written in terms of. The same bit algebra is reused by
// the spin-lock tree baselines and, through the word packing in pack.go,
// by the 4-level bunch layout.
//
// Bit layout (low to high): occupied-right, occupied-left, coalescent-right,
// coalescent-left, occupied.
package status

// Status bit masks, exactly as listed in paper §III.A.
const (
	OccRight  uint32 = 0x1  // right subtree totally or partially occupied
	OccLeft   uint32 = 0x2  // left subtree totally or partially occupied
	CoalRight uint32 = 0x4  // release in progress in the right subtree
	CoalLeft  uint32 = 0x8  // release in progress in the left subtree
	Occ       uint32 = 0x10 // this very node reserved by an allocation
	Busy      uint32 = Occ | OccLeft | OccRight
	Mask      uint32 = 0x1F // all five status bits
)

// The manipulation helpers below take the index of the child from which a
// climb reached the node whose status is val. mod2 of the child index
// distinguishes the branch: with the root at index 1, left children have
// even indexes (mod2 == 0) and right children odd (mod2 == 1), so shifting
// the LEFT mask right by mod2(child) selects the child's branch and
// shifting the RIGHT mask left by mod2(child) selects the buddy's branch.

func mod2(child uint64) uint32 { return uint32(child & 1) }

// CleanCoal clears the coalescing bit of the child's branch.
func CleanCoal(val uint32, child uint64) uint32 {
	return val &^ (CoalLeft >> mod2(child))
}

// Mark sets the occupancy bit of the child's branch.
func Mark(val uint32, child uint64) uint32 {
	return val | (OccLeft >> mod2(child))
}

// Unmark clears both the coalescing and the occupancy bits of the child's
// branch.
func Unmark(val uint32, child uint64) uint32 {
	return val &^ ((OccLeft | CoalLeft) >> mod2(child))
}

// CoalBit returns the coalescing mask of the child's branch (used to OR it
// in during the first phase of FreeNode).
func CoalBit(child uint64) uint32 { return CoalLeft >> mod2(child) }

// IsCoal reports whether the coalescing bit of the child's branch is set.
func IsCoal(val uint32, child uint64) bool {
	return val&(CoalLeft>>mod2(child)) != 0
}

// IsOccBuddy reports whether the occupancy bit of the buddy of child is set.
func IsOccBuddy(val uint32, child uint64) bool {
	return val&(OccRight<<mod2(child)) != 0
}

// IsCoalBuddy reports whether the coalescing bit of the buddy of child is
// set.
func IsCoalBuddy(val uint32, child uint64) bool {
	return val&(CoalRight<<mod2(child)) != 0
}

// IsFree reports whether a node is currently free: neither reserved itself
// nor carrying (partially) occupied subtrees. Pending coalescing bits do
// not make a node busy.
func IsFree(val uint32) bool { return val&Busy == 0 }

// IsOcc reports whether the node itself has been reserved by an allocation.
func IsOcc(val uint32) bool { return val&Occ != 0 }

// String renders a status value for debugging, e.g. "OCC|OL" for 0x12.
func String(val uint32) string {
	if val&Mask == 0 {
		return "free"
	}
	s := ""
	add := func(bit uint32, name string) {
		if val&bit != 0 {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(Occ, "OCC")
	add(OccLeft, "OL")
	add(OccRight, "OR")
	add(CoalLeft, "CL")
	add(CoalRight, "CR")
	return s
}
