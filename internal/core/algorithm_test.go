package core

import (
	"sync"
	"testing"

	"repro/internal/status"
)

// TestTryAllocRollback forces the abort path of TryAlloc: a free-looking
// leaf under a fully occupied ancestor must make the climb hit OCC, roll
// every mark back, and land the allocation in the other half.
func TestTryAllocRollback(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter())
	h := a.newHandle()
	half, ok := h.Alloc(512) // takes node 2 (scatter disabled)
	if !ok || half != 0 {
		t.Fatalf("half alloc = (%d,%v), want (0,true)", half, ok)
	}
	if !status.IsOcc(a.rawStatus(2)) {
		t.Fatal("node 2 not OCC after the 512-byte allocation")
	}
	// Leaves under node 2 still look free: occupancy is not propagated
	// downward (paper §III.A), so the scan will pick leaf 128 and the
	// climb must abort on node 2.
	if !status.IsFree(a.rawStatus(128)) {
		t.Fatal("leaf under an occupied ancestor should look free")
	}
	small, ok := h.Alloc(8)
	if !ok {
		t.Fatal("small alloc failed")
	}
	if small < 512 {
		t.Fatalf("small alloc landed at %d inside the occupied half", small)
	}
	if h.stats.Retries == 0 {
		t.Fatal("no retry recorded: the abort path did not trigger")
	}
	// The aborted climb's path under node 2 must be fully rolled back.
	for _, n := range []uint64{128, 64, 32, 16, 8, 4} {
		if v := a.rawStatus(n); v != 0 {
			t.Fatalf("node %d left dirty after rollback: %s", n, status.String(v))
		}
	}
	h.Free(small)
	h.Free(half)
}

// TestSubtreeSkipLandsPastConflict checks the NBALLOC skip arithmetic
// (lines A18-A19): after failing under an occupied ancestor the scan must
// jump directly past the ancestor's subtree rather than probing every
// descendant leaf.
func TestSubtreeSkipLandsPastConflict(t *testing.T) {
	a := mustNew(t, 1<<13, 8, 1<<13, WithoutScatter())
	h := a.newHandle()
	big, ok := h.Alloc(1 << 12) // occupies node 2: leaves 1024..1535 covered
	if !ok {
		t.Fatal("big alloc failed")
	}
	small, ok := h.Alloc(8)
	if !ok {
		t.Fatal("small alloc failed")
	}
	if small < 1<<12 {
		t.Fatalf("small alloc at %d overlaps the big chunk", small)
	}
	// Exactly one abort: the skip must not retry inside node 2's subtree.
	if h.stats.Retries != 1 {
		t.Fatalf("retries = %d, want exactly 1 (subtree skip)", h.stats.Retries)
	}
	h.Free(big)
	h.Free(small)
}

// TestCoalescingBitBlocksReservation pins the CAS(0, BUSY) semantics: a
// pending coalescing bit on a node makes its direct reservation fail even
// though the node is not busy (IsFree is true).
func TestCoalescingBitBlocksReservation(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter())
	h := a.newHandle()
	// Plant a transient coalescing bit on node 2 (as a racing release
	// would between its phase 1 and its unmark).
	a.setRawStatus(2, status.CoalLeft)
	if !status.IsFree(a.rawStatus(2)) {
		t.Fatal("coal-only node must still be IsFree")
	}
	off, ok := h.Alloc(512)
	if !ok {
		t.Fatal("alloc failed entirely")
	}
	if off != 512 {
		t.Fatalf("alloc took the coalescing-marked node (offset %d), want the sibling at 512", off)
	}
	h.Free(off)
	a.setRawStatus(2, 0)
}

// TestFreeClimbStopsAtOccupiedBuddy verifies the release climb arrests at
// a fragmented buddy and leaves the parent's occupancy for the buddy
// intact (Figure 4's early-arrest case).
func TestFreeClimbStopsAtOccupiedBuddy(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter())
	h := a.newHandle()
	left, ok := h.Alloc(512) // node 2 (scan starts at the level base)
	if !ok || left != 0 {
		t.Fatalf("left alloc = (%d,%v), want node 2 at offset 0", left, ok)
	}
	right, ok := h.Alloc(512)
	if !ok {
		t.Fatal("right alloc failed")
	}
	h.Free(left)
	// The root must still show the right branch occupied.
	rootVal := a.rawStatus(1)
	occRight := status.IsOccBuddy(rootVal, 2) // buddy of node 2 = node 3
	occLeftGone := !status.IsOccBuddy(rootVal, 3)
	if !occRight || !occLeftGone {
		t.Fatalf("root = %s after freeing the left half", status.String(rootVal))
	}
	h.Free(right)
	if v := a.rawStatus(1); v != 0 {
		t.Fatalf("root = %s after freeing both halves", status.String(v))
	}
}

// TestIndexReuse verifies index[] slots recycle: the same offset delivered
// again after a free maps to the right node and frees cleanly.
func TestIndexReuse(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024, WithoutScatter())
	h := a.newHandle()
	for i := 0; i < 100; i++ {
		off, ok := h.Alloc(64)
		if !ok {
			t.Fatal("alloc failed")
		}
		if off != 0 {
			t.Fatalf("iteration %d: deterministic first-fit returned %d, want 0", i, off)
		}
		h.Free(off)
	}
}

// TestScatterSpreadsStarts verifies distinct handles begin scanning at
// distinct slots (the §III.B refinement) while the no-scatter option pins
// them all to the level start.
func TestScatterSpreadsStarts(t *testing.T) {
	a := mustNew(t, 1<<16, 8, 1<<16)
	starts := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		h := a.newHandle()
		starts[h.scatterSlot(10)] = true
	}
	if len(starts) < 12 {
		t.Fatalf("16 handles share %d distinct scan starts; want well spread", len(starts))
	}
	b := mustNew(t, 1<<16, 8, 1<<16, WithoutScatter())
	for i := 0; i < 4; i++ {
		if b.newHandle().scatterSlot(10) != 0 {
			t.Fatal("no-scatter handle does not start at slot 0")
		}
	}
}

// TestConcurrentExhaustion injects allocation failure under concurrency:
// with capacity for exactly N live max-size chunks, N+k workers fighting
// for them must see exactly N successes at any instant and no corruption
// after all release.
func TestConcurrentExhaustion(t *testing.T) {
	const capacity = 4
	a := mustNew(t, 4*(1<<10), 8, 1<<10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := a.NewHandle()
			for i := 0; i < 5000; i++ {
				if off, ok := h.Alloc(1 << 10); ok {
					h.Free(off)
				}
			}
		}()
	}
	wg.Wait()
	// All workers drained; the instance must again hold exactly 4 chunks.
	var offs []uint64
	for {
		off, ok := a.Alloc(1 << 10)
		if !ok {
			break
		}
		offs = append(offs, off)
	}
	if len(offs) != capacity {
		t.Fatalf("capacity after churn = %d chunks, want %d", len(offs), capacity)
	}
	for _, off := range offs {
		a.Free(off)
	}
}

// TestFreeUnalignedPanics exercises the misuse guards of NBFREE.
func TestFreeUnalignedPanics(t *testing.T) {
	a := mustNew(t, 1024, 8, 1024)
	for _, off := range []uint64{3, 1025, 1 << 40} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Free(%d) did not panic", off)
				}
			}()
			a.Free(off)
		}()
	}
}
