package workload_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/multi"
	"repro/internal/stack"
	"repro/internal/workload"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

var testInstance = alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 16 << 10}

func TestDriversCompleteOnEveryAllocator(t *testing.T) {
	for _, allocator := range alloc.Names() {
		for name, driver := range workload.Drivers {
			t.Run(allocator+"/"+name, func(t *testing.T) {
				a, err := alloc.Build(allocator, testInstance)
				if err != nil {
					t.Fatal(err)
				}
				res := driver(a, workload.Config{Threads: 4, Size: 64, Scale: 0.001, Seed: 1})
				if res.Ops == 0 {
					t.Fatalf("%s on %s completed zero operations", name, allocator)
				}
				if res.Workload != name {
					t.Fatalf("result workload = %q, want %q", res.Workload, name)
				}
				// Composed stacks display structural names ("cached+multi[4x
				// 4lvl-nb]") that differ from their registry label; the
				// harness re-keys its cells for that. Drivers must label the
				// result with the allocator they actually ran.
				if res.Allocator != a.Name() {
					t.Fatalf("result allocator = %q, want %q", res.Allocator, a.Name())
				}
				// Every driver must return the instance drained: a paired
				// number of allocs and frees.
				s := a.Stats()
				if s.Allocs != s.Frees {
					t.Fatalf("%s on %s left %d allocs vs %d frees", name, allocator, s.Allocs, s.Frees)
				}
			})
		}
	}
}

func TestLinuxScalabilityOpsVolume(t *testing.T) {
	a, err := alloc.Build("1lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.LinuxScalability(a, workload.Config{Threads: 4, Size: 8, Scale: 0.0001, Seed: 1})
	// 20M * 0.0001 = 2000 iterations split over 4 threads, 2 ops each.
	if want := uint64(2000 / 4 * 4 * 2); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Fails != 0 {
		t.Fatalf("%d allocation failures on an idle instance", res.Fails)
	}
}

func TestThroughputPositive(t *testing.T) {
	a, err := alloc.Build("4lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Larson(a, workload.Config{Threads: 2, Size: 128, Scale: 0.002, Seed: 3})
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %f", res.Throughput())
	}
}

// TestBurstSawtoothOnFixedStack pins the pure-driver behaviour: without a
// capacity manager the sawtooth completes and drains (the balance check
// in TestDriversCompleteOnEveryAllocator already covers every allocator;
// this asserts a meaningful op volume for the shape parameters).
func TestBurstSawtoothOnFixedStack(t *testing.T) {
	a, err := alloc.Build("4lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Burst(a, workload.Config{Threads: 2, Size: 64, Scale: 0.001, Seed: 1})
	if res.Ops == 0 {
		t.Fatal("burst completed zero operations")
	}
	s := a.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("burst left %d allocs vs %d frees", s.Allocs, s.Frees)
	}
}

// TestBurstDrivesElasticLifecycle is the driver/manager contract: held
// peaks above the high watermark must grow the instance set, and held
// troughs must drain and retire instances — within a single run.
func TestBurstDrivesElasticLifecycle(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant:   "4lvl-nb",
		Per:       alloc.Config{Total: 1 << 20, MinSize: 8, MaxSize: 16 << 10},
		Instances: 2,
		Elastic:   &elastic.Config{MinInstances: 1, MaxInstances: 4, Hysteresis: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Burst(st.Top, workload.Config{Threads: 2, Size: 128, Scale: 0.01, Seed: 1})
	if res.Ops == 0 {
		t.Fatal("burst completed zero operations")
	}
	c := st.Elastic.Counters()
	if c.Polls == 0 {
		t.Fatal("the driver never polled the capacity manager it was given")
	}
	if c.Grows+c.Reactivations == 0 {
		t.Fatalf("held peaks above the high watermark never grew the fleet: %+v", c)
	}
	if c.Drains == 0 || c.Retires == 0 {
		t.Fatalf("held troughs never drained/retired an instance: %+v", c)
	}
	// The run ends fully drained; one more poll completes any pending
	// retires, landing the fleet back at (or above) the floor.
	st.Elastic.Poll()
	for _, info := range st.Elastic.Router().InstanceInfos() {
		if info.State == multi.Draining {
			t.Fatalf("slot %d still draining after the drained run (live=%d)", info.Slot, info.Live)
		}
	}
	if got := st.Elastic.Router().Instances(); got < 1 || got > 4 {
		t.Fatalf("fleet landed at %d instances, outside [1,4]", got)
	}
}

// TestBurstStragglerMigratesOnElasticStack is the workload half of the
// bounded-retirement contract, on the single-threaded shape migration
// is safe under (the quiescence contract: chunks on a draining slot
// must not be freed concurrently with a migrating Poll — one worker
// serializes both). The worker fills its preferred slot 0 and spills
// the overflow plus the parked straggler onto slot 1; the trough frees
// newest-first, so slot 1 comes back down to exactly the straggler —
// the slot can never empty by itself, yet it is always the drain
// victim (slot 0 carries the trough chunks' bytes). With migration
// enabled the run must complete its drain/retire cycles anyway: the
// manager moves the straggler and the driver's OnMigrate hook rewrites
// the held reference so the final free lands at the new address.
func TestBurstStragglerMigratesOnElasticStack(t *testing.T) {
	st, err := stack.Build(stack.Spec{
		Variant:   "4lvl-nb",
		Per:       alloc.Config{Total: 1 << 20, MinSize: 8, MaxSize: 16 << 10},
		Instances: 2,
		Elastic: &elastic.Config{
			MinInstances: 1, MaxInstances: 2, Hysteresis: 2,
			Migration: elastic.MigrationConfig{Enabled: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := workload.BurstStraggler(st.Top, workload.Config{Threads: 1, Size: 128, Scale: 0.01, Seed: 1})
	if res.Ops == 0 {
		t.Fatal("burst-straggler completed zero operations")
	}
	c := st.Elastic.Counters()
	if c.Drains == 0 || c.Retires == 0 {
		t.Fatalf("troughs never drained/retired an instance: %+v", c)
	}
	if c.MigratedChunks == 0 {
		t.Fatalf("the held straggler never forced a migration: %+v", c)
	}
	// The driver freed the straggler at its final (migrated) address:
	// the stack drains to balance.
	s := st.Top.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("run left %d allocs vs %d frees", s.Allocs, s.Frees)
	}
	st.Elastic.Poll()
	for _, info := range st.Elastic.Router().InstanceInfos() {
		if info.State == multi.Draining {
			t.Fatalf("slot %d still draining after the drained run (live=%d)", info.Slot, info.Live)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (workload.Config{Threads: 0, Size: 8}).Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	if err := (workload.Config{Threads: 1, Size: 0}).Validate(); err == nil {
		t.Error("zero size accepted")
	}
	if err := (workload.Config{Threads: 1, Size: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFragPlantsCheckerboardAndDrains(t *testing.T) {
	a, err := alloc.Build("4lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Frag(a, workload.Config{Threads: 4, Size: 64, Scale: 0.0001, Seed: 1})
	if res.Ops == 0 {
		t.Fatal("frag completed zero timed operations")
	}
	// The planted checkerboard must leave holes for the timed phase: a
	// fully planted instance would fail every timed allocation.
	if res.Fails == res.Ops {
		t.Fatal("every timed allocation failed: no holes were left")
	}
	// The driver releases its long-lived chunks afterwards: the whole
	// region must be allocatable again (Scrub sheds benign residue).
	if s, ok := a.(interface{ Scrub() }); ok {
		s.Scrub()
	}
	off, ok := a.Alloc(testInstance.MaxSize)
	if !ok {
		t.Fatal("max-size alloc failed after frag drained")
	}
	a.Free(off)
}
