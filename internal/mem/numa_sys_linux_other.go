//go:build linux && !amd64 && !arm64

package mem

// Architectures without wired syscall numbers run the bookkeeping-only
// NUMA path (the constants are never passed to Syscall6 when
// numaHaveSyscalls is false).
const (
	sysMbind         = 0
	sysGetMempolicy  = 0
	numaHaveSyscalls = false
)
