// Package core implements the paper's primary contribution: the 1-level
// non-blocking buddy system (paper §III.A-C, Algorithms 1-4, evaluation
// label "1lvl-nb").
//
// State is a static complete binary tree stored in an array with the root
// at index 1. Every node carries five status bits (see internal/status);
// every mutation is a single-word CAS, and an operation that loses a CAS
// race either retries the same climb step (when the update remains
// coherent) or aborts and moves to another node (when a conflicting
// allocation reserved the chunk). No thread ever blocks another: the
// algorithm is lock-free (paper appendix, Theorem A.1).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/status"
)

func init() {
	alloc.Register("1lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		return NewFromConfig(cfg)
	})
}

// Allocator is a single non-blocking buddy-system instance.
type Allocator struct {
	geo geometry.Geometry
	// tree holds the five status bits of node n at tree[n]; index 0 is
	// unused so node arithmetic matches the paper (root at 1).
	tree []atomic.Uint32
	// index maps allocation-unit slots (offset/MinSize) to the tree node
	// that served the allocation starting there; 0 means "not delivered",
	// which is what makes double frees detectable.
	index []atomic.Uint32
	// scatter disables the scattered scan start when false (ablation A2).
	scatter bool

	mu      sync.Mutex
	handles []*Handle
	nextID  uint64
	pool    sync.Pool
}

// Option tweaks allocator construction.
type Option func(*Allocator)

// WithoutScatter makes every allocation scan its target level from the
// first node, the configuration the scattered-start ablation compares
// against.
func WithoutScatter() Option { return func(a *Allocator) { a.scatter = false } }

// New builds an instance managing total bytes with the given allocation
// unit and maximum request size (all powers of two).
func New(total, minSize, maxSize uint64, opts ...Option) (*Allocator, error) {
	geo, err := geometry.New(total, minSize, maxSize)
	if err != nil {
		return nil, err
	}
	return NewWithGeometry(geo, opts...), nil
}

// NewFromConfig adapts New to the registry factory signature.
func NewFromConfig(cfg alloc.Config) (*Allocator, error) {
	return New(cfg.Total, cfg.MinSize, cfg.MaxSize)
}

// NewWithGeometry builds an instance from an already-validated geometry.
func NewWithGeometry(geo geometry.Geometry, opts ...Option) *Allocator {
	if geo.Depth > 31 {
		panic(fmt.Sprintf("core: depth %d exceeds the uint32 node-index range", geo.Depth))
	}
	a := &Allocator{
		geo:     geo,
		tree:    make([]atomic.Uint32, geo.Nodes()),
		index:   make([]atomic.Uint32, geo.Leaves()),
		scatter: true,
	}
	for _, o := range opts {
		o(a)
	}
	a.pool.New = func() any { return a.NewHandle() }
	return a
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "1lvl-nb" }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// Alloc serves a one-off request through a pooled handle. Hot loops should
// use NewHandle instead.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	h := a.pool.Get().(*Handle)
	off, ok := h.Alloc(size)
	a.pool.Put(h)
	return off, ok
}

// Free releases a chunk through a pooled handle.
func (a *Allocator) Free(offset uint64) {
	h := a.pool.Get().(*Handle)
	h.Free(offset)
	a.pool.Put(h)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle { return a.newHandle() }

func (a *Allocator) newHandle() *Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a, id: a.nextID}
	a.nextID++
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	var total alloc.Stats
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator (not safe for concurrent
// use). It carries the scattered scan start that spreads concurrent
// same-level allocations over different nodes, and private counters.
type Handle struct {
	a     *Allocator
	id    uint64
	seq   uint64
	stats alloc.Stats
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// scatterSlot picks the slot within a level where this handle starts
// scanning — the paper's "starting from scattered points" refinement.
// Multiplying the handle id by the 64-bit golden ratio and keeping the
// top bits spreads any number of handles evenly across the level, and the
// per-handle sequence rotates the start between allocations so a handle
// does not re-walk its own previously delivered (still live) run of nodes
// on every call.
func (h *Handle) scatterSlot(level int) uint64 {
	if !h.a.scatter || level == 0 {
		return 0
	}
	base := (h.id * 0x9E3779B97F4A7C15) >> uint(64-level)
	return (base + h.seq) & (geometry.LevelWidth(level) - 1)
}

// Alloc is the paper's NBALLOC (Algorithm 1). It identifies the target
// level for the request, then scans that level for a free node and tries
// to reserve it with TryAlloc; when TryAlloc fails because of an occupied
// ancestor it skips the whole subtree of the conflicting node (lines
// A18-A19) before probing further.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	geo := h.a.geo
	if size > geo.MaxSize {
		h.stats.AllocFails++
		return 0, false
	}
	level := geo.LevelForSize(size)
	base := geometry.FirstOfLevel(level)
	end := base << 1 // one past the last node of the level
	h.seq++
	start := base + h.scatterSlot(level)

	// Scan [start, end) and then wrap to [base, start): two linear passes
	// keep the subtree-skip arithmetic identical to the paper's.
	for pass := 0; pass < 2; pass++ {
		lo, hi := start, end
		if pass == 1 {
			lo, hi = base, start
		}
		for i := lo; i < hi; {
			if !status.IsFree(h.a.tree[i].Load()) {
				i++
				continue
			}
			failedAt := h.tryAlloc(i)
			if failedAt == 0 {
				offset := geo.OffsetOf(i)
				h.a.index[geo.UnitIndex(offset)].Store(uint32(i))
				h.stats.Allocs++
				return offset, true
			}
			// The allocation lost to a chunk reserved at failedAt: every
			// descendant of failedAt at this level is equally taken, so
			// jump past the whole subtree.
			h.stats.Retries++
			d := uint64(1) << uint(level-geometry.LevelOf(failedAt))
			next := (failedAt + 1) * d
			if next <= i {
				next = i + 1
			}
			i = next
		}
	}
	h.stats.AllocFails++
	return 0, false
}

// tryAlloc is the paper's TRYALLOC (Algorithm 2). It reserves node n with
// a CAS from the all-clear state to BUSY, then climbs to the max level
// marking each ancestor's branch as occupied (and clearing its coalescing
// bit, so racing releases notice the branch was reused). It returns 0 on
// success or the index of the node that made the allocation fail; in the
// failure case all updates performed by the climb are rolled back through
// freeNode before returning.
func (h *Handle) tryAlloc(n uint64) uint64 {
	h.stats.RMW++
	if !h.a.tree[n].CompareAndSwap(0, status.Busy) {
		h.stats.CASFail++
		return n
	}
	maxLevel := h.a.geo.MaxLevel
	current := n
	for geometry.LevelOf(current) > maxLevel {
		child := current
		current = geometry.Parent(current)
		for {
			curVal := h.a.tree[current].Load()
			if status.IsOcc(curVal) {
				// An ancestor is fully reserved by another allocation:
				// this chunk cannot be fragmented. Roll back what the
				// climb marked so far and report the conflict point.
				h.freeNode(n, geometry.LevelOf(child))
				return current
			}
			newVal := status.Mark(status.CleanCoal(curVal, child), child)
			h.stats.RMW++
			if h.a.tree[current].CompareAndSwap(curVal, newVal) {
				break
			}
			// A concurrent operation changed this node's other bits; the
			// marking is still coherent, so re-read and retry the step.
			h.stats.CASFail++
		}
	}
	return 0
}

// Free is the paper's NBFREE (Algorithm 3): it recovers the node that
// served the offset from index[] and runs the three-phase release up to
// the max level. Freeing an offset that is not currently delivered (a
// double free or a foreign pointer) panics, mirroring the abort-on-misuse
// convention of production allocators.
func (h *Handle) Free(offset uint64) {
	slot := h.a.geo.UnitIndex(offset)
	if offset >= h.a.geo.Total || offset%h.a.geo.MinSize != 0 {
		panic(fmt.Sprintf("core: Free(%#x): offset outside the managed region or unaligned", offset))
	}
	n := h.a.index[slot].Swap(0)
	if n == 0 {
		panic(fmt.Sprintf("core: Free(%#x): offset not currently allocated (double free?)", offset))
	}
	h.freeNode(uint64(n), h.a.geo.MaxLevel)
	h.stats.Frees++
}

// freeNode is the paper's FREENODE (Algorithm 3). upperBound is the LEVEL
// the release must propagate to: MaxLevel for a real free, or the level of
// the last node marked by an aborted TryAlloc climb for a rollback.
//
// Phase 1 marks the climb path as coalescing so racing operations know a
// release is in flight; it stops early at a node whose other branch is
// occupied (and not itself coalescing), because the merge cannot proceed
// past a fragmented buddy. Phase 2 clears the released node in one store.
// Phase 3 (unmark) walks the same path clearing the coalescing and
// occupancy bits, unless a racing allocation already reused the branch.
func (h *Handle) freeNode(n uint64, upperBound int) {
	// Phase 1: flag the path as coalescing (lines F2-F18).
	runner := n
	current := geometry.Parent(n)
	for geometry.LevelOf(runner) > upperBound {
		orVal := status.CoalBit(runner)
		var witnessed uint32
		for {
			curVal := h.a.tree[current].Load()
			witnessed = curVal
			h.stats.RMW++
			if h.a.tree[current].CompareAndSwap(curVal, curVal|orVal) {
				break
			}
			h.stats.CASFail++
		}
		if status.IsOccBuddy(witnessed, runner) && !status.IsCoalBuddy(witnessed, runner) {
			// The buddy subtree is occupied: the release cannot merge past
			// this node, so the climb is arrested here (paper Figure 4).
			break
		}
		runner = current
		current = geometry.Parent(current)
	}

	// Phase 2: release the node itself (line F19).
	h.a.tree[n].Store(0)

	// Phase 3: propagate the release towards the upper bound (Algorithm 4).
	if geometry.LevelOf(n) != upperBound {
		h.unmark(n, upperBound)
	}
}

// unmark is the paper's UNMARK (Algorithm 4): climb from n towards the
// upper bound clearing the coalescing and occupancy bits of the branch
// being left. If the coalescing bit of a node is found already cleared, a
// concurrent operation took over the branch (an allocation reused it, or
// another release already cleaned it) and the climb stops; if the buddy of
// the branch is occupied the merge cannot continue upward either.
func (h *Handle) unmark(n uint64, upperBound int) {
	current := n
	for {
		child := current
		current = geometry.Parent(current)
		var newVal uint32
		for {
			curVal := h.a.tree[current].Load()
			if !status.IsCoal(curVal, child) {
				return
			}
			newVal = status.Unmark(curVal, child)
			h.stats.RMW++
			if h.a.tree[current].CompareAndSwap(curVal, newVal) {
				break
			}
			h.stats.CASFail++
		}
		if geometry.LevelOf(current) <= upperBound || status.IsOccBuddy(newVal, child) {
			return
		}
	}
}
