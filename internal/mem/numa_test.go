package mem

import (
	"reflect"
	"runtime"
	"testing"
)

func TestParseIDList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"0", []int{0}, false},
		{"0\n", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0,2-3,8", []int{0, 2, 3, 8}, false},
		{" 1 , 4-5 ", []int{1, 4, 5}, false},
		{"", nil, false},
		{"3-1", nil, true},
		{"x", nil, true},
		{"0-", nil, true},
	}
	for _, c := range cases {
		got, err := parseIDList(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseIDList(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseIDList(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseIDList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNUMATopologyConsistent(t *testing.T) {
	nodes := NUMANodes()
	if len(nodes) == 0 {
		t.Fatal("NUMANodes returned no nodes")
	}
	seen := map[int]bool{}
	for _, n := range nodes {
		seen[n] = true
	}
	// Every cpu must map to an online node.
	for cpu := 0; cpu < 64; cpu++ {
		if n := NodeOfCPU(cpu); !seen[n] {
			t.Fatalf("NodeOfCPU(%d) = %d, not an online node %v", cpu, n, nodes)
		}
	}
}

func TestNodeMapFollowsCommits(t *testing.T) {
	r, err := New(1<<16, 3, WithNUMAPolicy())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Release()
	if !r.NUMAPolicy() {
		t.Fatal("NUMAPolicy not recorded")
	}
	for _, n := range r.NodeMap() {
		if n != -1 {
			t.Fatalf("window placed before commit: %v", r.NodeMap())
		}
	}
	if err := r.Commit(1); err != nil {
		t.Fatal(err)
	}
	nm := r.NodeMap()
	if nm[0] != -1 || nm[2] != -1 {
		t.Fatalf("uncommitted windows placed: %v", nm)
	}
	if nm[1] < 0 {
		t.Fatalf("committed window unplaced: %v", nm)
	}
	want := NodeOfCPU(1 % maxInt(1, runtime.NumCPU()))
	if nm[1] != want {
		t.Fatalf("window 1 assigned node %d, want %d", nm[1], want)
	}
	// The physical placement assertion only holds where the syscalls are
	// real; the committed window was touched by Commit, so the page query
	// must answer and agree with the assignment on a bound window. On a
	// single-node machine no bind was issued but the answer is still the
	// only node.
	if NUMAAware() {
		got, ok := NodeOfAddr(r.Window(1))
		if !ok {
			t.Fatal("NodeOfAddr failed on a committed window")
		}
		if len(NUMANodes()) > 1 && got != nm[1] {
			t.Fatalf("page on node %d, policy assigned %d", got, nm[1])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
