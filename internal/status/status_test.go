package status

import (
	"testing"
	"testing/quick"
)

func TestMaskValues(t *testing.T) {
	// The paper's §III.A lists the masks explicitly.
	if OccRight != 0x1 || OccLeft != 0x2 || CoalRight != 0x4 || CoalLeft != 0x8 || Occ != 0x10 {
		t.Fatal("status masks diverge from the paper")
	}
	if Busy != 0x13 {
		t.Fatalf("BUSY = %#x, want 0x13 (OCC|OCC_LEFT|OCC_RIGHT)", Busy)
	}
}

func TestBranchSelection(t *testing.T) {
	// Left children have even indexes: operations on an even child touch
	// the LEFT bits, odd children the RIGHT bits.
	if Mark(0, 4) != OccLeft {
		t.Errorf("Mark(0, even) = %#x, want OCC_LEFT", Mark(0, 4))
	}
	if Mark(0, 5) != OccRight {
		t.Errorf("Mark(0, odd) = %#x, want OCC_RIGHT", Mark(0, 5))
	}
	if CoalBit(6) != CoalLeft || CoalBit(7) != CoalRight {
		t.Error("CoalBit branch selection wrong")
	}
	if got := CleanCoal(CoalLeft|CoalRight, 2); got != CoalRight {
		t.Errorf("CleanCoal(CL|CR, even) = %#x, want CR only", got)
	}
	if got := Unmark(Busy|CoalLeft|CoalRight, 2); got != Occ|OccRight|CoalRight {
		t.Errorf("Unmark(full, even) = %#x", got)
	}
}

func TestBuddyPredicates(t *testing.T) {
	// For an even (left) child, the buddy is the right branch.
	if !IsOccBuddy(OccRight, 4) || IsOccBuddy(OccLeft, 4) {
		t.Error("IsOccBuddy(even child) must look at the right branch")
	}
	if !IsOccBuddy(OccLeft, 5) || IsOccBuddy(OccRight, 5) {
		t.Error("IsOccBuddy(odd child) must look at the left branch")
	}
	if !IsCoalBuddy(CoalRight, 4) || !IsCoalBuddy(CoalLeft, 5) {
		t.Error("IsCoalBuddy branch selection wrong")
	}
}

func TestIsFree(t *testing.T) {
	if !IsFree(0) || !IsFree(CoalLeft) || !IsFree(CoalLeft|CoalRight) {
		t.Error("pending coalescing bits must not make a node busy")
	}
	for _, v := range []uint32{Occ, OccLeft, OccRight, Busy} {
		if IsFree(v) {
			t.Errorf("IsFree(%#x) = true", v)
		}
	}
}

func TestStatusString(t *testing.T) {
	if String(0) != "free" {
		t.Errorf("String(0) = %q", String(0))
	}
	if got := String(Occ | OccLeft); got != "OCC|OL" {
		t.Errorf("String(OCC|OL) = %q", got)
	}
}

// Property: Mark then Unmark restores the branch's occupancy bit to clear,
// whatever the other bits, and never touches the buddy branch.
func TestQuickMarkUnmarkRoundtrip(t *testing.T) {
	f := func(val uint32, child uint64) bool {
		val &= Mask
		buddyBits := val & ((OccRight | CoalRight) << (child & 1)) // buddy branch bits
		after := Unmark(Mark(val, child), child)
		// Branch occupancy and coalescing cleared.
		if IsCoal(after, child) || after&(OccLeft>>uint32(child&1)) != 0 {
			return false
		}
		// Buddy branch untouched.
		return after&((OccRight|CoalRight)<<(child&1)) == buddyBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CleanCoal only ever clears, Mark only ever sets, and the OCC
// bit is invariant under all branch operations.
func TestQuickMonotonicity(t *testing.T) {
	f := func(val uint32, child uint64) bool {
		val &= Mask
		cc := CleanCoal(val, child)
		mk := Mark(val, child)
		um := Unmark(val, child)
		return cc&^val == 0 && // CleanCoal never sets bits
			mk&val == val && // Mark never clears bits
			um&^val == 0 && // Unmark never sets bits
			cc&Occ == val&Occ && mk&Occ == val&Occ && um&Occ == val&Occ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
