package workload_test

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/workload"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

var testInstance = alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 16 << 10}

func TestDriversCompleteOnEveryAllocator(t *testing.T) {
	for _, allocator := range alloc.Names() {
		for name, driver := range workload.Drivers {
			t.Run(allocator+"/"+name, func(t *testing.T) {
				a, err := alloc.Build(allocator, testInstance)
				if err != nil {
					t.Fatal(err)
				}
				res := driver(a, workload.Config{Threads: 4, Size: 64, Scale: 0.001, Seed: 1})
				if res.Ops == 0 {
					t.Fatalf("%s on %s completed zero operations", name, allocator)
				}
				if res.Workload != name {
					t.Fatalf("result workload = %q, want %q", res.Workload, name)
				}
				if res.Allocator != allocator {
					t.Fatalf("result allocator = %q, want %q", res.Allocator, allocator)
				}
				// Every driver must return the instance drained: a paired
				// number of allocs and frees.
				s := a.Stats()
				if s.Allocs != s.Frees {
					t.Fatalf("%s on %s left %d allocs vs %d frees", name, allocator, s.Allocs, s.Frees)
				}
			})
		}
	}
}

func TestLinuxScalabilityOpsVolume(t *testing.T) {
	a, err := alloc.Build("1lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.LinuxScalability(a, workload.Config{Threads: 4, Size: 8, Scale: 0.0001, Seed: 1})
	// 20M * 0.0001 = 2000 iterations split over 4 threads, 2 ops each.
	if want := uint64(2000 / 4 * 4 * 2); res.Ops != want {
		t.Fatalf("ops = %d, want %d", res.Ops, want)
	}
	if res.Fails != 0 {
		t.Fatalf("%d allocation failures on an idle instance", res.Fails)
	}
}

func TestThroughputPositive(t *testing.T) {
	a, err := alloc.Build("4lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Larson(a, workload.Config{Threads: 2, Size: 128, Scale: 0.002, Seed: 3})
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %f", res.Throughput())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (workload.Config{Threads: 0, Size: 8}).Validate(); err == nil {
		t.Error("zero threads accepted")
	}
	if err := (workload.Config{Threads: 1, Size: 0}).Validate(); err == nil {
		t.Error("zero size accepted")
	}
	if err := (workload.Config{Threads: 1, Size: 8}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFragPlantsCheckerboardAndDrains(t *testing.T) {
	a, err := alloc.Build("4lvl-nb", testInstance)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Frag(a, workload.Config{Threads: 4, Size: 64, Scale: 0.0001, Seed: 1})
	if res.Ops == 0 {
		t.Fatal("frag completed zero timed operations")
	}
	// The planted checkerboard must leave holes for the timed phase: a
	// fully planted instance would fail every timed allocation.
	if res.Fails == res.Ops {
		t.Fatal("every timed allocation failed: no holes were left")
	}
	// The driver releases its long-lived chunks afterwards: the whole
	// region must be allocatable again (Scrub sheds benign residue).
	if s, ok := a.(interface{ Scrub() }); ok {
		s.Scrub()
	}
	off, ok := a.Alloc(testInstance.MaxSize)
	if !ok {
		t.Fatal("max-size alloc failed after frag drained")
	}
	a.Free(off)
}
