package harness_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/harness"

	_ "repro/internal/bunch"
	_ "repro/internal/cloudwu"
	_ "repro/internal/core"
	_ "repro/internal/linuxbuddy"
	_ "repro/internal/slbuddy"
)

var tinyInstance = alloc.Config{Total: 1 << 22, MinSize: 8, MaxSize: 16 << 10}

func TestSweepGridShape(t *testing.T) {
	sw := harness.Sweep{
		Workload:   "linux-scalability",
		Allocators: []string{"1lvl-nb", "buddy-sl"},
		Threads:    []int{1, 2},
		Sizes:      []uint64{8, 128},
		Instance:   tinyInstance,
		Scale:      0.0005,
		Reps:       2,
		Seed:       1,
	}
	cells, err := sw.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Ops == 0 {
			t.Fatalf("cell %+v completed zero ops", c.Result)
		}
		if c.Summary.N != 2 {
			t.Fatalf("cell summarizes %d reps, want 2", c.Summary.N)
		}
	}
}

func TestSweepUnknownWorkload(t *testing.T) {
	if _, err := (harness.Sweep{Workload: "nope"}).Run(nil); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestTableRendering(t *testing.T) {
	sw := harness.Sweep{
		Workload:   "thread-test",
		Allocators: []string{"1lvl-nb", "1lvl-sl"},
		Threads:    []int{1, 2},
		Sizes:      []uint64{64},
		Instance:   tinyInstance,
		Scale:      0.001,
		Seed:       1,
	}
	cells, err := sw.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	harness.Table(&buf, "Thread Test - Bytes=64", cells, 64, sw.Allocators, harness.MetricSeconds)
	out := buf.String()
	for _, want := range []string{"Thread Test - Bytes=64", "1lvl-nb", "1lvl-sl", "threads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header comment + column row + 2 thread rows
		t.Fatalf("table has %d lines, want 4:\n%s", lines, out)
	}
}

func TestCSVRendering(t *testing.T) {
	sw := harness.Sweep{
		Workload:   "larson",
		Allocators: []string{"4lvl-nb"},
		Threads:    []int{2},
		Sizes:      []uint64{8},
		Instance:   tinyInstance,
		Scale:      0.001,
		Seed:       1,
	}
	cells, err := sw.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	harness.CSV(&buf, cells)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header+1:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "larson,4lvl-nb,8,2,") {
		t.Fatalf("unexpected CSV row: %s", lines[1])
	}
}

func TestFigureDefinitions(t *testing.T) {
	figs := harness.Figures(nil, 1, 1, 1)
	if len(figs) != 5 {
		t.Fatalf("got %d figures, want 5", len(figs))
	}
	ids := map[int]bool{}
	for _, f := range figs {
		ids[f.ID] = true
	}
	for id := 8; id <= 12; id++ {
		if !ids[id] {
			t.Fatalf("figure %d missing", id)
		}
	}
	if _, err := harness.FigureByID(7, nil, 1, 1, 1); err == nil {
		t.Fatal("figure 7 should not exist")
	}
	f12, err := harness.FigureByID(12, nil, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Sweeps) != 3 {
		t.Fatalf("figure 12 has %d sweeps, want 3 workloads", len(f12.Sweeps))
	}
	for _, sw := range f12.Sweeps {
		if len(sw.Sizes) != 1 || sw.Sizes[0] != 128<<10 {
			t.Fatalf("figure 12 sweep sizes = %v, want [131072]", sw.Sizes)
		}
	}
}

func TestParseHelpers(t *testing.T) {
	sizes, err := harness.ParseSizes("8, 128,1024")
	if err != nil || len(sizes) != 3 || sizes[2] != 1024 {
		t.Fatalf("ParseSizes = %v, %v", sizes, err)
	}
	threads, err := harness.ParseThreads("4,8")
	if err != nil || len(threads) != 2 || threads[1] != 8 {
		t.Fatalf("ParseThreads = %v, %v", threads, err)
	}
	if _, err := harness.ParseSizes("x"); err == nil {
		t.Error("bad size accepted")
	}
	if _, err := harness.ParseThreads("y"); err == nil {
		t.Error("bad thread count accepted")
	}
}

func TestGnuplotSeries(t *testing.T) {
	sw := harness.Sweep{
		Workload:   "constant-occupancy",
		Allocators: []string{"1lvl-nb"},
		Threads:    []int{1, 2},
		Sizes:      []uint64{8},
		Instance:   tinyInstance,
		Scale:      0.0005,
		Seed:       1,
	}
	cells, err := sw.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	harness.GnuplotSeries(&buf, cells, 8, sw.Allocators, harness.MetricSeconds)
	if !strings.Contains(buf.String(), "# series 1lvl-nb bytes=8") {
		t.Fatalf("missing series header:\n%s", buf.String())
	}
	if got := strings.Count(buf.String(), "\n1 ") + strings.Count(buf.String(), "\n2 "); got != 2 {
		t.Fatalf("expected 2 data rows, got %d:\n%s", got, buf.String())
	}
}
