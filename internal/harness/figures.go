package harness

import (
	"fmt"
	"io"

	"repro/internal/alloc"
)

// Figure describes one paper figure as a runnable experiment definition.
type Figure struct {
	ID       int
	Title    string
	Workload string // empty for the multi-workload Figure 12
	Metric   Metric
	Sweeps   []Sweep
}

// UserSpaceInstance is the instance geometry of Figures 8-11: the paper
// configures "chunks of minimal size set to 8 bytes, and maximal size set
// to 16KB"; the managed total is sized so the deepest tree stays resident
// (64 MB keeps the 1lvl metadata at 64 MB of uint32 words).
var UserSpaceInstance = alloc.Config{Total: 64 << 20, MinSize: 8, MaxSize: 16 << 10}

// KernelStyleInstance is the Figure 12 geometry: page-grained minimum
// (4 KB) with the kernel's MAX_ORDER=11 block cap (4 MB), serving the
// 128 KB chunks the paper targets.
var KernelStyleInstance = alloc.Config{Total: 256 << 20, MinSize: 4 << 10, MaxSize: 4 << 20}

// PaperThreads is the thread grid of every figure.
var PaperThreads = []int{4, 8, 16, 24, 32}

// PaperSizes is the request-size grid of Figures 8-11.
var PaperSizes = []uint64{8, 128, 1024}

// Figures builds the five paper figures with the given thread grid and
// scale (1.0 = the paper's operation volumes).
func Figures(threads []int, scale float64, reps int, seed int64) []Figure {
	if len(threads) == 0 {
		threads = PaperThreads
	}
	user := func(wl string) []Sweep {
		return []Sweep{{
			Workload:   wl,
			Allocators: AllocatorsUserSpace,
			Threads:    threads,
			Sizes:      PaperSizes,
			Instance:   UserSpaceInstance,
			Scale:      scale,
			Reps:       reps,
			Seed:       seed,
		}}
	}
	var kernel []Sweep
	for _, wl := range []string{"linux-scalability", "thread-test", "constant-occupancy"} {
		kernel = append(kernel, Sweep{
			Workload:   wl,
			Allocators: AllocatorsKernelStyle,
			Threads:    []int{threads[len(threads)-1]},
			Sizes:      []uint64{128 << 10},
			Instance:   KernelStyleInstance,
			Scale:      scale,
			Reps:       reps,
			Seed:       seed,
		})
	}
	return []Figure{
		{ID: 8, Title: "Execution times - Linux Scalability benchmark", Workload: "linux-scalability", Metric: MetricSeconds, Sweeps: user("linux-scalability")},
		{ID: 9, Title: "Execution times - Thread Test benchmark", Workload: "thread-test", Metric: MetricSeconds, Sweeps: user("thread-test")},
		{ID: 10, Title: "Throughput - Larson benchmark", Workload: "larson", Metric: MetricKOps, Sweeps: user("larson")},
		{ID: 11, Title: "Execution times - Constant Occupancy benchmark", Workload: "constant-occupancy", Metric: MetricSeconds, Sweeps: user("constant-occupancy")},
		{ID: 12, Title: "Comparison with the Linux buddy system (128KB chunks)", Metric: MetricCycles, Sweeps: kernel},
	}
}

// FigureByID returns the requested figure definition.
func FigureByID(id int, threads []int, scale float64, reps int, seed int64) (Figure, error) {
	for _, f := range Figures(threads, scale, reps, seed) {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (valid: 8..12)", id)
}

// Run executes every sweep of the figure, renders its panels to out, and
// returns all measured cells.
func (f Figure) Run(out, progress io.Writer) ([]Cell, error) {
	var all []Cell
	fmt.Fprintf(out, "== Figure %d: %s ==\n\n", f.ID, f.Title)
	for _, sw := range f.Sweeps {
		cells, err := sw.Run(progress)
		if err != nil {
			return nil, err
		}
		for _, size := range sw.Sizes {
			title := fmt.Sprintf("%s - Bytes=%d", sw.Workload, size)
			Table(out, title, cells, size, sw.Allocators, f.Metric)
			fmt.Fprintln(out)
		}
		all = append(all, cells...)
	}
	return all, nil
}
