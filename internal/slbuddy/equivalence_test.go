package slbuddy

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
)

// TestLayoutEquivalence drives the identical operation sequence through
// the flat (1lvl-sl) and bunch (4lvl-sl) layouts. Both run the same scan
// and skip logic over the same logical tree, so every allocation must
// return the same offset and every failure must agree — the bunch packing
// is purely a storage transformation.
func TestLayoutEquivalence(t *testing.T) {
	cfg := alloc.Config{Total: 1 << 14, MinSize: 8, MaxSize: 1 << 12}
	flat, err := New1Lvl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := New4Lvl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	var live []uint64
	for step := 0; step < 30000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			flat.Free(live[k])
			packed.Free(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(1) << (3 + rng.Intn(10))
		fo, fok := flat.Alloc(size)
		po, pok := packed.Alloc(size)
		if fok != pok {
			t.Fatalf("step %d: alloc(%d) flat ok=%v, packed ok=%v", step, size, fok, pok)
		}
		if !fok {
			continue
		}
		if fo != po {
			t.Fatalf("step %d: alloc(%d) flat=%d packed=%d", step, size, fo, po)
		}
		live = append(live, fo)
	}
	for _, off := range live {
		flat.Free(off)
		packed.Free(off)
	}
	// Both drained: the whole region must be allocatable on each.
	if _, ok := flat.Alloc(1 << 12); !ok {
		t.Fatal("flat layout lost capacity")
	}
	if _, ok := packed.Alloc(1 << 12); !ok {
		t.Fatal("packed layout lost capacity")
	}
}

// TestFlatTreeInvariants checks, after a random quiescent workload, that
// the flat layout's interior marks are exactly the marks implied by the
// live allocations — the locked variant must never need scrubbing.
func TestFlatTreeInvariants(t *testing.T) {
	cfg := alloc.Config{Total: 1 << 12, MinSize: 8, MaxSize: 1 << 12}
	a, err := New1Lvl(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	live := map[uint64]bool{}
	for step := 0; step < 20000; step++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			for off := range live {
				a.Free(off)
				delete(live, off)
				break
			}
			continue
		}
		if off, ok := a.Alloc(uint64(1) << (3 + rng.Intn(8))); ok {
			live[off] = true
		}
	}
	for off := range live {
		a.Free(off)
	}
	lay := a.lay.(*flatLayout)
	for n, v := range lay.tree {
		if n >= 1 && v != 0 {
			t.Fatalf("node %d = %#x on a drained locked instance", n, v)
		}
	}
}
