package alloctest

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/multi"
	"repro/internal/shard"
	"repro/internal/slab"
)

// RunDifferential drives a long random operation sequence — single and
// batched allocations, single and batched frees, quiescent Scrubs —
// against a map-based oracle, and fails on any divergence:
//
//   - no double-hand-out: a delivered chunk never overlaps a live one
//     (checked unit-by-unit against the oracle's occupancy map);
//   - correct ChunkSize: every live offset reports exactly the reserved
//     size of its class, at every step including right after a Scrub;
//   - stats reconciliation: after draining and scrubbing, every layer of
//     the stack reports as many frees as allocations.
//
// Operations are driven through a per-worker handle (so front-end
// magazines and the depot engage) and through the allocator's batched
// convenience contract, exercising both faces of every layer.
//
// When the stack contains an elastic capacity manager, the sequence
// additionally interleaves lifecycle transitions — Poll steps plus forced
// Grow and Shrink decisions — between the allocator operations, so every
// safety property above is re-checked across instance-set growth, drains
// (frees landing by offset on draining instances) and retirements. The
// offset-space span is re-read on every admission because grows widen it.
func RunDifferential(t *testing.T, build Builder) {
	t.Helper()
	const total, minSize, maxSize = 1 << 16, 8, 1 << 12
	for _, seed := range []int64{1, 7, 42} {
		a := build(t, total, minSize, maxSize)
		differentialSequence(t, a, seed, total, minSize)
	}
}

// oracleChunk is the oracle's record of one delivered chunk.
type oracleChunk struct {
	off      uint64
	reserved uint64
}

func differentialSequence(t *testing.T, a alloc.Allocator, seed int64, total, minSize uint64) {
	t.Helper()
	geo := a.Geometry()
	mgr := elastic.Find(a)
	sl := slab.Find(a)
	rng := rand.New(rand.NewSource(seed))
	h := a.NewHandle()

	var live []oracleChunk
	occupied := map[uint64]bool{} // allocation-unit slot -> taken

	// sizeFor picks a request size for the single-alloc paths. Slab
	// stacks take class-boundary and non-power-of-two sizes half the
	// time — cutoff±1, the cutoff itself, arbitrary odd sizes — so run
	// carving, the half-step classes and the pass-through boundary all
	// get oracle coverage; other stacks keep the power-of-two ladder.
	sizeFor := func() uint64 {
		size := uint64(1) << (3 + rng.Intn(10)) // 8..4096
		if sl != nil && sl.Cutoff() != 0 && rng.Intn(2) == 0 {
			switch rng.Intn(4) {
			case 0:
				size = sl.Cutoff() - 1
			case 1:
				size = sl.Cutoff()
			case 2:
				size = sl.Cutoff() + 1
			default:
				size = 1 + uint64(rng.Int63n(int64(geo.MaxSize)))
			}
		}
		return size
	}

	admit := func(step int, off, size uint64, how string) {
		// The buddy reserves the geometry's power-of-two rounding; a slab
		// layer reserves the size class instead — unless its runs were
		// exhausted and the request fell through to the buddy, so both
		// answers are legitimate. ChunkSize must report whichever extent
		// was actually reserved; class extents are only MinSize-aligned.
		reserved := geo.SizeOfLevel(geo.LevelForSize(size))
		align := reserved
		if cs, ok := a.(alloc.ChunkSizer); ok {
			got := cs.ChunkSize(off)
			matched := got == reserved
			if sl != nil && !matched {
				if cls, slabbed := sl.ReservedFor(size); slabbed && got == cls {
					reserved, align, matched = cls, minSize, true
				}
			}
			if !matched {
				t.Fatalf("seed %d step %d: ChunkSize(%#x) = %d, want reserved %d",
					seed, step, off, got, reserved)
			}
		}
		// Re-read the span per admission: elastic grows widen it mid-run.
		span := alloc.SpanOf(a)
		if off%align != 0 || off+reserved > span {
			t.Fatalf("seed %d step %d: %s(%d) -> [%d,%d) misaligned or outside the %d-byte span",
				seed, step, how, size, off, off+reserved, span)
		}
		for u := off / minSize; u < (off+reserved)/minSize; u++ {
			if occupied[u] {
				t.Fatalf("seed %d step %d: %s(%d) at %#x double-hands-out unit %d",
					seed, step, how, size, off, u)
			}
			occupied[u] = true
		}
		live = append(live, oracleChunk{off, reserved})
	}
	release := func(step, k int) oracleChunk {
		c := live[k]
		for u := c.off / minSize; u < (c.off+c.reserved)/minSize; u++ {
			if !occupied[u] {
				t.Fatalf("seed %d step %d: oracle lost unit %d of [%d,%d)", seed, step, u, c.off, c.off+c.reserved)
			}
			delete(occupied, u)
		}
		live[k] = live[len(live)-1]
		live = live[:len(live)-1]
		return c
	}

	steps := 4000
	if testing.Short() {
		steps = 800
	}
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // single alloc through the handle
			size := sizeFor()
			if off, ok := h.Alloc(size); ok {
				admit(step, off, size, "Alloc")
			}
		case op < 6 && len(live) > 0: // single free through the handle
			c := release(step, rng.Intn(len(live)))
			h.Free(c.off)
		case op < 7: // batched alloc through the bulk contract
			size := uint64(1) << (3 + rng.Intn(8)) // 8..1024
			// Half the batches use sizes 7/8/9 — one lane short of a packed
			// status word, exactly one word, and one lane past it — so the
			// bulk scan's word-aligned rover is exercised mid-word, on the
			// boundary, and straddling it.
			var n int
			switch rng.Intn(6) {
			case 0:
				n = 7
			case 1:
				n = 8
			case 2:
				n = 9
			default:
				n = 1 + rng.Intn(48)
			}
			offs := alloc.HandleAllocBatch(h, size, n)
			for _, off := range offs {
				admit(step, off, size, "AllocBatch")
			}
			// Scrub right after a word-straddling batch: the rebuild writes
			// whole packed words from the oracle-visible live set, so any
			// stray bit the batch left in a neighbouring lane of its tail
			// word would surface as a ChunkSize or occupancy divergence on
			// the very next operations.
			if len(offs) > 0 && n <= 9 && rng.Intn(2) == 0 {
				if s, ok := a.(alloc.Scrubber); ok {
					s.Scrub()
					for _, c := range live {
						if cs, ok := a.(alloc.ChunkSizer); ok {
							if got := cs.ChunkSize(c.off); got != c.reserved {
								t.Fatalf("seed %d step %d: after word-boundary Scrub, ChunkSize(%#x) = %d, want %d",
									seed, step, c.off, got, c.reserved)
							}
						}
					}
				}
			}
		case op < 8 && len(live) > 1: // batched free through the bulk contract
			n := 1 + rng.Intn(len(live))
			batch := make([]uint64, 0, n)
			for i := 0; i < n; i++ {
				batch = append(batch, release(step, rng.Intn(len(live))).off)
			}
			alloc.HandleFreeBatch(h, batch)
		case op < 9: // quiescent maintenance: flush residue, then re-verify
			if s, ok := a.(alloc.Scrubber); ok {
				s.Scrub()
				for _, c := range live {
					if cs, ok := a.(alloc.ChunkSizer); ok {
						if got := cs.ChunkSize(c.off); got != c.reserved {
							t.Fatalf("seed %d step %d: after Scrub, ChunkSize(%#x) = %d, want %d",
								seed, step, c.off, got, c.reserved)
						}
					}
				}
			}
		default: // convenience-path alloc (bypasses magazines)
			size := sizeFor()
			if off, ok := a.Alloc(size); ok {
				admit(step, off, size, "conv Alloc")
			}
		}
		// Elastic lifecycle interleave: advance the capacity manager
		// between allocator operations. Poll completes pending retires and
		// applies the watermark policy; forced Grow/Shrink decisions make
		// sure instance-set transitions happen regardless of where the
		// random walk left utilization. Errors (at the cap, at the floor)
		// are legitimate outcomes here.
		if mgr != nil && rng.Intn(12) == 0 {
			switch rng.Intn(4) {
			case 0, 1:
				mgr.Poll()
			case 2:
				mgr.Grow()
			case 3:
				mgr.Shrink()
			}
		}
	}

	// Drain through the batched path, quiesce, and reconcile stats.
	var rest []uint64
	for _, c := range live {
		rest = append(rest, c.off)
	}
	alloc.HandleFreeBatch(h, rest)
	if s, ok := a.(alloc.Scrubber); ok {
		s.Scrub()
	}
	if mgr != nil {
		// Everything is freed and scrubbed (magazines flushed, depot
		// drained), so every pending drain is at zero live: one Poll must
		// complete every retirement. A slot still draining afterwards
		// means the live accounting leaked.
		mgr.Poll()
		for _, info := range mgr.Router().InstanceInfos() {
			if info.State == multi.Draining {
				t.Fatalf("seed %d: slot %d still draining after full drain+scrub (live=%d, liveBytes=%d)",
					seed, info.Slot, info.Live, info.LiveBytes)
			}
			if info.State == multi.Active && (info.Live != 0 || info.LiveBytes != 0) {
				t.Fatalf("seed %d: drained slot %d reports live=%d liveBytes=%d",
					seed, info.Slot, info.Live, info.LiveBytes)
			}
		}
	}
	for _, layer := range alloc.StackStats(a) {
		if layer.Stats.Allocs != layer.Stats.Frees {
			t.Fatalf("seed %d: layer %q unbalanced after drain: %d allocs vs %d frees",
				seed, layer.Layer, layer.Stats.Allocs, layer.Stats.Frees)
		}
	}
	if sh := shard.Find(a); sh != nil {
		// Sharded stacks additionally reconcile the per-CPU caches and the
		// remote-free stashes: after the full drain and Scrub nothing may
		// stay parked, and every chunk ever pushed (local park or remote
		// stash) must have either been recycled by a cache hit or flushed
		// back to the trees.
		tot := sh.Totals()
		if tot.CachedNow != 0 || tot.StashedNow != 0 {
			t.Fatalf("seed %d: shard layer still parks %d cached + %d stashed chunks after drain+Scrub",
				seed, tot.CachedNow, tot.StashedNow)
		}
		if tot.LocalFrees+tot.RemoteFrees != tot.Hits+tot.Flushed {
			t.Fatalf("seed %d: shard stash/cache flow unbalanced: %d local + %d remote pushes vs %d hits + %d flushed",
				seed, tot.LocalFrees, tot.RemoteFrees, tot.Hits, tot.Flushed)
		}
	}
	mustAllocAfterDrain(t, a, geo.MaxSize, "differential drain")
}
