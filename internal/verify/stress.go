package verify

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
)

// StressConfig parameterizes a deterministic concurrent stress run.
type StressConfig struct {
	// Workers is the number of concurrent goroutines.
	Workers int
	// Ops is the number of operations each worker attempts.
	Ops int
	// Sizes is the request-size mix workers draw from uniformly.
	Sizes []uint64
	// FreeBias in [0,100] is the percentage of steps that free a live
	// chunk (when one exists); the rest allocate. Higher bias keeps
	// occupancy lower.
	FreeBias int
	// MaxLive caps each worker's live set; beyond it the worker frees
	// regardless of bias (bounds occupancy deterministically).
	MaxLive int
	// Seed makes the whole run reproducible: worker k derives its private
	// stream from Seed and k only.
	Seed uint64
}

// Report is the outcome of a stress run.
type Report struct {
	Allocs     uint64
	Frees      uint64
	AllocFails uint64
	Overlaps   uint64 // S1 violations (must be 0)
	Unbacked   uint64 // S2 violations (must be 0)
	PeakBytes  int64  // maximum concurrently live bytes
	DrainErr   error  // non-nil when the checker did not quiesce
}

// Failed reports whether the run observed any correctness violation.
func (r Report) Failed() bool {
	return r.Overlaps != 0 || r.Unbacked != 0 || r.DrainErr != nil
}

// String renders the report for CLI use.
func (r Report) String() string {
	status := "OK"
	if r.Failed() {
		status = "FAILED"
	}
	s := fmt.Sprintf("%s: %d allocs, %d frees, %d alloc-fails, peak %d bytes live",
		status, r.Allocs, r.Frees, r.AllocFails, r.PeakBytes)
	if r.Overlaps != 0 {
		s += fmt.Sprintf(", %d S1 overlaps", r.Overlaps)
	}
	if r.Unbacked != 0 {
		s += fmt.Sprintf(", %d S2 unbacked frees", r.Unbacked)
	}
	if r.DrainErr != nil {
		s += ", drain: " + r.DrainErr.Error()
	}
	return s
}

// xorshift is the workers' private PRNG: no allocation, no locking, and
// identical across runs with the same seed.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// Stress drives a verified wrapper of the allocator with Workers
// concurrent schedules and returns the aggregated report. The allocator
// is drained afterwards and the checker's quiescence is part of the
// verdict.
func Stress(a alloc.Allocator, cfg StressConfig) (Report, error) {
	if cfg.Workers <= 0 || cfg.Ops <= 0 || len(cfg.Sizes) == 0 {
		return Report{}, fmt.Errorf("verify: stress config needs workers, ops and sizes")
	}
	if cfg.MaxLive <= 0 {
		cfg.MaxLive = 64
	}
	v, err := Wrap(a)
	if err != nil {
		return Report{}, err
	}
	var wg sync.WaitGroup
	handles := make([]*Handle, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		handles[w] = v.NewHandle()
	}
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := handles[w]
			rng := xorshift(cfg.Seed*2654435761 + uint64(w)*40503 + 1)
			var live []uint64
			for i := 0; i < cfg.Ops; i++ {
				doFree := len(live) >= cfg.MaxLive ||
					(len(live) > 0 && int(rng.next()%100) < cfg.FreeBias)
				if doFree {
					k := int(rng.next() % uint64(len(live)))
					h.Free(live[k])
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				size := cfg.Sizes[rng.next()%uint64(len(cfg.Sizes))]
				if off, ok := h.Alloc(size); ok {
					live = append(live, off)
				}
			}
			for _, off := range live {
				h.Free(off)
			}
		}()
	}
	wg.Wait()
	var stats alloc.Stats
	for _, h := range handles {
		stats.Add(*h.Stats())
	}
	rep := Report{
		Allocs:     stats.Allocs,
		Frees:      stats.Frees,
		AllocFails: stats.AllocFails,
		Overlaps:   v.Checker().Overlaps(),
		Unbacked:   v.Checker().Unbacked(),
		PeakBytes:  v.Checker().PeakBytes(),
		DrainErr:   v.Checker().Quiesced(),
	}
	return rep, nil
}
