// Package cloudwu implements the paper's "buddy-sl" baseline [21]: the
// tree-based buddy allocator of github.com/cloudwu/buddy (buddy.c), made
// thread-safe the way the paper's evaluation uses it — by wrapping every
// operation in one global spin-lock.
//
// Unlike the status-bit tree of the non-blocking buddy system, this design
// stores one of four states per node — UNUSED, USED, SPLIT, FULL — and
// allocates by descending from the root, splitting UNUSED nodes on the
// way down, then repairing FULL marks on the way back up. Frees locate the
// serving node by descending along SPLIT nodes toward the freed offset and
// merge buddies bottom-up. The state machine is inherently sequential,
// which is exactly why it needs the lock.
package cloudwu

import (
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/geometry"
	"repro/internal/spinlock"
)

func init() {
	alloc.Register("buddy-sl", func(cfg alloc.Config) (alloc.Allocator, error) {
		return New(cfg)
	})
}

// Node states, as in buddy.c.
const (
	unused uint8 = iota // chunk entirely free
	used                // chunk delivered by an allocation
	split               // chunk divided; children carry the state
	full                // chunk divided and no free space anywhere below
)

// Allocator is a spin-lock protected cloudwu tree buddy.
type Allocator struct {
	geo  geometry.Geometry
	lock spinlock.Locker
	// tree stores the node states with the root at index 1 (buddy.c uses
	// 0-based indexing; the offset math is otherwise identical).
	tree []uint8

	mu      sync.Mutex
	handles []*Handle
	retired alloc.Stats // retained counters of closed handles
}

// New builds a "buddy-sl" instance.
func New(cfg alloc.Config) (*Allocator, error) {
	geo, err := geometry.New(cfg.Total, cfg.MinSize, cfg.MaxSize)
	if err != nil {
		return nil, err
	}
	return &Allocator{
		geo:  geo,
		lock: spinlock.New(spinlock.Kind(cfg.LockKind)),
		tree: make([]uint8, geo.Nodes()),
	}, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "buddy-sl" }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.geo }

// Alloc implements alloc.Allocator.
func (a *Allocator) Alloc(size uint64) (uint64, bool) {
	var s alloc.Stats
	return a.alloc(size, &s)
}

// Free implements alloc.Allocator.
func (a *Allocator) Free(offset uint64) {
	var s alloc.Stats
	a.release(offset, &s)
}

// NewHandle implements alloc.Allocator.
func (a *Allocator) NewHandle() alloc.Handle {
	a.mu.Lock()
	defer a.mu.Unlock()
	h := &Handle{a: a}
	a.handles = append(a.handles, h)
	return h
}

// Stats implements alloc.Allocator; call it only at quiescent points.
func (a *Allocator) Stats() alloc.Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	total := a.retired
	for _, h := range a.handles {
		total.Add(h.stats)
	}
	return total
}

// Handle is the per-worker face of the allocator.
type Handle struct {
	a      *Allocator
	stats  alloc.Stats
	closed bool
}

// Stats implements alloc.Handle.
func (h *Handle) Stats() *alloc.Stats { return &h.stats }

// Close implements alloc.HandleCloser: fold this handle's counters into
// the allocator's retained totals and unregister it, so handle-churning
// callers do not grow the registry without bound. The handle must not be
// used afterwards.
func (h *Handle) Close() {
	if h.closed {
		return
	}
	h.closed = true
	a := h.a
	a.mu.Lock()
	for i, other := range a.handles {
		if other == h {
			a.handles[i] = a.handles[len(a.handles)-1]
			a.handles = a.handles[:len(a.handles)-1]
			break
		}
	}
	a.retired.Add(h.stats)
	a.mu.Unlock()
}

// Handles returns the number of registered (not yet closed) handles — a
// diagnostic for the handle-leak regression tests.
func (a *Allocator) Handles() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.handles)
}

// Alloc implements alloc.Handle.
func (h *Handle) Alloc(size uint64) (uint64, bool) { return h.a.alloc(size, &h.stats) }

// Free implements alloc.Handle.
func (h *Handle) Free(offset uint64) { h.a.release(offset, &h.stats) }

func (a *Allocator) alloc(size uint64, s *alloc.Stats) (uint64, bool) {
	geo := a.geo
	if size > geo.MaxSize {
		s.AllocFails++
		return 0, false
	}
	level := geo.LevelForSize(size)
	a.lock.Lock()
	s.LockAcq++
	n, ok := a.descend(1, level)
	a.lock.Unlock()
	if !ok {
		s.AllocFails++
		return 0, false
	}
	s.Allocs++
	return geo.OffsetOf(n), true
}

// descend searches the subtree of n for an UNUSED node at the target
// level, splitting on the way down and repairing FULL marks on the way up
// (buddy.c's combined _alloc walk).
func (a *Allocator) descend(n uint64, targetLevel int) (uint64, bool) {
	switch {
	case geometry.LevelOf(n) == targetLevel:
		if a.tree[n] != unused {
			return 0, false
		}
		a.tree[n] = used
		return n, true
	case a.tree[n] == used || a.tree[n] == full:
		return 0, false
	case a.tree[n] == unused:
		a.tree[n] = split
		a.tree[geometry.Left(n)] = unused
		a.tree[geometry.Right(n)] = unused
	}
	// tree[n] == split: try the left subtree, then the right.
	got, ok := a.descend(geometry.Left(n), targetLevel)
	if !ok {
		got, ok = a.descend(geometry.Right(n), targetLevel)
	}
	if ok && a.closed(geometry.Left(n)) && a.closed(geometry.Right(n)) {
		a.tree[n] = full
	}
	return got, ok
}

// closed reports whether no allocation can be served below n.
func (a *Allocator) closed(n uint64) bool {
	return a.tree[n] == used || a.tree[n] == full
}

func (a *Allocator) release(offset uint64, s *alloc.Stats) {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("buddy-sl: Free(%#x): offset outside the managed region or unaligned", offset))
	}
	a.lock.Lock()
	s.LockAcq++
	if !a.freeWalk(1, offset) {
		a.lock.Unlock()
		panic(fmt.Sprintf("buddy-sl: Free(%#x): offset not currently allocated (double free?)", offset))
	}
	a.lock.Unlock()
	s.Frees++
}

// freeWalk descends along SPLIT/FULL nodes toward the offset until it hits
// the USED node serving it, marks it UNUSED, and merges/unmarks on the way
// back up: two UNUSED children collapse into an UNUSED parent, and any
// FULL ancestor on the path reopens to SPLIT.
func (a *Allocator) freeWalk(n uint64, offset uint64) bool {
	switch a.tree[n] {
	case used:
		if a.geo.OffsetOf(n) != offset {
			return false
		}
		a.tree[n] = unused
		return true
	case unused:
		return false
	}
	// split or full: recurse into the half containing the offset.
	child := geometry.Left(n)
	if offset >= a.geo.OffsetOf(n)+a.geo.SizeOf(n)/2 {
		child = geometry.Right(n)
	}
	if !a.freeWalk(child, offset) {
		return false
	}
	l, r := geometry.Left(n), geometry.Right(n)
	if a.tree[l] == unused && a.tree[r] == unused {
		a.tree[n] = unused
	} else {
		a.tree[n] = split
	}
	return true
}

// ChunkSize implements alloc.ChunkSizer by descending along SPLIT nodes
// toward the offset until the USED node serving it, mirroring freeWalk.
func (a *Allocator) ChunkSize(offset uint64) uint64 {
	geo := a.geo
	if offset >= geo.Total || offset%geo.MinSize != 0 {
		panic(fmt.Sprintf("buddy-sl: ChunkSize(%#x): offset outside the managed region or unaligned", offset))
	}
	a.lock.Lock()
	n := uint64(1)
	for {
		switch a.tree[n] {
		case used:
			size := geo.SizeOf(n)
			haveOff := geo.OffsetOf(n)
			a.lock.Unlock()
			if haveOff != offset {
				panic(fmt.Sprintf("buddy-sl: ChunkSize(%#x): offset is interior to a chunk", offset))
			}
			return size
		case split, full:
			child := geometry.Left(n)
			if offset >= geo.OffsetOf(n)+geo.SizeOf(n)/2 {
				child = geometry.Right(n)
			}
			n = child
		default: // unused
			a.lock.Unlock()
			panic(fmt.Sprintf("buddy-sl: ChunkSize(%#x): offset not currently allocated", offset))
		}
	}
}
