package stack_test

import (
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/elastic"
	"repro/internal/multi"
	"repro/internal/stack"
)

// TestDifferentialMigration fuzzes a migration-enabled mapped+elastic
// stack against a chunk-identity oracle. Unlike the generic differential
// oracle — which assumes an offset never moves while live — this one
// tracks each chunk by identity: the Poll-driven Migrate step rewrites
// its current offset through the OnMigrate hook, and the byte pattern
// (keyed by identity, not address) must survive every move. Forced
// Shrink calls interleave with the churn so drains routinely start on
// slots that still carry live chunks and the migrator has real work.
func TestDifferentialMigration(t *testing.T) {
	t.Parallel()
	per := alloc.Config{Total: 1 << 14, MinSize: 64, MaxSize: 1 << 12}
	st, err := stack.Build(stack.Spec{
		Variant:   "4lvl-nb",
		Per:       per,
		Instances: 3,
		Elastic: &elastic.Config{
			MinInstances: 1, MaxInstances: 6, Hysteresis: 1000,
			Migration: elastic.MigrationConfig{Enabled: true, AfterPolls: 1},
		},
		Mapped: true,
	})
	if err != nil {
		t.Fatalf("stack.Build: %v", err)
	}
	mgr, m, region := st.Elastic, st.Multi, st.Mem
	span := m.InstanceSpan()

	type chunk struct {
		off, size uint64
		id        byte
	}
	occupied := make(map[uint64]*chunk) // keyed by the chunk's current offset
	var live []*chunk
	migrations := 0
	mgr.OnMigrate(func(oldOff, newOff, size uint64) {
		c := occupied[oldOff]
		if c == nil {
			t.Fatalf("migrated offset %#x the oracle does not know", oldOff)
		}
		if c.size != size {
			t.Fatalf("chunk %d migrated with size %d, oracle says %d", c.id, size, c.size)
		}
		if occupied[newOff] != nil {
			t.Fatalf("migration target %#x collides with live chunk %d", newOff, occupied[newOff].id)
		}
		delete(occupied, oldOff)
		c.off = newOff
		occupied[newOff] = c
		migrations++
	})
	window := func(c *chunk) []byte {
		return region.Bytes(m.InstanceOf(c.off), c.off%span, c.size)
	}
	check := func(c *chunk) {
		for i, v := range window(c) {
			if v != c.id {
				t.Fatalf("chunk %d at %#x: byte %d is %#x, want %#x — contents lost across a move",
					c.id, c.off, i, v, c.id)
			}
		}
	}

	h := mgr.NewHandle()
	rng := rand.New(rand.NewSource(42))
	nextID := byte(0)
	for step := 0; step < 6000; step++ {
		switch r := rng.Intn(10); {
		case r < 4 || len(live) == 0: // alloc a random class, stamp the pattern
			size := per.MinSize << rng.Intn(5)
			off, ok := h.Alloc(size)
			if !ok {
				break
			}
			if prev := occupied[off]; prev != nil {
				t.Fatalf("offset %#x handed out while chunk %d lives there", off, prev.id)
			}
			nextID = nextID%250 + 1 // nonzero, wraps
			c := &chunk{off: off, size: mgr.ChunkSize(off), id: nextID}
			b := window(c)
			for i := range b {
				b[i] = c.id
			}
			occupied[off] = c
			live = append(live, c)
		case r < 7: // free a random chunk, verifying its pattern first
			k := rng.Intn(len(live))
			c := live[k]
			check(c)
			delete(occupied, c.off)
			h.Free(c.off)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		case r == 7: // force a drain: the victim usually still has live chunks
			_, _ = mgr.Shrink()
		case r == 8: // re-expand so the floor guard never starves the drains
			_, _ = mgr.Grow()
		default: // the migrate/retire engine runs here
			mgr.Poll()
		}
	}

	// Wind down: every surviving chunk still carries its pattern at its
	// final address, wherever migration put it.
	for _, c := range live {
		check(c)
		h.Free(c.off)
	}
	for i := 0; i < 10; i++ {
		mgr.Poll()
	}
	for _, info := range m.InstanceInfos() {
		if info.State == multi.Draining {
			t.Fatalf("slot %d still draining after the drain: %+v", info.Slot, info)
		}
		if info.Live != 0 {
			t.Fatalf("slot %d leaks %d chunks", info.Slot, info.Live)
		}
	}
	if migrations == 0 {
		t.Fatal("6000 steps with forced drains never migrated — scenario lost its point")
	}
	c := mgr.Counters()
	if int(c.MigratedChunks) != migrations {
		t.Fatalf("counter says %d migrations, hooks saw %d", c.MigratedChunks, migrations)
	}
	s := mgr.Stats()
	if s.Allocs != s.Frees {
		t.Fatalf("allocs %d != frees %d after the drain", s.Allocs, s.Frees)
	}
}
