// Package trace records allocator operation streams and replays them
// deterministically — the regression-debugging tool for an allocator whose
// interesting bugs live in specific alloc/free interleavings. A recorded
// trace captures per-worker operation sequences (offsets are recorded for
// frees by referencing the allocation event that produced them, so a
// replay on a different allocator or layout stays meaningful even when
// placement differs).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"repro/internal/alloc"
	"repro/internal/geometry"
)

// Op is one recorded operation.
type Op struct {
	// Worker identifies the recording handle.
	Worker int32
	// Size is the request size for allocations; 0 marks a free.
	Size uint64
	// Ref is, for frees, the index (within this worker's trace) of the
	// allocation event whose chunk is released.
	Ref int64
	// OK records whether the original allocation succeeded.
	OK bool
}

// Trace is a recorded operation stream.
type Trace struct {
	Ops []Op
}

// Recorder wraps an alloc.Handle, recording every operation.
type Recorder struct {
	inner  alloc.Handle
	worker int32
	trace  *Trace
	// mu, when non-nil, serializes each whole operation (inner call plus
	// trace append, set by the allocator-level layer). Locking around the
	// append alone would be racy in a stronger sense than data races: an
	// op could be appended after an op that observed its effects,
	// recording a schedule that never happened and breaking replay.
	mu *sync.Mutex
	// myEvents maps live offsets to the recording index of the allocation
	// that produced them, so frees can reference allocations.
	events map[uint64]int64
}

// NewRecorder wraps a handle; all Recorders appending to the same Trace
// must do so from a single goroutine (record single-threaded schedules) or
// the caller must provide external ordering. The Allocator layer below
// provides that ordering automatically.
func NewRecorder(t *Trace, worker int32, inner alloc.Handle) *Recorder {
	return &Recorder{inner: inner, worker: worker, trace: t, events: map[uint64]int64{}}
}

// Alloc records and forwards an allocation.
func (r *Recorder) Alloc(size uint64) (uint64, bool) {
	if r.mu != nil {
		r.mu.Lock()
	}
	off, ok := r.inner.Alloc(size)
	idx := int64(len(r.trace.Ops))
	r.trace.Ops = append(r.trace.Ops, Op{Worker: r.worker, Size: size, Ref: -1, OK: ok})
	if r.mu != nil {
		r.mu.Unlock()
	}
	if ok {
		r.events[off] = idx
	}
	return off, ok
}

// Free records and forwards a release.
func (r *Recorder) Free(offset uint64) {
	ref, ok := r.events[offset]
	if !ok {
		panic(fmt.Sprintf("trace: Free(%#x) of an offset this recorder did not allocate", offset))
	}
	delete(r.events, offset)
	if r.mu != nil {
		r.mu.Lock()
	}
	r.inner.Free(offset)
	r.trace.Ops = append(r.trace.Ops, Op{Worker: r.worker, Ref: ref})
	if r.mu != nil {
		r.mu.Unlock()
	}
}

// Stats forwards to the wrapped handle.
func (r *Recorder) Stats() *alloc.Stats { return r.inner.Stats() }

// Close implements alloc.HandleCloser by forwarding to the wrapped
// handle; the recorder keeps no chunk state of its own.
func (r *Recorder) Close() { alloc.CloseHandle(r.inner) }

// Allocator is the trace-recording layer of a composable stack: every
// handle it creates is a Recorder appending to one shared Trace. Each
// recorded operation is serialized whole (inner call plus append), so
// the trace is a valid linearization that replays faithfully — the cost
// is that recording removes the concurrency it observes, the classic
// tracing trade-off; use it for debugging schedules, not benchmarking.
// The convenience Alloc/Free pass through unrecorded (they are not a
// worker schedule). It forwards the whole layer contract, so recording
// can be slipped between any two layers of a stack.
type Allocator struct {
	inner alloc.Allocator
	sizer alloc.ChunkSizer
	trace *Trace

	mu      sync.Mutex
	workers int32
}

// NewAllocator wraps a stack so every handle records into t.
func NewAllocator(inner alloc.Allocator, t *Trace) (*Allocator, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("trace: %s cannot report chunk sizes", inner.Name())
	}
	return &Allocator{inner: inner, sizer: sizer, trace: t}, nil
}

// Name implements alloc.Allocator.
func (a *Allocator) Name() string { return "trace+" + a.inner.Name() }

// Geometry implements alloc.Allocator.
func (a *Allocator) Geometry() geometry.Geometry { return a.inner.Geometry() }

// OffsetSpan implements alloc.Spanner (pass-through).
func (a *Allocator) OffsetSpan() uint64 { return alloc.SpanOf(a.inner) }

// Unwrap exposes the wrapped stack to generic stack walkers.
func (a *Allocator) Unwrap() alloc.Allocator { return a.inner }

// Trace exposes the shared trace; read it at quiescent points.
func (a *Allocator) Trace() *Trace { return a.trace }

// Alloc implements alloc.Allocator (pass-through, unrecorded).
func (a *Allocator) Alloc(size uint64) (uint64, bool) { return a.inner.Alloc(size) }

// Free implements alloc.Allocator (pass-through, unrecorded).
func (a *Allocator) Free(offset uint64) { a.inner.Free(offset) }

// AllocBatch implements alloc.BatchAllocator (pass-through, unrecorded —
// like the convenience Alloc, it is not a worker schedule). Recording
// handles see batches as individual operations through the shim, which
// keeps replay exact.
func (a *Allocator) AllocBatch(size uint64, n int) []uint64 {
	return alloc.AllocBatchOf(a.inner, size, n)
}

// FreeBatch implements alloc.BatchAllocator (pass-through, unrecorded).
func (a *Allocator) FreeBatch(offsets []uint64) { alloc.FreeBatchOf(a.inner, offsets) }

// ChunkSize implements alloc.ChunkSizer (pass-through).
func (a *Allocator) ChunkSize(offset uint64) uint64 { return a.sizer.ChunkSize(offset) }

// Scrub implements alloc.Scrubber (pass-through).
func (a *Allocator) Scrub() {
	if s, ok := a.inner.(alloc.Scrubber); ok {
		s.Scrub()
	}
}

// Stats implements alloc.Allocator (pass-through).
func (a *Allocator) Stats() alloc.Stats { return a.inner.Stats() }

// LayerStats implements alloc.LayerStatser: the recorder contributes its
// op volume, then the wrapped stack's entries.
func (a *Allocator) LayerStats() []alloc.LayerStats {
	a.mu.Lock()
	entry := alloc.LayerStats{
		Layer: "trace",
		Extra: map[string]uint64{
			"ops":     uint64(len(a.trace.Ops)),
			"workers": uint64(a.workers),
		},
	}
	a.mu.Unlock()
	return append([]alloc.LayerStats{entry}, alloc.StackStats(a.inner)...)
}

// NewHandle implements alloc.Allocator: a recording handle over an inner
// handle, with trace appends serialized across handles.
func (a *Allocator) NewHandle() alloc.Handle {
	a.mu.Lock()
	worker := a.workers
	a.workers++
	a.mu.Unlock()
	r := NewRecorder(a.trace, worker, a.inner.NewHandle())
	r.mu = &a.mu
	return r
}

// Replay re-executes a trace against a fresh allocator, returning how many
// allocations succeeded. Frees of allocations that failed on replay are
// skipped. The trace is replayed in recorded order on a single goroutine,
// which reproduces the logical schedule deterministically.
func Replay(t *Trace, a alloc.Allocator) (succeeded int, err error) {
	h := a.NewHandle()
	offsets := make([]uint64, len(t.Ops))
	oks := make([]bool, len(t.Ops))
	for i, op := range t.Ops {
		if op.Ref >= 0 { // free
			if op.Ref >= int64(i) {
				return succeeded, fmt.Errorf("trace: op %d frees future op %d", i, op.Ref)
			}
			if oks[op.Ref] {
				h.Free(offsets[op.Ref])
				oks[op.Ref] = false
			}
			continue
		}
		off, ok := h.Alloc(op.Size)
		offsets[i], oks[i] = off, ok
		if ok {
			succeeded++
		}
	}
	return succeeded, nil
}

// traceMagic guards the serialized format.
const traceMagic = uint32(0x4e424253) // "NBBS"

// Write serializes the trace in a compact binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, traceMagic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Ops))); err != nil {
		return err
	}
	for _, op := range t.Ops {
		okByte := uint8(0)
		if op.OK {
			okByte = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Worker); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Size); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, op.Ref); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, okByte); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %#x", magic)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxOps = 1 << 30
	if n > maxOps {
		return nil, fmt.Errorf("trace: unreasonable op count %d", n)
	}
	t := &Trace{Ops: make([]Op, n)}
	for i := range t.Ops {
		var okByte uint8
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Worker); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Size); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &t.Ops[i].Ref); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &okByte); err != nil {
			return nil, err
		}
		t.Ops[i].OK = okByte != 0
	}
	return t, nil
}
