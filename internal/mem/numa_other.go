//go:build !linux

package mem

import "unsafe"

// Portable NUMA fallback: one node, no physical placement — the same
// bookkeeping-only split as the mapped-memory fallback, so stacks built
// WithNUMAPolicy behave identically everywhere.

func numaNodeIDs() []int { return []int{0} }

func nodeOfCPU(cpu int) int { return 0 }

func numaSupported() bool { return false }

func osBindNode(buf []byte, node int) error { return nil }

func osNodeOfAddr(p unsafe.Pointer) (int, bool) { return 0, false }
