// Package verify provides runtime verification for allocators: a
// unit-granular claim checker that detects overlapping live allocations
// (the paper's safety property S1) and unbalanced releases (S2), a
// wrapper that attaches the checker to any allocator transparently, and a
// deterministic concurrent stress runner that drives verified instances
// with reproducible pseudo-random schedules.
//
// The checker also tracks live-byte occupancy and its peak — the "memory
// consumption peak" the paper's conclusions name as the metric front-end
// composition should improve — so stress reports double as occupancy
// measurements.
package verify

import (
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
)

// Checker tracks per-unit claims of a managed region. All methods are
// safe for concurrent use; violations are counted, not panicked, so a
// stress run can report every incident of a misbehaving allocator rather
// than dying on the first.
type Checker struct {
	minSize   uint64
	units     []atomic.Int32
	overlaps  atomic.Uint64
	unbacked  atomic.Uint64
	liveBytes atomic.Int64
	peakBytes atomic.Int64
}

// NewChecker builds a checker for a region of total bytes with the given
// allocation unit.
func NewChecker(total, minSize uint64) *Checker {
	return &Checker{
		minSize: minSize,
		units:   make([]atomic.Int32, total/minSize),
	}
}

// Claim records that [offset, offset+size) was delivered by an
// allocation. Any unit already claimed counts as an overlap violation.
func (c *Checker) Claim(offset, size uint64) {
	for u := offset / c.minSize; u < (offset+size)/c.minSize; u++ {
		if c.units[u].Add(1) != 1 {
			c.overlaps.Add(1)
		}
	}
	live := c.liveBytes.Add(int64(size))
	for {
		peak := c.peakBytes.Load()
		if live <= peak || c.peakBytes.CompareAndSwap(peak, live) {
			break
		}
	}
}

// Release records that [offset, offset+size) was freed. Any unit not
// currently claimed counts as an unbacked-release violation.
func (c *Checker) Release(offset, size uint64) {
	for u := offset / c.minSize; u < (offset+size)/c.minSize; u++ {
		if c.units[u].Add(-1) != 0 {
			c.unbacked.Add(1)
		}
	}
	c.liveBytes.Add(-int64(size))
}

// Overlaps returns the number of overlapping-claim incidents (S1
// violations) observed so far.
func (c *Checker) Overlaps() uint64 { return c.overlaps.Load() }

// Unbacked returns the number of release-without-claim incidents (S2
// violations) observed so far.
func (c *Checker) Unbacked() uint64 { return c.unbacked.Load() }

// LiveBytes returns the currently claimed bytes.
func (c *Checker) LiveBytes() int64 { return c.liveBytes.Load() }

// PeakBytes returns the maximum concurrently claimed bytes seen.
func (c *Checker) PeakBytes() int64 { return c.peakBytes.Load() }

// Quiesced verifies the checker is back to the empty state: zero live
// claims and zero recorded violations. Call it after draining.
func (c *Checker) Quiesced() error {
	if v := c.Overlaps(); v != 0 {
		return fmt.Errorf("verify: %d overlapping-claim incidents (S1 violated)", v)
	}
	if v := c.Unbacked(); v != 0 {
		return fmt.Errorf("verify: %d unbacked releases (S2 violated)", v)
	}
	for u := range c.units {
		if v := c.units[u].Load(); v != 0 {
			return fmt.Errorf("verify: unit %d left with claim count %d", u, v)
		}
	}
	if v := c.LiveBytes(); v != 0 {
		return fmt.Errorf("verify: %d live bytes after drain", v)
	}
	return nil
}

// Allocator wraps an allocator so every operation is checked. The wrapped
// allocator must implement alloc.ChunkSizer (all allocators in this
// repository do) so the checker can claim the exact reserved window.
type Allocator struct {
	inner alloc.Allocator
	sizer alloc.ChunkSizer
	chk   *Checker
}

// Wrap attaches a fresh checker to an allocator. The checker covers the
// allocator's global offset space, which for composed stacks (a
// multi-instance router) is wider than the per-instance geometry.
func Wrap(inner alloc.Allocator) (*Allocator, error) {
	sizer, ok := inner.(alloc.ChunkSizer)
	if !ok {
		return nil, fmt.Errorf("verify: %s cannot report chunk sizes", inner.Name())
	}
	return &Allocator{
		inner: inner,
		sizer: sizer,
		chk:   NewChecker(alloc.SpanOf(inner), inner.Geometry().MinSize),
	}, nil
}

// Checker exposes the attached checker.
func (a *Allocator) Checker() *Checker { return a.chk }

// Inner exposes the wrapped allocator.
func (a *Allocator) Inner() alloc.Allocator { return a.inner }

// Name labels the wrapped allocator.
func (a *Allocator) Name() string { return "verified+" + a.inner.Name() }

// Handle is a verified per-worker handle.
type Handle struct {
	inner alloc.Handle
	a     *Allocator
}

// NewHandle returns a verified handle.
func (a *Allocator) NewHandle() *Handle {
	return &Handle{inner: a.inner.NewHandle(), a: a}
}

// Alloc forwards and claims the reserved window.
func (h *Handle) Alloc(size uint64) (uint64, bool) {
	off, ok := h.inner.Alloc(size)
	if ok {
		h.a.chk.Claim(off, h.a.sizer.ChunkSize(off))
	}
	return off, ok
}

// Free releases the claim, then forwards. The claim must be released
// before the inner free: afterwards the chunk may instantly be delivered
// to another thread, and a late release would misfire as an S2 violation.
func (h *Handle) Free(offset uint64) {
	h.a.chk.Release(offset, h.a.sizer.ChunkSize(offset))
	h.inner.Free(offset)
}

// Stats forwards to the inner handle.
func (h *Handle) Stats() *alloc.Stats { return h.inner.Stats() }
