// Package stack assembles allocator layer stacks: any alloc.Allocator
// leaf wrapped by any combination of the composable layers — the
// multi-instance router (internal/multi), the caching front-end
// (internal/frontend), the trace recorder (internal/trace) and the
// materialized arena (internal/arena).
//
// Every layer implements the full composable contract (alloc.Allocator +
// alloc.ChunkSizer, forwarding alloc.Spanner, alloc.Scrubber and
// alloc.LayerStatser), so the layers stack in any order; Build fixes the
// canonical production order the paper's conclusions call for:
//
//	leaf variant(s) -> multi router -> elastic manager -> per-CPU shards
//	                -> caching front-end -> trace -> arena
//
// Common compositions are also registered as allocator variants
// ("cached+4lvl-nb", "multi4+4lvl-nb", "cached+multi4+4lvl-nb", and the
// depot-backed "depot+4lvl-nb"/"depot+multi4+4lvl-nb"), which
// makes them first-class citizens of every harness in the repository:
// nbbsbench sweeps, nbbsstress verification, and the conformance suite
// build them by name like any leaf allocator. For those names the
// Config.Total is the global span; the multi router splits it evenly
// over up to four instances (fewer when MaxSize needs a larger share).
package stack

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/arena"
	"repro/internal/elastic"
	"repro/internal/fault"
	"repro/internal/frontend"
	"repro/internal/mem"
	"repro/internal/multi"
	"repro/internal/proc"
	"repro/internal/shard"
	"repro/internal/slab"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Spec describes a layer stack bottom-up.
type Spec struct {
	// Variant is the leaf allocator's registered label. Registered
	// composites work too: a stack can be a layer of another stack.
	Variant string
	// Per is the per-instance geometry (the global span of the stack is
	// Per.Total * Instances).
	Per alloc.Config
	// Instances >= 1 inserts the multi-instance router with the given
	// routing Policy (a 1-instance router is valid: routing introspection
	// works, fallback is a no-op); 0 builds a bare leaf.
	Instances int
	// Policy selects handle routing for the multi router.
	Policy multi.Policy
	// Elastic, when non-nil, wraps the router with the capacity manager:
	// the instance set grows and shrinks at runtime under the given
	// watermark policy (Instances is the initial set). Requires
	// Instances >= 1 and excludes Materialize (a materialized region
	// cannot follow a growing offset span).
	Elastic *elastic.Config
	// Sharded inserts the per-CPU sharded routing layer above the router
	// (and the elastic manager, when present): handles key to Shards
	// processor-hinted shards, each with an affine router preference, a
	// local chunk cache and an inbound remote-free stash (internal/shard).
	// Requires Instances >= 1. Shards <= 0 takes GOMAXPROCS at build time.
	// Combined with Mapped, the backing region is additionally built
	// WithNUMAPolicy so each instance window commits onto the NUMA node of
	// the CPU its shard runs on.
	Sharded bool
	Shards  int
	// Cached inserts the caching front-end; Magazine is the per-class
	// capacity (0 = frontend.DefaultMagazine).
	Cached   bool
	Magazine int
	// Depot attaches the shared magazine depot to the front-end (implies
	// Cached): full magazines are exchanged with a per-size-class global
	// pool in O(1), and refills/drains cross into the back-end as batches
	// through the alloc.BatchAllocator contract. DepotCapacity bounds the
	// full magazines retained per class and BatchRefill sizes a back-end
	// refill (0 = defaults).
	Depot         bool
	DepotCapacity int
	BatchRefill   int
	// Slab inserts the size-class layer above the caching front-end (or
	// whatever sits below it): requests up to the cutoff are served from
	// fixed-size runs carved out of buddy chunks, larger requests pass
	// through. SlabCutoff bounds the largest class (0 =
	// slab.DefaultCutoff, clamped to the geometry).
	Slab       bool
	SlabCutoff uint64
	// Record, when non-nil, inserts the trace-recording layer appending
	// to this trace.
	Record *trace.Trace
	// Materialize wraps the stack in a real-memory arena sized to the
	// global offset span (per-instance sub-arenas over a multi router).
	// Over a Mapped stack the arena borrows the router's region instead of
	// allocating its own — which is also what permits the formerly
	// rejected Elastic+Materialize composition: the byte windows follow
	// the router's commit/decommit lifecycle as the table grows.
	Materialize bool
	// Mapped backs each instance's offset window with platform mapped
	// memory bound to the multi router (requires Instances >= 1): windows
	// are committed while their slot is published and decommitted when it
	// retires, so an elastic shrink returns RSS to the OS (internal/mem;
	// on non-Linux platforms the portable fallback keeps the lifecycle
	// bookkeeping without the RSS effect).
	Mapped bool
	// HugePages requests MADV_HUGEPAGE for mapped windows; it only takes
	// effect when the per-instance span is a multiple of mem.HugePageSize.
	HugePages bool
	// Faults routes the mapped region's lifecycle syscalls through a
	// fault injector (requires Mapped; nil injects nothing). Tests and
	// the chaos harness schedule failures on it after the build — the
	// build itself needs the initial commits to succeed.
	Faults *fault.Injector
	// Telemetry, when non-nil, inserts a latency probe above every layer
	// boundary (backend — unless elastic sits directly on the router —
	// elastic, shard, frontend, slab) and wires each event-emitting
	// layer's flight-recorder sink into the registry's ring. Nil is the
	// disabled state: no probes, no sinks, no hot-path cost.
	Telemetry *telemetry.Registry
}

// Stack is a built layer stack. Top serves the composed contract; the
// typed layer pointers are nil for layers the spec did not request and
// exist for per-layer introspection (stats, flushes, byte windows).
type Stack struct {
	// Top is the outermost layer; use it as the allocator.
	Top alloc.Allocator
	// Backend is the leaf allocator or the multi router over the leaves —
	// the stack below any caching/tracing/materializing layers.
	Backend alloc.Allocator
	// Multi is the router layer (nil for single-instance stacks).
	Multi *multi.Multi
	// Elastic is the capacity manager (nil when Spec.Elastic was nil).
	Elastic *elastic.Manager
	// Shard is the per-CPU sharded routing layer (nil when not Sharded).
	Shard *shard.Allocator
	// Frontend is the caching layer (nil when not Cached).
	Frontend *frontend.Allocator
	// Slab is the size-class layer (nil when not Spec.Slab).
	Slab *slab.Allocator
	// Trace is the recording layer (nil when Record was nil).
	Trace *trace.Allocator
	// Arena is the materialized-region layer (nil when not Materialize).
	Arena *arena.Allocator
	// Mem is the mapped backing region (nil when not Mapped).
	Mem *mem.Region
	// Telemetry is the registry the probes and sinks feed (nil when
	// Spec.Telemetry was nil).
	Telemetry *telemetry.Registry
	// Variant is the leaf allocator label the stack was built from.
	Variant string

	scrubbable bool
}

// leafOf walks a built allocator down to its bottom-most leaf: through
// single-inner wrappers via Unwrap, and through a router via its first
// instance. Needed because a stack can be a layer of another stack
// (registered composites build as leaves), and leaf-only properties like
// scrubbability must be probed on the real leaf, not on a wrapper that
// implements Scrub by forwarding.
func leafOf(a alloc.Allocator) alloc.Allocator {
	for {
		switch v := a.(type) {
		case interface{ Unwrap() alloc.Allocator }:
			a = v.Unwrap()
		case *multi.Multi:
			a = v.Instance(0)
		default:
			return a
		}
	}
}

// Build assembles the stack described by the spec.
func Build(s Spec) (*Stack, error) {
	st := &Stack{Variant: s.Variant}
	if s.Elastic != nil {
		if s.Instances < 1 {
			return nil, fmt.Errorf("stack: elastic requires the multi router (Instances >= 1)")
		}
		if s.Materialize && !s.Mapped {
			return nil, fmt.Errorf("stack: elastic stacks can only materialize over mapped memory (Mapped), so the byte windows follow the growing instance table")
		}
	}
	if s.Mapped && s.Instances < 1 {
		return nil, fmt.Errorf("stack: mapped memory requires the multi router (Instances >= 1); a fixed single-instance stack wants Materialize")
	}
	if s.Sharded && s.Instances < 1 {
		return nil, fmt.Errorf("stack: sharding requires the multi router (Instances >= 1)")
	}
	if s.Faults != nil && !s.Mapped {
		return nil, fmt.Errorf("stack: fault injection requires mapped memory (Mapped) — the injector shims the region's lifecycle syscalls")
	}
	if s.Instances >= 1 {
		m, err := multi.New(s.Variant, s.Instances, s.Per, s.Policy)
		if err != nil {
			return nil, err
		}
		if s.Mapped {
			var opts []mem.Option
			if s.HugePages {
				opts = append(opts, mem.WithHugePages())
			}
			if s.Sharded {
				// Sharded stacks place each window on the node of the CPU
				// whose shard allocates from it (portable no-op elsewhere).
				opts = append(opts, mem.WithNUMAPolicy())
			}
			if s.Faults != nil {
				opts = append(opts, mem.WithFaultInjector(s.Faults))
			}
			r, err := mem.New(m.InstanceSpan(), m.Slots(), opts...)
			if err != nil {
				return nil, fmt.Errorf("stack: reserving mapped backing: %w", err)
			}
			if err := m.BindMemory(r); err != nil {
				return nil, fmt.Errorf("stack: binding mapped backing: %w", err)
			}
			st.Mem = r
		}
		st.Multi = m
		st.Backend = m
	} else {
		a, err := alloc.Build(s.Variant, s.Per)
		if err != nil {
			return nil, err
		}
		if _, ok := a.(alloc.ChunkSizer); !ok {
			return nil, fmt.Errorf("stack: leaf %s cannot report chunk sizes", a.Name())
		}
		st.Backend = a
	}
	_, st.scrubbable = leafOf(st.Backend).(alloc.Scrubber)

	// probe wraps the current top with a latency-recording boundary when
	// telemetry is enabled (a no-op registry-less build inserts nothing).
	probe := func(layer string) error {
		if s.Telemetry == nil {
			return nil
		}
		p, err := telemetry.NewProbe(st.Top, s.Telemetry.Series(layer), s.Telemetry.SampleInterval())
		if err != nil {
			return err
		}
		st.Top = p
		return nil
	}

	st.Top = st.Backend
	if s.Elastic == nil {
		// With elastic the manager must sit directly on the router (it
		// grows the instance table in place), so the backend boundary is
		// observed through the elastic probe instead.
		if err := probe("backend"); err != nil {
			return nil, err
		}
	}
	if s.Elastic != nil {
		mgr, err := elastic.New(st.Multi, *s.Elastic)
		if err != nil {
			return nil, err
		}
		st.Elastic = mgr
		st.Top = mgr
		if err := probe("elastic"); err != nil {
			return nil, err
		}
	}
	if s.Sharded {
		sh, err := shard.New(st.Top, s.Shards)
		if err != nil {
			return nil, err
		}
		st.Shard = sh
		st.Top = sh
		if st.Elastic != nil {
			// Retirement cooperation: chunks parked in a shard cache hold
			// their slot's live count above zero, so a draining slot needs
			// the shard layer flushed for its window — same contract as the
			// depot hook below.
			st.Elastic.OnDrainRange(sh.DrainRange)
		}
		if err := probe("shard"); err != nil {
			return nil, err
		}
	}
	if s.Cached || s.Depot {
		var feOpts []frontend.Option
		if s.Depot {
			feOpts = append(feOpts, frontend.WithDepot(s.DepotCapacity))
		}
		if s.BatchRefill > 0 {
			feOpts = append(feOpts, frontend.WithBatchRefill(s.BatchRefill))
		}
		fe, err := frontend.New(st.Top, s.Magazine, feOpts...)
		if err != nil {
			return nil, err
		}
		st.Frontend = fe
		st.Top = fe
		if st.Elastic != nil {
			// Depot cooperation: a shrink must be able to pull depot-parked
			// magazines of the draining instance back down, or its live
			// count never reaches zero. (No-op without a depot.)
			st.Elastic.OnDrainRange(fe.DrainDepotRange)
		}
		if err := probe("frontend"); err != nil {
			return nil, err
		}
	}
	if s.Slab {
		sl, err := slab.New(st.Top, s.SlabCutoff)
		if err != nil {
			return nil, err
		}
		st.Slab = sl
		st.Top = sl
		if st.Elastic != nil {
			// Run cooperation: a run carved from a draining instance's
			// window pins its live count like a parked magazine does, so
			// retirement needs the slab's empty runs released and its
			// handle magazines fenced for the window.
			st.Elastic.OnDrainRange(sl.DrainRange)
		}
		if err := probe("slab"); err != nil {
			return nil, err
		}
	}
	if s.Record != nil {
		tr, err := trace.NewAllocator(st.Top, s.Record)
		if err != nil {
			return nil, err
		}
		st.Trace = tr
		st.Top = tr
	}
	if s.Materialize {
		ar, err := arena.Materialize(st.Top)
		if err != nil {
			return nil, err
		}
		st.Arena = ar
		st.Top = ar
	}
	if s.Telemetry != nil {
		// Flight-recorder wiring: every lifecycle-emitting layer publishes
		// into the registry's ring under its own source label. Installed
		// after the build so the initial commits stay unrecorded (they are
		// construction, not lifecycle).
		st.Telemetry = s.Telemetry
		if st.Elastic != nil {
			st.Elastic.SetEventSink(s.Telemetry.Sink("elastic"))
		}
		if st.Mem != nil {
			st.Mem.SetEventSink(s.Telemetry.Sink("mem"))
		}
		s.Faults.SetEventSink(s.Telemetry.Sink("fault"))
		if st.Frontend != nil {
			st.Frontend.SetEventSink(s.Telemetry.Sink("depot"))
		}
		if st.Slab != nil {
			st.Slab.SetEventSink(s.Telemetry.Sink("slab"))
		}
	}
	return st, nil
}

// CanScrub reports whether the leaf allocators support metadata
// scrubbing (the wrapping layers always forward Scrub, and the caching
// front-end additionally flushes its magazines on Scrub).
func (st *Stack) CanScrub() bool { return st.scrubbable }

// Scrub quiesces the whole stack — flushing front-end magazines and
// rebuilding leaf metadata where supported — and reports whether the
// leaves scrubbed. Quiescent points only.
func (st *Stack) Scrub() bool {
	if s, ok := st.Top.(alloc.Scrubber); ok {
		s.Scrub()
	}
	return st.scrubbable
}

// LayerStats returns the stack's per-layer counters, top-down.
func (st *Stack) LayerStats() []alloc.LayerStats { return alloc.StackStats(st.Top) }

// registryInstances picks the instance count for a registry-built multi
// composite: up to want instances, halved until each instance's share of
// the global total can still serve MaxSize.
func registryInstances(want int, cfg alloc.Config) int {
	n := want
	for n > 1 && cfg.Total/uint64(n) < cfg.MaxSize {
		n /= 2
	}
	return n
}

// perConfig splits a global config over n instances.
func perConfig(cfg alloc.Config, n int) alloc.Config {
	per := cfg
	per.Total = cfg.Total / uint64(n)
	return per
}

func init() {
	// Composite variants over the paper's fastest leaf. Config.Total is
	// the global span; the multi composites split it over the instances.
	alloc.Register("cached+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		st, err := Build(Spec{Variant: "4lvl-nb", Per: cfg, Cached: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	alloc.Register("multi4+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	alloc.Register("cached+multi4+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Cached: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Depot composites: the caching front-end with the shared magazine
	// depot, exchanging full magazines in O(1) and crossing into the
	// back-end only in batches.
	alloc.Register("depot+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		st, err := Build(Spec{Variant: "4lvl-nb", Per: cfg, Depot: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	alloc.Register("depot+multi4+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Depot: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Slab composites: the size-class layer over a bare leaf, over the
	// depot stack (runs refill through the batched depot path), and over
	// the full mapped elastic stack (runs participate in retirement via
	// the DrainRange fence).
	alloc.Register("slab+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		st, err := Build(Spec{Variant: "4lvl-nb", Per: cfg, Slab: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	alloc.Register("slab+depot+multi4+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Depot: true, Slab: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	alloc.Register("slab+mapped+elastic+multi+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		ec := &elastic.Config{MinInstances: 1, MaxInstances: 2 * n}
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Elastic: ec, Mapped: true, Slab: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Elastic composite: the capacity manager over the multi router. The
	// initial set covers the requested global span (so conformance runs
	// that never Poll see the usual fixed geometry); the manager may
	// retire down to one instance at low utilization and grow up to twice
	// the initial set at high, once something drives Poll.
	alloc.Register("elastic+multi+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		ec := &elastic.Config{MinInstances: 1, MaxInstances: 2 * n}
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Elastic: ec})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Mapped elastic composite: the same capacity manager, but every
	// instance window is backed by platform mapped memory following the
	// slot lifecycle — a retirement decommits its window (RSS returns to
	// the OS) and a later grow recommits it.
	alloc.Register("mapped+elastic+multi+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		ec := &elastic.Config{MinInstances: 1, MaxInstances: 2 * n}
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Elastic: ec, Mapped: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Predictive elastic composite: the same mapped lifecycle under the
	// EWMA + slope policy, which pre-grows ahead of utilization ramps and
	// rides out transient troughs instead of draining into them. No
	// composite enables chunk migration: registry stacks feed generic
	// harnesses (conformance, differential) whose oracles assume stable
	// offsets, and migration is opt-in for owners that track moves.
	alloc.Register("predictive+mapped+elastic+multi+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		n := registryInstances(4, cfg)
		ec := &elastic.Config{
			MinInstances: 1,
			MaxInstances: 2 * n,
			Policy:       elastic.NewPredictivePolicy(elastic.PredictiveConfig{}),
		}
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n, Elastic: ec, Mapped: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
	// Sharded composite: the full PR 6 stack — per-CPU sharded routing
	// with NUMA-aware mapped placement over the elastic manager. The
	// instance target tracks GOMAXPROCS (rounded up to a power of two, at
	// least 4) so each shard can have an affine instance; the usual
	// halving rule still applies when the global span is small.
	alloc.Register("shard+mapped+elastic+multi+4lvl-nb", func(cfg alloc.Config) (alloc.Allocator, error) {
		want := 4
		for want < proc.MaxHint() && want < 64 {
			want *= 2
		}
		n := registryInstances(want, cfg)
		ec := &elastic.Config{MinInstances: 1, MaxInstances: 2 * n}
		st, err := Build(Spec{Variant: "4lvl-nb", Per: perConfig(cfg, n), Instances: n,
			Elastic: ec, Mapped: true, Sharded: true})
		if err != nil {
			return nil, err
		}
		return st.Top, nil
	})
}
