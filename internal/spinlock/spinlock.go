// Package spinlock provides the blocking synchronization substrate used by
// every spin-lock baseline in the evaluation (1lvl-sl, 4lvl-sl, buddy-sl,
// linux-buddy). Three classic flavors are provided so the lock itself can
// be ablated: test-and-set, test-and-test-and-set with exponential backoff,
// and a ticket lock (the fair lock used by the Linux kernel of the paper's
// era).
//
// Spinning goroutines periodically yield to the scheduler so a lock holder
// that has been descheduled can run; this mirrors the preemption behaviour
// the paper discusses for CPU-stealing contexts and keeps the benchmarks
// live when worker count exceeds GOMAXPROCS.
package spinlock

import (
	"runtime"
	"sync/atomic"
)

// Locker is the subset of sync.Locker the baselines rely on.
type Locker interface {
	Lock()
	Unlock()
}

// Kind selects a spin-lock implementation by name (for CLI/ablation use).
type Kind string

const (
	KindTAS    Kind = "tas"
	KindTTAS   Kind = "ttas"
	KindTicket Kind = "ticket"
)

// New returns a fresh lock of the given kind; it defaults to TTAS, the
// flavor closest to the pthread spin-locks used in the paper's baselines.
func New(kind Kind) Locker {
	switch kind {
	case KindTAS:
		return new(TAS)
	case KindTicket:
		return new(Ticket)
	default:
		return new(TTAS)
	}
}

// yieldEvery bounds the number of consecutive busy iterations before the
// spinner offers the processor back to the scheduler.
const yieldEvery = 128

// TAS is a plain test-and-set lock: every acquisition attempt is an RMW,
// which maximizes cache-line bouncing — the worst-case baseline.
type TAS struct {
	v atomic.Uint32
}

func (l *TAS) Lock() {
	spins := 0
	for !l.v.CompareAndSwap(0, 1) {
		if spins++; spins%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
}

func (l *TAS) Unlock() { l.v.Store(0) }

// TTAS is a test-and-test-and-set lock with bounded exponential backoff:
// spinners wait on a plain load (shared cache line state) and attempt the
// RMW only when the lock is observed free.
type TTAS struct {
	v atomic.Uint32
}

func (l *TTAS) Lock() {
	backoff := 1
	spins := 0
	for {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			if spins++; spins%yieldEvery == 0 {
				runtime.Gosched()
			}
		}
		if backoff < 1024 {
			backoff <<= 1
		}
	}
}

func (l *TTAS) Unlock() { l.v.Store(0) }

// Ticket is a fair FIFO spin lock: acquirers take a ticket and spin until
// the owner counter reaches it.
type Ticket struct {
	next  atomic.Uint32
	owner atomic.Uint32
}

func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	spins := 0
	for l.owner.Load() != t {
		if spins++; spins%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
}

func (l *Ticket) Unlock() { l.owner.Add(1) }
