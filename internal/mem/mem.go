// Package mem is the platform-backed region provider of the allocator
// stack: the layer that turns the paper's offset arithmetic into memory
// the operating system actually accounts for.
//
// The source paper's buddy system manages *offsets* — its benchmarks
// never touch the allocated payload — and until now the repository kept
// that discipline even in "materialized" deployments: internal/arena
// backed the offset span with one fixed make([]byte), so a region's
// resident footprint was decided once, at construction, forever. That
// breaks the elastic story of PR 4: the manager retires instances, but
// not a single page goes back to the OS, so a diurnal workload's peak
// RSS is permanent.
//
// A Region is a set of equally sized windows — one per back-end instance
// slot — each with an independent reserve → commit → decommit → recommit
// lifecycle:
//
//	reserve   address space only (PROT_NONE, MAP_NORESERVE on Linux):
//	          no RSS, no swap accounting; faults on touch.
//	commit    make the window usable and resident (mprotect RW, then
//	          touch one byte per page so the committed bytes really back
//	          the window — commit is the moment RSS rises, not first use).
//	decommit  return the pages to the OS (MADV_DONTNEED) and fence the
//	          window off again (PROT_NONE). RSS drops immediately.
//	recommit  commit after a decommit; the window comes back zero-filled.
//
// The platform split lives behind build-tagged hooks (osReserve /
// osProtectRW / osAdviseHuge / osTouch / osDecommit / osRelease): Linux
// uses mmap + mprotect + madvise; every other platform falls back to one
// heap []byte per window with commit/decommit as pure bookkeeping, so
// the package — and every stack built over it — compiles and behaves
// identically everywhere, just without the RSS effect (Mapped reports
// which one you got).
//
// Every hook invocation is routed through an optional fault.Injector
// (WithFaultInjector): the injector's check runs in the portable Region
// methods, before the platform hook, so an injected fault schedule
// behaves identically on Linux and on the fallback. The checks sit on
// the cold lifecycle paths only — never on Window/Bytes.
//
// Windows are intentionally independent mappings rather than one large
// reservation: the elastic manager grows the instance table at runtime,
// and per-window mappings make Ensure(n) an O(1) mmap instead of a
// guess-the-ceiling reservation.
package mem

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/fault"
)

// HugePageSize is the transparent-huge-page extent MADV_HUGEPAGE can
// coalesce on Linux/amd64. Windows are only hugepage-advised when their
// size is a multiple of it, and the reservation is over-allocated so the
// window starts on a HugePageSize boundary — THP only materializes on
// aligned 2MiB extents, so an unaligned advise would silently do nothing.
const HugePageSize = 2 << 20

// Stats is the region's commit accounting; all counters are lifetime
// totals except the byte gauges. Reads are consistent snapshots.
type Stats struct {
	// ReservedBytes is address space reserved across all windows.
	ReservedBytes uint64
	// CommittedBytes is the bytes currently committed (resident-capable).
	CommittedBytes uint64
	// Commits counts Commit transitions out of the reserved state,
	// first-time commits and recommits alike.
	Commits uint64
	// Decommits counts windows returned to the OS.
	Decommits uint64
	// Recommits counts the subset of Commits that revived a previously
	// decommitted window — the elastic grow-into-a-hole path.
	Recommits uint64
	// HugeFallbacks counts commits whose hugepage advise failed and fell
	// back to base 4KiB pages — the first rung of the degradation ladder:
	// the commit still succeeds, only the large-TLB win is lost.
	HugeFallbacks uint64
	// BindFailures counts NUMA placements that could not be installed;
	// best-effort by contract, so the commit proceeds without locality.
	BindFailures uint64
	// ReserveFails, CommitFails and DecommitFails count lifecycle
	// transitions that returned an error to the caller (environmental or
	// injected). A failed transition leaves the window in its prior state.
	ReserveFails  uint64
	CommitFails   uint64
	DecommitFails uint64
}

// window is one lifecycle unit of the region.
type window struct {
	// raw is the whole OS mapping (the munmap token); buf is the aligned
	// WindowSize view handed to callers. They differ only when hugepage
	// alignment padded the reservation.
	raw []byte
	buf []byte
	// committed is the lifecycle state; decommitted remembers that the
	// window went through a decommit, so the next commit counts as a
	// recommit.
	committed   bool
	decommitted bool
	// node is the NUMA node the window was assigned at commit time under
	// WithNUMAPolicy (-1 = never placed).
	node int
}

// Region is a growable set of same-size windows with independent
// commit/decommit lifecycles. All methods are safe for concurrent use.
type Region struct {
	winSize uint64
	huge    bool
	numa    bool
	inj     *fault.Injector

	mu   sync.Mutex
	wins []*window

	commits, decommits, recommits       uint64
	hugeFallbacks, bindFails            uint64
	reserveFails, commitFails, decFails uint64

	// sink, when non-nil, receives one call per degradation-ladder rung
	// taken (huge-fallback, bind-fail, commit-fail, reserve-fail,
	// decommit-fail) for the telemetry flight recorder. Invoked with mu
	// held, so events order like the transitions they describe.
	sink func(event string, a, b uint64)
}

// Option tunes a Region.
type Option func(*Region)

// WithHugePages requests MADV_HUGEPAGE on commit. It only takes effect
// when the window size is a multiple of HugePageSize (the alignment rule
// documented on HugePageSize); smaller windows silently stay on base
// pages. No-op on non-Linux platforms.
func WithHugePages() Option { return func(r *Region) { r.huge = true } }

// WithFaultInjector routes every lifecycle syscall through the given
// injector (nil is valid and injects nothing). The check runs before the
// platform hook, so schedules behave identically on Linux and on the
// portable fallback.
func WithFaultInjector(in *fault.Injector) Option { return func(r *Region) { r.inj = in } }

// New reserves a region of windows equally sized windows of windowSize
// bytes each. Windows can be added later with Ensure; every window starts
// reserved (uncommitted).
func New(windowSize uint64, windows int, opts ...Option) (*Region, error) {
	if windowSize == 0 {
		return nil, fmt.Errorf("mem: window size must be positive")
	}
	if windows < 0 {
		return nil, fmt.Errorf("mem: window count %d must be non-negative", windows)
	}
	r := &Region{winSize: windowSize}
	for _, o := range opts {
		o(r)
	}
	if err := r.Ensure(windows); err != nil {
		r.Release()
		return nil, err
	}
	// Regions are owned by allocator stacks, which have no destructor in
	// the layer contract; the finalizer returns the address space when a
	// stack (a conformance-suite build, a bench cell) becomes garbage.
	// Consequence for callers: a []byte escaping Window/Bytes does NOT
	// keep the Region alive (the GC cannot trace mapped memory) — byte
	// views are valid only while the Region stays reachable, which the
	// Window/Bytes docs make part of the contract.
	runtime.SetFinalizer(r, (*Region).Release)
	return r, nil
}

// SetEventSink installs the flight-recorder publish hook for the
// degradation ladder: every counted rung (hugepage fallback, failed
// bind, failed reserve/commit/decommit) is published with the window
// index as operand a. Install during stack construction; nil uninstalls.
func (r *Region) SetEventSink(fn func(event string, a, b uint64)) {
	r.mu.Lock()
	r.sink = fn
	r.mu.Unlock()
}

// emit publishes a ladder event. Called with mu held; nil-safe.
func (r *Region) emit(event string, a uint64) {
	if r.sink != nil {
		r.sink(event, a, 0)
	}
}

// Mapped reports whether this platform really maps and unmaps pages
// (Linux) or runs the portable bookkeeping fallback.
func Mapped() bool { return osMapped }

// WindowSize returns the bytes per window.
func (r *Region) WindowSize() uint64 { return r.winSize }

// Windows returns the number of reserved windows.
func (r *Region) Windows() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.wins)
}

// HugePages reports whether commits advise transparent huge pages (only
// meaningful when the window size meets the HugePageSize alignment rule).
func (r *Region) HugePages() bool { return r.huge && r.winSize%HugePageSize == 0 }

// Ensure reserves windows until the region holds at least n of them.
// Existing windows and their lifecycle states are untouched.
func (r *Region) Ensure(n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.wins) < n {
		raw, buf, err := r.osReserveChecked()
		if err != nil {
			r.reserveFails++
			r.emit("reserve-fail", uint64(len(r.wins)))
			return fmt.Errorf("mem: reserving window %d (%d bytes): %w", len(r.wins), r.winSize, err)
		}
		r.wins = append(r.wins, &window{raw: raw, buf: buf, node: -1})
	}
	return nil
}

// osReserveChecked runs the reserve fault check and then the platform
// reserve. Called with mu held.
func (r *Region) osReserveChecked() (raw, buf []byte, err error) {
	if err := r.inj.Check(fault.Reserve); err != nil {
		return nil, nil, err
	}
	return osReserve(r.winSize, r.HugePages())
}

// Injector returns the region's fault injector (nil when none was
// installed) so layers above can surface its counters.
func (r *Region) Injector() *fault.Injector { return r.inj }

func (r *Region) window(k int) *window {
	if k < 0 || k >= len(r.wins) {
		panic(fmt.Sprintf("mem: window %d of a %d-window region", k, len(r.wins)))
	}
	return r.wins[k]
}

// Commit makes window k usable and resident; committing a committed
// window is a no-op. A commit after a decommit (a recommit) hands back a
// zero-filled window.
func (r *Region) Commit(k int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.window(k)
	if w.committed {
		return nil
	}
	if err := r.inj.Check(fault.Commit); err != nil {
		r.commitFails++
		r.emit("commit-fail", uint64(k))
		return fmt.Errorf("mem: committing window %d: %w", k, err)
	}
	if r.numa {
		// Install the placement BEFORE the commit touch: mbind sets the
		// VMA's policy and the touch loop then first-faults every page
		// onto the preferred node. On single-node machines and platforms
		// without the syscalls the bind is a no-op but the assignment
		// still lands in NodeMap.
		w.node = r.nodeForWindow(k)
		// Best-effort: a failed bind costs locality, not correctness. The
		// injector check runs even on single-node machines so bind-fault
		// schedules exercise this rung of the ladder portably.
		if err := r.inj.Check(fault.Bind); err != nil {
			r.bindFails++
			r.emit("bind-fail", uint64(k))
		} else if len(numaNodeIDs()) > 1 {
			if err := osBindNode(w.buf, w.node); err != nil {
				r.bindFails++
				r.emit("bind-fail", uint64(k))
			}
		}
	}
	if err := osProtectRW(w.buf); err != nil {
		r.commitFails++
		r.emit("commit-fail", uint64(k))
		return fmt.Errorf("mem: committing window %d: %w", k, err)
	}
	if r.HugePages() {
		// Degradation ladder, rung one: a failed hugepage advise (THP
		// disabled, or injected) leaves the window on base 4KiB pages —
		// counted, never fatal.
		err := r.inj.Check(fault.Huge)
		if err == nil {
			err = osAdviseHuge(w.buf)
		}
		if err != nil {
			r.hugeFallbacks++
			r.emit("huge-fallback", uint64(k))
		}
	}
	osTouch(w.buf)
	w.committed = true
	r.commits++
	if w.decommitted {
		r.recommits++
	}
	return nil
}

// Decommit returns window k's pages to the OS and fences the window off;
// decommitting an uncommitted window is a no-op. The caller must
// guarantee no live chunk references the window — the elastic lifecycle's
// draining → zero-live fence (DESIGN.md) is exactly that guarantee.
func (r *Region) Decommit(k int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.window(k)
	if !w.committed {
		return nil
	}
	err := r.inj.Check(fault.Decommit)
	if err == nil {
		err = osDecommit(w.buf)
	}
	if err != nil {
		// The window stays committed: a failed decommit loses the RSS
		// return, not the window — the caller retries on a later pass.
		r.decFails++
		r.emit("decommit-fail", uint64(k))
		return fmt.Errorf("mem: decommitting window %d: %w", k, err)
	}
	w.committed = false
	w.decommitted = true
	r.decommits++
	return nil
}

// Committed reports window k's lifecycle state.
func (r *Region) Committed(k int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.window(k).committed
}

// CommitMap returns the per-window commit states, index-aligned with the
// router's slot table when the region backs one.
func (r *Region) CommitMap() []bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]bool, len(r.wins))
	for k, w := range r.wins {
		out[k] = w.committed
	}
	return out
}

// Window returns window k's bytes. The window must be committed: reading
// or writing a reserved or decommitted window faults on Linux, so the
// panic here is the portable version of that fault.
//
// Lifetime: the returned slice is a view of OS-mapped memory, so it does
// not keep the Region alive the way a heap slice keeps its array alive.
// It is valid only while the window stays committed AND the Region stays
// reachable — let the Region (in practice: the allocator stack) be
// garbage-collected and the finalizer unmaps the pages under the slice.
func (r *Region) Window(k int) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	w := r.window(k)
	if !w.committed {
		panic(fmt.Sprintf("mem: Window(%d) on an uncommitted window", k))
	}
	return w.buf
}

// Bytes returns the [off, off+size) view of committed window k, with the
// same bounds discipline as arena.Bytes.
func (r *Region) Bytes(k int, off, size uint64) []byte {
	b := r.Window(k)
	if off+size > r.winSize || off+size < off {
		panic(fmt.Sprintf("mem: window %d range [%d,%d) outside %d bytes", k, off, off+size, r.winSize))
	}
	return b[off : off+size : off+size]
}

// Stats returns a consistent snapshot of the commit accounting.
func (r *Region) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		ReservedBytes: uint64(len(r.wins)) * r.winSize,
		Commits:       r.commits,
		Decommits:     r.decommits,
		Recommits:     r.recommits,
		HugeFallbacks: r.hugeFallbacks,
		BindFailures:  r.bindFails,
		ReserveFails:  r.reserveFails,
		CommitFails:   r.commitFails,
		DecommitFails: r.decFails,
	}
	for _, w := range r.wins {
		if w.committed {
			s.CommittedBytes += r.winSize
		}
	}
	return s
}

// Release unmaps every window. The region must not be used afterwards;
// calling Release twice is safe. Stacks normally never call it — the
// finalizer set in New covers them — but tests and short-lived tools can
// return the address space deterministically.
func (r *Region) Release() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, w := range r.wins {
		if w.raw != nil {
			osRelease(w.raw)
		}
		w.raw, w.buf = nil, nil
		w.committed = false
	}
	r.wins = nil
}
